/**
 * @file
 * Packets carried by the on-chip network.
 *
 * A packet addresses a *set* of destination nodes (dstMask); the mesh
 * replicates it along a dimension-order multicast tree, so a line
 * fetched once from memory can fan out to every subscriber lane —
 * the hardware mechanism behind TaskStream's inter-task read-sharing
 * recovery.
 */

#ifndef TS_NOC_PACKET_HH
#define TS_NOC_PACKET_HH

#include <any>
#include <cstdint>

#include "sim/types.hh"

namespace ts
{

/** Classes of traffic; receivers dispatch on this tag. */
enum class PktKind : std::uint8_t
{
    MemReq,       ///< line request toward a memory controller
    MemResp,      ///< line response (possibly multicast)
    TaskDispatch, ///< dispatcher -> lane: run this task
    TaskStart,    ///< lane -> dispatcher: task began execution
    TaskComplete, ///< lane -> dispatcher: task finished
    TaskSpawn,    ///< lane -> dispatcher: running task submits successors
    PipeChunk,    ///< producer lane -> consumer lane forwarded data
    SpatialChunk, ///< spatially mapped producer -> consumer landing
    SharedFill,   ///< multicast line fill into lane scratchpads
    StealRequest, ///< idle lane -> peer lane: probe for queued work
    StealGrant,   ///< victim lane -> thief lane: migrated tasks
    StealDeny,    ///< victim lane -> thief lane: nothing stealable
    StealNotify,  ///< victim lane -> dispatcher: ownership moved
    Generic,      ///< tests and miscellaneous control
};

/** Human-readable packet-kind name (tracing and diagnostics). */
inline const char*
pktKindName(PktKind k)
{
    switch (k) {
      case PktKind::MemReq: return "memReq";
      case PktKind::MemResp: return "memResp";
      case PktKind::TaskDispatch: return "taskDispatch";
      case PktKind::TaskStart: return "taskStart";
      case PktKind::TaskComplete: return "taskComplete";
      case PktKind::TaskSpawn: return "taskSpawn";
      case PktKind::PipeChunk: return "pipeChunk";
      case PktKind::SpatialChunk: return "spatialChunk";
      case PktKind::SharedFill: return "sharedFill";
      case PktKind::StealRequest: return "stealRequest";
      case PktKind::StealGrant: return "stealGrant";
      case PktKind::StealDeny: return "stealDeny";
      case PktKind::StealNotify: return "stealNotify";
      case PktKind::Generic: return "generic";
    }
    return "?";
}

/** A network packet. */
struct Packet
{
    std::uint32_t src = 0;      ///< source node id
    std::uint64_t dstMask = 0;  ///< bit i set => deliver to node i
    PktKind kind = PktKind::Generic;
    std::uint32_t sizeWords = 1; ///< payload size for serialization
    std::any payload;            ///< typed by kind

    /** Router-internal: earliest cycle the tail has fully arrived at
     *  the current hop (wormhole serialization). */
    Tick notBefore = 0;

    /** Cycle the packet entered the network (latency statistics). */
    Tick injectedAt = 0;

    /** Whether the packet was injected with >1 destination; copies
     *  made at tree splits inherit the flag so multicast traffic can
     *  be attributed separately from unicast. */
    bool mcast = false;

    /** Convenience: unicast destination mask. */
    static std::uint64_t
    unicast(std::uint32_t node)
    {
        return std::uint64_t{1} << node;
    }
};

} // namespace ts

#endif // TS_NOC_PACKET_HH
