/**
 * @file
 * The write stream engine: drains a fabric output port into memory
 * (functional write + line-granular traffic) and/or forwards the
 * stream as pipe chunks to consumer lanes — the transmit half of
 * pipelined inter-task dependence recovery.
 */

#ifndef TS_STREAM_WRITE_ENGINE_HH
#define TS_STREAM_WRITE_ENGINE_HH

#include <optional>

#include "mem/mem_image.hh"
#include "mem/scratchpad.hh"
#include "sim/simulator.hh"
#include "stream/lane_io.hh"
#include "stream/stream_desc.hh"

namespace ts
{

/** Write-engine tuning knobs. */
struct WriteEngineCfg
{
    std::uint32_t width = 2;          ///< tokens consumed per cycle
    std::size_t writeQueueDepth = 8;  ///< pending line writes
};

/** One output-stream engine. */
class WriteEngine : public Ticked
{
  public:
    WriteEngine(std::string name, MemImage& img, Scratchpad* spm,
                MemPortIf* mem, PipeTxIf* pipeTx,
                WriteEngineCfg cfg = {});

    /** Start draining @p src per @p d. */
    void program(const WriteDesc& d, TokenFifo* src);

    /** Whether the programmed stream is still in flight. */
    bool active() const { return active_; }

    /** Cycle-accounting probe: line writes back-pressured. */
    bool blockedOnMem() const
    {
        return active_ && !pendingLines_.empty();
    }

    /** Cycle-accounting probe: pipe chunk awaiting NoC injection. */
    bool
    blockedOnNoc() const
    {
        return active_ && (chunkPending_ || !pendingSpatial_.empty());
    }

    void tick(Tick now) override;
    bool busy() const override { return active_; }
    void reportStats(StatSet& stats) const override;

    std::uint64_t tokensWritten() const { return tokensWritten_; }

    /** DRAM write-back lines suppressed because every consumer of
     *  this stream receives it by spatial forwarding. */
    std::uint64_t linesSuppressed() const { return linesSuppressed_; }

    /** Spatial chunks injected toward consumer landing zones. */
    std::uint64_t spatialChunksSent() const
    {
        return spatialChunksSent_;
    }

    std::unique_ptr<ComponentSnap> saveState() const override;
    void restoreState(const ComponentSnap& snap) override;

  private:
    /** One spatial chunk awaiting NoC injection. */
    struct SpatialSend
    {
        std::uint32_t node = 0;
        std::uint64_t group = 0;
        std::uint32_t words = 0;
        bool done = false;
    };

    struct Snap final : ComponentSnap
    {
        WriteDesc d;
        TokenFifo* src = nullptr;
        bool active = false;
        bool sawStreamEnd = false;
        std::uint64_t pos = 0;
        std::optional<Addr> curLine;
        std::deque<Addr> pendingLines;
        std::vector<Token> chunk;
        bool chunkPending = false;
        std::uint32_t spatialAccum = 0;
        std::deque<SpatialSend> pendingSpatial;
        std::uint64_t tokensWritten = 0;
        std::uint64_t linesWritten = 0;
        std::uint64_t chunksSent = 0;
        std::uint64_t linesSuppressed = 0;
        std::uint64_t spatialChunksSent = 0;
        std::uint64_t streamsRun = 0;
    };

    bool flushTraffic();
    void queueLine(Addr line);

    MemImage& img_;
    Scratchpad* spm_;
    MemPortIf* mem_;
    PipeTxIf* pipeTx_;
    WriteEngineCfg cfg_;

    WriteDesc d_;
    TokenFifo* src_ = nullptr;
    bool active_ = false;
    bool sawStreamEnd_ = false;

    std::uint64_t pos_ = 0; ///< elements written
    std::optional<Addr> curLine_;
    std::deque<Addr> pendingLines_;
    std::vector<Token> chunk_;
    bool chunkPending_ = false;
    std::uint32_t spatialAccum_ = 0; ///< words since last spatial send
    std::deque<SpatialSend> pendingSpatial_;

    std::uint64_t tokensWritten_ = 0;
    std::uint64_t linesWritten_ = 0;
    std::uint64_t chunksSent_ = 0;
    std::uint64_t linesSuppressed_ = 0;
    std::uint64_t spatialChunksSent_ = 0;
    std::uint64_t streamsRun_ = 0;
};

} // namespace ts

#endif // TS_STREAM_WRITE_ENGINE_HH
