file(REMOVE_RECURSE
  "libts_stream.a"
)
