file(REMOVE_RECURSE
  "CMakeFiles/fig_queue.dir/fig_queue.cc.o"
  "CMakeFiles/fig_queue.dir/fig_queue.cc.o.d"
  "fig_queue"
  "fig_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
