/**
 * @file
 * Shared infrastructure for the experiment benchmarks: run one
 * workload under one configuration, verify correctness, and collect
 * the statistics the paper-style tables report.
 */

#ifndef TS_BENCH_BENCH_UTIL_HH
#define TS_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "workloads/workload.hh"

namespace ts::bench
{

/**
 * Workloads this bench process runs: the TS_WORKLOADS environment
 * variable (comma-separated names, "all" or unset = whole suite).
 * An unknown name fails fast with the valid names listed.  Both the
 * registration and table-printing loops must use this same list.
 */
inline const std::vector<Wk>&
suiteWorkloads()
{
    static const std::vector<Wk> selected = [] {
        const char* list = std::getenv("TS_WORKLOADS");
        return workloadsFromList(list == nullptr ? "" : list);
    }();
    return selected;
}

/** Suite scaling knobs: TS_SCALE (problem-size multiplier, default
 *  1.0) and TS_SEED override the defaults — small CI runs use
 *  TS_SCALE=0.25 without rebuilding. */
inline SuiteParams
suiteParams()
{
    SuiteParams sp;
    if (const char* s = std::getenv("TS_SCALE")) {
        sp.scale = std::strtod(s, nullptr);
        if (!(sp.scale > 0))
            fatal("TS_SCALE must be a positive number, got '", s, "'");
    }
    if (const char* s = std::getenv("TS_SEED"))
        sp.seed = std::strtoull(s, nullptr, 10);
    return sp;
}

/** Outcome of one simulated run. */
struct RunResult
{
    double cycles = 0;
    bool correct = false;
    StatSet stats;
};

/**
 * When TS_BENCH_JSON names an (existing) directory, every runOnce()
 * writes its full StatSet there as `<seq>_<workload>_<policy>.json`,
 * so figure programs emit machine-readable results alongside the
 * text tables.
 */
inline void
emitJson(const std::string& tag, Wk w, const DeltaConfig& cfg,
         const RunResult& r)
{
    const char* dir = std::getenv("TS_BENCH_JSON");
    if (dir == nullptr || *dir == '\0')
        return;
    static int seq = 0;
    const std::string path = std::string(dir) + "/" +
                             std::to_string(seq++) + "_" + tag +
                             ".json";
    std::ofstream os(path);
    if (!os) {
        warn("bench: cannot write '", path, "'");
        return;
    }
    os << "{\n  \"workload\": \"" << wkName(w) << "\",\n"
       << "  \"policy\": \"" << schedPolicyName(cfg.policy) << "\",\n"
       << "  \"lanes\": " << cfg.lanes << ",\n"
       << "  \"correct\": " << (r.correct ? "true" : "false") << ",\n"
       << "  \"stats\": ";
    r.stats.dumpJson(os);
    os << "}\n";
}

/** Build and simulate one workload under one configuration. */
inline RunResult
runOnce(Wk w, const DeltaConfig& cfg, const SuiteParams& sp)
{
    auto wl = makeWorkload(w, sp);
    Delta delta(cfg);
    TaskGraph graph;
    wl->build(delta, graph);
    RunResult r;
    r.stats = delta.run(graph);
    r.cycles = r.stats.get("delta.cycles");
    r.correct = wl->check(delta.image());
    emitJson(std::string(wkName(w)) + "_" +
                 schedPolicyName(cfg.policy) + "_l" +
                 std::to_string(cfg.lanes),
             w, cfg, r);
    return r;
}

/** Print a horizontal rule sized for our tables. */
inline void
rule(int width = 72)
{
    std::puts(std::string(static_cast<std::size_t>(width), '-').c_str());
}

/** Geometric mean of a vector of ratios. */
inline double
geomean(const std::vector<double>& v)
{
    if (v.empty())
        return 0.0;
    double logSum = 0.0;
    for (const double x : v)
        logSum += std::log(x);
    return std::exp(logSum / static_cast<double>(v.size()));
}

} // namespace ts::bench

#endif // TS_BENCH_BENCH_UTIL_HH
