#include "cgra/fabric.hh"

#include "sim/logging.hh"

namespace ts
{

Fabric::Fabric(std::string name, const FabricConfig& cfg)
    : Ticked(std::move(name)), cfg_(cfg)
{
}

void
Fabric::configure(const MappedDfg* m, Tick now)
{
    TS_ASSERT(m != nullptr && m->dfg != nullptr);
    TS_ASSERT(drained(), name(), ": configure with tokens in flight");
    requestWake(); // the configuring task unit ticks before us

    if (m == current_) {
        configReadyAt_ = now; // already loaded: free switch
        return;
    }

    const Dfg& dfg = *m->dfg;
    const Tick cost =
        cfg_.configBaseCycles + cfg_.configPerNodeCycles * dfg.numNodes();
    configReadyAt_ = now + cost;
    ++reconfigs_;
    configCycles_ += cost;
    current_ = m;

    // Build route state.
    routes_.clear();
    routes_.resize(m->routes.size());
    for (std::size_t i = 0; i < m->routes.size(); ++i) {
        const auto& r = m->routes[i];
        routes_[i].dstNode = r.edge.dst;
        routes_[i].slot = r.edge.slot;
        const std::size_t hops = r.path.size() > 1 ? r.path.size() - 1 : 1;
        routes_[i].regs.assign(hops, std::nullopt);
    }

    // Build PE state.
    pes_.clear();
    pes_.resize(dfg.numNodes());
    inExt_.assign(dfg.numInputs(), TokenFifo(cfg_.portFifoDepth));
    outExt_.assign(dfg.numOutputs(), TokenFifo(cfg_.portFifoDepth));
    for (std::uint32_t id = 0; id < dfg.numNodes(); ++id) {
        PeState& pe = pes_[id];
        pe.id = id;
        pe.node = &dfg.node(id);
        if (pe.node->op == Op::Input)
            pe.ext = &inExt_[pe.node->portIdx];
        if (pe.node->op == Op::Output)
            pe.ext = &outExt_[pe.node->portIdx];
        if (isAccumulator(pe.node->op))
            pe.acc = accIdentity(pe.node->op);
    }
    for (std::size_t i = 0; i < routes_.size(); ++i)
        pes_[m->routes[i].edge.src].outRoutes.push_back(
            static_cast<std::uint32_t>(i));
}

TokenFifo&
Fabric::inPort(std::uint32_t port)
{
    TS_ASSERT(port < inExt_.size(), name(), ": bad input port ", port);
    return inExt_[port];
}

TokenFifo&
Fabric::outPort(std::uint32_t port)
{
    TS_ASSERT(port < outExt_.size(), name(), ": bad output port ", port);
    return outExt_[port];
}

bool
Fabric::drained() const
{
    for (const auto& r : routes_) {
        for (const auto& reg : r.regs) {
            if (reg.has_value())
                return false;
        }
    }
    for (const auto& pe : pes_) {
        for (const auto& q : pe.opnd) {
            if (!q.empty())
                return false;
        }
        if (!pe.pipe.empty())
            return false;
    }
    for (const auto& f : inExt_) {
        if (!f.empty())
            return false;
    }
    for (const auto& f : outExt_) {
        if (!f.empty())
            return false;
    }
    return true;
}

void
Fabric::resetStreams()
{
    TS_ASSERT(drained(), name(), ": resetStreams with tokens in flight");
    for (auto& pe : pes_) {
        if (pe.node != nullptr && isAccumulator(pe.node->op))
            pe.acc = accIdentity(pe.node->op);
        pe.endedA = pe.endedB = false;
        pe.segDoneA = pe.segDoneB = false;
        pe.streamEndA = pe.streamEndB = false;
        pe.count = 0;
    }
}

void
Fabric::advanceRoutes()
{
    for (auto& r : routes_) {
        auto& regs = r.regs;
        const std::size_t last = regs.size() - 1;
        // Deliver the final register into the consumer operand FIFO.
        if (regs[last].has_value()) {
            auto& fifo = pes_[r.dstNode].opnd[r.slot];
            if (fifo.size() < cfg_.operandFifoDepth) {
                fifo.push_back(*regs[last]);
                regs[last].reset();
            }
        }
        // Shift earlier registers forward.
        for (std::size_t i = last; i > 0; --i) {
            if (!regs[i].has_value() && regs[i - 1].has_value()) {
                regs[i] = regs[i - 1];
                regs[i - 1].reset();
            }
        }
    }
}

bool
Fabric::pipeHasSpace(const PeState& pe) const
{
    const std::size_t depth = opInfo(pe.node->op).latency;
    return pe.pipe.size() < std::max<std::size_t>(depth, 1);
}

void
Fabric::pushResult(PeState& pe, Token t, Tick now)
{
    pe.pipe.emplace_back(t, now + opInfo(pe.node->op).latency);
}

void
Fabric::outputStage(Tick now)
{
    for (auto& pe : pes_) {
        if (pe.pipe.empty())
            continue;
        const auto& [tok, readyAt] = pe.pipe.front();
        if (readyAt > now)
            continue;
        if (pe.outRoutes.empty()) {
            pe.pipe.pop_front(); // dead value: discard
            continue;
        }
        bool allFree = true;
        for (std::uint32_t ri : pe.outRoutes) {
            if (routes_[ri].regs[0].has_value()) {
                allFree = false;
                break;
            }
        }
        if (!allFree)
            continue;
        for (std::uint32_t ri : pe.outRoutes)
            routes_[ri].regs[0] = tok;
        pe.pipe.pop_front();
    }
}

void
Fabric::firePe(PeState& pe, Tick now)
{
    const Dfg::Node& n = *pe.node;

    if (n.op == Op::Input) {
        if (pe.ext->empty() || !pipeHasSpace(pe))
            return;
        Token t = pe.ext->pop();
        pushResult(pe, t, now);
        ++firings_;
        return;
    }

    if (n.op == Op::Output) {
        if (pe.opnd[0].empty() || pe.ext->full())
            return;
        pe.ext->push(pe.opnd[0].front());
        pe.opnd[0].pop_front();
        ++firings_;
        return;
    }

    if (isElementwise(n.op)) {
        if (!pipeHasSpace(pe))
            return;
        for (unsigned s = 0; s < 3; ++s) {
            if (n.opnd[s].kind == Operand::Kind::Node &&
                pe.opnd[s].empty()) {
                return;
            }
        }
        Word w[3] = {0, 0, 0};
        std::uint8_t flags = 0;
        for (unsigned s = 0; s < 3; ++s) {
            if (n.opnd[s].kind == Operand::Kind::Node) {
                w[s] = pe.opnd[s].front().value;
                flags |= pe.opnd[s].front().flags;
                pe.opnd[s].pop_front();
            } else if (n.opnd[s].kind == Operand::Kind::Imm) {
                w[s] = n.opnd[s].imm;
            }
        }
        pushResult(pe,
                   Token{evalElementwise(n.op, w[0], w[1], w[2]), flags},
                   now);
        ++firings_;
        return;
    }

    if (isAccumulator(n.op)) {
        if (pe.opnd[0].empty() || !pipeHasSpace(pe))
            return;
        Token t = pe.opnd[0].front();
        pe.opnd[0].pop_front();
        pe.acc = evalAccStep(n.op, pe.acc, t.value);
        ++firings_;
        if (t.segEnd()) {
            pushResult(pe, Token{pe.acc, Token::demote(t.flags)}, now);
            pe.acc = accIdentity(n.op);
        }
        return;
    }

    if (n.op == Op::Merge2) {
        if (!pipeHasSpace(pe))
            return;
        const bool haveA = !pe.opnd[0].empty();
        const bool haveB = !pe.opnd[1].empty();
        if ((!pe.endedA && !haveA) || (!pe.endedB && !haveB))
            return;
        if (pe.endedA && pe.endedB)
            return; // stream fully merged; await reset
        unsigned side;
        if (pe.endedA) {
            side = 1;
        } else if (pe.endedB) {
            side = 0;
        } else {
            side = asInt(pe.opnd[0].front().value) <=
                           asInt(pe.opnd[1].front().value)
                       ? 0
                       : 1;
        }
        Token t = pe.opnd[side].front();
        pe.opnd[side].pop_front();
        bool& ended = side == 0 ? pe.endedA : pe.endedB;
        const bool otherEnded = side == 0 ? pe.endedB : pe.endedA;
        std::uint8_t flags = 0;
        if (t.streamEnd()) {
            ended = true;
            if (otherEnded)
                flags = kSegEnd | kStreamEnd;
        }
        pushResult(pe, Token{t.value, flags}, now);
        ++firings_;
        return;
    }

    if (n.op == Op::IsectCount) {
        if (!pipeHasSpace(pe))
            return;
        if (pe.segDoneA && pe.segDoneB) {
            std::uint8_t flags = kSegEnd;
            if (pe.streamEndA && pe.streamEndB)
                flags |= kStreamEnd;
            pushResult(pe, Token{fromInt(pe.count), flags}, now);
            pe.count = 0;
            pe.segDoneA = pe.segDoneB = false;
            ++firings_;
            return;
        }
        const bool haveA = !pe.opnd[0].empty();
        const bool haveB = !pe.opnd[1].empty();
        auto consume = [&](unsigned side) {
            Token t = pe.opnd[side].front();
            pe.opnd[side].pop_front();
            if (t.segEnd())
                (side == 0 ? pe.segDoneA : pe.segDoneB) = true;
            if (t.streamEnd())
                (side == 0 ? pe.streamEndA : pe.streamEndB) = true;
            return t;
        };
        if (!pe.segDoneA && !pe.segDoneB) {
            if (!haveA || !haveB)
                return;
            const std::int64_t va = asInt(pe.opnd[0].front().value);
            const std::int64_t vb = asInt(pe.opnd[1].front().value);
            if (va == vb) {
                ++pe.count;
                consume(0);
                consume(1);
            } else if (va < vb) {
                consume(0);
            } else {
                consume(1);
            }
        } else if (pe.segDoneA) {
            if (!haveB)
                return;
            consume(1); // drain the remainder of B's segment
        } else {
            if (!haveA)
                return;
            consume(0);
        }
        ++firings_;
        return;
    }

    panic(name(), ": unhandled op ", opName(n.op));
}

void
Fabric::fireStage(Tick now)
{
    for (auto& pe : pes_)
        firePe(pe, now);
}

bool
Fabric::pendingEmit() const
{
    for (const auto& pe : pes_) {
        if (pe.node != nullptr && pe.node->op == Op::IsectCount &&
            pe.segDoneA && pe.segDoneB) {
            return true;
        }
    }
    return false;
}

void
Fabric::tick(Tick now)
{
    if (current_ == nullptr) {
        sleepOnWake(); // configure() wakes us
        return;
    }
    if (!ready(now)) {
        // No tokens can arrive while configuration loads: the task
        // unit programs the stream engines only once ready() holds.
        sleepUntil(configReadyAt_);
        return;
    }
    if (drained() && !pendingEmit()) {
        // Woken by the read engines when they deliver input tokens.
        sleepOnWake();
        return;
    }
    ++activeCycles_;
    advanceRoutes();
    outputStage(now);
    fireStage(now);
}

bool
Fabric::busy() const
{
    return !drained() || pendingEmit();
}

void
Fabric::reportStats(StatSet& stats) const
{
    stats.set(name() + ".firings", static_cast<double>(firings_));
    stats.set(name() + ".reconfigs", static_cast<double>(reconfigs_));
    stats.set(name() + ".configCycles",
              static_cast<double>(configCycles_));
    stats.set(name() + ".activeCycles",
              static_cast<double>(activeCycles_));
}

std::unique_ptr<ComponentSnap>
Fabric::saveState() const
{
    auto s = std::make_unique<Snap>();
    s->current = current_;
    s->configReadyAt = configReadyAt_;
    s->routes = routes_;
    s->pes = pes_;
    s->inExt = inExt_;
    s->outExt = outExt_;
    s->firings = firings_;
    s->reconfigs = reconfigs_;
    s->configCycles = configCycles_;
    s->activeCycles = activeCycles_;
    return s;
}

void
Fabric::restoreState(const ComponentSnap& snap)
{
    const Snap& s = snapCast<Snap>(snap);
    current_ = s.current;
    configReadyAt_ = s.configReadyAt;
    routes_ = s.routes;
    pes_ = s.pes;
    inExt_ = s.inExt;
    outExt_ = s.outExt;
    firings_ = s.firings;
    reconfigs_ = s.reconfigs;
    configCycles_ = s.configCycles;
    activeCycles_ = s.activeCycles;

    // Re-anchor the external-port aliases into the freshly restored
    // FIFO vectors.
    for (PeState& pe : pes_) {
        pe.ext = nullptr;
        if (pe.node->op == Op::Input)
            pe.ext = &inExt_[pe.node->portIdx];
        if (pe.node->op == Op::Output)
            pe.ext = &outExt_[pe.node->portIdx];
    }
}

} // namespace ts
