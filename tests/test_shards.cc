/**
 * @file
 * Differential tests for the sharded conservative-PDES core: every
 * workload, under both the TaskStream config and the static-parallel
 * baseline, must produce byte-identical statistics at every shard
 * count (the `sim.host.*` wall-clock counters excluded).
 *
 * This is the enforcement arm of the shard contract in
 * src/sim/simulator.hh and DESIGN.md §8: partitions (and with them
 * the boundary-channel credit rule) are declared identically for
 * every shard count, so the only thing `--shards` may change is host
 * execution.  Any divergence means a cross-shard ordering leak — a
 * wake applied from a foreign shard mid-walk, a boundary channel
 * missing from an integrate list, or an event fired outside the
 * serialized coordinator phase.
 *
 * Also covers the composition guarantees (timeline sampling and
 * snapshot/fork under shards), the post-finalize cross-partition
 * channel fatal, and the wake-target dedup audit via the flight
 * recorder.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "accel/delta.hh"
#include "obs/flight_recorder.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

using namespace ts;

namespace
{

const std::vector<std::uint32_t> kShardCounts = {2, 4, 7};

struct RunResult
{
    std::string statsJson; ///< full dump minus sim.host.*
    double cycles = 0.0;
    double hostShards = 0.0; ///< sim.host.shards (0 when unsharded)
    double shardTicks = 0.0; ///< sum of sim.host.shard<i>.ticksExecuted
    bool correct = false;
};

RunResult
runOnce(Wk wk, bool staticConfig, std::uint32_t shards,
        Tick timelineInterval = 0)
{
    DeltaConfig cfg = staticConfig ? DeltaConfig::staticBaseline()
                                   : DeltaConfig::delta();
    cfg.shards = shards;
    cfg.timelineInterval = timelineInterval;

    SuiteParams sp;
    sp.scale = 0.25;
    sp.seed = 7;
    auto wl = makeWorkload(wk, sp);

    Delta delta(cfg);
    TaskGraph graph;
    wl->build(delta, graph);
    const StatSet stats = delta.run(graph);

    RunResult r;
    std::ostringstream os;
    stats.dumpJson(os, "sim.host.");
    r.statsJson = os.str();
    r.cycles = stats.get("sim.cycles");
    r.hostShards = stats.getOr("sim.host.shards", 0.0);
    r.shardTicks = 0.0;
    for (std::uint32_t s = 0; s < shards; ++s) {
        r.shardTicks += stats.getOr("sim.host.shard" +
                                        std::to_string(s) +
                                        ".ticksExecuted",
                                    0.0);
    }
    r.correct = wl->check(delta.image());
    return r;
}

class ShardDifferential
    : public ::testing::TestWithParam<std::tuple<Wk, bool>>
{
};

TEST_P(ShardDifferential, BitIdenticalAtEveryShardCount)
{
    const Wk wk = std::get<0>(GetParam());
    const bool staticConfig = std::get<1>(GetParam());

    const RunResult one = runOnce(wk, staticConfig, 1);
    ASSERT_TRUE(one.correct);

    for (const std::uint32_t k : kShardCounts) {
        const RunResult sharded = runOnce(wk, staticConfig, k);
        EXPECT_TRUE(sharded.correct) << k << " shards";
        EXPECT_EQ(sharded.cycles, one.cycles) << k << " shards";
        EXPECT_EQ(sharded.statsJson, one.statsJson)
            << k << "-shard and single-shard runs diverged for "
            << wkName(wk) << " ("
            << (staticConfig ? "static" : "delta")
            << "): a cross-shard wake, commit, or event escaped the "
               "conservative synchronization";
        EXPECT_EQ(sharded.hostShards, static_cast<double>(k))
            << "a sharded run must report sim.host.shards";
        EXPECT_GT(sharded.shardTicks, 0.0)
            << "per-shard tick counters must be populated";
    }
}

std::string
diffName(const ::testing::TestParamInfo<std::tuple<Wk, bool>>& info)
{
    return wkIdent(std::get<0>(info.param)) +
           (std::get<1>(info.param) ? "_static" : "_delta");
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, ShardDifferential,
    ::testing::Combine(::testing::ValuesIn(allWorkloads()),
                       ::testing::Bool()),
    diffName);

/**
 * Timeline sampling under shards: the sampler's weak events fire in
 * the coordinator's serialized phase, so the sampled columns — part
 * of the byte-compared dump — must match the single-shard run
 * exactly.
 */
class TimelineShardDifferential
    : public ::testing::TestWithParam<std::tuple<Wk, bool>>
{
};

TEST_P(TimelineShardDifferential, SampledRunsBitIdenticalAcrossShards)
{
    const Wk wk = std::get<0>(GetParam());
    const bool staticConfig = std::get<1>(GetParam());

    const RunResult one = runOnce(wk, staticConfig, 1, 300);
    const RunResult four = runOnce(wk, staticConfig, 4, 300);

    EXPECT_TRUE(one.correct);
    EXPECT_TRUE(four.correct);
    EXPECT_NE(one.statsJson.find("delta.timeline.samples"),
              std::string::npos)
        << "the sampled run must emit timeline columns";
    EXPECT_EQ(four.statsJson, one.statsJson)
        << "timeline columns diverged between 4-shard and "
           "single-shard runs for "
        << wkName(wk) << " (" << (staticConfig ? "static" : "delta")
        << "): a sampler fired outside the serialized coordinator "
           "phase or observed un-caught-up counters";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, TimelineShardDifferential,
    ::testing::Combine(::testing::ValuesIn(allWorkloads()),
                       ::testing::Bool()),
    diffName);

/**
 * Snapshot/fork under shards: a 4-shard Delta snapshotted at its
 * pristine post-construction point and restored before each run must
 * reproduce the single-shard fresh run byte-for-byte.  The snapshot
 * stores sleep/wake bookkeeping in shard-independent global order, so
 * one snapshot must serve any shard count.
 */
class SnapshotShardDifferential : public ::testing::TestWithParam<Wk>
{
};

TEST_P(SnapshotShardDifferential, ForkedShardedRunsBitIdentical)
{
    const Wk wk = GetParam();

    RunResult fresh;
    {
        fresh = runOnce(wk, /*staticConfig=*/false, 1);
    }
    ASSERT_TRUE(fresh.correct);

    DeltaConfig cfg = DeltaConfig::delta();
    cfg.shards = 4;
    Delta forked(cfg);
    const auto snap = forked.snapshot();
    for (int rep = 0; rep < 2; ++rep) {
        forked.restore(*snap);

        SuiteParams sp;
        sp.scale = 0.25;
        sp.seed = 7;
        auto wl = makeWorkload(wk, sp);
        TaskGraph graph;
        wl->build(forked, graph);
        const StatSet stats = forked.run(graph);

        std::ostringstream os;
        stats.dumpJson(os, "sim.host.");
        EXPECT_TRUE(wl->check(forked.image())) << "rep " << rep;
        EXPECT_EQ(stats.get("sim.cycles"), fresh.cycles)
            << "rep " << rep;
        EXPECT_EQ(os.str(), fresh.statsJson)
            << "forked 4-shard run " << rep << " diverged for "
            << wkName(wk)
            << ": shard executor state escaped the snapshot";
    }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, SnapshotShardDifferential,
                         ::testing::ValuesIn(allWorkloads()),
                         [](const ::testing::TestParamInfo<Wk>& info) {
                             return wkIdent(info.param);
                         });

// ---------------------------------------------------------------------
// Registration freeze: cross-partition channels after finalize().
// ---------------------------------------------------------------------

/** Minimal component for simulator-level shard tests. */
class Nop : public Ticked
{
  public:
    explicit Nop(std::string name) : Ticked(std::move(name)) {}

    void
    tick(Tick) override
    {
        sleepOnWake();
    }

    bool busy() const override { return false; }
};

TEST(ShardRegistration, CrossPartitionChannelAfterFinalizeIsFatal)
{
    Simulator sim;
    sim.setPartition(0);
    Nop a("producer");
    sim.add(&a);
    sim.setPartition(1);
    Nop b("consumer");
    sim.add(&b);

    // Boundary channels declared before finalize() are fine.
    sim.makeChannel<int>("early", 4, 0, 1);

    sim.setShards(2);
    sim.finalize();

    // Intra-partition channels may still be registered late...
    EXPECT_NO_THROW(sim.makeChannel<int>("late-local", 4, 1, 1));

    // ...but a late cross-partition channel would silently miss the
    // frozen shard boundary lists, so it must fail loudly, naming
    // the channel.
    try {
        sim.makeChannel<int>("late-boundary", 4, 0, 1);
        FAIL() << "expected fatal";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("late-boundary"),
                  std::string::npos)
            << "diagnosis must name the offending channel: "
            << e.what();
    }
}

TEST(ShardRegistration, LateBoundaryChannelFatalEvenAtOneShard)
{
    // A configuration must be legal for every shard count or none,
    // so the freeze applies even when only one executor runs.
    Simulator sim;
    sim.finalize();
    EXPECT_THROW(sim.makeChannel<int>("late", 4, 0, 1), FatalError);
}

TEST(ShardRegistration, SetShardsAfterFinalizePanics)
{
    Simulator sim;
    sim.finalize();
    EXPECT_THROW(sim.setShards(2), PanicError);
}

// ---------------------------------------------------------------------
// Wake-target dedup (flight-recorder audit).
// ---------------------------------------------------------------------

/**
 * Sleeps until cycle 50 on its first tick, re-sleeps until cycle 100
 * when woken early, and goes idle once cycle 100 is reached.
 */
class Sleeper : public Ticked
{
  public:
    Sleeper() : Ticked("sleeper") {}

    void
    tick(Tick now) override
    {
        ticks.push_back(now);
        if (now == 0)
            sleepUntil(50);
        else if (now < 100)
            sleepUntil(100);
        else
            done = true;
    }

    bool busy() const override { return !done; }

    std::vector<Tick> ticks;
    bool done = false;
};

TEST(WakeDedup, ResleepBeforeQuiescenceKeepsEarliestWakeOnly)
{
    Simulator sim;
    obs::FlightRecorder rec(64);
    sim.setFlightRecorder(&rec);

    Sleeper s;
    sim.add(&s);
    // Poke the sleeper mid-sleep so it re-arms its timed wake while
    // the first heap entry (cycle 50) is still queued.
    sim.schedule(20, [&] { s.requestWake(); });

    const Tick end = sim.run(1000);

    // The dedup keeps the earlier queued target: the entry at 50
    // still fires (a harmless spurious wake — the component just
    // re-decides), and only then is the later target (100) queued.
    EXPECT_EQ(s.ticks, (std::vector<Tick>{0, 20, 50, 100}));
    EXPECT_GE(end, Tick{100});

    std::ostringstream os;
    rec.dump(os);
    const std::string log = os.str();

    auto countOf = [&](const std::string& needle) {
        std::size_t n = 0;
        for (std::size_t p = log.find(needle);
             p != std::string::npos; p = log.find(needle, p + 1))
            ++n;
        return n;
    };

    // One sleep and one wake per tick that slept: no duplicate heap
    // traffic for the deduped re-sleep at cycle 20.
    EXPECT_EQ(countOf("sleep  sleeper"), 3u) << log;
    EXPECT_EQ(countOf("wake   sleeper"), 3u) << log;
    // The audit trail shows the dedup decision: at cycle 20 the
    // component asked for 100, yet the next wake arrives at 50 —
    // the earlier queued entry was kept, not duplicated.
    EXPECT_NE(log.find("[@20] sleep  sleeper (until @100)"),
              std::string::npos)
        << log;
    EXPECT_NE(log.find("[@50] wake   sleeper"), std::string::npos)
        << log;
}

// ---------------------------------------------------------------------
// Boundary-channel credit back-pressure (unit level).
// ---------------------------------------------------------------------

TEST(BoundaryChannel, PopFreesCapacityOnlyAtNextCommit)
{
    Channel<int> ch("x", 2);
    ch.setEndpoints(0, 1);
    ASSERT_TRUE(ch.boundary());

    ASSERT_TRUE(ch.push(1));
    ASSERT_TRUE(ch.push(2));
    EXPECT_FALSE(ch.canPush()) << "credit occupancy counts pushes";
    ch.commit();

    EXPECT_EQ(ch.pop(), 1);
    // Unlike a local channel, the freed slot is not pushable until
    // the next commit credits it back — that one-cycle lag is the
    // lookahead the sharded core synchronizes on.
    EXPECT_FALSE(ch.canPush())
        << "credit must come back only at the commit boundary";
    ch.commit();
    EXPECT_TRUE(ch.canPush());
    EXPECT_TRUE(ch.push(3));
}

TEST(BoundaryChannel, LocalChannelFreesCapacityImmediately)
{
    Channel<int> ch("x", 2);
    ASSERT_FALSE(ch.boundary());
    ASSERT_TRUE(ch.push(1));
    ASSERT_TRUE(ch.push(2));
    ch.commit();
    ch.pop();
    EXPECT_TRUE(ch.canPush())
        << "an intra-partition channel keeps same-cycle reuse";
}

} // namespace
