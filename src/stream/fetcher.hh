/**
 * @file
 * WordFetcher: an in-order word-fetch window used by the read engine
 * stages.  Addresses are pushed in stream order; the fetcher issues
 * line requests to DRAM (with same-line coalescing and a bounded
 * outstanding-request count) or port-arbitrated scratchpad reads, and
 * exposes values strictly in push order.
 */

#ifndef TS_STREAM_FETCHER_HH
#define TS_STREAM_FETCHER_HH

#include <cstdint>
#include <deque>
#include <set>

#include "cgra/token.hh"
#include "mem/mem_image.hh"
#include "mem/scratchpad.hh"
#include "stream/lane_io.hh"
#include "stream/stream_desc.hh"

namespace ts
{

/** WordFetcher tuning knobs. */
struct WordFetcherCfg
{
    std::uint32_t maxOutstanding = 4; ///< DRAM line requests
    std::size_t maxWindow = 24;       ///< buffered words
    std::uint32_t issuesPerCycle = 2;
};

/** In-order fetch window over one address space. */
class WordFetcher
{
  public:
    using Cfg = WordFetcherCfg;

    WordFetcher(const MemImage& img, Scratchpad* spm, MemPortIf* mem,
                Cfg cfg = Cfg())
        : img_(img), spm_(spm), mem_(mem), cfg_(cfg)
    {}

    /**
     * Begin a new stream in the given space; invalidates callbacks
     * from prior streams via a generation counter.  @p landing marks
     * a Dram stream whose range was spatially forwarded into the
     * lane's landing zone: words are served at SPM speed from the
     * functional image, without DRAM line requests (DESIGN.md §10).
     */
    void
    reset(Space space, bool landing = false)
    {
        TS_ASSERT(win_.empty() && outstanding_ == 0,
                  "fetcher reset while window live");
        TS_ASSERT(inflightLines_.empty());
        TS_ASSERT(!landing || space == Space::Dram,
                  "landing mode is for Dram streams");
        space_ = space;
        landing_ = landing;
        lastLandingLine_ = kNoLine;
        ++gen_;
    }

    bool windowFull() const { return win_.size() >= cfg_.maxWindow; }
    bool empty() const { return win_.empty(); }

    /** Empty AND no response callbacks still in flight. */
    bool settled() const { return win_.empty() && outstanding_ == 0; }

    /** Whether @p n more addresses fit in the window. */
    bool
    roomFor(std::size_t n) const
    {
        return win_.size() + n <= cfg_.maxWindow;
    }

    /** Queue an address (byte addr for Dram, word offset for Spm). */
    void
    push(Addr addr, std::uint8_t flags)
    {
        TS_ASSERT(!windowFull());
        // Ride along on an already-in-flight line request.
        const bool riding = space_ == Space::Dram &&
                            inflightLines_.count(lineAlign(addr)) != 0;
        win_.push_back(Slot{addr, flags,
                            riding ? St::Requested : St::NeedFetch, 0});
    }

    /** Issue fetches for queued addresses. */
    void pump(Tick now);

    bool
    headReady() const
    {
        return !win_.empty() && win_.front().st == St::Ready;
    }

    Token
    popHead()
    {
        TS_ASSERT(headReady());
        Token t{win_.front().val, win_.front().flags};
        win_.pop_front();
        return t;
    }

    /** DRAM line requests issued but not yet answered. */
    std::uint32_t outstanding() const { return outstanding_; }

    std::uint64_t linesRequested() const { return linesRequested_; }
    std::uint64_t spmReads() const { return spmReads_; }

    /** Words served from the spatial landing zone. */
    std::uint64_t landingWords() const { return landingWords_; }

    /** Distinct DRAM lines those words span — the line requests a
     *  non-forwarded run would have issued (attribution). */
    std::uint64_t landingLines() const { return landingLines_; }

  private:
    enum class St : std::uint8_t { NeedFetch, Requested, Ready };

    struct Slot
    {
        Addr addr;
        std::uint8_t flags;
        St st;
        Word val;
    };

  public:
    /**
     * Copyable mutable state, for snapshot/fork.  The fetcher itself
     * is not assignable (it holds a MemImage reference), so owners
     * save and restore this value instead.  Snapshots are taken at
     * quiescence, where `outstanding` is zero and no response
     * callbacks are in flight.
     */
    struct State
    {
        Space space = Space::Dram;
        std::deque<Slot> win;
        std::set<Addr> inflightLines;
        std::uint32_t outstanding = 0;
        std::uint64_t gen = 0;
        std::uint64_t linesRequested = 0;
        std::uint64_t spmReads = 0;
        bool landing = false;
        Addr lastLandingLine = kNoLine;
        std::uint64_t landingWords = 0;
        std::uint64_t landingLines = 0;
    };

    State
    saveFetchState() const
    {
        State s;
        s.space = space_;
        s.win = win_;
        s.inflightLines = inflightLines_;
        s.outstanding = outstanding_;
        s.gen = gen_;
        s.linesRequested = linesRequested_;
        s.spmReads = spmReads_;
        s.landing = landing_;
        s.lastLandingLine = lastLandingLine_;
        s.landingWords = landingWords_;
        s.landingLines = landingLines_;
        return s;
    }

    void
    restoreFetchState(const State& s)
    {
        space_ = s.space;
        win_ = s.win;
        inflightLines_ = s.inflightLines;
        outstanding_ = s.outstanding;
        gen_ = s.gen;
        linesRequested_ = s.linesRequested;
        spmReads_ = s.spmReads;
        landing_ = s.landing;
        lastLandingLine_ = s.lastLandingLine;
        landingWords_ = s.landingWords;
        landingLines_ = s.landingLines;
    }

  private:
    const MemImage& img_;
    Scratchpad* spm_;
    MemPortIf* mem_;
    Cfg cfg_;

    Space space_ = Space::Dram;
    std::deque<Slot> win_;
    std::set<Addr> inflightLines_;
    std::uint32_t outstanding_ = 0;
    std::uint64_t gen_ = 0;

    std::uint64_t linesRequested_ = 0;
    std::uint64_t spmReads_ = 0;

    static constexpr Addr kNoLine = static_cast<Addr>(-1);
    bool landing_ = false;
    Addr lastLandingLine_ = kNoLine;
    std::uint64_t landingWords_ = 0;
    std::uint64_t landingLines_ = 0;
};

} // namespace ts

#endif // TS_STREAM_FETCHER_HH
