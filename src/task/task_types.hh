/**
 * @file
 * Task types and task instances: TaskStream's first-class hardware
 * task primitives.
 *
 * A TaskType couples a compute body (a DFG mapped onto the fabric, or
 * a builtin coarse-grained kernel) with a stream signature.  A
 * TaskInstance binds concrete stream descriptors.  Because arguments
 * are *streams*, the hardware can (1) estimate the work an instance
 * represents — the annotation behind work-aware load balancing — and
 * (2) recognize producer/consumer and shared-read structure.
 */

#ifndef TS_TASK_TASK_TYPES_HH
#define TS_TASK_TASK_TYPES_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cgra/fabric.hh"
#include "cgra/mapping.hh"
#include "mem/mem_image.hh"
#include "stream/stream_desc.hh"

namespace ts
{

using TaskId = std::uint32_t;
using TaskTypeId = std::uint16_t;

constexpr std::uint32_t kNoGroup = ~std::uint32_t(0);

class TaskInstance;
struct SpawnSet;

/** A coarse-grained builtin kernel body (e.g. a tile factorization)
 *  used where a fine-grained dataflow body would add nothing. */
struct BuiltinBody
{
    /** Functional effect, applied when the compute phase begins. */
    std::function<void(MemImage&, const TaskInstance&)> apply;

    /** Fabric-occupancy model in cycles. */
    std::function<std::uint64_t(const MemImage&, const TaskInstance&)>
        cycles;

    /** Words of output traffic to model after compute. */
    std::function<std::uint64_t(const MemImage&, const TaskInstance&)>
        outputWords;

    /**
     * Dynamic-spawn hook (optional).  Invoked by the task unit right
     * after `apply`; tasks and edges appended to the SpawnSet are
     * shipped to the dispatcher in one TaskSpawn NoC message and join
     * the live dependence graph (see task_graph.hh / DESIGN.md §9).
     */
    std::function<void(MemImage&, const TaskInstance&, SpawnSet&)> spawn;
};

/** A task type: the unit of fabric configuration. */
struct TaskType
{
    TaskTypeId id = 0;
    std::string name;

    /** Dataflow body (null for builtin types). */
    const Dfg* dfg = nullptr;

    /** Placement/routing of the body, shared by all lanes. */
    MappedDfg mapped;

    /** Builtin body (set iff dfg == nullptr). */
    std::optional<BuiltinBody> builtin;

    /**
     * Work estimate for an instance, in abstract work units.  The
     * default sums input-stream element counts; types may override
     * (e.g. cubic tile kernels).
     */
    std::function<double(const MemImage&, const TaskInstance&)> workFn;

    bool isBuiltin() const { return builtin.has_value(); }
};

/** A concrete runnable task. */
class TaskInstance
{
  public:
    TaskId uid = 0;
    TaskTypeId type = 0;

    /** One input stream per DFG input port (builtin: staging reads). */
    std::vector<StreamDesc> inputs;

    /** One output destination per DFG output port. */
    std::vector<WriteDesc> outputs;

    /** Shared-read annotation: group id per input port (or kNoGroup). */
    std::vector<std::uint32_t> inputGroup;

    /** Group id of this task's inputs (kNoGroup when none). */
    std::uint32_t
    anyGroup() const
    {
        for (std::uint32_t g : inputGroup) {
            if (g != kNoGroup)
                return g;
        }
        return kNoGroup;
    }
};

/**
 * Registry of task types.  Owns the DFGs and their fabric mappings;
 * every lane shares the mapped configurations (matching hardware,
 * where the bitstream is broadcast).
 */
class TaskTypeRegistry
{
  public:
    explicit TaskTypeRegistry(const FabricGeometry& geom)
        : mapper_(geom)
    {}

    /** Register a dataflow task type; the DFG is mapped immediately. */
    TaskTypeId addDfgType(std::string name, std::unique_ptr<Dfg> dfg);

    /** Register a builtin (coarse-grained) task type. */
    TaskTypeId addBuiltinType(std::string name, BuiltinBody body);

    /** Override the work estimator of a type. */
    void setWorkFn(
        TaskTypeId id,
        std::function<double(const MemImage&, const TaskInstance&)> fn);

    const TaskType& type(TaskTypeId id) const { return *types_.at(id); }
    std::size_t numTypes() const { return types_.size(); }

    /** Estimate the work of an instance. */
    double estimateWork(const MemImage& img,
                        const TaskInstance& inst) const;

    /**
     * Registration watermark, for snapshot/fork.  The registry is
     * append-only, so rolling back to a mark (truncating everything
     * registered after it) restores the exact earlier state without
     * deep-copying type bodies (std::function kernels).  types and
     * dfgs advance independently: builtin types own no DFG.
     */
    struct Mark
    {
        std::size_t types = 0;
        std::size_t dfgs = 0;
    };

    Mark
    mark() const
    {
        return Mark{types_.size(), dfgs_.size()};
    }

    void rollback(const Mark& m);

  private:
    Mapper mapper_;
    std::vector<std::unique_ptr<TaskType>> types_;
    std::vector<std::unique_ptr<Dfg>> dfgs_;
};

} // namespace ts

#endif // TS_TASK_TASK_TYPES_HH
