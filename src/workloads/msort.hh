/**
 * @file
 * Parallel merge sort: leaf tasks sort fixed chunks (coarse-grained
 * sorter kernels), then a binary tree of merge tasks combines them
 * using the fabric's data-dependent merge unit.
 *
 * Structure exercised: pipelined inter-task dependences — the merge
 * tree's edges are annotated Pipeline, so Delta forwards merged runs
 * chunk-by-chunk and overlapping tree levels execute concurrently,
 * where the static baseline serializes on memory round trips.
 */

#ifndef TS_WORKLOADS_MSORT_HH
#define TS_WORKLOADS_MSORT_HH

#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace ts
{

/** Merge-sort workload parameters. */
struct MsortParams
{
    std::uint64_t n = 8192;       ///< elements (power of two)
    std::uint64_t leafSize = 512; ///< chunk sorted per leaf task
    std::uint64_t seed = 7;
};

/** Sort a vector of 64-bit integers. */
class MsortWorkload : public Workload
{
  public:
    explicit MsortWorkload(const MsortParams& p) : p_(p) {}

    std::string name() const override { return "msort"; }
    void build(Delta& delta, TaskGraph& graph) override;
    bool check(const MemImage& img) const override;

  private:
    MsortParams p_;
    Addr finalAddr_ = 0;
    std::vector<std::int64_t> expected_;
};

} // namespace ts

#endif // TS_WORKLOADS_MSORT_HH
