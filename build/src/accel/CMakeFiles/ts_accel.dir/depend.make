# Empty dependencies file for ts_accel.
# This may be replaced when dependencies are built.
