/**
 * @file
 * Quickstart: the smallest complete Delta program.
 *
 * Defines one dataflow task type (y[i] = 3*x[i] + 7), carves an input
 * array into independent tasks, runs them on an 8-lane Delta via
 * driver::runOne — the shared assemble/run/check/report path every
 * one-shot binary uses — and checks the result.
 *
 *   $ ./build/examples/quickstart
 *   $ ./build/examples/quickstart --trace trace.json --stats-json stats.json
 */

#include <cstdio>

#include "driver/run_one.hh"

using namespace ts;

int
main(int argc, char** argv)
{
    // Shared flags (--trace, --stats-json, --shards, --log, ...),
    // each with a TS_* environment fallback.  This is the only layer
    // that reads the environment; Delta itself never does.
    const driver::RunOptions opt =
        driver::parseCommandLineOrExit(argc, argv);

    const std::size_t n = 1 << 14, chunk = 512;
    Addr in = 0, out = 0;

    driver::RunSpec spec;
    // TaskStream configuration: work-aware balancing + pipeline
    // recovery + shared-read multicast, on 8 lanes.
    spec.cfg = DeltaConfig::delta(8);
    spec.tag = "quickstart";

    spec.build = [&](Delta& delta, TaskGraph& graph) {
        MemImage& img = delta.image();

        // 1. Describe the task body as a dataflow graph.  Every
        //    input port streams tokens into the fabric; immediates
        //    are baked into the configuration.
        auto dfg = std::make_unique<Dfg>("scale");
        const auto x = dfg->addInput();
        const auto m =
            dfg->add(Op::Mul, Operand::ref(x), Operand::immI(3));
        const auto a =
            dfg->add(Op::Add, Operand::ref(m), Operand::immI(7));
        dfg->addOutput(a);
        const TaskTypeId scale =
            delta.registry().addDfgType("scale", std::move(dfg));

        // 2. Lay out data in the functional memory image.
        in = img.allocWords(n);
        out = img.allocWords(n);
        for (std::size_t i = 0; i < n; ++i) {
            img.writeInt(in + i * wordBytes,
                         static_cast<std::int64_t>(i));
        }

        // 3. Emit one task per chunk.  The stream descriptor *is*
        //    the argument: the hardware reads work estimates straight
        //    from it.
        for (std::size_t c = 0; c < n; c += chunk) {
            WriteDesc dst;
            dst.base = out + c * wordBytes;
            graph.addTask(scale,
                          {StreamDesc::linear(Space::Dram,
                                              in + c * wordBytes,
                                              chunk)},
                          {dst});
        }
    };

    std::string tracePath;
    spec.check = [&](Delta& delta) {
        if (delta.tracer().enabled())
            tracePath = delta.tracer().path();
        std::size_t errors = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (delta.image().readInt(out + i * wordBytes) !=
                3 * static_cast<std::int64_t>(i) + 7) {
                ++errors;
            }
        }
        return errors == 0;
    };

    // 4. Run to completion and inspect results + statistics.
    const driver::RunResult r = driver::runOne(opt, spec);

    std::printf("quickstart: %zu tasks, %zu words, %s\n", n / chunk,
                n, r.correct ? "PASS" : "FAIL");
    std::printf("  cycles         : %.0f\n", r.cycles);
    std::printf("  DRAM lines read: %.0f\n",
                r.stats.get("mem.linesRead"));
    std::printf("  NoC word-hops  : %.0f\n",
                r.stats.get("noc.wordHops"));
    std::printf("  lane imbalance : %.3f (max/mean busy)\n",
                r.stats.get("delta.imbalance"));
    std::printf("  cycle breakdown: %.0f%% busy, %.0f%% memWait, "
                "%.0f%% nocWait, %.0f%% idle\n",
                100 * r.stats.get("delta.accounting.frac.busy"),
                100 * r.stats.get("delta.accounting.frac.memWait"),
                100 * r.stats.get("delta.accounting.frac.nocWait"),
                100 * r.stats.get("delta.accounting.frac.idle"));
    if (!tracePath.empty()) {
        std::printf("  trace          : %s (%.0f events; load in "
                    "https://ui.perfetto.dev)\n",
                    tracePath.c_str(), r.stats.get("trace.events"));
    }
    return r.correct ? 0 : 1;
}
