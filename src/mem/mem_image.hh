/**
 * @file
 * The functional backing store of the simulated address space.
 *
 * Timing and traffic are modeled by MainMemory / the NoC; the actual
 * data values live here and are read or written at request-service
 * time.  Correctness of this split relies on task dependences
 * ordering all conflicting accesses, which the TaskStream execution
 * model guarantees for well-formed task graphs (and which the test
 * suite checks end to end).
 */

#ifndef TS_MEM_MEM_IMAGE_HH
#define TS_MEM_MEM_IMAGE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"

namespace ts
{

/** Word-granular sparse memory image with a bump allocator. */
class MemImage
{
  public:
    /** Read the word at a word-aligned byte address (0 if untouched). */
    Word readWord(Addr addr) const;

    /** Write the word at a word-aligned byte address. */
    void writeWord(Addr addr, Word value);

    /** Read @p n consecutive words starting at @p addr. */
    std::vector<Word> readWords(Addr addr, std::size_t n) const;

    /** Write a span of words starting at @p addr. */
    void writeWords(Addr addr, const std::vector<Word>& values);

    /** Convenience: read/write typed 64-bit integers. */
    std::int64_t readInt(Addr addr) const { return asInt(readWord(addr)); }
    void writeInt(Addr addr, std::int64_t v) { writeWord(addr, fromInt(v)); }

    /** Convenience: read/write IEEE doubles. */
    double readDouble(Addr addr) const { return asDouble(readWord(addr)); }
    void writeDouble(Addr addr, double v) { writeWord(addr, fromDouble(v)); }

    /**
     * Allocate @p words words, line-aligned, and return the base
     * address.  Purely a host-side convenience for laying out
     * workload data; the image itself is unbounded.
     */
    Addr allocWords(std::size_t words);

    /** Total words allocated so far via allocWords. */
    std::size_t allocatedWords() const { return brk_ / wordBytes; }

  private:
    static constexpr std::size_t pageWords_ = 4096;

    const std::vector<Word>* findPage(Addr addr) const;
    std::vector<Word>& touchPage(Addr addr);

    std::unordered_map<std::uint64_t, std::vector<Word>> pages_;
    Addr brk_ = lineBytes; // keep address 0 unused as a poison value
};

} // namespace ts

#endif // TS_MEM_MEM_IMAGE_HH
