/**
 * @file
 * The host-visible task graph: instances plus *annotated* dependences.
 *
 * This is the programming interface the paper argues for: instead of
 * opaque "wait for task X" edges, every edge says *what structure* it
 * carries —
 *   Barrier:  plain completion ordering;
 *   Pipeline: the consumer elementwise-consumes a named output stream
 *             of the producer (hardware may forward it);
 * and shared-read groups say "these tasks all read this range".
 * The same graph runs unchanged on the static-parallel baseline,
 * which simply ignores the annotations.
 */

#ifndef TS_TASK_TASK_GRAPH_HH
#define TS_TASK_TASK_GRAPH_HH

#include <algorithm>
#include <vector>

#include "task/task_types.hh"

namespace ts
{

/** Dependence kinds (the annotation is the contribution). */
enum class DepKind : std::uint8_t
{
    Barrier,
    Pipeline,
};

/** An annotated dependence edge. */
struct DepEdge
{
    TaskId producer = 0;
    TaskId consumer = 0;
    DepKind kind = DepKind::Barrier;
    std::uint8_t producerPort = 0; ///< Pipeline: forwarded output port
    std::uint8_t consumerPort = 0; ///< Pipeline: consuming input port
};

/** A shared-read group over a contiguous DRAM range. */
struct SharedGroup
{
    std::uint32_t id = 0;
    Addr rangeBase = 0;       ///< line-aligned byte address
    std::uint64_t words = 0;  ///< range length in words
    std::vector<TaskId> members;
};

/** Measured execution span of one task (dispatcher-recorded). */
struct TaskSpan
{
    TaskId uid = 0;
    Tick start = 0;       ///< cycle the lane began executing
    Tick end = 0;         ///< cycle the dispatcher saw completion
    std::int32_t lane = -1;

    Tick service() const { return end >= start ? end - start : 0; }
};

/** Result of dependence-weighted critical-path analysis. */
struct CritPathResult
{
    /** Longest dependence-weighted path through the measured spans
     *  (a lower bound on any schedule of this graph on these
     *  service times). */
    Tick criticalPathCycles = 0;

    /** Sum of all measured service times (serial execution cost). */
    Tick serialCycles = 0;

    /** Tasks on the critical path, producer-to-consumer order. */
    std::vector<TaskId> path;

    /**
     * Lower bound on makespan for @p lanes lanes:
     * max(critical path, serial work / lanes).
     */
    Tick
    boundCycles(std::uint32_t lanes) const
    {
        if (lanes == 0)
            return criticalPathCycles;
        const Tick balanced = (serialCycles + lanes - 1) / lanes;
        return std::max(criticalPathCycles, balanced);
    }
};

/** Host-side container for a workload's tasks. */
class TaskGraph
{
  public:
    /**
     * Add a task.  Tasks must be added in a topological order of the
     * intended dependences (producers before consumers).
     */
    TaskId addTask(TaskTypeId type, std::vector<StreamDesc> inputs,
                   std::vector<WriteDesc> outputs);

    /** Add a completion-ordering edge. */
    void addBarrier(TaskId producer, TaskId consumer);

    /**
     * Add a pipelined dependence: @p consumer's input port
     * @p consumerPort elementwise-consumes @p producer's output port
     * @p producerPort.  The consumer's input descriptor must describe
     * the memory fallback (used by the baseline, and by Delta when
     * the edge cannot be activated).
     */
    void addPipeline(TaskId producer, std::uint8_t producerPort,
                     TaskId consumer, std::uint8_t consumerPort);

    /** Create a shared-read group over [base, base + words*8). */
    std::uint32_t addSharedGroup(Addr rangeBase, std::uint64_t words);

    /**
     * Annotate @p task's input @p port as reading within group
     * @p group; its descriptor's dataBase must lie in the range.
     */
    void setSharedInput(TaskId task, std::uint32_t port,
                        std::uint32_t group);

    const std::vector<TaskInstance>& tasks() const { return tasks_; }
    const std::vector<DepEdge>& edges() const { return edges_; }
    const std::vector<SharedGroup>& groups() const { return groups_; }

    TaskInstance& task(TaskId id) { return tasks_.at(id); }
    const TaskInstance& task(TaskId id) const { return tasks_.at(id); }

    std::size_t numTasks() const { return tasks_.size(); }

    /** Validate structural invariants (topological ids, ranges). */
    void validate() const;

    /**
     * Dependence-weighted longest path over this graph, weighting
     * each task by its measured service time in @p spans (indexed by
     * uid; tasks missing a span weigh zero).  Tasks are topological
     * by uid, so one forward sweep suffices.
     */
    CritPathResult
    criticalPath(const std::vector<TaskSpan>& spans) const;

  private:
    std::vector<TaskInstance> tasks_;
    std::vector<DepEdge> edges_;
    std::vector<SharedGroup> groups_;
};

} // namespace ts

#endif // TS_TASK_TASK_GRAPH_HH
