/**
 * @file
 * Tests for the structure-recovery analyzer: histogram statistics
 * (log buckets, percentiles, derived StatSet entries), JSON key
 * escaping and non-finite handling in dumps, the analysis JSON
 * reader and report renderer, per-mechanism attribution consistency
 * on irregular workloads, critical-path bounds, workload-name
 * parsing, and cycle-accounting aggregates on asymmetric multi-lane
 * configurations (including a lane that never fires).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "accel/delta.hh"
#include "analysis/json.hh"
#include "analysis/report.hh"
#include "sim/logging.hh"
#include "trace/accounting.hh"
#include "workloads/workload.hh"

namespace ts
{
namespace
{

using analysis::Json;
using analysis::parseJson;
using analysis::RunStats;

// ---------------------------------------------------------------------
// Histogram units
// ---------------------------------------------------------------------

TEST(AnalysisHistogram, LogBucketsCoverFullRange)
{
    Histogram h; // default: 0, 1, 2, 4, ... 2^46
    h.sample(0);
    h.sample(1);
    h.sample(3);
    h.sample(1e12);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 1e12);
    EXPECT_NEAR(h.mean(), (0 + 1 + 3 + 1e12) / 4, 1e-3);
}

TEST(AnalysisHistogram, PercentilesAreMonotonicAndClamped)
{
    Histogram h;
    for (int i = 1; i <= 1000; ++i)
        h.sample(i);
    const double p50 = h.percentile(0.50);
    const double p95 = h.percentile(0.95);
    const double p99 = h.percentile(0.99);
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_LE(p99, h.max());
    EXPECT_GE(p50, h.min());
    // Log buckets bound the relative error by the bucket ratio (2x).
    EXPECT_GE(p50, 250.0);
    EXPECT_LE(p50, 1000.0);
    EXPECT_EQ(h.percentile(0.0), h.min());
    EXPECT_EQ(h.percentile(1.0), h.max());
}

TEST(AnalysisHistogram, EmptyHistogramIsZeros)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 0.0);
    EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(AnalysisHistogram, StatSetSampleDerivesDottedStats)
{
    StatSet s;
    for (int i = 1; i <= 100; ++i)
        s.sample("lat", i);
    EXPECT_EQ(s.get("lat.count"), 100.0);
    EXPECT_NEAR(s.get("lat.mean"), 50.5, 1e-9);
    EXPECT_EQ(s.get("lat.min"), 1.0);
    EXPECT_EQ(s.get("lat.max"), 100.0);
    EXPECT_LE(s.get("lat.p50"), s.get("lat.p95"));
    EXPECT_LE(s.get("lat.p95"), s.get("lat.p99"));
    EXPECT_LE(s.get("lat.p99"), s.get("lat.max"));

    // Derived stats participate in prefix queries and dumps.
    EXPECT_EQ(s.matchPrefix("lat.").size(), 7u);
    ASSERT_NE(s.histogram("lat"), nullptr);
    EXPECT_EQ(s.histogram("lat")->count(), 100u);
    EXPECT_EQ(s.histogramNames(),
              std::vector<std::string>{"lat"});

    // More samples refresh the derived values.
    s.sample("lat", 1000);
    EXPECT_EQ(s.get("lat.count"), 101.0);
    EXPECT_EQ(s.get("lat.max"), 1000.0);
}

TEST(AnalysisHistogram, StatSampleRoutesToActiveSet)
{
    EXPECT_EQ(StatSet::active(), nullptr);
    statSample("nowhere", 1.0); // no active set: dropped, no crash
    StatSet s;
    StatSet::setActive(&s);
    EXPECT_TRUE(statsOn());
    statSample("probe", 42.0);
    StatSet::setActive(nullptr);
    statSample("probe", 7.0); // inactive again: dropped
    EXPECT_EQ(s.get("probe.count"), 1.0);
    EXPECT_EQ(s.get("probe.max"), 42.0);
}

// ---------------------------------------------------------------------
// JSON: escaping, non-finite values, the analysis reader
// ---------------------------------------------------------------------

TEST(AnalysisJson, DumpEscapesKeysAndParsesBack)
{
    StatSet s;
    s.set("plain.key", 1);
    s.set("quote\"back\\slash", 2);
    s.set("tab\tnewline\ncontrol\x01", 3);
    std::ostringstream os;
    s.dumpJson(os);

    Json doc;
    ASSERT_TRUE(parseJson(os.str(), doc)) << os.str();
    ASSERT_TRUE(doc.isObj());
    EXPECT_EQ(doc.at("plain.key").num, 1.0);
    EXPECT_EQ(doc.at("quote\"back\\slash").num, 2.0);
    // \x01 is emitted as  and decoded back.
    EXPECT_EQ(doc.at("tab\tnewline\ncontrol\x01").num, 3.0);
}

TEST(AnalysisJson, NonFiniteValuesSerializeAsNull)
{
    StatSet s;
    s.set("nan", std::nan(""));
    s.set("inf", std::numeric_limits<double>::infinity());
    s.set("ok", 5);
    std::ostringstream os;
    s.dumpJson(os);

    Json doc;
    ASSERT_TRUE(parseJson(os.str(), doc)) << os.str();
    EXPECT_EQ(doc.at("nan").kind, Json::Kind::Null);
    EXPECT_EQ(doc.at("inf").kind, Json::Kind::Null);
    EXPECT_EQ(doc.at("ok").num, 5.0);

    // statsFromJson drops the null entries rather than mangling them.
    const RunStats rs = analysis::statsFromJson(doc);
    EXPECT_FALSE(rs.has("nan"));
    EXPECT_FALSE(rs.has("inf"));
    EXPECT_EQ(rs.getOr("ok"), 5.0);
}

TEST(AnalysisJson, ReaderHandlesStandardShapes)
{
    Json doc;
    ASSERT_TRUE(parseJson(
        R"({"a": [1, 2.5, -3e2], "b": {"t": true, "f": false},
            "n": null, "s": "xAy"})",
        doc));
    EXPECT_EQ(doc.at("a").arr.size(), 3u);
    EXPECT_EQ(doc.at("a").arr[2].num, -300.0);
    EXPECT_TRUE(doc.at("b").at("t").b);
    EXPECT_EQ(doc.at("n").kind, Json::Kind::Null);
    EXPECT_EQ(doc.at("s").str, "xAy");

    Json bad;
    EXPECT_FALSE(parseJson("{\"unterminated\": ", bad));
    EXPECT_FALSE(parseJson("{} trailing", bad));
}

TEST(AnalysisJson, BenchWrapperCarriesMetadata)
{
    Json doc;
    ASSERT_TRUE(parseJson(
        R"({"workload": "spmv", "policy": "workaware", "lanes": 8,
            "correct": true, "stats": {"delta.cycles": 123}})",
        doc));
    const RunStats rs = analysis::statsFromJson(doc);
    EXPECT_EQ(rs.workload, "spmv");
    EXPECT_EQ(rs.policy, "workaware");
    EXPECT_EQ(rs.getOr("delta.cycles"), 123.0);
}

// ---------------------------------------------------------------------
// Suite runner: workload names
// ---------------------------------------------------------------------

TEST(AnalysisSuite, WorkloadNamesRoundTrip)
{
    for (const Wk w : allWorkloads())
        EXPECT_EQ(wkFromName(wkName(w)), w);
}

TEST(AnalysisSuite, UnknownWorkloadListsValidNames)
{
    try {
        wkFromName("bogus");
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("bogus"), std::string::npos);
        EXPECT_NE(what.find("valid workloads"), std::string::npos);
        for (const Wk w : allWorkloads())
            EXPECT_NE(what.find(wkName(w)), std::string::npos);
    }
}

TEST(AnalysisSuite, WorkloadListParsing)
{
    EXPECT_EQ(workloadsFromList(""), allWorkloads());
    EXPECT_EQ(workloadsFromList("all"), allWorkloads());
    const std::vector<Wk> two = workloadsFromList(" spmv , msort ");
    ASSERT_EQ(two.size(), 2u);
    EXPECT_EQ(two[0], Wk::Spmv);
    EXPECT_EQ(two[1], Wk::Msort);
    EXPECT_THROW(workloadsFromList("spmv,junk"), FatalError);
    EXPECT_THROW(workloadsFromList(" , "), FatalError);
}

// ---------------------------------------------------------------------
// End-to-end attribution and histogram consistency
// ---------------------------------------------------------------------

StatSet
runSuiteWorkload(Wk w, const DeltaConfig& cfg, double scale)
{
    SuiteParams sp;
    sp.scale = scale;
    auto wl = makeWorkload(w, sp);
    Delta delta(cfg);
    TaskGraph graph;
    wl->build(delta, graph);
    StatSet stats = delta.run(graph);
    EXPECT_TRUE(wl->check(delta.image())) << wkName(w);
    return stats;
}

void
checkAttributionInvariants(const StatSet& s)
{
    // Load balance: avoided = max(0, shadow - actual), by definition.
    const double shadow =
        s.get("delta.attrib.loadbalance.shadowStaticMaxService");
    const double actual =
        s.get("delta.attrib.loadbalance.actualMaxService");
    const double avoided =
        s.get("delta.attrib.loadbalance.imbalanceCyclesAvoided");
    EXPECT_NEAR(avoided, std::max(0.0, shadow - actual), 1e-9);
    EXPECT_GE(actual, 0.0);

    // Multicast: saved = max(0, unicast-equivalent - actual).
    const double fill = s.get("delta.attrib.multicast.fillLines");
    const double equiv =
        s.get("delta.attrib.multicast.unicastLinesEquiv");
    const double saved =
        s.get("delta.attrib.multicast.dramLinesSaved");
    EXPECT_NEAR(saved, std::max(0.0, equiv - fill), 1e-9);
    EXPECT_NEAR(s.get("delta.attrib.multicast.dramBytesSaved"),
                saved * lineBytes, 1e-9);
    const double hopsSaved =
        s.get("delta.attrib.multicast.wordHopsSaved");
    EXPECT_NEAR(hopsSaved,
                std::max(0.0,
                         s.get("delta.attrib.multicast."
                               "unicastEquivWordHops") -
                             s.get("delta.attrib.multicast.wordHops")),
                1e-9);

    // Pipeline overlap is a non-negative cycle count.
    EXPECT_GE(s.get("delta.attrib.pipeline.overlapCycles"), 0.0);

    // Critical path: path <= serial work; bound >= both components.
    const double path = s.get("delta.critpath.cycles");
    const double serial = s.get("delta.critpath.serialCycles");
    const double bound = s.get("delta.critpath.boundCycles");
    const double lanes = s.get("delta.lanes");
    EXPECT_LE(path, serial);
    EXPECT_GE(bound, path);
    EXPECT_GE(bound + 1, serial / lanes);

    // Histogram consistency: per-type service counts sum to the
    // completed-task count, and percentiles are ordered.
    double typeCount = 0;
    for (const auto& [name, value] : s.matchPrefix("task.")) {
        const std::string suffix = ".serviceCycles.count";
        if (name.size() > suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
            typeCount += value;
            const std::string base =
                name.substr(0, name.size() - std::string("count").size());
            EXPECT_LE(s.get(base + "min"), s.get(base + "mean"));
            EXPECT_LE(s.get(base + "mean"), s.get(base + "max"));
            EXPECT_LE(s.get(base + "p50"), s.get(base + "p95"));
            EXPECT_LE(s.get(base + "p95"), s.get(base + "p99"));
            EXPECT_LE(s.get(base + "p99"), s.get(base + "max"));
        }
    }
    EXPECT_EQ(typeCount, s.get("dispatcher.tasksCompleted"));

    // Only tasks that pass through the ready queue sample readyWait
    // (pipeline co-dispatch bypasses it), so count is bounded.
    EXPECT_LE(s.get("dispatcher.readyWait.count"),
              s.get("dispatcher.tasksCompleted"));
    EXPECT_GE(s.get("dispatcher.readyWait.count"), 1.0);
}

TEST(AnalysisAttribution, MulticastWorkloadHasNonzeroSavings)
{
    // spmv annotates shared reads of the dense vector: the multicast
    // group must fire and save DRAM lines vs. unicast replay.
    const StatSet s =
        runSuiteWorkload(Wk::Spmv, DeltaConfig::delta(4), 0.25);
    checkAttributionInvariants(s);
    EXPECT_GT(s.get("dispatcher.groupsFired"), 0.0);
    EXPECT_GT(s.get("delta.attrib.multicast.dramLinesSaved"), 0.0);
    EXPECT_GT(s.get("noc.mcast.packets"), 0.0);
}

TEST(AnalysisAttribution, PipelineWorkloadHasNonzeroOverlap)
{
    // msort's merge tree is pipelined: activated pipes must recover
    // producer/consumer overlap cycles.
    const StatSet s =
        runSuiteWorkload(Wk::Msort, DeltaConfig::delta(4), 0.25);
    checkAttributionInvariants(s);
    EXPECT_GT(s.get("delta.attrib.pipeline.pipesActivated"), 0.0);
    EXPECT_GT(s.get("delta.attrib.pipeline.overlapCycles"), 0.0);
}

TEST(AnalysisAttribution, StaticBaselineRespectsCritPathBound)
{
    // Without pipelining, no task overlaps its dependence
    // predecessors, so the measured critical-path bound is a true
    // lower bound on the achieved cycle count.
    const StatSet s = runSuiteWorkload(
        Wk::Spmv, DeltaConfig::staticBaseline(4), 0.25);
    checkAttributionInvariants(s);
    EXPECT_LE(s.get("delta.critpath.boundCycles"),
              s.get("delta.cycles"));
    // The baseline recovers nothing: no pipes, no multicast.
    EXPECT_EQ(s.get("delta.attrib.pipeline.pipesActivated"), 0.0);
    EXPECT_EQ(s.get("delta.attrib.multicast.fillLines"), 0.0);
}

TEST(AnalysisAttribution, ProbesInactiveOutsideRun)
{
    // Delta::run deactivates the sampling sink on exit, even though
    // the StatSet it returned is still alive.
    const StatSet s =
        runSuiteWorkload(Wk::Centroid, DeltaConfig::delta(2), 0.25);
    EXPECT_EQ(StatSet::active(), nullptr);
    EXPECT_GT(s.get("noc.pktLatency.count"), 0.0);
    EXPECT_GT(s.get("dram.queueWait.count"), 0.0);
}

// ---------------------------------------------------------------------
// Cycle accounting on asymmetric configurations
// ---------------------------------------------------------------------

/** Run a tiny elementwise workload with a chosen task count. */
StatSet
runTinyGraph(std::uint32_t lanes, std::size_t tasks)
{
    Delta delta(DeltaConfig::delta(lanes));
    MemImage& img = delta.image();

    auto dfg = std::make_unique<Dfg>("inc");
    const auto x = dfg->addInput();
    const auto a =
        dfg->add(Op::Add, Operand::ref(x), Operand::immI(1));
    dfg->addOutput(a);
    const TaskTypeId inc =
        delta.registry().addDfgType("inc", std::move(dfg));

    const std::size_t chunk = 64;
    const std::size_t n = chunk * tasks;
    const Addr in = img.allocWords(n);
    const Addr out = img.allocWords(n);
    for (std::size_t i = 0; i < n; ++i)
        img.writeInt(in + i * wordBytes, static_cast<std::int64_t>(i));

    TaskGraph graph;
    for (std::size_t t = 0; t < tasks; ++t) {
        WriteDesc dst;
        dst.base = out + t * chunk * wordBytes;
        graph.addTask(
            inc,
            {StreamDesc::linear(Space::Dram,
                                in + t * chunk * wordBytes, chunk)},
            {dst});
    }
    StatSet stats = delta.run(graph);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(img.readInt(out + i * wordBytes),
                  static_cast<std::int64_t>(i) + 1);
    }
    return stats;
}

void
checkBucketsSumPerLane(const StatSet& s, std::uint32_t lanes)
{
    const double cycles = s.get("delta.cycles");
    for (std::uint32_t l = 0; l < lanes; ++l) {
        const std::string prefix =
            "lane" + std::to_string(l) + ".tu.cycles.";
        double sum = 0;
        for (std::size_t c = 0; c < kNumCycleClasses; ++c) {
            sum += s.get(prefix +
                         cycleClassName(static_cast<CycleClass>(c)));
        }
        EXPECT_EQ(sum, cycles) << "lane " << l;
    }
}

TEST(AnalysisAccounting, BucketsSumOnAsymmetricLaneCounts)
{
    // Lane counts that don't divide the task count (3 and 5) leave
    // unequal shares; the per-lane invariant must hold regardless.
    for (const std::uint32_t lanes : {3u, 5u}) {
        const StatSet s = runTinyGraph(lanes, 7);
        checkBucketsSumPerLane(s, lanes);
        checkAttributionInvariants(s);
    }
}

TEST(AnalysisAccounting, LaneThatNeverFiresIsAllIdle)
{
    // 2 tasks on 5 lanes: at least three lanes never run anything,
    // yet their buckets must still account for every cycle.
    const std::uint32_t lanes = 5;
    const StatSet s = runTinyGraph(lanes, 2);
    checkBucketsSumPerLane(s, lanes);

    const double cycles = s.get("delta.cycles");
    std::uint32_t idleLanes = 0;
    for (std::uint32_t l = 0; l < lanes; ++l) {
        const std::string prefix = "lane" + std::to_string(l) + ".tu.";
        if (s.get(prefix + "tasksRun") == 0.0) {
            ++idleLanes;
            EXPECT_EQ(s.get(prefix + "cycles.busy"), 0.0);
            EXPECT_EQ(s.get(prefix + "cycles.idle"), cycles);
        }
    }
    EXPECT_GE(idleLanes, 3u);
}

// ---------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------

RunStats
toRunStats(const StatSet& s)
{
    std::ostringstream os;
    s.dumpJson(os);
    Json doc;
    EXPECT_TRUE(parseJson(os.str(), doc));
    return analysis::statsFromJson(doc);
}

TEST(AnalysisReport, PrintsAllSectionsFromRealRun)
{
    const StatSet stats =
        runSuiteWorkload(Wk::Spmv, DeltaConfig::delta(4), 0.25);
    const RunStats run = toRunStats(stats);

    std::ostringstream os;
    analysis::printReport(os, run);
    const std::string text = os.str();
    EXPECT_NE(text.find("Cycle accounting"), std::string::npos);
    EXPECT_NE(text.find("Mechanism attribution"), std::string::npos);
    EXPECT_NE(text.find("Critical path"), std::string::npos);
    EXPECT_NE(text.find("Slowest task types"), std::string::npos);
    EXPECT_NE(text.find("loadbalance"), std::string::npos);
    EXPECT_NE(text.find("pipeline"), std::string::npos);
    EXPECT_NE(text.find("multicast"), std::string::npos);
}

TEST(AnalysisReport, SpeedupAgainstBaseline)
{
    const RunStats dyn = toRunStats(
        runSuiteWorkload(Wk::Spmv, DeltaConfig::delta(4), 0.25));
    const RunStats sta = toRunStats(runSuiteWorkload(
        Wk::Spmv, DeltaConfig::staticBaseline(4), 0.25));

    const double x = analysis::speedupVs(dyn, sta);
    EXPECT_GT(x, 1.0) << "delta must beat the static baseline";

    std::ostringstream os;
    analysis::ReportOptions opt;
    opt.baseline = &sta;
    analysis::printReport(os, dyn, opt);
    EXPECT_NE(os.str().find("Speedup vs baseline"), std::string::npos);
}

TEST(AnalysisReport, SlowestTaskTypesSortedByP95)
{
    RunStats s;
    s.values["task.a.serviceCycles.count"] = 4;
    s.values["task.a.serviceCycles.p95"] = 100;
    s.values["task.b.serviceCycles.count"] = 4;
    s.values["task.b.serviceCycles.p95"] = 300;
    s.values["task.c.serviceCycles.count"] = 4;
    s.values["task.c.serviceCycles.p95"] = 200;
    const auto rows = analysis::slowestTaskTypes(s, 2);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].type, "b");
    EXPECT_EQ(rows[1].type, "c");
}

} // namespace
} // namespace ts
