#include "driver/run_one.hh"

#include <atomic>
#include <fstream>

#include "sim/logging.hh"

namespace ts
{
namespace driver
{

namespace
{

/**
 * The bench-JSON wrapper for a one-shot run, written to
 * opt.benchJsonDir as `<seq>_<tag>.json`.  The process-wide sequence
 * number keeps files from a bench that runs many points in one
 * process distinct and in execution order (sweeps use deterministic
 * point tags instead — see sweep.cc).
 */
void
emitBenchJson(const RunOptions& opt, const std::string& tag,
              const std::string& name, const DeltaConfig& cfg,
              const RunResult& r)
{
    if (opt.benchJsonDir.empty())
        return;
    static std::atomic<int> seq{0};
    const std::string path =
        opt.benchJsonDir + "/" +
        std::to_string(seq.fetch_add(1, std::memory_order_relaxed)) +
        "_" + tag + ".json";
    std::ofstream os(path);
    if (!os) {
        warn("runOne: cannot write '", path, "'");
        return;
    }
    os << "{\n  \"workload\": \"" << name << "\",\n"
       << "  \"policy\": \"" << schedPolicyName(cfg.policy) << "\",\n"
       << "  \"steal\": \"" << stealPolicyName(cfg.steal) << "\",\n"
       << "  \"lanes\": " << cfg.lanes << ",\n"
       << "  \"correct\": " << (r.correct ? "true" : "false") << ",\n"
       << "  \"stats\": ";
    r.stats.dumpJson(os);
    os << "}\n";
}

} // namespace

RunResult
runOne(const RunOptions& opt, const RunSpec& spec)
{
    Delta delta(opt.applyTo(spec.cfg));
    TaskGraph graph;
    spec.build(delta, graph);

    RunResult r;
    r.stats = delta.run(graph);
    r.cycles = r.stats.get("delta.cycles");
    r.correct = !spec.check || spec.check(delta);
    const std::string tag = spec.tag.empty() ? "run" : spec.tag;
    emitBenchJson(opt, tag, spec.name.empty() ? tag : spec.name,
                  spec.cfg, r);
    return r;
}

RunResult
runOne(const RunOptions& opt, Workload& wl, DeltaConfig cfg)
{
    RunSpec spec;
    spec.cfg = cfg;
    spec.build = [&wl](Delta& d, TaskGraph& g) { wl.build(d, g); };
    spec.check = [&wl](Delta& d) { return wl.check(d.image()); };
    spec.tag = wl.name() + "_" +
               std::string(schedPolicyName(cfg.policy)) + "_l" +
               std::to_string(cfg.lanes);
    spec.name = wl.name();
    return runOne(opt, spec);
}

RunResult
runOne(const RunOptions& opt, Wk w, DeltaConfig cfg)
{
    const auto wl = makeWorkload(w, opt.suiteParams());
    return runOne(opt, *wl, cfg);
}

} // namespace driver
} // namespace ts
