/**
 * @file
 * The delta-sweep daemon: a Unix-domain-socket service that executes
 * sweep requests through the shared engine (src/driver/sweep.hh) and
 * streams per-cell results back as line-delimited JSON.
 *
 * Protocol (one JSON object per line, both directions):
 *
 *   request  {"op":"ping"}
 *   reply    {"ok":true}
 *
 *   request  {"op":"shutdown"}
 *   reply    {"ok":true}            (then the daemon exits)
 *
 *   request  {"op":"sweep","grid":{"<key>":"<value>", ...}}
 *     where every grid entry is a string applied through the same
 *     applyGridKey() vocabulary as grid files and CLI flags (see
 *     driver/grid.hh), so a request line, a grid file, and the
 *     equivalent flags mean exactly the same sweep.  When the grid
 *     includes "out", the daemon writes the aggregate JSON report to
 *     that path itself.
 *   replies  {"event":"start","runs":N}
 *            {"event":"cell","tag":"...","source":"cache"|"run",
 *             "ok":true,"cycles":N}     (one per point, completion
 *                                        order)
 *            {"event":"done","ok":true,"failures":0,
 *             "hits":H,"misses":M}
 *     or, on a malformed or invalid request,
 *            {"event":"error","message":"..."}
 *
 * The daemon serves one connection at a time (each sweep already
 * saturates the host thread pool) and keeps serving after request
 * errors; only "shutdown" or a fatal socket error ends serve().
 */

#ifndef TS_SERVICE_SWEEP_SERVICE_HH
#define TS_SERVICE_SWEEP_SERVICE_HH

#include <cstdint>
#include <ostream>
#include <string>

namespace ts
{
namespace service
{

/** Daemon-side configuration. */
struct ServeConfig
{
    /** Filesystem path of the AF_UNIX listening socket.  A stale
     *  socket file at this path is replaced. */
    std::string socketPath;

    /** Cap on served sweep requests (0 = unlimited); tests use 1..N
     *  to bound a serve() call without a shutdown request. */
    std::uint64_t maxRequests = 0;
};

/**
 * Bind @p cfg.socketPath and serve requests until a shutdown request
 * (or the request cap) is reached.  Blocking; fatal() on socket
 * setup errors.
 */
void serve(const ServeConfig& cfg);

/**
 * Client: connect to @p socketPath, send @p requestJson as one line,
 * and echo every reply line to @p replies.  Returns the sweep exit
 * status: 0 when a done event reported ok, 1 when it reported
 * failures, 2 on an error event or a broken connection.
 */
int requestSweep(const std::string& socketPath,
                 const std::string& requestJson, std::ostream& replies);

/** Client: send {"op":"ping"}; true iff the daemon answered ok. */
bool ping(const std::string& socketPath);

/** Client: send {"op":"shutdown"}; true iff the daemon acknowledged
 *  before exiting. */
bool shutdown(const std::string& socketPath);

} // namespace service
} // namespace ts

#endif // TS_SERVICE_SWEEP_SERVICE_HH
