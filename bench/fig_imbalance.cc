/**
 * @file
 * Fig-6: load balance.  Per-lane busy-cycle distribution under each
 * scheduling policy for the skew-heavy workloads; imbalance is
 * max/mean lane busy time (1.0 = perfect).  The last series adds NoC
 * work stealing on top of work-aware placement — what dispatch-time
 * estimates get wrong, run-time stealing claws back.
 */

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.hh"

namespace
{

using namespace ts;
using namespace ts::bench;

const std::vector<Wk> kWorkloads = {Wk::Spmv, Wk::Join, Wk::Tricount};

/** One policy series of the figure. */
struct Series
{
    const char* label;
    SchedPolicy policy;
    StealPolicy steal;
};

const std::vector<Series> kSeries = {
    {"static", SchedPolicy::Static, StealPolicy::None},
    {"dyn-count", SchedPolicy::DynCount, StealPolicy::None},
    {"work-aware", SchedPolicy::WorkAware, StealPolicy::None},
    {"work+steal", SchedPolicy::WorkAware, StealPolicy::StealHalf},
};

struct Row
{
    double minBusy = 0, meanBusy = 0, maxBusy = 0, imbalance = 0,
           stolen = 0, cycles = 0;
};

std::map<std::pair<Wk, const Series*>, Row> gRows;

Row
measure(Wk w, const Series& s)
{
    DeltaConfig cfg = DeltaConfig::delta(8);
    cfg.policy = s.policy;
    cfg.steal = s.steal;
    cfg.enablePipeline = false; // isolate the balancing effect
    cfg.enableMulticast = false;
    if (s.policy == SchedPolicy::Static)
        cfg.bulkSynchronous = true;
    const RunResult res = runOnce(w, cfg, SuiteParams{});
    TS_ASSERT(res.correct);

    Row r;
    r.cycles = res.cycles;
    r.meanBusy = res.stats.get("delta.busyMean");
    r.maxBusy = res.stats.get("delta.busyMax");
    r.imbalance = res.stats.get("delta.imbalance");
    r.stolen = res.stats.getOr("delta.attrib.steal.tasksStolen", 0.0);
    double mn = r.maxBusy;
    for (unsigned l = 0; l < 8; ++l) {
        mn = std::min(mn, res.stats.get("lane" + std::to_string(l) +
                                        ".tu.busyCycles"));
    }
    r.minBusy = mn;
    return r;
}

void
runWorkload(benchmark::State& state, Wk w)
{
    for (auto _ : state) {
        for (const Series& s : kSeries)
            gRows[{w, &s}] = measure(w, s);
        state.counters["imbalance_static"] =
            gRows[{w, &kSeries[0]}].imbalance;
        state.counters["imbalance_workaware"] =
            gRows[{w, &kSeries[2]}].imbalance;
        state.counters["imbalance_steal"] =
            gRows[{w, &kSeries[3]}].imbalance;
    }
}

void
printTable()
{
    std::puts("");
    std::puts("Fig-6  Per-lane busy cycles by policy (8 lanes; "
              "pipeline/multicast off to isolate balancing)");
    rule(84);
    std::printf("%-10s %-11s %10s %10s %10s %9s %7s %12s\n",
                "workload", "policy", "min", "mean", "max", "imbal",
                "stolen", "cycles");
    rule(84);
    for (const Wk w : kWorkloads) {
        for (const Series& s : kSeries) {
            const Row& r = gRows.at({w, &s});
            std::printf("%-10s %-11s %10.0f %10.0f %10.0f %8.2fx "
                        "%7.0f %12.0f\n",
                        wkName(w), s.label, r.minBusy, r.meanBusy,
                        r.maxBusy, r.imbalance, r.stolen, r.cycles);
        }
    }
    rule(84);
    std::puts("expected shape: dynamic policies push imbalance "
              "toward 1.0x where static leaves lanes idle; stealing "
              "corrects the residual skew work estimates miss; on "
              "bandwidth-bound workloads (spmv) busy-cycle balance "
              "is set by DRAM sharing, not placement");
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(&argc, argv);
    for (const Wk w : kWorkloads) {
        benchmark::RegisterBenchmark(
            (std::string("fig6/") + wkName(w)).c_str(),
            [w](benchmark::State& s) { runWorkload(s, w); })
            ->Iterations(1);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable();
    return 0;
}
