/**
 * @file
 * Tab-3: analytical area of the TaskStream additions relative to the
 * equivalent static-parallel design (see DESIGN.md for the RTL
 * substitution note).  Also verifies, via a pipe-heavy run, that the
 * pipe-buffer sizing assumed by the model is consistent with the
 * measured high-water marks.
 */

#include <benchmark/benchmark.h>

#include "accel/area_model.hh"
#include "bench_util.hh"

namespace
{

using namespace ts;
using namespace ts::bench;

double gPipeHighWaterWords = 0;

void
measurePipeOccupancy(benchmark::State& state)
{
    SuiteParams sp;
    for (auto _ : state) {
        const RunResult r =
            runOnce(Wk::Msort, DeltaConfig::delta(8), sp);
        if (!r.correct)
            state.SkipWithError("incorrect result");
        double hw = 0;
        for (unsigned l = 0; l < 8; ++l) {
            hw = std::max(hw, r.stats.getOr("lane" + std::to_string(l) +
                                                ".pipeMaxOccupancy",
                                            0));
        }
        gPipeHighWaterWords = hw;
        state.counters["pipe_highwater_words"] = hw;
    }
}

void
printTable()
{
    const DeltaConfig cfg = DeltaConfig::delta(8);
    const AreaReport rep = computeArea(cfg);

    std::puts("");
    std::puts("Tab-3  Analytical area: TaskStream additions vs the "
              "static-parallel baseline (28nm-class constants)");
    rule();
    std::printf("%-44s %10s %8s\n", "structure", "mm^2", "added?");
    rule();
    for (const auto& e : rep.entries) {
        std::printf("%-44s %10.4f %8s\n", e.name.c_str(), e.mm2,
                    e.taskStreamAddition ? "yes" : "");
    }
    rule();
    std::printf("%-44s %10.4f\n", "total", rep.total());
    std::printf("%-44s %10.4f\n", "TaskStream additions",
                rep.additions());
    std::printf("%-44s %9.2f%%\n", "overhead vs baseline",
                rep.overheadPercent());
    std::printf("\nmeasured pipe-buffer high-water mark: %.0f words "
                "(%.1f KiB) on the pipe-heaviest workload (msort);\n"
                "the model budgets 4 KiB/lane of pipe buffering — "
                "occupancy beyond that would simply throttle the\n"
                "producer (ideal-capacity substitution, see "
                "DESIGN.md)\n",
                gPipeHighWaterWords,
                gPipeHighWaterWords * wordBytes / 1024.0);
    std::puts("paper claim: the TaskStream structures are a small "
              "single-digit-percent addition");
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(&argc, argv);
    benchmark::RegisterBenchmark("tab3/pipe_occupancy",
                                 measurePipeOccupancy)
        ->Iterations(1);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable();
    return 0;
}
