/**
 * @file
 * The host-visible task graph: instances plus *annotated* dependences.
 *
 * This is the programming interface the paper argues for: instead of
 * opaque "wait for task X" edges, every edge says *what structure* it
 * carries —
 *   Barrier:  plain completion ordering;
 *   Pipeline: the consumer elementwise-consumes a named output stream
 *             of the producer (hardware may forward it);
 * and shared-read groups say "these tasks all read this range".
 * The same graph runs unchanged on the static-parallel baseline,
 * which simply ignores the annotations.
 */

#ifndef TS_TASK_TASK_GRAPH_HH
#define TS_TASK_TASK_GRAPH_HH

#include <vector>

#include "task/task_types.hh"

namespace ts
{

/** Dependence kinds (the annotation is the contribution). */
enum class DepKind : std::uint8_t
{
    Barrier,
    Pipeline,
};

/** An annotated dependence edge. */
struct DepEdge
{
    TaskId producer = 0;
    TaskId consumer = 0;
    DepKind kind = DepKind::Barrier;
    std::uint8_t producerPort = 0; ///< Pipeline: forwarded output port
    std::uint8_t consumerPort = 0; ///< Pipeline: consuming input port
};

/** A shared-read group over a contiguous DRAM range. */
struct SharedGroup
{
    std::uint32_t id = 0;
    Addr rangeBase = 0;       ///< line-aligned byte address
    std::uint64_t words = 0;  ///< range length in words
    std::vector<TaskId> members;
};

/** Host-side container for a workload's tasks. */
class TaskGraph
{
  public:
    /**
     * Add a task.  Tasks must be added in a topological order of the
     * intended dependences (producers before consumers).
     */
    TaskId addTask(TaskTypeId type, std::vector<StreamDesc> inputs,
                   std::vector<WriteDesc> outputs);

    /** Add a completion-ordering edge. */
    void addBarrier(TaskId producer, TaskId consumer);

    /**
     * Add a pipelined dependence: @p consumer's input port
     * @p consumerPort elementwise-consumes @p producer's output port
     * @p producerPort.  The consumer's input descriptor must describe
     * the memory fallback (used by the baseline, and by Delta when
     * the edge cannot be activated).
     */
    void addPipeline(TaskId producer, std::uint8_t producerPort,
                     TaskId consumer, std::uint8_t consumerPort);

    /** Create a shared-read group over [base, base + words*8). */
    std::uint32_t addSharedGroup(Addr rangeBase, std::uint64_t words);

    /**
     * Annotate @p task's input @p port as reading within group
     * @p group; its descriptor's dataBase must lie in the range.
     */
    void setSharedInput(TaskId task, std::uint32_t port,
                        std::uint32_t group);

    const std::vector<TaskInstance>& tasks() const { return tasks_; }
    const std::vector<DepEdge>& edges() const { return edges_; }
    const std::vector<SharedGroup>& groups() const { return groups_; }

    TaskInstance& task(TaskId id) { return tasks_.at(id); }
    const TaskInstance& task(TaskId id) const { return tasks_.at(id); }

    std::size_t numTasks() const { return tasks_.size(); }

    /** Validate structural invariants (topological ids, ranges). */
    void validate() const;

  private:
    std::vector<TaskInstance> tasks_;
    std::vector<DepEdge> edges_;
    std::vector<SharedGroup> groups_;
};

} // namespace ts

#endif // TS_TASK_TASK_GRAPH_HH
