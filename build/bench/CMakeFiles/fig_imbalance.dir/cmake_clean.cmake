file(REMOVE_RECURSE
  "CMakeFiles/fig_imbalance.dir/fig_imbalance.cc.o"
  "CMakeFiles/fig_imbalance.dir/fig_imbalance.cc.o.d"
  "fig_imbalance"
  "fig_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
