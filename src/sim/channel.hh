/**
 * @file
 * Two-phase communication channels between ticked components.
 *
 * All inter-component traffic flows through Channel<T>.  A value
 * pushed during cycle C becomes visible to the consumer at cycle C+1
 * (after the simulator's commit phase), which makes the result of a
 * cycle independent of the order in which components are ticked.
 *
 * Channels are capacity-limited; a failed push() models back-pressure
 * and the producer is expected to retry on a later cycle.
 *
 * For the activity-driven simulator core a channel additionally
 *  - self-registers into a per-cycle dirty list on the first push of
 *    a cycle, so the commit phase walks only touched channels,
 *  - maintains an external live-channel counter, so quiescence is a
 *    counter check instead of a scan, and
 *  - carries a list of observer components the simulator wakes when a
 *    commit makes new values visible.
 * All three hooks are installed by Simulator::addChannel; a channel
 * used standalone (unit tests) behaves exactly as before.
 */

#ifndef TS_SIM_CHANNEL_HH
#define TS_SIM_CHANNEL_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace ts
{

class Ticked;

/** Type-erased channel interface used by the simulator core. */
class ChannelBase
{
  public:
    explicit ChannelBase(std::string name) : name_(std::move(name)) {}
    virtual ~ChannelBase() = default;

    ChannelBase(const ChannelBase&) = delete;
    ChannelBase& operator=(const ChannelBase&) = delete;

    /** Move staged values into the visible queue (end of cycle). */
    virtual void commit() = 0;

    /** True when no value is visible or staged. */
    virtual bool quiescent() const = 0;

    /** True when any value is visible to the consumer. */
    virtual bool anyVisible() const = 0;

    /**
     * Register a component to be woken whenever a commit of this
     * channel leaves values visible (i.e. the consumer has something
     * to look at next cycle).
     */
    void addObserver(Ticked* t) { observers_.push_back(t); }

    /** Components woken on visible commits (simulator core). */
    const std::vector<Ticked*>& observers() const { return observers_; }

    /**
     * Install the simulator-side activity hooks (called by
     * Simulator::addChannel).  If the channel already holds values,
     * the counters are synchronized so late registration is safe.
     */
    void
    installHooks(std::int64_t* liveCounter,
                 std::vector<ChannelBase*>* dirtyList)
    {
        liveCounter_ = liveCounter;
        dirtyList_ = dirtyList;
        if (live_ && liveCounter_ != nullptr)
            ++*liveCounter_;
        if (dirty_ && dirtyList_ != nullptr)
            dirtyList_->push_back(this);
    }

    /** Whether a push this cycle has not yet been committed. */
    bool dirty() const { return dirty_; }

    /** Diagnostic name. */
    const std::string& name() const { return name_; }

    /**
     * Copy all queued/staged values and counters (snapshot/fork
     * support).  Must be called between cycles: a dirty channel
     * cannot be snapshotted.
     */
    virtual std::unique_ptr<ComponentSnap> saveState() const = 0;

    /**
     * Restore a prior saveState() in place.  The external live
     * counter (installHooks) is re-synchronized incrementally via
     * setLive, so the owning simulator's quiescence accounting stays
     * exact.
     */
    virtual void restoreState(const ComponentSnap& s) = 0;

  protected:
    /** First push of the cycle enqueues us for the commit phase. */
    void
    markDirty()
    {
        if (!dirty_) {
            dirty_ = true;
            if (dirtyList_ != nullptr)
                dirtyList_->push_back(this);
        }
    }

    /** Commit served this channel; re-arm for the next cycle. */
    void clearDirty() { dirty_ = false; }

    /** Track the visible-or-staged liveness transition. */
    void
    setLive(bool v)
    {
        if (v != live_) {
            live_ = v;
            if (liveCounter_ != nullptr)
                *liveCounter_ += v ? 1 : -1;
        }
    }

  private:
    std::string name_;
    std::vector<Ticked*> observers_;
    std::int64_t* liveCounter_ = nullptr;
    std::vector<ChannelBase*>* dirtyList_ = nullptr;
    bool live_ = false;
    bool dirty_ = false;
};

/**
 * A bounded FIFO with next-cycle visibility.
 *
 * @tparam T element type (moved in and out).
 */
template <typename T>
class Channel : public ChannelBase
{
  public:
    /**
     * @param name diagnostic name.
     * @param capacity maximum elements (visible + staged); 0 means
     *        unbounded (used only where the design doc justifies it).
     */
    Channel(std::string name, std::size_t capacity)
        : ChannelBase(std::move(name)), capacity_(capacity)
    {}

    /** Whether a push would be accepted this cycle. */
    bool
    canPush() const
    {
        return capacity_ == 0 ||
               queue_.size() + staging_.size() < capacity_;
    }

    /** Stage a value for next-cycle visibility; false if full. */
    bool
    push(T v)
    {
        if (!canPush())
            return false;
        staging_.push_back(std::move(v));
        ++pushed_;
        markDirty();
        setLive(true);
        return true;
    }

    /** True when no value is currently visible. */
    bool empty() const { return queue_.empty(); }

    /** Number of currently visible values. */
    std::size_t size() const { return queue_.size(); }

    /** The oldest visible value; panics when empty. */
    const T&
    front() const
    {
        TS_ASSERT(!queue_.empty(), "pop/front on empty channel ", name());
        return queue_.front();
    }

    /** Remove and return the oldest visible value. */
    T
    pop()
    {
        TS_ASSERT(!queue_.empty(), "pop on empty channel ", name());
        T v = std::move(queue_.front());
        queue_.pop_front();
        if (queue_.empty() && staging_.empty())
            setLive(false);
        return v;
    }

    void
    commit() override
    {
        for (auto& v : staging_)
            queue_.push_back(std::move(v));
        staging_.clear();
        clearDirty();
        if (queue_.size() > maxOccupancy_)
            maxOccupancy_ = queue_.size();
    }

    bool
    quiescent() const override
    {
        return queue_.empty() && staging_.empty();
    }

    bool anyVisible() const override { return !queue_.empty(); }

    /** Total values ever pushed (for traffic statistics). */
    std::uint64_t pushed() const { return pushed_; }

    /** High-water mark of visible occupancy. */
    std::size_t maxOccupancy() const { return maxOccupancy_; }

    /** Configured capacity (0 = unbounded). */
    std::size_t capacity() const { return capacity_; }

    std::unique_ptr<ComponentSnap>
    saveState() const override
    {
        TS_ASSERT(!dirty(), "snapshot of dirty channel ", name());
        auto s = std::make_unique<Snap>();
        s->queue = queue_;
        s->staging = staging_;
        s->pushed = pushed_;
        s->maxOccupancy = maxOccupancy_;
        return s;
    }

    void
    restoreState(const ComponentSnap& snap) override
    {
        TS_ASSERT(!dirty(), "restore into dirty channel ", name());
        const Snap& s = snapCast<Snap>(snap);
        queue_ = s.queue;
        staging_ = s.staging;
        pushed_ = s.pushed;
        maxOccupancy_ = s.maxOccupancy;
        setLive(!queue_.empty() || !staging_.empty());
    }

  private:
    struct Snap final : ComponentSnap
    {
        std::deque<T> queue;
        std::vector<T> staging;
        std::uint64_t pushed = 0;
        std::size_t maxOccupancy = 0;
    };

    std::size_t capacity_;
    std::deque<T> queue_;
    std::vector<T> staging_;
    std::uint64_t pushed_ = 0;
    std::size_t maxOccupancy_ = 0;
};

} // namespace ts

#endif // TS_SIM_CHANNEL_HH
