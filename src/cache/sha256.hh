/**
 * @file
 * A minimal, dependency-free SHA-256 (FIPS 180-4).
 *
 * Used for content-addressed run-cache keys, where the requirements
 * are stability across platforms and negligible collision odds — not
 * cryptographic-grade performance.  Hashing is a tiny fraction of any
 * simulated run, so clarity wins over speed.
 */

#ifndef TS_CACHE_SHA256_HH
#define TS_CACHE_SHA256_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace ts::cache
{

/** Incremental SHA-256 context. */
class Sha256
{
  public:
    Sha256() { reset(); }

    /** Re-initialize for a new message. */
    void reset();

    /** Absorb @p len bytes. */
    void update(const void* data, std::size_t len);

    void update(std::string_view s) { update(s.data(), s.size()); }

    /** Finalize and return the 32-byte digest (context unusable
     *  afterwards until reset()). */
    std::array<std::uint8_t, 32> digest();

    /** Finalize and return the digest as 64 lowercase hex chars. */
    std::string hexDigest();

  private:
    void compress(const std::uint8_t* block);

    std::array<std::uint32_t, 8> h_;
    std::array<std::uint8_t, 64> buf_;
    std::size_t bufLen_ = 0;
    std::uint64_t totalBytes_ = 0;
};

/** One-shot convenience: hex SHA-256 of @p s. */
std::string sha256Hex(std::string_view s);

} // namespace ts::cache

#endif // TS_CACHE_SHA256_HH
