file(REMOVE_RECURSE
  "libts_noc.a"
)
