#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace ts
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    heap_.push(Entry{when, nextSeq_++, std::move(cb)});
}

void
EventQueue::fireUpTo(Tick now)
{
    while (!heap_.empty() && heap_.top().when <= now) {
        // Copy out before pop so the callback may schedule new events.
        Callback cb = std::move(const_cast<Entry&>(heap_.top()).cb);
        heap_.pop();
        cb();
    }
}

Tick
EventQueue::nextTick() const
{
    TS_ASSERT(!heap_.empty(), "nextTick on empty event queue");
    return heap_.top().when;
}

} // namespace ts
