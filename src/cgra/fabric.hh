/**
 * @file
 * Cycle-level execution of a mapped DFG on the CGRA grid.
 *
 * Each configured DFG node becomes a processing element with small
 * operand FIFOs and a pipelined functional unit; each mapped edge
 * becomes a chain of single-token link registers, one per physical
 * hop, advancing at most one hop per cycle.  Back-pressure is exact:
 * a PE fires only when every operand is present and its pipeline has
 * space, and results leave the pipeline only when every fan-out
 * route's first register is free.
 *
 * The fabric therefore reproduces, cycle by cycle, the throughput
 * effects the paper's dataflow substrate exhibits: initiation
 * interval 1 on clean pipelines, stalls under port back-pressure,
 * and data-dependent rates through merge/intersect units.
 */

#ifndef TS_CGRA_FABRIC_HH
#define TS_CGRA_FABRIC_HH

#include <deque>
#include <optional>
#include <vector>

#include "cgra/mapping.hh"
#include "cgra/token.hh"
#include "sim/simulator.hh"

namespace ts
{

/** Fabric timing/sizing parameters. */
struct FabricConfig
{
    FabricGeometry geom;
    std::size_t portFifoDepth = 16;    ///< external port buffers
    std::size_t operandFifoDepth = 4; ///< per-PE operand FIFOs
    Tick configBaseCycles = 16;       ///< fixed reconfiguration cost
    Tick configPerNodeCycles = 4;     ///< per-node reconfiguration cost
};

/** One lane's reconfigurable dataflow fabric. */
class Fabric : public Ticked
{
  public:
    Fabric(std::string name, const FabricConfig& cfg);

    /**
     * Begin executing under a new configuration.  Reconfiguration
     * costs configBase + perNode * numNodes cycles unless @p m is
     * already loaded (cost 0).  Any in-flight state must be drained
     * first (checked).
     */
    void configure(const MappedDfg* m, Tick now);

    /** Whether the configuration is loaded and the fabric can run. */
    bool ready(Tick now) const { return now >= configReadyAt_; }

    /** Currently loaded configuration (nullptr before first use). */
    const MappedDfg* current() const { return current_; }

    /** External input port FIFO (stream engines push here). */
    TokenFifo& inPort(std::uint32_t port);

    /** External output port FIFO (stream engines pop here). */
    TokenFifo& outPort(std::uint32_t port);

    /** True when no token is anywhere inside the fabric. */
    bool drained() const;

    /**
     * Reset stateful PE context (accumulators, merge end flags)
     * between back-to-back task executions under the same
     * configuration.  Requires drained().
     */
    void resetStreams();

    void tick(Tick now) override;
    bool busy() const override;
    void reportStats(StatSet& stats) const override;

    /** Total PE firings (utilization metric). */
    std::uint64_t firings() const { return firings_; }

    /** Number of reconfigurations performed. */
    std::uint64_t reconfigs() const { return reconfigs_; }

    /** Cycles spent reconfiguring. */
    std::uint64_t configCycles() const { return configCycles_; }

    std::unique_ptr<ComponentSnap> saveState() const override;
    void restoreState(const ComponentSnap& snap) override;

  private:
    struct RouteState
    {
        std::uint32_t dstNode = 0;
        std::uint8_t slot = 0;
        std::vector<std::optional<Token>> regs;
    };

    struct PeState
    {
        std::uint32_t id = 0;
        const Dfg::Node* node = nullptr;
        std::deque<Token> opnd[3];
        /** (token, readyAt): pipelined FU in flight. */
        std::deque<std::pair<Token, Tick>> pipe;
        std::vector<std::uint32_t> outRoutes;
        TokenFifo* ext = nullptr;

        // Accumulator state.
        Word acc = 0;

        // Merge/intersect state.
        bool endedA = false, endedB = false;
        bool segDoneA = false, segDoneB = false;
        bool streamEndA = false, streamEndB = false;
        std::int64_t count = 0;
    };

    /** pes[i].ext is not copied: it aliases inExt_/outExt_ elements
     *  and is re-derived from the node after restore (the same fix-up
     *  configure() performs), so FIFO reallocation cannot dangle it. */
    struct Snap final : ComponentSnap
    {
        const MappedDfg* current = nullptr;
        Tick configReadyAt = 0;
        std::vector<RouteState> routes;
        std::vector<PeState> pes;
        std::vector<TokenFifo> inExt, outExt;
        std::uint64_t firings = 0;
        std::uint64_t reconfigs = 0;
        std::uint64_t configCycles = 0;
        std::uint64_t activeCycles = 0;
    };

    void advanceRoutes();
    void outputStage(Tick now);
    void fireStage(Tick now);
    void firePe(PeState& pe, Tick now);
    bool pendingEmit() const;
    bool pipeHasSpace(const PeState& pe) const;
    void pushResult(PeState& pe, Token t, Tick now);

    FabricConfig cfg_;
    const MappedDfg* current_ = nullptr;
    Tick configReadyAt_ = 0;

    std::vector<RouteState> routes_;
    std::vector<PeState> pes_;
    std::vector<TokenFifo> inExt_;
    std::vector<TokenFifo> outExt_;

    std::uint64_t firings_ = 0;
    std::uint64_t reconfigs_ = 0;
    std::uint64_t configCycles_ = 0;
    std::uint64_t activeCycles_ = 0;
};

} // namespace ts

#endif // TS_CGRA_FABRIC_HH
