/**
 * @file
 * delta-report: human-readable diagnosis of a Delta run.
 *
 * Ingests the flat stats JSON a run writes (TS_STATS_JSON, or a
 * TS_BENCH_JSON per-bench file) and prints the cycle-accounting
 * waterfall, per-mechanism speedup attribution, the critical-path
 * bound, and the slowest task types with latency percentiles.
 *
 * Usage:
 *   delta-report RUN.json [MORE.json ...] [options]
 *     --baseline FILE.json     compare against another run (speedup)
 *     --trace TRACE.json       summarize a Perfetto trace alongside
 *     --topk N                 task-type rows to print (default 5)
 *     --assert-speedup-min X   exit 1 unless speedup >= X (CI gates;
 *                              requires --baseline)
 *
 * With more than one positional run (e.g. the static, delta, and
 * spatial bench dumps of one workload) the full report covers the
 * first run and a side-by-side comparison table follows, using
 * --baseline as the reference column when given and the first
 * positional otherwise.
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/report.hh"
#include "sim/logging.hh"

namespace
{

[[noreturn]] void
usage(const char* argv0)
{
    std::cerr
        << "usage: " << argv0 << " RUN.json [MORE.json ...] [options]\n"
        << "  (several runs print a side-by-side comparison table;\n"
        << "   the baseline column is --baseline when given, else\n"
        << "   the first run)\n"
        << "  --baseline FILE.json     compare against another run\n"
        << "  --trace TRACE.json       summarize a Perfetto trace\n"
        << "  --timeline               render the delta.timeline.*\n"
        << "                           series (lane waterfall and\n"
        << "                           queue-depth sparklines)\n"
        << "  --topk N                 task-type rows (default 5)\n"
        << "  --assert-speedup-min X   exit 1 unless speedup >= X\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace ts;
    using namespace ts::analysis;

    std::vector<std::string> runPaths;
    std::string baselinePath;
    std::string tracePath;
    std::size_t topk = 5;
    double speedupMin = -1.0;
    bool timeline = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--baseline") {
            baselinePath = next();
        } else if (arg == "--trace") {
            tracePath = next();
        } else if (arg == "--timeline") {
            timeline = true;
        } else if (arg == "--topk") {
            topk = static_cast<std::size_t>(
                std::strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--assert-speedup-min") {
            speedupMin = std::strtod(next().c_str(), nullptr);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option '" << arg << "'\n";
            usage(argv[0]);
        } else {
            runPaths.push_back(arg);
        }
    }
    if (runPaths.empty())
        usage(argv[0]);
    if (speedupMin >= 0 && baselinePath.empty()) {
        std::cerr << "--assert-speedup-min requires --baseline\n";
        return 2;
    }

    auto label = [](const RunStats& s, const std::string& path) {
        if (!s.policy.empty())
            return s.policy;
        const std::size_t slash = path.find_last_of('/');
        return slash == std::string::npos ? path
                                          : path.substr(slash + 1);
    };

    try {
        std::vector<RunStats> runs;
        for (const std::string& p : runPaths)
            runs.push_back(loadStats(p));
        const RunStats& run = runs.front();

        RunStats baseline;
        Json trace;
        ReportOptions opt;
        opt.topk = topk;
        opt.timeline = timeline;
        if (!baselinePath.empty()) {
            baseline = loadStats(baselinePath);
            opt.baseline = &baseline;
        }
        if (!tracePath.empty()) {
            std::ifstream in(tracePath);
            if (!in)
                fatal("cannot open trace file '", tracePath, "'");
            std::ostringstream buf;
            buf << in.rdbuf();
            if (!parseJson(buf.str(), trace))
                fatal("malformed JSON in trace '", tracePath, "'");
            opt.trace = &trace;
        }

        printReport(std::cout, run, opt);

        if (runs.size() > 1 || (opt.baseline != nullptr && !runs.empty())) {
            std::vector<const RunStats*> cols;
            std::vector<std::string> labels;
            if (opt.baseline != nullptr) {
                cols.push_back(opt.baseline);
                labels.push_back(label(baseline, baselinePath));
            }
            for (std::size_t i = 0; i < runs.size(); ++i) {
                cols.push_back(&runs[i]);
                labels.push_back(label(runs[i], runPaths[i]));
            }
            if (cols.size() > 1)
                printComparison(std::cout, cols, labels, std::cerr);
        }

        if (speedupMin >= 0) {
            const double x =
                seriesSpeedup(run, baseline, "delta.cycles",
                              std::cerr);
            if (x <= 0) {
                std::cerr << "FAIL: cannot score speedup gate: "
                             "series 'delta.cycles' missing\n";
                return 1;
            }
            if (x < speedupMin) {
                std::cerr << "FAIL: speedup " << x
                          << "x below required minimum " << speedupMin
                          << "x\n";
                return 1;
            }
            std::cout << "speedup gate passed: " << x
                      << "x >= " << speedupMin << "x\n";
        }
    } catch (const FatalError& e) {
        std::cerr << "delta-report: " << e.what() << "\n";
        return 2;
    }
    return 0;
}
