#include "analysis/report.hh"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "sim/logging.hh"

namespace ts
{
namespace analysis
{

namespace
{

/** Fixed-width number rendering: integers plain, fractions short. */
std::string
fmt(double v)
{
    std::ostringstream os;
    if (std::floor(v) == v && std::abs(v) < 1e15)
        os << static_cast<long long>(v);
    else
        os << std::fixed << std::setprecision(1) << v;
    return os.str();
}

std::string
pct(double frac)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(1) << frac * 100.0 << "%";
    return os.str();
}

std::string
bar(double frac, std::size_t width = 32)
{
    frac = std::clamp(frac, 0.0, 1.0);
    const auto n =
        static_cast<std::size_t>(std::lround(frac * width));
    return std::string(n, '#');
}

} // namespace

std::vector<std::pair<std::string, double>>
RunStats::matchPrefix(const std::string& prefix) const
{
    std::vector<std::pair<std::string, double>> out;
    for (auto it = values.lower_bound(prefix); it != values.end();
         ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        out.push_back(*it);
    }
    return out;
}

RunStats
statsFromJson(const Json& doc)
{
    RunStats out;
    if (!doc.isObj())
        fatal("stats document is not a JSON object");

    const Json* flat = &doc;
    if (doc.has("stats") && doc.at("stats").isObj()) {
        // TS_BENCH_JSON wrapper: metadata + nested stats object.
        flat = &doc.at("stats");
        if (doc.has("workload"))
            out.workload = doc.at("workload").str;
        if (doc.has("policy"))
            out.policy = doc.at("policy").str;
        // The sweep's bench dumps label the grid point "config".
        if (out.policy.empty() && doc.has("config"))
            out.policy = doc.at("config").str;
    }
    for (const auto& [name, v] : flat->obj) {
        if (v.isNum())
            out.values.emplace(name, v.num);
        else if (v.kind == Json::Kind::Bool)
            out.values.emplace(name, v.b ? 1.0 : 0.0);
        // null (non-finite) entries are dropped.
    }
    return out;
}

RunStats
loadStats(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open stats file '", path, "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    Json doc;
    if (!parseJson(buf.str(), doc))
        fatal("malformed JSON in stats file '", path, "'");
    return statsFromJson(doc);
}

std::vector<TaskTypeRow>
slowestTaskTypes(const RunStats& s, std::size_t topk)
{
    std::vector<TaskTypeRow> rows;
    for (const auto& [name, value] : s.matchPrefix("task.")) {
        // task.<type>.serviceCycles.count anchors one row per type.
        const std::string suffix = ".serviceCycles.count";
        if (name.size() <= 5 + suffix.size() ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0) {
            continue;
        }
        const std::string type =
            name.substr(5, name.size() - 5 - suffix.size());
        const std::string base = "task." + type + ".serviceCycles.";
        TaskTypeRow r;
        r.type = type;
        r.count = value;
        r.mean = s.getOr(base + "mean");
        r.p50 = s.getOr(base + "p50");
        r.p95 = s.getOr(base + "p95");
        r.p99 = s.getOr(base + "p99");
        r.max = s.getOr(base + "max");
        rows.push_back(std::move(r));
    }
    std::sort(rows.begin(), rows.end(),
              [](const TaskTypeRow& a, const TaskTypeRow& b) {
                  return a.p95 > b.p95;
              });
    if (rows.size() > topk)
        rows.resize(topk);
    return rows;
}

double
speedupVs(const RunStats& run, const RunStats& baseline)
{
    const double mine = run.getOr("delta.cycles");
    const double theirs = baseline.getOr("delta.cycles");
    return mine > 0 && theirs > 0 ? theirs / mine : 0.0;
}

double
seriesSpeedup(const RunStats& run, const RunStats& baseline,
              const std::string& name, std::ostream& warn)
{
    const bool haveRun = run.getOr(name) > 0;
    const bool haveBase = baseline.getOr(name) > 0;
    if (!haveRun || !haveBase) {
        warn << "warn: speedup skipped: series '" << name
             << "' absent or zero in "
             << (!haveRun && !haveBase ? "both runs"
                 : !haveBase          ? "the baseline"
                                      : "the run")
             << "\n";
        return 0.0;
    }
    return baseline.getOr(name) / run.getOr(name);
}

void
printComparison(std::ostream& os,
                const std::vector<const RunStats*>& runs,
                const std::vector<std::string>& labels,
                std::ostream& warn)
{
    if (runs.size() < 2 || runs.size() != labels.size())
        return;
    // The headline series worth lining up side by side; rows whose
    // series no run carries are dropped (e.g. spatial counters in a
    // static-vs-delta comparison).
    static const char* const series[] = {
        "delta.cycles",
        "delta.accounting.busy",
        "delta.accounting.memWait",
        "delta.accounting.nocWait",
        "delta.accounting.idle",
        "delta.critpath.boundCycles",
        "delta.attrib.pipeline.overlapCycles",
        "delta.attrib.multicast.dramLinesSaved",
        "delta.attrib.steal.tasksStolen",
        "delta.attrib.spatial.dramLinesSaved",
        "delta.attrib.spatial.forwardWords",
        "delta.spatial.forwards",
        "delta.spatial.spills",
    };
    os << "Comparison (baseline = " << labels[0] << "):\n";
    os << "  " << std::left << std::setw(38) << "series"
       << std::right;
    for (const std::string& l : labels)
        os << std::setw(12) << (l.size() > 11 ? l.substr(0, 11) : l);
    os << "\n";
    for (const char* name : series) {
        bool any = false;
        for (const RunStats* r : runs)
            any = any || r->has(name);
        if (!any)
            continue;
        os << "  " << std::left << std::setw(38) << name
           << std::right;
        for (const RunStats* r : runs)
            os << std::setw(12)
               << (r->has(name) ? fmt(r->getOr(name)) : "-");
        os << "\n";
        if (std::string(name) == "delta.cycles") {
            std::string ref = labels[0];
            if (ref.size() > 24)
                ref.resize(24);
            os << "  " << std::left << std::setw(38)
               << ("  speedup vs " + ref) << std::right;
            for (const RunStats* r : runs) {
                const double x =
                    seriesSpeedup(*r, *runs[0], name, warn);
                std::ostringstream cell;
                if (x > 0)
                    cell << std::fixed << std::setprecision(2) << x
                         << "x";
                else
                    cell << "-";
                os << std::setw(12) << cell.str();
            }
            os << "\n";
        }
    }
    os << "\n";
}

void
printHeader(std::ostream& os, const RunStats& s)
{
    os << "delta-report";
    if (!s.workload.empty())
        os << " — workload " << s.workload;
    if (!s.policy.empty())
        os << " (" << s.policy << ")";
    os << "\n";
    os << "  cycles " << fmt(s.getOr("delta.cycles")) << ", lanes "
       << fmt(s.getOr("delta.lanes")) << ", imbalance "
       << std::fixed << std::setprecision(2)
       << s.getOr("delta.imbalance", 1.0) << "\n\n";
}

void
printWaterfall(std::ostream& os, const RunStats& s)
{
    static const char* const classes[] = {"busy", "memWait", "nocWait",
                                          "idle"};
    if (!s.has("delta.accounting.busy"))
        return;
    const double laneCycles =
        s.getOr("delta.cycles") * s.getOr("delta.lanes");
    os << "Cycle accounting (" << fmt(s.getOr("delta.lanes"))
       << " lanes x " << fmt(s.getOr("delta.cycles"))
       << " cycles = " << fmt(laneCycles) << " lane-cycles):\n";
    for (const char* cls : classes) {
        const double v =
            s.getOr(std::string("delta.accounting.") + cls);
        const double f =
            s.getOr(std::string("delta.accounting.frac.") + cls,
                    laneCycles > 0 ? v / laneCycles : 0.0);
        os << "  " << std::left << std::setw(8) << cls << std::right
           << std::setw(12) << fmt(v) << "  " << std::setw(6)
           << pct(f) << "  " << bar(f) << "\n";
    }
    os << "\n";
}

void
printAttribution(std::ostream& os, const RunStats& s)
{
    if (!s.has("delta.attrib.loadbalance.imbalanceCyclesAvoided"))
        return;
    os << "Mechanism attribution:\n";
    os << "  loadbalance  imbalance avoided  "
       << fmt(s.getOr(
              "delta.attrib.loadbalance.imbalanceCyclesAvoided"))
       << " cycles (shadow-static max service "
       << fmt(s.getOr(
              "delta.attrib.loadbalance.shadowStaticMaxService"))
       << " vs "
       << fmt(s.getOr("delta.attrib.loadbalance.actualMaxService"))
       << " actual)\n";
    os << "  pipeline     overlap recovered  "
       << fmt(s.getOr("delta.attrib.pipeline.overlapCycles"))
       << " cycles ("
       << fmt(s.getOr("delta.attrib.pipeline.pipesActivated"))
       << " pipes activated, "
       << fmt(s.getOr("delta.attrib.pipeline.pipesDegraded"))
       << " degraded)\n";
    os << "  multicast    DRAM lines saved   "
       << fmt(s.getOr("delta.attrib.multicast.dramLinesSaved"))
       << " (" << fmt(s.getOr("delta.attrib.multicast.dramBytesSaved"))
       << " bytes), word-hops saved "
       << fmt(s.getOr("delta.attrib.multicast.wordHopsSaved"))
       << " across " << fmt(s.getOr("delta.attrib.multicast.packets"))
       << " multicast packets\n";
    if (s.has("delta.attrib.steal.tasksStolen")) {
        os << "  steal        imbalance recovered "
           << fmt(s.getOr(
                  "delta.attrib.steal.imbalanceCyclesRecovered"))
           << " cycles (no-steal shadow max service "
           << fmt(s.getOr("delta.attrib.steal.shadowMaxService"))
           << "): " << fmt(s.getOr("delta.attrib.steal.tasksStolen"))
           << " tasks moved over "
           << fmt(s.getOr("delta.attrib.steal.hopsTraveled"))
           << " hops, "
           << fmt(s.getOr("delta.attrib.steal.grants")) << "/"
           << fmt(s.getOr("delta.attrib.steal.requests"))
           << " probes granted\n";
    }
    os << "\n";
}

void
printCritPath(std::ostream& os, const RunStats& s)
{
    if (!s.has("delta.critpath.boundCycles"))
        return;
    const double cycles = s.getOr("delta.cycles");
    const double bound = s.getOr("delta.critpath.boundCycles");
    os << "Critical path (dependence-weighted, measured spans):\n";
    os << "  critical path  " << fmt(s.getOr("delta.critpath.cycles"))
       << " cycles over " << fmt(s.getOr("delta.critpath.pathTasks"))
       << " tasks\n";
    os << "  serial work    "
       << fmt(s.getOr("delta.critpath.serialCycles")) << " cycles\n";
    os << "  lower bound    " << fmt(bound)
       << " cycles (max of path, serial/lanes)\n";
    os << "  achieved       " << fmt(cycles) << " cycles -> "
       << pct(cycles > 0 ? bound / cycles : 0.0)
       << " of bound utilization\n\n";
}

void
printHostPerf(std::ostream& os, const RunStats& s)
{
    if (!s.has("sim.host.wallNs"))
        return;
    const double wallNs = s.getOr("sim.host.wallNs");
    const double cycles = s.getOr("delta.cycles", s.getOr("sim.cycles"));
    const double ffwd = s.getOr("sim.host.cyclesFastForwarded");
    os << "Host simulation performance:\n";
    os << "  wall time        " << std::fixed << std::setprecision(2)
       << wallNs / 1e6 << " ms\n";
    os << "  ticks executed   " << fmt(s.getOr("sim.host.ticksExecuted"))
       << " (avg " << std::setprecision(2)
       << s.getOr("sim.host.avgActiveComponents")
       << " active components/cycle)\n";
    if (cycles > 0) {
        os << "  fast-forwarded   " << fmt(ffwd) << " of "
           << fmt(cycles) << " cycles (" << pct(ffwd / cycles)
           << ")\n";
    }
    if (wallNs > 0) {
        os << "  throughput       " << fmt(cycles / (wallNs / 1e9))
           << " simulated cycles/s\n";
    }
    os << "\n";
}

namespace
{

/** delta.timeline.* columns regrouped as series name -> per-sample
 *  values ("t" holds the sample ticks). */
std::map<std::string, std::vector<double>>
timelineSeries(const RunStats& s, std::size_t n)
{
    static const std::string prefix = "delta.timeline.";
    std::map<std::string, std::vector<double>> series;
    for (const auto& [name, v] : s.matchPrefix(prefix)) {
        const std::string tail = name.substr(prefix.size());
        if (tail == "interval" || tail == "samples")
            continue;
        const std::size_t dot = tail.rfind('.');
        if (dot == std::string::npos)
            continue;
        char* end = nullptr;
        const unsigned long k =
            std::strtoul(tail.c_str() + dot + 1, &end, 10);
        if (*end != '\0' || k >= n)
            continue;
        std::vector<double>& vec = series[tail.substr(0, dot)];
        if (vec.size() < n)
            vec.resize(n, 0.0);
        vec[k] = v;
    }
    return series;
}

/** One ASCII sparkline character per sample, scaled to the series
 *  peak (space = zero, '@' = peak). */
std::string
sparkline(const std::vector<double>& vals, double peak)
{
    static const char levels[] = " .:-=+*#%@";
    std::string out;
    for (const double v : vals) {
        if (!(v > 0) || !(peak > 0)) {
            out += ' ';
            continue;
        }
        const auto idx = static_cast<std::size_t>(
            std::ceil(v / peak * 9.0));
        out += levels[std::min<std::size_t>(idx, 9)];
    }
    return out;
}

} // namespace

void
printTimeline(std::ostream& os, const RunStats& s)
{
    const auto n = static_cast<std::size_t>(
        s.getOr("delta.timeline.samples"));
    if (n == 0)
        return;
    std::map<std::string, std::vector<double>> series =
        timelineSeries(s, n);

    os << "Timeline (" << n << " samples, every "
       << fmt(s.getOr("delta.timeline.interval")) << " cycles";
    const auto t = series.find("t");
    if (t != series.end() && !t->second.empty())
        os << ", @" << fmt(t->second.front()) << "..@"
           << fmt(t->second.back());
    os << "):\n";
    if (t != series.end())
        series.erase(t);

    // Per-lane waterfall: each column is one sample interval, marked
    // with the interval's dominant cycle class.
    static const char* const classes[] = {"busy", "memWait",
                                          "nocWait", "idle"};
    static const char classChar[] = {'#', 'm', 'n', '.'};
    std::vector<std::pair<unsigned long, std::string>> lanes;
    for (const auto& [name, vals] : series) {
        const std::string suffix = ".busy";
        if (name.compare(0, 4, "lane") == 0 &&
            name.size() > 4 + suffix.size() &&
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) == 0) {
            const std::string lane =
                name.substr(0, name.size() - suffix.size());
            lanes.emplace_back(
                std::strtoul(lane.c_str() + 4, nullptr, 10), lane);
        }
    }
    std::sort(lanes.begin(), lanes.end());
    if (!lanes.empty()) {
        os << "  lane activity (dominant class per interval: "
              "# busy, m memWait, n nocWait, . idle):\n";
        for (const auto& [num, lane] : lanes) {
            (void)num;
            std::string row;
            for (std::size_t k = 0; k < n; ++k) {
                std::size_t best = 0;
                double bestV = 0.0, sum = 0.0;
                for (std::size_t c = 0; c < 4; ++c) {
                    const auto it = series.find(
                        lane + "." + classes[c]);
                    const double v =
                        it == series.end() ? 0.0 : it->second[k];
                    sum += v;
                    if (v > bestV) {
                        bestV = v;
                        best = c;
                    }
                }
                // Sample 0 is the pre-run baseline: nothing elapsed.
                row += sum > 0 ? classChar[best] : ' ';
            }
            os << "    " << std::left << std::setw(8) << lane
               << std::right << " |" << row << "|\n";
        }
        for (std::size_t c = 0; c < 4; ++c)
            for (const auto& [num, lane] : lanes) {
                (void)num;
                series.erase(lane + "." + classes[c]);
            }
    }

    // Everything else (ready queue, NoC in flight, DRAM queue, any
    // lane class kept when lanes were filtered out) as sparklines.
    for (const auto& [name, vals] : series) {
        const double peak =
            *std::max_element(vals.begin(), vals.end());
        os << "  " << std::left << std::setw(12) << name
           << std::right << " |" << sparkline(vals, peak)
           << "|  peak " << fmt(peak) << "\n";
    }
    os << "\n";
}

void
printHostProfile(std::ostream& os, const RunStats& s)
{
    std::vector<std::pair<std::string, double>> rows =
        s.matchPrefix("sim.host.profile.");
    if (rows.empty())
        return;
    double total = 0.0;
    for (const auto& [name, v] : rows)
        total += v;
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) {
                  return a.second > b.second;
              });
    os << "Host hotspots (profiled wall time per component "
          "class/phase):\n";
    for (const auto& [name, v] : rows) {
        std::string label = name.substr(17); // "sim.host.profile."
        if (label.size() > 2 &&
            label.compare(label.size() - 2, 2, "Ns") == 0)
            label.resize(label.size() - 2);
        const double f = total > 0 ? v / total : 0.0;
        os << "  " << std::left << std::setw(16) << label
           << std::right << std::setw(10) << std::fixed
           << std::setprecision(2) << v / 1e6 << " ms  "
           << std::setw(6) << pct(f) << "  " << bar(f) << "\n";
    }
    os << "  " << std::left << std::setw(16) << "total"
       << std::right << std::setw(10) << std::fixed
       << std::setprecision(2) << total / 1e6 << " ms";
    const double wallNs = s.getOr("sim.host.wallNs");
    if (wallNs > 0)
        os << "  (" << pct(total / wallNs) << " of wall time)";
    os << "\n\n";
}

void
printTaskTypes(std::ostream& os, const RunStats& s, std::size_t topk)
{
    const std::vector<TaskTypeRow> rows = slowestTaskTypes(s, topk);
    if (rows.empty())
        return;
    os << "Slowest task types (by p95 service cycles):\n";
    os << "  " << std::left << std::setw(16) << "type" << std::right
       << std::setw(8) << "count" << std::setw(10) << "mean"
       << std::setw(10) << "p50" << std::setw(10) << "p95"
       << std::setw(10) << "p99" << std::setw(10) << "max" << "\n";
    for (const TaskTypeRow& r : rows) {
        os << "  " << std::left << std::setw(16) << r.type
           << std::right << std::setw(8) << fmt(r.count)
           << std::setw(10) << fmt(r.mean) << std::setw(10)
           << fmt(r.p50) << std::setw(10) << fmt(r.p95)
           << std::setw(10) << fmt(r.p99) << std::setw(10)
           << fmt(r.max) << "\n";
    }
    os << "\n";
}

void
printTraceSummary(std::ostream& os, const Json& trace)
{
    // Perfetto/chrome trace: {"traceEvents": [...]} or a bare array.
    const Json* events = nullptr;
    if (trace.isObj() && trace.has("traceEvents") &&
        trace.at("traceEvents").isArr()) {
        events = &trace.at("traceEvents");
    } else if (trace.isArr()) {
        events = &trace;
    }
    if (events == nullptr) {
        os << "Trace: unrecognized format\n\n";
        return;
    }
    std::map<std::string, std::size_t> perTrack;
    for (const Json& e : events->arr) {
        if (e.isObj() && e.has("name") &&
            e.at("name").kind == Json::Kind::Str) {
            ++perTrack[e.at("name").str];
        }
    }
    os << "Trace: " << events->arr.size() << " events, "
       << perTrack.size() << " distinct names; busiest:\n";
    std::vector<std::pair<std::string, std::size_t>> tracks(
        perTrack.begin(), perTrack.end());
    std::sort(tracks.begin(), tracks.end(),
              [](const auto& a, const auto& b) {
                  return a.second > b.second;
              });
    for (std::size_t i = 0; i < tracks.size() && i < 5; ++i) {
        os << "  " << std::left << std::setw(24) << tracks[i].first
           << std::right << std::setw(10) << tracks[i].second
           << " events\n";
    }
    os << "\n";
}

void
printReport(std::ostream& os, const RunStats& s,
            const ReportOptions& opt)
{
    printHeader(os, s);
    printWaterfall(os, s);
    printAttribution(os, s);
    printCritPath(os, s);
    printHostPerf(os, s);
    printHostProfile(os, s);
    if (opt.timeline)
        printTimeline(os, s);
    printTaskTypes(os, s, opt.topk);
    if (opt.baseline != nullptr) {
        const double x = speedupVs(s, *opt.baseline);
        if (x > 0) {
            os << "Speedup vs baseline: " << std::fixed
               << std::setprecision(2) << x << "x ("
               << fmt(s.getOr("delta.cycles")) << " vs "
               << fmt(opt.baseline->getOr("delta.cycles"))
               << " cycles)\n\n";
        } else {
            os << "Speedup vs baseline: skipped — series "
                  "'delta.cycles' absent or zero in "
               << (opt.baseline->getOr("delta.cycles") <= 0
                       ? "the baseline"
                       : "the run")
               << "\n\n";
        }
    }
    if (opt.trace != nullptr)
        printTraceSummary(os, *opt.trace);
}

} // namespace analysis
} // namespace ts
