# Empty dependencies file for ts_task.
# This may be replaced when dependencies are built.
