#include "driver/grid.hh"

#include <cstdlib>
#include <fstream>

#include "sim/logging.hh"

namespace ts
{
namespace driver
{

std::vector<std::string>
splitList(const std::string& list)
{
    std::vector<std::string> out;
    std::string cur;
    const auto flush = [&] {
        const auto b = cur.find_first_not_of(" \t");
        const auto e = cur.find_last_not_of(" \t");
        if (b != std::string::npos)
            out.push_back(cur.substr(b, e - b + 1));
        cur.clear();
    };
    for (const char c : list) {
        if (c == ',')
            flush();
        else
            cur += c;
    }
    flush();
    return out;
}

std::vector<std::uint64_t>
parseSeedList(const std::string& list)
{
    std::vector<std::uint64_t> out;
    for (const std::string& s : splitList(list)) {
        char* end = nullptr;
        const std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
        if (end == s.c_str() || *end != '\0')
            fatal("--seeds entries must be non-negative integers, "
                  "got '", s, "'");
        out.push_back(v);
    }
    if (out.empty())
        fatal("--seeds needs at least one entry");
    return out;
}

std::vector<double>
parseScaleList(const std::string& list)
{
    std::vector<double> out;
    for (const std::string& s : splitList(list)) {
        char* end = nullptr;
        const double v = std::strtod(s.c_str(), &end);
        if (end == s.c_str() || *end != '\0' || !(v > 0))
            fatal("--scales entries must be positive numbers, got '",
                  s, "'");
        out.push_back(v);
    }
    if (out.empty())
        fatal("--scales needs at least one entry");
    return out;
}

std::uint32_t
parseLanes(const std::string& s)
{
    char* end = nullptr;
    const long v = std::strtol(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' || v < 1 || v > 62)
        fatal("--lanes must be in 1..62, got '", s, "'");
    return static_cast<std::uint32_t>(v);
}

std::uint64_t
parseCapBytes(const std::string& s)
{
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
    std::uint64_t mult = 1;
    if (end != s.c_str() && *end != '\0' &&
        *(end + 1) == '\0') {
        switch (*end) {
          case 'K': case 'k': mult = 1ull << 10; break;
          case 'M': case 'm': mult = 1ull << 20; break;
          case 'G': case 'g': mult = 1ull << 30; break;
          default: mult = 0; break;
        }
    }
    if (end == s.c_str() || (*end != '\0' && mult == 1) || mult == 0)
        fatal("--cache-cap must be BYTES[K|M|G], got '", s, "'");
    return v * mult;
}

void
applyGridKey(const std::string& key, const std::string& value,
             RunOptions& opt, GridSettings& grid)
{
    if (key == "workloads") {
        opt.workloads = workloadsFromList(value);
    } else if (key == "configs") {
        grid.configs = value;
        (void)sweepConfigsFromList(value); // validate now
    } else if (key == "seeds") {
        grid.seeds = parseSeedList(value);
    } else if (key == "scales") {
        grid.scales = parseScaleList(value);
    } else if (key == "lanes") {
        grid.lanes = parseLanes(value);
    } else if (key == "baseline") {
        grid.baseline = value;
    } else if (key == "jobs") {
        char* end = nullptr;
        const long v = std::strtol(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0' || v < 1)
            fatal("grid key 'jobs' must be a positive integer, "
                  "got '", value, "'");
        opt.jobs = static_cast<unsigned>(v);
    } else if (key == "out") {
        grid.out = value;
    } else if (key == "bench-json") {
        opt.benchJsonDir = value;
    } else if (key == "trace") {
        opt.tracePath = value;
    } else if (key == "no-fast-forward") {
        opt.noFastForward = value != "0";
    } else if (key == "cache") {
        grid.cacheDir = value;
    } else if (key == "cache-cap") {
        grid.cacheCapBytes = parseCapBytes(value);
    } else if (key == "no-snapshot-fork") {
        grid.noSnapshotFork = value != "0";
    } else if (key == "timeline") {
        char* end = nullptr;
        const std::uint64_t v =
            std::strtoull(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0')
            fatal("grid key 'timeline' must be a non-negative "
                  "integer, got '", value, "'");
        opt.timelineInterval = v;
    } else if (key == "timeline-series") {
        opt.timelineSeries = value;
    } else if (key == "host-profile") {
        opt.hostProfile = value != "0";
    } else if (key == "shards") {
        char* end = nullptr;
        const long v = std::strtol(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0' || v < 1)
            fatal("grid key 'shards' must be a positive integer, "
                  "got '", value, "'");
        opt.shards = static_cast<std::uint32_t>(v);
    } else {
        fatal("unknown grid key '", key,
              "'; valid keys: workloads, configs, seeds, scales, "
              "lanes, baseline, jobs, out, bench-json, trace, "
              "no-fast-forward, cache, cache-cap, no-snapshot-fork, "
              "timeline, timeline-series, host-profile, shards");
    }
}

void
loadGridFile(const std::string& path, RunOptions& opt,
             GridSettings& grid)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open grid file '", path, "'");
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        const auto b = line.find_first_not_of(" \t\r");
        if (b == std::string::npos)
            continue;
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            fatal("grid file ", path, ":", lineno,
                  ": expected `key = value`, got '", line, "'");
        const auto trim = [](std::string s) {
            const auto tb = s.find_first_not_of(" \t\r");
            const auto te = s.find_last_not_of(" \t\r");
            return tb == std::string::npos
                       ? std::string()
                       : s.substr(tb, te - tb + 1);
        };
        applyGridKey(trim(line.substr(0, eq)),
                     trim(line.substr(eq + 1)), opt, grid);
    }
}

SweepSpec
buildSweepSpec(const RunOptions& opt, const GridSettings& grid)
{
    SweepSpec spec;
    spec.workloads = opt.workloads.empty() ? workloadsFromList("")
                                           : opt.workloads;
    spec.configs = sweepConfigsFromList(grid.configs, grid.lanes);
    spec.seeds = grid.seeds.empty()
                     ? std::vector<std::uint64_t>{opt.seed}
                     : grid.seeds;
    spec.scales =
        grid.scales.empty() ? std::vector<double>{opt.scale}
                            : grid.scales;
    spec.baseline = grid.baseline;
    spec.jobs = opt.jobs;
    spec.benchJsonDir = opt.benchJsonDir;
    spec.tracePath = opt.tracePath;
    spec.noFastForward = opt.noFastForward;
    spec.timelineInterval = opt.timelineInterval;
    spec.timelineSeries = opt.timelineSeries;
    spec.hostProfile = opt.hostProfile;
    spec.shards = opt.shards;
    spec.cacheDir = grid.cacheDir;
    spec.cacheCapBytes = grid.cacheCapBytes;
    spec.noSnapshotFork = grid.noSnapshotFork;
    return spec;
}

} // namespace driver
} // namespace ts
