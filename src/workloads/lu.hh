/**
 * @file
 * Tiled LU factorization without pivoting (diagonally dominant
 * input): getrf / trsm-row / trsm-col / gemm tile kernels.
 *
 * Structure exercised: like Cholesky, a shrinking-wavefront DAG, but
 * with roughly twice the per-iteration task parallelism (both a row
 * and a column panel), stressing queue capacity and dispatch rate.
 */

#ifndef TS_WORKLOADS_LU_HH
#define TS_WORKLOADS_LU_HH

#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace ts
{

/** LU workload parameters. */
struct LuParams
{
    std::uint64_t tiles = 8;
    std::uint64_t tileSize = 16;
    std::uint64_t seed = 7;
};

/** A = L * U factorization (Doolittle, no pivoting). */
class LuWorkload : public Workload
{
  public:
    explicit LuWorkload(const LuParams& p) : p_(p) {}

    std::string name() const override { return "lu"; }
    void build(Delta& delta, TaskGraph& graph) override;
    bool check(const MemImage& img) const override;

  private:
    LuParams p_;
    Addr mat_ = 0;
    std::vector<double> expected_; ///< combined LU factors
};

} // namespace ts

#endif // TS_WORKLOADS_LU_HH
