/**
 * @file
 * Interfaces the stream engines use to reach lane-external resources
 * (global memory and the NoC).  Implemented by the lane adapter in
 * src/accel; abstract here so the stream library is testable in
 * isolation.
 */

#ifndef TS_STREAM_LANE_IO_HH
#define TS_STREAM_LANE_IO_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "cgra/token.hh"
#include "sim/types.hh"

namespace ts
{

/** Line-granular access to global memory. */
class MemPortIf
{
  public:
    virtual ~MemPortIf() = default;

    /**
     * Request a line read.
     * @param lineAddr line-aligned byte address.
     * @param onData invoked when the line arrives (data is then
     *        readable from the functional image).
     * @return false when no request slot is available this cycle.
     */
    virtual bool requestLine(Addr lineAddr,
                             std::function<void()> onData) = 0;

    /**
     * Issue a line write (functional data already applied).
     * @return false when the write path is back-pressured.
     */
    virtual bool writeLine(Addr lineAddr) = 0;
};

/** Transmit side of inter-task pipeline forwarding. */
class PipeTxIf
{
  public:
    virtual ~PipeTxIf() = default;

    /**
     * Forward a chunk of produced tokens to consumer lane(s).
     * @param dstMask NoC destination mask.
     * @param pipeId the dependence's pipe identity.
     * @param toks the chunk (order-preserving).
     * @return false when the network rejects the packet (retry).
     */
    virtual bool sendChunk(std::uint64_t dstMask, std::uint64_t pipeId,
                           const std::vector<Token>& toks) = 0;

    /**
     * Forward a spatially mapped chunk to a consumer lane's landing
     * zone (timing-only; the words are already in the functional
     * image).  Default accepts and drops the chunk so stream-layer
     * unit tests need no NoC.
     * @param dstNode consumer lane's NoC node.
     * @param group landing-group identity ((consumer uid << 3)|port).
     * @param words words in this chunk (0 for a pure done marker).
     * @param done producer's end-of-stream marker for the group.
     * @return false when the network rejects the packet (retry).
     */
    virtual bool sendSpatial(std::uint32_t dstNode,
                             std::uint64_t group, std::uint32_t words,
                             bool done)
    {
        (void)dstNode;
        (void)group;
        (void)words;
        (void)done;
        return true;
    }
};

} // namespace ts

#endif // TS_STREAM_LANE_IO_HH
