# Empty dependencies file for fig_noc_traffic.
# This may be replaced when dependencies are built.
