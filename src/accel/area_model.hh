/**
 * @file
 * Analytical area model for the TaskStream additions (Tab-3).
 *
 * The paper's area claim is that the structures TaskStream adds to an
 * equivalent static-parallel design are small relative to a lane
 * (fabric + scratchpad + stream engines).  We reproduce the *ratio*
 * with an analytical model: per-structure entry counts and bit widths
 * from the simulated configuration, times standard per-bit area
 * constants for a generic 28nm-class process (documented in
 * DESIGN.md as a substitution for RTL synthesis).
 */

#ifndef TS_ACCEL_AREA_MODEL_HH
#define TS_ACCEL_AREA_MODEL_HH

#include <string>
#include <vector>

#include "accel/delta.hh"

namespace ts
{

/** One row of the area table. */
struct AreaEntry
{
    std::string name;
    double mm2 = 0;
    bool taskStreamAddition = false; ///< vs the static baseline
};

/** Area breakdown of one Delta configuration. */
struct AreaReport
{
    std::vector<AreaEntry> entries;

    double total() const;
    double additions() const;
    double overheadPercent() const;
};

/** Compute the analytical area breakdown for @p cfg. */
AreaReport computeArea(const DeltaConfig& cfg);

} // namespace ts

#endif // TS_ACCEL_AREA_MODEL_HH
