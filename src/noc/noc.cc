#include "noc/noc.hh"

#include "sim/logging.hh"
#include "sim/stats.hh"
#include "trace/trace.hh"

namespace ts
{

namespace
{

enum Dir : unsigned
{
    East = 0,
    West,
    North,
    South,
    LocalPort,
    NumDirs
};

const char* const dirNames[NumDirs] = {"E", "W", "N", "S", "L"};

} // namespace

/**
 * One mesh router: five input ports (four neighbors + inject) and
 * five output ports (four neighbors + eject).  Each cycle every input
 * may forward its head packet if all required output links are free;
 * multicast packets split into per-direction copies here.
 */
class NocRouter : public Ticked
{
  public:
    NocRouter(Noc& noc, std::uint32_t id)
        : Ticked("noc.router" + std::to_string(id)), noc_(noc), id_(id)
    {
        in_.fill(nullptr);
        out_.fill(nullptr);
        linkFreeAt_.fill(0);
    }

    void
    tick(Tick now) override
    {
        // The round-robin arbitration pointer is a pure function of
        // simulated time, so skipped (slept) cycles cannot perturb it.
        const unsigned rr = static_cast<unsigned>(now % NumDirs);
        for (unsigned i = 0; i < NumDirs; ++i) {
            const unsigned port = (rr + i) % NumDirs;
            if (in_[port] != nullptr)
                tryForward(*in_[port], now);
        }

        // Idle contract: sleep when every input is visibly empty
        // (woken by the input channels' commits) or when every
        // pending head is still serializing onto this hop (woken at
        // the earliest maturity).  A head that is due but blocked on
        // an output keeps the router ticking — nothing wakes us when
        // a downstream queue drains.
        Tick earliest = 0;
        for (unsigned p = 0; p < NumDirs; ++p) {
            const Channel<Packet>* ch = in_[p];
            if (ch == nullptr || ch->empty())
                continue;
            const Tick nb = ch->front().notBefore;
            if (nb <= now)
                return;
            if (earliest == 0 || nb < earliest)
                earliest = nb;
        }
        if (earliest != 0)
            sleepUntil(earliest);
        else
            sleepOnWake();
    }

    bool busy() const override { return false; }

    std::unique_ptr<ComponentSnap>
    saveState() const override
    {
        auto s = std::make_unique<Snap>();
        s->linkFreeAt = linkFreeAt_;
        s->delivered = delivered_;
        s->wordHops = wordHops_;
        s->mcastWordHops = mcastWordHops_;
        s->mcastDeliveries = mcastDeliveries_;
        return s;
    }

    void
    restoreState(const ComponentSnap& snap) override
    {
        const Snap& s = snapCast<Snap>(snap);
        linkFreeAt_ = s.linkFreeAt;
        delivered_ = s.delivered;
        wordHops_ = s.wordHops;
        mcastWordHops_ = s.mcastWordHops;
        mcastDeliveries_ = s.mcastDeliveries;
    }

    std::array<Channel<Packet>*, NumDirs> in_;
    std::array<Channel<Packet>*, NumDirs> out_;

    /** Forwarding-side traffic counters, owned by this router so the
     *  sharded core's parallel ticks never contend on the mesh-wide
     *  totals; Noc's accessors sum them. */
    std::uint64_t delivered_ = 0;
    std::uint64_t wordHops_ = 0;
    std::uint64_t mcastWordHops_ = 0;
    std::uint64_t mcastDeliveries_ = 0;

  private:
    /** Mutable router state: per-link serialization maturity plus
     *  this router's traffic counters.  in_/out_ are wiring, and the
     *  round-robin pointer is a pure function of simulated time. */
    struct Snap final : ComponentSnap
    {
        std::array<Tick, NumDirs> linkFreeAt{};
        std::uint64_t delivered = 0;
        std::uint64_t wordHops = 0;
        std::uint64_t mcastWordHops = 0;
        std::uint64_t mcastDeliveries = 0;
    };

    unsigned
    routeDir(std::uint32_t dst) const
    {
        const std::uint32_t w = noc_.cfg_.width;
        const std::uint32_t cx = id_ % w, cy = id_ / w;
        const std::uint32_t dx = dst % w, dy = dst / w;
        if (dx > cx)
            return East;
        if (dx < cx)
            return West;
        if (dy > cy)
            return North;
        if (dy < cy)
            return South;
        return LocalPort;
    }

    void
    tryForward(Channel<Packet>& in, Tick now)
    {
        if (in.empty())
            return;
        const Packet& pkt = in.front();
        if (pkt.notBefore > now)
            return; // tail still serializing onto this hop

        // Split the destination set by outgoing direction.
        std::array<std::uint64_t, NumDirs> masks{};
        std::uint64_t rest = pkt.dstMask;
        while (rest != 0) {
            const std::uint32_t dst =
                static_cast<std::uint32_t>(__builtin_ctzll(rest));
            rest &= rest - 1;
            masks[routeDir(dst)] |= Packet::unicast(dst);
        }

        // All branch outputs must be available (atomic split).
        for (unsigned d = 0; d < NumDirs; ++d) {
            if (masks[d] == 0)
                continue;
            TS_ASSERT(out_[d] != nullptr,
                      name(), ": no link ", dirNames[d]);
            if (!out_[d]->canPush())
                return;
            if (d != LocalPort && linkFreeAt_[d] > now)
                return;
        }

        Packet head = in.pop();
        if (trace::on()) {
            unsigned branches = 0;
            for (unsigned d = 0; d < NumDirs; ++d)
                branches += masks[d] != 0 ? 1 : 0;
            if (branches > 1) {
                auto* t = trace::active();
                t->instant(t->track("noc.mcast"), "fanout",
                           trace::args("router", id_, "branches",
                                       branches, "words",
                                       head.sizeWords));
            }
        }
        for (unsigned d = 0; d < NumDirs; ++d) {
            if (masks[d] == 0)
                continue;
            Packet copy = head;
            copy.dstMask = masks[d];
            if (d != LocalPort) {
                copy.notBefore =
                    now + std::max<Tick>(
                              1, divCeil<std::uint32_t>(
                                     head.sizeWords,
                                     noc_.cfg_.linkWords));
            }
            const bool ok = out_[d]->push(std::move(copy));
            TS_ASSERT(ok);
            if (d == LocalPort) {
                ++delivered_;
                if (head.mcast)
                    ++mcastDeliveries_;
                if (statsOn()) {
                    const auto lat =
                        static_cast<double>(now - head.injectedAt);
                    statSample("noc.pktLatency", lat);
                    statSample(std::string("noc.pktLatency.") +
                                   pktKindName(head.kind),
                               lat);
                }
                if (trace::on()) {
                    // Tracing forces single-shard execution, so the
                    // mesh-wide sum is safe to read here.
                    trace::active()->counter(
                        "noc.traffic", "delivered",
                        static_cast<double>(noc_.delivered()));
                }
            } else {
                const Tick ser = std::max<Tick>(
                    1, divCeil<std::uint32_t>(head.sizeWords,
                                              noc_.cfg_.linkWords));
                linkFreeAt_[d] = now + ser;
                wordHops_ += head.sizeWords;
                if (head.mcast)
                    mcastWordHops_ += head.sizeWords;
            }
        }
    }

    Noc& noc_;
    std::uint32_t id_;
    std::array<Tick, NumDirs> linkFreeAt_;
};

Noc::Noc(Simulator& sim, const NocConfig& cfg,
         const std::vector<std::uint32_t>& nodeParts)
    : sim_(sim), cfg_(cfg)
{
    const std::uint32_t n = numNodes();
    if (n == 0 || n > 64)
        fatal("mesh must have between 1 and 64 nodes, got ", n);
    TS_ASSERT(nodeParts.empty() || nodeParts.size() == n,
              "nodeParts must name a partition per mesh node");

    const std::uint32_t basePart = sim.partition();
    const auto part = [&](std::uint32_t node) {
        return nodeParts.empty() ? basePart : nodeParts[node];
    };

    injected_.assign(n, 0);
    mcastPackets_.assign(n, 0);
    mcastUnicastEquivWordHops_.assign(n, 0);

    routers_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        routers_.push_back(std::make_unique<NocRouter>(*this, i));
        sim.setPartition(part(i));
        sim.add(routers_.back().get());
    }

    // A node's inject/eject channels stay inside the node's
    // partition: the local component and its router always share a
    // shard, so only inter-router links ever cross shards.
    injectCh_.resize(n);
    ejectCh_.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        auto& inj = sim.makeChannel<Packet>(
            "noc.inject" + std::to_string(i), cfg_.channelCapacity,
            part(i), part(i));
        auto& ej = sim.makeChannel<Packet>(
            "noc.eject" + std::to_string(i), 0 /* unbounded sink */,
            part(i), part(i));
        injectCh_[i] = &inj;
        ejectCh_[i] = &ej;
        routers_[i]->in_[LocalPort] = &inj;
        routers_[i]->out_[LocalPort] = &ej;
    }

    // Directed neighbor links; a link's producer is the upstream
    // router's partition and its consumer the downstream router's, so
    // differently-partitioned neighbors get a boundary channel.
    const std::uint32_t w = cfg_.width, h = cfg_.height;
    auto link = [&](std::uint32_t from, std::uint32_t to, unsigned dirOut,
                    unsigned dirIn) {
        auto& ch = sim.makeChannel<Packet>(
            "noc.link" + std::to_string(from) + dirNames[dirOut],
            cfg_.channelCapacity, part(from), part(to));
        routers_[from]->out_[dirOut] = &ch;
        routers_[to]->in_[dirIn] = &ch;
        linkCh_.push_back(&ch);
    };
    for (std::uint32_t y = 0; y < h; ++y) {
        for (std::uint32_t x = 0; x < w; ++x) {
            const std::uint32_t id = y * w + x;
            if (x + 1 < w)
                link(id, id + 1, East, West);
            if (x > 0)
                link(id, id - 1, West, East);
            if (y + 1 < h)
                link(id, id + w, North, South);
            if (y > 0)
                link(id, id - w, South, North);
        }
    }

    // Sleeping routers are woken by commits on their input channels.
    for (std::uint32_t i = 0; i < n; ++i) {
        for (unsigned p = 0; p < NumDirs; ++p) {
            if (routers_[i]->in_[p] != nullptr)
                routers_[i]->in_[p]->addObserver(routers_[i].get());
        }
    }
    sim.setPartition(basePart);
}

Noc::~Noc() = default;

bool
Noc::inject(Packet pkt)
{
    TS_ASSERT(pkt.src < numNodes(), "bad src node ", pkt.src);
    TS_ASSERT(pkt.dstMask != 0, "packet with empty destination set");
    TS_ASSERT((pkt.dstMask >> numNodes()) == 0 || numNodes() == 64,
              "destination outside mesh");
    const std::uint32_t src = pkt.src;
    const std::uint64_t dstMask = pkt.dstMask;
    const std::uint32_t words = pkt.sizeWords;
    const PktKind kind = pkt.kind;
    pkt.injectedAt = sim_.now();
    pkt.mcast = __builtin_popcountll(dstMask) > 1;
    const bool mcast = pkt.mcast;
    if (!injectCh_[pkt.src]->push(std::move(pkt)))
        return false;
    ++injected_[src];
    if (mcast) {
        ++mcastPackets_[src];
        // What this fanout would cost as one unicast per member:
        // the tree's actual word-hops accumulate per router as
        // branches traverse links, and the difference is the
        // traffic the multicast mechanism saved.
        std::uint64_t rest = dstMask;
        while (rest != 0) {
            const auto dst =
                static_cast<std::uint32_t>(__builtin_ctzll(rest));
            rest &= rest - 1;
            mcastUnicastEquivWordHops_[src] +=
                static_cast<std::uint64_t>(hopDistance(src, dst)) *
                words;
        }
    }
    if (trace::on()) {
        auto* t = trace::active();
        t->instant(t->track("noc.inject"), pktKindName(kind),
                   trace::args("src", src, "dstMask", dstMask, "words",
                               words));
    }
    return true;
}

Channel<Packet>&
Noc::eject(std::uint32_t node)
{
    TS_ASSERT(node < numNodes());
    return *ejectCh_[node];
}

std::uint32_t
Noc::hopDistance(std::uint32_t a, std::uint32_t b) const
{
    const std::uint32_t w = cfg_.width;
    const auto dx = static_cast<std::int64_t>(a % w) -
                    static_cast<std::int64_t>(b % w);
    const auto dy = static_cast<std::int64_t>(a / w) -
                    static_cast<std::int64_t>(b / w);
    return static_cast<std::uint32_t>(std::abs(dx) + std::abs(dy));
}

std::size_t
Noc::packetsInFlight() const
{
    std::size_t n = 0;
    for (const Channel<Packet>* c : injectCh_)
        n += c->size();
    for (const Channel<Packet>* c : linkCh_)
        n += c->size();
    return n;
}

namespace
{

std::uint64_t
sumVec(const std::vector<std::uint64_t>& v)
{
    std::uint64_t t = 0;
    for (const std::uint64_t x : v)
        t += x;
    return t;
}

} // namespace

std::uint64_t
Noc::wordHops() const
{
    std::uint64_t t = 0;
    for (const auto& r : routers_)
        t += r->wordHops_;
    return t;
}

std::uint64_t
Noc::delivered() const
{
    std::uint64_t t = 0;
    for (const auto& r : routers_)
        t += r->delivered_;
    return t;
}

std::uint64_t
Noc::mcastWordHops() const
{
    std::uint64_t t = 0;
    for (const auto& r : routers_)
        t += r->mcastWordHops_;
    return t;
}

std::uint64_t
Noc::mcastDeliveries() const
{
    std::uint64_t t = 0;
    for (const auto& r : routers_)
        t += r->mcastDeliveries_;
    return t;
}

std::uint64_t
Noc::injected() const
{
    return sumVec(injected_);
}

std::uint64_t
Noc::mcastPackets() const
{
    return sumVec(mcastPackets_);
}

std::uint64_t
Noc::mcastUnicastEquivWordHops() const
{
    return sumVec(mcastUnicastEquivWordHops_);
}

Noc::Counters
Noc::counters() const
{
    Counters c;
    c.injected = injected_;
    c.mcastPackets = mcastPackets_;
    c.mcastUnicastEquivWordHops = mcastUnicastEquivWordHops_;
    return c;
}

void
Noc::restoreCounters(const Counters& c)
{
    injected_ = c.injected;
    mcastPackets_ = c.mcastPackets;
    mcastUnicastEquivWordHops_ = c.mcastUnicastEquivWordHops;
}

void
Noc::reportStats(StatSet& stats) const
{
    stats.set("noc.wordHops", static_cast<double>(wordHops()));
    stats.set("noc.delivered", static_cast<double>(delivered()));
    stats.set("noc.injected", static_cast<double>(injected()));
    stats.set("noc.mcast.packets",
              static_cast<double>(mcastPackets()));
    stats.set("noc.mcast.deliveries",
              static_cast<double>(mcastDeliveries()));
    stats.set("noc.mcast.wordHops",
              static_cast<double>(mcastWordHops()));
    stats.set("noc.mcast.unicastEquivWordHops",
              static_cast<double>(mcastUnicastEquivWordHops()));
}

} // namespace ts
