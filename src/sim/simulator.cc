#include "sim/simulator.hh"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "obs/host_profiler.hh"
#include "sim/logging.hh"
#include "trace/trace.hh"

namespace ts
{

namespace
{

std::uint64_t
nsSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

} // namespace

std::unique_ptr<ComponentSnap>
Ticked::saveState() const
{
    fatal("component '", name_,
          "' does not implement saveState(); snapshot/fork requires "
          "every registered component to copy its mutable state");
}

void
Ticked::restoreState(const ComponentSnap&)
{
    fatal("component '", name_, "' does not implement restoreState()");
}

void
Simulator::add(Ticked* t)
{
    TS_ASSERT(t != nullptr);
    TS_ASSERT(t->sim_ == nullptr,
              "component registered with two simulators: ", t->name());
    t->sim_ = this;
    t->simIndex_ = static_cast<std::uint32_t>(ticked_.size());
    ticked_.push_back(t);
    const std::uint32_t idx = t->simIndex_;
    if ((idx >> 6) >= active_.size()) {
        active_.push_back(0);
        pending_.push_back(0);
    }
    active_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    ++activeCount_;
}

void
Simulator::addChannel(ChannelBase* c)
{
    TS_ASSERT(c != nullptr);
    channels_.push_back(c);
    c->installHooks(&liveChannels_, &dirtyCh_);
}

void
Simulator::schedule(Tick delay, EventQueue::Callback cb, Ticked* owner)
{
    TS_ASSERT(delay >= 1, "events must be scheduled at least 1 cycle out");
    events_.schedule(now_ + delay, std::move(cb), owner);
}

void
Simulator::scheduleWeak(Tick delay, EventQueue::Callback cb)
{
    TS_ASSERT(delay >= 1,
              "weak events must be scheduled at least 1 cycle out");
    events_.scheduleWeak(now_ + delay, std::move(cb));
}

void
Simulator::setFlightRecorder(obs::FlightRecorder* rec)
{
    recorder_ = rec;
    events_.setRecorder(rec);
}

void
Simulator::setHostProfiler(obs::HostProfiler* prof)
{
    profiler_ = prof;
    profClass_.clear();
    if (prof == nullptr)
        return;
    profClass_.reserve(ticked_.size());
    for (const Ticked* t : ticked_)
        profClass_.push_back(static_cast<unsigned char>(
            obs::HostProfiler::tickBucketForName(t->name())));
}

void
Simulator::applySleep(Ticked* t)
{
    t->sleepPending_ = false;
    t->sleeping_ = true;
    if (recorder_ != nullptr)
        recorder_->record(now_, obs::FlightRecorder::Kind::Sleep,
                          &t->name_,
                          t->sleepAt_ == kNoWakeTick
                              ? obs::FlightRecorder::kNoAux
                              : t->sleepAt_);
    const std::uint32_t idx = t->simIndex_;
    active_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    --activeCount_;
    if (t->sleepAt_ != kNoWakeTick) {
        // Clamp: sleeping until a past/current cycle means "tick
        // again next cycle", never re-entry into the current one.
        const Tick at = t->sleepAt_ > now_ + 1 ? t->sleepAt_ : now_ + 1;
        sleepHeap_.push(TimedWake{at, t->simIndex_});
    }
    if (!t->inBusyList_ && t->busy()) {
        t->inBusyList_ = true;
        sleepersBusy_.push_back(t->simIndex_);
    }
}

void
Simulator::wakeDueSleepers()
{
    while (!sleepHeap_.empty() && sleepHeap_.top().at <= now_) {
        const std::uint32_t idx = sleepHeap_.top().idx;
        sleepHeap_.pop();
        // Possibly stale (the sleeper was woken earlier or re-slept
        // with a different target); waking is spurious-safe.
        wake(ticked_[idx]);
    }
}

bool
Simulator::maybeQuiescent()
{
    if (!events_.empty() || liveChannels_ != 0)
        return false;
    for (std::size_t w = 0; w < active_.size(); ++w) {
        for (std::uint64_t bits = active_[w]; bits != 0;
             bits &= bits - 1) {
            const std::size_t idx =
                (w << 6) + std::countr_zero(bits);
            if (ticked_[idx]->busy())
                return false;
        }
    }
    // Re-sample the busy-sleeper list: a sleeper whose busy() dropped
    // (e.g. via an event) or that has since woken is compacted away.
    std::size_t w = 0;
    for (std::size_t r = 0; r < sleepersBusy_.size(); ++r) {
        Ticked* t = ticked_[sleepersBusy_[r]];
        if (t->sleeping_ && t->busy())
            sleepersBusy_[w++] = sleepersBusy_[r];
        else
            t->inBusyList_ = false;
    }
    sleepersBusy_.resize(w);
    if (w != 0)
        return false;
    TS_ASSERT(quiescent(),
              "incremental quiescence disagrees with the full scan");
    return true;
}

void
Simulator::doCycleFast()
{
    if (trace::on())
        trace::active()->setNow(now_);
    events_.fireUpTo(now_);

    pending_ = active_;
    walking_ = true;
    for (std::size_t w = 0; w < pending_.size(); ++w) {
        while (pending_[w] != 0) {
            const std::uint32_t idx = static_cast<std::uint32_t>(
                (w << 6) + std::countr_zero(pending_[w]));
            pending_[w] &= pending_[w] - 1;
            walkPos_ = idx;
            Ticked* t = ticked_[idx];
            t->sleepPending_ = false;
            t->tick(now_);
            ++ticksExecuted_;
            if (t->sleepPending_)
                applySleep(t);
        }
    }
    walking_ = false;

    for (ChannelBase* c : dirtyCh_) {
        c->commit();
        if (c->anyVisible()) {
            for (Ticked* o : c->observers())
                wake(o);
        }
    }
    dirtyCh_.clear();

    ++now_;
    ++cyclesExecuted_;
}

void
Simulator::doCycleFastObs()
{
    if (trace::on())
        trace::active()->setNow(now_);
    if (profiler_ != nullptr) {
        const auto t0 = obs::HostProfiler::now();
        events_.fireUpTo(now_);
        profiler_->add(obs::HostProfiler::Events, t0,
                       obs::HostProfiler::now());
    } else {
        events_.fireUpTo(now_);
    }

    pending_ = active_;
    walking_ = true;
    for (std::size_t w = 0; w < pending_.size(); ++w) {
        while (pending_[w] != 0) {
            const std::uint32_t idx = static_cast<std::uint32_t>(
                (w << 6) + std::countr_zero(pending_[w]));
            pending_[w] &= pending_[w] - 1;
            walkPos_ = idx;
            Ticked* t = ticked_[idx];
            t->sleepPending_ = false;
            if (profiler_ != nullptr) {
                const auto t0 = obs::HostProfiler::now();
                t->tick(now_);
                profiler_->add(profClass_[idx], t0,
                               obs::HostProfiler::now());
            } else {
                t->tick(now_);
            }
            ++ticksExecuted_;
            if (t->sleepPending_)
                applySleep(t);
        }
    }
    walking_ = false;

    const auto c0 = profiler_ != nullptr
                        ? obs::HostProfiler::now()
                        : obs::HostProfiler::Clock::time_point{};
    for (ChannelBase* c : dirtyCh_) {
        c->commit();
        if (c->anyVisible()) {
            if (recorder_ != nullptr)
                recorder_->record(now_,
                                  obs::FlightRecorder::Kind::Commit,
                                  &c->name());
            for (Ticked* o : c->observers())
                wake(o);
        }
    }
    dirtyCh_.clear();
    if (profiler_ != nullptr)
        profiler_->add(obs::HostProfiler::Commit, c0,
                       obs::HostProfiler::now());

    ++now_;
    ++cyclesExecuted_;
}

void
Simulator::doCycleNaive()
{
    if (trace::on())
        trace::active()->setNow(now_);
    events_.fireUpTo(now_);
    for (Ticked* t : ticked_)
        t->tick(now_);
    ticksExecuted_ += ticked_.size();
    for (ChannelBase* c : channels_)
        c->commit();
    dirtyCh_.clear();
    ++now_;
    ++cyclesExecuted_;
}

void
Simulator::doCycleNaiveObs()
{
    if (trace::on())
        trace::active()->setNow(now_);
    if (profiler_ != nullptr) {
        auto t0 = obs::HostProfiler::now();
        events_.fireUpTo(now_);
        auto t1 = obs::HostProfiler::now();
        profiler_->add(obs::HostProfiler::Events, t0, t1);
        for (std::size_t i = 0; i < ticked_.size(); ++i) {
            ticked_[i]->tick(now_);
            auto t2 = obs::HostProfiler::now();
            profiler_->add(profClass_[i], t1, t2);
            t1 = t2;
        }
    } else {
        events_.fireUpTo(now_);
        for (Ticked* t : ticked_)
            t->tick(now_);
    }
    ticksExecuted_ += ticked_.size();
    const auto c0 = profiler_ != nullptr
                        ? obs::HostProfiler::now()
                        : obs::HostProfiler::Clock::time_point{};
    for (ChannelBase* c : channels_)
        c->commit();
    if (recorder_ != nullptr) {
        // Record only channels pushed this cycle (the dirty list is
        // maintained by the push hooks in both execution modes).
        for (ChannelBase* c : dirtyCh_)
            if (c->anyVisible())
                recorder_->record(
                    now_, obs::FlightRecorder::Kind::Commit,
                    &c->name());
    }
    dirtyCh_.clear();
    if (profiler_ != nullptr)
        profiler_->add(obs::HostProfiler::Commit, c0,
                       obs::HostProfiler::now());
    ++now_;
    ++cyclesExecuted_;
}

bool
Simulator::quiescent() const
{
    if (!events_.empty())
        return false;
    for (const ChannelBase* c : channels_) {
        if (!c->quiescent())
            return false;
    }
    for (const Ticked* t : ticked_) {
        if (t->busy())
            return false;
    }
    return true;
}

void
Simulator::catchUpAll()
{
    for (Ticked* t : ticked_)
        t->catchUp(now_);
}

Tick
Simulator::run(Tick maxCycles)
{
    const auto t0 = std::chrono::steady_clock::now();
    const Tick end =
        fastForward_ ? runFast(maxCycles) : runNaive(maxCycles);
    // Weak observers beyond quiescence never fire; drop them so their
    // captures cannot dangle and snapshot()'s empty-queue contract
    // holds at quiescence.
    events_.clearWeak();
    wallNs_ += nsSince(t0);
    return end;
}

bool
Simulator::checkQuiescentFast()
{
    if (profiler_ == nullptr)
        return maybeQuiescent();
    const auto t0 = obs::HostProfiler::now();
    const bool q = maybeQuiescent();
    profiler_->add(obs::HostProfiler::Quiescence, t0,
                   obs::HostProfiler::now());
    return q;
}

Tick
Simulator::runFast(Tick maxCycles)
{
    // The instrumented twin keeps every observability hook out of
    // this loop: with no profiler or recorder attached the function
    // below must compile to the same tight code as before obs/
    // existed (the compiler inlines doCycleFast here only when the
    // loop stays this small).
    if (obsActive())
        return runFastObs(maxCycles);

    const Tick start = now_;
    const Tick limit = start + maxCycles;
    for (;;) {
        wakeDueSleepers();
        if (activeCount_ == 0) {
            if (maybeQuiescent()) {
                catchUpAll();
                return now_;
            }
            // Idle fast-forward: nothing ticks until the next event
            // or timed wake; every skipped cycle is a no-op.
            Tick target = kNoWakeTick;
            if (!events_.empty())
                target = events_.nextTick();
            if (!sleepHeap_.empty() && sleepHeap_.top().at < target)
                target = sleepHeap_.top().at;
            if (target == kNoWakeTick) {
                // Not quiescent, yet nothing can ever wake: a missed
                // wake (component porting bug) or an unconsumed
                // channel value.  Diagnose loudly.  Pending weak
                // observers don't count — they cannot create work.
                deadlockFatal(maxCycles, /*overrun=*/false);
            }
            // Weak observers (timeline samples) never keep the run
            // alive but do pin the fast-forward so they fire at
            // their exact tick; target == now_ falls through to
            // doCycleFast, which fires them and ticks nothing.
            if (events_.hasWeak() &&
                events_.nextWeakTick() < target)
                target = events_.nextWeakTick();
            if (target > now_) {
                const Tick to = target < limit ? target : limit;
                cyclesFastForwarded_ += to - now_;
                now_ = to;
                if (to == target)
                    continue; // wake the due sleepers at `to`
            }
        } else if (maybeQuiescent()) {
            catchUpAll();
            return now_;
        }
        if (now_ - start >= maxCycles) {
            // Overrun: reuse the incremental liveness state for the
            // final check instead of a second full scan.
            if (maybeQuiescent()) {
                catchUpAll();
                return now_;
            }
            deadlockFatal(maxCycles, /*overrun=*/true);
        }
        doCycleFast();
    }
}

Tick
Simulator::runFastObs(Tick maxCycles)
{
    const Tick start = now_;
    const Tick limit = start + maxCycles;
    for (;;) {
        if (profiler_ != nullptr) {
            const auto f0 = obs::HostProfiler::now();
            wakeDueSleepers();
            profiler_->add(obs::HostProfiler::FastForward, f0,
                           obs::HostProfiler::now());
        } else {
            wakeDueSleepers();
        }
        if (activeCount_ == 0) {
            if (checkQuiescentFast()) {
                catchUpAll();
                return now_;
            }
            // See runFast for the target math; the logic must stay
            // identical or the two dispatch arms diverge.
            Tick target = kNoWakeTick;
            if (!events_.empty())
                target = events_.nextTick();
            if (!sleepHeap_.empty() && sleepHeap_.top().at < target)
                target = sleepHeap_.top().at;
            if (target == kNoWakeTick) {
                deadlockFatal(maxCycles, /*overrun=*/false);
            }
            if (events_.hasWeak() &&
                events_.nextWeakTick() < target)
                target = events_.nextWeakTick();
            if (target > now_) {
                const Tick to = target < limit ? target : limit;
                cyclesFastForwarded_ += to - now_;
                now_ = to;
                if (to == target)
                    continue; // wake the due sleepers at `to`
            }
        } else if (checkQuiescentFast()) {
            catchUpAll();
            return now_;
        }
        if (now_ - start >= maxCycles) {
            if (maybeQuiescent()) {
                catchUpAll();
                return now_;
            }
            deadlockFatal(maxCycles, /*overrun=*/true);
        }
        doCycleFastObs();
    }
}

Tick
Simulator::runNaive(Tick maxCycles)
{
    // See runFast: the twin keeps observability hooks out of this
    // loop so the uninstrumented path keeps the seed's codegen.
    if (obsActive())
        return runNaiveObs(maxCycles);

    const Tick start = now_;
    while (now_ - start < maxCycles) {
        if (quiescent()) {
            catchUpAll();
            return now_;
        }
        doCycleNaive();
    }
    if (quiescent()) {
        catchUpAll();
        return now_;
    }
    deadlockFatal(maxCycles, /*overrun=*/true);
}

Tick
Simulator::runNaiveObs(Tick maxCycles)
{
    const Tick start = now_;
    while (now_ - start < maxCycles) {
        if (profiler_ != nullptr) {
            const auto t0 = obs::HostProfiler::now();
            const bool q = quiescent();
            profiler_->add(obs::HostProfiler::Quiescence, t0,
                           obs::HostProfiler::now());
            if (q) {
                catchUpAll();
                return now_;
            }
        } else if (quiescent()) {
            catchUpAll();
            return now_;
        }
        doCycleNaiveObs();
    }
    if (quiescent()) {
        catchUpAll();
        return now_;
    }
    deadlockFatal(maxCycles, /*overrun=*/true);
}

void
Simulator::deadlockFatal(Tick maxCycles, bool overrun)
{
    std::ostringstream os;
    if (overrun)
        os << "simulation did not quiesce within " << maxCycles
           << " cycles; still live:";
    else
        os << "simulation deadlocked at cycle " << now_
           << ": no component active and no event or timed wake "
              "pending; still live:";
    if (!events_.empty())
        os << " [" << events_.size() << " events]";
    for (const ChannelBase* c : channels_) {
        if (!c->quiescent())
            os << " channel:" << c->name();
    }
    for (const Ticked* t : ticked_) {
        if (t->busy())
            os << " busy:" << t->name();
    }
    // Who is stuck: every busy sleeper, the wake it is (not) waiting
    // for, and the state of each channel that could wake it.  This is
    // the missed-wake diagnosis: a busy component sleeping forever on
    // channels that are all empty means a producer forgot a wake; a
    // visible channel here means the observer list is miswired.
    os << "\nstuck components:";
    bool anyStuck = false;
    for (const Ticked* t : ticked_) {
        if (!t->sleeping_ || !t->busy())
            continue;
        anyStuck = true;
        os << "\n  " << t->name() << ": sleeping ";
        if (t->sleepAt_ == kNoWakeTick)
            os << "until woken";
        else
            os << "until @" << t->sleepAt_;
        bool anyCh = false;
        for (const ChannelBase* c : channels_) {
            const auto& obsList = c->observers();
            bool watches = false;
            for (const Ticked* o : obsList)
                if (o == t)
                    watches = true;
            if (!watches)
                continue;
            os << (anyCh ? ", " : "; observes ") << c->name() << " [";
            if (c->anyVisible())
                os << "visible";
            else if (!c->quiescent())
                os << "staged";
            else
                os << "empty";
            os << "]";
            anyCh = true;
        }
        if (!anyCh)
            os << "; observes no channel";
    }
    if (!anyStuck)
        os << " none (no busy sleeper)";
    if (recorder_ != nullptr && recorder_->size() > 0) {
        os << "\nflight recorder (last " << recorder_->size()
           << " of " << recorder_->capacity() << " records):\n";
        recorder_->dump(os);
    }
    fatal(os.str());
}

void
Simulator::step(Tick cycles)
{
    const auto t0 = std::chrono::steady_clock::now();
    const bool instrumented = obsActive();
    if (!fastForward_) {
        for (Tick i = 0; i < cycles; ++i) {
            if (instrumented)
                doCycleNaiveObs();
            else
                doCycleNaive();
        }
    } else {
        const Tick end = now_ + cycles;
        while (now_ < end) {
            wakeDueSleepers();
            if (activeCount_ == 0) {
                Tick target = end;
                if (!events_.empty() && events_.nextTick() < target)
                    target = events_.nextTick();
                if (!sleepHeap_.empty() &&
                    sleepHeap_.top().at < target)
                    target = sleepHeap_.top().at;
                if (events_.hasWeak() &&
                    events_.nextWeakTick() < target)
                    target = events_.nextWeakTick();
                if (target > now_) {
                    cyclesFastForwarded_ += target - now_;
                    now_ = target;
                    continue;
                }
            }
            if (instrumented)
                doCycleFastObs();
            else
                doCycleFast();
        }
    }
    catchUpAll();
    wallNs_ += nsSince(t0);
}

SimSnapshot
Simulator::snapshot() const
{
    TS_ASSERT(!walking_, "snapshot from inside the tick walk");
    TS_ASSERT(events_.empty() && !events_.hasWeak(),
              "snapshot requires an empty event queue (callbacks are "
              "move-only); snapshot post-configuration or at "
              "quiescence");
    TS_ASSERT(dirtyCh_.empty(),
              "snapshot with uncommitted channel pushes");

    SimSnapshot s;
    s.now = now_;
    s.fastForward = fastForward_;
    s.components.reserve(ticked_.size());
    s.meta.reserve(ticked_.size());
    for (const Ticked* t : ticked_) {
        s.components.push_back(t->saveState());
        SimSnapshot::TickedMeta m;
        m.sleepPending = t->sleepPending_;
        m.sleeping = t->sleeping_;
        m.sleepAt = t->sleepAt_;
        m.inBusyList = t->inBusyList_;
        s.meta.push_back(m);
    }
    s.channels.reserve(channels_.size());
    for (const ChannelBase* c : channels_)
        s.channels.push_back(c->saveState());
    s.active = active_;
    s.activeCount = activeCount_;
    s.sleepHeap = sleepHeap_;
    s.sleepersBusy = sleepersBusy_;
    s.wallNs = wallNs_;
    s.ticksExecuted = ticksExecuted_;
    s.cyclesExecuted = cyclesExecuted_;
    s.cyclesFastForwarded = cyclesFastForwarded_;
    return s;
}

void
Simulator::restore(const SimSnapshot& s)
{
    TS_ASSERT(!walking_, "restore from inside the tick walk");
    TS_ASSERT(events_.empty() && !events_.hasWeak(),
              "restore requires an empty event queue; restore at "
              "quiescence (after run()) or before any cycle");
    TS_ASSERT(dirtyCh_.empty(),
              "restore with uncommitted channel pushes");
    TS_ASSERT(s.components.size() == ticked_.size() &&
                  s.channels.size() == channels_.size(),
              "snapshot does not match this simulator's component/"
              "channel registration");

    now_ = s.now;
    fastForward_ = s.fastForward;
    for (std::size_t i = 0; i < ticked_.size(); ++i) {
        Ticked* t = ticked_[i];
        t->restoreState(*s.components[i]);
        const SimSnapshot::TickedMeta& m = s.meta[i];
        t->sleepPending_ = m.sleepPending;
        t->sleeping_ = m.sleeping;
        t->sleepAt_ = m.sleepAt;
        t->inBusyList_ = m.inBusyList;
    }
    // Channel restores re-sync liveChannels_ incrementally (setLive),
    // so the counter needs no explicit reset.
    for (std::size_t i = 0; i < channels_.size(); ++i)
        channels_[i]->restoreState(*s.channels[i]);
    active_ = s.active;
    std::fill(pending_.begin(), pending_.end(), 0);
    activeCount_ = s.activeCount;
    sleepHeap_ = s.sleepHeap;
    sleepersBusy_ = s.sleepersBusy;
    wallNs_ = s.wallNs;
    ticksExecuted_ = s.ticksExecuted;
    cyclesExecuted_ = s.cyclesExecuted;
    cyclesFastForwarded_ = s.cyclesFastForwarded;
}

void
Simulator::reportStats(StatSet& stats) const
{
    for (const Ticked* t : ticked_)
        t->reportStats(stats);
    stats.set("sim.cycles", static_cast<double>(now_));
    stats.set("sim.host.wallNs", static_cast<double>(wallNs_));
    stats.set("sim.host.ticksExecuted",
              static_cast<double>(ticksExecuted_));
    stats.set("sim.host.cyclesFastForwarded",
              static_cast<double>(cyclesFastForwarded_));
    stats.set("sim.host.avgActiveComponents",
              cyclesExecuted_ == 0
                  ? 0.0
                  : static_cast<double>(ticksExecuted_) /
                        static_cast<double>(cyclesExecuted_));
    if (profiler_ != nullptr)
        profiler_->reportStats(stats);
}

} // namespace ts
