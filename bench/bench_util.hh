/**
 * @file
 * Shared infrastructure for the experiment benchmarks: run one
 * workload under one configuration, verify correctness, and collect
 * the statistics the paper-style tables report.
 *
 * All knobs come from the shared options layer (ts::driver
 * RunOptions): call bench::init(&argc, argv) first thing in main()
 * to consume the shared flags (--workloads, --scale, --seed,
 * --trace, --bench-json, --log, -j; each with its TS_* environment
 * fallback) and hand the untouched remainder to
 * benchmark::Initialize().  No bench reads the environment itself.
 */

#ifndef TS_BENCH_BENCH_UTIL_HH
#define TS_BENCH_BENCH_UTIL_HH

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include "driver/options.hh"
#include "workloads/workload.hh"

namespace ts::bench
{

/** This process's run options.  Defaults to the environment
 *  fallbacks until init() overwrites them with parsed flags. */
inline driver::RunOptions&
options()
{
    static driver::RunOptions opt = [] {
        driver::RunOptions o = driver::RunOptions::fromEnv();
        o.applyLogLevel();
        return o;
    }();
    return opt;
}

/** Parse the shared flags out of argv (call before
 *  benchmark::Initialize, which consumes the rest). */
inline void
init(int* argc, char** argv)
{
    options() = driver::parseCommandLine(*argc, argv);
}

/**
 * Workloads this bench process runs (--workloads/TS_WORKLOADS,
 * "all" or unset = whole suite; unknown names fail fast with the
 * valid names listed).  Both the registration and table-printing
 * loops must use this same list.
 */
inline const std::vector<Wk>&
suiteWorkloads()
{
    return options().workloads;
}

/** Suite scaling knobs (--scale/TS_SCALE problem-size multiplier,
 *  --seed/TS_SEED) — small CI runs use --scale 0.25 without
 *  rebuilding. */
inline SuiteParams
suiteParams()
{
    return options().suiteParams();
}

/** Outcome of one simulated run. */
struct RunResult
{
    double cycles = 0;
    bool correct = false;
    StatSet stats;
};

/**
 * When --bench-json/TS_BENCH_JSON names an (existing) directory,
 * every runOnce() writes its full StatSet there as
 * `<seq>_<workload>_<policy>.json`, so figure programs emit
 * machine-readable results alongside the text tables.
 */
inline void
emitJson(const std::string& tag, Wk w, const DeltaConfig& cfg,
         const RunResult& r)
{
    const std::string& dir = options().benchJsonDir;
    if (dir.empty())
        return;
    static std::atomic<int> seq{0};
    const std::string path =
        dir + "/" +
        std::to_string(seq.fetch_add(1, std::memory_order_relaxed)) +
        "_" + tag + ".json";
    std::ofstream os(path);
    if (!os) {
        warn("bench: cannot write '", path, "'");
        return;
    }
    os << "{\n  \"workload\": \"" << wkName(w) << "\",\n"
       << "  \"policy\": \"" << schedPolicyName(cfg.policy) << "\",\n"
       << "  \"lanes\": " << cfg.lanes << ",\n"
       << "  \"correct\": " << (r.correct ? "true" : "false") << ",\n"
       << "  \"stats\": ";
    r.stats.dumpJson(os);
    os << "}\n";
}

/** Build and simulate one workload under one configuration (trace
 *  and stats outputs injected from the shared options). */
inline RunResult
runOnce(Wk w, const DeltaConfig& cfg, const SuiteParams& sp)
{
    auto wl = makeWorkload(w, sp);
    Delta delta(options().applyTo(cfg));
    TaskGraph graph;
    wl->build(delta, graph);
    RunResult r;
    r.stats = delta.run(graph);
    r.cycles = r.stats.get("delta.cycles");
    r.correct = wl->check(delta.image());
    emitJson(std::string(wkName(w)) + "_" +
                 schedPolicyName(cfg.policy) + "_l" +
                 std::to_string(cfg.lanes),
             w, cfg, r);
    return r;
}

/** Print a horizontal rule sized for our tables. */
inline void
rule(int width = 72)
{
    std::puts(std::string(static_cast<std::size_t>(width), '-').c_str());
}

/** Geometric mean of a vector of ratios. */
inline double
geomean(const std::vector<double>& v)
{
    if (v.empty())
        return 0.0;
    double logSum = 0.0;
    for (const double x : v)
        logSum += std::log(x);
    return std::exp(logSum / static_cast<double>(v.size()));
}

} // namespace ts::bench

#endif // TS_BENCH_BENCH_UTIL_HH
