/**
 * @file
 * Per-lane tracking of shared-read group copies landed in the
 * scratchpad by multicast fills.
 *
 * Fills can race ahead of the group's setup message (they travel via
 * the memory controller while the setup goes straight to the lane),
 * so unknown-group fills are stashed and applied at registration.
 */

#ifndef TS_TASK_SHARED_LANDING_HH
#define TS_TASK_SHARED_LANDING_HH

#include <map>
#include <vector>

#include "mem/mem_image.hh"
#include "mem/scratchpad.hh"
#include "task/messages.hh"

namespace ts
{

/** Tracks shared-group landings in one lane's scratchpad. */
class SharedLanding
{
  public:
    SharedLanding(const MemImage& img, Scratchpad& spm)
        : img_(img), spm_(spm)
    {}

    /** Register a group (from the dispatcher's setup message). */
    void setup(const GroupSetupMsg& msg);

    /** Land one multicast line fill. */
    void fill(std::uint32_t group, Addr lineAddr);

    /** Whether the group is registered here. */
    bool known(std::uint32_t group) const
    {
        return groups_.count(group) != 0;
    }

    /** Whether every line of the group's range has landed. */
    bool complete(std::uint32_t group) const;

    /** Lines landed so far (traffic accounting). */
    std::uint64_t linesLanded() const { return linesLanded_; }

  private:
    struct G
    {
        Addr rangeBase = 0;
        std::uint64_t words = 0;
        std::uint64_t landing = 0;
        std::uint64_t linesExpected = 0;
        std::uint64_t linesArrived = 0;
    };

    void apply(G& g, Addr lineAddr);

  public:
    /** Copyable mutable state, for snapshot/fork (the class itself is
     *  not assignable: it references its lane's image and
     *  scratchpad). */
    struct State
    {
        std::map<std::uint32_t, G> groups;
        std::map<std::uint32_t, std::vector<Addr>> stash;
        std::uint64_t linesLanded = 0;
    };

    State
    saveLandingState() const
    {
        return State{groups_, stash_, linesLanded_};
    }

    void
    restoreLandingState(const State& s)
    {
        groups_ = s.groups;
        stash_ = s.stash;
        linesLanded_ = s.linesLanded;
    }

  private:
    const MemImage& img_;
    Scratchpad& spm_;
    std::map<std::uint32_t, G> groups_;
    std::map<std::uint32_t, std::vector<Addr>> stash_;
    std::uint64_t linesLanded_ = 0;
};

} // namespace ts

#endif // TS_TASK_SHARED_LANDING_HH
