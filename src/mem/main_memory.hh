/**
 * @file
 * A banked main-memory (DRAM) timing model.
 *
 * Lines map to banks by low-order line-address interleaving.  Each
 * bank can begin at most one access per `bankOccupancy` cycles; the
 * device as a whole accepts at most `issueWidth` new accesses per
 * cycle (channel bandwidth).  Every access completes `serviceLatency`
 * cycles after issue.  Requests that cannot issue wait in a bounded
 * queue, back-pressuring the producer channel.
 */

#ifndef TS_MEM_MAIN_MEMORY_HH
#define TS_MEM_MAIN_MEMORY_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "mem/request.hh"
#include "sim/channel.hh"
#include "sim/simulator.hh"

namespace ts
{

/** Configuration for the MainMemory model. */
struct MainMemoryConfig
{
    std::uint32_t numBanks = 16;
    Tick serviceLatency = 40;  ///< issue-to-data latency, cycles
    Tick bankOccupancy = 4;    ///< min cycles between issues per bank
    std::uint32_t issueWidth = 2;   ///< accesses issued per cycle
    std::size_t queueCapacity = 64; ///< pending-request buffer
};

/** Cycle-level banked DRAM model. */
class MainMemory : public Ticked
{
  public:
    /**
     * @param sim simulator this model schedules response events on.
     * @param cfg timing parameters.
     * @param reqIn requests from the interconnect.
     * @param respOut serviced responses toward the interconnect.
     */
    MainMemory(Simulator& sim, const MainMemoryConfig& cfg,
               Channel<MemReq>& reqIn, Channel<MemResp>& respOut);

    void tick(Tick now) override;
    bool busy() const override;
    void reportStats(StatSet& stats) const override;

    /** Lines read so far (Fig-5 traffic metric). */
    std::uint64_t linesRead() const { return linesRead_; }

    /** Lines written so far. */
    std::uint64_t linesWritten() const { return linesWritten_; }

    /** Requests queued or in service (timeline probe). */
    std::size_t queueDepth() const
    {
        return pending_.size() + static_cast<std::size_t>(inflight_);
    }

    std::unique_ptr<ComponentSnap> saveState() const override;
    void restoreState(const ComponentSnap& snap) override;

  private:
    /** A request waiting to issue, with its arrival cycle (queue-wait
     *  attribution in the trace). */
    struct Pending
    {
        MemReq req;
        Tick enqueuedAt;
    };

    /** inflight_ responses live in the event queue, whose emptiness
     *  the simulator asserts at snapshot time — so inflight is always
     *  zero when this snap is taken, but it is copied regardless. */
    struct Snap final : ComponentSnap
    {
        std::deque<Pending> pending;
        std::vector<Tick> bankFreeAt;
        std::size_t tracedPending = static_cast<std::size_t>(-1);
        std::uint64_t linesRead = 0;
        std::uint64_t linesWritten = 0;
        std::uint64_t bankConflictStalls = 0;
        std::uint64_t inflight = 0;
    };

    std::uint32_t bankOf(Addr lineAddr) const;
    void retryResponse(const MemResp& resp);

    Simulator& sim_;
    MainMemoryConfig cfg_;
    Channel<MemReq>& reqIn_;
    Channel<MemResp>& respOut_;

    std::deque<Pending> pending_;
    std::vector<Tick> bankFreeAt_;
    std::size_t tracedPending_ = static_cast<std::size_t>(-1);

    std::uint64_t linesRead_ = 0;
    std::uint64_t linesWritten_ = 0;
    std::uint64_t bankConflictStalls_ = 0;
    std::uint64_t inflight_ = 0;
};

} // namespace ts

#endif // TS_MEM_MAIN_MEMORY_HH
