#include "driver/grid.hh"

#include <cstdlib>
#include <fstream>

#include "sim/logging.hh"

namespace ts
{
namespace driver
{

std::vector<std::string>
splitList(const std::string& list)
{
    std::vector<std::string> out;
    std::string cur;
    const auto flush = [&] {
        const auto b = cur.find_first_not_of(" \t");
        const auto e = cur.find_last_not_of(" \t");
        if (b != std::string::npos)
            out.push_back(cur.substr(b, e - b + 1));
        cur.clear();
    };
    for (const char c : list) {
        if (c == ',')
            flush();
        else
            cur += c;
    }
    flush();
    return out;
}

std::vector<std::uint64_t>
parseSeedList(const std::string& list)
{
    std::vector<std::uint64_t> out;
    for (const std::string& s : splitList(list)) {
        char* end = nullptr;
        const std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
        if (end == s.c_str() || *end != '\0')
            fatal("--seeds entries must be non-negative integers, "
                  "got '", s, "'");
        out.push_back(v);
    }
    if (out.empty())
        fatal("--seeds needs at least one entry");
    return out;
}

std::vector<double>
parseScaleList(const std::string& list)
{
    std::vector<double> out;
    for (const std::string& s : splitList(list)) {
        char* end = nullptr;
        const double v = std::strtod(s.c_str(), &end);
        if (end == s.c_str() || *end != '\0' || !(v > 0))
            fatal("--scales entries must be positive numbers, got '",
                  s, "'");
        out.push_back(v);
    }
    if (out.empty())
        fatal("--scales needs at least one entry");
    return out;
}

std::uint32_t
parseLanes(const std::string& s)
{
    char* end = nullptr;
    const long v = std::strtol(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' || v < 1 || v > 62)
        fatal("--lanes must be in 1..62, got '", s, "'");
    return static_cast<std::uint32_t>(v);
}

std::uint64_t
parseCapBytes(const std::string& s)
{
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(s.c_str(), &end, 10);
    std::uint64_t mult = 1;
    if (end != s.c_str() && *end != '\0' &&
        *(end + 1) == '\0') {
        switch (*end) {
          case 'K': case 'k': mult = 1ull << 10; break;
          case 'M': case 'm': mult = 1ull << 20; break;
          case 'G': case 'g': mult = 1ull << 30; break;
          default: mult = 0; break;
        }
    }
    if (end == s.c_str() || (*end != '\0' && mult == 1) || mult == 0)
        fatal("--cache-cap must be BYTES[K|M|G], got '", s, "'");
    return v * mult;
}

namespace
{

std::uint32_t
parsePositive(const std::string& value, const char* key)
{
    char* end = nullptr;
    const long v = std::strtol(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || v < 1)
        fatal("grid key '", key, "' must be a positive integer, "
              "got '", value, "'");
    return static_cast<std::uint32_t>(v);
}

/** One entry of the grid-key vocabulary: the key, the values it
 *  accepts (printed by `delta-sweep --list-grid-keys`), a one-line
 *  meaning, and the setter. */
struct GridKeyDef
{
    const char* key;
    const char* values;
    const char* help;
    void (*apply)(const std::string& value, RunOptions& opt,
                  GridSettings& grid);
};

const GridKeyDef kGridKeys[] = {
    {"workloads", "comma list of workload names, or 'all'",
     "workload axis (default: the whole suite)",
     [](const std::string& v, RunOptions& o, GridSettings&) {
         o.workloads = workloadsFromList(v);
     }},
    {"configs",
     "comma list of: static, dyn, work, work-steal, pipe, delta, "
     "spatial",
     "accelerator-config axis (default: static,delta)",
     [](const std::string& v, RunOptions&, GridSettings& g) {
         g.configs = v;
         (void)sweepConfigsFromList(v); // validate now
     }},
    {"seeds", "comma list of non-negative integers",
     "RNG-seed axis",
     [](const std::string& v, RunOptions&, GridSettings& g) {
         g.seeds = parseSeedList(v);
     }},
    {"scales", "comma list of positive numbers",
     "problem-size axis",
     [](const std::string& v, RunOptions&, GridSettings& g) {
         g.scales = parseScaleList(v);
     }},
    {"lanes", "integer in 1..62", "accelerator lane count",
     [](const std::string& v, RunOptions&, GridSettings& g) {
         g.lanes = parseLanes(v);
     }},
    {"baseline", "a name from the configs list",
     "config paired speedups are measured against",
     [](const std::string& v, RunOptions&, GridSettings& g) {
         g.baseline = v;
     }},
    {"steal", "none | steal-one | steal-half",
     "NoC work stealing for configs whose preset leaves it off "
     "(cache-key relevant)",
     [](const std::string& v, RunOptions& o, GridSettings&) {
         if (!stealPolicyFromName(v, o.steal))
             fatal("grid key 'steal' must be none, steal-one, or "
                   "steal-half, got '", v, "'");
     }},
    {"sched", "static | dyncount | workaware | spatial",
     "scheduling-policy override for every config "
     "(cache-key relevant)",
     [](const std::string& v, RunOptions& o, GridSettings&) {
         if (!schedPolicyFromName(v, o.sched))
             fatal("grid key 'sched' must be static, dyncount, "
                   "workaware, or spatial, got '", v, "'");
         o.schedSet = true;
     }},
    {"jobs", "positive integer", "host worker threads",
     [](const std::string& v, RunOptions& o, GridSettings&) {
         o.jobs = parsePositive(v, "jobs");
     }},
    {"out", "path", "aggregate JSON report destination",
     [](const std::string& v, RunOptions&, GridSettings& g) {
         g.out = v;
     }},
    {"bench-json", "directory path",
     "per-run bench-JSON wrapper dumps",
     [](const std::string& v, RunOptions& o, GridSettings&) {
         o.benchJsonDir = v;
     }},
    {"trace", "path", "per-point Perfetto traces",
     [](const std::string& v, RunOptions& o, GridSettings&) {
         o.tracePath = v;
     }},
    {"no-fast-forward", "0 | 1",
     "naive per-cycle ticking (bit-identical reference mode)",
     [](const std::string& v, RunOptions& o, GridSettings&) {
         o.noFastForward = v != "0";
     }},
    {"cache", "directory path", "content-addressed run cache root",
     [](const std::string& v, RunOptions&, GridSettings& g) {
         g.cacheDir = v;
     }},
    {"cache-cap", "BYTES[K|M|G]", "run-cache size budget",
     [](const std::string& v, RunOptions&, GridSettings& g) {
         g.cacheCapBytes = parseCapBytes(v);
     }},
    {"no-snapshot-fork", "0 | 1",
     "fresh Delta per point instead of snapshot/fork warm starts",
     [](const std::string& v, RunOptions&, GridSettings& g) {
         g.noSnapshotFork = v != "0";
     }},
    {"timeline", "non-negative integer (cycles; 0 = off)",
     "delta.timeline.* sampling interval",
     [](const std::string& v, RunOptions& o, GridSettings&) {
         char* end = nullptr;
         const std::uint64_t n =
             std::strtoull(v.c_str(), &end, 10);
         if (end == v.c_str() || *end != '\0')
             fatal("grid key 'timeline' must be a non-negative "
                   "integer, got '", v, "'");
         o.timelineInterval = n;
     }},
    {"timeline-series", "subset of lanes,ready,noc,dram",
     "timeline probe groups (default: all)",
     [](const std::string& v, RunOptions& o, GridSettings&) {
         o.timelineSeries = v;
     }},
    {"host-profile", "0 | 1",
     "host wall-time attribution (sim.host.profile.*)",
     [](const std::string& v, RunOptions& o, GridSettings&) {
         o.hostProfile = v != "0";
     }},
    {"shards", "positive integer",
     "executor shards inside every run (bit-identical for every N)",
     [](const std::string& v, RunOptions& o, GridSettings&) {
         o.shards = parsePositive(v, "shards");
     }},
};

} // namespace

void
applyGridKey(const std::string& key, const std::string& value,
             RunOptions& opt, GridSettings& grid)
{
    for (const GridKeyDef& def : kGridKeys) {
        if (key == def.key) {
            def.apply(value, opt, grid);
            return;
        }
    }
    std::string valid;
    for (const GridKeyDef& def : kGridKeys)
        valid += (valid.empty() ? "" : ", ") + std::string(def.key);
    fatal("unknown grid key '", key, "'; valid keys: ", valid);
}

void
printGridKeys(std::ostream& os)
{
    os << "grid keys (`key = value` in grid files, `key=value` with "
          "--set):\n";
    for (const GridKeyDef& def : kGridKeys) {
        os << "  " << def.key << " = <" << def.values << ">\n"
           << "      " << def.help << "\n";
    }
}

void
loadGridFile(const std::string& path, RunOptions& opt,
             GridSettings& grid)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open grid file '", path, "'");
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const std::size_t hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        const auto b = line.find_first_not_of(" \t\r");
        if (b == std::string::npos)
            continue;
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            fatal("grid file ", path, ":", lineno,
                  ": expected `key = value`, got '", line, "'");
        const auto trim = [](std::string s) {
            const auto tb = s.find_first_not_of(" \t\r");
            const auto te = s.find_last_not_of(" \t\r");
            return tb == std::string::npos
                       ? std::string()
                       : s.substr(tb, te - tb + 1);
        };
        applyGridKey(trim(line.substr(0, eq)),
                     trim(line.substr(eq + 1)), opt, grid);
    }
}

SweepSpec
buildSweepSpec(const RunOptions& opt, const GridSettings& grid)
{
    SweepSpec spec;
    spec.workloads = opt.workloads.empty() ? workloadsFromList("")
                                           : opt.workloads;
    spec.configs = sweepConfigsFromList(grid.configs, grid.lanes);
    spec.seeds = grid.seeds.empty()
                     ? std::vector<std::uint64_t>{opt.seed}
                     : grid.seeds;
    spec.scales =
        grid.scales.empty() ? std::vector<double>{opt.scale}
                            : grid.scales;
    spec.baseline = grid.baseline;
    spec.jobs = opt.jobs;
    spec.benchJsonDir = opt.benchJsonDir;
    spec.tracePath = opt.tracePath;
    spec.noFastForward = opt.noFastForward;
    spec.timelineInterval = opt.timelineInterval;
    spec.timelineSeries = opt.timelineSeries;
    spec.hostProfile = opt.hostProfile;
    spec.shards = opt.shards;
    spec.steal = opt.steal;
    spec.sched = opt.sched;
    spec.schedSet = opt.schedSet;
    spec.cacheDir = grid.cacheDir;
    spec.cacheCapBytes = grid.cacheCapBytes;
    spec.noSnapshotFork = grid.noSnapshotFork;
    return spec;
}

} // namespace driver
} // namespace ts
