#include "stream/write_engine.hh"

#include "sim/logging.hh"
#include "trace/trace.hh"

namespace ts
{

WriteEngine::WriteEngine(std::string name, MemImage& img,
                         Scratchpad* spm, MemPortIf* mem,
                         PipeTxIf* pipeTx, WriteEngineCfg cfg)
    : Ticked(std::move(name)), img_(img), spm_(spm), mem_(mem),
      pipeTx_(pipeTx), cfg_(cfg)
{
}

void
WriteEngine::program(const WriteDesc& d, TokenFifo* src)
{
    TS_ASSERT(!active_, name(), ": program while active");
    TS_ASSERT(src != nullptr);
    TS_ASSERT(d.toMemory || d.pipeDstMask != 0,
              name(), ": write stream with no destination");
    d_ = d;
    src_ = src;
    active_ = true;
    requestWake(); // the programming task unit ticks before us
    sawStreamEnd_ = false;
    pos_ = 0;
    curLine_.reset();
    chunk_.clear();
    chunkPending_ = false;
    spatialAccum_ = 0;
    pendingSpatial_.clear();
    ++streamsRun_;

    if (trace::on()) {
        auto* t = trace::active();
        t->begin(t->track(name()),
                 d_.pipeDstMask != 0 ? "write+pipe" : "write",
                 trace::args("base", d_.base));
    }
}

void
WriteEngine::queueLine(Addr line)
{
    // Spatially suppressed write-back: every consumer receives the
    // stream by forwarding, so the line traffic never happens.  The
    // count is what a non-forwarded run would have written.
    if (d_.spatialSuppress) {
        ++linesSuppressed_;
        return;
    }
    // Coalesce repeats of the most recent line.
    if (!pendingLines_.empty() && pendingLines_.back() == line)
        return;
    pendingLines_.push_back(line);
}

bool
WriteEngine::flushTraffic()
{
    // Retry pending DRAM line writes.
    while (!pendingLines_.empty()) {
        if (!mem_->writeLine(pendingLines_.front()))
            return false;
        pendingLines_.pop_front();
        ++linesWritten_;
    }
    // Retry a pending pipe chunk.
    if (chunkPending_) {
        if (!pipeTx_->sendChunk(d_.pipeDstMask, d_.pipeId, chunk_))
            return false;
        chunk_.clear();
        chunkPending_ = false;
        ++chunksSent_;
    }
    // Retry pending spatial forwards toward consumer landing zones.
    while (!pendingSpatial_.empty()) {
        const SpatialSend& s = pendingSpatial_.front();
        if (!pipeTx_->sendSpatial(s.node, s.group, s.words, s.done))
            return false;
        pendingSpatial_.pop_front();
        ++spatialChunksSent_;
    }
    return true;
}

void
WriteEngine::tick(Tick now)
{
    if (!active_) {
        sleepOnWake(); // program() wakes us
        return;
    }

    if (!flushTraffic())
        return;

    std::uint32_t budget = cfg_.width;
    while (budget > 0 && !src_->empty() && !sawStreamEnd_) {
        if (pendingLines_.size() >= cfg_.writeQueueDepth)
            break;
        if (chunkPending_)
            break;
        if (pendingSpatial_.size() >= cfg_.writeQueueDepth)
            break;

        // Scratchpad writes need a port this cycle.
        const std::int64_t elemOff =
            static_cast<std::int64_t>(pos_) * d_.strideWords;
        if (d_.toMemory && d_.space == Space::Spm &&
            !spm_->tryAccess(now)) {
            break;
        }

        const Token t = src_->pop();
        if (d_.toMemory) {
            if (d_.space == Space::Dram) {
                const Addr a =
                    d_.base + static_cast<Addr>(elemOff) * wordBytes;
                img_.writeWord(a, t.value);
                const Addr line = lineAlign(a);
                if (!curLine_ || *curLine_ != line) {
                    if (curLine_)
                        queueLine(*curLine_);
                    curLine_ = line;
                }
            } else {
                spm_->write(d_.base + static_cast<Addr>(elemOff),
                            t.value);
            }
        }
        if (d_.pipeDstMask != 0) {
            chunk_.push_back(t);
            if (chunk_.size() >= d_.chunkWords || t.streamEnd())
                chunkPending_ = true;
        }
        if (!d_.spatialDsts.empty()) {
            ++spatialAccum_;
            if (spatialAccum_ >= d_.chunkWords || t.streamEnd()) {
                for (const WriteDesc::SpatialDst& dst : d_.spatialDsts)
                    pendingSpatial_.push_back(
                        SpatialSend{dst.node, dst.group, spatialAccum_,
                                    t.streamEnd()});
                spatialAccum_ = 0;
            }
        }
        ++pos_;
        ++tokensWritten_;
        --budget;
        if (t.streamEnd()) {
            sawStreamEnd_ = true;
            if (curLine_) {
                queueLine(*curLine_);
                curLine_.reset();
            }
        }
    }

    if (sawStreamEnd_ && flushTraffic()) {
        active_ = false;
        if (trace::on()) {
            auto* t = trace::active();
            t->end(t->track(name()));
        }
        sleepOnWake();
    }
}

void
WriteEngine::reportStats(StatSet& stats) const
{
    stats.set(name() + ".tokens", static_cast<double>(tokensWritten_));
    stats.set(name() + ".lines", static_cast<double>(linesWritten_));
    stats.set(name() + ".chunks", static_cast<double>(chunksSent_));
    stats.set(name() + ".streams", static_cast<double>(streamsRun_));
    if (linesSuppressed_ > 0 || spatialChunksSent_ > 0) {
        stats.set(name() + ".linesSuppressed",
                  static_cast<double>(linesSuppressed_));
        stats.set(name() + ".spatialChunks",
                  static_cast<double>(spatialChunksSent_));
    }
}

std::unique_ptr<ComponentSnap>
WriteEngine::saveState() const
{
    auto s = std::make_unique<Snap>();
    s->d = d_;
    s->src = src_;
    s->active = active_;
    s->sawStreamEnd = sawStreamEnd_;
    s->pos = pos_;
    s->curLine = curLine_;
    s->pendingLines = pendingLines_;
    s->chunk = chunk_;
    s->chunkPending = chunkPending_;
    s->spatialAccum = spatialAccum_;
    s->pendingSpatial = pendingSpatial_;
    s->tokensWritten = tokensWritten_;
    s->linesWritten = linesWritten_;
    s->chunksSent = chunksSent_;
    s->linesSuppressed = linesSuppressed_;
    s->spatialChunksSent = spatialChunksSent_;
    s->streamsRun = streamsRun_;
    return s;
}

void
WriteEngine::restoreState(const ComponentSnap& snap)
{
    const Snap& s = snapCast<Snap>(snap);
    d_ = s.d;
    src_ = s.src;
    active_ = s.active;
    sawStreamEnd_ = s.sawStreamEnd;
    pos_ = s.pos;
    curLine_ = s.curLine;
    pendingLines_ = s.pendingLines;
    chunk_ = s.chunk;
    chunkPending_ = s.chunkPending;
    spatialAccum_ = s.spatialAccum;
    pendingSpatial_ = s.pendingSpatial;
    tokensWritten_ = s.tokensWritten;
    linesWritten_ = s.linesWritten;
    chunksSent_ = s.chunksSent;
    linesSuppressed_ = s.linesSuppressed;
    spatialChunksSent_ = s.spatialChunksSent;
    streamsRun_ = s.streamsRun;
}

} // namespace ts
