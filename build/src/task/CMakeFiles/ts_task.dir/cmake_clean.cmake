file(REMOVE_RECURSE
  "CMakeFiles/ts_task.dir/dispatcher.cc.o"
  "CMakeFiles/ts_task.dir/dispatcher.cc.o.d"
  "CMakeFiles/ts_task.dir/shared_landing.cc.o"
  "CMakeFiles/ts_task.dir/shared_landing.cc.o.d"
  "CMakeFiles/ts_task.dir/task_graph.cc.o"
  "CMakeFiles/ts_task.dir/task_graph.cc.o.d"
  "CMakeFiles/ts_task.dir/task_types.cc.o"
  "CMakeFiles/ts_task.dir/task_types.cc.o.d"
  "CMakeFiles/ts_task.dir/task_unit.cc.o"
  "CMakeFiles/ts_task.dir/task_unit.cc.o.d"
  "libts_task.a"
  "libts_task.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
