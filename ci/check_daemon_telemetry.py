#!/usr/bin/env python3
"""Gate the sweep daemon's live telemetry surface.

Usage: check_daemon_telemetry.py <socket> -- <client sweep command...>

Launches the given delta-sweep client command (which submits a sweep
to an already-running daemon at <socket>) and, while the sweep is in
flight, scrapes the daemon's status and Prometheus metrics ops over
the same Unix socket.  Checks:

  - the idle daemon answers a well-formed status before the sweep;
  - at least one mid-flight scrape observes sweeping=true with a
    self-consistent snapshot (done <= runs, workers array matching
    the inflight count);
  - metrics speak the Prometheus text exposition format (# HELP,
    # TYPE, and a sample line for every ts_sweep_* family) both
    mid-flight and at rest;
  - once the client has read its done event, the very next scrape is
    reconciled with the sweep the client just watched: the daemon is
    idle, status runs == done == the number of cell events the
    client received, nothing is in flight, and ts_sweep_active is 0.

Prints a Markdown summary to stdout (suitable for
$GITHUB_STEP_SUMMARY).  Violations exit non-zero and are emitted as
GitHub `::error` annotations on stderr.
"""

import json
import socket
import subprocess
import sys
import time

FAMILIES = {
    "ts_sweep_uptime_seconds": "gauge",
    "ts_sweep_requests_total": "counter",
    "ts_sweep_active": "gauge",
    "ts_sweep_runs_total": "gauge",
    "ts_sweep_runs_done": "gauge",
    "ts_sweep_runs_inflight": "gauge",
    "ts_sweep_cache_hits_total": "counter",
    "ts_sweep_cache_misses_total": "counter",
    "ts_sweep_eta_seconds": "gauge",
}

STATUS_KEYS = (
    "uptimeSec sweeping served runs done inflight hits misses "
    "etaSec workers"
).split()

errors = []


def fail(title, message):
    errors.append(f"{title}: {message}")
    print(f"::error title={title}::{message}", file=sys.stderr)


def scrape(sock_path, op):
    """One request/reply round trip on the daemon socket."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as s:
        s.settimeout(10.0)
        s.connect(sock_path)
        s.sendall(json.dumps({"op": op}).encode() + b"\n")
        buf = b""
        while not buf.endswith(b"\n"):
            chunk = s.recv(65536)
            if not chunk:
                break
            buf += chunk
    return json.loads(buf.decode())


def check_status(st, when):
    """Shape + invariant checks on one status snapshot."""
    for key in STATUS_KEYS:
        if key not in st:
            fail("STATUS MALFORMED", f"{when}: missing key '{key}'")
            return False
    ok = True
    if st["done"] > st["runs"]:
        fail("STATUS INCONSISTENT",
             f"{when}: done {st['done']} > runs {st['runs']}")
        ok = False
    if st["inflight"] != len(st["workers"]):
        fail("STATUS INCONSISTENT",
             f"{when}: inflight {st['inflight']} != "
             f"{len(st['workers'])} workers listed")
        ok = False
    if not st["sweeping"] and st["workers"]:
        fail("STATUS INCONSISTENT",
             f"{when}: idle daemon lists workers {st['workers']}")
        ok = False
    return ok


def check_metrics(text, when):
    """Prometheus exposition checks; returns {family: value}."""
    values = {}
    lines = text.splitlines()
    for family, kind in FAMILIES.items():
        if not any(line.startswith(f"# HELP {family} ")
                   for line in lines):
            fail("METRICS MALFORMED", f"{when}: {family} has no HELP")
        if f"# TYPE {family} {kind}" not in lines:
            fail("METRICS MALFORMED",
                 f"{when}: {family} has no TYPE {kind}")
        samples = [line for line in lines
                   if line.startswith(f"{family} ")]
        if len(samples) != 1:
            fail("METRICS MALFORMED",
                 f"{when}: {family} has {len(samples)} sample lines")
            continue
        values[family] = float(samples[0].split()[1])
    return values


def main():
    if len(sys.argv) < 4 or sys.argv[2] != "--":
        sys.exit(__doc__)
    sock_path = sys.argv[1]
    client_cmd = sys.argv[3:]

    # 1. The idle daemon, before the sweep.
    st = scrape(sock_path, "status")["status"]
    check_status(st, "pre-sweep")
    if st["sweeping"]:
        fail("STATUS INCONSISTENT",
             "pre-sweep: daemon already reports sweeping=true")
    check_metrics(scrape(sock_path, "metrics")["metrics"],
                  "pre-sweep")

    # 2. Submit the sweep and scrape while it runs.
    proc = subprocess.Popen(client_cmd, stdout=subprocess.PIPE,
                            text=True)
    midflight = []
    midflight_metrics = None
    while proc.poll() is None:
        st = scrape(sock_path, "status")["status"]
        check_status(st, "mid-flight")
        if st["sweeping"]:
            midflight.append(st)
            if midflight_metrics is None:
                midflight_metrics = check_metrics(
                    scrape(sock_path, "metrics")["metrics"],
                    "mid-flight")
                if midflight_metrics.get("ts_sweep_active") != 1:
                    fail("METRICS INCONSISTENT",
                         "mid-flight: sweeping daemon reports "
                         "ts_sweep_active "
                         f"{midflight_metrics.get('ts_sweep_active')}")
        time.sleep(0.02)
    out, _ = proc.communicate()
    if proc.returncode != 0:
        fail("CLIENT FAILED",
             f"{' '.join(client_cmd)} exited {proc.returncode}")

    # 3. Reconcile the client's event stream with the daemon.
    events = [json.loads(line) for line in out.splitlines() if line]
    starts = [e for e in events if e.get("event") == "start"]
    cells = [e for e in events if e.get("event") == "cell"]
    dones = [e for e in events if e.get("event") == "done"]
    if len(starts) != 1 or len(dones) != 1:
        fail("EVENT STREAM MALFORMED",
             f"expected 1 start + 1 done event, got "
             f"{len(starts)} + {len(dones)}")
        sys.exit(render(0, len(midflight), len(errors)))
    runs = starts[0]["runs"]
    if len(cells) != runs:
        fail("EVENT STREAM MALFORMED",
             f"start announced {runs} runs but the client saw "
             f"{len(cells)} cell events")
    if not dones[0].get("ok"):
        fail("SWEEP FAILED", f"done event: {dones[0]}")

    if not midflight:
        fail("NO MID-FLIGHT SCRAPE",
             f"the {runs}-cell sweep finished before any status "
             "scrape saw sweeping=true; enlarge the CI grid")

    # The client has read "done", so the daemon must already have
    # gone idle and settled on the final counts.
    st = scrape(sock_path, "status")["status"]
    check_status(st, "completion")
    if st["sweeping"]:
        fail("STATUS INCONSISTENT",
             "completion: daemon still reports sweeping=true after "
             "the client read its done event")
    if st["runs"] != runs or st["done"] != runs:
        fail("STATUS UNRECONCILED",
             f"completion: status reports {st['done']}/{st['runs']} "
             f"cells but the client watched {runs} complete")
    vals = check_metrics(scrape(sock_path, "metrics")["metrics"],
                         "completion")
    if vals.get("ts_sweep_active") != 0:
        fail("METRICS INCONSISTENT",
             f"completion: ts_sweep_active {vals.get('ts_sweep_active')}")
    if vals.get("ts_sweep_runs_done") != runs:
        fail("METRICS UNRECONCILED",
             f"completion: ts_sweep_runs_done "
             f"{vals.get('ts_sweep_runs_done')} != {runs} cells")

    sys.exit(render(runs, len(midflight), len(errors)))


def render(runs, snapshots, nerrors):
    print("### Sweep daemon live telemetry")
    print()
    print(f"- sweep size: {runs} cells")
    print(f"- mid-flight status snapshots with `sweeping=true`: "
          f"{snapshots}")
    print("- Prometheus exposition validated idle, mid-flight, and "
          "at completion")
    if nerrors:
        print()
        for e in errors:
            print(f"- **{e}**")
    else:
        print("- completion scrape reconciles with the client's "
              "event stream")
    return 1 if nerrors else 0


if __name__ == "__main__":
    main()
