file(REMOVE_RECURSE
  "CMakeFiles/ts_accel.dir/area_model.cc.o"
  "CMakeFiles/ts_accel.dir/area_model.cc.o.d"
  "CMakeFiles/ts_accel.dir/delta.cc.o"
  "CMakeFiles/ts_accel.dir/delta.cc.o.d"
  "CMakeFiles/ts_accel.dir/energy_model.cc.o"
  "CMakeFiles/ts_accel.dir/energy_model.cc.o.d"
  "CMakeFiles/ts_accel.dir/lane.cc.o"
  "CMakeFiles/ts_accel.dir/lane.cc.o.d"
  "CMakeFiles/ts_accel.dir/mem_node.cc.o"
  "CMakeFiles/ts_accel.dir/mem_node.cc.o.d"
  "libts_accel.a"
  "libts_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
