/**
 * @file
 * Fig-6: load balance.  Per-lane busy-cycle distribution under each
 * scheduling policy for the skew-heavy workloads; imbalance is
 * max/mean lane busy time (1.0 = perfect).
 */

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.hh"

namespace
{

using namespace ts;
using namespace ts::bench;

const std::vector<Wk> kWorkloads = {Wk::Spmv, Wk::Join, Wk::Tricount};

struct Row
{
    double minBusy = 0, meanBusy = 0, maxBusy = 0, imbalance = 0,
           cycles = 0;
};

std::map<std::pair<Wk, SchedPolicy>, Row> gRows;

Row
measure(Wk w, SchedPolicy policy)
{
    DeltaConfig cfg = DeltaConfig::delta(8);
    cfg.policy = policy;
    cfg.enablePipeline = false; // isolate the balancing effect
    cfg.enableMulticast = false;
    if (policy == SchedPolicy::Static)
        cfg.bulkSynchronous = true;
    const RunResult res = runOnce(w, cfg, SuiteParams{});
    TS_ASSERT(res.correct);

    Row r;
    r.cycles = res.cycles;
    r.meanBusy = res.stats.get("delta.busyMean");
    r.maxBusy = res.stats.get("delta.busyMax");
    r.imbalance = res.stats.get("delta.imbalance");
    double mn = r.maxBusy;
    for (unsigned l = 0; l < 8; ++l) {
        mn = std::min(mn, res.stats.get("lane" + std::to_string(l) +
                                        ".tu.busyCycles"));
    }
    r.minBusy = mn;
    return r;
}

void
runWorkload(benchmark::State& state, Wk w)
{
    for (auto _ : state) {
        for (const auto p : {SchedPolicy::Static, SchedPolicy::DynCount,
                             SchedPolicy::WorkAware}) {
            gRows[{w, p}] = measure(w, p);
        }
        state.counters["imbalance_static"] =
            gRows[{w, SchedPolicy::Static}].imbalance;
        state.counters["imbalance_workaware"] =
            gRows[{w, SchedPolicy::WorkAware}].imbalance;
    }
}

void
printTable()
{
    std::puts("");
    std::puts("Fig-6  Per-lane busy cycles by policy (8 lanes; "
              "pipeline/multicast off to isolate balancing)");
    rule(78);
    std::printf("%-10s %-10s %10s %10s %10s %10s %12s\n", "workload",
                "policy", "min", "mean", "max", "imbal", "cycles");
    rule(78);
    for (const Wk w : kWorkloads) {
        for (const auto p : {SchedPolicy::Static, SchedPolicy::DynCount,
                             SchedPolicy::WorkAware}) {
            const Row& r = gRows.at({w, p});
            std::printf("%-10s %-10s %10.0f %10.0f %10.0f %9.2fx "
                        "%12.0f\n",
                        wkName(w), schedPolicyName(p), r.minBusy,
                        r.meanBusy, r.maxBusy, r.imbalance, r.cycles);
        }
    }
    rule(78);
    std::puts("expected shape: dynamic policies push imbalance "
              "toward 1.0x where static leaves lanes idle; on "
              "bandwidth-bound workloads (spmv) busy-cycle balance "
              "is set by DRAM sharing, not placement");
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(&argc, argv);
    for (const Wk w : kWorkloads) {
        benchmark::RegisterBenchmark(
            (std::string("fig6/") + wkName(w)).c_str(),
            [w](benchmark::State& s) { runWorkload(s, w); })
            ->Iterations(1);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable();
    return 0;
}
