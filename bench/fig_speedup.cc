/**
 * @file
 * Fig-1 (headline): Delta (TaskStream: work-aware balancing +
 * pipelined dependences + shared-read multicast) versus the
 * equivalent static-parallel design, per workload and geomean.
 *
 * A thin wrapper over the parallel sweep engine: the
 * workloads x {static, delta} grid runs on a host thread pool
 * (-j N, default hardware concurrency) and the table renders from
 * the aggregated report.  Accepts every shared run option plus
 * --seeds/--scales-style grids via tools/delta-sweep; per-run
 * StatSets land in --bench-json DIR.
 *
 * Reproduction target (from the paper's abstract): the TaskStream
 * execution model improves performance by ~2.2x over the equivalent
 * static-parallel design.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "driver/sweep.hh"

namespace
{

using namespace ts;
using namespace ts::bench;

void
printTable(const driver::SweepReport& report)
{
    const driver::RunOptions& opt = options();
    std::puts("");
    std::puts("Fig-1  Delta (TaskStream) vs equivalent static-parallel "
              "design, 8 lanes");
    rule();
    std::printf("%-10s %14s %14s %9s %8s\n", "workload", "static(cyc)",
                "delta(cyc)", "speedup", "correct");
    rule();
    std::vector<double> speedups;
    for (const Wk w : report.spec.workloads) {
        const driver::RunOutcome* st =
            report.find(w, "static", opt.seed, opt.scale);
        const driver::RunOutcome* dy =
            report.find(w, "delta", opt.seed, opt.scale);
        if (st == nullptr || dy == nullptr || st->failed ||
            dy->failed)
            continue;
        const double sp = dy->cycles > 0
                              ? st->cycles / dy->cycles
                              : 0.0;
        speedups.push_back(sp);
        std::printf("%-10s %14.0f %14.0f %8.2fx %8s\n", wkName(w),
                    st->cycles, dy->cycles, sp,
                    st->correct && dy->correct ? "yes" : "NO");
    }
    rule();
    std::printf("%-10s %14s %14s %8.2fx\n", "geomean", "", "",
                geomean(speedups));
    std::puts("paper claim (abstract): ~2.2x overall improvement");
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        const driver::RunOptions opt =
            driver::parseCommandLine(argc, argv, /*strict=*/true);
        bench::options() = opt;

        driver::SweepSpec spec;
        spec.workloads = opt.workloads;
        spec.configs = driver::sweepConfigsFromList("static,delta");
        spec.seeds = {opt.seed};
        spec.scales = {opt.scale};
        spec.baseline = "static";
        spec.jobs = opt.jobs;
        spec.benchJsonDir = opt.benchJsonDir;
        spec.tracePath = opt.tracePath;
        spec.noFastForward = opt.noFastForward;
        spec.progress = true;

        const driver::SweepReport report =
            driver::Sweep(std::move(spec)).run();
        printTable(report);
        return report.allOk() ? 0 : 1;
    } catch (const ts::FatalError& e) {
        std::cerr << "fig_speedup: " << e.what() << "\n";
        return 2;
    }
}
