/**
 * @file
 * Time-series sampler: snapshots a configurable set of probes every N
 * simulated cycles into a compact columnar timeline.
 *
 * Sample points are *weak* events on the simulator's event queue, so
 * they fire at exact simulated ticks in both execution modes (the
 * fast-forward loop stops at weak ticks; the naive loop reaches every
 * tick anyway) without keeping the simulation alive or perturbing it:
 * a sampled run's `delta.*` stats are bit-identical to an unsampled
 * one, and the timeline itself is bit-identical across `-j1`/`-jN`,
 * snapshot-forked runs, and `--no-fast-forward`.
 *
 * Probes come in two flavours.  A *counter* probe reads a cumulative
 * value (e.g. a lane's busy-cycle bucket); the report emits
 * per-interval deltas so the rendered waterfall shows occupancy per
 * slice.  A *gauge* probe reads an instantaneous value (queue depths,
 * packets in flight) emitted as-is.
 *
 * Emitted keys (all under `delta.timeline.`):
 *   delta.timeline.interval       sampling interval in cycles
 *   delta.timeline.samples        number of samples taken
 *   delta.timeline.t.<k>          simulated tick of sample k
 *   delta.timeline.<series>.<k>   value of a series at sample k
 * where <k> is a zero-padded 5-digit index so lexicographic key order
 * equals sample order.
 */

#ifndef TS_OBS_TIMELINE_HH
#define TS_OBS_TIMELINE_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace ts
{
class Simulator;
}

namespace ts::obs
{

struct TimelineConfig
{
    /** Sampling interval in simulated cycles; 0 disables sampling. */
    Tick interval = 0;

    /** Stop sampling after this many samples (the final quiescence
     *  sample is always appended). */
    std::size_t maxSamples = 512;

    /**
     * Comma-separated probe-group subset ("lanes,ready,noc,dram");
     * empty means every group.  Unknown names are ignored — the
     * grid vocabulary validates upstream.
     */
    std::string series;
};

class Timeline
{
  public:
    Timeline(Simulator& sim, TimelineConfig cfg);

    /** Whether a probe group passes the config's series filter. */
    bool wants(const std::string& group) const;

    /** Register a cumulative-counter probe (reported as deltas). */
    void addCounter(const std::string& group, std::string series,
                    std::function<double()> read);

    /** Register an instantaneous-gauge probe (reported as-is). */
    void addGauge(const std::string& group, std::string series,
                  std::function<double()> read);

    /** Take the t=0 sample and arm the first weak sample event. */
    void start();

    /**
     * Append a final sample at the current tick (end of run), unless
     * the armed cadence already sampled this exact tick.
     */
    void finalSample();

    /** Number of samples taken so far. */
    std::size_t samples() const { return at_.size(); }

    /** Emit the columnar timeline into @p stats. */
    void report(StatSet& stats) const;

  private:
    struct Probe
    {
        std::string series;
        std::function<double()> read;
        bool counter = false;
    };

    void addProbe(const std::string& group, std::string series,
                  std::function<double()> read, bool counter);
    void sample();
    void arm();

    Simulator& sim_;
    TimelineConfig cfg_;
    std::vector<std::string> groups_; // parsed series filter
    std::vector<Probe> probes_;
    std::vector<Tick> at_;
    std::vector<std::vector<double>> values_; // [probe][sample]
};

} // namespace ts::obs

#endif // TS_OBS_TIMELINE_HH
