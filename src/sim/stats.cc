#include "sim/stats.hh"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <limits>

#include "sim/logging.hh"

namespace ts
{

namespace
{

thread_local StatSet* gActiveStats = nullptr;

std::vector<double>
log2Bounds()
{
    // 0, 1, 2, 4, ... 2^46: covers cycle-valued samples of any
    // realistic run with <2x relative bucket error.
    std::vector<double> b;
    b.push_back(0.0);
    for (int e = 0; e <= 46; ++e)
        b.push_back(static_cast<double>(std::uint64_t{1} << e));
    return b;
}

} // namespace

StatSet*
StatSet::active()
{
    return gActiveStats;
}

void
StatSet::setActive(StatSet* s)
{
    gActiveStats = s;
}

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    // Shortest round-trip form.  to_chars never emits a leading '+'
    // and uses scientific notation only when it is shorter, so the
    // output is a deterministic function of the value alone.
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof(buf), value);
    TS_ASSERT(res.ec == std::errc());
    return std::string(buf, res.ptr);
}

void
StatSet::set(const std::string& name, double value)
{
    values_[name] = value;
}

void
StatSet::add(const std::string& name, double value)
{
    values_[name] += value;
}

void
StatSet::sample(const std::string& name, double value)
{
    hists_[name].sample(value);
    histsDirty_ = true;
}

const Histogram*
StatSet::histogram(const std::string& name) const
{
    auto it = hists_.find(name);
    return it == hists_.end() ? nullptr : &it->second;
}

std::vector<std::string>
StatSet::histogramNames() const
{
    std::vector<std::string> out;
    out.reserve(hists_.size());
    for (const auto& [name, h] : hists_)
        out.push_back(name);
    return out;
}

void
StatSet::sync() const
{
    if (!histsDirty_)
        return;
    for (const auto& [name, h] : hists_) {
        values_[name + ".count"] = static_cast<double>(h.count());
        values_[name + ".mean"] = h.mean();
        values_[name + ".min"] = h.min();
        values_[name + ".max"] = h.max();
        values_[name + ".p50"] = h.percentile(0.50);
        values_[name + ".p95"] = h.percentile(0.95);
        values_[name + ".p99"] = h.percentile(0.99);
    }
    histsDirty_ = false;
}

bool
StatSet::has(const std::string& name) const
{
    sync();
    return values_.count(name) != 0;
}

double
StatSet::get(const std::string& name) const
{
    sync();
    auto it = values_.find(name);
    if (it == values_.end())
        fatal("unknown statistic '", name, "'");
    return it->second;
}

double
StatSet::getOr(const std::string& name, double fallback) const
{
    sync();
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

double
StatSet::sumPrefix(const std::string& prefix) const
{
    sync();
    double sum = 0.0;
    for (auto it = values_.lower_bound(prefix); it != values_.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        sum += it->second;
    }
    return sum;
}

std::vector<std::pair<std::string, double>>
StatSet::matchPrefix(const std::string& prefix) const
{
    sync();
    std::vector<std::pair<std::string, double>> out;
    for (auto it = values_.lower_bound(prefix); it != values_.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0)
            break;
        out.emplace_back(it->first, it->second);
    }
    return out;
}

void
StatSet::mergeFrom(const StatSet& o)
{
    for (const auto& [name, h] : o.hists_) {
        hists_[name].mergeFrom(h);
        histsDirty_ = true;
    }
    // Scalars add.  Any derived histogram key copied here is
    // re-materialized (overwritten) by the next sync() because the
    // matching histogram was merged above.
    for (const auto& [name, v] : o.values_)
        values_[name] += v;
}

std::size_t
StatSet::size() const
{
    sync();
    return values_.size();
}

void
StatSet::dump(std::ostream& os) const
{
    sync();
    for (const auto& [name, value] : values_)
        os << std::left << std::setw(48) << name << " " << value << "\n";
}

void
StatSet::dumpJson(std::ostream& os,
                  const std::string& excludePrefix) const
{
    sync();
    os << "{";
    bool first = true;
    for (const auto& [name, value] : values_) {
        if (!excludePrefix.empty() &&
            name.compare(0, excludePrefix.size(), excludePrefix) == 0)
            continue;
        os << (first ? "\n" : ",\n") << "  \"" << jsonEscape(name)
           << "\": " << jsonNumber(value);
        first = false;
    }
    os << "\n}\n";
}

Histogram::Histogram() : Histogram(log2Bounds()) {}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1, 0)
{
    TS_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void
Histogram::sample(double v)
{
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i])
        ++i;
    ++buckets_[i];
    if (count_ == 0)
        min_ = v;
    else
        min_ = std::min(min_, v);
    ++count_;
    sum_ += v;
    max_ = std::max(max_, v);
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double
Histogram::percentile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double target = q * static_cast<double>(count_);
    double cum = 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        if (buckets_[i] == 0)
            continue;
        const double next = cum + static_cast<double>(buckets_[i]);
        if (next >= target) {
            const double lo = i == 0 ? 0.0 : bounds_[i - 1];
            const double hi =
                i < bounds_.size() ? bounds_[i] : max_;
            const double frac =
                (target - cum) / static_cast<double>(buckets_[i]);
            const double v = lo + frac * (hi - lo);
            return std::clamp(v, min_, max_);
        }
        cum = next;
    }
    return max_;
}

void
Histogram::mergeFrom(const Histogram& o)
{
    TS_ASSERT(bounds_ == o.bounds_,
              "merging histograms with different bucket boundaries");
    if (o.count_ == 0)
        return;
    min_ = count_ == 0 ? o.min_ : std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    count_ += o.count_;
    sum_ += o.sum_;
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += o.buckets_[i];
}

void
Histogram::report(StatSet& stats, const std::string& prefix) const
{
    reportSummary(stats, prefix);
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        stats.set(prefix + ".bucket" + std::to_string(i),
                  static_cast<double>(buckets_[i]));
    }
}

void
Histogram::reportSummary(StatSet& stats, const std::string& prefix) const
{
    stats.set(prefix + ".count", static_cast<double>(count_));
    stats.set(prefix + ".mean", mean());
    stats.set(prefix + ".min", min());
    stats.set(prefix + ".max", max_);
    stats.set(prefix + ".p50", percentile(0.50));
    stats.set(prefix + ".p95", percentile(0.95));
    stats.set(prefix + ".p99", percentile(0.99));
}

} // namespace ts
