
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_accel.cc" "tests/CMakeFiles/ts_tests.dir/test_accel.cc.o" "gcc" "tests/CMakeFiles/ts_tests.dir/test_accel.cc.o.d"
  "/root/repo/tests/test_cgra.cc" "tests/CMakeFiles/ts_tests.dir/test_cgra.cc.o" "gcc" "tests/CMakeFiles/ts_tests.dir/test_cgra.cc.o.d"
  "/root/repo/tests/test_errors.cc" "tests/CMakeFiles/ts_tests.dir/test_errors.cc.o" "gcc" "tests/CMakeFiles/ts_tests.dir/test_errors.cc.o.d"
  "/root/repo/tests/test_mem.cc" "tests/CMakeFiles/ts_tests.dir/test_mem.cc.o" "gcc" "tests/CMakeFiles/ts_tests.dir/test_mem.cc.o.d"
  "/root/repo/tests/test_noc.cc" "tests/CMakeFiles/ts_tests.dir/test_noc.cc.o" "gcc" "tests/CMakeFiles/ts_tests.dir/test_noc.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/ts_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/ts_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_smoke.cc" "tests/CMakeFiles/ts_tests.dir/test_smoke.cc.o" "gcc" "tests/CMakeFiles/ts_tests.dir/test_smoke.cc.o.d"
  "/root/repo/tests/test_stream.cc" "tests/CMakeFiles/ts_tests.dir/test_stream.cc.o" "gcc" "tests/CMakeFiles/ts_tests.dir/test_stream.cc.o.d"
  "/root/repo/tests/test_task.cc" "tests/CMakeFiles/ts_tests.dir/test_task.cc.o" "gcc" "tests/CMakeFiles/ts_tests.dir/test_task.cc.o.d"
  "/root/repo/tests/test_workloads.cc" "tests/CMakeFiles/ts_tests.dir/test_workloads.cc.o" "gcc" "tests/CMakeFiles/ts_tests.dir/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/accel/CMakeFiles/ts_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ts_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/task/CMakeFiles/ts_task.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/ts_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/ts_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ts_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cgra/CMakeFiles/ts_cgra.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ts_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
