file(REMOVE_RECURSE
  "CMakeFiles/pipelined_sort.dir/pipelined_sort.cpp.o"
  "CMakeFiles/pipelined_sort.dir/pipelined_sort.cpp.o.d"
  "pipelined_sort"
  "pipelined_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipelined_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
