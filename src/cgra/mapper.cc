#include "cgra/mapping.hh"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>

#include "sim/logging.hh"

namespace ts
{

std::uint32_t
MappedDfg::maxRouteHops() const
{
    std::uint32_t m = 0;
    for (const Route& r : routes) {
        m = std::max(m,
                     static_cast<std::uint32_t>(r.path.size()) - 1);
    }
    return m;
}

std::uint32_t
MappedDfg::totalLinks() const
{
    std::uint32_t n = 0;
    for (const Route& r : routes)
        n += static_cast<std::uint32_t>(r.path.size()) - 1;
    return n;
}

namespace
{

/** Mutable routing state: remaining capacity per directed link. */
class LinkBudget
{
  public:
    LinkBudget(const FabricGeometry& g) : geom_(g) {}

    std::uint32_t
    remaining(std::uint32_t from, std::uint32_t to) const
    {
        auto it = used_.find({from, to});
        const std::uint32_t u = it == used_.end() ? 0 : it->second;
        return geom_.linkMultiplicity - u;
    }

    void
    consume(std::uint32_t from, std::uint32_t to)
    {
        ++used_[{from, to}];
    }

    void
    release(std::uint32_t from, std::uint32_t to)
    {
        auto it = used_.find({from, to});
        TS_ASSERT(it != used_.end() && it->second > 0);
        --it->second;
    }

  private:
    FabricGeometry geom_;
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t>
        used_;
};

std::vector<std::uint32_t>
neighbors(const FabricGeometry& g, std::uint32_t tile)
{
    std::vector<std::uint32_t> out;
    const std::uint32_t c = tile % g.cols, r = tile / g.cols;
    if (c + 1 < g.cols)
        out.push_back(tile + 1);
    if (c > 0)
        out.push_back(tile - 1);
    if (r + 1 < g.rows)
        out.push_back(tile + g.cols);
    if (r > 0)
        out.push_back(tile - g.cols);
    return out;
}

std::uint32_t
manhattan(const FabricGeometry& g, std::uint32_t a, std::uint32_t b)
{
    const auto ax = static_cast<std::int64_t>(a % g.cols);
    const auto ay = static_cast<std::int64_t>(a / g.cols);
    const auto bx = static_cast<std::int64_t>(b % g.cols);
    const auto by = static_cast<std::int64_t>(b / g.cols);
    return static_cast<std::uint32_t>(std::abs(ax - bx) +
                                      std::abs(ay - by));
}

/** BFS shortest path over links with remaining capacity. */
std::vector<std::uint32_t>
routeBfs(const FabricGeometry& g, const LinkBudget& budget,
         std::uint32_t from, std::uint32_t to)
{
    std::vector<std::int32_t> prev(g.numTiles(), -1);
    std::vector<bool> seen(g.numTiles(), false);
    std::queue<std::uint32_t> q;
    q.push(from);
    seen[from] = true;
    while (!q.empty()) {
        const std::uint32_t cur = q.front();
        q.pop();
        if (cur == to)
            break;
        for (std::uint32_t nb : neighbors(g, cur)) {
            if (seen[nb] || budget.remaining(cur, nb) == 0)
                continue;
            seen[nb] = true;
            prev[nb] = static_cast<std::int32_t>(cur);
            q.push(nb);
        }
    }
    if (!seen[to])
        return {};
    std::vector<std::uint32_t> path;
    for (std::uint32_t cur = to;;) {
        path.push_back(cur);
        if (cur == from)
            break;
        cur = static_cast<std::uint32_t>(prev[cur]);
    }
    std::reverse(path.begin(), path.end());
    return path;
}

} // namespace

namespace
{

/** Deterministic tiebreak hash for placement retries. */
std::uint32_t
saltHash(std::uint32_t salt, std::uint32_t node, std::uint32_t tile)
{
    std::uint64_t x = (std::uint64_t(salt) << 40) ^
                      (std::uint64_t(node) << 20) ^ tile;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return static_cast<std::uint32_t>(x & 7);
}

} // namespace

MappedDfg
Mapper::map(const Dfg& dfg) const
{
    // Greedy placement can wedge on congested graphs; retry with
    // perturbed tile preferences before giving up (a lightweight
    // stand-in for rip-up-and-reroute).
    for (std::uint32_t salt = 0; salt < 8; ++salt) {
        try {
            return mapAttempt(dfg, salt);
        } catch (const FatalError&) {
            if (salt == 7)
                throw;
        }
    }
    fatal("unreachable");
}

MappedDfg
Mapper::mapAttempt(const Dfg& dfg, std::uint32_t salt) const
{
    dfg.validate();
    if (dfg.numNodes() > geom_.numTiles()) {
        fatal("DFG '", dfg.name(), "' has ", dfg.numNodes(),
              " nodes but the fabric only has ", geom_.numTiles(),
              " tiles");
    }

    MappedDfg m;
    m.dfg = &dfg;
    m.geom = geom_;
    m.nodeTile.assign(dfg.numNodes(),
                      std::numeric_limits<std::uint32_t>::max());

    const auto allEdges = dfg.edges();
    LinkBudget budget(geom_);
    std::vector<bool> tileUsed(geom_.numTiles(), false);

    // Routes are stored per edge in dfg.edges() order; we fill them
    // as consumers get placed.
    m.routes.resize(allEdges.size());
    for (std::size_t e = 0; e < allEdges.size(); ++e)
        m.routes[e].edge = allEdges[e];

    for (std::uint32_t id = 0; id < dfg.numNodes(); ++id) {
        const Dfg::Node& n = dfg.node(id);

        // Incoming edges of this node (producers already placed,
        // because builder order is topological).
        std::vector<std::size_t> inEdges;
        for (std::size_t e = 0; e < allEdges.size(); ++e) {
            if (allEdges[e].dst == id)
                inEdges.push_back(e);
        }

        // Candidate tiles ordered by placement cost.
        std::vector<std::pair<std::uint32_t, std::uint32_t>> cand;
        for (std::uint32_t t = 0; t < geom_.numTiles(); ++t) {
            if (tileUsed[t])
                continue;
            std::uint32_t cost = 0;
            for (std::size_t e : inEdges)
                cost += manhattan(geom_, m.nodeTile[allEdges[e].src], t);
            if (n.op == Op::Input)
                cost += t % geom_.cols; // prefer west column
            if (n.op == Op::Output)
                cost += geom_.cols - 1 - t % geom_.cols; // east column
            cost = cost * 8 + saltHash(salt, id, t);
            cand.emplace_back(cost, t);
        }
        std::sort(cand.begin(), cand.end());

        bool placed = false;
        for (const auto& [cost, tile] : cand) {
            (void)cost;
            // Try to route every incoming edge to this tile.
            std::vector<std::vector<std::uint32_t>> paths;
            bool ok = true;
            for (std::size_t e : inEdges) {
                auto path = routeBfs(geom_, budget,
                                     m.nodeTile[allEdges[e].src], tile);
                if (path.empty()) {
                    ok = false;
                    break;
                }
                for (std::size_t i = 0; i + 1 < path.size(); ++i)
                    budget.consume(path[i], path[i + 1]);
                paths.push_back(std::move(path));
            }
            if (!ok) {
                // Roll back partially committed paths.
                for (const auto& path : paths) {
                    for (std::size_t i = 0; i + 1 < path.size(); ++i)
                        budget.release(path[i], path[i + 1]);
                }
                continue;
            }
            m.nodeTile[id] = tile;
            tileUsed[tile] = true;
            for (std::size_t k = 0; k < inEdges.size(); ++k)
                m.routes[inEdges[k]].path = std::move(paths[k]);
            placed = true;
            break;
        }
        if (!placed) {
            fatal("DFG '", dfg.name(), "': could not place/route node ",
                  id, " (", opName(n.op),
                  "); fabric too congested — increase geometry or "
                  "link multiplicity");
        }
    }
    return m;
}

} // namespace ts
