/**
 * @file
 * A simple discrete-event queue used for modeling fixed latencies
 * (DRAM service, functional-unit pipelines) alongside the per-cycle
 * ticked components.
 */

#ifndef TS_SIM_EVENT_QUEUE_HH
#define TS_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace ts
{

/**
 * Min-heap of (tick, sequence) ordered callbacks.  Events scheduled
 * for the same tick fire in scheduling order (deterministic).
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule a callback at an absolute tick (>= current tick). */
    void schedule(Tick when, Callback cb);

    /** Fire every event scheduled at or before @p now. */
    void fireUpTo(Tick now);

    /** Whether any event is pending. */
    bool empty() const { return heap_.empty(); }

    /** Tick of the earliest pending event; panics when empty. */
    Tick nextTick() const;

    /** Number of pending events. */
    std::size_t size() const { return heap_.size(); }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry& a, const Entry& b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace ts

#endif // TS_SIM_EVENT_QUEUE_HH
