#include "stream/read_engine.hh"

#include "sim/logging.hh"
#include "trace/trace.hh"

namespace ts
{

namespace
{

const char*
streamKindName(StreamDesc::Kind k)
{
    switch (k) {
      case StreamDesc::Kind::Linear: return "linear";
      case StreamDesc::Kind::Strided2D: return "strided2d";
      case StreamDesc::Kind::Indirect: return "indirect";
      case StreamDesc::Kind::Csr: return "csr";
      case StreamDesc::Kind::CsrGather: return "csrGather";
      case StreamDesc::Kind::CsrIndirectSeg: return "csrIndirectSeg";
      case StreamDesc::Kind::PipeIn: return "pipeIn";
    }
    return "?";
}

} // namespace

ReadEngine::ReadEngine(std::string name, const MemImage& img,
                       Scratchpad* spm, MemPortIf* mem, PipeSet* pipes,
                       ReadEngineCfg cfg)
    : Ticked(std::move(name)), img_(img), spm_(spm), pipes_(pipes),
      cfg_(cfg), ptrF_(img, spm, mem, cfg.fetcher),
      idxF_(img, spm, mem, cfg.fetcher), dataF_(img, spm, mem,
                                                cfg.fetcher)
{
}

void
ReadEngine::program(const StreamDesc& d, TokenFifo* dest,
                    Ticked* destOwner)
{
    TS_ASSERT(!active_, name(), ": program while active");
    if (d.kind != StreamDesc::Kind::PipeIn && d.count == 0)
        fatal(name(), ": zero-length streams are not supported");
    if (d.repeat == 0)
        fatal(name(), ": repeat must be >= 1");

    d_ = d;
    dest_ = dest;
    destOwner_ = destOwner;
    active_ = true;
    requestWake(); // the programming task unit ticks before us
    genPos_ = outer_ = inner_ = 0;
    loop_ = 0;
    rep2_ = 0;
    idxGenPos_ = ptrGenPos_ = 0;
    havePrevPtr_ = false;
    prevPtr_ = 0;
    haveLo_ = false;
    loVal_ = 0;
    segIdx_ = 0;
    segRemaining_ = 0;
    segCursor_ = 0;
    repeatLeft_ = 0;
    sawStreamEnd_ = false;
    ++streamsRun_;

    ptrF_.reset(d.idxSpace);
    idxF_.reset(d.idxSpace);
    // Landing mode only ever applies to the Linear stride-1 Dram
    // shapes the dispatcher marks (spatially forwarded ranges).
    dataF_.reset(d.dataSpace,
                 d.spatialLanding && d.dataSpace == Space::Dram &&
                     d.kind == StreamDesc::Kind::Linear);

    if (trace::on()) {
        auto* t = trace::active();
        t->begin(t->track(name()), streamKindName(d_.kind),
                 trace::args("count", d_.count, "repeat", d_.repeat));
    }
}

bool
ReadEngine::waitingOnMem() const
{
    if (!active_ || d_.kind == StreamDesc::Kind::PipeIn)
        return false;
    return ptrF_.outstanding() + idxF_.outstanding() +
               dataF_.outstanding() >
           0;
}

bool
ReadEngine::waitingOnPipe() const
{
    return active_ && d_.kind == StreamDesc::Kind::PipeIn &&
           !pipes_->hasData(d_.pipeId);
}

Addr
ReadEngine::elemAddr(Space sp, Addr base, std::int64_t elemWords) const
{
    if (sp == Space::Dram)
        return base + static_cast<Addr>(elemWords) * wordBytes;
    return base + static_cast<Addr>(elemWords); // Spm word offset
}

namespace
{

std::uint8_t
positionFlags(std::uint64_t i, std::uint64_t fixedSegLen,
              std::uint64_t n)
{
    std::uint8_t f = 0;
    if (fixedSegLen != 0 && (i + 1) % fixedSegLen == 0)
        f |= kSegEnd;
    if (i + 1 == n)
        f |= kSegEnd | kStreamEnd;
    return f;
}

} // namespace

void
ReadEngine::pumpCsrPointers()
{
    // Stage 0: fetch ptr[0..count].
    std::uint32_t budget = cfg_.genPerCycle;
    while (budget > 0 && ptrGenPos_ <= d_.count && !ptrF_.windowFull()) {
        ptrF_.push(elemAddr(d_.idxSpace, d_.ptrBase,
                            static_cast<std::int64_t>(ptrGenPos_)),
                   0);
        ++ptrGenPos_;
        --budget;
    }

    // Consume pointer pairs into segment bounds.
    while (segRemaining_ == 0 && segIdx_ < d_.count &&
           ptrF_.headReady()) {
        const std::int64_t v = asInt(ptrF_.popHead().value);
        if (!havePrevPtr_) {
            prevPtr_ = v;
            havePrevPtr_ = true;
            continue;
        }
        const std::int64_t len = v - prevPtr_;
        if (len <= 0) {
            fatal(name(), ": CSR segment ", segIdx_,
                  " is empty or negative (len=", len,
                  "); segments must be non-empty");
        }
        segRemaining_ = static_cast<std::uint64_t>(len);
        segCursor_ = prevPtr_;
        prevPtr_ = v;
    }
}

void
ReadEngine::pumpIndirectSegPointers()
{
    // Stage A: fetch the segment-id list.
    std::uint32_t budget = cfg_.genPerCycle;
    while (budget > 0 && idxGenPos_ < d_.count && !idxF_.windowFull()) {
        idxF_.push(elemAddr(d_.idxSpace, d_.idxBase,
                            static_cast<std::int64_t>(idxGenPos_)),
                   0);
        ++idxGenPos_;
        --budget;
    }

    // Stage B: ids -> ptr pair addresses.
    while (idxF_.headReady() && ptrF_.roomFor(2)) {
        const std::int64_t v = asInt(idxF_.popHead().value);
        ptrF_.push(elemAddr(d_.idxSpace, d_.ptrBase, v), 0);
        ptrF_.push(elemAddr(d_.idxSpace, d_.ptrBase, v + 1), 0);
    }

    // Stage C: ptr pairs -> segment bounds.
    while (segRemaining_ == 0 && segIdx_ < d_.count &&
           ptrF_.headReady()) {
        const std::int64_t v = asInt(ptrF_.popHead().value);
        if (!haveLo_) {
            loVal_ = v;
            haveLo_ = true;
            continue;
        }
        const std::int64_t len = v - loVal_;
        if (len <= 0) {
            fatal(name(), ": CsrIndirectSeg segment ", segIdx_,
                  " is empty (len=", len, "); filter empty ids");
        }
        segRemaining_ = static_cast<std::uint64_t>(len);
        segCursor_ = loVal_;
        haveLo_ = false;
    }
}

void
ReadEngine::generateSegments()
{
    // Stage 1: turn segment bounds into element addresses.
    std::uint32_t budget = cfg_.genPerCycle;
    const bool viaGather = d_.kind == StreamDesc::Kind::CsrGather;
    WordFetcher& target = viaGather ? idxF_ : dataF_;
    const Addr base = viaGather ? d_.idxBase : d_.dataBase;
    const Space sp = viaGather ? d_.idxSpace : d_.dataSpace;
    while (budget > 0 && segRemaining_ > 0 && !target.windowFull()) {
        std::uint8_t flags = 0;
        if (segRemaining_ == 1) {
            flags |= kSegEnd;
            if (segIdx_ + 1 == d_.count)
                flags |= kStreamEnd;
        }
        target.push(elemAddr(sp, base, segCursor_), flags);
        ++segCursor_;
        --segRemaining_;
        --budget;
        if (segRemaining_ == 0)
            ++segIdx_;
    }
}

void
ReadEngine::generate(Tick now)
{
    switch (d_.kind) {
      case StreamDesc::Kind::Linear: {
        std::uint32_t budget = cfg_.genPerCycle;
        while (budget > 0 && loop_ < d_.loops && !dataF_.windowFull()) {
            std::uint8_t f = 0;
            if (d_.fixedSegLen != 0 &&
                (genPos_ + 1) % d_.fixedSegLen == 0) {
                f |= kSegEnd;
            }
            if (genPos_ + 1 == d_.count) {
                f |= kSegEnd | kSeg2End;
                if (loop_ + 1 == d_.loops)
                    f |= kStreamEnd;
            }
            dataF_.push(
                elemAddr(d_.dataSpace, d_.dataBase,
                         static_cast<std::int64_t>(genPos_) *
                             d_.strideWords),
                f);
            --budget;
            if (++genPos_ == d_.count) {
                genPos_ = 0;
                ++loop_;
            }
        }
        break;
      }
      case StreamDesc::Kind::Strided2D: {
        std::uint32_t budget = cfg_.genPerCycle;
        while (budget > 0 && outer_ < d_.count && !dataF_.windowFull()) {
            const std::int64_t off =
                static_cast<std::int64_t>(outer_) * d_.outerStrideWords +
                static_cast<std::int64_t>(inner_) * d_.innerStrideWords;
            std::uint8_t f = 0;
            if (inner_ + 1 == d_.innerLen) {
                f |= kSegEnd;
                if (rep2_ + 1 == d_.rowRepeat) {
                    f |= kSeg2End;
                    if (outer_ + 1 == d_.count)
                        f |= kStreamEnd;
                }
            }
            dataF_.push(elemAddr(d_.dataSpace, d_.dataBase, off), f);
            --budget;
            if (++inner_ == d_.innerLen) {
                inner_ = 0;
                if (++rep2_ == d_.rowRepeat) {
                    rep2_ = 0;
                    ++outer_;
                }
            }
        }
        break;
      }
      case StreamDesc::Kind::Indirect: {
        std::uint32_t budget = cfg_.genPerCycle;
        while (budget > 0 && idxGenPos_ < d_.count &&
               !idxF_.windowFull()) {
            idxF_.push(elemAddr(d_.idxSpace, d_.idxBase,
                                static_cast<std::int64_t>(idxGenPos_)),
                       positionFlags(idxGenPos_, d_.fixedSegLen,
                                     d_.count));
            ++idxGenPos_;
            --budget;
        }
        break;
      }
      case StreamDesc::Kind::Csr:
      case StreamDesc::Kind::CsrGather:
        pumpCsrPointers();
        generateSegments();
        break;
      case StreamDesc::Kind::CsrIndirectSeg:
        pumpIndirectSegPointers();
        generateSegments();
        break;
      case StreamDesc::Kind::PipeIn:
        break; // nothing to generate
    }

    // Gather stage: indices -> data addresses.
    if (d_.kind == StreamDesc::Kind::Indirect ||
        d_.kind == StreamDesc::Kind::CsrGather) {
        std::uint32_t budget = cfg_.genPerCycle;
        while (budget > 0 && idxF_.headReady() && !dataF_.windowFull()) {
            const Token t = idxF_.popHead();
            dataF_.push(elemAddr(d_.dataSpace, d_.dataBase,
                                 asInt(t.value) * d_.strideWords),
                        t.flags);
            --budget;
        }
    }

    ptrF_.pump(now);
    idxF_.pump(now);
    dataF_.pump(now);
}

void
ReadEngine::deliver()
{
    std::uint32_t budget = cfg_.deliverWidth;
    while (budget > 0) {
        if (repeatLeft_ == 0) {
            if (d_.kind == StreamDesc::Kind::PipeIn) {
                if (!pipes_->hasData(d_.pipeId))
                    return;
                repeatTok_ = pipes_->pop(d_.pipeId);
            } else {
                if (!dataF_.headReady())
                    return;
                repeatTok_ = dataF_.popHead();
            }
            repeatLeft_ = d_.repeat;
        }
        Token out{repeatTok_.value,
                  repeatLeft_ == 1 ? repeatTok_.flags : std::uint8_t{0}};
        if (dest_ != nullptr && !dest_->push(out))
            return; // port back-pressure
        --repeatLeft_;
        --budget;
        ++tokensDelivered_;
        if (out.streamEnd())
            sawStreamEnd_ = true;
    }
}

bool
ReadEngine::generationDone() const
{
    switch (d_.kind) {
      case StreamDesc::Kind::Linear:
        return loop_ == d_.loops && dataF_.settled();
      case StreamDesc::Kind::Strided2D:
        return outer_ == d_.count && dataF_.settled();
      case StreamDesc::Kind::Indirect:
        return idxGenPos_ == d_.count && idxF_.settled() &&
               dataF_.settled();
      case StreamDesc::Kind::Csr:
        return segIdx_ == d_.count && segRemaining_ == 0 &&
               ptrF_.settled() && dataF_.settled();
      case StreamDesc::Kind::CsrGather:
      case StreamDesc::Kind::CsrIndirectSeg:
        return segIdx_ == d_.count && segRemaining_ == 0 &&
               ptrF_.settled() && idxF_.settled() && dataF_.settled();
      case StreamDesc::Kind::PipeIn:
        return sawStreamEnd_;
    }
    return false;
}

void
ReadEngine::tick(Tick now)
{
    if (!active_) {
        sleepOnWake(); // program() wakes us
        return;
    }
    const std::uint64_t delivered = tokensDelivered_;
    generate(now);
    deliver();
    // Tokens land in a plain TokenFifo (no channel hooks), so the
    // consuming component is woken explicitly.
    if (destOwner_ != nullptr && tokensDelivered_ != delivered)
        destOwner_->requestWake();
    if (generationDone() && repeatLeft_ == 0) {
        active_ = false;
        if (trace::on()) {
            auto* t = trace::active();
            t->end(t->track(name()));
        }
        sleepOnWake();
    }
}

std::uint64_t
ReadEngine::linesRequested() const
{
    return ptrF_.linesRequested() + idxF_.linesRequested() +
           dataF_.linesRequested();
}

void
ReadEngine::reportStats(StatSet& stats) const
{
    stats.set(name() + ".tokens", static_cast<double>(tokensDelivered_));
    stats.set(name() + ".lines", static_cast<double>(linesRequested()));
    stats.set(name() + ".spmReads",
              static_cast<double>(ptrF_.spmReads() + idxF_.spmReads() +
                                  dataF_.spmReads()));
    stats.set(name() + ".streams", static_cast<double>(streamsRun_));
    if (dataF_.landingWords() > 0) {
        stats.set(name() + ".landingWords",
                  static_cast<double>(dataF_.landingWords()));
        stats.set(name() + ".landingLines",
                  static_cast<double>(dataF_.landingLines()));
    }
}

std::unique_ptr<ComponentSnap>
ReadEngine::saveState() const
{
    auto s = std::make_unique<Snap>();
    s->d = d_;
    s->dest = dest_;
    s->destOwner = destOwner_;
    s->active = active_;
    s->genPos = genPos_;
    s->loop = loop_;
    s->outer = outer_;
    s->inner = inner_;
    s->rep2 = rep2_;
    s->idxGenPos = idxGenPos_;
    s->ptrGenPos = ptrGenPos_;
    s->havePrevPtr = havePrevPtr_;
    s->prevPtr = prevPtr_;
    s->haveLo = haveLo_;
    s->loVal = loVal_;
    s->segIdx = segIdx_;
    s->segRemaining = segRemaining_;
    s->segCursor = segCursor_;
    s->repeatLeft = repeatLeft_;
    s->repeatTok = repeatTok_;
    s->sawStreamEnd = sawStreamEnd_;
    s->ptrF = ptrF_.saveFetchState();
    s->idxF = idxF_.saveFetchState();
    s->dataF = dataF_.saveFetchState();
    s->tokensDelivered = tokensDelivered_;
    s->streamsRun = streamsRun_;
    return s;
}

void
ReadEngine::restoreState(const ComponentSnap& snap)
{
    const Snap& s = snapCast<Snap>(snap);
    d_ = s.d;
    dest_ = s.dest;
    destOwner_ = s.destOwner;
    active_ = s.active;
    genPos_ = s.genPos;
    loop_ = s.loop;
    outer_ = s.outer;
    inner_ = s.inner;
    rep2_ = s.rep2;
    idxGenPos_ = s.idxGenPos;
    ptrGenPos_ = s.ptrGenPos;
    havePrevPtr_ = s.havePrevPtr;
    prevPtr_ = s.prevPtr;
    haveLo_ = s.haveLo;
    loVal_ = s.loVal;
    segIdx_ = s.segIdx;
    segRemaining_ = s.segRemaining;
    segCursor_ = s.segCursor;
    repeatLeft_ = s.repeatLeft;
    repeatTok_ = s.repeatTok;
    sawStreamEnd_ = s.sawStreamEnd;
    ptrF_.restoreFetchState(s.ptrF);
    idxF_.restoreFetchState(s.idxF);
    dataF_.restoreFetchState(s.dataF);
    tokensDelivered_ = s.tokensDelivered;
    streamsRun_ = s.streamsRun;
}

} // namespace ts
