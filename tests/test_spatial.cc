/**
 * @file
 * Ahead-of-time spatial mapping tests: the forwarding-eligibility
 * vocabulary shared by the mapper and the runtime, the lane-side
 * landing tracker, mapper determinism, and end-to-end behaviour of
 * SchedPolicy::Spatial — every workload stays golden-correct, the
 * pipeline-shaped ones actually save DRAM lines, repeated runs are
 * deterministic, and an undersized landing budget degrades to counted
 * spills instead of wrong answers.
 */

#include <gtest/gtest.h>

#include "accel/delta.hh"
#include "noc/noc.hh"
#include "spatial/mapper.hh"
#include "spatial/spatial.hh"
#include "workloads/workload.hh"

namespace ts
{
namespace
{

// --- forwarding-eligibility vocabulary ------------------------------------

TEST(SpatialVocab, LandingEligibleInput)
{
    const StreamDesc ok = StreamDesc::linear(Space::Dram, 64, 32);
    EXPECT_TRUE(spatial::landingEligibleInput(ok));

    StreamDesc spm = ok;
    spm.dataSpace = Space::Spm;
    EXPECT_FALSE(spatial::landingEligibleInput(spm));

    StreamDesc strided = ok;
    strided.strideWords = 2;
    EXPECT_FALSE(spatial::landingEligibleInput(strided));

    StreamDesc looped = ok;
    looped.loops = 2;
    EXPECT_FALSE(spatial::landingEligibleInput(looped));

    StreamDesc empty = ok;
    empty.count = 0;
    EXPECT_FALSE(spatial::landingEligibleInput(empty));

    EXPECT_FALSE(spatial::landingEligibleInput(
        StreamDesc::csr(Space::Dram, 64, 4, 512)));
}

TEST(SpatialVocab, ForwardableOutput)
{
    WriteDesc ok;
    ok.base = 4096;
    EXPECT_TRUE(spatial::forwardableOutput(ok));

    WriteDesc spm = ok;
    spm.space = Space::Spm;
    EXPECT_FALSE(spatial::forwardableOutput(spm));

    WriteDesc strided = ok;
    strided.strideWords = 4;
    EXPECT_FALSE(spatial::forwardableOutput(strided));

    // An output already claimed by pipeline forwarding keeps its
    // pipe; spatial forwarding must not double-claim it.
    WriteDesc piped = ok;
    piped.pipeDstMask = 0b10;
    EXPECT_FALSE(spatial::forwardableOutput(piped));
}

TEST(SpatialVocab, OutputFeedsInputByBaseContainment)
{
    const StreamDesc in = StreamDesc::linear(Space::Dram, 1024, 16);
    WriteDesc w;
    w.base = 1024;
    EXPECT_TRUE(spatial::outputFeedsInput(w, in));
    w.base = 1024 + 15 * wordBytes;
    EXPECT_TRUE(spatial::outputFeedsInput(w, in));
    w.base = 1024 + 16 * wordBytes;
    EXPECT_FALSE(spatial::outputFeedsInput(w, in));
    w.base = 0;
    EXPECT_FALSE(spatial::outputFeedsInput(w, in));
}

TEST(SpatialVocab, LandingBufWordsRoundsToLines)
{
    EXPECT_EQ(spatial::landingBufWords(
                  StreamDesc::linear(Space::Dram, 0, 1)),
              std::uint64_t{lineWords});
    EXPECT_EQ(spatial::landingBufWords(
                  StreamDesc::linear(Space::Dram, 0, lineWords)),
              std::uint64_t{lineWords});
    EXPECT_EQ(spatial::landingBufWords(
                  StreamDesc::linear(Space::Dram, 0, lineWords + 1)),
              std::uint64_t{2 * lineWords});
}

TEST(SpatialVocab, LandingGroupPacksUidAndPort)
{
    EXPECT_EQ(spatial::landingGroup(0, 0), 0u);
    EXPECT_EQ(spatial::landingGroup(5, 3),
              (std::uint64_t{5} << 3) | 3);
    // Distinct ports of the same consumer are distinct groups.
    EXPECT_NE(spatial::landingGroup(7, 0), spatial::landingGroup(7, 1));
}

// --- landing tracker ------------------------------------------------------

TEST(SpatialTracker, GatesOnDoneMarkersAndTracksPeak)
{
    spatial::LandingTracker t;
    const std::uint64_t g = spatial::landingGroup(3, 1);

    // Two producers forward into the group; the consumer may not
    // start until both done markers arrived.
    EXPECT_TRUE(t.complete(g, 0));
    EXPECT_FALSE(t.complete(g, 2));
    t.deliver(g, 16, false);
    t.deliver(g, 16, true);
    EXPECT_FALSE(t.complete(g, 2));
    t.deliver(g, 8, true);
    EXPECT_TRUE(t.complete(g, 2));

    EXPECT_EQ(t.chunksReceived(), 3u);
    EXPECT_EQ(t.wordsReceived(), 40u);

    // Unknown groups are simply incomplete, and release is
    // idempotent on them.
    EXPECT_FALSE(t.complete(spatial::landingGroup(9, 0), 1));
    t.release(g);
    t.release(g);
    EXPECT_FALSE(t.complete(g, 2));
}

// --- mapper ---------------------------------------------------------------

struct MapperFixture
{
    Simulator sim;
    Noc noc;
    TaskTypeRegistry reg;
    MemImage img;
    TaskGraph graph;
    std::vector<std::uint32_t> laneNodes;

    MapperFixture() : noc(sim, NocConfig{4, 4, 4, 2}), reg(FabricGeometry{})
    {
        for (std::uint32_t i = 0; i < 8; ++i)
            laneNodes.push_back(1 + i);
    }

    spatial::SpatialPlan
    map()
    {
        return spatial::mapTaskGraph(graph, img, reg, noc, laneNodes,
                                     2);
    }
};

TaskTypeId
addAddType(TaskTypeRegistry& reg, const std::string& name)
{
    auto dfg = std::make_unique<Dfg>(name);
    const auto x = dfg->addInput();
    const auto a =
        dfg->add(Op::Add, Operand::ref(x), Operand::immI(1));
    dfg->addOutput(a);
    return reg.addDfgType(name, std::move(dfg));
}

TEST(SpatialMapper, ProducerConsumerChainsColocateDeterministically)
{
    MapperFixture f;
    const auto ty = addAddType(f.reg, "scale");

    // Four independent producer->consumer chains through DRAM
    // staging buffers: each pair should land on one lane, and the
    // pairs should spread across lanes.
    std::vector<TaskId> producers, consumers;
    for (int c = 0; c < 4; ++c) {
        const Addr in = 0x1000 + c * 0x1000;
        const Addr mid = 0x10000 + c * 0x1000;
        WriteDesc toMid;
        toMid.base = mid;
        const auto p = f.graph.addTask(
            ty, {StreamDesc::linear(Space::Dram, in, 64)}, {toMid});
        WriteDesc out;
        out.base = 0x20000 + c * 0x1000;
        const auto q = f.graph.addTask(
            ty, {StreamDesc::linear(Space::Dram, mid, 64)}, {out});
        f.graph.addBarrier(p, q);
        producers.push_back(p);
        consumers.push_back(q);
    }

    const spatial::SpatialPlan plan = f.map();
    ASSERT_EQ(plan.lane.size(), f.graph.numTasks());
    EXPECT_EQ(plan.forwardableEdges, 4u);
    EXPECT_EQ(plan.forwardableWords, 4u * 64u);
    EXPECT_GT(plan.candidatesTried, 0u);

    for (std::size_t c = 0; c < producers.size(); ++c) {
        ASSERT_GE(plan.lane[producers[c]], 0);
        ASSERT_LT(plan.lane[producers[c]], 8);
        EXPECT_EQ(plan.lane[producers[c]], plan.lane[consumers[c]])
            << "chain " << c << " split across lanes";
    }

    // Same inputs, same plan — the bit-identity guarantees hang off
    // this.
    const spatial::SpatialPlan again = f.map();
    EXPECT_EQ(again.lane, plan.lane);
    EXPECT_EQ(again.predictedMakespan, plan.predictedMakespan);
    EXPECT_EQ(again.predictedCritPath, plan.predictedCritPath);
    EXPECT_EQ(again.balanceWeight, plan.balanceWeight);
}

TEST(SpatialMapper, IndependentTasksSpreadAcrossLanes)
{
    MapperFixture f;
    const auto ty = addAddType(f.reg, "scale");
    for (int i = 0; i < 8; ++i) {
        WriteDesc out;
        out.base = 0x20000 + i * 0x1000;
        f.graph.addTask(
            ty,
            {StreamDesc::linear(Space::Dram, 0x1000 + i * 0x1000, 64)},
            {out});
    }
    const spatial::SpatialPlan plan = f.map();
    std::set<std::int32_t> used(plan.lane.begin(), plan.lane.end());
    // Equal independent tasks must not pile up: at least half the
    // lanes participate (the balance term guarantees it).
    EXPECT_GE(used.size(), 4u);
}

// --- end-to-end: SchedPolicy::Spatial -------------------------------------

StatSet
runSpatial(Wk wk, DeltaConfig cfg, bool* correct = nullptr)
{
    SuiteParams sp;
    sp.scale = 0.25;
    auto wl = makeWorkload(wk, sp);
    Delta delta(cfg);
    TaskGraph graph;
    wl->build(delta, graph);
    StatSet stats = delta.run(graph);
    if (correct != nullptr)
        *correct = wl->check(delta.image());
    return stats;
}

TEST(SpatialEndToEnd, EveryWorkloadStaysGoldenCorrect)
{
    for (const Wk w : allWorkloads()) {
        bool correct = false;
        const StatSet stats =
            runSpatial(w, DeltaConfig::spatial(8), &correct);
        EXPECT_TRUE(correct) << wkIdent(w);
        EXPECT_GT(stats.get("delta.cycles"), 0) << wkIdent(w);
        // The plan must cover the host-submitted graph.
        EXPECT_GT(stats.get("delta.spatial.groups") +
                      stats.get("delta.attrib.spatial.forwardableEdges"),
                  -1.0);
    }
}

TEST(SpatialEndToEnd, PipelineShapedWorkloadsSaveDramLines)
{
    for (const Wk w : {Wk::Join, Wk::Msort, Wk::Tricount}) {
        bool correct = false;
        const StatSet stats =
            runSpatial(w, DeltaConfig::spatial(8), &correct);
        EXPECT_TRUE(correct) << wkIdent(w);
        EXPECT_GT(stats.get("delta.attrib.spatial.dramLinesSaved"), 0)
            << wkIdent(w);
        EXPECT_EQ(stats.get("delta.spatial.spills"), 0) << wkIdent(w);
    }
}

TEST(SpatialEndToEnd, RepeatedRunsAreDeterministic)
{
    const StatSet a = runSpatial(Wk::Msort, DeltaConfig::spatial(8));
    const StatSet b = runSpatial(Wk::Msort, DeltaConfig::spatial(8));
    for (const char* key :
         {"delta.cycles", "delta.spatial.forwards",
          "delta.spatial.spills",
          "delta.attrib.spatial.dramLinesSaved",
          "delta.attrib.spatial.forwardHops",
          "delta.attrib.spatial.landingLines"}) {
        EXPECT_EQ(a.get(key), b.get(key)) << key;
    }
}

TEST(SpatialEndToEnd, UndersizedBudgetSpillsToDramButStaysCorrect)
{
    DeltaConfig cfg = DeltaConfig::spatial(8);
    cfg.spatialBufferWords = lineWords; // one line: almost nothing fits
    bool correct = false;
    const StatSet stats = runSpatial(Wk::Msort, cfg, &correct);
    EXPECT_TRUE(correct);
    EXPECT_GT(stats.get("delta.spatial.spills"), 0);
    // Spilled edges take the DRAM round-trip: fewer saved lines than
    // the roomy default, never a wrong answer.
    const StatSet roomy = runSpatial(Wk::Msort, DeltaConfig::spatial(8));
    EXPECT_LT(stats.get("delta.attrib.spatial.dramLinesSaved"),
              roomy.get("delta.attrib.spatial.dramLinesSaved"));
}

TEST(SpatialEndToEnd, SpawnedTasksInheritTheirSpawnersLane)
{
    // msort-dyn builds its subtrees via runtime spawns; spatial mode
    // must keep them pinned (no stealable tasks) and stay correct.
    bool correct = false;
    const StatSet stats =
        runSpatial(Wk::MsortDyn, DeltaConfig::spatial(8), &correct);
    EXPECT_TRUE(correct);
    EXPECT_GT(stats.get("delta.tasksSpawned"), 0);
    EXPECT_EQ(stats.getOr("delta.attrib.steal.tasksStolen", 0.0), 0.0);
}

} // namespace
} // namespace ts
