#include "sim/simulator.hh"

#include <chrono>
#include <sstream>

#include "sim/logging.hh"
#include "trace/trace.hh"

namespace ts
{

namespace
{

std::uint64_t
nsSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

} // namespace

void
Simulator::add(Ticked* t)
{
    TS_ASSERT(t != nullptr);
    TS_ASSERT(t->sim_ == nullptr,
              "component registered with two simulators: ", t->name());
    t->sim_ = this;
    t->simIndex_ = static_cast<std::uint32_t>(ticked_.size());
    ticked_.push_back(t);
    const std::uint32_t idx = t->simIndex_;
    if ((idx >> 6) >= active_.size()) {
        active_.push_back(0);
        pending_.push_back(0);
    }
    active_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    ++activeCount_;
}

void
Simulator::addChannel(ChannelBase* c)
{
    TS_ASSERT(c != nullptr);
    channels_.push_back(c);
    c->installHooks(&liveChannels_, &dirtyCh_);
}

void
Simulator::schedule(Tick delay, EventQueue::Callback cb, Ticked* owner)
{
    TS_ASSERT(delay >= 1, "events must be scheduled at least 1 cycle out");
    events_.schedule(now_ + delay, std::move(cb), owner);
}

void
Simulator::applySleep(Ticked* t)
{
    t->sleepPending_ = false;
    t->sleeping_ = true;
    const std::uint32_t idx = t->simIndex_;
    active_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    --activeCount_;
    if (t->sleepAt_ != kNoWakeTick) {
        // Clamp: sleeping until a past/current cycle means "tick
        // again next cycle", never re-entry into the current one.
        const Tick at = t->sleepAt_ > now_ + 1 ? t->sleepAt_ : now_ + 1;
        sleepHeap_.push(TimedWake{at, t->simIndex_});
    }
    if (!t->inBusyList_ && t->busy()) {
        t->inBusyList_ = true;
        sleepersBusy_.push_back(t->simIndex_);
    }
}

void
Simulator::wakeDueSleepers()
{
    while (!sleepHeap_.empty() && sleepHeap_.top().at <= now_) {
        const std::uint32_t idx = sleepHeap_.top().idx;
        sleepHeap_.pop();
        // Possibly stale (the sleeper was woken earlier or re-slept
        // with a different target); waking is spurious-safe.
        wake(ticked_[idx]);
    }
}

bool
Simulator::maybeQuiescent()
{
    if (!events_.empty() || liveChannels_ != 0)
        return false;
    for (std::size_t w = 0; w < active_.size(); ++w) {
        for (std::uint64_t bits = active_[w]; bits != 0;
             bits &= bits - 1) {
            const std::size_t idx =
                (w << 6) + std::countr_zero(bits);
            if (ticked_[idx]->busy())
                return false;
        }
    }
    // Re-sample the busy-sleeper list: a sleeper whose busy() dropped
    // (e.g. via an event) or that has since woken is compacted away.
    std::size_t w = 0;
    for (std::size_t r = 0; r < sleepersBusy_.size(); ++r) {
        Ticked* t = ticked_[sleepersBusy_[r]];
        if (t->sleeping_ && t->busy())
            sleepersBusy_[w++] = sleepersBusy_[r];
        else
            t->inBusyList_ = false;
    }
    sleepersBusy_.resize(w);
    if (w != 0)
        return false;
    TS_ASSERT(quiescent(),
              "incremental quiescence disagrees with the full scan");
    return true;
}

void
Simulator::doCycleFast()
{
    if (trace::on())
        trace::active()->setNow(now_);
    events_.fireUpTo(now_);

    pending_ = active_;
    walking_ = true;
    for (std::size_t w = 0; w < pending_.size(); ++w) {
        while (pending_[w] != 0) {
            const std::uint32_t idx = static_cast<std::uint32_t>(
                (w << 6) + std::countr_zero(pending_[w]));
            pending_[w] &= pending_[w] - 1;
            walkPos_ = idx;
            Ticked* t = ticked_[idx];
            t->sleepPending_ = false;
            t->tick(now_);
            ++ticksExecuted_;
            if (t->sleepPending_)
                applySleep(t);
        }
    }
    walking_ = false;

    for (ChannelBase* c : dirtyCh_) {
        c->commit();
        if (c->anyVisible()) {
            for (Ticked* o : c->observers())
                wake(o);
        }
    }
    dirtyCh_.clear();

    ++now_;
    ++cyclesExecuted_;
}

void
Simulator::doCycleNaive()
{
    if (trace::on())
        trace::active()->setNow(now_);
    events_.fireUpTo(now_);
    for (Ticked* t : ticked_)
        t->tick(now_);
    ticksExecuted_ += ticked_.size();
    for (ChannelBase* c : channels_)
        c->commit();
    dirtyCh_.clear();
    ++now_;
    ++cyclesExecuted_;
}

bool
Simulator::quiescent() const
{
    if (!events_.empty())
        return false;
    for (const ChannelBase* c : channels_) {
        if (!c->quiescent())
            return false;
    }
    for (const Ticked* t : ticked_) {
        if (t->busy())
            return false;
    }
    return true;
}

void
Simulator::catchUpAll()
{
    for (Ticked* t : ticked_)
        t->catchUp(now_);
}

Tick
Simulator::run(Tick maxCycles)
{
    const auto t0 = std::chrono::steady_clock::now();
    const Tick end =
        fastForward_ ? runFast(maxCycles) : runNaive(maxCycles);
    wallNs_ += nsSince(t0);
    return end;
}

Tick
Simulator::runFast(Tick maxCycles)
{
    const Tick start = now_;
    const Tick limit = start + maxCycles;
    for (;;) {
        wakeDueSleepers();
        if (activeCount_ == 0) {
            if (maybeQuiescent()) {
                catchUpAll();
                return now_;
            }
            // Idle fast-forward: nothing ticks until the next event
            // or timed wake; every skipped cycle is a no-op.
            Tick target = kNoWakeTick;
            if (!events_.empty())
                target = events_.nextTick();
            if (!sleepHeap_.empty() && sleepHeap_.top().at < target)
                target = sleepHeap_.top().at;
            if (target == kNoWakeTick) {
                // Not quiescent, yet nothing can ever wake: a missed
                // wake (component porting bug) or an unconsumed
                // channel value.  Diagnose loudly.
                deadlockFatal(maxCycles, /*overrun=*/false);
            }
            if (target > now_) {
                const Tick to = target < limit ? target : limit;
                cyclesFastForwarded_ += to - now_;
                now_ = to;
                if (to == target)
                    continue; // wake the due sleepers at `to`
            }
        } else if (maybeQuiescent()) {
            catchUpAll();
            return now_;
        }
        if (now_ - start >= maxCycles) {
            // Overrun: reuse the incremental liveness state for the
            // final check instead of a second full scan.
            if (maybeQuiescent()) {
                catchUpAll();
                return now_;
            }
            deadlockFatal(maxCycles, /*overrun=*/true);
        }
        doCycleFast();
    }
}

Tick
Simulator::runNaive(Tick maxCycles)
{
    const Tick start = now_;
    while (now_ - start < maxCycles) {
        if (quiescent()) {
            catchUpAll();
            return now_;
        }
        doCycleNaive();
    }
    if (quiescent()) {
        catchUpAll();
        return now_;
    }
    deadlockFatal(maxCycles, /*overrun=*/true);
}

void
Simulator::deadlockFatal(Tick maxCycles, bool overrun)
{
    std::ostringstream os;
    if (overrun)
        os << "simulation did not quiesce within " << maxCycles
           << " cycles; still live:";
    else
        os << "simulation deadlocked at cycle " << now_
           << ": no component active and no event or timed wake "
              "pending; still live:";
    if (!events_.empty())
        os << " [" << events_.size() << " events]";
    for (const ChannelBase* c : channels_) {
        if (!c->quiescent())
            os << " channel:" << c->name();
    }
    for (const Ticked* t : ticked_) {
        if (t->busy())
            os << " busy:" << t->name();
    }
    fatal(os.str());
}

void
Simulator::step(Tick cycles)
{
    const auto t0 = std::chrono::steady_clock::now();
    if (!fastForward_) {
        for (Tick i = 0; i < cycles; ++i)
            doCycleNaive();
    } else {
        const Tick end = now_ + cycles;
        while (now_ < end) {
            wakeDueSleepers();
            if (activeCount_ == 0) {
                Tick target = end;
                if (!events_.empty() && events_.nextTick() < target)
                    target = events_.nextTick();
                if (!sleepHeap_.empty() &&
                    sleepHeap_.top().at < target)
                    target = sleepHeap_.top().at;
                if (target > now_) {
                    cyclesFastForwarded_ += target - now_;
                    now_ = target;
                    continue;
                }
            }
            doCycleFast();
        }
    }
    catchUpAll();
    wallNs_ += nsSince(t0);
}

void
Simulator::reportStats(StatSet& stats) const
{
    for (const Ticked* t : ticked_)
        t->reportStats(stats);
    stats.set("sim.cycles", static_cast<double>(now_));
    stats.set("sim.host.wallNs", static_cast<double>(wallNs_));
    stats.set("sim.host.ticksExecuted",
              static_cast<double>(ticksExecuted_));
    stats.set("sim.host.cyclesFastForwarded",
              static_cast<double>(cyclesFastForwarded_));
    stats.set("sim.host.avgActiveComponents",
              cyclesExecuted_ == 0
                  ? 0.0
                  : static_cast<double>(ticksExecuted_) /
                        static_cast<double>(cyclesExecuted_));
}

} // namespace ts
