#include "accel/lane.hh"

#include <algorithm>

#include "mem/request.hh"
#include "sim/logging.hh"
#include "trace/trace.hh"

namespace ts
{

Lane::Lane(Simulator& sim, Noc& noc, MemImage& img,
           const TaskTypeRegistry& registry, std::uint32_t laneIndex,
           std::uint32_t selfNode, std::uint32_t dispatcherNode,
           std::uint32_t memNode, const LaneConfig& cfg,
           const std::vector<std::uint32_t>& laneNodes)
    : Ticked("lane" + std::to_string(laneIndex)), noc_(noc),
      selfNode_(selfNode), memNode_(memNode), cfg_(cfg)
{
    const std::string prefix = name();

    fabric_ = std::make_unique<Fabric>(prefix + ".fabric", cfg.fabric);
    spm_ = std::make_unique<Scratchpad>(prefix + ".spm", cfg.spm);
    landing_ = std::make_unique<SharedLanding>(img, *spm_);

    for (std::uint32_t i = 0; i < cfg.numReadEngines; ++i) {
        readEngines_.push_back(std::make_unique<ReadEngine>(
            prefix + ".rd" + std::to_string(i), img, spm_.get(), this,
            &pipes_, cfg.read));
    }
    for (std::uint32_t i = 0; i < cfg.numWriteEngines; ++i) {
        writeEngines_.push_back(std::make_unique<WriteEngine>(
            prefix + ".wr" + std::to_string(i), img, spm_.get(), this,
            this, cfg.write));
    }

    TaskUnitPorts ports;
    ports.fabric = fabric_.get();
    for (auto& re : readEngines_)
        ports.readEngines.push_back(re.get());
    for (auto& we : writeEngines_)
        ports.writeEngines.push_back(we.get());
    ports.pipes = &pipes_;
    ports.landing = landing_.get();
    ports.spatialLanding = &spatialLanding_;
    ports.memPort = this;
    ports.image = &img;
    ports.send = [this](Packet pkt) { return noc_.inject(pkt); };
    ports.selfNode = selfNode;
    ports.dispatcherNode = dispatcherNode;
    ports.laneIndex = laneIndex;
    ports.steal = cfg.steal;
    if (cfg.steal != StealPolicy::None) {
        // Locality-aware victim order: nearest peers first by NoC hop
        // distance, lane index breaking ties (deterministic).
        for (std::uint32_t j = 0;
             j < static_cast<std::uint32_t>(laneNodes.size()); ++j) {
            if (j != laneIndex)
                ports.victims.emplace_back(j, laneNodes[j]);
        }
        std::stable_sort(
            ports.victims.begin(), ports.victims.end(),
            [&](const auto& a, const auto& b) {
                return noc.hopDistance(selfNode, a.second) <
                       noc.hopDistance(selfNode, b.second);
            });
    }
    taskUnit_ = std::make_unique<TaskUnit>(prefix + ".tu", registry,
                                           std::move(ports));

    // Registration order fixes intra-cycle evaluation order: the
    // adapter (this) demuxes arrivals first, then the task unit makes
    // control decisions, then the engines and fabric move data.
    sim.add(this);
    sim.add(taskUnit_.get());
    sim.add(spm_.get());
    for (auto& re : readEngines_)
        sim.add(re.get());
    for (auto& we : writeEngines_)
        sim.add(we.get());
    sim.add(fabric_.get());

    // The adapter sleeps on an empty ejection queue; arrivals wake it.
    noc_.eject(selfNode_).addObserver(this);
}

bool
Lane::requestLine(Addr lineAddr, std::function<void()> onData)
{
    if (inflight_.size() >= cfg_.maxOutstandingLines)
        return false;
    MemReq req;
    req.lineAddr = lineAddr;
    req.write = false;
    req.srcNode = selfNode_;
    req.tag = nextTag_;

    Packet pkt;
    pkt.src = selfNode_;
    pkt.dstMask = Packet::unicast(memNode_);
    pkt.kind = PktKind::MemReq;
    pkt.sizeWords = 1;
    pkt.payload = req;
    if (!noc_.inject(std::move(pkt)))
        return false;
    inflight_.emplace(nextTag_, std::move(onData));
    ++nextTag_;
    ++lineReads_;
    if (trace::on()) {
        trace::active()->counter(
            (name() + ".mshr").c_str(), "inflight",
            static_cast<double>(inflight_.size()));
    }
    return true;
}

bool
Lane::writeLine(Addr lineAddr)
{
    MemReq req;
    req.lineAddr = lineAddr;
    req.write = true;
    req.srcNode = selfNode_;

    Packet pkt;
    pkt.src = selfNode_;
    pkt.dstMask = Packet::unicast(memNode_);
    pkt.kind = PktKind::MemReq;
    pkt.sizeWords = 1 + lineWords; // command + line payload
    pkt.payload = req;
    if (!noc_.inject(std::move(pkt)))
        return false;
    ++lineWrites_;
    return true;
}

bool
Lane::sendChunk(std::uint64_t dstMask, std::uint64_t pipeId,
                const std::vector<Token>& toks)
{
    Packet pkt;
    pkt.src = selfNode_;
    pkt.dstMask = dstMask;
    pkt.kind = PktKind::PipeChunk;
    pkt.sizeWords = static_cast<std::uint32_t>(toks.size());
    pkt.payload = PipeChunkMsg{pipeId, toks};
    if (!noc_.inject(std::move(pkt)))
        return false;
    ++chunksSent_;
    return true;
}

bool
Lane::sendSpatial(std::uint32_t dstNode, std::uint64_t group,
                  std::uint32_t words, bool done)
{
    // Timing-only: the functional words already hit the global image.
    // One header word plus the payload words crosses the mesh; the
    // receiving lane does the attribution accounting.
    Packet pkt;
    pkt.src = selfNode_;
    pkt.dstMask = Packet::unicast(dstNode);
    pkt.kind = PktKind::SpatialChunk;
    pkt.sizeWords = words + 1;
    pkt.payload = SpatialChunkMsg{group, words, done};
    return noc_.inject(std::move(pkt));
}

void
Lane::tick(Tick)
{
    auto& inbox = noc_.eject(selfNode_);
    std::uint32_t budget = 8;
    while (budget > 0 && !inbox.empty()) {
        Packet pkt = inbox.pop();
        --budget;
        switch (pkt.kind) {
          case PktKind::MemResp: {
            const auto resp = std::any_cast<MemResp>(pkt.payload);
            if (isSharedFillTag(resp.tag)) {
                landing_->fill(sharedFillGroup(resp.tag),
                               resp.lineAddr);
                break;
            }
            auto it = inflight_.find(resp.tag);
            TS_ASSERT(it != inflight_.end(),
                      name(), ": response for unknown tag ", resp.tag);
            auto cb = std::move(it->second);
            inflight_.erase(it);
            if (trace::on()) {
                trace::active()->counter(
                    (name() + ".mshr").c_str(), "inflight",
                    static_cast<double>(inflight_.size()));
            }
            cb();
            break;
          }
          case PktKind::TaskDispatch:
            taskUnit_->deliver(
                std::any_cast<DispatchMsg>(std::move(pkt.payload)));
            break;
          case PktKind::SharedFill:
            landing_->setup(std::any_cast<GroupSetupMsg>(pkt.payload));
            break;
          case PktKind::PipeChunk: {
            const auto msg =
                std::any_cast<PipeChunkMsg>(std::move(pkt.payload));
            pipes_.deliver(msg.pipeId, msg.toks);
            break;
          }
          case PktKind::SpatialChunk: {
            const auto msg =
                std::any_cast<SpatialChunkMsg>(pkt.payload);
            spatialLanding_.deliver(msg.group, msg.words, msg.done);
            spatialHopWords_ +=
                static_cast<std::uint64_t>(
                    noc_.hopDistance(pkt.src, selfNode_)) *
                pkt.sizeWords;
            taskUnit_->requestWake(); // a WaitFill gate may clear
            break;
          }
          case PktKind::StealRequest:
            taskUnit_->onStealRequest(
                std::any_cast<StealRequestMsg>(pkt.payload));
            break;
          case PktKind::StealGrant:
            taskUnit_->onStealGrant(
                std::any_cast<StealGrantMsg>(std::move(pkt.payload)));
            break;
          case PktKind::StealDeny:
            taskUnit_->onStealDeny(
                std::any_cast<StealDenyMsg>(pkt.payload));
            break;
          default:
            panic(name(), ": unexpected packet kind");
        }
    }
    // Nothing to demux until the ejection channel commits again; a
    // leftover backlog (budget exhausted) keeps the adapter ticking.
    if (inbox.empty())
        sleepOnWake();
}

std::uint64_t
Lane::spatialLinesSuppressed() const
{
    std::uint64_t n = taskUnit_->spatialLinesSuppressed();
    for (const auto& we : writeEngines_)
        n += we->linesSuppressed();
    return n;
}

std::uint64_t
Lane::spatialLandingLines() const
{
    std::uint64_t n = 0;
    for (const auto& re : readEngines_)
        n += re->landingLinesAvoided();
    return n;
}

std::uint64_t
Lane::spatialChunksSent() const
{
    std::uint64_t n = taskUnit_->spatialChunksSent();
    for (const auto& we : writeEngines_)
        n += we->spatialChunksSent();
    return n;
}

bool
Lane::busy() const
{
    // In-flight memory requests are visible through the memory model
    // and NoC channels; the adapter itself holds no latent work.
    return false;
}

void
Lane::reportStats(StatSet& stats) const
{
    stats.set(name() + ".lineReads", static_cast<double>(lineReads_));
    stats.set(name() + ".lineWrites", static_cast<double>(lineWrites_));
    stats.set(name() + ".chunksSent", static_cast<double>(chunksSent_));
    pipes_.reportStats(stats, name());
    stats.set(name() + ".fillLinesLanded",
              static_cast<double>(landing_->linesLanded()));
    if (spatialLanding_.chunksReceived() > 0) {
        stats.set(name() + ".spatialChunksRecv",
                  static_cast<double>(spatialLanding_.chunksReceived()));
        stats.set(name() + ".spatialWordsRecv",
                  static_cast<double>(spatialLanding_.wordsReceived()));
    }
}

std::unique_ptr<ComponentSnap>
Lane::saveState() const
{
    auto s = std::make_unique<Snap>();
    s->pipes = pipes_;
    s->landing = landing_->saveLandingState();
    s->spatialLanding = spatialLanding_;
    s->spatialHopWords = spatialHopWords_;
    s->nextTag = nextTag_;
    s->inflight = inflight_;
    s->lineReads = lineReads_;
    s->lineWrites = lineWrites_;
    s->chunksSent = chunksSent_;
    return s;
}

void
Lane::restoreState(const ComponentSnap& snap)
{
    const Snap& s = snapCast<Snap>(snap);
    pipes_ = s.pipes;
    landing_->restoreLandingState(s.landing);
    spatialLanding_ = s.spatialLanding;
    spatialHopWords_ = s.spatialHopWords;
    nextTag_ = s.nextTag;
    inflight_ = s.inflight;
    lineReads_ = s.lineReads;
    lineWrites_ = s.lineWrites;
    chunksSent_ = s.chunksSent;
}

} // namespace ts
