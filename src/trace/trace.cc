#include "trace/trace.hh"

#include "sim/logging.hh"

namespace ts
{

namespace trace
{

namespace detail
{
thread_local Tracer* gActive = nullptr;
} // namespace detail

namespace
{

/** Escape a string for inclusion in a JSON string literal. */
std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

Tracer::Tracer(TracerConfig cfg) : cfg_(std::move(cfg))
{
    if (!cfg_.enabled)
        return;
    out_.open(cfg_.path, std::ios::out | std::ios::trunc);
    if (!out_) {
        warn("trace: cannot open '", cfg_.path, "'; tracing disabled");
        return;
    }
    enabled_ = true;
    buf_.reserve(1u << 16);
    header();
}

Tracer::~Tracer()
{
    finish();
    if (detail::gActive == this)
        detail::gActive = nullptr;
}

void
Tracer::setActive(Tracer* t)
{
    detail::gActive = (t != nullptr && t->enabled()) ? t : nullptr;
}

void
Tracer::header()
{
    buf_ += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    // Process metadata: one simulated accelerator = one "process".
    buf_ += "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\","
            "\"args\":{\"name\":\"" +
            jsonEscape(cfg_.processName) + "\"}}";
    ++events_;
}

TrackId
Tracer::track(const std::string& name)
{
    auto it = tracks_.find(name);
    if (it != tracks_.end())
        return it->second;
    const TrackId tid = nextTrack_++;
    tracks_.emplace(name, tid);
    if (enabled_ && !finished_) {
        buf_ += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" +
                std::to_string(tid) +
                ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
                jsonEscape(name) + "\"}}";
        buf_ += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" +
                std::to_string(tid) +
                ",\"name\":\"thread_sort_index\",\"args\":"
                "{\"sort_index\":" +
                std::to_string(tid) + "}}";
        events_ += 2;
        maybeFlush();
    }
    return tid;
}

void
Tracer::emitPrefix(char ph, Tick ts, TrackId tid)
{
    buf_ += ",\n{\"ph\":\"";
    buf_ += ph;
    buf_ += "\",\"ts\":" + std::to_string(ts) +
            ",\"pid\":1,\"tid\":" + std::to_string(tid);
}

void
Tracer::begin(TrackId tid, const char* name, std::string args)
{
    if (!enabled_ || finished_)
        return;
    emitPrefix('B', now_, tid);
    buf_ += ",\"name\":\"";
    buf_ += name;
    buf_ += '"';
    if (!args.empty())
        buf_ += ",\"args\":{" + args + "}";
    buf_ += '}';
    ++events_;
    maybeFlush();
}

void
Tracer::end(TrackId tid)
{
    if (!enabled_ || finished_)
        return;
    emitPrefix('E', now_, tid);
    buf_ += '}';
    ++events_;
    maybeFlush();
}

void
Tracer::complete(TrackId tid, Tick start, Tick dur, const char* name,
                 std::string args)
{
    if (!enabled_ || finished_)
        return;
    emitPrefix('X', start, tid);
    buf_ += ",\"dur\":" + std::to_string(dur) + ",\"name\":\"";
    buf_ += name;
    buf_ += '"';
    if (!args.empty())
        buf_ += ",\"args\":{" + args + "}";
    buf_ += '}';
    ++events_;
    maybeFlush();
}

void
Tracer::instant(TrackId tid, const char* name, std::string args)
{
    if (!enabled_ || finished_)
        return;
    emitPrefix('i', now_, tid);
    buf_ += ",\"s\":\"t\",\"name\":\"";
    buf_ += name;
    buf_ += '"';
    if (!args.empty())
        buf_ += ",\"args\":{" + args + "}";
    buf_ += '}';
    ++events_;
    maybeFlush();
}

void
Tracer::counter(const char* name, const char* series, double value)
{
    if (!enabled_ || finished_)
        return;
    emitPrefix('C', now_, 0);
    buf_ += ",\"name\":\"";
    buf_ += name;
    buf_ += "\",\"args\":{\"";
    buf_ += series;
    buf_ += "\":";
    // Counters are almost always integral; print them tersely.
    if (value == static_cast<double>(static_cast<std::int64_t>(value)))
        buf_ += std::to_string(static_cast<std::int64_t>(value));
    else
        buf_ += std::to_string(value);
    buf_ += "}}";
    ++events_;
    maybeFlush();
}

void
Tracer::maybeFlush()
{
    if (buf_.size() >= (1u << 16)) {
        out_ << buf_;
        buf_.clear();
    }
}

void
Tracer::finish()
{
    if (!enabled_ || finished_)
        return;
    finished_ = true;
    buf_ += "\n]}\n";
    out_ << buf_;
    buf_.clear();
    out_.flush();
    out_.close();
}

} // namespace trace

} // namespace ts
