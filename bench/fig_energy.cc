/**
 * @file
 * Fig-8 (extension): modeled energy, Delta vs static-parallel.
 *
 * The abstract's headline is performance, but structure recovery is
 * also an energy story: multicast removes DRAM fetches (the dominant
 * per-event cost) and pipelining removes memory round trips.  This
 * figure breaks modeled energy down by component for both designs.
 */

#include <benchmark/benchmark.h>

#include <map>

#include "accel/energy_model.hh"
#include "bench_util.hh"

namespace
{

using namespace ts;
using namespace ts::bench;

std::map<Wk, std::pair<EnergyReport, EnergyReport>> gRows;

void
runWorkload(benchmark::State& state, Wk w)
{
    const SuiteParams sp = suiteParams();
    for (auto _ : state) {
        const RunResult st =
            runOnce(w, DeltaConfig::staticBaseline(8), sp);
        const RunResult dy = runOnce(w, DeltaConfig::delta(8), sp);
        if (!st.correct || !dy.correct)
            state.SkipWithError("incorrect result");
        gRows[w] = {computeEnergy(st.stats, 8),
                    computeEnergy(dy.stats, 8)};
        state.counters["energy_ratio"] =
            gRows[w].first.totalNanojoules() /
            gRows[w].second.totalNanojoules();
    }
}

void
printTable()
{
    std::puts("");
    std::puts("Fig-8  Modeled energy (uJ), static vs Delta, 8 lanes");
    rule(78);
    std::printf("%-10s %12s %12s %8s   %s\n", "workload", "static(uJ)",
                "delta(uJ)", "ratio", "largest static component");
    rule(78);
    std::vector<double> ratios;
    for (const Wk w : suiteWorkloads()) {
        if (gRows.count(w) == 0)
            continue; // filtered out by --benchmark_filter
        const auto& [st, dy] = gRows.at(w);
        const EnergyEntry* biggest = &st.entries.front();
        for (const auto& e : st.entries) {
            if (e.nanojoules > biggest->nanojoules)
                biggest = &e;
        }
        const double ratio =
            st.totalNanojoules() / dy.totalNanojoules();
        ratios.push_back(ratio);
        std::printf("%-10s %12.1f %12.1f %7.2fx   %s\n", wkName(w),
                    st.totalNanojoules() / 1000.0,
                    dy.totalNanojoules() / 1000.0, ratio,
                    biggest->name.c_str());
    }
    rule(78);
    std::printf("%-10s %12s %12s %7.2fx\n", "geomean", "", "",
                geomean(ratios));
    std::puts("expected shape: energy savings track the DRAM-traffic "
              "savings (Fig-5) plus shorter runtime (less static "
              "energy)");
}

} // namespace

int
main(int argc, char** argv)
{
    for (const Wk w : suiteWorkloads()) {
        benchmark::RegisterBenchmark(
            (std::string("fig8/") + wkName(w)).c_str(),
            [w](benchmark::State& s) { runWorkload(s, w); })
            ->Iterations(1);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable();
    return 0;
}
