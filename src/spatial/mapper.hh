/**
 * @file
 * The ahead-of-time spatial task-graph mapper.
 *
 * Given a fully-known task graph, estimated per-task work, and the
 * mesh geometry, produce a lane assignment that co-locates
 * producer/consumer chains (hop-distance-weighted affinity) while
 * keeping lane loads balanced.  The mapper tries a small deterministic
 * family of balance weights, evaluates each placement with a
 * communication-aware list schedule, scores it with the graph's own
 * `criticalPath` machinery over comm-inflated spans, and keeps the
 * best.  Everything is integer/ordered arithmetic over a fixed
 * candidate list: the same graph and geometry always yield the same
 * plan, which is what makes spatial runs bit-identical across host
 * parallelism, sharding, and snapshot/fork.
 */

#ifndef TS_SPATIAL_MAPPER_HH
#define TS_SPATIAL_MAPPER_HH

#include <vector>

#include "sim/types.hh"

namespace ts
{

class TaskGraph;
class MemImage;
class TaskTypeRegistry;
class Noc;

namespace spatial
{

/** The mapper's output: a static lane per task plus plan metadata. */
struct SpatialPlan
{
    /** Planned lane per task uid (-1: unmapped, dispatcher falls
     *  back to round-robin). */
    std::vector<std::int32_t> lane;

    /** Predicted makespan of the winning placement's list schedule. */
    Tick predictedMakespan = 0;

    /** Critical path of the winning placement's comm-inflated spans
     *  (the cost-model side of the score). */
    Tick predictedCritPath = 0;

    /** Balance weight of the winning candidate. */
    double balanceWeight = 0.0;

    /** Placement candidates evaluated. */
    std::uint32_t candidatesTried = 0;

    /** Graph edges whose producer output can stream lane-to-lane. */
    std::uint64_t forwardableEdges = 0;

    /** Words those edges would move (per-edge landing-buffer sizing
     *  input; the dispatcher re-derives exact sizes per port). */
    std::uint64_t forwardableWords = 0;
};

/**
 * Map @p g onto the lanes whose NoC nodes are @p laneNodes.
 * @p linkWords is the mesh link width (words/cycle), used to convert
 * cross-lane edge words into modeled transfer cycles.  Deterministic
 * for fixed inputs.
 */
SpatialPlan mapTaskGraph(const TaskGraph& g, const MemImage& img,
                         const TaskTypeRegistry& reg, const Noc& noc,
                         const std::vector<std::uint32_t>& laneNodes,
                         std::uint32_t linkWords);

} // namespace spatial
} // namespace ts

#endif // TS_SPATIAL_MAPPER_HH
