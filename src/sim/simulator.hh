/**
 * @file
 * The cycle-driven simulation core.
 *
 * A Simulator owns a set of Ticked components and Channels.  Each
 * simulated cycle proceeds in three phases:
 *
 *   1. fire all events scheduled for this cycle,
 *   2. tick every component (order-independent thanks to channels'
 *      next-cycle visibility),
 *   3. commit every channel.
 *
 * Simulation ends when the system is quiescent: no pending events, no
 * in-flight channel values, and no component reporting busy().
 * Components must not create work spontaneously; all activity
 * descends from initial state or events.
 */

#ifndef TS_SIM_SIMULATOR_HH
#define TS_SIM_SIMULATOR_HH

#include <memory>
#include <string>
#include <vector>

#include "sim/channel.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ts
{

/** Base class for every cycle-stepped hardware model. */
class Ticked
{
  public:
    explicit Ticked(std::string name) : name_(std::move(name)) {}
    virtual ~Ticked() = default;

    Ticked(const Ticked&) = delete;
    Ticked& operator=(const Ticked&) = delete;

    /** Advance one cycle. */
    virtual void tick(Tick now) = 0;

    /**
     * Whether the component holds pending internal work.  Used only
     * for quiescence detection; a component waiting on a channel that
     * is itself non-quiescent may report false.
     */
    virtual bool busy() const = 0;

    /** Contribute counters to the global statistics dump. */
    virtual void reportStats(StatSet&) const {}

    /** Diagnostic name. */
    const std::string& name() const { return name_; }

  private:
    std::string name_;
};

/** Owns components and channels and advances simulated time. */
class Simulator
{
  public:
    /** Register a component (not owned). */
    void add(Ticked* t);

    /** Register an externally owned channel. */
    void addChannel(ChannelBase* c);

    /** Create and own a channel, registering it automatically. */
    template <typename T>
    Channel<T>&
    makeChannel(const std::string& name, std::size_t capacity)
    {
        auto ch = std::make_unique<Channel<T>>(name, capacity);
        Channel<T>& ref = *ch;
        owned_.push_back(std::move(ch));
        channels_.push_back(&ref);
        return ref;
    }

    /** Schedule a callback @p delay cycles from now (delay >= 1). */
    void schedule(Tick delay, EventQueue::Callback cb);

    /** Current cycle. */
    Tick now() const { return now_; }

    /**
     * Run until quiescent.
     *
     * @param maxCycles upper bound; exceeding it raises fatal() with
     *        a deadlock diagnosis.
     * @return the cycle count at quiescence.
     */
    Tick run(Tick maxCycles);

    /** Run exactly @p cycles (no quiescence check). */
    void step(Tick cycles = 1);

    /** True when nothing can happen on any future cycle. */
    bool quiescent() const;

    /** Gather statistics from every registered component. */
    void reportStats(StatSet& stats) const;

  private:
    void doCycle();

    Tick now_ = 0;
    std::vector<Ticked*> ticked_;
    std::vector<ChannelBase*> channels_;
    std::vector<std::unique_ptr<ChannelBase>> owned_;
    EventQueue events_;
};

} // namespace ts

#endif // TS_SIM_SIMULATOR_HH
