/**
 * @file
 * Common interface for the task-parallel workload suite.
 *
 * Each workload knows how to (1) lay out and initialize its data in a
 * Delta's memory image, (2) register its task types, (3) emit its
 * annotated task graph, and (4) verify the accelerator's results
 * against a host golden model.  The same build runs unchanged on
 * Delta and on the static-parallel baseline.
 */

#ifndef TS_WORKLOADS_WORKLOAD_HH
#define TS_WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>

#include "accel/delta.hh"

namespace ts
{

/** Scaling/seed knobs shared by the whole suite. */
struct SuiteParams
{
    std::uint64_t seed = 7;
    double scale = 1.0; ///< problem-size multiplier (~linear in work)
};

/** One benchmark workload. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short identifier (e.g. "spmv"). */
    virtual std::string name() const = 0;

    /** Allocate/initialize data, register types, emit the graph. */
    virtual void build(Delta& delta, TaskGraph& graph) = 0;

    /** Verify accelerator output against the golden model. */
    virtual bool check(const MemImage& img) const = 0;
};

/** Workload identifiers, in canonical report order. */
enum class Wk
{
    Spmv,
    Join,
    Msort,
    MsortDyn,
    Cholesky,
    Lu,
    Tricount,
    Centroid,
};

/** All workloads in canonical order. */
const std::vector<Wk>& allWorkloads();

/** Canonical short name. */
const char* wkName(Wk w);

/** Canonical name with '-' replaced by '_': identifier-safe (gtest
 *  parameterized-test names, symbol-like contexts). */
std::string wkIdent(Wk w);

/** Parse a canonical short name; fatal() on an unknown name with a
 *  message listing every valid workload name. */
Wk wkFromName(const std::string& name);

/**
 * Parse a comma-separated list of workload names (whitespace around
 * entries is ignored).  Empty or "all" selects the whole suite; any
 * unknown name is fatal() with the valid names listed.
 */
std::vector<Wk> workloadsFromList(const std::string& list);

/** Instantiate a workload. */
std::unique_ptr<Workload> makeWorkload(Wk w, const SuiteParams& params);

} // namespace ts

#endif // TS_WORKLOADS_WORKLOAD_HH
