/**
 * @file
 * Per-lane scratchpad memory.
 *
 * Backs multicast-landed shared data and lane-private staging.  The
 * scratchpad is accessed by co-located engines in the same cycle via
 * a per-cycle port budget (tryAccess); data is lane-local and
 * functional storage lives inside the component.
 */

#ifndef TS_MEM_SCRATCHPAD_HH
#define TS_MEM_SCRATCHPAD_HH

#include <cstdint>
#include <vector>

#include "sim/simulator.hh"
#include "sim/types.hh"

namespace ts
{

/** Configuration for a lane scratchpad. */
struct ScratchpadConfig
{
    std::size_t sizeWords = 1u << 16;  ///< capacity (64 KiB words = 512 KiB)
    std::uint32_t portsPerCycle = 4;   ///< word accesses per cycle
};

/** Banked lane-local scratchpad with a per-cycle port budget. */
class Scratchpad : public Ticked
{
  public:
    Scratchpad(std::string name, const ScratchpadConfig& cfg);

    // Purely caller-driven (tryAccess keys its port budget on `now`),
    // so the scratchpad sleeps permanently after its first tick.
    void tick(Tick) override { sleepOnWake(); }
    bool busy() const override { return false; }
    void reportStats(StatSet& stats) const override;

    /**
     * Claim one access port for the current cycle.
     * @return false when all ports are already claimed this cycle.
     */
    bool tryAccess(Tick now);

    /** Functional word read at a word offset. */
    Word read(std::size_t wordOffset) const;

    /** Functional word write at a word offset. */
    void write(std::size_t wordOffset, Word value);

    /** Capacity in words. */
    std::size_t sizeWords() const { return data_.size(); }

    /**
     * Bump-allocate @p words words of scratchpad space; fatal on
     * exhaustion.  reset() recycles the whole allocation (between
     * tasks / shared-group lifetimes the accelerator manages space
     * explicitly).
     */
    std::size_t alloc(std::size_t words);

    /** Release all allocations (data is retained until overwritten). */
    void resetAlloc() { brk_ = 0; }

    /** Words currently allocated. */
    std::size_t allocated() const { return brk_; }

    std::unique_ptr<ComponentSnap> saveState() const override;
    void restoreState(const ComponentSnap& snap) override;

  private:
    struct Snap final : ComponentSnap
    {
        std::vector<Word> data;
        std::size_t brk = 0;
        Tick budgetCycle = ~Tick(0);
        std::uint32_t budgetLeft = 0;
        std::uint64_t accesses = 0;
        std::uint64_t portStalls = 0;
    };

    ScratchpadConfig cfg_;
    std::vector<Word> data_;
    std::size_t brk_ = 0;

    Tick budgetCycle_ = ~Tick(0);
    std::uint32_t budgetLeft_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t portStalls_ = 0;
};

} // namespace ts

#endif // TS_MEM_SCRATCHPAD_HH
