file(REMOVE_RECURSE
  "CMakeFiles/fig_grain.dir/fig_grain.cc.o"
  "CMakeFiles/fig_grain.dir/fig_grain.cc.o.d"
  "fig_grain"
  "fig_grain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_grain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
