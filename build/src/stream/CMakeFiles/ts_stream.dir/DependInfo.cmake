
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/fetcher.cc" "src/stream/CMakeFiles/ts_stream.dir/fetcher.cc.o" "gcc" "src/stream/CMakeFiles/ts_stream.dir/fetcher.cc.o.d"
  "/root/repo/src/stream/pipe_set.cc" "src/stream/CMakeFiles/ts_stream.dir/pipe_set.cc.o" "gcc" "src/stream/CMakeFiles/ts_stream.dir/pipe_set.cc.o.d"
  "/root/repo/src/stream/read_engine.cc" "src/stream/CMakeFiles/ts_stream.dir/read_engine.cc.o" "gcc" "src/stream/CMakeFiles/ts_stream.dir/read_engine.cc.o.d"
  "/root/repo/src/stream/stream_desc.cc" "src/stream/CMakeFiles/ts_stream.dir/stream_desc.cc.o" "gcc" "src/stream/CMakeFiles/ts_stream.dir/stream_desc.cc.o.d"
  "/root/repo/src/stream/write_engine.cc" "src/stream/CMakeFiles/ts_stream.dir/write_engine.cc.o" "gcc" "src/stream/CMakeFiles/ts_stream.dir/write_engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ts_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/ts_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/cgra/CMakeFiles/ts_cgra.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
