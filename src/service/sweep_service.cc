#include "service/sweep_service.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "analysis/json.hh"
#include "driver/grid.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace ts
{
namespace service
{

namespace
{

/** Fill @p addr for @p path (fatal when it does not fit sun_path). */
sockaddr_un
unixAddr(const std::string& path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        fatal("socket path too long (", path.size(), " bytes, max ",
              sizeof(addr.sun_path) - 1, "): '", path, "'");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return addr;
}

/** Send `line + "\n"` fully; false once the peer is gone.  Uses
 *  MSG_NOSIGNAL so a vanished client surfaces as an error return
 *  instead of SIGPIPE. */
bool
writeLine(int fd, const std::string& line)
{
    std::string out = line;
    out += '\n';
    std::size_t sent = 0;
    while (sent < out.size()) {
        const ssize_t n = ::send(fd, out.data() + sent,
                                 out.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            return false;
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

/** Incremental '\n'-delimited reads from a stream socket. */
class LineReader
{
  public:
    explicit LineReader(int fd) : fd_(fd) {}

    /** Next full line (without the newline); false on EOF/error. */
    bool
    next(std::string& line)
    {
        for (;;) {
            const std::size_t nl = buf_.find('\n');
            if (nl != std::string::npos) {
                line = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                return true;
            }
            char tmp[4096];
            const ssize_t n = ::recv(fd_, tmp, sizeof(tmp), 0);
            if (n <= 0)
                return false;
            buf_.append(tmp, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_;
    std::string buf_;
};

/** Closes an fd on scope exit. */
struct FdGuard
{
    int fd = -1;
    ~FdGuard()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

std::string
errorEvent(const std::string& message)
{
    return "{\"event\": \"error\", \"message\": \"" +
           jsonEscape(message) + "\"}";
}

/** The `{"ok": true, "proto": N}` acknowledgement. */
std::string
okReply()
{
    return "{\"ok\": true, \"proto\": " +
           std::to_string(kProtoVersion) + "}";
}

/**
 * Protocol version a daemon reply claims: the "proto" field, or 1
 * for the original unversioned daemon.
 */
int
observedProto(const analysis::Json& reply)
{
    if (reply.isObj() && reply.has("proto") &&
        reply.at("proto").isNum())
        return static_cast<int>(reply.at("proto").num);
    return 1;
}

/**
 * Client-side version gate: false (after a loud stderr warning
 * naming observed vs expected) when the daemon speaks a different
 * protocol version than this client was built for.
 */
bool
protoCompatible(const analysis::Json& reply, const char* what)
{
    const int observed = observedProto(reply);
    if (observed == kProtoVersion)
        return true;
    warn("delta-sweep ", what, ": daemon speaks protocol v", observed,
         " but this client expects v", kProtoVersion,
         "; rebuild the client or restart the daemon from the same "
         "build");
    return false;
}

/**
 * Mutex-guarded live telemetry shared between the accept loop (which
 * answers status/metrics scrapes) and the sweep thread (which
 * updates it from the engine's onCellStart/onResult callbacks).
 * Counters describe the sweep in flight, or the last finished one —
 * they are reset when the next sweep starts, not when one ends, so a
 * scrape at completion still reconciles against the final report.
 */
struct DaemonState
{
    std::mutex m;
    std::chrono::steady_clock::time_point start{
        std::chrono::steady_clock::now()};
    std::uint64_t served = 0;
    bool sweeping = false;
    std::chrono::steady_clock::time_point sweepStart;
    std::uint64_t runsTotal = 0;
    std::uint64_t runsDone = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /** Worker index -> tag of the cell it is executing right now. */
    std::map<unsigned, std::string> workerCell;
};

/** Point-in-time copy of the counters plus derived gauges. */
struct StatusSample
{
    double uptimeSec = 0;
    bool sweeping = false;
    std::uint64_t served = 0;
    std::uint64_t runsTotal = 0;
    std::uint64_t runsDone = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    double etaSec = 0;
    std::map<unsigned, std::string> workerCell;
};

StatusSample
sampleStatus(DaemonState& state)
{
    std::lock_guard<std::mutex> lock(state.m);
    const auto now = std::chrono::steady_clock::now();
    StatusSample s;
    s.uptimeSec =
        std::chrono::duration<double>(now - state.start).count();
    s.sweeping = state.sweeping;
    s.served = state.served;
    s.runsTotal = state.runsTotal;
    s.runsDone = state.runsDone;
    s.hits = state.hits;
    s.misses = state.misses;
    if (state.sweeping && state.runsDone > 0) {
        // The same estimator the progress lines print: mean seconds
        // per retired cell, times the cells still outstanding.
        const double elapsed =
            std::chrono::duration<double>(now - state.sweepStart)
                .count();
        s.etaSec = elapsed / static_cast<double>(state.runsDone) *
                   static_cast<double>(state.runsTotal -
                                       state.runsDone);
    }
    s.workerCell = state.workerCell;
    return s;
}

std::string
statusReply(DaemonState& state)
{
    const StatusSample s = sampleStatus(state);
    std::ostringstream os;
    os << "{\"ok\": true, \"proto\": " << kProtoVersion
       << ", \"status\": {\"uptimeSec\": "
       << jsonNumber(s.uptimeSec)
       << ", \"sweeping\": " << (s.sweeping ? "true" : "false")
       << ", \"served\": " << s.served
       << ", \"runs\": " << s.runsTotal
       << ", \"done\": " << s.runsDone
       << ", \"inflight\": " << s.workerCell.size()
       << ", \"hits\": " << s.hits << ", \"misses\": " << s.misses
       << ", \"etaSec\": " << jsonNumber(s.etaSec)
       << ", \"workers\": [";
    bool first = true;
    for (const auto& [worker, cell] : s.workerCell) {
        os << (first ? "" : ", ") << "{\"worker\": " << worker
           << ", \"cell\": \"" << jsonEscape(cell) << "\"}";
        first = false;
    }
    os << "]}}";
    return os.str();
}

std::string
metricsReply(DaemonState& state)
{
    const StatusSample s = sampleStatus(state);
    std::ostringstream os;
    const auto metric = [&os](const char* name, const char* type,
                              const char* help, double value) {
        os << "# HELP " << name << ' ' << help << '\n'
           << "# TYPE " << name << ' ' << type << '\n'
           << name << ' ' << jsonNumber(value) << '\n';
    };
    metric("ts_sweep_uptime_seconds", "gauge",
           "Seconds since the daemon started.", s.uptimeSec);
    metric("ts_sweep_requests_total", "counter",
           "Requests served over the daemon's lifetime.",
           static_cast<double>(s.served));
    metric("ts_sweep_active", "gauge",
           "1 while a sweep is in flight, else 0.",
           s.sweeping ? 1 : 0);
    metric("ts_sweep_runs_total", "gauge",
           "Grid points in the current (or last) sweep.",
           static_cast<double>(s.runsTotal));
    metric("ts_sweep_runs_done", "gauge",
           "Grid points retired so far.",
           static_cast<double>(s.runsDone));
    metric("ts_sweep_runs_inflight", "gauge",
           "Grid points executing right now.",
           static_cast<double>(s.workerCell.size()));
    metric("ts_sweep_cache_hits_total", "counter",
           "Run-cache hits in the current (or last) sweep.",
           static_cast<double>(s.hits));
    metric("ts_sweep_cache_misses_total", "counter",
           "Run-cache misses in the current (or last) sweep.",
           static_cast<double>(s.misses));
    metric("ts_sweep_eta_seconds", "gauge",
           "Estimated seconds until the in-flight sweep completes "
           "(0 when idle or unknown).",
           s.etaSec);
    return "{\"ok\": true, \"proto\": " +
           std::to_string(kProtoVersion) + ", \"metrics\": \"" +
           jsonEscape(os.str()) + "\"}";
}

/**
 * Execute one sweep request on @p fd, streaming start/cell/done
 * events and keeping @p state live for concurrent scrapes.  Every
 * failure mode becomes an error event; the connection (and daemon)
 * survive bad requests.
 */
void
handleSweep(int fd, const analysis::Json& req, DaemonState& state)
{
    driver::RunOptions opt;
    driver::GridSettings grid;
    try {
        if (!req.has("grid") || !req.at("grid").isObj()) {
            writeLine(fd, errorEvent(
                              "sweep request needs a \"grid\" object"));
            return;
        }
        for (const auto& [key, value] : req.at("grid").obj) {
            if (value.kind != analysis::Json::Kind::Str) {
                writeLine(fd,
                          errorEvent("grid value for '" + key +
                                     "' must be a string"));
                return;
            }
            driver::applyGridKey(key, value.str, opt, grid);
        }

        driver::SweepSpec spec = driver::buildSweepSpec(opt, grid);
        spec.progress = false;
        spec.onCellStart = [&state](unsigned worker,
                                    const driver::RunPoint& point) {
            std::lock_guard<std::mutex> lock(state.m);
            state.workerCell[worker] = point.tag();
        };
        // Mirror the engine's accounting: hit/miss counts exist only
        // when a cache is configured (and tracing doesn't bypass it),
        // so a completion scrape reconciles with the final report.
        const bool cacheOn =
            !grid.cacheDir.empty() && spec.tracePath.empty();
        spec.onResult = [fd, &state,
                         cacheOn](const driver::RunOutcome& out,
                                  bool fromCache) {
            std::ostringstream ev;
            ev << "{\"event\": \"cell\", \"tag\": \""
               << jsonEscape(out.point.tag()) << "\", \"source\": \""
               << (fromCache ? "cache" : "run") << "\", \"ok\": "
               << (out.ok() ? "true" : "false")
               << ", \"cycles\": " << jsonNumber(out.cycles) << "}";
            writeLine(fd, ev.str());
            std::lock_guard<std::mutex> lock(state.m);
            ++state.runsDone;
            if (cacheOn)
                ++(fromCache ? state.hits : state.misses);
            for (auto it = state.workerCell.begin();
                 it != state.workerCell.end(); ++it) {
                if (it->second == out.point.tag()) {
                    state.workerCell.erase(it);
                    break;
                }
            }
        };

        driver::Sweep sweep(std::move(spec));
        {
            std::lock_guard<std::mutex> lock(state.m);
            state.sweepStart = std::chrono::steady_clock::now();
            state.runsTotal = sweep.points().size();
            state.runsDone = state.hits = state.misses = 0;
            state.workerCell.clear();
        }
        writeLine(fd, "{\"event\": \"start\", \"proto\": " +
                          std::to_string(kProtoVersion) +
                          ", \"runs\": " +
                          std::to_string(sweep.points().size()) + "}");
        const driver::SweepReport report = sweep.run();

        if (!grid.out.empty()) {
            std::ofstream os(grid.out, std::ios::binary);
            if (!os) {
                writeLine(fd, errorEvent("cannot write report '" +
                                         grid.out + "'"));
                return;
            }
            report.writeJson(os);
        }

        // Go idle *before* the done event reaches the client, so a
        // status scrape issued after "done" always sees a reconciled
        // idle daemon (the background thread's own clear is then a
        // no-op covering the error paths above).
        {
            std::lock_guard<std::mutex> lock(state.m);
            state.sweeping = false;
            state.workerCell.clear();
        }
        std::ostringstream done;
        done << "{\"event\": \"done\", \"ok\": "
             << (report.allOk() ? "true" : "false")
             << ", \"failures\": " << report.failures()
             << ", \"hits\": " << report.cacheHits
             << ", \"misses\": " << report.cacheMisses << "}";
        writeLine(fd, done.str());
    } catch (const std::exception& e) {
        writeLine(fd, errorEvent(e.what()));
    }
}

/**
 * Serve every request of one connection; true = stop the daemon
 * (shutdown, or the request cap reached).  An accepted sweep request
 * moves the connection onto @p sweepThread — @p conn.fd is stolen,
 * the reader loop ends, and the accept loop keeps answering scrapes
 * while the sweep streams its events from the thread.
 */
bool
handleConnection(FdGuard& conn, DaemonState& state,
                 std::uint64_t maxRequests, std::thread& sweepThread)
{
    const int fd = conn.fd;
    LineReader reader(fd);
    std::string line;
    while (reader.next(line)) {
        if (line.empty())
            continue;
        std::uint64_t served;
        {
            std::lock_guard<std::mutex> lock(state.m);
            served = ++state.served;
        }
        const bool last = maxRequests > 0 && served >= maxRequests;
        analysis::Json req;
        if (!analysis::parseJson(line, req) || !req.isObj() ||
            !req.has("op") ||
            req.at("op").kind != analysis::Json::Kind::Str) {
            writeLine(fd, errorEvent("malformed request line"));
        } else if (req.at("op").str == "ping") {
            writeLine(fd, okReply());
        } else if (req.at("op").str == "status") {
            writeLine(fd, statusReply(state));
        } else if (req.at("op").str == "metrics") {
            writeLine(fd, metricsReply(state));
        } else if (req.at("op").str == "shutdown") {
            writeLine(fd, okReply());
            return true;
        } else if (req.at("op").str == "sweep") {
            bool busy = false;
            {
                std::lock_guard<std::mutex> lock(state.m);
                busy = state.sweeping;
                if (!busy)
                    state.sweeping = true;
            }
            if (busy) {
                writeLine(fd, errorEvent(
                                  "a sweep is already in progress"));
            } else {
                // The previous sweep thread (if any) has finished —
                // sweeping was false — so joining it is immediate.
                if (sweepThread.joinable())
                    sweepThread.join();
                conn.fd = -1; // the thread owns the fd now
                sweepThread = std::thread([fd, req, &state] {
                    handleSweep(fd, req, state);
                    {
                        std::lock_guard<std::mutex> lock(state.m);
                        state.sweeping = false;
                        state.workerCell.clear();
                    }
                    ::close(fd);
                });
                return last;
            }
        } else {
            writeLine(fd, errorEvent("unknown op '" +
                                     req.at("op").str + "'"));
        }
        if (last)
            return true;
    }
    return false;
}

/** Connect to @p path, retrying briefly so clients started alongside
 *  the daemon win the startup race; -1 when it never appears. */
int
connectTo(const std::string& path)
{
    const sockaddr_un addr = unixAddr(path);
    for (int attempt = 0; attempt < 100; ++attempt) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return -1;
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)) == 0)
            return fd;
        ::close(fd);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return -1;
}

/** Send one request and expect a single `{"ok":true}` reply. */
bool
simpleRequest(const std::string& socketPath, const std::string& op)
{
    FdGuard fd{connectTo(socketPath)};
    if (fd.fd < 0)
        return false;
    if (!writeLine(fd.fd, "{\"op\": \"" + op + "\"}"))
        return false;
    LineReader reader(fd.fd);
    std::string line;
    if (!reader.next(line))
        return false;
    analysis::Json reply;
    if (!analysis::parseJson(line, reply) || !reply.isObj() ||
        !reply.has("ok") ||
        reply.at("ok").kind != analysis::Json::Kind::Bool ||
        !reply.at("ok").b)
        return false;
    return protoCompatible(reply, op.c_str());
}

} // namespace

void
serve(const ServeConfig& cfg)
{
    const sockaddr_un addr = unixAddr(cfg.socketPath);

    FdGuard listener{::socket(AF_UNIX, SOCK_STREAM, 0)};
    if (listener.fd < 0)
        fatal("cannot create socket: ", std::strerror(errno));
    ::unlink(cfg.socketPath.c_str());
    if (::bind(listener.fd, reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) != 0)
        fatal("cannot bind '", cfg.socketPath,
              "': ", std::strerror(errno));
    if (::listen(listener.fd, 4) != 0)
        fatal("cannot listen on '", cfg.socketPath,
              "': ", std::strerror(errno));

    DaemonState state;
    std::thread sweepThread;
    bool stop = false;
    while (!stop) {
        FdGuard conn{::accept(listener.fd, nullptr, nullptr)};
        if (conn.fd < 0) {
            if (errno == EINTR)
                continue;
            fatal("accept on '", cfg.socketPath,
                  "' failed: ", std::strerror(errno));
        }
        stop = handleConnection(conn, state, cfg.maxRequests,
                                sweepThread);
    }
    // Let an in-flight sweep finish and deliver its done event
    // before the daemon exits.
    if (sweepThread.joinable())
        sweepThread.join();
    ::unlink(cfg.socketPath.c_str());
}

int
requestSweep(const std::string& socketPath,
             const std::string& requestJson, std::ostream& replies)
{
    FdGuard fd{connectTo(socketPath)};
    if (fd.fd < 0) {
        replies << errorEvent("cannot connect to '" + socketPath +
                              "'")
                << "\n";
        return 2;
    }
    if (!writeLine(fd.fd, requestJson)) {
        replies << errorEvent("connection lost while sending request")
                << "\n";
        return 2;
    }

    LineReader reader(fd.fd);
    std::string line;
    while (reader.next(line)) {
        replies << line << "\n";
        analysis::Json ev;
        if (!analysis::parseJson(line, ev) || !ev.isObj() ||
            !ev.has("event") ||
            ev.at("event").kind != analysis::Json::Kind::Str)
            continue;
        const std::string& kind = ev.at("event").str;
        if (kind == "error")
            return 2;
        if (kind == "start" && !protoCompatible(ev, "sweep")) {
            replies << errorEvent(
                           "daemon speaks protocol v" +
                           std::to_string(observedProto(ev)) +
                           ", this client expects v" +
                           std::to_string(kProtoVersion))
                    << "\n";
            return 2;
        }
        if (kind == "done") {
            const bool ok = ev.has("ok") &&
                            ev.at("ok").kind ==
                                analysis::Json::Kind::Bool &&
                            ev.at("ok").b;
            return ok ? 0 : 1;
        }
    }
    replies << errorEvent("connection closed before done event")
            << "\n";
    return 2;
}

bool
ping(const std::string& socketPath)
{
    return simpleRequest(socketPath, "ping");
}

namespace
{

/** Send one op; the single raw reply line ("" on any failure). */
std::string
fetchReplyLine(const std::string& socketPath, const std::string& op)
{
    FdGuard fd{connectTo(socketPath)};
    if (fd.fd < 0)
        return std::string();
    if (!writeLine(fd.fd, "{\"op\": \"" + op + "\"}"))
        return std::string();
    LineReader reader(fd.fd);
    std::string line;
    if (!reader.next(line))
        return std::string();
    return line;
}

} // namespace

std::string
status(const std::string& socketPath)
{
    const std::string line = fetchReplyLine(socketPath, "status");
    analysis::Json reply;
    if (!analysis::parseJson(line, reply) || !reply.isObj() ||
        !reply.has("status") || !reply.at("status").isObj())
        return std::string();
    if (!protoCompatible(reply, "status"))
        return std::string();
    return line;
}

std::string
metrics(const std::string& socketPath)
{
    const std::string line = fetchReplyLine(socketPath, "metrics");
    analysis::Json reply;
    if (!analysis::parseJson(line, reply) || !reply.isObj() ||
        !reply.has("metrics") ||
        reply.at("metrics").kind != analysis::Json::Kind::Str)
        return std::string();
    if (!protoCompatible(reply, "metrics"))
        return std::string();
    return reply.at("metrics").str;
}

bool
shutdown(const std::string& socketPath)
{
    return simpleRequest(socketPath, "shutdown");
}

} // namespace service
} // namespace ts
