/**
 * @file
 * Dynamic-spawn merge sort: a single root task recursively splits
 * itself from *inside* the accelerator.  Each internal sort task's
 * spawn hook submits its two half-range children plus the merge that
 * combines them, wires barrier edges child -> merge, and transfers
 * its own pending successors to the merge — so the parent's
 * dependence on "this range is sorted" re-hangs onto the subtree's
 * merge without the host ever seeing the tree.
 *
 * Structure exercised: the live dependence engine (DESIGN.md §9) —
 * TaskSpawn messages, edges to already-submitted tasks, and
 * successor transfer on early finish.  The statically-built msort
 * workload computes the same result from a host-built tree.
 */

#ifndef TS_WORKLOADS_MSORT_DYN_HH
#define TS_WORKLOADS_MSORT_DYN_HH

#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace ts
{

/** Dynamic merge-sort workload parameters. */
struct MsortDynParams
{
    std::uint64_t n = 8192;       ///< elements (power of two)
    std::uint64_t leafSize = 512; ///< largest range sorted in place
    std::uint64_t seed = 7;
};

/** Sort a vector of 64-bit integers via recursive dynamic spawns. */
class MsortDynWorkload : public Workload
{
  public:
    explicit MsortDynWorkload(const MsortDynParams& p) : p_(p) {}

    std::string name() const override { return "msort-dyn"; }
    void build(Delta& delta, TaskGraph& graph) override;
    bool check(const MemImage& img) const override;

  private:
    MsortDynParams p_;
    Addr finalAddr_ = 0;
    std::vector<std::int64_t> expected_;

    /** Captured by the spawn hook (the workload outlives the run). */
    TaskTypeId sortTy_ = 0;
    TaskTypeId mergeTy_ = 0;
};

} // namespace ts

#endif // TS_WORKLOADS_MSORT_DYN_HH
