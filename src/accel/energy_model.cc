#include "accel/energy_model.hh"

namespace ts
{

namespace
{

// Per-event energy constants, generic 28nm-class (nJ/event).
constexpr double kDramLineNj = 6.0;     ///< 64B DRAM access
constexpr double kNocWordHopNj = 0.05;  ///< 64b link + router traversal
constexpr double kFiringNj = 0.010;     ///< one 64b fabric operation
constexpr double kSpmAccessNj = 0.020;  ///< 64b scratchpad access
constexpr double kTokenNj = 0.005;      ///< stream-engine token handling
constexpr double kLaneIdleNjPerCycle = 0.002; ///< clock/leakage per lane

/** Sum every lane statistic whose name contains @p needle. */
double
sumLaneStat(const StatSet& stats, const std::string& needle)
{
    double sum = 0;
    for (const auto& [name, value] : stats.matchPrefix("lane")) {
        if (name.find(needle) != std::string::npos)
            sum += value;
    }
    return sum;
}

} // namespace

double
EnergyReport::totalNanojoules() const
{
    double t = 0;
    for (const auto& e : entries)
        t += e.nanojoules;
    return t;
}

EnergyReport
computeEnergy(const StatSet& stats, std::uint32_t lanes)
{
    EnergyReport r;
    auto add = [&r](std::string name, double events, double njPer) {
        r.entries.push_back(
            EnergyEntry{std::move(name), events, events * njPer});
    };

    const double dramLines = stats.getOr("mem.linesRead", 0) +
                             stats.getOr("mem.linesWritten", 0);
    add("DRAM line accesses", dramLines, kDramLineNj);
    add("NoC word-hops", stats.getOr("noc.wordHops", 0),
        kNocWordHopNj);
    add("fabric firings", sumLaneStat(stats, ".fabric.firings"),
        kFiringNj);
    add("scratchpad accesses", sumLaneStat(stats, ".spm.accesses"),
        kSpmAccessNj);
    // Matches laneN.rdK.tokens and laneN.wrK.tokens (pipe token
    // counts are reported as ".pipeTokens" and excluded).
    add("stream tokens", sumLaneStat(stats, ".tokens"), kTokenNj);
    add("lane clock/leakage",
        stats.getOr("delta.cycles", 0) * lanes, kLaneIdleNjPerCycle);
    return r;
}

} // namespace ts
