#include "spatial/mapper.hh"

#include <algorithm>
#include <cmath>

#include "noc/noc.hh"
#include "spatial/spatial.hh"
#include "task/task_graph.hh"
#include "task/task_types.hh"

namespace ts
{
namespace spatial
{

namespace
{

/** One graph edge with its communication weight resolved. */
struct CommEdge
{
    TaskId producer = 0;
    TaskId consumer = 0;
    std::uint64_t words = 0;
    bool forwardable = false;
};

/** Balance weights tried, as multiples of the comm/work scale.  0 is
 *  pure affinity (chains collapse onto few lanes); 4 is close to pure
 *  load balancing.  Fixed list => deterministic plans. */
constexpr double kBetas[] = {0.0, 0.25, 1.0, 4.0};

} // namespace

SpatialPlan
mapTaskGraph(const TaskGraph& g, const MemImage& img,
             const TaskTypeRegistry& reg, const Noc& noc,
             const std::vector<std::uint32_t>& laneNodes,
             std::uint32_t linkWords)
{
    const std::size_t n = g.numTasks();
    const std::uint32_t lanes =
        static_cast<std::uint32_t>(laneNodes.size());
    SpatialPlan plan;
    plan.lane.assign(n, -1);
    if (n == 0 || lanes == 0)
        return plan;
    if (linkWords == 0)
        linkWords = 1;

    const std::vector<TaskId> topo = g.topoOrder();

    // Per-task work estimates (cycles; floor 1 so every placement
    // decision is load-visible).
    std::vector<double> work(n, 1.0);
    double totalWork = 0.0;
    for (TaskId uid = 0; uid < n; ++uid) {
        work[uid] = std::max(1.0, reg.estimateWork(img, g.task(uid)));
        totalWork += work[uid];
    }

    // Resolve each edge's communication weight: the extent of the
    // consumer input the producer feeds when the pair is spatially
    // forwardable, else a one-line token of affinity so plain barrier
    // chains still prefer co-location.
    std::vector<CommEdge> comm;
    comm.reserve(g.edges().size());
    std::vector<std::vector<std::uint32_t>> inEdges(n);
    double totalComm = 0.0;
    for (const DepEdge& e : g.edges()) {
        CommEdge ce{e.producer, e.consumer, lineWords, false};
        const TaskInstance& prod = g.task(e.producer);
        const TaskInstance& cons = g.task(e.consumer);
        std::uint64_t fwdWords = 0;
        for (const StreamDesc& in : cons.inputs) {
            if (!landingEligibleInput(in))
                continue;
            for (const WriteDesc& w : prod.outputs) {
                if (forwardableOutput(w) && outputFeedsInput(w, in)) {
                    fwdWords += in.count;
                    break;
                }
            }
        }
        if (fwdWords > 0) {
            ce.words = fwdWords;
            ce.forwardable = true;
            ++plan.forwardableEdges;
            plan.forwardableWords += fwdWords;
        }
        totalComm += static_cast<double>(ce.words);
        inEdges[e.consumer].push_back(
            static_cast<std::uint32_t>(comm.size()));
        comm.push_back(ce);
    }

    // Affinity is measured in words, load in cycles; `scale` converts
    // load into affinity units so the betas are dimensionless.
    const double scale = (totalComm + 1.0) / (totalWork + 1.0);

    std::vector<std::int32_t> best;
    Tick bestScore = 0;
    for (std::size_t cand = 0; cand < std::size(kBetas); ++cand) {
        const double beta = kBetas[cand];
        ++plan.candidatesTried;

        // Greedy topo-order placement: put each task where its
        // already-placed producers are close (hop-discounted edge
        // words) minus a load penalty.
        std::vector<std::int32_t> assign(n, -1);
        std::vector<double> load(lanes, 0.0);
        for (TaskId uid : topo) {
            std::int32_t bestLane = 0;
            double bestAff = 0.0;
            for (std::uint32_t l = 0; l < lanes; ++l) {
                double aff = -beta * load[l] * scale;
                for (std::uint32_t ei : inEdges[uid]) {
                    const CommEdge& ce = comm[ei];
                    const std::int32_t pl = assign[ce.producer];
                    if (pl < 0)
                        continue;
                    const std::uint32_t hops = noc.hopDistance(
                        laneNodes[static_cast<std::size_t>(pl)],
                        laneNodes[l]);
                    aff += static_cast<double>(ce.words) /
                           (1.0 + hops);
                }
                if (l == 0 || aff > bestAff) {
                    bestAff = aff;
                    bestLane = static_cast<std::int32_t>(l);
                }
            }
            assign[uid] = bestLane;
            load[static_cast<std::size_t>(bestLane)] += work[uid];
        }

        // Evaluate: a deterministic communication-aware list schedule
        // in topo order.  A task becomes ready when every producer has
        // finished and its edge data has crossed the mesh; it starts
        // when its lane frees up.
        std::vector<Tick> finish(n, 0);
        std::vector<Tick> freeAt(lanes, 0);
        std::vector<TaskSpan> spans(n);
        Tick makespan = 0;
        for (TaskId uid : topo) {
            const auto lane = static_cast<std::size_t>(assign[uid]);
            Tick ready = 0;
            Tick commMax = 0;
            for (std::uint32_t ei : inEdges[uid]) {
                const CommEdge& ce = comm[ei];
                Tick arrive = finish[ce.producer];
                if (assign[ce.producer] != assign[uid]) {
                    const std::uint32_t hops = noc.hopDistance(
                        laneNodes[static_cast<std::size_t>(
                            assign[ce.producer])],
                        laneNodes[lane]);
                    const Tick xfer =
                        static_cast<Tick>(hops) *
                        divCeil(ce.words, std::uint64_t{linkWords});
                    arrive += xfer;
                    commMax = std::max(commMax, xfer);
                }
                ready = std::max(ready, arrive);
            }
            const Tick w = std::max<Tick>(
                1, static_cast<Tick>(std::llround(work[uid])));
            const Tick start = std::max(ready, freeAt[lane]);
            finish[uid] = start + w;
            freeAt[lane] = finish[uid];
            makespan = std::max(makespan, finish[uid]);
            // Charge inbound communication to the task's span so the
            // graph's own critical-path analysis sees placement: a
            // cross-lane edge lengthens the service it observes.
            spans[uid] = TaskSpan{uid, start - commMax, finish[uid],
                                  assign[uid]};
        }

        const CritPathResult cp = g.criticalPath(spans);
        const Tick score = std::max(makespan, cp.criticalPathCycles);
        if (best.empty() || score < bestScore) {
            best = assign;
            bestScore = score;
            plan.predictedMakespan = makespan;
            plan.predictedCritPath = cp.criticalPathCycles;
            plan.balanceWeight = beta;
        }
    }

    plan.lane = std::move(best);
    return plan;
}

} // namespace spatial
} // namespace ts
