/**
 * @file
 * The cycle-driven simulation core.
 *
 * A Simulator owns a set of Ticked components and Channels.  Each
 * simulated cycle proceeds in three phases:
 *
 *   1. fire all events scheduled for this cycle,
 *   2. tick every *active* component (order-independent thanks to
 *      channels' next-cycle visibility),
 *   3. commit every *dirty* channel.
 *
 * Simulation ends when the system is quiescent: no pending events, no
 * in-flight channel values, and no component reporting busy().
 * Components must not create work spontaneously; all activity
 * descends from initial state or events.
 *
 * Activity-driven scheduling
 * --------------------------
 * The core walks an active list instead of every component.  A
 * component may remove itself from the list by calling sleepUntil() /
 * sleepOnWake() from inside its tick(); it is re-inserted by
 *
 *   - the timed wake it asked for (sleepUntil),
 *   - a commit of a channel it observes (ChannelBase::addObserver),
 *   - an event it owns firing (Simulator::schedule owner), or
 *   - an explicit Ticked::requestWake() from a producer.
 *
 * The contract that keeps results bit-identical to ticking everything:
 * a component may only sleep when its tick() is provably a total
 * no-op (no state change, no stat, no trace event) for every skipped
 * cycle, and every input that could change that must be wired to one
 * of the wake sources above.  Spurious wakes are always harmless —
 * sleeping is a one-shot request re-decided at the end of every
 * tick — so wake sources may over-approximate freely.  A wake
 * requested for a component the current cycle's walk has not reached
 * yet takes effect this cycle (matching direct intra-cycle calls such
 * as TaskUnit::deliver); otherwise it takes effect next cycle
 * (matching channel commit visibility).
 *
 * When the active list empties while events or timed wakes are still
 * pending, the simulator fast-forwards now_ straight to the next of
 * them; the skipped cycles are no-ops by the contract above.
 * setFastForward(false) restores the naive everything-every-cycle
 * loop for differential testing (--no-fast-forward).
 *
 * Partitions and shards (the conservative-PDES core)
 * --------------------------------------------------
 * Every component and channel endpoint carries a *partition* — a
 * host-independent affinity domain declared at registration time
 * (setPartition / the addChannel endpoint overloads).  Components of
 * one partition may touch each other's state directly; all traffic
 * between partitions must flow through channels or events, and a
 * cross-partition channel uses credit back-pressure (see channel.hh)
 * so within-cycle tick order never leaks across partitions.
 *
 * setShards(K) + finalize() split the partitions over K executors
 * (executor = partition mod K), each running its own active-list walk
 * for the cycle.  The cycle protocol:
 *
 *   1. (coordinator, serialized) due timed wakes, quiescence /
 *      fast-forward decision over the min of all shard-local next
 *      events, then every due strong event (per-shard queues, shard
 *      order) and weak event — event callbacks may touch any state.
 *   2. (parallel, barrier-bounded) each shard walks its active list
 *      and commits its intra-shard dirty channels.
 *   3. (parallel, only on cycles with boundary traffic) each shard
 *      commits the cross-partition channels it consumes, applying
 *      pop credits and waking observers.
 *
 * Because channels make results walk-order independent and boundary
 * credits make back-pressure pop-order independent, the simulated
 * results are bit-identical for every K, including K=1 — the same
 * hard gate --no-fast-forward holds to.  Registering a
 * cross-partition channel after finalize() is a fatal error; see
 * DESIGN.md §8 for the full sharding contract.
 */

#ifndef TS_SIM_SIMULATOR_HH
#define TS_SIM_SIMULATOR_HH

#include <bit>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "obs/flight_recorder.hh"
#include "sim/channel.hh"
#include "sim/event_queue.hh"
#include "sim/snapshot.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace ts
{

class Simulator;
class SimSnapshot;

namespace obs
{
class HostProfiler;
}

/** Base class for every cycle-stepped hardware model. */
class Ticked
{
  public:
    explicit Ticked(std::string name) : name_(std::move(name)) {}
    virtual ~Ticked() = default;

    Ticked(const Ticked&) = delete;
    Ticked& operator=(const Ticked&) = delete;

    /** Advance one cycle. */
    virtual void tick(Tick now) = 0;

    /**
     * Whether the component holds pending internal work.  Used only
     * for quiescence detection; a component waiting on a channel that
     * is itself non-quiescent may report false.
     */
    virtual bool busy() const = 0;

    /** Contribute counters to the global statistics dump. */
    virtual void reportStats(StatSet&) const {}

    /**
     * Flush per-cycle bookkeeping deferred across slept cycles up to
     * (excluding) @p now.  Called by the simulator before run()
     * returns and at the end of step(), so externally observable
     * accounting matches a component that ticked every cycle.
     */
    virtual void catchUp(Tick now) { (void)now; }

    /**
     * Ensure this component ticks as soon as possible: during the
     * current cycle when the tick walk has not passed it yet,
     * otherwise on the next executed cycle.  Safe to call from
     * anywhere at any time; spurious wakes are harmless.  Under the
     * sharded core a wake may only originate from the component's own
     * shard (or a serialized coordinator phase) — which is implied by
     * the partition contract: only same-partition code holds a
     * reference to poke.
     */
    void requestWake();

    /**
     * Copy all mutable state into a value-semantic snap (see
     * snapshot.hh for the ownership/copy contract).  The default
     * fatal()s naming the component, so a snapshot over an unported
     * component fails loudly rather than silently forking stale
     * state; stateless components return EmptySnap.
     */
    virtual std::unique_ptr<ComponentSnap> saveState() const;

    /** Restore a prior saveState() in place (same object graph). */
    virtual void restoreState(const ComponentSnap& s);

    /** Diagnostic name. */
    const std::string& name() const { return name_; }

    /** Partition (shard-affinity domain) assigned at registration. */
    std::uint32_t partition() const { return partition_; }

  protected:
    /**
     * From inside tick(): skip subsequent ticks until cycle
     * @p wakeAt (clamped to now+1) unless woken earlier.
     */
    void sleepUntil(Tick wakeAt);

    /** From inside tick(): skip subsequent ticks until a wake. */
    void sleepOnWake();

  private:
    friend class Simulator;

    std::string name_;
    Simulator* sim_ = nullptr;
    std::uint32_t simIndex_ = 0;
    /** Registration-time partition (Simulator::setPartition). */
    std::uint32_t partition_ = 0;
    /** Executor shard (partition_ % shards); set by finalize(). */
    std::uint32_t shard_ = 0;
    /** Index within the shard's component slice (finalize()). */
    std::uint32_t shardIndex_ = 0;
    /**
     * The earliest timed-wake heap entry currently queued for this
     * component, or kNoWakeTick.  sleepUntil() pushes a new entry
     * only when it is strictly earlier, so a component that re-sleeps
     * many times before its wake keeps one heap entry, not one per
     * sleep (wake-target dedup).
     */
    Tick queuedWakeAt_ = std::numeric_limits<Tick>::max();
    /** Sleep requested by the current tick (applied after it). */
    bool sleepPending_ = false;
    /** Currently absent from the active list. */
    bool sleeping_ = false;
    /** Timed wake for a pending sleep (kNoWakeTick = wake only). */
    Tick sleepAt_ = 0;
    /** Already recorded in the simulator's busy-sleeper list. */
    bool inBusyList_ = false;
};

/** Owns components and channels and advances simulated time. */
class Simulator
{
  public:
    Simulator();
    ~Simulator();

    /**
     * Partition assigned to subsequently registered components and
     * channel endpoints (default 0).  Partitions are part of the
     * simulated system's structure: the same declaration must be made
     * for every shard count, and results never depend on it beyond
     * the boundary-channel credit rule (channel.hh).
     */
    void setPartition(std::uint32_t p) { currentPartition_ = p; }

    /** The current registration partition. */
    std::uint32_t partition() const { return currentPartition_; }

    /**
     * Number of executor shards for run()/step() (default 1).  Must
     * be set before finalize().  Shards only change host execution:
     * results are bit-identical for every value.
     */
    void setShards(std::uint32_t k);

    /** Configured executor shard count. */
    std::uint32_t shards() const { return shards_; }

    /**
     * Freeze the component/channel registration and build the
     * per-shard executor state (component slices, active bitmaps,
     * event queues, boundary-channel lists).  Idempotent; called
     * implicitly by the first sharded run.  After finalize(),
     * registering a cross-partition channel is fatal — the shard
     * boundary lists would silently miss it.
     */
    void finalize();

    /** Whether finalize() has run. */
    bool finalized() const { return finalized_; }

    /** Register a component (not owned); it starts active and
     *  belongs to the current registration partition. */
    void add(Ticked* t);

    /** Register an externally owned channel; both endpoints default
     *  to the current registration partition. */
    void addChannel(ChannelBase* c);

    /** Register a channel with explicit endpoint partitions. */
    void addChannel(ChannelBase* c, std::uint32_t producerPartition,
                    std::uint32_t consumerPartition);

    /** Create and own a channel, registering it automatically. */
    template <typename T>
    Channel<T>&
    makeChannel(const std::string& name, std::size_t capacity)
    {
        return makeChannel<T>(name, capacity, currentPartition_,
                              currentPartition_);
    }

    /** Create and own a channel with explicit endpoint partitions. */
    template <typename T>
    Channel<T>&
    makeChannel(const std::string& name, std::size_t capacity,
                std::uint32_t producerPartition,
                std::uint32_t consumerPartition)
    {
        auto ch = std::make_unique<Channel<T>>(name, capacity);
        Channel<T>& ref = *ch;
        owned_.push_back(std::move(ch));
        addChannel(&ref, producerPartition, consumerPartition);
        return ref;
    }

    /**
     * Schedule a callback @p delay cycles from now (delay >= 1).
     * A non-null @p owner is woken when the callback fires.  Under
     * the sharded core callbacks always fire in a serialized
     * coordinator phase, in deterministic per-shard order.
     */
    void schedule(Tick delay, EventQueue::Callback cb,
                  Ticked* owner = nullptr);

    /**
     * Schedule a *weak* callback @p delay cycles from now (delay >=
     * 1): it fires at its exact simulated tick in both execution
     * modes but never keeps the simulation alive — quiescence and
     * deadlock detection ignore it, and pending weak events are
     * dropped when run() returns.  Observers only (e.g. the timeline
     * sampler); a weak callback must not change simulated state.
     */
    void scheduleWeak(Tick delay, EventQueue::Callback cb);

    /** Current cycle. */
    Tick now() const { return now_; }

    /**
     * Run until quiescent.
     *
     * @param maxCycles upper bound; exceeding it raises fatal() with
     *        a deadlock diagnosis.
     * @return the cycle count at quiescence.
     */
    Tick run(Tick maxCycles);

    /**
     * Run exactly @p cycles (no quiescence check).
     *
     * Events land on the cycle they are scheduled for, so an event
     * scheduled exactly at now()+cycles does NOT fire during this
     * call: step(n) executes cycles [now, now+n) and leaves now() at
     * the boundary, exactly like n naive doCycle() iterations.  Both
     * execution modes preserve this trailing-event semantics.
     */
    void step(Tick cycles = 1);

    /** True when nothing can happen on any future cycle. */
    bool quiescent() const;

    /** Gather statistics from every registered component. */
    void reportStats(StatSet& stats) const;

    /**
     * Enable/disable activity-driven execution (default on).  When
     * off, every component ticks and every channel commits every
     * cycle — the naive reference loop used by --no-fast-forward
     * differential testing.  Must be chosen before a sharded
     * finalize(): the naive loop is single-threaded, so drivers force
     * --shards 1 together with --no-fast-forward.
     * Results are bit-identical either way.
     */
    void
    setFastForward(bool on)
    {
        TS_ASSERT(on || !sharded_,
                  "naive execution is single-threaded; select "
                  "--no-fast-forward with --shards 1");
        fastForward_ = on;
    }

    /** Whether activity-driven execution is enabled. */
    bool fastForward() const { return fastForward_; }

    /**
     * Capture the complete simulation state — time, every component's
     * and channel's mutable state, the sleep/wake bookkeeping of the
     * activity-driven core — as a value-semantic snapshot.  Must be
     * called between cycles with an empty event queue (event
     * callbacks are move-only); both are true post-configuration and
     * at quiescence.  A run resumed from a restored snapshot is
     * bit-identical to one that never snapshotted.  Snapshots store
     * the sleep/wake bookkeeping in shard-independent (global
     * registration order) form, so they are portable across shard
     * counts of the same object graph.
     */
    SimSnapshot snapshot() const;

    /** Restore a snapshot in place over the same components and
     *  channels, in the same registration order. */
    void restore(const SimSnapshot& s);

    /**
     * Flush deferred accounting on every component (see
     * Ticked::catchUp).  Called automatically before run()/step()
     * return; public so mid-run observers (the timeline sampler) can
     * align cumulative counters with a never-sleeping run.  Safe to
     * call repeatedly: catchUp is incremental and idempotent.
     */
    void catchUpAll();

    /**
     * Attach a flight recorder capturing sleep/wake/commit/event
     * records (null detaches).  Off the hot path when detached: the
     * hooks are single null-pointer branches, and the repeated-wake
     * fast path is untouched either way.  Under the sharded core
     * each shard records into its own ring (events, fired
     * serialized, use the attached ring); deadlock diagnosis dumps
     * them all.
     */
    void setFlightRecorder(obs::FlightRecorder* rec);

    /** The attached flight recorder, or null. */
    obs::FlightRecorder* flightRecorder() const { return recorder_; }

    /**
     * Attach a host profiler attributing wall-ns to events, per-class
     * ticks, commits, fast-forward, and quiescence checks (null
     * detaches).  Components are classified by name at attach time,
     * so attach after registering every component.  Under the sharded
     * core each shard profiles into its own instance; reportStats
     * merges them and additionally emits per-shard
     * sim.host.shard<i>.* keys.
     */
    void setHostProfiler(obs::HostProfiler* prof);

  private:
    friend class Ticked;
    friend class SimSnapshot;

    static constexpr Tick kNoWakeTick =
        std::numeric_limits<Tick>::max();

    /** One pending timed wake (lazily invalidated; see wake()). */
    struct TimedWake
    {
        Tick at;
        std::uint32_t idx;
        bool
        operator>(const TimedWake& o) const
        {
            if (at != o.at)
                return at > o.at;
            return idx > o.idx;
        }
    };

    /** Per-shard executor state (defined in simulator.cc). */
    struct ShardState;
    /** Per-run worker crew (threads + barrier; simulator.cc). */
    struct ShardRuntime;

    void doCycleFast();
    void doCycleNaive();

    /** Instrumented twins of the cycle bodies and run loops,
     *  dispatched to once per run() when a profiler or flight
     *  recorder is attached, so the uninstrumented hot loops carry
     *  no observability code at all and keep the seed's inlining
     *  (the sub-2%-overhead contract in obs/). */
    void doCycleFastObs();
    void doCycleNaiveObs();
    Tick runFastObs(Tick maxCycles);
    Tick runNaiveObs(Tick maxCycles);

    /** Whether the per-cycle observability twins must run. */
    bool
    obsActive() const
    {
        return profiler_ != nullptr || recorder_ != nullptr;
    }

    Tick runFast(Tick maxCycles);
    Tick runNaive(Tick maxCycles);

    // -- sharded (conservative-PDES) execution; simulator.cc --
    Tick runSharded(Tick maxCycles);
    void stepSharded(Tick cycles);
    void doCycleSharded();
    void fireEventsSharded();
    void shardPhaseTick(std::uint32_t s);
    void shardPhaseIntegrate(std::uint32_t s);
    void wakeDueSleepersSharded();
    bool maybeQuiescentSharded();
    std::uint64_t totalActiveSharded() const;
    Tick nextEventTickSharded() const;
    void startCrew();
    void stopCrew() noexcept;
    void runPhase(int cmd);
    void workerLoop(std::uint32_t shard);
    void mergeShardObservations();
    void bindShardObs();
    std::uint64_t totalTicksExecuted() const;
    void wakeShardedSlow(Ticked* t);
    void applySleepSharded(ShardState& sh, Ticked* t);

    /** Core of requestWake(); no-op in naive mode. */
    void wake(Ticked* t);

    /** Record a sleep request from inside t->tick(). */
    void sleepRequest(Ticked* t, Tick wakeAt);

    /** Move t out of the active list after its tick requested it. */
    void applySleep(Ticked* t);

    /** Wake every timed sleeper due at or before now_. */
    void wakeDueSleepers();

    /**
     * Cheap quiescence check equivalent to quiescent(): O(1)
     * event/live-channel precheck, then busy() only over active
     * components and the (lazily compacted) busy-sleeper list.
     */
    bool maybeQuiescent();

    /** maybeQuiescent(), timed into the profiler's Quiescence bucket
     *  when one is attached. */
    bool checkQuiescentFast();

    [[noreturn]] void deadlockFatal(Tick maxCycles, bool overrun);

    Tick now_ = 0;
    std::vector<Ticked*> ticked_;
    std::vector<ChannelBase*> channels_;
    std::vector<std::unique_ptr<ChannelBase>> owned_;
    EventQueue events_;

    bool fastForward_ = true;

    /**
     * Bitmap of awake component indices.  The tick walk scans it in
     * ascending index order — the same order the naive loop uses —
     * via countr_zero, so a fully active system walks at close to
     * plain-vector speed and sparse systems skip whole words.
     */
    std::vector<std::uint64_t> active_;
    /** The walk's per-cycle work queue: a copy of active_ whose bits
     *  are consumed lowest-first.  wake() adds a bit ahead of the
     *  cursor so the wake takes effect this cycle. */
    std::vector<std::uint64_t> pending_;
    /** Number of set bits in active_. */
    std::uint32_t activeCount_ = 0;
    /** Whether doCycleFast is inside the tick walk, and where. */
    bool walking_ = false;
    std::uint32_t walkPos_ = 0;
    /** Pending sleepUntil wakes, as a min-heap over (at, idx) via
     *  std::push_heap/pop_heap — kept iterable so snapshots can store
     *  it canonically.  Stale entries wake spuriously. */
    std::vector<TimedWake> sleepHeap_;
    /** Sleeping components that reported busy() when they slept. */
    std::vector<std::uint32_t> sleepersBusy_;
    /** Channels with visible or staged values (incremental). */
    std::int64_t liveChannels_ = 0;
    /** Channels pushed this cycle, in first-push order. */
    std::vector<ChannelBase*> dirtyCh_;

    // -- partition / shard registration state --
    std::uint32_t currentPartition_ = 0;
    std::uint32_t shards_ = 1;
    bool finalized_ = false;
    /** shards_ > 1 and finalize() has built the shard state. */
    bool sharded_ = false;
    /** Per-shard executor slices (sharded_ only). */
    std::vector<std::unique_ptr<ShardState>> shardState_;
    /** Every cross-partition channel (coordinator liveness scan). */
    std::vector<ChannelBase*> boundaryCh_;
    /** Live worker crew during a sharded run()/step(), else null. */
    std::unique_ptr<ShardRuntime> rt_;
    /** Shard whose event queue the coordinator is draining (-1 when
     *  not in the serialized event phase). */
    std::int32_t firingShard_ = -1;

    // Host-side performance counters (sim.host.*).
    std::uint64_t wallNs_ = 0;
    std::uint64_t ticksExecuted_ = 0;
    std::uint64_t cyclesExecuted_ = 0;
    std::uint64_t cyclesFastForwarded_ = 0;

    // Observability attachments live past every hot member so the
    // per-cycle working set keeps its pre-obs cache-line layout.
    /** Optional flight recorder (see setFlightRecorder). */
    obs::FlightRecorder* recorder_ = nullptr;
    /** Optional host profiler (see setHostProfiler). */
    obs::HostProfiler* profiler_ = nullptr;
    /** Per-component tick bucket, filled at setHostProfiler time. */
    std::vector<unsigned char> profClass_;
};

/**
 * A value-semantic copy of a Simulator's complete state (see
 * Simulator::snapshot).  Opaque: only the simulator reads or writes
 * it.  Movable but not copyable (component snaps are type-erased
 * unique_ptrs); one snapshot can be restored any number of times.
 */
class SimSnapshot
{
  private:
    friend class Simulator;

    /** Per-component sleep/wake bookkeeping (Ticked fields). */
    struct TickedMeta
    {
        bool sleepPending = false;
        bool sleeping = false;
        Tick sleepAt = 0;
        bool inBusyList = false;
    };

    Tick now = 0;
    bool fastForward = true;
    std::vector<std::unique_ptr<ComponentSnap>> components;
    std::vector<TickedMeta> meta;
    std::vector<std::unique_ptr<ComponentSnap>> channels;
    std::vector<std::uint64_t> active;
    std::uint32_t activeCount = 0;
    /** Timed-wake entries in global registration-index form, sorted
     *  by (at, idx) — shard-count portable. */
    std::vector<Simulator::TimedWake> sleepHeap;
    std::vector<std::uint32_t> sleepersBusy;
    std::uint64_t wallNs = 0;
    std::uint64_t ticksExecuted = 0;
    std::uint64_t cyclesExecuted = 0;
    std::uint64_t cyclesFastForwarded = 0;
};

inline void
Ticked::requestWake()
{
    if (sim_ != nullptr)
        sim_->wake(this);
}

inline void
Ticked::sleepUntil(Tick wakeAt)
{
    if (sim_ != nullptr)
        sim_->sleepRequest(this, wakeAt);
}

inline void
Ticked::sleepOnWake()
{
    if (sim_ != nullptr)
        sim_->sleepRequest(this, Simulator::kNoWakeTick);
}

inline void
Simulator::wake(Ticked* t)
{
    if (!fastForward_)
        return;
    t->sleepPending_ = false;
    if (!t->sleeping_)
        return;
    if (sharded_) {
        wakeShardedSlow(t);
        return;
    }
    // The recorder hook sits below the repeated-wake early-out, so
    // the hot path (waking an already-awake component) never pays it.
    if (recorder_ != nullptr)
        recorder_->record(now_, obs::FlightRecorder::Kind::Wake,
                          &t->name_);
    t->sleeping_ = false;
    const std::uint32_t idx = t->simIndex_;
    active_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    ++activeCount_;
    // Mid-walk wakes ahead of the cursor tick this cycle (matching
    // direct intra-cycle calls); wakes at or behind it — including
    // every wake from the commit phase — tick next cycle (matching
    // channel commit visibility).
    if (walking_ && idx > walkPos_)
        pending_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
}

inline void
Simulator::sleepRequest(Ticked* t, Tick wakeAt)
{
    if (!fastForward_)
        return;
    t->sleepPending_ = true;
    t->sleepAt_ = wakeAt;
}

} // namespace ts

#endif // TS_SIM_SIMULATOR_HH
