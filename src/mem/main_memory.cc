#include "mem/main_memory.hh"

#include "sim/logging.hh"
#include "sim/stats.hh"
#include "trace/trace.hh"

namespace ts
{

MainMemory::MainMemory(Simulator& sim, const MainMemoryConfig& cfg,
                       Channel<MemReq>& reqIn, Channel<MemResp>& respOut)
    : Ticked("main_memory"), sim_(sim), cfg_(cfg), reqIn_(reqIn),
      respOut_(respOut), bankFreeAt_(cfg.numBanks, 0)
{
    if (cfg_.numBanks == 0 || cfg_.issueWidth == 0)
        fatal("main memory needs at least one bank and issue slot");
    // Sleep when fully drained; woken by request-channel commits.
    // In-flight reads need no ticks (responses are pure events).
    reqIn_.addObserver(this);
}

std::uint32_t
MainMemory::bankOf(Addr lineAddr) const
{
    return static_cast<std::uint32_t>((lineAddr / lineBytes) %
                                      cfg_.numBanks);
}

void
MainMemory::tick(Tick now)
{
    // Accept new requests into the pending queue.
    while (!reqIn_.empty() && pending_.size() < cfg_.queueCapacity)
        pending_.push_back(Pending{reqIn_.pop(), now});
    if (trace::on() && pending_.size() != tracedPending_) {
        tracedPending_ = pending_.size();
        trace::active()->counter(
            "dram.queue", "pending",
            static_cast<double>(tracedPending_));
    }

    // Issue up to issueWidth requests whose banks are free.  Requests
    // may issue out of order across banks (FR-FCFS-like), but stay
    // in order within a bank because the queue is scanned front to
    // back and a bank accepts one issue per scan.
    std::uint32_t issued = 0;
    for (auto it = pending_.begin();
         it != pending_.end() && issued < cfg_.issueWidth;) {
        const std::uint32_t bank = bankOf(it->req.lineAddr);
        if (bankFreeAt_[bank] > now) {
            ++bankConflictStalls_;
            ++it;
            continue;
        }
        bankFreeAt_[bank] = now + cfg_.bankOccupancy;
        ++issued;
        statSample("dram.queueWait",
                   static_cast<double>(now - it->enqueuedAt));
        if (trace::on()) {
            auto* t = trace::active();
            if (now > it->enqueuedAt) {
                t->complete(t->track("dram.queue"), it->enqueuedAt,
                            now - it->enqueuedAt, "qwait",
                            trace::args("line", it->req.lineAddr));
            }
            t->complete(
                t->track("dram.bank" + std::to_string(bank)), now,
                it->req.write ? cfg_.bankOccupancy
                              : cfg_.serviceLatency,
                it->req.write ? "write" : "read",
                trace::args("line", it->req.lineAddr, "src",
                            it->req.srcNode));
        }
        if (it->req.write) {
            ++linesWritten_;
        } else {
            ++linesRead_;
            ++inflight_;
            MemResp resp{it->req.lineAddr, it->req.srcNode,
                         it->req.multicastMask, it->req.tag};
            sim_.schedule(cfg_.serviceLatency, [this, resp]() {
                if (respOut_.push(resp)) {
                    --inflight_;
                } else {
                    // Response path back-pressured: retry next cycle.
                    retryResponse(resp);
                }
            });
        }
        it = pending_.erase(it);
    }

    // A non-empty pending queue must keep ticking: the per-scan
    // bankConflictStalls_ accounting depends on every cycle running.
    if (reqIn_.empty() && pending_.empty())
        sleepOnWake();
}

void
MainMemory::retryResponse(const MemResp& resp)
{
    sim_.schedule(1, [this, resp]() {
        if (respOut_.push(resp))
            --inflight_;
        else
            retryResponse(resp);
    });
}

bool
MainMemory::busy() const
{
    return !pending_.empty() || inflight_ > 0;
}

void
MainMemory::reportStats(StatSet& stats) const
{
    stats.set("mem.linesRead", static_cast<double>(linesRead_));
    stats.set("mem.linesWritten", static_cast<double>(linesWritten_));
    stats.set("mem.bankConflictStalls",
              static_cast<double>(bankConflictStalls_));
}

std::unique_ptr<ComponentSnap>
MainMemory::saveState() const
{
    auto s = std::make_unique<Snap>();
    s->pending = pending_;
    s->bankFreeAt = bankFreeAt_;
    s->tracedPending = tracedPending_;
    s->linesRead = linesRead_;
    s->linesWritten = linesWritten_;
    s->bankConflictStalls = bankConflictStalls_;
    s->inflight = inflight_;
    return s;
}

void
MainMemory::restoreState(const ComponentSnap& snap)
{
    const Snap& s = snapCast<Snap>(snap);
    pending_ = s.pending;
    bankFreeAt_ = s.bankFreeAt;
    tracedPending_ = s.tracedPending;
    linesRead_ = s.linesRead;
    linesWritten_ = s.linesWritten;
    bankConflictStalls_ = s.bankConflictStalls;
    inflight_ = s.inflight;
}

} // namespace ts
