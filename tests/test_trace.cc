/**
 * @file
 * Unit tests for the tracing subsystem: span nesting, counter tracks,
 * JSON well-formedness (the emitted file is parsed back with a small
 * JSON reader), disabled-tracer behaviour, and an end-to-end traced
 * accelerator run whose cycle count must be bit-identical to the
 * untraced run and whose cycle-accounting buckets must sum to the
 * total cycle count on every lane.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "accel/delta.hh"
#include "driver/options.hh"
#include "trace/accounting.hh"
#include "trace/trace.hh"

namespace ts
{
namespace
{

// ---------------------------------------------------------------------
// A minimal JSON reader, just enough to validate and inspect traces.
// ---------------------------------------------------------------------

struct Json
{
    enum class Kind { Null, Bool, Num, Str, Arr, Obj };
    Kind kind = Kind::Null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<Json> arr;
    std::map<std::string, Json> obj;

    bool has(const std::string& key) const { return obj.count(key) != 0; }
    const Json& at(const std::string& key) const { return obj.at(key); }
};

class JsonReader
{
  public:
    explicit JsonReader(std::string text) : s_(std::move(text)) {}

    bool
    parse(Json& out)
    {
        skip();
        if (!value(out))
            return false;
        skip();
        return pos_ == s_.size();
    }

  private:
    bool
    value(Json& out)
    {
        if (pos_ >= s_.size())
            return false;
        switch (s_[pos_]) {
          case '{': return object(out);
          case '[': return array(out);
          case '"': out.kind = Json::Kind::Str; return string(out.str);
          case 't': out.kind = Json::Kind::Bool; out.b = true;
                    return literal("true");
          case 'f': out.kind = Json::Kind::Bool; out.b = false;
                    return literal("false");
          case 'n': out.kind = Json::Kind::Null; return literal("null");
          default: return number(out);
        }
    }

    bool
    object(Json& out)
    {
        out.kind = Json::Kind::Obj;
        ++pos_; // '{'
        skip();
        if (peek('}'))
            return true;
        for (;;) {
            std::string key;
            skip();
            if (pos_ >= s_.size() || s_[pos_] != '"' || !string(key))
                return false;
            skip();
            if (pos_ >= s_.size() || s_[pos_++] != ':')
                return false;
            skip();
            Json v;
            if (!value(v))
                return false;
            out.obj.emplace(std::move(key), std::move(v));
            skip();
            if (peek('}'))
                return true;
            if (pos_ >= s_.size() || s_[pos_++] != ',')
                return false;
        }
    }

    bool
    array(Json& out)
    {
        out.kind = Json::Kind::Arr;
        ++pos_; // '['
        skip();
        if (peek(']'))
            return true;
        for (;;) {
            skip();
            Json v;
            if (!value(v))
                return false;
            out.arr.push_back(std::move(v));
            skip();
            if (peek(']'))
                return true;
            if (pos_ >= s_.size() || s_[pos_++] != ',')
                return false;
        }
    }

    bool
    string(std::string& out)
    {
        ++pos_; // opening quote
        while (pos_ < s_.size()) {
            const char c = s_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= s_.size())
                    return false;
                const char e = s_[pos_++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'u':
                    if (pos_ + 4 > s_.size())
                        return false;
                    pos_ += 4;
                    out += '?';
                    break;
                  default: return false;
                }
            } else {
                out += c;
            }
        }
        return false;
    }

    bool
    number(Json& out)
    {
        const char* start = s_.c_str() + pos_;
        char* end = nullptr;
        out.num = std::strtod(start, &end);
        if (end == start)
            return false;
        out.kind = Json::Kind::Num;
        pos_ += static_cast<std::size_t>(end - start);
        return true;
    }

    bool
    literal(const char* lit)
    {
        const std::size_t n = std::string(lit).size();
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    peek(char c)
    {
        if (pos_ < s_.size() && s_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    skip()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
                s_[pos_] == '\r')) {
            ++pos_;
        }
    }

    std::string s_;
    std::size_t pos_ = 0;
};

std::string
slurp(const std::string& path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Parse a trace file and return its traceEvents array. */
std::vector<Json>
loadEvents(const std::string& path)
{
    Json root;
    JsonReader reader(slurp(path));
    EXPECT_TRUE(reader.parse(root)) << path << " is not valid JSON";
    EXPECT_EQ(root.kind, Json::Kind::Obj);
    EXPECT_TRUE(root.has("traceEvents"));
    return root.at("traceEvents").arr;
}

std::string
tmpPath(const char* name)
{
    return testing::TempDir() + name;
}

// ---------------------------------------------------------------------
// Tracer unit tests.
// ---------------------------------------------------------------------

TEST(Trace, DisabledTracerEmitsNothing)
{
    const std::string path = tmpPath("ts_trace_disabled.json");
    std::remove(path.c_str());
    {
        trace::TracerConfig cfg;
        cfg.path = path; // enabled stays false
        trace::Tracer t(cfg);
        EXPECT_FALSE(t.enabled());

        // A disabled tracer never becomes the active sink.
        trace::Tracer::setActive(&t);
        EXPECT_FALSE(trace::on());

        t.begin(t.track("lane0"), "task");
        t.end(t.track("lane0"));
        t.counter("q", "depth", 3);
        t.finish();
        EXPECT_EQ(t.events(), 0u);
    }
    std::ifstream in(path);
    EXPECT_FALSE(in.good()) << "disabled tracer must not create a file";
    EXPECT_FALSE(trace::on());
}

TEST(Trace, ActivationFollowsEnabledTracerOnly)
{
    trace::TracerConfig cfg;
    cfg.enabled = true;
    cfg.path = tmpPath("ts_trace_active.json");
    {
        trace::Tracer t(cfg);
        ASSERT_TRUE(t.enabled());
        trace::Tracer::setActive(&t);
        EXPECT_TRUE(trace::on());
        EXPECT_EQ(trace::active(), &t);
        trace::Tracer::setActive(nullptr);
        EXPECT_FALSE(trace::on());
        trace::Tracer::setActive(&t);
        EXPECT_TRUE(trace::on());
        // Destruction deactivates; the global must not dangle.
    }
    EXPECT_FALSE(trace::on());
}

TEST(Trace, ArgsFormatsKeyValuePairs)
{
    EXPECT_EQ(trace::args(), "");
    EXPECT_EQ(trace::args("uid", 3), "\"uid\":3");
    EXPECT_EQ(trace::args("uid", 3, "lane", 1), "\"uid\":3,\"lane\":1");
    EXPECT_EQ(trace::args("kind", "read"), "\"kind\":\"read\"");
    const std::uint8_t small = 7;
    EXPECT_EQ(trace::args("n", small), "\"n\":7")
        << "char-sized integers must print as numbers";
}

TEST(Trace, SpansNestAndJsonIsWellFormed)
{
    const std::string path = tmpPath("ts_trace_spans.json");
    trace::TracerConfig cfg;
    cfg.enabled = true;
    cfg.path = path;
    cfg.processName = "unit \"quoted\"";

    trace::Tracer t(cfg);
    trace::Tracer::setActive(&t);
    const trace::TrackId lane = t.track("lane0.tu");
    const trace::TrackId other = t.track("lane1.tu");

    t.setNow(10);
    t.begin(lane, "outer", trace::args("uid", 1));
    t.setNow(12);
    t.begin(lane, "inner");
    t.begin(other, "unrelated");
    t.setNow(20);
    t.end(lane); // inner
    t.setNow(25);
    t.end(lane); // outer
    t.end(other);
    t.complete(lane, 30, 5, "fixed", trace::args("line", 64));
    t.instant(lane, "blip");
    const std::uint64_t emitted = t.events();
    t.finish();
    trace::Tracer::setActive(nullptr);

    const std::vector<Json> events = loadEvents(path);
    ASSERT_EQ(events.size(), emitted);

    // Replay B/E events per track: they must balance like a stack,
    // with non-decreasing timestamps.
    std::map<double, std::vector<std::string>> open;
    double lastTs = 0.0;
    for (const Json& e : events) {
        const std::string ph = e.at("ph").str;
        if (ph == "M")
            continue;
        const double tid = e.at("tid").num;
        const double ts = e.at("ts").num;
        // "X" events carry a retroactive start time; only live-emitted
        // events are required to be monotone.
        if (ph == "B" || ph == "E") {
            EXPECT_GE(ts, lastTs) << "timestamps must not go backwards";
            lastTs = ts;
        }
        if (ph == "B") {
            open[tid].push_back(e.at("name").str);
        } else if (ph == "E") {
            ASSERT_FALSE(open[tid].empty()) << "E without matching B";
            open[tid].pop_back();
        }
    }
    for (const auto& [tid, stack] : open)
        EXPECT_TRUE(stack.empty()) << "unclosed span on track " << tid;

    // The two explicit tracks carry thread_name metadata.
    std::vector<std::string> names;
    for (const Json& e : events) {
        if (e.at("ph").str == "M" && e.at("name").str == "thread_name")
            names.push_back(e.at("args").at("name").str);
    }
    EXPECT_NE(std::find(names.begin(), names.end(), "lane0.tu"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "lane1.tu"),
              names.end());

    // The complete event keeps its duration; the instant its scope.
    bool sawComplete = false, sawInstant = false;
    for (const Json& e : events) {
        if (e.at("ph").str == "X") {
            sawComplete = true;
            EXPECT_EQ(e.at("ts").num, 30.0);
            EXPECT_EQ(e.at("dur").num, 5.0);
            EXPECT_EQ(e.at("args").at("line").num, 64.0);
        }
        if (e.at("ph").str == "i") {
            sawInstant = true;
            EXPECT_EQ(e.at("s").str, "t");
        }
    }
    EXPECT_TRUE(sawComplete);
    EXPECT_TRUE(sawInstant);
}

TEST(Trace, CounterSeriesShareATrack)
{
    const std::string path = tmpPath("ts_trace_counters.json");
    trace::TracerConfig cfg;
    cfg.enabled = true;
    cfg.path = path;

    trace::Tracer t(cfg);
    t.setNow(1);
    t.counter("readyQ", "depth", 4);
    t.setNow(2);
    t.counter("readyQ", "depth", 2);
    t.counter("mshr", "inflight", 1.5);
    t.finish();

    const std::vector<Json> events = loadEvents(path);
    std::vector<double> readyDepths;
    bool sawFractional = false;
    for (const Json& e : events) {
        if (e.at("ph").str != "C")
            continue;
        if (e.at("name").str == "readyQ")
            readyDepths.push_back(e.at("args").at("depth").num);
        if (e.at("name").str == "mshr") {
            sawFractional = true;
            EXPECT_DOUBLE_EQ(e.at("args").at("inflight").num, 1.5);
        }
    }
    ASSERT_EQ(readyDepths.size(), 2u);
    EXPECT_EQ(readyDepths[0], 4.0);
    EXPECT_EQ(readyDepths[1], 2.0);
    EXPECT_TRUE(sawFractional);
}

TEST(Trace, TrackIdsAreStableAndOrdered)
{
    trace::TracerConfig cfg;
    cfg.enabled = true;
    cfg.path = tmpPath("ts_trace_tracks.json");
    trace::Tracer t(cfg);
    const trace::TrackId a = t.track("alpha");
    const trace::TrackId b = t.track("beta");
    EXPECT_NE(a, b);
    EXPECT_LT(a, b) << "creation order fixes sort order";
    EXPECT_EQ(t.track("alpha"), a) << "lookup must be stable";
    t.finish();
}

TEST(Trace, EnvFallbackSuffixesLaterInstances)
{
    // The TS_TRACE fallback now lives in the options layer — the
    // trace subsystem itself never reads the environment.
    ASSERT_EQ(::setenv("TS_TRACE", "/tmp/ts_env_trace.json", 1), 0);
    const driver::RunOptions opt = driver::RunOptions::fromEnv();
    ::unsetenv("TS_TRACE");
    EXPECT_EQ(opt.tracePath, "/tmp/ts_env_trace.json");

    const trace::TracerConfig first =
        driver::nextTraceConfig(opt.tracePath);
    const trace::TracerConfig second =
        driver::nextTraceConfig(opt.tracePath);

    EXPECT_TRUE(first.enabled);
    EXPECT_TRUE(second.enabled);
    EXPECT_NE(first.path, second.path)
        << "per-process instances must not overwrite each other";
    EXPECT_EQ(first.path.rfind(".json"), first.path.size() - 5);
    EXPECT_EQ(second.path.rfind(".json"), second.path.size() - 5);

    const trace::TracerConfig off = driver::nextTraceConfig("");
    EXPECT_FALSE(off.enabled) << "an empty path must disable tracing";

    const driver::RunOptions unset = driver::RunOptions::fromEnv();
    EXPECT_TRUE(unset.tracePath.empty())
        << "unset env must disable tracing";
}

// ---------------------------------------------------------------------
// End-to-end: a traced accelerator run.
// ---------------------------------------------------------------------

/** Run the quickstart-style scale workload; returns final stats. */
StatSet
runScaleWorkload(DeltaConfig cfg)
{
    Delta delta(cfg);
    MemImage& img = delta.image();

    auto dfg = std::make_unique<Dfg>("scale");
    const auto x = dfg->addInput();
    const auto m = dfg->add(Op::Mul, Operand::ref(x), Operand::immI(3));
    const auto a = dfg->add(Op::Add, Operand::ref(m), Operand::immI(7));
    dfg->addOutput(a);
    const TaskTypeId scale =
        delta.registry().addDfgType("scale", std::move(dfg));

    const std::size_t n = 2048, chunk = 256;
    const Addr in = img.allocWords(n);
    const Addr out = img.allocWords(n);
    for (std::size_t i = 0; i < n; ++i)
        img.writeInt(in + i * wordBytes, static_cast<std::int64_t>(i));

    TaskGraph graph;
    for (std::size_t c = 0; c < n; c += chunk) {
        WriteDesc dst;
        dst.base = out + c * wordBytes;
        graph.addTask(scale,
                      {StreamDesc::linear(Space::Dram,
                                          in + c * wordBytes, chunk)},
                      {dst});
    }

    StatSet stats = delta.run(graph);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(img.readInt(out + i * wordBytes),
                  3 * static_cast<std::int64_t>(i) + 7);
    }
    return stats;
}

TEST(TraceEndToEnd, TracedRunMatchesUntracedAndCoversAllLayers)
{
    const std::string path = tmpPath("ts_trace_e2e.json");

    const StatSet plain = runScaleWorkload(DeltaConfig::delta(4));

    DeltaConfig traced = DeltaConfig::delta(4);
    traced.trace.enabled = true;
    traced.trace.path = path;
    const StatSet stats = runScaleWorkload(traced);

    // Tracing must not perturb the simulation.
    EXPECT_EQ(stats.get("delta.cycles"), plain.get("delta.cycles"));
    EXPECT_EQ(stats.get("noc.wordHops"), plain.get("noc.wordHops"));
    EXPECT_GT(stats.get("trace.events"), 0.0);

    // Every instrumented layer shows up as a named track.
    const std::vector<Json> events = loadEvents(path);
    std::vector<std::string> tracks;
    for (const Json& e : events) {
        if (e.at("ph").str == "M" && e.at("name").str == "thread_name")
            tracks.push_back(e.at("args").at("name").str);
    }
    auto hasTrack = [&](const std::string& name) {
        return std::find(tracks.begin(), tracks.end(), name) !=
               tracks.end();
    };
    EXPECT_TRUE(hasTrack("lane0.tu")) << "lane task spans";
    EXPECT_TRUE(hasTrack("lane0.tu.state")) << "cycle-class spans";
    EXPECT_TRUE(hasTrack("dispatcher")) << "dispatch decisions";
    EXPECT_TRUE(hasTrack("noc.inject")) << "packet injections";
    EXPECT_TRUE(hasTrack("dram.bank0")) << "memory accesses";

    // Task spans carry the task-type name and uid args.
    bool sawTaskSpan = false;
    for (const Json& e : events) {
        if (e.at("ph").str == "B" && e.at("name").str == "scale" &&
            e.has("args") && e.at("args").has("uid")) {
            sawTaskSpan = true;
            break;
        }
    }
    EXPECT_TRUE(sawTaskSpan);
}

TEST(TraceEndToEnd, CycleAccountingBucketsSumToTotal)
{
    const StatSet stats = runScaleWorkload(DeltaConfig::delta(4));
    const double cycles = stats.get("delta.cycles");
    ASSERT_GT(cycles, 0.0);

    for (int lane = 0; lane < 4; ++lane) {
        const std::string prefix =
            "lane" + std::to_string(lane) + ".tu.cycles.";
        double sum = 0.0;
        for (std::size_t c = 0; c < kNumCycleClasses; ++c) {
            sum += stats.get(prefix +
                             cycleClassName(static_cast<CycleClass>(c)));
        }
        EXPECT_EQ(sum, cycles)
            << "lane " << lane << " buckets must cover every cycle";
    }

    // The aggregate fractions cover the whole lane-cycle area.
    double frac = 0.0;
    for (std::size_t c = 0; c < kNumCycleClasses; ++c) {
        frac += stats.get(std::string("delta.accounting.frac.") +
                          cycleClassName(static_cast<CycleClass>(c)));
    }
    EXPECT_NEAR(frac, 1.0, 1e-9);
    EXPECT_GT(stats.get("delta.accounting.busy"), 0.0);
}

TEST(TraceEndToEnd, StatSetDumpJsonParsesBack)
{
    const StatSet stats = runScaleWorkload(DeltaConfig::delta(2));
    std::ostringstream os;
    stats.dumpJson(os);

    Json root;
    JsonReader reader(os.str());
    ASSERT_TRUE(reader.parse(root)) << "dumpJson must emit valid JSON";
    ASSERT_EQ(root.kind, Json::Kind::Obj);
    EXPECT_EQ(root.obj.size(), stats.size());
    EXPECT_EQ(root.at("delta.cycles").num, stats.get("delta.cycles"));
}

} // namespace
} // namespace ts
