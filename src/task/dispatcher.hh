/**
 * @file
 * The hardware task dispatcher: TaskStream's central contribution.
 *
 * The dispatcher tracks dependences, maintains the ready set, and
 * maps tasks to lanes.  Because dependences are *annotated*, it can
 * recover program structure that task decomposition destroyed:
 *
 *  - Work-aware load balancing: stream arguments give a one-adder
 *    estimate of each task's work; lanes are chosen by least
 *    outstanding estimated work instead of task count or static
 *    ownership.
 *  - Pipelined dependences: a ready task's forward closure over
 *    Pipeline edges is co-dispatched atomically; producer output
 *    streams are forwarded chunk-by-chunk to consumer lanes, which
 *    begin executing as data arrives.
 *  - Shared-read multicast: tasks annotated as reading the same range
 *    are dispatched together; the range is fetched from DRAM once and
 *    multicast into every subscriber lane's scratchpad.
 *
 * The static-parallel baseline is this same dispatcher with policy
 * Static and both recovery mechanisms disabled.
 */

#ifndef TS_TASK_DISPATCHER_HH
#define TS_TASK_DISPATCHER_HH

#include <deque>
#include <map>
#include <optional>
#include <string>

#include "noc/noc.hh"
#include "task/messages.hh"
#include "task/task_graph.hh"

namespace ts
{

/** Lane-selection policies. */
enum class SchedPolicy : std::uint8_t
{
    Static,   ///< owner-compute: lane = uid % lanes (baseline)
    DynCount, ///< least queued task count
    WorkAware, ///< least outstanding estimated work (TaskStream)
    /** Ahead-of-time spatial plan: tasks pin to mapper-assigned
     *  lanes; producer outputs stream lane-to-lane into consumer
     *  landing zones instead of round-tripping through DRAM. */
    Spatial
};

/** Human-readable policy name. */
const char* schedPolicyName(SchedPolicy p);

/** Parse a policy name ("static", "dyncount", "workaware",
 *  "spatial"); returns false on unknown names. */
bool schedPolicyFromName(const std::string& s, SchedPolicy& out);

/** Dispatcher configuration. */
struct DispatcherConfig
{
    SchedPolicy policy = SchedPolicy::WorkAware;
    StealPolicy steal = StealPolicy::None;
    bool enablePipeline = true;
    bool enableMulticast = true;
    /** Bulk-synchronous execution: a barrier between dependence
     *  levels, as in a classic static-parallel design (all of level
     *  L completes before level L+1 may start). */
    bool bulkSynchronous = false;
    std::uint32_t laneQueueCap = 2;  ///< per-lane queue (incl. running)
    std::uint32_t sendPerCycle = 2;  ///< packets injected per cycle
    /** Upper bound on how long a ready task with soon-joinable
     *  pipeline consumers is held back so whole pipeline regions
     *  co-dispatch (holding is free: the blockers are running on the
     *  lanes anyway). */
    Tick pipelineHoldCycles = 65536;
    /** Even with idle lanes, a ready task with pending pipeline
     *  consumers waits this long so near-simultaneous siblings can
     *  coalesce into one co-dispatched region. */
    Tick pipelineGraceCycles = 768;
    std::uint64_t spmLandingWords = 1u << 16; ///< shared-copy budget

    /** Spatial: per-lane landing-buffer budget (words).  A forwarded
     *  group whose buffer does not fit spills permanently to the
     *  DRAM round-trip. */
    std::uint64_t spatialBufferWords = 1u << 15;
    /** Spatial: a spawned task escapes its inherited lane when that
     *  lane's outstanding work exceeds this multiple of the mean. */
    double spatialRemapFactor = 1.5;

    std::uint32_t selfNode = 0;
    std::uint32_t memNode = 0;
    std::vector<std::uint32_t> laneNodes;
};

/** The dispatcher hardware unit (one NoC node). */
class Dispatcher : public Ticked
{
  public:
    Dispatcher(Noc& noc, const MemImage& img,
               const TaskTypeRegistry& registry,
               const DispatcherConfig& cfg);

    /** Load a whole task graph (host enqueue). */
    void loadGraph(const TaskGraph& graph);

    /**
     * Install the AOT spatial plan (per-uid lanes) before loadGraph.
     * Under SchedPolicy::Spatial, tasks pin to their planned lane;
     * uids beyond the plan (or planned -1) fall back to uid % lanes.
     */
    void setSpatialPlan(std::vector<std::int32_t> lanes)
    {
        plannedLane_ = std::move(lanes);
    }

    /** All loaded *and dynamically spawned* tasks have completed. */
    bool allComplete() const
    {
        return completed_ == states_.size();
    }

    void tick(Tick now) override;
    bool busy() const override;
    void reportStats(StatSet& stats) const override;

    // Experiment-facing counters.
    std::uint64_t pipesActivated() const { return pipesActivated_; }
    std::uint64_t pipesDegraded() const { return pipesDegraded_; }
    std::uint64_t groupsFired() const { return groupsFired_; }
    double laneWork(std::uint32_t lane) const
    {
        return laneWork_.at(lane);
    }

    // -- Mechanism attribution (see delta.attrib.* in Delta::run) --

    /** Measured per-lane service cycles under the actual assignment;
     *  max over lanes is the compute-critical lane. */
    double actualMaxServiceCycles() const;

    /** Max per-lane service cycles under the shadow static
     *  owner-compute assignment (lane = uid % lanes) fed with the
     *  same measured service times. */
    double shadowStaticMaxServiceCycles() const;

    /**
     * Cycles of load imbalance the dispatch policy avoided relative
     * to the shadow static assignment (clamped at zero).
     */
    double imbalanceCyclesAvoided() const;

    /** Producer/consumer execution overlap enabled by activated
     *  pipeline edges (cycles, summed over edges). */
    double pipeOverlapCycles() const { return pipeOverlapCycles_; }

    /** DRAM lines shared-fill multicast actually requested. */
    std::uint64_t fillLinesRequested() const
    {
        return fillLinesRequested_;
    }

    /** DRAM lines the same shared reads would have cost with one
     *  unicast fetch per member (replay estimate). */
    std::uint64_t mcastUnicastLinesEquiv() const
    {
        return mcastUnicastLinesEquiv_;
    }

    /** Measured execution spans of all completed tasks (for
     *  TaskGraph::criticalPath). */
    std::vector<TaskSpan> taskSpans() const;

    /** Tasks currently ready but not yet issued to a lane (timeline
     *  probe). */
    std::size_t readyQueueDepth() const { return readyQ_.size(); }

    // -- Dynamic-spawn and steal attribution --

    /** Tasks submitted by running tasks (SpawnMsg). */
    std::uint64_t tasksSpawned() const { return tasksSpawned_; }

    /** Tasks that migrated lanes via the steal protocol. */
    std::uint64_t tasksStolen() const { return tasksStolen_; }

    /** NoC hops the stolen tasks traveled victim -> thief. */
    std::uint64_t stealHopsTraveled() const { return stealHops_; }

    // -- Spatial-mapping attribution --

    /** Forwarding decisions made (producer output -> consumer
     *  landing zone). */
    std::uint64_t spatialForwards() const { return spatialForwards_; }

    /** Landing groups that fell back to the DRAM round-trip because
     *  the consumer lane's buffer budget was exhausted. */
    std::uint64_t spatialSpills() const { return spatialSpills_; }

    /** Spawned tasks that escaped their inherited lane (imbalance
     *  remap). */
    std::uint64_t spatialRemaps() const { return spatialRemaps_; }

    /** Landing groups ever allocated buffer space. */
    std::uint64_t spatialGroups() const
    {
        return spatialGroupsAllocated_;
    }

    /** High-water mark of any one lane's landing-buffer occupancy. */
    std::uint64_t spatialBufPeakWords() const
    {
        return spatialBufPeak_;
    }

    /** Max per-lane service cycles charged to the *dispatch-time*
     *  lane assignment (what the run would have cost had nothing
     *  been stolen), analogous to shadowStaticMaxServiceCycles. */
    double stealShadowMaxServiceCycles() const;

    /**
     * Imbalance cycles the steal protocol recovered: the gap between
     * the dispatch-time shadow max-service and the post-steal actual
     * max-service (clamped at zero).
     */
    double stealImbalanceCyclesRecovered() const;

    std::unique_ptr<ComponentSnap> saveState() const override;
    void restoreState(const ComponentSnap& snap) override;

  private:
    struct Snap;

    struct EdgeState
    {
        DepEdge e;
        bool activated = false;
        bool resolved = false; ///< activation decision made
    };

    struct TaskState
    {
        /** Owned by value: spawned tasks have no host TaskGraph
         *  backing, so the dispatcher keeps its own copy. */
        TaskInstance inst;
        std::uint32_t remDeps = 0;
        bool dispatched = false;
        bool completed = false;
        std::int32_t lane = -1;
        std::int32_t origLane = -1; ///< dispatch-time lane (pre-steal)
        Tick readyAt = 0;
        bool started = false; ///< TaskStart seen
        Tick startAt = 0;     ///< cycle the lane began executing
        Tick endAt = 0;       ///< cycle TaskComplete arrived
        std::uint32_t level = 0; ///< longest path from the roots
        double workEst = 0;
        std::vector<std::size_t> inEdges;
        std::vector<std::size_t> outEdges;
    };

    struct GroupState
    {
        SharedGroup g;
        bool fired = false;
        std::uint64_t landingOffset = 0;
    };

    /**
     * One spatial landing group: a consumer input port receiving
     * forwarded producer streams.  Created at the *first* forwarding
     * producer's dispatch; the buffer-fit (spill) decision is made
     * once, then is permanent — which is what keeps spills
     * AOT-deterministic across host parallelism and sharding.
     */
    struct SpatialGroup
    {
        TaskId consumer = 0;
        std::uint8_t port = 0;
        std::int32_t lane = -1;       ///< consumer's pinned lane
        std::uint64_t bufWords = 0;   ///< lines-rounded port extent
        std::uint32_t expectedDones = 0; ///< forwarding producers
        bool spilled = false;
        bool allocated = false;
    };

    void processInbox(Tick now);
    void onComplete(const CompleteMsg& msg, Tick now);
    void onSpawn(const SpawnMsg& msg, Tick now);
    void onStealNotify(const StealNotifyMsg& msg, Tick now);
    /** Transfer queue/work bookkeeping of a stolen, not-yet-complete
     *  task from its current lane to @p toLane. */
    void applyStealMove(TaskId uid, std::uint32_t toLane);
    /** Panic if the not-yet-completed subgraph has a cycle. */
    void checkLiveAcyclic() const;
    bool tryDispatchHead(Tick now);
    std::vector<TaskId> pipelineClosure(TaskId root) const;
    std::optional<std::vector<TaskId>>
    tryJoinClosure(TaskId c, std::vector<TaskId> set,
                   unsigned depth) const;
    bool soonJoinable(TaskId c, unsigned depth) const;
    std::int32_t pickLane(TaskId id,
                          const std::vector<std::uint32_t>& extraLoad,
                          const std::vector<double>& extraWork) const;
    void enqueueDispatch(TaskId id, DispatchMsg msg);
    void fireGroup(std::uint32_t groupId);

    /** The lane uid will be pinned to under SchedPolicy::Spatial. */
    std::uint32_t spatialPlannedLane(TaskId id) const;
    /** Assign planned lanes to tasks spawned by @p spawner
     *  (inheritance plus the imbalance-remap escape hatch). */
    void spatialPlanSpawned(TaskId spawner, std::size_t base,
                            std::size_t count, std::int64_t heir);
    /** Producer-dispatch-time forwarding decisions: rewrite @p pm's
     *  outputs with spatial destinations / suppression. */
    void spatialResolveProducer(TaskId id, DispatchMsg& pm);
    /** Consumer-dispatch-time rewrites: landing-mode inputs plus the
     *  waitSpatial gate snapshot. */
    void spatialRewriteConsumer(TaskId id, DispatchMsg& m);
    /** Free @p uid's landing-buffer reservations on completion. */
    void spatialRelease(TaskId uid);

    Noc& noc_;
    const MemImage& img_;
    const TaskTypeRegistry& registry_;
    DispatcherConfig cfg_;

    std::vector<TaskState> states_;
    std::vector<EdgeState> edges_;
    std::vector<GroupState> groups_;
    std::deque<TaskId> readyQ_;
    std::deque<Packet> sendQ_;

    std::vector<std::uint32_t> laneQueued_;
    std::vector<double> laneWork_;
    std::vector<std::uint64_t> laneDispatched_;
    std::uint64_t landingBrk_ = 0;
    std::size_t completed_ = 0;
    std::uint32_t curLevel_ = 0;
    std::vector<std::uint32_t> levelRemaining_;

    /** Last ready-queue depth sampled into the trace. */
    std::size_t tracedReadyDepth_ = static_cast<std::size_t>(-1);

    std::uint64_t pipesActivated_ = 0;
    std::uint64_t pipesDegraded_ = 0;
    std::uint64_t groupsFired_ = 0;
    std::uint64_t groupMembersDegraded_ = 0;
    std::uint64_t fillLinesRequested_ = 0;

    /** Per-lane measured service cycles: actual assignment vs. the
     *  shadow static owner-compute assignment (attribution). */
    std::vector<double> actualService_;
    std::vector<double> shadowService_;
    /** Service charged to the dispatch-time lane (pre-steal shadow):
     *  what each lane would have served had nothing migrated. */
    std::vector<double> stealShadowService_;
    double pipeOverlapCycles_ = 0;
    std::uint64_t mcastUnicastLinesEquiv_ = 0;

    std::uint64_t tasksSpawned_ = 0;
    std::uint64_t tasksStolen_ = 0;
    std::uint64_t stealHops_ = 0;

    // -- Spatial-mapping state (SchedPolicy::Spatial only) --

    /** AOT plan: lane per uid; spawned tasks extend it at spawn. */
    std::vector<std::int32_t> plannedLane_;
    /** Landing groups keyed by (consumer uid << 3) | port — ordered,
     *  so a consumer's groups are a contiguous key range. */
    std::map<std::uint64_t, SpatialGroup> spatialGroups_;
    std::vector<std::uint64_t> spatialLaneBufUsed_;
    std::uint64_t spatialBufPeak_ = 0;
    std::uint64_t spatialForwards_ = 0;
    std::uint64_t spatialSpills_ = 0;
    std::uint64_t spatialRemaps_ = 0;
    std::uint64_t spatialGroupsAllocated_ = 0;
};

} // namespace ts

#endif // TS_TASK_DISPATCHER_HH
