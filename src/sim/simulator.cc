#include "sim/simulator.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <sstream>
#include <thread>

#include "obs/host_profiler.hh"
#include "sim/logging.hh"
#include "trace/trace.hh"

namespace ts
{

namespace
{

std::uint64_t
nsSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

/**
 * The shard whose tick/integrate phase is running on this thread, or
 * -1.  schedule() uses it to route ownerless events scheduled from a
 * component's tick to that component's shard queue.
 */
thread_local std::int32_t tlsShard = -1;

void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#endif
}

/**
 * Spin-then-yield until @p v reaches @p target.  The short spin keeps
 * the per-cycle barrier in the tens of nanoseconds when every shard
 * has a core; the yield fallback keeps oversubscribed hosts (and CI
 * runners) from burning a timeslice per phase.
 */
void
waitAtLeast(const std::atomic<std::uint64_t>& v, std::uint64_t target)
{
    int spins = 0;
    while (v.load(std::memory_order_acquire) < target) {
        if (++spins < 256)
            cpuRelax();
        else
            std::this_thread::yield();
    }
}

template <typename W>
void
heapPush(std::vector<W>& h, W w)
{
    h.push_back(w);
    std::push_heap(h.begin(), h.end(), std::greater<W>{});
}

template <typename W>
W
heapPop(std::vector<W>& h)
{
    std::pop_heap(h.begin(), h.end(), std::greater<W>{});
    const W w = h.back();
    h.pop_back();
    return w;
}

constexpr int kCmdTick = 1;
constexpr int kCmdIntegrate = 2;
constexpr int kCmdExit = 3;

} // namespace

/**
 * Everything one executor shard owns for a cycle: its component
 * slice, a private copy of the activity-core working state (bitmaps,
 * sleep heap, dirty list, live counter), its strong-event queue, the
 * boundary channels it consumes, and per-shard observability sinks.
 * Heap-allocated one per shard so shards never share cache lines.
 */
struct Simulator::ShardState
{
    /** Components of this shard, in ascending global index order, so
     *  each shard walks in the exact order the single-shard walk
     *  would visit them. */
    std::vector<Ticked*> comps;
    std::vector<std::uint64_t> active;
    std::vector<std::uint64_t> pending;
    std::uint32_t activeCount = 0;
    bool walking = false;
    std::uint32_t walkPos = 0;
    /** Timed wakes of this shard's sleepers (global indices). */
    std::vector<TimedWake> sleepHeap;
    /** Sleeping-but-busy components (global indices). */
    std::vector<std::uint32_t> sleepersBusy;
    /** Live counter for this shard's intra-shard channels. */
    std::int64_t liveChannels = 0;
    /** Intra-shard channels pushed this cycle. */
    std::vector<ChannelBase*> dirtyCh;
    /** Strong events owned by this shard's partitions; fired by the
     *  coordinator, serialized, in shard order. */
    EventQueue events;
    /** Boundary channels this shard consumes (integrate phase). */
    std::vector<ChannelBase*> consumedBoundary;
    /** Raised by any producer shard pushing a boundary channel we
     *  consume; read by the coordinator after the tick barrier. */
    alignas(64) std::atomic<std::uint8_t> inboundStaged{0};
    /** Raised by our own pops of consumed boundary channels. */
    std::uint8_t popWork = 0;
    /** Observers of channels committed by this shard that live on
     *  another shard.  Waking them here would race with their own
     *  shard's bookkeeping, so the coordinator applies these
     *  serially at the end of the cycle — the commit-phase wake
     *  already takes effect next cycle in the single-shard core, so
     *  the deferral changes nothing observable. */
    std::vector<Ticked*> crossWakes;
    /** Tick-phase statSample() sink, merged into the run StatSet in
     *  shard index order after the run. */
    StatSet stats;
    std::unique_ptr<obs::FlightRecorder> recorder;
    std::unique_ptr<obs::HostProfiler> profiler;
    std::vector<unsigned char> profClass;
    std::uint64_t ticksExecuted = 0;
    std::uint64_t wallNs = 0;
};

/**
 * The worker crew of one sharded run()/step(): shards 1..K-1 each get
 * a thread; the coordinator (caller's thread) executes shard 0 and
 * releases phases through per-worker epoch slots.  Spawned per run —
 * thread start-up is microseconds against runs that are milliseconds
 * and up — so no threads linger between runs or across snapshots.
 */
struct Simulator::ShardRuntime
{
    struct alignas(64) Slot
    {
        std::atomic<std::uint64_t> epoch{0};
        std::atomic<std::uint64_t> done{0};
        std::atomic<int> cmd{0};
    };
    std::vector<std::unique_ptr<Slot>> slots;
    std::vector<std::thread> threads;
    std::uint64_t phase = 0;
    std::atomic<bool> failed{false};
    std::mutex failMx;
    std::string failMsg;
};

Simulator::Simulator() = default;

Simulator::~Simulator()
{
    // The crew never outlives a run; nothing to join here.
    TS_ASSERT(rt_ == nullptr, "simulator destroyed mid-run");
}

std::unique_ptr<ComponentSnap>
Ticked::saveState() const
{
    fatal("component '", name_,
          "' does not implement saveState(); snapshot/fork requires "
          "every registered component to copy its mutable state");
}

void
Ticked::restoreState(const ComponentSnap&)
{
    fatal("component '", name_, "' does not implement restoreState()");
}

void
Simulator::add(Ticked* t)
{
    TS_ASSERT(t != nullptr);
    TS_ASSERT(t->sim_ == nullptr,
              "component registered with two simulators: ", t->name());
    TS_ASSERT(!sharded_, "component '", t->name(),
              "' registered after Simulator::finalize() built the "
              "shard state");
    t->sim_ = this;
    t->simIndex_ = static_cast<std::uint32_t>(ticked_.size());
    t->partition_ = currentPartition_;
    ticked_.push_back(t);
    const std::uint32_t idx = t->simIndex_;
    if ((idx >> 6) >= active_.size()) {
        active_.push_back(0);
        pending_.push_back(0);
    }
    active_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    ++activeCount_;
}

void
Simulator::setShards(std::uint32_t k)
{
    TS_ASSERT(k >= 1, "shard count must be at least 1");
    TS_ASSERT(!finalized_,
              "setShards after Simulator::finalize()");
    shards_ = k;
}

void
Simulator::addChannel(ChannelBase* c)
{
    addChannel(c, currentPartition_, currentPartition_);
}

void
Simulator::addChannel(ChannelBase* c, std::uint32_t producerPartition,
                      std::uint32_t consumerPartition)
{
    TS_ASSERT(c != nullptr);
    c->setEndpoints(producerPartition, consumerPartition);
    if (finalized_ && c->boundary()) {
        // The shard boundary lists are frozen; silently missing one
        // would corrupt the conservative synchronization, so this is
        // an API error even at --shards 1 (a config must be legal for
        // every shard count or none).
        fatal("cross-partition channel '", c->name(),
              "' (partition ", producerPartition, " -> ",
              consumerPartition,
              ") registered after Simulator::finalize(); declare "
              "boundary channels before finalization");
    }
    channels_.push_back(c);
    if (sharded_) {
        ShardState& sh = *shardState_[producerPartition % shards_];
        c->installHooks(&sh.liveChannels, &sh.dirtyCh);
        return;
    }
    c->installHooks(&liveChannels_, &dirtyCh_);
}

void
Simulator::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;
    if (shards_ <= 1)
        return;
    TS_ASSERT(!walking_, "finalize from inside the tick walk");
    TS_ASSERT(dirtyCh_.empty(), "finalize with uncommitted pushes");
    sharded_ = true;

    shardState_.clear();
    for (std::uint32_t s = 0; s < shards_; ++s)
        shardState_.push_back(std::make_unique<ShardState>());

    for (Ticked* t : ticked_) {
        t->shard_ = t->partition_ % shards_;
        ShardState& sh = *shardState_[t->shard_];
        t->shardIndex_ = static_cast<std::uint32_t>(sh.comps.size());
        sh.comps.push_back(t);
    }
    for (auto& shp : shardState_) {
        ShardState& sh = *shp;
        const std::size_t words = (sh.comps.size() + 63) / 64;
        sh.active.assign(words, 0);
        sh.pending.assign(words, 0);
        for (std::size_t i = 0; i < sh.comps.size(); ++i) {
            if (!sh.comps[i]->sleeping_) {
                sh.active[i >> 6] |= std::uint64_t{1} << (i & 63);
                ++sh.activeCount;
            }
        }
    }

    // Hand the global activity-core working state to the shards.
    while (!sleepHeap_.empty()) {
        const TimedWake w = heapPop(sleepHeap_);
        heapPush(shardState_[ticked_[w.idx]->shard_]->sleepHeap, w);
    }
    for (const std::uint32_t idx : sleepersBusy_)
        shardState_[ticked_[idx]->shard_]->sleepersBusy.push_back(idx);
    sleepersBusy_.clear();

    for (ChannelBase* c : channels_) {
        if (c->boundary()) {
            boundaryCh_.push_back(c);
            // Liveness of boundary channels is scanned at the
            // coordinator's serialized decision point; counters would
            // race.
            c->rebindHooks(nullptr, nullptr);
            ShardState& cs =
                *shardState_[c->consumerPartition() % shards_];
            cs.consumedBoundary.push_back(c);
            c->setShardFlags(&cs.inboundStaged, &cs.popWork);
        } else {
            ShardState& ps =
                *shardState_[c->producerPartition() % shards_];
            c->rebindHooks(&ps.liveChannels, &ps.dirtyCh);
        }
    }
    TS_ASSERT(liveChannels_ == 0,
              "channel liveness left behind on the global counter");
    bindShardObs();
}

void
Simulator::bindShardObs()
{
    if (!sharded_)
        return;
    for (auto& shp : shardState_) {
        ShardState& sh = *shp;
        if (recorder_ != nullptr) {
            if (sh.recorder == nullptr)
                sh.recorder = std::make_unique<obs::FlightRecorder>(
                    recorder_->capacity());
        } else {
            sh.recorder.reset();
        }
        sh.events.setRecorder(sh.recorder.get());
        if (profiler_ != nullptr) {
            if (sh.profiler == nullptr)
                sh.profiler = std::make_unique<obs::HostProfiler>();
            sh.profClass.clear();
            sh.profClass.reserve(sh.comps.size());
            for (const Ticked* t : sh.comps)
                sh.profClass.push_back(static_cast<unsigned char>(
                    obs::HostProfiler::tickBucketForName(t->name())));
        } else {
            sh.profiler.reset();
            sh.profClass.clear();
        }
    }
}

void
Simulator::schedule(Tick delay, EventQueue::Callback cb, Ticked* owner)
{
    TS_ASSERT(delay >= 1, "events must be scheduled at least 1 cycle out");
    if (sharded_) {
        // Route to the owning shard's queue so the coordinator fires
        // it in deterministic shard order; ownerless events stick to
        // the shard whose tick (or event chain) scheduled them.
        const std::int32_t s =
            owner != nullptr ? static_cast<std::int32_t>(owner->shard_)
            : tlsShard >= 0  ? tlsShard
                             : firingShard_;
        if (s >= 0) {
            shardState_[static_cast<std::uint32_t>(s)]->events.schedule(
                now_ + delay, std::move(cb), owner);
            return;
        }
    }
    events_.schedule(now_ + delay, std::move(cb), owner);
}

void
Simulator::scheduleWeak(Tick delay, EventQueue::Callback cb)
{
    TS_ASSERT(delay >= 1,
              "weak events must be scheduled at least 1 cycle out");
    events_.scheduleWeak(now_ + delay, std::move(cb));
}

void
Simulator::setFlightRecorder(obs::FlightRecorder* rec)
{
    recorder_ = rec;
    events_.setRecorder(rec);
    bindShardObs();
}

void
Simulator::setHostProfiler(obs::HostProfiler* prof)
{
    profiler_ = prof;
    profClass_.clear();
    if (prof != nullptr) {
        profClass_.reserve(ticked_.size());
        for (const Ticked* t : ticked_)
            profClass_.push_back(static_cast<unsigned char>(
                obs::HostProfiler::tickBucketForName(t->name())));
    }
    bindShardObs();
}

void
Simulator::applySleep(Ticked* t)
{
    t->sleepPending_ = false;
    t->sleeping_ = true;
    if (recorder_ != nullptr)
        recorder_->record(now_, obs::FlightRecorder::Kind::Sleep,
                          &t->name_,
                          t->sleepAt_ == kNoWakeTick
                              ? obs::FlightRecorder::kNoAux
                              : t->sleepAt_);
    const std::uint32_t idx = t->simIndex_;
    active_[idx >> 6] &= ~(std::uint64_t{1} << (idx & 63));
    --activeCount_;
    if (t->sleepAt_ != kNoWakeTick) {
        // Clamp: sleeping until a past/current cycle means "tick
        // again next cycle", never re-entry into the current one.
        const Tick at = t->sleepAt_ > now_ + 1 ? t->sleepAt_ : now_ + 1;
        // Wake-target dedup: skip the push when an entry at or before
        // this target is already queued — that entry wakes us no
        // later (spuriously at worst), and we re-decide then.
        if (at < t->queuedWakeAt_) {
            t->queuedWakeAt_ = at;
            heapPush(sleepHeap_, TimedWake{at, idx});
        }
    }
    if (!t->inBusyList_ && t->busy()) {
        t->inBusyList_ = true;
        sleepersBusy_.push_back(t->simIndex_);
    }
}

void
Simulator::applySleepSharded(ShardState& sh, Ticked* t)
{
    t->sleepPending_ = false;
    t->sleeping_ = true;
    if (sh.recorder != nullptr)
        sh.recorder->record(now_, obs::FlightRecorder::Kind::Sleep,
                            &t->name_,
                            t->sleepAt_ == kNoWakeTick
                                ? obs::FlightRecorder::kNoAux
                                : t->sleepAt_);
    const std::uint32_t lidx = t->shardIndex_;
    sh.active[lidx >> 6] &= ~(std::uint64_t{1} << (lidx & 63));
    --sh.activeCount;
    if (t->sleepAt_ != kNoWakeTick) {
        const Tick at = t->sleepAt_ > now_ + 1 ? t->sleepAt_ : now_ + 1;
        if (at < t->queuedWakeAt_) {
            t->queuedWakeAt_ = at;
            heapPush(sh.sleepHeap, TimedWake{at, t->simIndex_});
        }
    }
    if (!t->inBusyList_ && t->busy()) {
        t->inBusyList_ = true;
        sh.sleepersBusy.push_back(t->simIndex_);
    }
}

void
Simulator::wakeShardedSlow(Ticked* t)
{
    // Only the component's own shard phase or a serialized
    // coordinator phase may reach here (partition contract), so the
    // shard-local structures are single-writer.
    ShardState& sh = *shardState_[t->shard_];
    if (sh.recorder != nullptr)
        sh.recorder->record(now_, obs::FlightRecorder::Kind::Wake,
                            &t->name_);
    t->sleeping_ = false;
    const std::uint32_t lidx = t->shardIndex_;
    sh.active[lidx >> 6] |= std::uint64_t{1} << (lidx & 63);
    ++sh.activeCount;
    if (sh.walking && lidx > sh.walkPos)
        sh.pending[lidx >> 6] |= std::uint64_t{1} << (lidx & 63);
}

void
Simulator::wakeDueSleepers()
{
    while (!sleepHeap_.empty() && sleepHeap_.front().at <= now_) {
        const TimedWake w = heapPop(sleepHeap_);
        Ticked* t = ticked_[w.idx];
        // Release the dedup slot before the (possibly stale,
        // spurious-safe) wake so a re-sleep can queue a fresh target.
        if (w.at == t->queuedWakeAt_)
            t->queuedWakeAt_ = kNoWakeTick;
        wake(t);
    }
}

void
Simulator::wakeDueSleepersSharded()
{
    for (auto& shp : shardState_) {
        ShardState& sh = *shp;
        while (!sh.sleepHeap.empty() &&
               sh.sleepHeap.front().at <= now_) {
            const TimedWake w = heapPop(sh.sleepHeap);
            Ticked* t = ticked_[w.idx];
            if (w.at == t->queuedWakeAt_)
                t->queuedWakeAt_ = kNoWakeTick;
            wake(t);
        }
    }
}

bool
Simulator::maybeQuiescent()
{
    if (!events_.empty() || liveChannels_ != 0)
        return false;
    for (std::size_t w = 0; w < active_.size(); ++w) {
        for (std::uint64_t bits = active_[w]; bits != 0;
             bits &= bits - 1) {
            const std::size_t idx =
                (w << 6) + std::countr_zero(bits);
            if (ticked_[idx]->busy())
                return false;
        }
    }
    // Re-sample the busy-sleeper list: a sleeper whose busy() dropped
    // (e.g. via an event) or that has since woken is compacted away.
    std::size_t w = 0;
    for (std::size_t r = 0; r < sleepersBusy_.size(); ++r) {
        Ticked* t = ticked_[sleepersBusy_[r]];
        if (t->sleeping_ && t->busy())
            sleepersBusy_[w++] = sleepersBusy_[r];
        else
            t->inBusyList_ = false;
    }
    sleepersBusy_.resize(w);
    if (w != 0)
        return false;
    TS_ASSERT(quiescent(),
              "incremental quiescence disagrees with the full scan");
    return true;
}

bool
Simulator::maybeQuiescentSharded()
{
    if (!events_.empty())
        return false;
    for (const auto& shp : shardState_) {
        if (!shp->events.empty() || shp->liveChannels != 0)
            return false;
    }
    // Boundary channels track no live counter (their push/pop sides
    // live on different shards); scan them at this serialized point.
    for (const ChannelBase* c : boundaryCh_) {
        if (!c->quiescent())
            return false;
    }
    for (auto& shp : shardState_) {
        ShardState& sh = *shp;
        for (std::size_t w = 0; w < sh.active.size(); ++w) {
            for (std::uint64_t bits = sh.active[w]; bits != 0;
                 bits &= bits - 1) {
                const std::size_t lidx =
                    (w << 6) + std::countr_zero(bits);
                if (sh.comps[lidx]->busy())
                    return false;
            }
        }
    }
    for (auto& shp : shardState_) {
        ShardState& sh = *shp;
        std::size_t w = 0;
        for (std::size_t r = 0; r < sh.sleepersBusy.size(); ++r) {
            Ticked* t = ticked_[sh.sleepersBusy[r]];
            if (t->sleeping_ && t->busy())
                sh.sleepersBusy[w++] = sh.sleepersBusy[r];
            else
                t->inBusyList_ = false;
        }
        sh.sleepersBusy.resize(w);
        if (w != 0)
            return false;
    }
    TS_ASSERT(quiescent(),
              "incremental quiescence disagrees with the full scan");
    return true;
}

std::uint64_t
Simulator::totalActiveSharded() const
{
    std::uint64_t n = 0;
    for (const auto& shp : shardState_)
        n += shp->activeCount;
    return n;
}

Tick
Simulator::nextEventTickSharded() const
{
    Tick t = kNoWakeTick;
    if (!events_.empty())
        t = events_.nextTick();
    for (const auto& shp : shardState_) {
        if (!shp->events.empty() && shp->events.nextTick() < t)
            t = shp->events.nextTick();
    }
    return t;
}

void
Simulator::doCycleFast()
{
    if (trace::on())
        trace::active()->setNow(now_);
    events_.fireUpTo(now_);

    pending_ = active_;
    walking_ = true;
    for (std::size_t w = 0; w < pending_.size(); ++w) {
        while (pending_[w] != 0) {
            const std::uint32_t idx = static_cast<std::uint32_t>(
                (w << 6) + std::countr_zero(pending_[w]));
            pending_[w] &= pending_[w] - 1;
            walkPos_ = idx;
            Ticked* t = ticked_[idx];
            t->sleepPending_ = false;
            t->tick(now_);
            ++ticksExecuted_;
            if (t->sleepPending_)
                applySleep(t);
        }
    }
    walking_ = false;

    for (ChannelBase* c : dirtyCh_) {
        c->commit();
        if (c->anyVisible()) {
            for (Ticked* o : c->observers())
                wake(o);
        }
    }
    dirtyCh_.clear();

    ++now_;
    ++cyclesExecuted_;
}

void
Simulator::doCycleFastObs()
{
    if (trace::on())
        trace::active()->setNow(now_);
    if (profiler_ != nullptr) {
        const auto t0 = obs::HostProfiler::now();
        events_.fireUpTo(now_);
        profiler_->add(obs::HostProfiler::Events, t0,
                       obs::HostProfiler::now());
    } else {
        events_.fireUpTo(now_);
    }

    pending_ = active_;
    walking_ = true;
    for (std::size_t w = 0; w < pending_.size(); ++w) {
        while (pending_[w] != 0) {
            const std::uint32_t idx = static_cast<std::uint32_t>(
                (w << 6) + std::countr_zero(pending_[w]));
            pending_[w] &= pending_[w] - 1;
            walkPos_ = idx;
            Ticked* t = ticked_[idx];
            t->sleepPending_ = false;
            if (profiler_ != nullptr) {
                const auto t0 = obs::HostProfiler::now();
                t->tick(now_);
                profiler_->add(profClass_[idx], t0,
                               obs::HostProfiler::now());
            } else {
                t->tick(now_);
            }
            ++ticksExecuted_;
            if (t->sleepPending_)
                applySleep(t);
        }
    }
    walking_ = false;

    const auto c0 = profiler_ != nullptr
                        ? obs::HostProfiler::now()
                        : obs::HostProfiler::Clock::time_point{};
    for (ChannelBase* c : dirtyCh_) {
        c->commit();
        if (c->anyVisible()) {
            if (recorder_ != nullptr)
                recorder_->record(now_,
                                  obs::FlightRecorder::Kind::Commit,
                                  &c->name());
            for (Ticked* o : c->observers())
                wake(o);
        }
    }
    dirtyCh_.clear();
    if (profiler_ != nullptr)
        profiler_->add(obs::HostProfiler::Commit, c0,
                       obs::HostProfiler::now());

    ++now_;
    ++cyclesExecuted_;
}

void
Simulator::doCycleNaive()
{
    if (trace::on())
        trace::active()->setNow(now_);
    events_.fireUpTo(now_);
    for (Ticked* t : ticked_)
        t->tick(now_);
    ticksExecuted_ += ticked_.size();
    for (ChannelBase* c : channels_)
        c->commit();
    dirtyCh_.clear();
    ++now_;
    ++cyclesExecuted_;
}

void
Simulator::doCycleNaiveObs()
{
    if (trace::on())
        trace::active()->setNow(now_);
    if (profiler_ != nullptr) {
        auto t0 = obs::HostProfiler::now();
        events_.fireUpTo(now_);
        auto t1 = obs::HostProfiler::now();
        profiler_->add(obs::HostProfiler::Events, t0, t1);
        for (std::size_t i = 0; i < ticked_.size(); ++i) {
            ticked_[i]->tick(now_);
            auto t2 = obs::HostProfiler::now();
            profiler_->add(profClass_[i], t1, t2);
            t1 = t2;
        }
    } else {
        events_.fireUpTo(now_);
        for (Ticked* t : ticked_)
            t->tick(now_);
    }
    ticksExecuted_ += ticked_.size();
    const auto c0 = profiler_ != nullptr
                        ? obs::HostProfiler::now()
                        : obs::HostProfiler::Clock::time_point{};
    for (ChannelBase* c : channels_)
        c->commit();
    if (recorder_ != nullptr) {
        // Record only channels pushed this cycle (the dirty list is
        // maintained by the push hooks in both execution modes).
        for (ChannelBase* c : dirtyCh_)
            if (c->anyVisible())
                recorder_->record(
                    now_, obs::FlightRecorder::Kind::Commit,
                    &c->name());
    }
    dirtyCh_.clear();
    if (profiler_ != nullptr)
        profiler_->add(obs::HostProfiler::Commit, c0,
                       obs::HostProfiler::now());
    ++now_;
    ++cyclesExecuted_;
}

bool
Simulator::quiescent() const
{
    if (!events_.empty())
        return false;
    for (const auto& shp : shardState_) {
        if (!shp->events.empty())
            return false;
    }
    for (const ChannelBase* c : channels_) {
        if (!c->quiescent())
            return false;
    }
    for (const Ticked* t : ticked_) {
        if (t->busy())
            return false;
    }
    return true;
}

void
Simulator::catchUpAll()
{
    for (Ticked* t : ticked_)
        t->catchUp(now_);
}

Tick
Simulator::run(Tick maxCycles)
{
    const auto t0 = std::chrono::steady_clock::now();
    if (fastForward_ && shards_ > 1 && !finalized_)
        finalize();
    const Tick end = sharded_ && fastForward_ ? runSharded(maxCycles)
                     : fastForward_           ? runFast(maxCycles)
                                              : runNaive(maxCycles);
    // Weak observers beyond quiescence never fire; drop them so their
    // captures cannot dangle and snapshot()'s empty-queue contract
    // holds at quiescence.
    events_.clearWeak();
    wallNs_ += nsSince(t0);
    return end;
}

bool
Simulator::checkQuiescentFast()
{
    if (profiler_ == nullptr)
        return maybeQuiescent();
    const auto t0 = obs::HostProfiler::now();
    const bool q = maybeQuiescent();
    profiler_->add(obs::HostProfiler::Quiescence, t0,
                   obs::HostProfiler::now());
    return q;
}

Tick
Simulator::runFast(Tick maxCycles)
{
    // The instrumented twin keeps every observability hook out of
    // this loop: with no profiler or recorder attached the function
    // below must compile to the same tight code as before obs/
    // existed (the compiler inlines doCycleFast here only when the
    // loop stays this small).
    if (obsActive())
        return runFastObs(maxCycles);

    const Tick start = now_;
    const Tick limit = start + maxCycles;
    for (;;) {
        wakeDueSleepers();
        if (activeCount_ == 0) {
            if (maybeQuiescent()) {
                catchUpAll();
                return now_;
            }
            // Idle fast-forward: nothing ticks until the next event
            // or timed wake; every skipped cycle is a no-op.
            Tick target = kNoWakeTick;
            if (!events_.empty())
                target = events_.nextTick();
            if (!sleepHeap_.empty() && sleepHeap_.front().at < target)
                target = sleepHeap_.front().at;
            if (target == kNoWakeTick) {
                // Not quiescent, yet nothing can ever wake: a missed
                // wake (component porting bug) or an unconsumed
                // channel value.  Diagnose loudly.  Pending weak
                // observers don't count — they cannot create work.
                deadlockFatal(maxCycles, /*overrun=*/false);
            }
            // Weak observers (timeline samples) never keep the run
            // alive but do pin the fast-forward so they fire at
            // their exact tick; target == now_ falls through to
            // doCycleFast, which fires them and ticks nothing.
            if (events_.hasWeak() &&
                events_.nextWeakTick() < target)
                target = events_.nextWeakTick();
            if (target > now_) {
                const Tick to = target < limit ? target : limit;
                cyclesFastForwarded_ += to - now_;
                now_ = to;
                if (to == target)
                    continue; // wake the due sleepers at `to`
            }
        } else if (maybeQuiescent()) {
            catchUpAll();
            return now_;
        }
        if (now_ - start >= maxCycles) {
            // Overrun: reuse the incremental liveness state for the
            // final check instead of a second full scan.
            if (maybeQuiescent()) {
                catchUpAll();
                return now_;
            }
            deadlockFatal(maxCycles, /*overrun=*/true);
        }
        doCycleFast();
    }
}

Tick
Simulator::runFastObs(Tick maxCycles)
{
    const Tick start = now_;
    const Tick limit = start + maxCycles;
    for (;;) {
        if (profiler_ != nullptr) {
            const auto f0 = obs::HostProfiler::now();
            wakeDueSleepers();
            profiler_->add(obs::HostProfiler::FastForward, f0,
                           obs::HostProfiler::now());
        } else {
            wakeDueSleepers();
        }
        if (activeCount_ == 0) {
            if (checkQuiescentFast()) {
                catchUpAll();
                return now_;
            }
            // See runFast for the target math; the logic must stay
            // identical or the two dispatch arms diverge.
            Tick target = kNoWakeTick;
            if (!events_.empty())
                target = events_.nextTick();
            if (!sleepHeap_.empty() && sleepHeap_.front().at < target)
                target = sleepHeap_.front().at;
            if (target == kNoWakeTick) {
                deadlockFatal(maxCycles, /*overrun=*/false);
            }
            if (events_.hasWeak() &&
                events_.nextWeakTick() < target)
                target = events_.nextWeakTick();
            if (target > now_) {
                const Tick to = target < limit ? target : limit;
                cyclesFastForwarded_ += to - now_;
                now_ = to;
                if (to == target)
                    continue; // wake the due sleepers at `to`
            }
        } else if (checkQuiescentFast()) {
            catchUpAll();
            return now_;
        }
        if (now_ - start >= maxCycles) {
            if (maybeQuiescent()) {
                catchUpAll();
                return now_;
            }
            deadlockFatal(maxCycles, /*overrun=*/true);
        }
        doCycleFastObs();
    }
}

Tick
Simulator::runNaive(Tick maxCycles)
{
    TS_ASSERT(!sharded_,
              "naive execution after a sharded finalize(); run "
              "--no-fast-forward with --shards 1");
    // See runFast: the twin keeps observability hooks out of this
    // loop so the uninstrumented path keeps the seed's codegen.
    if (obsActive())
        return runNaiveObs(maxCycles);

    const Tick start = now_;
    while (now_ - start < maxCycles) {
        if (quiescent()) {
            catchUpAll();
            return now_;
        }
        doCycleNaive();
    }
    if (quiescent()) {
        catchUpAll();
        return now_;
    }
    deadlockFatal(maxCycles, /*overrun=*/true);
}

Tick
Simulator::runNaiveObs(Tick maxCycles)
{
    const Tick start = now_;
    while (now_ - start < maxCycles) {
        if (profiler_ != nullptr) {
            const auto t0 = obs::HostProfiler::now();
            const bool q = quiescent();
            profiler_->add(obs::HostProfiler::Quiescence, t0,
                           obs::HostProfiler::now());
            if (q) {
                catchUpAll();
                return now_;
            }
        } else if (quiescent()) {
            catchUpAll();
            return now_;
        }
        doCycleNaiveObs();
    }
    if (quiescent()) {
        catchUpAll();
        return now_;
    }
    deadlockFatal(maxCycles, /*overrun=*/true);
}

// ---------------------------------------------------------------------
// Sharded (conservative-PDES) execution.
// ---------------------------------------------------------------------

void
Simulator::startCrew()
{
    TS_ASSERT(rt_ == nullptr, "worker crew already running");
    rt_ = std::make_unique<ShardRuntime>();
    for (std::uint32_t s = 1; s < shards_; ++s)
        rt_->slots.push_back(
            std::make_unique<ShardRuntime::Slot>());
    for (std::uint32_t s = 1; s < shards_; ++s)
        rt_->threads.emplace_back([this, s] { workerLoop(s); });
}

void
Simulator::stopCrew() noexcept
{
    if (rt_ == nullptr)
        return;
    const std::uint64_t e = ++rt_->phase;
    for (auto& slot : rt_->slots) {
        slot->cmd.store(kCmdExit, std::memory_order_relaxed);
        slot->epoch.store(e, std::memory_order_release);
    }
    for (auto& th : rt_->threads) {
        if (th.joinable())
            th.join();
    }
    rt_.reset();
}

void
Simulator::workerLoop(std::uint32_t shard)
{
    ShardRuntime& rt = *rt_;
    ShardRuntime::Slot& slot = *rt.slots[shard - 1];
    std::uint64_t last = 0;
    for (;;) {
        waitAtLeast(slot.epoch, last + 1);
        last = slot.epoch.load(std::memory_order_acquire);
        const int cmd = slot.cmd.load(std::memory_order_relaxed);
        if (cmd == kCmdExit) {
            slot.done.store(last, std::memory_order_release);
            return;
        }
        if (!rt.failed.load(std::memory_order_relaxed)) {
            try {
                if (cmd == kCmdTick)
                    shardPhaseTick(shard);
                else
                    shardPhaseIntegrate(shard);
            } catch (const std::exception& e) {
                std::lock_guard<std::mutex> g(rt.failMx);
                if (rt.failMsg.empty())
                    rt.failMsg = e.what();
                rt.failed.store(true, std::memory_order_release);
            } catch (...) {
                std::lock_guard<std::mutex> g(rt.failMx);
                if (rt.failMsg.empty())
                    rt.failMsg = "unknown exception";
                rt.failed.store(true, std::memory_order_release);
            }
        }
        slot.done.store(last, std::memory_order_release);
    }
}

void
Simulator::runPhase(int cmd)
{
    ShardRuntime& rt = *rt_;
    const std::uint64_t e = ++rt.phase;
    for (auto& slot : rt.slots) {
        slot->cmd.store(cmd, std::memory_order_relaxed);
        slot->epoch.store(e, std::memory_order_release);
    }
    // The coordinator is shard 0's executor; run it between release
    // and arrival so the barrier costs no extra hand-off.
    if (cmd == kCmdTick)
        shardPhaseTick(0);
    else
        shardPhaseIntegrate(0);
    for (auto& slot : rt.slots)
        waitAtLeast(slot->done, e);
    if (rt.failed.load(std::memory_order_acquire)) {
        std::string msg;
        {
            std::lock_guard<std::mutex> g(rt.failMx);
            msg = rt.failMsg;
        }
        stopCrew();
        fatal("shard worker failed: ", msg);
    }
}

void
Simulator::fireEventsSharded()
{
    const auto t0 = profiler_ != nullptr
                        ? obs::HostProfiler::now()
                        : obs::HostProfiler::Clock::time_point{};
    // Strong events first, per-shard queues in shard order, then the
    // unrouted queue (which also holds every weak observer) — the
    // same all-strong-then-all-weak order the single-shard core
    // fires.  Serialized: event callbacks may touch any state.
    for (std::uint32_t s = 0; s < shards_; ++s) {
        firingShard_ = static_cast<std::int32_t>(s);
        shardState_[s]->events.fireUpTo(now_);
    }
    firingShard_ = -1;
    events_.fireUpTo(now_);
    if (profiler_ != nullptr)
        profiler_->add(obs::HostProfiler::Events, t0,
                       obs::HostProfiler::now());
}

void
Simulator::shardPhaseTick(std::uint32_t s)
{
    ShardState& sh = *shardState_[s];
    const auto t0 = std::chrono::steady_clock::now();
    tlsShard = static_cast<std::int32_t>(s);
    StatSet* const prevStats = StatSet::active();
    StatSet::setActive(&sh.stats);
    const Tick now = now_;

    sh.pending = sh.active;
    sh.walking = true;
    if (sh.profiler == nullptr) {
        for (std::size_t w = 0; w < sh.pending.size(); ++w) {
            while (sh.pending[w] != 0) {
                const std::uint32_t lidx = static_cast<std::uint32_t>(
                    (w << 6) + std::countr_zero(sh.pending[w]));
                sh.pending[w] &= sh.pending[w] - 1;
                sh.walkPos = lidx;
                Ticked* t = sh.comps[lidx];
                t->sleepPending_ = false;
                t->tick(now);
                ++sh.ticksExecuted;
                if (t->sleepPending_)
                    applySleepSharded(sh, t);
            }
        }
    } else {
        for (std::size_t w = 0; w < sh.pending.size(); ++w) {
            while (sh.pending[w] != 0) {
                const std::uint32_t lidx = static_cast<std::uint32_t>(
                    (w << 6) + std::countr_zero(sh.pending[w]));
                sh.pending[w] &= sh.pending[w] - 1;
                sh.walkPos = lidx;
                Ticked* t = sh.comps[lidx];
                t->sleepPending_ = false;
                const auto p0 = obs::HostProfiler::now();
                t->tick(now);
                sh.profiler->add(sh.profClass[lidx], p0,
                                 obs::HostProfiler::now());
                ++sh.ticksExecuted;
                if (t->sleepPending_)
                    applySleepSharded(sh, t);
            }
        }
    }
    sh.walking = false;

    const auto c0 = sh.profiler != nullptr
                        ? obs::HostProfiler::now()
                        : obs::HostProfiler::Clock::time_point{};
    for (ChannelBase* c : sh.dirtyCh) {
        c->commit();
        if (c->anyVisible()) {
            if (sh.recorder != nullptr)
                sh.recorder->record(now,
                                    obs::FlightRecorder::Kind::Commit,
                                    &c->name());
            for (Ticked* o : c->observers()) {
                if (o->shard_ == s)
                    wake(o);
                else
                    sh.crossWakes.push_back(o);
            }
        }
    }
    sh.dirtyCh.clear();
    if (sh.profiler != nullptr)
        sh.profiler->add(obs::HostProfiler::Commit, c0,
                         obs::HostProfiler::now());

    StatSet::setActive(prevStats);
    tlsShard = -1;
    sh.wallNs += nsSince(t0);
}

void
Simulator::shardPhaseIntegrate(std::uint32_t s)
{
    ShardState& sh = *shardState_[s];
    if (sh.inboundStaged.load(std::memory_order_relaxed) == 0 &&
        sh.popWork == 0)
        return;
    const auto t0 = std::chrono::steady_clock::now();
    tlsShard = static_cast<std::int32_t>(s);
    // The consumer commits its boundary channels: staged values
    // become visible and pop credits flow back to the producers, both
    // with next-cycle visibility — exactly the single-shard commit,
    // minus the channels that had no cross-shard traffic this cycle.
    for (ChannelBase* c : sh.consumedBoundary) {
        if (!c->integratePending())
            continue;
        c->commit();
        if (c->anyVisible()) {
            if (sh.recorder != nullptr)
                sh.recorder->record(now_,
                                    obs::FlightRecorder::Kind::Commit,
                                    &c->name());
            for (Ticked* o : c->observers()) {
                if (o->shard_ == s)
                    wake(o);
                else
                    sh.crossWakes.push_back(o);
            }
        }
    }
    tlsShard = -1;
    sh.wallNs += nsSince(t0);
}

void
Simulator::doCycleSharded()
{
    fireEventsSharded();
    runPhase(kCmdTick);
    bool boundaryWork = false;
    for (const auto& shp : shardState_) {
        if (shp->inboundStaged.load(std::memory_order_relaxed) != 0 ||
            shp->popWork != 0) {
            boundaryWork = true;
            break;
        }
    }
    if (boundaryWork) {
        runPhase(kCmdIntegrate);
        for (auto& shp : shardState_) {
            shp->inboundStaged.store(0, std::memory_order_relaxed);
            shp->popWork = 0;
        }
    }
    // Apply deferred cross-shard observer wakes serially (see
    // ShardState::crossWakes); spurious entries are harmless and
    // order is irrelevant — waking is an idempotent bit-set.
    for (auto& shp : shardState_) {
        for (Ticked* o : shp->crossWakes)
            wake(o);
        shp->crossWakes.clear();
    }
    ++now_;
    ++cyclesExecuted_;
}

Tick
Simulator::runSharded(Tick maxCycles)
{
    TS_ASSERT(!trace::on(),
              "tracing requires single-shard execution (--shards 1)");
    const auto quiCheck = [this] {
        if (profiler_ == nullptr)
            return maybeQuiescentSharded();
        const auto t0 = obs::HostProfiler::now();
        const bool q = maybeQuiescentSharded();
        profiler_->add(obs::HostProfiler::Quiescence, t0,
                       obs::HostProfiler::now());
        return q;
    };
    startCrew();
    Tick end = 0;
    try {
        const Tick start = now_;
        const Tick limit = start + maxCycles;
        for (;;) {
            if (profiler_ != nullptr) {
                const auto f0 = obs::HostProfiler::now();
                wakeDueSleepersSharded();
                profiler_->add(obs::HostProfiler::FastForward, f0,
                               obs::HostProfiler::now());
            } else {
                wakeDueSleepersSharded();
            }
            if (totalActiveSharded() == 0) {
                if (quiCheck()) {
                    catchUpAll();
                    end = now_;
                    break;
                }
                // Conservative fast-forward: the global target is the
                // min-reduction of every shard's next event and timed
                // wake (plus unrouted events) — no shard can have
                // earlier work, so the skipped cycles are no-ops on
                // every shard.
                Tick target = nextEventTickSharded();
                for (const auto& shp : shardState_) {
                    if (!shp->sleepHeap.empty() &&
                        shp->sleepHeap.front().at < target)
                        target = shp->sleepHeap.front().at;
                }
                if (target == kNoWakeTick)
                    deadlockFatal(maxCycles, /*overrun=*/false);
                if (events_.hasWeak() &&
                    events_.nextWeakTick() < target)
                    target = events_.nextWeakTick();
                if (target > now_) {
                    const Tick to = target < limit ? target : limit;
                    cyclesFastForwarded_ += to - now_;
                    now_ = to;
                    if (to == target)
                        continue;
                }
            } else if (quiCheck()) {
                catchUpAll();
                end = now_;
                break;
            }
            if (now_ - start >= maxCycles) {
                if (maybeQuiescentSharded()) {
                    catchUpAll();
                    end = now_;
                    break;
                }
                deadlockFatal(maxCycles, /*overrun=*/true);
            }
            doCycleSharded();
        }
    } catch (...) {
        stopCrew();
        mergeShardObservations();
        throw;
    }
    stopCrew();
    mergeShardObservations();
    return end;
}

void
Simulator::stepSharded(Tick cycles)
{
    TS_ASSERT(!trace::on(),
              "tracing requires single-shard execution (--shards 1)");
    startCrew();
    try {
        const Tick end = now_ + cycles;
        while (now_ < end) {
            wakeDueSleepersSharded();
            if (totalActiveSharded() == 0) {
                Tick target = end;
                const Tick ev = nextEventTickSharded();
                if (ev < target)
                    target = ev;
                for (const auto& shp : shardState_) {
                    if (!shp->sleepHeap.empty() &&
                        shp->sleepHeap.front().at < target)
                        target = shp->sleepHeap.front().at;
                }
                if (events_.hasWeak() &&
                    events_.nextWeakTick() < target)
                    target = events_.nextWeakTick();
                if (target > now_) {
                    cyclesFastForwarded_ += target - now_;
                    now_ = target;
                    continue;
                }
            }
            doCycleSharded();
        }
        catchUpAll();
    } catch (...) {
        stopCrew();
        mergeShardObservations();
        throw;
    }
    stopCrew();
    mergeShardObservations();
}

void
Simulator::mergeShardObservations()
{
    if (!sharded_)
        return;
    // Tick-phase samples merge in shard index order; every sampled
    // value is an integral cycle count, so the merged histograms and
    // sums are exactly the interleaved single-shard ones.
    StatSet* const parent = StatSet::active();
    for (auto& shp : shardState_) {
        if (parent != nullptr)
            parent->mergeFrom(shp->stats);
        shp->stats.clear();
    }
}

std::uint64_t
Simulator::totalTicksExecuted() const
{
    std::uint64_t n = ticksExecuted_;
    for (const auto& shp : shardState_)
        n += shp->ticksExecuted;
    return n;
}

void
Simulator::deadlockFatal(Tick maxCycles, bool overrun)
{
    std::ostringstream os;
    if (overrun)
        os << "simulation did not quiesce within " << maxCycles
           << " cycles; still live:";
    else
        os << "simulation deadlocked at cycle " << now_
           << ": no component active and no event or timed wake "
              "pending; still live:";
    std::size_t nEvents = events_.size();
    for (const auto& shp : shardState_)
        nEvents += shp->events.size();
    if (nEvents != 0)
        os << " [" << nEvents << " events]";
    for (const ChannelBase* c : channels_) {
        if (!c->quiescent())
            os << " channel:" << c->name();
    }
    for (const Ticked* t : ticked_) {
        if (t->busy())
            os << " busy:" << t->name();
    }
    // Who is stuck: every busy sleeper, the wake it is (not) waiting
    // for, and the state of each channel that could wake it.  This is
    // the missed-wake diagnosis: a busy component sleeping forever on
    // channels that are all empty means a producer forgot a wake; a
    // visible channel here means the observer list is miswired.
    os << "\nstuck components:";
    bool anyStuck = false;
    for (const Ticked* t : ticked_) {
        if (!t->sleeping_ || !t->busy())
            continue;
        anyStuck = true;
        os << "\n  " << t->name() << ": sleeping ";
        if (t->sleepAt_ == kNoWakeTick)
            os << "until woken";
        else
            os << "until @" << t->sleepAt_;
        if (sharded_)
            os << " (shard " << t->shard_ << ")";
        bool anyCh = false;
        for (const ChannelBase* c : channels_) {
            const auto& obsList = c->observers();
            bool watches = false;
            for (const Ticked* o : obsList)
                if (o == t)
                    watches = true;
            if (!watches)
                continue;
            os << (anyCh ? ", " : "; observes ") << c->name() << " [";
            if (c->anyVisible())
                os << "visible";
            else if (!c->quiescent())
                os << "staged";
            else
                os << "empty";
            os << "]";
            anyCh = true;
        }
        if (!anyCh)
            os << "; observes no channel";
    }
    if (!anyStuck)
        os << " none (no busy sleeper)";
    if (recorder_ != nullptr && recorder_->size() > 0) {
        os << "\nflight recorder (last " << recorder_->size()
           << " of " << recorder_->capacity() << " records):\n";
        recorder_->dump(os);
    }
    for (std::size_t s = 0; s < shardState_.size(); ++s) {
        const auto& rec = shardState_[s]->recorder;
        if (rec == nullptr || rec->size() == 0)
            continue;
        os << "\nshard " << s << " flight recorder (last "
           << rec->size() << " of " << rec->capacity()
           << " records):\n";
        rec->dump(os);
    }
    fatal(os.str());
}

void
Simulator::step(Tick cycles)
{
    const auto t0 = std::chrono::steady_clock::now();
    if (fastForward_ && shards_ > 1 && !finalized_)
        finalize();
    if (sharded_ && fastForward_) {
        stepSharded(cycles);
        wallNs_ += nsSince(t0);
        return;
    }
    const bool instrumented = obsActive();
    if (!fastForward_) {
        for (Tick i = 0; i < cycles; ++i) {
            if (instrumented)
                doCycleNaiveObs();
            else
                doCycleNaive();
        }
    } else {
        const Tick end = now_ + cycles;
        while (now_ < end) {
            wakeDueSleepers();
            if (activeCount_ == 0) {
                Tick target = end;
                if (!events_.empty() && events_.nextTick() < target)
                    target = events_.nextTick();
                if (!sleepHeap_.empty() &&
                    sleepHeap_.front().at < target)
                    target = sleepHeap_.front().at;
                if (events_.hasWeak() &&
                    events_.nextWeakTick() < target)
                    target = events_.nextWeakTick();
                if (target > now_) {
                    cyclesFastForwarded_ += target - now_;
                    now_ = target;
                    continue;
                }
            }
            if (instrumented)
                doCycleFastObs();
            else
                doCycleFast();
        }
    }
    catchUpAll();
    wallNs_ += nsSince(t0);
}

SimSnapshot
Simulator::snapshot() const
{
    TS_ASSERT(!walking_, "snapshot from inside the tick walk");
    TS_ASSERT(events_.empty() && !events_.hasWeak(),
              "snapshot requires an empty event queue (callbacks are "
              "move-only); snapshot post-configuration or at "
              "quiescence");
    TS_ASSERT(dirtyCh_.empty(),
              "snapshot with uncommitted channel pushes");
    for (const auto& shp : shardState_) {
        TS_ASSERT(!shp->walking && shp->events.empty() &&
                      shp->dirtyCh.empty(),
                  "snapshot with in-flight shard state");
    }

    SimSnapshot s;
    s.now = now_;
    s.fastForward = fastForward_;
    s.components.reserve(ticked_.size());
    s.meta.reserve(ticked_.size());
    for (const Ticked* t : ticked_) {
        s.components.push_back(t->saveState());
        SimSnapshot::TickedMeta m;
        m.sleepPending = t->sleepPending_;
        m.sleeping = t->sleeping_;
        m.sleepAt = t->sleepAt_;
        m.inBusyList = t->inBusyList_;
        s.meta.push_back(m);
    }
    s.channels.reserve(channels_.size());
    for (const ChannelBase* c : channels_)
        s.channels.push_back(c->saveState());

    // The sleep/wake bookkeeping is stored in shard-independent form
    // (global indices, canonically sorted) so a snapshot restores
    // bit-identically under any shard count of the same object graph.
    const auto byAtThenIdx = [](const TimedWake& a,
                                const TimedWake& b) { return b > a; };
    if (!sharded_) {
        s.active = active_;
        s.activeCount = activeCount_;
        s.sleepHeap = sleepHeap_;
        s.sleepersBusy = sleepersBusy_;
    } else {
        s.active.assign(active_.size(), 0);
        s.activeCount = 0;
        for (const Ticked* t : ticked_) {
            if (!t->sleeping_) {
                s.active[t->simIndex_ >> 6] |=
                    std::uint64_t{1} << (t->simIndex_ & 63);
                ++s.activeCount;
            }
        }
        for (const auto& shp : shardState_) {
            s.sleepHeap.insert(s.sleepHeap.end(),
                               shp->sleepHeap.begin(),
                               shp->sleepHeap.end());
            s.sleepersBusy.insert(s.sleepersBusy.end(),
                                  shp->sleepersBusy.begin(),
                                  shp->sleepersBusy.end());
        }
    }
    std::sort(s.sleepHeap.begin(), s.sleepHeap.end(), byAtThenIdx);
    std::sort(s.sleepersBusy.begin(), s.sleepersBusy.end());
    s.wallNs = wallNs_;
    s.ticksExecuted = totalTicksExecuted();
    s.cyclesExecuted = cyclesExecuted_;
    s.cyclesFastForwarded = cyclesFastForwarded_;
    return s;
}

void
Simulator::restore(const SimSnapshot& s)
{
    TS_ASSERT(!walking_, "restore from inside the tick walk");
    TS_ASSERT(events_.empty() && !events_.hasWeak(),
              "restore requires an empty event queue; restore at "
              "quiescence (after run()) or before any cycle");
    TS_ASSERT(dirtyCh_.empty(),
              "restore with uncommitted channel pushes");
    TS_ASSERT(s.components.size() == ticked_.size() &&
                  s.channels.size() == channels_.size(),
              "snapshot does not match this simulator's component/"
              "channel registration");
    TS_ASSERT(s.fastForward || !sharded_,
              "cannot restore a naive-mode snapshot into a sharded "
              "simulator");
    for (const auto& shp : shardState_) {
        TS_ASSERT(!shp->walking && shp->events.empty() &&
                      shp->dirtyCh.empty(),
                  "restore with in-flight shard state");
    }

    now_ = s.now;
    fastForward_ = s.fastForward;
    for (std::size_t i = 0; i < ticked_.size(); ++i) {
        Ticked* t = ticked_[i];
        t->restoreState(*s.components[i]);
        const SimSnapshot::TickedMeta& m = s.meta[i];
        t->sleepPending_ = m.sleepPending;
        t->sleeping_ = m.sleeping;
        t->sleepAt_ = m.sleepAt;
        t->inBusyList_ = m.inBusyList;
        t->queuedWakeAt_ = kNoWakeTick;
    }
    // Channel restores re-sync liveChannels_ incrementally (setLive),
    // so the counter needs no explicit reset.
    for (std::size_t i = 0; i < channels_.size(); ++i)
        channels_[i]->restoreState(*s.channels[i]);
    active_ = s.active;
    std::fill(pending_.begin(), pending_.end(), 0);
    activeCount_ = s.activeCount;
    if (!sharded_) {
        sleepHeap_ = s.sleepHeap;
        std::make_heap(sleepHeap_.begin(), sleepHeap_.end(),
                       std::greater<TimedWake>{});
        sleepersBusy_ = s.sleepersBusy;
    } else {
        sleepHeap_.clear();
        sleepersBusy_.clear();
        for (auto& shp : shardState_) {
            ShardState& sh = *shp;
            std::fill(sh.active.begin(), sh.active.end(), 0);
            std::fill(sh.pending.begin(), sh.pending.end(), 0);
            sh.activeCount = 0;
            sh.sleepHeap.clear();
            sh.sleepersBusy.clear();
            sh.inboundStaged.store(0, std::memory_order_relaxed);
            sh.popWork = 0;
            sh.ticksExecuted = 0;
        }
        for (const Ticked* t : ticked_) {
            if (!t->sleeping_) {
                ShardState& sh = *shardState_[t->shard_];
                sh.active[t->shardIndex_ >> 6] |=
                    std::uint64_t{1} << (t->shardIndex_ & 63);
                ++sh.activeCount;
            }
        }
        for (const TimedWake& w : s.sleepHeap)
            heapPush(shardState_[ticked_[w.idx]->shard_]->sleepHeap,
                     w);
        for (const std::uint32_t idx : s.sleepersBusy)
            shardState_[ticked_[idx]->shard_]->sleepersBusy.push_back(
                idx);
    }
    // Recompute the wake-dedup slots: the snapshot heap is sorted by
    // (at, idx), so the first entry seen per component is its
    // earliest queued wake.
    for (const TimedWake& w : s.sleepHeap) {
        Ticked* t = ticked_[w.idx];
        if (t->queuedWakeAt_ == kNoWakeTick)
            t->queuedWakeAt_ = w.at;
    }
    wallNs_ = s.wallNs;
    ticksExecuted_ = s.ticksExecuted;
    cyclesExecuted_ = s.cyclesExecuted;
    cyclesFastForwarded_ = s.cyclesFastForwarded;
}

void
Simulator::reportStats(StatSet& stats) const
{
    for (const Ticked* t : ticked_)
        t->reportStats(stats);
    stats.set("sim.cycles", static_cast<double>(now_));
    stats.set("sim.host.wallNs", static_cast<double>(wallNs_));
    stats.set("sim.host.ticksExecuted",
              static_cast<double>(totalTicksExecuted()));
    stats.set("sim.host.cyclesFastForwarded",
              static_cast<double>(cyclesFastForwarded_));
    stats.set("sim.host.avgActiveComponents",
              cyclesExecuted_ == 0
                  ? 0.0
                  : static_cast<double>(totalTicksExecuted()) /
                        static_cast<double>(cyclesExecuted_));
    if (sharded_) {
        stats.set("sim.host.shards", static_cast<double>(shards_));
        for (std::size_t s = 0; s < shardState_.size(); ++s) {
            const ShardState& sh = *shardState_[s];
            const std::string prefix =
                "sim.host.shard" + std::to_string(s) + ".";
            stats.set(prefix + "components",
                      static_cast<double>(sh.comps.size()));
            stats.set(prefix + "ticksExecuted",
                      static_cast<double>(sh.ticksExecuted));
            stats.set(prefix + "wallNs",
                      static_cast<double>(sh.wallNs));
        }
    }
    if (profiler_ != nullptr) {
        obs::HostProfiler merged = *profiler_;
        for (const auto& shp : shardState_) {
            if (shp->profiler != nullptr)
                merged.mergeFrom(*shp->profiler);
        }
        merged.reportStats(stats);
    }
}

} // namespace ts
