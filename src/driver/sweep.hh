/**
 * @file
 * The parallel sweep engine: expand a declarative grid of simulated
 * runs (workloads x accelerator configs x seeds x scales), execute
 * the points on a host thread pool, and aggregate the results
 * deterministically.
 *
 * Every point is fully isolated — its own Delta, its own workload
 * instance, its own RNG seeded from the point — and the per-thread
 * activation of tracing and stat sampling (see trace.hh / stats.hh)
 * means N concurrent simulations never share mutable state.  Results
 * are stored by grid index, so per-run StatSets and every aggregate
 * are bit-identical between `-j 1` and `-j N`; only wall-clock
 * changes.
 *
 * Aggregation:
 *  - per-run StatSets keyed by point (workload, config, seed, scale);
 *  - cross-seed mean/stddev of cycles per (workload, config, scale);
 *  - paired speedups versus a designated baseline config, computed
 *    in-process per (workload, seed, scale) and summarized across
 *    seeds;
 *  - a machine-readable JSON report, plus optional per-run dumps in
 *    the bench-JSON wrapper shape `tools/delta-report --baseline`
 *    already ingests.
 *
 * tools/delta-sweep is a thin CLI over this; the ported figure
 * benches (fig_speedup, fig_ablation, fig_energy) build a SweepSpec
 * and render their tables from the SweepReport.
 */

#ifndef TS_DRIVER_SWEEP_HH
#define TS_DRIVER_SWEEP_HH

#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "driver/options.hh"

namespace ts
{
namespace driver
{

/** One named accelerator configuration in a sweep grid. */
struct ConfigVariant
{
    std::string name;
    DeltaConfig cfg;
};

/** Names accepted by sweepConfig(): the ablation ladder.
 *    static      bulk-synchronous static-parallel baseline
 *    dyn         dependence-driven dispatch, count-balanced lanes
 *    work        + work-aware lane choice
 *    work-steal  work + NoC work stealing (steal-half)
 *    pipe        + pipelined inter-task dependence recovery
 *    delta       + shared-read multicast (full TaskStream)
 *    spatial     AOT spatial mapping with lane-to-lane forwarding  */
const std::vector<std::string>& sweepConfigNames();

/** Build a named preset; fatal() on an unknown name, listing every
 *  valid one. */
ConfigVariant sweepConfig(const std::string& name,
                          std::uint32_t lanes = 8);

/** Parse a comma-separated list of preset names (fatal on unknown,
 *  empty selects "static,delta"). */
std::vector<ConfigVariant>
sweepConfigsFromList(const std::string& list, std::uint32_t lanes = 8);

struct RunOutcome;
struct RunPoint;

/** The declarative grid: the cross product of the four axes. */
struct SweepSpec
{
    std::vector<Wk> workloads;           ///< must be non-empty
    std::vector<ConfigVariant> configs;  ///< must be non-empty
    std::vector<std::uint64_t> seeds{7};
    std::vector<double> scales{1.0};

    /** Config paired speedups are measured against ("" = the first
     *  config when more than one, else no speedups). */
    std::string baseline;

    /** Worker threads (0 = hardware concurrency). */
    unsigned jobs = 0;

    /** When non-empty, each run writes its StatSet in the bench-JSON
     *  wrapper shape to `<dir>/<tag>.json` (delta-report ingestible,
     *  deterministic names). */
    std::string benchJsonDir;

    /** When non-empty, each run writes a Perfetto trace to
     *  `<base>.<tag>.json`-style deterministic per-point paths. */
    std::string tracePath;

    /** Progress/ETA lines on stderr as runs retire. */
    bool progress = false;

    /** Run every point with naive per-cycle ticking instead of the
     *  activity-driven core (bit-identical; for differential checks
     *  and host-throughput comparison). */
    bool noFastForward = false;

    /** Sample a delta.timeline.* time series in every run at this
     *  interval (0 = off).  Cache-key relevant: it changes the
     *  emitted stats, so it participates in canonicalConfig. */
    Tick timelineInterval = 0;

    /** Timeline sample cap (see DeltaConfig::timelineMaxSamples). */
    std::size_t timelineMaxSamples = 512;

    /** Timeline probe-group subset (empty = all). */
    std::string timelineSeries;

    /** Attribute host wall time per component class and phase
     *  (sim.host.profile.*).  Host-side only: never cache-key
     *  relevant, and excluded from byte-compared dumps. */
    bool hostProfile = false;

    /** Executor shards inside every run (host threads per
     *  simulation).  Results are bit-identical for every value, so
     *  like hostProfile it stays out of canonicalConfig/cache keys:
     *  a cached single-shard result is a valid answer for a sharded
     *  request and vice versa. */
    std::uint32_t shards = 1;

    /** Work-stealing override applied to every config whose preset
     *  left stealing off.  Behaviour-relevant (unlike shards): the
     *  resolved policy lands in canonicalConfig and so in every
     *  point's cache key. */
    StealPolicy steal = StealPolicy::None;

    /** Scheduling-policy override applied to every config when
     *  schedSet (presets keep their own policy otherwise).
     *  Behaviour-relevant like steal: the resolved policy lands in
     *  canonicalConfig and so in every point's cache key. */
    SchedPolicy sched = SchedPolicy::WorkAware;
    bool schedSet = false; ///< sched override was requested

    /**
     * When non-empty, consult a content-addressed run cache rooted
     * here before executing each point, and publish every finished
     * ok() result after the run.  Hits replay the cached per-run
     * JSON byte-for-byte, so cold and warm sweeps aggregate
     * identically.  Tracing bypasses the cache (a hit would skip the
     * trace the user asked for).
     */
    std::string cacheDir;

    /** Cache size budget in bytes (0 = unbounded). */
    std::uint64_t cacheCapBytes = 0;

    /** Disable snapshot/fork warm starts: build a fresh Delta for
     *  every point instead of forking each config's one-time
     *  snapshot.  Bit-identical; for differential checks. */
    bool noSnapshotFork = false;

    /**
     * Called once per retired point, in completion order under the
     * engine's internal lock (so implementations may write to shared
     * streams without further locking).  @p fromCache distinguishes
     * cache replays from executed runs.  Used by the sweep service
     * to stream per-cell results.
     */
    std::function<void(const RunOutcome& out, bool fromCache)>
        onResult;

    /**
     * Called as each worker picks up its next point, under the same
     * internal lock as onResult.  @p worker is a dense index in
     * [0, jobs); together with onResult this lets a live status
     * surface (the sweep daemon) track what every worker is doing.
     */
    std::function<void(unsigned worker, const RunPoint& point)>
        onCellStart;

    /** Resolved baseline name ("" when speedups are off). */
    std::string baselineName() const;
};

/** One point of the expanded grid, in deterministic grid order. */
struct RunPoint
{
    Wk workload = Wk::Spmv;
    std::string config;   ///< ConfigVariant name
    std::uint64_t seed = 7;
    double scale = 1.0;
    std::uint32_t lanes = 8;

    /** Stable identifier: `<wk>_<config>_l<lanes>_s<seed>_x<scale>`
     *  — also the per-run JSON file stem. */
    std::string tag() const;
};

/** Outcome of one executed point. */
struct RunOutcome
{
    RunPoint point;
    bool correct = false;  ///< workload check() passed
    bool failed = false;   ///< run threw (config error, sim bug, ...)
    std::string error;     ///< what() when failed
    double cycles = 0.0;
    StatSet stats;

    bool ok() const { return correct && !failed; }
};

/** Cross-seed summary of one (workload, config, scale) cell. */
struct CellAggregate
{
    Wk workload = Wk::Spmv;
    std::string config;
    double scale = 1.0;
    std::size_t n = 0;          ///< seeds with an ok() run
    double meanCycles = 0.0;    ///< over ok() runs
    double stddevCycles = 0.0;  ///< sample stddev (0 when n < 2)
};

/** Cross-seed summary of paired speedups vs the baseline config. */
struct PairedSpeedup
{
    Wk workload = Wk::Spmv;
    std::string config;
    double scale = 1.0;
    std::size_t n = 0;      ///< seeds where both runs are ok()
    double mean = 0.0;      ///< mean of per-seed baseline/config
    double stddev = 0.0;    ///< sample stddev (0 when n < 2)
};

/** Everything a finished sweep produced, in grid order. */
struct SweepReport
{
    SweepSpec spec;
    std::vector<RunOutcome> runs;

    /** Run-cache outcome counts (0/0 when no cache was configured).
     *  Not serialized by writeJson: the aggregate report must stay
     *  byte-identical between cold and warm passes. */
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;

    /** The outcome for an exact point, or nullptr. */
    const RunOutcome* find(Wk w, const std::string& config,
                           std::uint64_t seed, double scale) const;

    /** Whether every run completed and passed its check. */
    bool allOk() const;

    /** Number of runs that failed or were incorrect. */
    std::size_t failures() const;

    /** Cross-seed cycle statistics, grid order. */
    std::vector<CellAggregate> aggregates() const;

    /** Paired speedups vs spec.baselineName(), grid order (empty
     *  when no baseline resolves). */
    std::vector<PairedSpeedup> pairedSpeedups() const;

    /**
     * The machine-readable report: grid, per-run results (full
     * StatSets), aggregates, and paired speedups.  Deterministic:
     * bit-identical for the same grid regardless of `jobs`.
     */
    void writeJson(std::ostream& os) const;
};

/** The engine.  Validates the spec on construction (fatal on an
 *  empty axis or an unknown baseline name). */
class Sweep
{
  public:
    explicit Sweep(SweepSpec spec);

    /** The expanded grid, in execution-independent order. */
    const std::vector<RunPoint>& points() const { return points_; }

    /** Execute every point and aggregate.  Call once. */
    SweepReport run();

  private:
    SweepSpec spec_;
    std::vector<RunPoint> points_;
};

/**
 * Run fn(0..n-1) on up to @p jobs host threads (0 = hardware
 * concurrency).  The engine's pool, exposed for graph-building
 * figure drivers (tab_workloads) that fan out without simulating.
 * @p fn must not throw.
 */
void parallelFor(std::size_t n, unsigned jobs,
                 const std::function<void(std::size_t)>& fn);

/**
 * parallelFor, but fn also receives the dense worker index in
 * [0, workers) running the item — for per-worker status tracking.
 * Serial fallback (n or jobs <= 1) uses worker 0.
 */
void parallelForWorkers(
    std::size_t n, unsigned jobs,
    const std::function<void(unsigned, std::size_t)>& fn);

/**
 * Canonical single-line rendering of every determinism-relevant
 * DeltaConfig field.  Two configs with equal canonical forms produce
 * bit-identical runs; the form feeds run-cache keys, so any new
 * field that affects simulated behaviour MUST be added here (a
 * missed field risks stale hits across sweeps that vary it).
 */
std::string canonicalConfig(const DeltaConfig& cfg);

/**
 * Canonical single-line run-cell description for a grid point: the
 * workload, seed, scale, config name, and full canonical config.
 * Combined with the code fingerprint this is the run-cache key
 * preimage.
 */
std::string canonicalCell(const SweepSpec& spec,
                          const RunPoint& point);

} // namespace driver
} // namespace ts

#endif // TS_DRIVER_SWEEP_HH
