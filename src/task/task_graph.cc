#include "task/task_graph.hh"

#include <deque>

#include "sim/logging.hh"

namespace ts
{

TaskHandle
TaskGraph::addTask(TaskTypeId type, std::vector<StreamDesc> inputs,
                   std::vector<WriteDesc> outputs)
{
    TaskInstance inst;
    inst.uid = static_cast<TaskId>(tasks_.size());
    inst.type = type;
    inst.inputs = std::move(inputs);
    inst.outputs = std::move(outputs);
    inst.inputGroup.assign(inst.inputs.size(), kNoGroup);
    tasks_.push_back(std::move(inst));
    outEdges_.emplace_back();
    return TaskHandle{tasks_.back().uid};
}

CompletionHandle
TaskGraph::completion(TaskId task) const
{
    TS_ASSERT(task < tasks_.size());
    return CompletionHandle{task};
}

bool
TaskGraph::reaches(TaskId from, TaskId to) const
{
    if (from == to)
        return true;
    std::vector<bool> seen(tasks_.size(), false);
    std::vector<TaskId> stack{from};
    seen[from] = true;
    while (!stack.empty()) {
        const TaskId at = stack.back();
        stack.pop_back();
        for (const std::uint32_t ei : outEdges_[at]) {
            const TaskId next = edges_[ei].consumer;
            if (next == to)
                return true;
            if (!seen[next]) {
                seen[next] = true;
                stack.push_back(next);
            }
        }
    }
    return false;
}

void
TaskGraph::checkAcyclicEdge(TaskId producer, TaskId consumer) const
{
    TS_ASSERT(producer != consumer, "self-dependence on task ",
              producer, " rejected");
    // While every edge so far follows creation order, ascending uid
    // is a topological order and a forward edge cannot close a cycle.
    if (creationOrdered_ && producer < consumer)
        return;
    TS_ASSERT(!reaches(consumer, producer),
              "dependence ", producer, " -> ", consumer,
              " would close a cycle");
}

void
TaskGraph::addBarrier(TaskId producer, TaskId consumer)
{
    TS_ASSERT(producer < tasks_.size());
    TS_ASSERT(consumer < tasks_.size());
    checkAcyclicEdge(producer, consumer);
    edges_.push_back(DepEdge{producer, consumer, DepKind::Barrier, 0, 0});
    outEdges_[producer].push_back(
        static_cast<std::uint32_t>(edges_.size() - 1));
    if (producer >= consumer)
        creationOrdered_ = false;
}

void
TaskGraph::addBarrier(const CompletionHandle& producer, TaskId consumer)
{
    addBarrier(producer.task(), consumer);
}

void
TaskGraph::addPipeline(TaskId producer, std::uint8_t producerPort,
                       TaskId consumer, std::uint8_t consumerPort)
{
    TS_ASSERT(producer < tasks_.size());
    TS_ASSERT(consumer < tasks_.size());
    TS_ASSERT(producerPort < tasks_[producer].outputs.size());
    TS_ASSERT(consumerPort < tasks_[consumer].inputs.size());
    checkAcyclicEdge(producer, consumer);
    edges_.push_back(DepEdge{producer, consumer, DepKind::Pipeline,
                             producerPort, consumerPort});
    outEdges_[producer].push_back(
        static_cast<std::uint32_t>(edges_.size() - 1));
    if (producer >= consumer)
        creationOrdered_ = false;
}

void
TaskGraph::transferSuccessors(TaskId from, TaskId to)
{
    TS_ASSERT(from < tasks_.size());
    TS_ASSERT(to < tasks_.size());
    TS_ASSERT(from != to, "cannot transfer successors to self");
    for (const std::uint32_t ei : outEdges_[from]) {
        DepEdge& e = edges_[ei];
        TS_ASSERT(e.consumer != to,
                  "successor transfer ", from, " -> ", to,
                  " would make task ", to, " depend on itself");
        checkAcyclicEdge(to, e.consumer);
    }
    for (const std::uint32_t ei : outEdges_[from]) {
        DepEdge& e = edges_[ei];
        e.producer = to;
        // The forwarded stream identity does not survive a producer
        // change; the consumer falls back to its memory descriptor.
        if (e.kind == DepKind::Pipeline) {
            e.kind = DepKind::Barrier;
            e.producerPort = 0;
            e.consumerPort = 0;
        }
        outEdges_[to].push_back(ei);
        if (to >= e.consumer)
            creationOrdered_ = false;
    }
    outEdges_[from].clear();
}

std::uint32_t
TaskGraph::addSharedGroup(Addr rangeBase, std::uint64_t words)
{
    TS_ASSERT(rangeBase % wordBytes == 0,
              "shared ranges must be word-aligned");
    TS_ASSERT(words > 0);
    SharedGroup g;
    g.id = static_cast<std::uint32_t>(groups_.size());
    g.rangeBase = rangeBase;
    g.words = words;
    groups_.push_back(g);
    return groups_.back().id;
}

void
TaskGraph::setSharedInput(TaskId task, std::uint32_t port,
                          std::uint32_t group)
{
    TS_ASSERT(task < tasks_.size());
    TS_ASSERT(group < groups_.size());
    TaskInstance& inst = tasks_[task];
    TS_ASSERT(port < inst.inputs.size());
    const SharedGroup& g = groups_[group];
    const StreamDesc& d = inst.inputs[port];
    TS_ASSERT(d.dataSpace == Space::Dram,
              "shared inputs must start as DRAM streams");
    TS_ASSERT(d.dataBase >= g.rangeBase &&
                  d.dataBase < g.rangeBase + g.words * wordBytes,
              "shared input base outside the group range");
    inst.inputGroup[port] = group;
    groups_[group].members.push_back(task);
}

std::vector<TaskId>
TaskGraph::topoOrder() const
{
    std::vector<std::uint32_t> indeg(tasks_.size(), 0);
    for (const DepEdge& e : edges_)
        ++indeg[e.consumer];

    // Kahn with a FIFO frontier: uids enter in ascending order and
    // successors are released in edge-creation order, so the result
    // is a deterministic function of the graph alone.
    std::deque<TaskId> frontier;
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
        if (indeg[i] == 0)
            frontier.push_back(static_cast<TaskId>(i));
    }

    std::vector<TaskId> order;
    order.reserve(tasks_.size());
    while (!frontier.empty()) {
        const TaskId at = frontier.front();
        frontier.pop_front();
        order.push_back(at);
        for (const std::uint32_t ei : outEdges_[at]) {
            const TaskId next = edges_[ei].consumer;
            if (--indeg[next] == 0)
                frontier.push_back(next);
        }
    }
    TS_ASSERT(order.size() == tasks_.size(),
              "task graph has a cycle (", tasks_.size() - order.size(),
              " tasks unreachable from the acyclic frontier)");
    return order;
}

void
TaskGraph::validate() const
{
    for (const DepEdge& e : edges_) {
        TS_ASSERT(e.producer < tasks_.size() &&
                  e.consumer < tasks_.size());
        TS_ASSERT(e.producer != e.consumer);
    }
    for (const SharedGroup& g : groups_)
        TS_ASSERT(!g.members.empty(), "shared group with no members");
    topoOrder(); // panics on a cycle
}

CritPathResult
TaskGraph::criticalPath(const std::vector<TaskSpan>& spans) const
{
    CritPathResult r;
    if (tasks_.empty())
        return r;

    // Service time per task (zero when unmeasured).
    std::vector<Tick> service(tasks_.size(), 0);
    for (const TaskSpan& s : spans) {
        if (s.uid < tasks_.size())
            service[s.uid] = s.service();
    }
    for (const Tick s : service)
        r.serialCycles += s;

    // Longest path ending at each task, finalized in topological
    // order (edges may point in either uid direction now).
    std::vector<std::vector<TaskId>> preds(tasks_.size());
    for (const DepEdge& e : edges_)
        preds[e.consumer].push_back(e.producer);

    std::vector<Tick> dist(tasks_.size(), 0);
    std::vector<std::int64_t> pred(tasks_.size(), -1);
    for (const TaskId i : topoOrder()) {
        dist[i] = service[i];
        for (const TaskId p : preds[i]) {
            const Tick through = dist[p] + service[i];
            if (through > dist[i]) {
                dist[i] = through;
                pred[i] = p;
            }
        }
    }

    TaskId tail = 0;
    for (std::size_t i = 0; i < tasks_.size(); ++i) {
        if (dist[i] > dist[tail])
            tail = static_cast<TaskId>(i);
    }
    r.criticalPathCycles = dist[tail];

    for (std::int64_t at = tail; at >= 0; at = pred[at])
        r.path.push_back(static_cast<TaskId>(at));
    std::reverse(r.path.begin(), r.path.end());
    return r;
}

} // namespace ts
