/**
 * @file
 * Fig-2: mechanism ablation.  Starting from the bulk-synchronous
 * static-parallel baseline, enable TaskStream's recovered structures
 * one at a time:
 *
 *   static     bulk-synchronous, owner-compute (the baseline)
 *   +dyn       dependence-driven dispatch, count-balanced lanes
 *   +work      work-aware lane choice (stream-annotation estimates)
 *   +pipe      pipelined inter-task dependence recovery
 *   +mcast     shared-read multicast recovery (= full Delta)
 *
 * Rows are per-workload speedups over the static baseline.
 */

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.hh"

namespace
{

using namespace ts;
using namespace ts::bench;

struct Step
{
    const char* name;
    DeltaConfig cfg;
};

std::vector<Step>
steps()
{
    std::vector<Step> out;
    out.push_back({"static", DeltaConfig::staticBaseline(8)});

    DeltaConfig dyn = DeltaConfig::delta(8);
    dyn.policy = SchedPolicy::DynCount;
    dyn.enablePipeline = false;
    dyn.enableMulticast = false;
    out.push_back({"+dyn", dyn});

    DeltaConfig work = dyn;
    work.policy = SchedPolicy::WorkAware;
    out.push_back({"+work", work});

    DeltaConfig pipe = work;
    pipe.enablePipeline = true;
    out.push_back({"+pipe", pipe});

    out.push_back({"+mcast", DeltaConfig::delta(8)});
    return out;
}

std::map<Wk, std::vector<double>> gCycles;

void
runWorkload(benchmark::State& state, Wk w)
{
    const SuiteParams sp = suiteParams();
    for (auto _ : state) {
        std::vector<double> cycles;
        for (const Step& step : steps()) {
            const RunResult r = runOnce(w, step.cfg, sp);
            if (!r.correct)
                state.SkipWithError("incorrect result");
            cycles.push_back(r.cycles);
        }
        gCycles[w] = cycles;
        state.counters["speedup_full"] =
            cycles.front() / cycles.back();
    }
}

void
printTable()
{
    const auto allSteps = steps();
    std::puts("");
    std::puts("Fig-2  Mechanism ablation: speedup over static-parallel "
              "as structures are recovered (8 lanes)");
    rule();
    std::printf("%-10s", "workload");
    for (const Step& s : allSteps)
        std::printf(" %8s", s.name);
    std::puts("");
    rule();
    std::vector<std::vector<double>> cols(allSteps.size());
    for (const Wk w : suiteWorkloads()) {
        if (gCycles.count(w) == 0)
            continue; // filtered out by --benchmark_filter
        const auto& cycles = gCycles.at(w);
        std::printf("%-10s", wkName(w));
        for (std::size_t i = 0; i < cycles.size(); ++i) {
            const double sp = cycles.front() / cycles[i];
            cols[i].push_back(sp);
            std::printf(" %7.2fx", sp);
        }
        std::puts("");
    }
    rule();
    std::printf("%-10s", "geomean");
    for (const auto& col : cols)
        std::printf(" %7.2fx", geomean(col));
    std::puts("");
    std::puts("expected shape: each mechanism contributes where its "
              "structure exists: dynamic dispatch on DAGs, pipe on "
              "msort, mcast on shared-read workloads; with shallow "
              "task queues, count-based dispatch already captures "
              "most of the balancing win (see EXPERIMENTS.md)");
}

} // namespace

int
main(int argc, char** argv)
{
    for (const Wk w : suiteWorkloads()) {
        benchmark::RegisterBenchmark(
            (std::string("fig2/") + wkName(w)).c_str(),
            [w](benchmark::State& s) { runWorkload(s, w); })
            ->Iterations(1)
            ->Unit(benchmark::kMillisecond);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable();
    return 0;
}
