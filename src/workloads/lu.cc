#include "workloads/lu.hh"

#include <cmath>
#include <set>

#include "workloads/dense_util.hh"

namespace ts
{

namespace
{

constexpr double kCpf = 0.5;

} // namespace

void
LuWorkload::build(Delta& delta, TaskGraph& graph)
{
    MemImage& img = delta.image();
    Rng rng(p_.seed);
    const std::uint64_t b = p_.tileSize;
    const std::uint64_t T = p_.tiles;
    const std::uint64_t n = T * b;

    // --- diagonally dominant matrix -------------------------------------
    mat_ = img.allocWords(n * n);
    for (std::uint64_t r = 0; r < n; ++r) {
        for (std::uint64_t c = 0; c < n; ++c) {
            double v = rng.uniformReal(-1.0, 1.0);
            if (r == c)
                v += 4.0 * static_cast<double>(n);
            matSet(img, mat_, n, r, c, v);
        }
    }

    // --- golden: unblocked Doolittle LU on a copy -----------------------
    std::vector<double> a(n * n);
    for (std::uint64_t i = 0; i < n * n; ++i)
        a[i] = img.readDouble(mat_ + i * wordBytes);
    for (std::uint64_t k = 0; k < n; ++k) {
        for (std::uint64_t i = k + 1; i < n; ++i) {
            a[i * n + k] /= a[k * n + k];
            for (std::uint64_t j = k + 1; j < n; ++j)
                a[i * n + j] -= a[i * n + k] * a[k * n + j];
        }
    }
    expected_ = std::move(a);

    // --- builtin tile kernels -------------------------------------------
    const Addr mat = mat_;
    auto cyclesFor = [b](double flops) {
        return static_cast<std::uint64_t>(flops * kCpf) + b;
    };
    auto tileRC = [mat, n](Addr tile) {
        const std::uint64_t off = (tile - mat) / wordBytes;
        return std::pair<std::uint64_t, std::uint64_t>{off / n,
                                                       off % n};
    };

    BuiltinBody getrf;
    getrf.apply = [mat, n, b, tileRC](MemImage& im,
                                      const TaskInstance& inst) {
        const auto [r0, c0] = tileRC(inst.outputs.at(0).base);
        for (std::uint64_t k = 0; k < b; ++k) {
            for (std::uint64_t i = k + 1; i < b; ++i) {
                const double l =
                    matGet(im, mat, n, r0 + i, c0 + k) /
                    matGet(im, mat, n, r0 + k, c0 + k);
                matSet(im, mat, n, r0 + i, c0 + k, l);
                for (std::uint64_t j = k + 1; j < b; ++j) {
                    matSet(im, mat, n, r0 + i, c0 + j,
                           matGet(im, mat, n, r0 + i, c0 + j) -
                               l * matGet(im, mat, n, r0 + k, c0 + j));
                }
            }
        }
    };
    getrf.cycles = [b, cyclesFor](const MemImage&, const TaskInstance&) {
        return cyclesFor(2.0 * static_cast<double>(b * b * b) / 3.0);
    };
    getrf.outputWords = [b](const MemImage&, const TaskInstance&) {
        return b * b;
    };

    // Row panel: A[k][j] := L_kk^{-1} A[k][j].
    BuiltinBody trsmRow;
    trsmRow.apply = [mat, n, b, tileRC](MemImage& im,
                                        const TaskInstance& inst) {
        const auto [xr, xc] = tileRC(inst.outputs.at(0).base);
        const auto [lr, lc] = tileRC(inst.inputs.at(1).dataBase);
        for (std::uint64_t c = 0; c < b; ++c) {
            for (std::uint64_t r = 0; r < b; ++r) {
                double v = matGet(im, mat, n, xr + r, xc + c);
                for (std::uint64_t k = 0; k < r; ++k) {
                    v -= matGet(im, mat, n, lr + r, lc + k) *
                         matGet(im, mat, n, xr + k, xc + c);
                }
                matSet(im, mat, n, xr + r, xc + c, v); // L unit-diag
            }
        }
    };
    trsmRow.cycles = [b, cyclesFor](const MemImage&,
                                    const TaskInstance&) {
        return cyclesFor(static_cast<double>(b * b * b));
    };
    trsmRow.outputWords = getrf.outputWords;

    // Column panel: A[i][k] := A[i][k] U_kk^{-1}.
    BuiltinBody trsmCol;
    trsmCol.apply = [mat, n, b, tileRC](MemImage& im,
                                        const TaskInstance& inst) {
        const auto [xr, xc] = tileRC(inst.outputs.at(0).base);
        const auto [ur, uc] = tileRC(inst.inputs.at(1).dataBase);
        for (std::uint64_t r = 0; r < b; ++r) {
            for (std::uint64_t c = 0; c < b; ++c) {
                double v = matGet(im, mat, n, xr + r, xc + c);
                for (std::uint64_t k = 0; k < c; ++k) {
                    v -= matGet(im, mat, n, xr + r, xc + k) *
                         matGet(im, mat, n, ur + k, uc + c);
                }
                matSet(im, mat, n, xr + r, xc + c,
                       v / matGet(im, mat, n, ur + c, uc + c));
            }
        }
    };
    trsmCol.cycles = trsmRow.cycles;
    trsmCol.outputWords = getrf.outputWords;

    // C -= A * B (A = (i,k), B = (k,j)).
    BuiltinBody gemm;
    gemm.apply = [mat, n, b, tileRC](MemImage& im,
                                     const TaskInstance& inst) {
        const auto [cr, cc] = tileRC(inst.outputs.at(0).base);
        const auto [ar, ac] = tileRC(inst.inputs.at(1).dataBase);
        const auto [br, bc] = tileRC(inst.inputs.at(2).dataBase);
        for (std::uint64_t r = 0; r < b; ++r) {
            for (std::uint64_t c = 0; c < b; ++c) {
                double v = matGet(im, mat, n, cr + r, cc + c);
                for (std::uint64_t k = 0; k < b; ++k) {
                    v -= matGet(im, mat, n, ar + r, ac + k) *
                         matGet(im, mat, n, br + k, bc + c);
                }
                matSet(im, mat, n, cr + r, cc + c, v);
            }
        }
    };
    gemm.cycles = [b, cyclesFor](const MemImage&, const TaskInstance&) {
        return cyclesFor(2.0 * static_cast<double>(b * b * b));
    };
    gemm.outputWords = getrf.outputWords;

    TaskTypeRegistry& reg = delta.registry();
    const TaskTypeId getrfTy =
        reg.addBuiltinType("getrf", std::move(getrf));
    const TaskTypeId trsmRowTy =
        reg.addBuiltinType("trsm_row", std::move(trsmRow));
    const TaskTypeId trsmColTy =
        reg.addBuiltinType("trsm_col", std::move(trsmCol));
    const TaskTypeId gemmTy =
        reg.addBuiltinType("lu_gemm", std::move(gemm));
    const double b3 = static_cast<double>(b * b * b);
    reg.setWorkFn(getrfTy, [b3](const MemImage&, const TaskInstance&) {
        return 2.0 * b3 / 3.0;
    });
    reg.setWorkFn(trsmRowTy, [b3](const MemImage&, const TaskInstance&) {
        return b3;
    });
    reg.setWorkFn(trsmColTy, [b3](const MemImage&, const TaskInstance&) {
        return b3;
    });
    reg.setWorkFn(gemmTy, [b3](const MemImage&, const TaskInstance&) {
        return 2.0 * b3;
    });

    // --- task DAG ---------------------------------------------------------
    std::vector<std::int64_t> lastWriter(T * T, -1);
    auto tidx = [T](std::uint64_t i, std::uint64_t j) {
        return i * T + j;
    };
    auto addDeps = [&](TaskId id,
                       std::initializer_list<std::uint64_t> tilesRead) {
        std::set<TaskId> deps;
        for (const std::uint64_t t : tilesRead) {
            if (lastWriter[t] >= 0)
                deps.insert(static_cast<TaskId>(lastWriter[t]));
        }
        for (const TaskId d : deps)
            graph.addBarrier(d, id);
    };

    for (std::uint64_t k = 0; k < T; ++k) {
        WriteDesc outKK;
        outKK.base = matAddr(mat, n, k * b, k * b);
        const TaskId fk = graph.addTask(
            getrfTy, {tileStream(mat, n, b, k, k)}, {outKK});
        addDeps(fk, {tidx(k, k)});
        lastWriter[tidx(k, k)] = fk;

        for (std::uint64_t j = k + 1; j < T; ++j) {
            WriteDesc outKJ;
            outKJ.base = matAddr(mat, n, k * b, j * b);
            const TaskId tr = graph.addTask(
                trsmRowTy,
                {tileStream(mat, n, b, k, j),
                 tileStream(mat, n, b, k, k)},
                {outKJ});
            addDeps(tr, {tidx(k, j), tidx(k, k)});
            lastWriter[tidx(k, j)] = tr;
        }
        for (std::uint64_t i = k + 1; i < T; ++i) {
            WriteDesc outIK;
            outIK.base = matAddr(mat, n, i * b, k * b);
            const TaskId tc = graph.addTask(
                trsmColTy,
                {tileStream(mat, n, b, i, k),
                 tileStream(mat, n, b, k, k)},
                {outIK});
            addDeps(tc, {tidx(i, k), tidx(k, k)});
            lastWriter[tidx(i, k)] = tc;
        }
        for (std::uint64_t i = k + 1; i < T; ++i) {
            for (std::uint64_t j = k + 1; j < T; ++j) {
                WriteDesc outIJ;
                outIJ.base = matAddr(mat, n, i * b, j * b);
                const TaskId gk = graph.addTask(
                    gemmTy,
                    {tileStream(mat, n, b, i, j),
                     tileStream(mat, n, b, i, k),
                     tileStream(mat, n, b, k, j)},
                    {outIJ});
                addDeps(gk, {tidx(i, j), tidx(i, k), tidx(k, j)});
                lastWriter[tidx(i, j)] = gk;
            }
        }
    }
}

bool
LuWorkload::check(const MemImage& img) const
{
    const std::uint64_t n = p_.tiles * p_.tileSize;
    for (std::uint64_t i = 0; i < n * n; ++i) {
        const double got = img.readDouble(mat_ + i * wordBytes);
        const double want = expected_[i];
        if (std::abs(got - want) >
            1e-6 * std::max(1.0, std::abs(want))) {
            warn("lu mismatch at ", i, ": got ", got, " want ", want);
            return false;
        }
    }
    return true;
}

} // namespace ts
