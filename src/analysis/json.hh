/**
 * @file
 * A minimal recursive-descent JSON reader for the analysis tools.
 *
 * Just enough JSON to ingest the simulator's own outputs — flat
 * StatSet dumps, the bench wrapper objects written under
 * TS_BENCH_JSON, and Perfetto/chrome trace-event files.  Not a
 * general-purpose parser: numbers are doubles, objects are ordered
 * maps, and duplicate keys keep the first value.
 */

#ifndef TS_ANALYSIS_JSON_HH
#define TS_ANALYSIS_JSON_HH

#include <map>
#include <string>
#include <vector>

namespace ts
{
namespace analysis
{

/** A parsed JSON value (tagged union over the standard kinds). */
struct Json
{
    enum class Kind
    {
        Null,
        Bool,
        Num,
        Str,
        Arr,
        Obj
    };

    Kind kind = Kind::Null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<Json> arr;
    std::map<std::string, Json> obj;

    bool isObj() const { return kind == Kind::Obj; }
    bool isArr() const { return kind == Kind::Arr; }
    bool isNum() const { return kind == Kind::Num; }

    bool has(const std::string& key) const { return obj.count(key) != 0; }
    const Json& at(const std::string& key) const { return obj.at(key); }
};

/**
 * Parse @p text as one JSON document.
 * @return false on malformed input (out is then partial).
 */
bool parseJson(const std::string& text, Json& out);

} // namespace analysis
} // namespace ts

#endif // TS_ANALYSIS_JSON_HH
