#include <cmath>
#include <map>

#include "workloads/centroid.hh"
#include "workloads/cholesky.hh"
#include "workloads/join.hh"
#include "workloads/lu.hh"
#include "workloads/msort.hh"
#include "workloads/spmv.hh"
#include "workloads/tricount.hh"

namespace ts
{

const std::vector<Wk>&
allWorkloads()
{
    static const std::vector<Wk> all = {
        Wk::Spmv, Wk::Join,     Wk::Msort,    Wk::Cholesky,
        Wk::Lu,   Wk::Tricount, Wk::Centroid,
    };
    return all;
}

const char*
wkName(Wk w)
{
    switch (w) {
      case Wk::Spmv: return "spmv";
      case Wk::Join: return "join";
      case Wk::Msort: return "msort";
      case Wk::Cholesky: return "cholesky";
      case Wk::Lu: return "lu";
      case Wk::Tricount: return "tricount";
      case Wk::Centroid: return "centroid";
    }
    return "?";
}

namespace
{

/** Round up to a power of two. */
std::uint64_t
pow2Ceil(double v)
{
    std::uint64_t p = 1;
    while (static_cast<double>(p) < v)
        p <<= 1;
    return p;
}

} // namespace

std::unique_ptr<Workload>
makeWorkload(Wk w, const SuiteParams& sp)
{
    const double s = sp.scale;
    switch (w) {
      case Wk::Spmv: {
        SpmvParams p;
        p.seed = sp.seed;
        p.rows = static_cast<std::uint64_t>(256 * s);
        p.cols = static_cast<std::uint64_t>(512 * s);
        return std::make_unique<SpmvWorkload>(p);
      }
      case Wk::Join: {
        JoinParams p;
        p.seed = sp.seed;
        p.rTotal = static_cast<std::uint64_t>(6144 * s);
        p.sSize = static_cast<std::uint64_t>(512 * s);
        return std::make_unique<JoinWorkload>(p);
      }
      case Wk::Msort: {
        MsortParams p;
        p.seed = sp.seed;
        p.n = pow2Ceil(8192 * s);
        return std::make_unique<MsortWorkload>(p);
      }
      case Wk::Cholesky: {
        CholeskyParams p;
        p.seed = sp.seed;
        p.tiles = std::max<std::uint64_t>(
            2, static_cast<std::uint64_t>(8 * std::cbrt(s)));
        return std::make_unique<CholeskyWorkload>(p);
      }
      case Wk::Lu: {
        LuParams p;
        p.seed = sp.seed;
        p.tiles = std::max<std::uint64_t>(
            2, static_cast<std::uint64_t>(8 * std::cbrt(s)));
        return std::make_unique<LuWorkload>(p);
      }
      case Wk::Tricount: {
        TricountParams p;
        p.seed = sp.seed;
        p.vertices = static_cast<std::uint64_t>(256 * s);
        return std::make_unique<TricountWorkload>(p);
      }
      case Wk::Centroid: {
        CentroidParams p;
        p.seed = sp.seed;
        p.points = static_cast<std::uint64_t>(1024 * s);
        return std::make_unique<CentroidWorkload>(p);
      }
    }
    fatal("unknown workload");
}

} // namespace ts
