/**
 * @file
 * Tab-2: workload characterization — task counts, dependence-edge
 * kinds, shared groups, and the distribution of per-task work
 * (mean and coefficient of variation), computed from the built task
 * graphs without simulating.
 *
 * A thin wrapper over the driver layer: each workload's graph is
 * built and characterized on the engine's host thread pool
 * (-j N, default hardware concurrency); rows print in canonical
 * order regardless of which thread finished first.
 */

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "driver/sweep.hh"

namespace
{

using namespace ts;
using namespace ts::bench;

struct Row
{
    std::size_t tasks = 0;
    std::size_t barriers = 0;
    std::size_t pipelines = 0;
    std::size_t groups = 0;
    double meanWork = 0;
    double cvWork = 0;
};

Row
characterize(Wk w, const SuiteParams& sp)
{
    auto wl = makeWorkload(w, sp);
    Delta delta(DeltaConfig::delta(8));
    TaskGraph g;
    wl->build(delta, g);

    Row r;
    r.tasks = g.numTasks();
    for (const DepEdge& e : g.edges()) {
        if (e.kind == DepKind::Barrier)
            ++r.barriers;
        else
            ++r.pipelines;
    }
    r.groups = g.groups().size();

    double sum = 0, sum2 = 0;
    for (const TaskInstance& t : g.tasks()) {
        const double wk =
            delta.registry().estimateWork(delta.image(), t);
        sum += wk;
        sum2 += wk * wk;
    }
    r.meanWork = sum / static_cast<double>(r.tasks);
    const double var =
        sum2 / static_cast<double>(r.tasks) - r.meanWork * r.meanWork;
    r.cvWork = r.meanWork > 0
                   ? std::sqrt(std::max(0.0, var)) / r.meanWork
                   : 0;
    return r;
}

} // namespace

int
main(int argc, char** argv)
{
    try {
        const driver::RunOptions opt =
            driver::parseCommandLine(argc, argv, /*strict=*/true);
        bench::options() = opt;

        const std::vector<Wk>& workloads = opt.workloads;
        const SuiteParams sp = opt.suiteParams();
        std::vector<Row> rows(workloads.size());
        driver::parallelFor(workloads.size(), opt.jobs,
                            [&](std::size_t i) {
                                rows[i] =
                                    characterize(workloads[i], sp);
                            });

        std::puts("");
        std::puts("Tab-2  Workload characterization (default scale)");
        rule(78);
        std::printf("%-10s %7s %9s %9s %7s %11s %7s\n", "workload",
                    "tasks", "barriers", "pipelines", "groups",
                    "mean work", "CV");
        rule(78);
        for (std::size_t i = 0; i < workloads.size(); ++i) {
            const Row& r = rows[i];
            std::printf("%-10s %7zu %9zu %9zu %7zu %11.0f %7.2f\n",
                        wkName(workloads[i]), r.tasks, r.barriers,
                        r.pipelines, r.groups, r.meanWork, r.cvWork);
        }
        rule(78);
        std::puts("CV = per-task work variation; the workloads with "
                  "high CV are the ones where work-aware balancing "
                  "pays off");
        return 0;
    } catch (const ts::FatalError& e) {
        std::cerr << "tab_workloads: " << e.what() << "\n";
        return 2;
    }
}
