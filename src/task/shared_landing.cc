#include "task/shared_landing.hh"

#include "sim/logging.hh"

namespace ts
{

void
SharedLanding::setup(const GroupSetupMsg& msg)
{
    TS_ASSERT(!known(msg.group), "group ", msg.group, " set up twice");
    G g;
    g.rangeBase = msg.rangeBase;
    g.words = msg.words;
    g.landing = msg.landingOffset;
    const Addr firstLine = lineAlign(msg.rangeBase);
    const Addr lastByte = msg.rangeBase + msg.words * wordBytes - 1;
    g.linesExpected = (lineAlign(lastByte) - firstLine) / lineBytes + 1;
    groups_.emplace(msg.group, g);

    auto it = stash_.find(msg.group);
    if (it != stash_.end()) {
        for (Addr line : it->second)
            apply(groups_.at(msg.group), line);
        stash_.erase(it);
    }
}

void
SharedLanding::apply(G& g, Addr lineAddr)
{
    for (unsigned w = 0; w < lineWords; ++w) {
        const Addr a = lineAddr + w * wordBytes;
        if (a < g.rangeBase || a >= g.rangeBase + g.words * wordBytes)
            continue;
        spm_.write(g.landing + (a - g.rangeBase) / wordBytes,
                   img_.readWord(a));
    }
    ++g.linesArrived;
    ++linesLanded_;
}

void
SharedLanding::fill(std::uint32_t group, Addr lineAddr)
{
    auto it = groups_.find(group);
    if (it == groups_.end()) {
        stash_[group].push_back(lineAddr);
        return;
    }
    apply(it->second, lineAddr);
}

bool
SharedLanding::complete(std::uint32_t group) const
{
    auto it = groups_.find(group);
    return it != groups_.end() &&
           it->second.linesArrived >= it->second.linesExpected;
}

} // namespace ts
