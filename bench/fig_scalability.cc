/**
 * @file
 * Fig-3: lane-count scaling, Delta vs static-parallel, 1..16 lanes.
 *
 * Expected shape: Delta scales further before flattening because
 * dynamic balancing keeps added lanes busy; msort's pipelining gain
 * grows with lane count (a deeper merge tree fits concurrently).
 */

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.hh"

namespace
{

using namespace ts;
using namespace ts::bench;

const std::vector<std::uint32_t> kLanes = {1, 2, 4, 8, 16};
const std::vector<Wk> kWorkloads = {Wk::Spmv, Wk::Join, Wk::Msort,
                                    Wk::Tricount};

std::map<std::pair<Wk, std::uint32_t>, std::pair<double, double>>
    gCycles; // (static, delta)

void
runPoint(benchmark::State& state, Wk w, std::uint32_t lanes)
{
    SuiteParams sp;
    for (auto _ : state) {
        const RunResult st =
            runOnce(w, DeltaConfig::staticBaseline(lanes), sp);
        const RunResult dy = runOnce(w, DeltaConfig::delta(lanes), sp);
        if (!st.correct || !dy.correct)
            state.SkipWithError("incorrect result");
        gCycles[{w, lanes}] = {st.cycles, dy.cycles};
        state.counters["speedup"] = st.cycles / dy.cycles;
    }
}

void
printTable()
{
    std::puts("");
    std::puts("Fig-3  Scaling with lane count: cycles (and Delta "
              "self-relative scaling)");
    for (const Wk w : kWorkloads) {
        rule();
        std::printf("%s\n", wkName(w));
        std::printf("  %6s %14s %14s %9s %14s\n", "lanes",
                    "static(cyc)", "delta(cyc)", "speedup",
                    "delta-scaling");
        const double delta1 = gCycles.at({w, 1}).second;
        for (const auto lanes : kLanes) {
            const auto [st, dy] = gCycles.at({w, lanes});
            std::printf("  %6u %14.0f %14.0f %8.2fx %13.2fx\n", lanes,
                        st, dy, st / dy, delta1 / dy);
        }
    }
    rule();
    std::puts("expected shape: Delta's advantage grows with lanes on "
              "skewed workloads; msort pipelining needs enough lanes "
              "to co-host the merge tree");
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(&argc, argv);
    for (const Wk w : kWorkloads) {
        for (const auto lanes : kLanes) {
            benchmark::RegisterBenchmark(
                (std::string("fig3/") + wkName(w) + "/lanes:" +
                 std::to_string(lanes))
                    .c_str(),
                [w, lanes](benchmark::State& s) {
                    runPoint(s, w, lanes);
                })
                ->Iterations(1)
                ->Unit(benchmark::kMillisecond);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable();
    return 0;
}
