file(REMOVE_RECURSE
  "CMakeFiles/ts_workloads.dir/centroid.cc.o"
  "CMakeFiles/ts_workloads.dir/centroid.cc.o.d"
  "CMakeFiles/ts_workloads.dir/cholesky.cc.o"
  "CMakeFiles/ts_workloads.dir/cholesky.cc.o.d"
  "CMakeFiles/ts_workloads.dir/join.cc.o"
  "CMakeFiles/ts_workloads.dir/join.cc.o.d"
  "CMakeFiles/ts_workloads.dir/lu.cc.o"
  "CMakeFiles/ts_workloads.dir/lu.cc.o.d"
  "CMakeFiles/ts_workloads.dir/msort.cc.o"
  "CMakeFiles/ts_workloads.dir/msort.cc.o.d"
  "CMakeFiles/ts_workloads.dir/spmv.cc.o"
  "CMakeFiles/ts_workloads.dir/spmv.cc.o.d"
  "CMakeFiles/ts_workloads.dir/suite.cc.o"
  "CMakeFiles/ts_workloads.dir/suite.cc.o.d"
  "CMakeFiles/ts_workloads.dir/tricount.cc.o"
  "CMakeFiles/ts_workloads.dir/tricount.cc.o.d"
  "libts_workloads.a"
  "libts_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
