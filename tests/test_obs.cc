/**
 * @file
 * Observability-layer tests (src/obs/): flight-recorder ring
 * semantics, the weak-event hook the timeline samples through, the
 * deadlock diagnosis (stuck sleepers + recorder dump), host-profiler
 * stat keys, and the timeline's bit-identity contract across thread
 * counts and snapshot forks.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "accel/delta.hh"
#include "driver/sweep.hh"
#include "obs/flight_recorder.hh"
#include "obs/host_profiler.hh"
#include "sim/channel.hh"
#include "sim/simulator.hh"
#include "workloads/workload.hh"

using namespace ts;

namespace
{

// ---------------------------------------------------------------------
// Flight recorder: ring semantics and dump format.
// ---------------------------------------------------------------------

TEST(FlightRecorderTest, RingEvictsOldestAndDumpsInOrder)
{
    obs::FlightRecorder rec(4);
    EXPECT_EQ(rec.capacity(), 4u);
    EXPECT_EQ(rec.size(), 0u);

    const std::vector<std::string> names = {"n0", "n1", "n2",
                                            "n3", "n4", "n5"};
    for (Tick t = 0; t < 6; ++t)
        rec.record(t, obs::FlightRecorder::Kind::Event,
                   &names[static_cast<std::size_t>(t)]);
    EXPECT_EQ(rec.size(), 4u) << "the ring must cap at capacity";

    std::ostringstream os;
    rec.dump(os);
    const std::string out = os.str();
    EXPECT_EQ(out.find("n0"), std::string::npos)
        << "evicted records must not appear";
    EXPECT_EQ(out.find("n1"), std::string::npos);
    EXPECT_LT(out.find("n2"), out.find("n3"))
        << "dump must be oldest-first";
    EXPECT_LT(out.find("n4"), out.find("n5"));
}

TEST(FlightRecorderTest, RecordKindsFormatTheirAux)
{
    obs::FlightRecorder rec(8);
    const std::string sleeper = "sleeper";
    const std::string napper = "napper";
    const std::string ch = "ch";
    rec.record(3, obs::FlightRecorder::Kind::Sleep, &sleeper,
               obs::FlightRecorder::kNoAux);
    rec.record(4, obs::FlightRecorder::Kind::Sleep, &napper, 42);
    rec.record(5, obs::FlightRecorder::Kind::Commit, &ch, 2);

    std::ostringstream os;
    rec.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("sleeper (until wake)"), std::string::npos)
        << out;
    EXPECT_NE(out.find("napper (until @42)"), std::string::npos)
        << out;
    EXPECT_NE(out.find("ch (2 visible)"), std::string::npos) << out;
}

// ---------------------------------------------------------------------
// Weak events: the sampling hook must be invisible to liveness.
// ---------------------------------------------------------------------

/** Counts down for N cycles, then goes idle (quiescent). */
class Countdown : public Ticked
{
  public:
    explicit Countdown(int n) : Ticked("countdown"), left_(n) {}

    void
    tick(Tick) override
    {
        if (left_ > 0)
            --left_;
    }

    bool busy() const override { return left_ > 0; }

  private:
    int left_;
};

TEST(WeakEventTest, WeakObserversNeverExtendTheRun)
{
    Simulator sim;
    Countdown c(5);
    sim.add(&c);

    std::vector<Tick> sampledAt;
    sim.scheduleWeak(3, [&] { sampledAt.push_back(sim.now()); });
    // Far past quiescence: must neither fire nor keep the run alive.
    sim.scheduleWeak(1000, [&] { sampledAt.push_back(sim.now()); });

    const Tick end = sim.run(10000);
    EXPECT_EQ(end, 5u)
        << "a pending weak observer must not delay quiescence";
    ASSERT_EQ(sampledAt.size(), 1u);
    EXPECT_EQ(sampledAt[0], 3u)
        << "due weak observers fire at their exact tick";
}

TEST(WeakEventTest, WeakFiresAfterStrongEventsOfTheSameTick)
{
    Simulator sim;
    Countdown c(10);
    sim.add(&c);

    int strongValue = 0;
    int seenByWeak = -1;
    sim.schedule(4, [&] { strongValue = 7; });
    sim.scheduleWeak(4, [&] { seenByWeak = strongValue; });

    sim.run(10000);
    EXPECT_EQ(seenByWeak, 7)
        << "weak observers must see post-event state of their tick";
}

// ---------------------------------------------------------------------
// Deadlock diagnosis: stuck sleepers, channel states, recorder dump.
// ---------------------------------------------------------------------

/** Sleeps forever on a wake that never comes, while still busy. */
class StuckConsumer : public Ticked
{
  public:
    StuckConsumer() : Ticked("stuck_consumer") {}

    void
    tick(Tick) override
    {
        sleepOnWake();
    }

    bool busy() const override { return true; }
};

TEST(DeadlockDiagnosisTest, NamesStuckSleeperAndItsChannels)
{
    Simulator sim;
    auto& ch = sim.makeChannel<int>("starved_ch", 4);
    StuckConsumer cons;
    sim.add(&cons);
    ch.addObserver(&cons);

    try {
        sim.run(1000);
        FAIL() << "expected a deadlock fatal";
    } catch (const FatalError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("stuck components:"), std::string::npos)
            << what;
        EXPECT_NE(what.find("stuck_consumer: sleeping until woken"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("observes starved_ch [empty]"),
                  std::string::npos)
            << "the diagnosis must show each observed channel's "
               "state: "
            << what;
    }
}

TEST(DeadlockDiagnosisTest, FlightRecorderDumpRidesAlong)
{
    Simulator sim;
    obs::FlightRecorder rec(16);
    sim.setFlightRecorder(&rec);
    StuckConsumer cons;
    sim.add(&cons);

    try {
        sim.run(1000);
        FAIL() << "expected a deadlock fatal";
    } catch (const FatalError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("flight recorder (last"),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("sleep  stuck_consumer (until wake)"),
                  std::string::npos)
            << "the ring must hold the fatal sleep: " << what;
    }
}

// ---------------------------------------------------------------------
// Host profiler: bucket mapping and reported keys.
// ---------------------------------------------------------------------

TEST(HostProfilerTest, TickBucketsFollowComponentNames)
{
    using P = obs::HostProfiler;
    EXPECT_EQ(P::tickBucketForName("lane0.taskUnit"), P::TickLane);
    EXPECT_EQ(P::tickBucketForName("lane12.readEngine"), P::TickLane);
    EXPECT_EQ(P::tickBucketForName("noc.router3"), P::TickNoc);
    EXPECT_EQ(P::tickBucketForName("main_memory"), P::TickDram);
    EXPECT_EQ(P::tickBucketForName("memnode"), P::TickDram);
    EXPECT_EQ(P::tickBucketForName("dispatcher"), P::TickDispatcher);
    EXPECT_EQ(P::tickBucketForName("something_else"), P::TickOther);
}

StatSet
runSpmv(DeltaConfig cfg)
{
    SuiteParams sp;
    sp.scale = 0.25;
    sp.seed = 7;
    auto wl = makeWorkload(Wk::Spmv, sp);
    Delta delta(cfg);
    TaskGraph graph;
    wl->build(delta, graph);
    StatSet stats = delta.run(graph);
    EXPECT_TRUE(wl->check(delta.image()));
    return stats;
}

TEST(HostProfilerTest, ProfiledRunReportsHotspotKeys)
{
    DeltaConfig cfg = DeltaConfig::delta();
    cfg.hostProfile = true;
    const StatSet stats = runSpmv(cfg);

    EXPECT_TRUE(stats.has("sim.host.profile.tickLaneNs"));
    EXPECT_TRUE(stats.has("sim.host.profile.commitNs"));
    EXPECT_TRUE(stats.has("sim.host.profile.eventsNs"));
    EXPECT_TRUE(stats.has("sim.host.profile.quiescenceNs"));
    EXPECT_GT(stats.get("sim.host.profile.tickLaneNs"), 0.0)
        << "lanes dominate spmv; their bucket cannot be empty";

    // Excluded from byte-compared dumps along with every other
    // sim.host.* counter.
    std::ostringstream os;
    stats.dumpJson(os, "sim.host.");
    EXPECT_EQ(os.str().find("sim.host.profile."), std::string::npos);
}

TEST(HostProfilerTest, UnprofiledRunHasNoHotspotKeys)
{
    const StatSet stats = runSpmv(DeltaConfig::delta());
    EXPECT_FALSE(stats.has("sim.host.profile.tickLaneNs"));
}

// ---------------------------------------------------------------------
// Timeline: shape, invariants, subsets, caps.
// ---------------------------------------------------------------------

TEST(TimelineTest, SamplesCoverTheRunAndSumToTheAccounting)
{
    DeltaConfig cfg = DeltaConfig::delta();
    cfg.timelineInterval = 500;
    const StatSet stats = runSpmv(cfg);

    EXPECT_EQ(stats.get("delta.timeline.interval"), 500.0);
    const auto n = static_cast<std::size_t>(
        stats.get("delta.timeline.samples"));
    ASSERT_GE(n, 2u) << "at least the start and quiescence samples";

    EXPECT_EQ(stats.get("delta.timeline.t.00000"), 0.0)
        << "sample 0 is the pre-run baseline";
    char last[32];
    std::snprintf(last, sizeof last, "%05zu", n - 1);
    EXPECT_EQ(stats.get("delta.timeline.t." + std::string(last)),
              stats.get("delta.cycles"))
        << "the final sample lands exactly at quiescence";

    // Counter series report per-interval deltas, so each lane's busy
    // column sums to its total busy cycles; across lanes that is the
    // accounting waterfall's busy row.
    double busySum = 0.0;
    for (const auto& [name, value] :
         stats.matchPrefix("delta.timeline.lane")) {
        if (name.find(".busy.") != std::string::npos)
            busySum += value;
    }
    EXPECT_EQ(busySum, stats.get("delta.accounting.busy"))
        << "timeline busy deltas must reconcile with the "
           "cycle-accounting totals";
}

TEST(TimelineTest, SeriesListSelectsProbeGroups)
{
    DeltaConfig cfg = DeltaConfig::delta();
    cfg.timelineInterval = 500;
    cfg.timelineSeries = "noc,dram";
    const StatSet stats = runSpmv(cfg);

    EXPECT_TRUE(stats.has("delta.timeline.nocInFlight.00000"));
    EXPECT_TRUE(stats.has("delta.timeline.dramQueue.00000"));
    EXPECT_FALSE(stats.has("delta.timeline.readyQueue.00000"));
    EXPECT_FALSE(stats.has("delta.timeline.lane0.busy.00000"));
}

TEST(TimelineTest, MaxSamplesCapsTheCadence)
{
    DeltaConfig cfg = DeltaConfig::delta();
    cfg.timelineInterval = 10;
    cfg.timelineMaxSamples = 4;
    const StatSet stats = runSpmv(cfg);

    const auto n = static_cast<std::size_t>(
        stats.get("delta.timeline.samples"));
    EXPECT_LE(n, 5u)
        << "at most maxSamples cadence samples plus the final one";
    EXPECT_GE(n, 4u);
}

// ---------------------------------------------------------------------
// Determinism: the timeline must never depend on how the host ran
// the simulation (thread count, snapshot forks).
// ---------------------------------------------------------------------

driver::SweepSpec
timelineSpec()
{
    driver::SweepSpec spec;
    spec.workloads = {Wk::Spmv, Wk::Msort};
    spec.configs = driver::sweepConfigsFromList("static,delta");
    spec.seeds = {7};
    spec.scales = {0.25};
    spec.timelineInterval = 500;
    return spec;
}

std::vector<std::string>
runDumps(driver::SweepSpec spec)
{
    driver::SweepReport report = driver::Sweep(std::move(spec)).run();
    std::vector<std::string> dumps;
    for (const driver::RunOutcome& out : report.runs) {
        EXPECT_TRUE(out.ok()) << out.point.tag() << ": " << out.error;
        std::ostringstream os;
        out.stats.dumpJson(os, "sim.host.");
        dumps.push_back(os.str());
        EXPECT_NE(os.str().find("delta.timeline.samples"),
                  std::string::npos)
            << out.point.tag() << ": timeline missing from sweep run";
    }
    return dumps;
}

TEST(TimelineDeterminismTest, ParallelSweepBitIdenticalToSerial)
{
    driver::SweepSpec serial = timelineSpec();
    serial.jobs = 1;
    driver::SweepSpec parallel = timelineSpec();
    parallel.jobs = 4;

    const auto a = runDumps(std::move(serial));
    const auto b = runDumps(std::move(parallel));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i])
            << "timeline columns diverged between -j1 and -j4";
}

TEST(TimelineDeterminismTest, ForkedRunsBitIdenticalToFresh)
{
    driver::SweepSpec forked = timelineSpec();
    // Two seeds make the second run of each config a snapshot fork.
    forked.seeds = {7, 11};
    forked.jobs = 1;
    driver::SweepSpec fresh = forked;
    fresh.noSnapshotFork = true;

    const auto a = runDumps(std::move(forked));
    const auto b = runDumps(std::move(fresh));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i])
            << "timeline columns diverged between forked and fresh "
               "runs";
}

} // namespace
