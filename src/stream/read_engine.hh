/**
 * @file
 * The read stream engine: turns a StreamDesc into a timed sequence of
 * memory traffic and a token stream delivered into a fabric input
 * port.
 *
 * Internally a three-stage pipeline of fetch windows:
 *   ptr stage  (CSR segment pointers)
 *   idx stage  (indirect indices / CSR column ids)
 *   data stage (the actual values)
 * plus a delivery stage applying element repetition and port
 * back-pressure.  Each stage only advances when its downstream has
 * space, so memory-level parallelism is bounded and realistic.
 */

#ifndef TS_STREAM_READ_ENGINE_HH
#define TS_STREAM_READ_ENGINE_HH

#include "sim/simulator.hh"
#include "stream/fetcher.hh"
#include "stream/pipe_set.hh"

namespace ts
{

/** Read-engine tuning knobs. */
struct ReadEngineCfg
{
    std::uint32_t deliverWidth = 2; ///< tokens to the port per cycle
    std::uint32_t genPerCycle = 4;  ///< addresses generated per cycle
    WordFetcher::Cfg fetcher;
};

/** One input-stream engine (a lane owns several). */
class ReadEngine : public Ticked
{
  public:
    ReadEngine(std::string name, const MemImage& img, Scratchpad* spm,
               MemPortIf* mem, PipeSet* pipes,
               ReadEngineCfg cfg = {});

    /**
     * Start streaming @p d into @p dest.  @p dest may be null to
     * model traffic without delivering tokens (builtin-kernel input
     * staging).  @p destOwner, when given, is the component consuming
     * @p dest; it is woken whenever tokens are delivered (TokenFifos
     * carry no wake hooks of their own).
     */
    void program(const StreamDesc& d, TokenFifo* dest,
                 Ticked* destOwner = nullptr);

    /** Whether a programmed stream is still in flight. */
    bool active() const { return active_; }

    /** Cycle-accounting probe: stream blocked on DRAM fetches. */
    bool waitingOnMem() const;

    /** Cycle-accounting probe: pipe-input stream starved of chunks
     *  from the producer lane (data still crossing the NoC). */
    bool waitingOnPipe() const;

    void tick(Tick now) override;
    bool busy() const override { return active_; }
    void reportStats(StatSet& stats) const override;

    std::uint64_t tokensDelivered() const { return tokensDelivered_; }
    std::uint64_t linesRequested() const;

    /** DRAM line fetches avoided by landing-zone reads (spatial
     *  mapping attribution). */
    std::uint64_t
    landingLinesAvoided() const
    {
        return dataF_.landingLines();
    }

    std::unique_ptr<ComponentSnap> saveState() const override;
    void restoreState(const ComponentSnap& snap) override;

  private:
    /** Pointers (dest_, destOwner_) are copied raw: restore happens
     *  in place on the same object graph, so they stay valid. */
    struct Snap final : ComponentSnap
    {
        StreamDesc d;
        TokenFifo* dest = nullptr;
        Ticked* destOwner = nullptr;
        bool active = false;
        std::uint64_t genPos = 0;
        std::uint64_t loop = 0;
        std::uint64_t outer = 0, inner = 0;
        std::uint32_t rep2 = 0;
        std::uint64_t idxGenPos = 0;
        std::uint64_t ptrGenPos = 0;
        bool havePrevPtr = false;
        std::int64_t prevPtr = 0;
        bool haveLo = false;
        std::int64_t loVal = 0;
        std::uint64_t segIdx = 0;
        std::uint64_t segRemaining = 0;
        std::int64_t segCursor = 0;
        std::uint32_t repeatLeft = 0;
        Token repeatTok;
        bool sawStreamEnd = false;
        WordFetcher::State ptrF, idxF, dataF;
        std::uint64_t tokensDelivered = 0;
        std::uint64_t streamsRun = 0;
    };

    void generate(Tick now);
    void deliver();
    bool generationDone() const;
    void pumpCsrPointers();
    void pumpIndirectSegPointers();
    void generateSegments();

    Addr elemAddr(Space sp, Addr base, std::int64_t elemWords) const;

    const MemImage& img_;
    Scratchpad* spm_;
    PipeSet* pipes_;
    ReadEngineCfg cfg_;

    StreamDesc d_;
    TokenFifo* dest_ = nullptr;
    Ticked* destOwner_ = nullptr;
    bool active_ = false;

    // Generator state.
    std::uint64_t genPos_ = 0;   ///< data elements addressed
    std::uint64_t loop_ = 0;     ///< Linear replay cursor
    std::uint64_t outer_ = 0, inner_ = 0; ///< Strided2D cursors
    std::uint32_t rep2_ = 0;     ///< Strided2D row-repeat cursor
    std::uint64_t idxGenPos_ = 0;
    std::uint64_t ptrGenPos_ = 0;
    bool havePrevPtr_ = false;
    std::int64_t prevPtr_ = 0;
    bool haveLo_ = false;        ///< CsrIndirectSeg pair state
    std::int64_t loVal_ = 0;
    std::uint64_t segIdx_ = 0;
    std::uint64_t segRemaining_ = 0;
    std::int64_t segCursor_ = 0;

    // Delivery state.
    std::uint32_t repeatLeft_ = 0;
    Token repeatTok_;
    bool sawStreamEnd_ = false;

    WordFetcher ptrF_, idxF_, dataF_;

    std::uint64_t tokensDelivered_ = 0;
    std::uint64_t streamsRun_ = 0;
};

} // namespace ts

#endif // TS_STREAM_READ_ENGINE_HH
