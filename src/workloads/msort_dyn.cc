#include "workloads/msort_dyn.hh"

#include <algorithm>
#include <cmath>

#include "task/task_graph.hh"

namespace ts
{

void
MsortDynWorkload::build(Delta& delta, TaskGraph& graph)
{
    MemImage& img = delta.image();
    Rng rng(p_.seed);

    TS_ASSERT((p_.n & (p_.n - 1)) == 0,
              "msort-dyn n must be a power of 2");
    TS_ASSERT(p_.n % p_.leafSize == 0);
    TS_ASSERT(((p_.n / p_.leafSize) & (p_.n / p_.leafSize - 1)) == 0);

    // Two ping-pong buffers.  Both start holding the same unsorted
    // data: internal sort tasks are no-ops (their leaves do the
    // reading), so a leaf at any recursion depth must find the
    // original data in whichever buffer parity its depth lands on.
    const Addr src = img.allocWords(p_.n);
    const Addr dst = img.allocWords(p_.n);
    for (std::uint64_t i = 0; i < p_.n; ++i) {
        const std::int64_t v = rng.uniformInt(0, 1 << 30);
        img.writeInt(src + i * wordBytes, v);
        img.writeInt(dst + i * wordBytes, v);
    }
    finalAddr_ = dst;

    expected_.resize(p_.n);
    for (std::uint64_t i = 0; i < p_.n; ++i)
        expected_[i] = img.readInt(src + i * wordBytes);
    std::sort(expected_.begin(), expected_.end());

    // --- merge task type (same fabric body as static msort) ----------
    auto dfg = std::make_unique<Dfg>("merge2");
    const auto aIn = dfg->addInput();
    const auto bIn = dfg->addInput();
    const auto m =
        dfg->add(Op::Merge2, Operand::ref(aIn), Operand::ref(bIn));
    dfg->addOutput(m);
    mergeTy_ = delta.registry().addDfgType("merge2", std::move(dfg));

    // --- recursive sorter: sortInto(src = inputs[0], dst = outputs[0])
    const std::uint64_t leaf = p_.leafSize;
    BuiltinBody sorter;
    sorter.apply = [leaf](MemImage& mem, const TaskInstance& inst) {
        const StreamDesc& in = inst.inputs.at(0);
        const std::uint64_t n = in.count;
        if (n > leaf)
            return; // internal: children + merge do the work
        std::vector<std::int64_t> v(n);
        for (std::uint64_t i = 0; i < n; ++i)
            v[i] = mem.readInt(in.dataBase + i * wordBytes);
        std::sort(v.begin(), v.end());
        for (std::uint64_t i = 0; i < n; ++i)
            mem.writeInt(inst.outputs.at(0).base + i * wordBytes,
                         v[i]);
    };
    sorter.cycles = [leaf](const MemImage&, const TaskInstance& inst) {
        const std::uint64_t n = inst.inputs.at(0).count;
        if (n > leaf)
            return std::uint64_t(24); // split bookkeeping only
        const double d = static_cast<double>(n);
        return static_cast<std::uint64_t>(d * std::log2(d));
    };
    sorter.outputWords =
        [leaf](const MemImage&, const TaskInstance& inst) {
            const std::uint64_t n = inst.inputs.at(0).count;
            return n > leaf ? 0 : n;
        };
    sorter.spawn = [this, leaf](MemImage&, const TaskInstance& inst,
                                SpawnSet& set) {
        const StreamDesc& in = inst.inputs.at(0);
        const std::uint64_t n = in.count;
        if (n <= leaf)
            return;
        const std::uint64_t h = n / 2;
        const Addr s = in.dataBase;
        const Addr d = inst.outputs.at(0).base;
        const Addr sHi = s + h * wordBytes;
        const Addr dHi = d + h * wordBytes;
        // Children sort the *other* buffer's halves back into ours,
        // then the merge combines them into our destination range.
        WriteDesc outLo, outHi, outMerge;
        outLo.base = s;
        outHi.base = sHi;
        outMerge.base = d;
        const auto l = set.add(
            sortTy_, {StreamDesc::linear(Space::Dram, d, h)}, {outLo});
        const auto r = set.add(
            sortTy_, {StreamDesc::linear(Space::Dram, dHi, h)},
            {outHi});
        const auto mg = set.add(
            mergeTy_,
            {StreamDesc::linear(Space::Dram, s, h),
             StreamDesc::linear(Space::Dram, sHi, h)},
            {outMerge});
        set.barrier(l, mg);
        set.barrier(r, mg);
        // Whoever waited on this range being sorted now waits on the
        // subtree's merge instead (successor transfer on early
        // finish): the recursion's correctness linchpin.
        set.transferTo = mg;
    };
    sortTy_ =
        delta.registry().addBuiltinType("msd_sort", std::move(sorter));
    delta.registry().setWorkFn(
        sortTy_, [leaf](const MemImage&, const TaskInstance& inst) {
            const std::uint64_t n = inst.inputs.at(0).count;
            if (n > leaf)
                return 16.0;
            const double d = static_cast<double>(n);
            return d * std::log2(d);
        });

    // The host submits exactly one task; the tree unfolds on-device.
    WriteDesc rootOut;
    rootOut.base = dst;
    graph.addTask(sortTy_,
                  {StreamDesc::linear(Space::Dram, src, p_.n)},
                  {rootOut});
}

bool
MsortDynWorkload::check(const MemImage& img) const
{
    for (std::uint64_t i = 0; i < p_.n; ++i) {
        const std::int64_t got =
            img.readInt(finalAddr_ + i * wordBytes);
        if (got != expected_[i]) {
            warn("msort-dyn mismatch at ", i, ": got ", got, " want ",
                 expected_[i]);
            return false;
        }
    }
    return true;
}

} // namespace ts
