/**
 * @file
 * Sparse-analytics scenario: a skewed CSR SpMV, run under all three
 * scheduling policies and under the bulk-synchronous static-parallel
 * baseline, demonstrating the two TaskStream annotations that matter
 * for sparse workloads:
 *
 *  - work hints: row-block tasks carry wildly different nonzero
 *    counts, and the work-aware policy reads that straight from the
 *    stream descriptors;
 *  - shared reads: every task gathers from the same dense vector,
 *    which the hardware multicasts into lane scratchpads once.
 *
 *   $ ./build/examples/sparse_analytics
 */

#include <cstdio>

#include "driver/run_one.hh"
#include "workloads/spmv.hh"

using namespace ts;

namespace
{

driver::RunOptions gOpt;

double
runConfig(const char* label, DeltaConfig cfg)
{
    SpmvParams params;
    params.rows = 512;
    params.cols = 1024;
    SpmvWorkload wl(params);

    const driver::RunResult r = driver::runOne(gOpt, wl, cfg);
    std::printf("  %-28s %9.0f cycles  imbalance %.2f  "
                "dram lines %7.0f  %s\n",
                label, r.cycles, r.stats.get("delta.imbalance"),
                r.stats.get("mem.linesRead"),
                r.correct ? "ok" : "WRONG");
    return r.cycles;
}

} // namespace

int
main(int argc, char** argv)
{
    gOpt = driver::parseCommandLineOrExit(argc, argv);
    std::printf("SpMV over a 512x1024 CSR matrix with heavy-row skew, "
                "8 lanes\n\n");

    const double base =
        runConfig("static-parallel (baseline)",
                  DeltaConfig::staticBaseline(8));

    DeltaConfig count = DeltaConfig::delta(8);
    count.policy = SchedPolicy::DynCount;
    count.enableMulticast = false;
    count.enablePipeline = false;
    runConfig("dynamic, count-balanced", count);

    DeltaConfig work = count;
    work.policy = SchedPolicy::WorkAware;
    runConfig("dynamic, work-aware", work);

    const double full = runConfig("delta (work-aware + multicast)",
                                  DeltaConfig::delta(8));

    std::printf("\n  speedup over static-parallel: %.2fx\n",
                base / full);
    return 0;
}
