#include "accel/delta.hh"

#include <array>
#include <cmath>
#include <fstream>

#include "obs/timeline.hh"
#include "sim/logging.hh"
#include "spatial/mapper.hh"
#include "trace/accounting.hh"

namespace ts
{

DeltaConfig
DeltaConfig::delta(std::uint32_t lanes)
{
    DeltaConfig cfg;
    cfg.lanes = lanes;
    cfg.policy = SchedPolicy::WorkAware;
    cfg.enablePipeline = true;
    cfg.enableMulticast = true;
    return cfg;
}

DeltaConfig
DeltaConfig::staticBaseline(std::uint32_t lanes)
{
    DeltaConfig cfg;
    cfg.lanes = lanes;
    cfg.policy = SchedPolicy::Static;
    cfg.enablePipeline = false;
    cfg.enableMulticast = false;
    cfg.bulkSynchronous = true;
    return cfg;
}

DeltaConfig
DeltaConfig::spatial(std::uint32_t lanes)
{
    // The AOT mapper replaces both runtime recovery mechanisms that
    // move tasks (pipeline holds, stealing): placement is decided
    // before the first dispatch and producers stream to their mapped
    // consumers directly.  Multicast stays on — shared read-only
    // inputs are orthogonal to the producer/consumer edges the mapper
    // forwards.
    DeltaConfig cfg;
    cfg.lanes = lanes;
    cfg.policy = SchedPolicy::Spatial;
    cfg.enablePipeline = false;
    cfg.enableMulticast = true;
    cfg.bulkSynchronous = false;
    cfg.steal = StealPolicy::None;
    return cfg;
}

namespace
{

NocConfig
meshFor(std::uint32_t lanes, NocConfig links)
{
    const std::uint32_t total = lanes + 2; // dispatcher + memory
    auto w = static_cast<std::uint32_t>(
        std::ceil(std::sqrt(static_cast<double>(total))));
    links.width = w;
    links.height = divCeil(total, w);
    return links;
}

} // namespace

Delta::Delta(const DeltaConfig& cfg)
    : cfg_(cfg), registry_(cfg.lane.fabric.geom)
{
    if (cfg_.lanes == 0 || cfg_.lanes > 62)
        fatal("Delta supports 1..62 lanes, got ", cfg_.lanes);

    // Executor shard count.  Tracing and the naive loop are
    // single-threaded by contract; partitions are still declared
    // identically below, so the forced --shards 1 run stays
    // bit-identical to any sharded one.
    std::uint32_t shards = cfg_.shards == 0 ? 1 : cfg_.shards;
    if (cfg_.noFastForward || cfg_.trace.enabled)
        shards = 1;
    sim_.setShards(shards);

    sim_.setFastForward(!cfg_.noFastForward);
    tracer_ = std::make_unique<trace::Tracer>(cfg_.trace);

    // Partition map: every mesh node is its own partition — the
    // dispatcher, each lane (with its task unit, engines, and
    // scratchpad), and the memory node, plus any spare mesh corners.
    // The declaration is a property of the simulated structure, made
    // identically for every shard count (results would otherwise
    // depend on K through boundary-channel credits).
    const NocConfig mesh = meshFor(cfg_.lanes, cfg_.nocLinks);
    std::vector<std::uint32_t> nodeParts(mesh.width * mesh.height);
    for (std::uint32_t i = 0; i < nodeParts.size(); ++i)
        nodeParts[i] = i;
    noc_ = std::make_unique<Noc>(sim_, mesh, nodeParts);

    const std::uint32_t dispatcherNode = 0;
    const std::uint32_t memNodeId = cfg_.lanes + 1;

    sim_.setPartition(memNodeId);
    memNode_ = std::make_unique<MemNode>(sim_, *noc_, memNodeId,
                                         cfg_.mem);

    std::vector<std::uint32_t> laneNodes;
    for (std::uint32_t i = 0; i < cfg_.lanes; ++i)
        laneNodes.push_back(laneNode(i));

    LaneConfig lcfg = cfg_.lane;
    lcfg.steal = cfg_.steal;
    for (std::uint32_t i = 0; i < cfg_.lanes; ++i) {
        sim_.setPartition(laneNode(i));
        lanes_.push_back(std::make_unique<Lane>(
            sim_, *noc_, img_, registry_, i, laneNode(i),
            dispatcherNode, memNodeId, lcfg, laneNodes));
    }
    sim_.setPartition(dispatcherNode);

    DispatcherConfig dcfg;
    dcfg.policy = cfg_.policy;
    dcfg.steal = cfg_.steal;
    dcfg.enablePipeline = cfg_.enablePipeline;
    dcfg.enableMulticast = cfg_.enableMulticast;
    dcfg.bulkSynchronous = cfg_.bulkSynchronous;
    dcfg.laneQueueCap = cfg_.laneQueueCap;
    dcfg.spmLandingWords = cfg_.lane.spm.sizeWords;
    dcfg.spatialBufferWords = cfg_.spatialBufferWords;
    dcfg.spatialRemapFactor = cfg_.spatialRemapFactor;
    dcfg.selfNode = dispatcherNode;
    dcfg.memNode = memNodeId;
    for (std::uint32_t i = 0; i < cfg_.lanes; ++i)
        dcfg.laneNodes.push_back(laneNode(i));
    dispatcher_ = std::make_unique<Dispatcher>(*noc_, img_, registry_,
                                               dcfg);
    sim_.add(dispatcher_.get());
    sim_.setPartition(0);

    if (cfg_.flightRecorder > 0) {
        recorder_ =
            std::make_unique<obs::FlightRecorder>(cfg_.flightRecorder);
        sim_.setFlightRecorder(recorder_.get());
    }
    if (cfg_.hostProfile) {
        // After every component is registered: the profiler
        // classifies components by name at attach time.
        profiler_ = std::make_unique<obs::HostProfiler>();
        sim_.setHostProfiler(profiler_.get());
    }
}

Delta::~Delta() = default;

std::unique_ptr<DeltaSnapshot>
Delta::snapshot() const
{
    // Tracing keeps append-only side state (track ids, open spans)
    // that a rewind would corrupt.
    TS_ASSERT(!tracer_->enabled(),
              "snapshot/fork does not compose with tracing");
    auto s = std::make_unique<DeltaSnapshot>();
    s->sim_ = sim_.snapshot();
    s->img_ = img_;
    s->registryMark_ = registry_.mark();
    s->noc_ = noc_->counters();
    s->ran_ = ran_;
    return s;
}

void
Delta::restore(const DeltaSnapshot& s)
{
    TS_ASSERT(!tracer_->enabled(),
              "snapshot/fork does not compose with tracing");
    registry_.rollback(s.registryMark_);
    img_ = s.img_;
    noc_->restoreCounters(s.noc_);
    sim_.restore(s.sim_);
    ran_ = s.ran_;
}

namespace
{

/** Deactivates tracing on scope exit (including fatal() unwinds). */
struct TraceActivation
{
    explicit TraceActivation(trace::Tracer* t)
    {
        trace::Tracer::setActive(t);
    }
    ~TraceActivation() { trace::Tracer::setActive(nullptr); }
};

/** Routes statSample() probes into the run's StatSet for the
 *  duration of the simulation (cleared even on fatal() unwinds). */
struct StatsActivation
{
    explicit StatsActivation(StatSet* s) { StatSet::setActive(s); }
    ~StatsActivation() { StatSet::setActive(nullptr); }
};

} // namespace

StatSet
Delta::run(const TaskGraph& graph)
{
    TS_ASSERT(!ran_, "a Delta instance runs one graph");
    ran_ = true;

    StatSet stats;
    TraceActivation activation(tracer_.get());
    StatsActivation statsActivation(&stats);

    // Ahead-of-time spatial mapping: plan lane placement from the
    // fully-known graph before the first dispatch.  The plan is a
    // pure function of (graph, image, registry, mesh), so it is
    // bit-identical across shard counts and snapshot forks.
    spatial::SpatialPlan plan;
    if (cfg_.policy == SchedPolicy::Spatial) {
        std::vector<std::uint32_t> laneNodes;
        for (std::uint32_t i = 0; i < cfg_.lanes; ++i)
            laneNodes.push_back(laneNode(i));
        plan = spatial::mapTaskGraph(graph, img_, registry_, *noc_,
                                     laneNodes,
                                     cfg_.nocLinks.linkWords);
        dispatcher_->setSpatialPlan(plan.lane);
    }

    dispatcher_->loadGraph(graph);

    // Time-series sampler: weak events at exact simulated ticks, so
    // the timeline is bit-identical across execution modes, thread
    // counts, and snapshot forks.  run() drops any still-armed
    // sample event, so the captures below cannot outlive this call.
    std::unique_ptr<obs::Timeline> timeline;
    if (cfg_.timelineInterval > 0) {
        obs::TimelineConfig tlc;
        tlc.interval = cfg_.timelineInterval;
        tlc.maxSamples = cfg_.timelineMaxSamples;
        tlc.series = cfg_.timelineSeries;
        timeline = std::make_unique<obs::Timeline>(sim_, tlc);
        for (std::uint32_t i = 0; i < cfg_.lanes; ++i) {
            const TaskUnit& tu = lanes_[i]->taskUnit();
            for (std::size_t c = 0; c < kNumCycleClasses; ++c)
                timeline->addCounter(
                    "lanes",
                    "lane" + std::to_string(i) + "." +
                        cycleClassName(static_cast<CycleClass>(c)),
                    [&tu, c] {
                        return static_cast<double>(
                            tu.cycleBuckets().counts[c]);
                    });
        }
        timeline->addGauge("ready", "readyQueue", [this] {
            return static_cast<double>(
                dispatcher_->readyQueueDepth());
        });
        timeline->addGauge("noc", "nocInFlight", [this] {
            return static_cast<double>(noc_->packetsInFlight());
        });
        timeline->addGauge("dram", "dramQueue", [this] {
            return static_cast<double>(
                memNode_->memory().queueDepth());
        });
        timeline->start();
    }

    const Tick cycles = sim_.run(cfg_.maxCycles);
    if (timeline != nullptr)
        timeline->finalSample();

    if (!dispatcher_->allComplete())
        panic("simulation quiesced with incomplete tasks");

    sim_.reportStats(stats);
    noc_->reportStats(stats);
    if (timeline != nullptr)
        timeline->report(stats);
    stats.set("delta.cycles", static_cast<double>(cycles));
    stats.set("delta.lanes", static_cast<double>(cfg_.lanes));

    double busyMax = 0, busySum = 0;
    for (const auto& lane : lanes_) {
        const auto busy =
            static_cast<double>(lane->taskUnit().busyCycles());
        busyMax = std::max(busyMax, busy);
        busySum += busy;
    }
    stats.set("delta.busyMax", busyMax);
    stats.set("delta.busyMean",
              busySum / static_cast<double>(cfg_.lanes));
    stats.set("delta.imbalance",
              busySum > 0 ? busyMax * cfg_.lanes / busySum : 1.0);

    // Top-down cycle accounting: per-lane buckets are reported by
    // each task unit; aggregate them here and check the invariant
    // that every lane cycle is attributed to exactly one bucket.
    std::array<double, kNumCycleClasses> agg{};
    for (const auto& lane : lanes_) {
        const CycleBuckets& b = lane->taskUnit().cycleBuckets();
        TS_ASSERT(b.total() == cycles,
                  "cycle-accounting buckets must sum to delta.cycles");
        for (std::size_t c = 0; c < kNumCycleClasses; ++c)
            agg[c] += static_cast<double>(b.counts[c]);
    }
    for (std::size_t c = 0; c < kNumCycleClasses; ++c) {
        const char* cls = cycleClassName(static_cast<CycleClass>(c));
        stats.set(std::string("delta.accounting.") + cls, agg[c]);
        stats.set(std::string("delta.accounting.frac.") + cls,
                  cycles > 0 ? agg[c] / (static_cast<double>(cycles) *
                                         cfg_.lanes)
                             : 0.0);
    }

    // -- Per-mechanism attribution (why Delta beats the static
    // baseline, not just that it does) --
    stats.set("delta.attrib.loadbalance.actualMaxService",
              dispatcher_->actualMaxServiceCycles());
    stats.set("delta.attrib.loadbalance.shadowStaticMaxService",
              dispatcher_->shadowStaticMaxServiceCycles());
    stats.set("delta.attrib.loadbalance.imbalanceCyclesAvoided",
              dispatcher_->imbalanceCyclesAvoided());

    // Dynamic-spawn volume and steal attribution: how much the NoC
    // steal protocol moved, how far it traveled, and how many
    // imbalance cycles it clawed back relative to the dispatch-time
    // lane assignment.
    stats.set("delta.tasksSpawned",
              static_cast<double>(dispatcher_->tasksSpawned()));
    if (cfg_.steal != StealPolicy::None) {
        std::uint64_t reqs = 0, grants = 0, denies = 0;
        for (const auto& lane : lanes_) {
            reqs += lane->taskUnit().stealRequestsSent();
            grants += lane->taskUnit().stealGrantsReceived();
            denies += lane->taskUnit().stealDeniesReceived();
        }
        stats.set("delta.attrib.steal.tasksStolen",
                  static_cast<double>(dispatcher_->tasksStolen()));
        stats.set("delta.attrib.steal.hopsTraveled",
                  static_cast<double>(
                      dispatcher_->stealHopsTraveled()));
        stats.set("delta.attrib.steal.requests",
                  static_cast<double>(reqs));
        stats.set("delta.attrib.steal.grants",
                  static_cast<double>(grants));
        stats.set("delta.attrib.steal.denies",
                  static_cast<double>(denies));
        stats.set("delta.attrib.steal.shadowMaxService",
                  dispatcher_->stealShadowMaxServiceCycles());
        stats.set("delta.attrib.steal.imbalanceCyclesRecovered",
                  dispatcher_->stealImbalanceCyclesRecovered());
    }

    stats.set("delta.attrib.pipeline.overlapCycles",
              dispatcher_->pipeOverlapCycles());
    stats.set("delta.attrib.pipeline.pipesActivated",
              static_cast<double>(dispatcher_->pipesActivated()));
    stats.set("delta.attrib.pipeline.pipesDegraded",
              static_cast<double>(dispatcher_->pipesDegraded()));

    const auto fillLines =
        static_cast<double>(dispatcher_->fillLinesRequested());
    const auto equivLines =
        static_cast<double>(dispatcher_->mcastUnicastLinesEquiv());
    const double linesSaved = std::max(0.0, equivLines - fillLines);
    stats.set("delta.attrib.multicast.fillLines", fillLines);
    stats.set("delta.attrib.multicast.unicastLinesEquiv", equivLines);
    stats.set("delta.attrib.multicast.dramLinesSaved", linesSaved);
    stats.set("delta.attrib.multicast.dramBytesSaved",
              linesSaved * lineBytes);
    const auto mcastHops =
        static_cast<double>(noc_->mcastWordHops());
    const auto mcastEquivHops =
        static_cast<double>(noc_->mcastUnicastEquivWordHops());
    stats.set("delta.attrib.multicast.wordHops", mcastHops);
    stats.set("delta.attrib.multicast.unicastEquivWordHops",
              mcastEquivHops);
    stats.set("delta.attrib.multicast.wordHopsSaved",
              std::max(0.0, mcastEquivHops - mcastHops));
    stats.set("delta.attrib.multicast.packets",
              static_cast<double>(noc_->mcastPackets()));

    // Spatial-mapping attribution: DRAM traffic the lane-to-lane
    // forwarding suppressed (producer write-backs) and avoided
    // (consumer landing-zone reads), plus the NoC cost it paid.
    if (cfg_.policy == SchedPolicy::Spatial) {
        std::uint64_t suppressed = 0, landingLines = 0, hopWords = 0;
        std::uint64_t fwdWords = 0, chunks = 0;
        for (const auto& lane : lanes_) {
            suppressed += lane->spatialLinesSuppressed();
            landingLines += lane->spatialLandingLines();
            hopWords += lane->spatialHopWords();
            fwdWords += lane->spatialLanding().wordsReceived();
            chunks += lane->spatialChunksSent();
        }
        stats.set("delta.spatial.forwards",
                  static_cast<double>(dispatcher_->spatialForwards()));
        stats.set("delta.spatial.spills",
                  static_cast<double>(dispatcher_->spatialSpills()));
        stats.set("delta.spatial.remaps",
                  static_cast<double>(dispatcher_->spatialRemaps()));
        stats.set("delta.spatial.groups",
                  static_cast<double>(dispatcher_->spatialGroups()));
        const double saved =
            static_cast<double>(suppressed + landingLines);
        stats.set("delta.attrib.spatial.dramLinesSaved", saved);
        stats.set("delta.attrib.spatial.dramBytesSaved",
                  saved * lineBytes);
        stats.set("delta.attrib.spatial.linesSuppressed",
                  static_cast<double>(suppressed));
        stats.set("delta.attrib.spatial.landingLines",
                  static_cast<double>(landingLines));
        stats.set("delta.attrib.spatial.forwardHops",
                  static_cast<double>(hopWords));
        stats.set("delta.attrib.spatial.forwardWords",
                  static_cast<double>(fwdWords));
        stats.set("delta.attrib.spatial.chunks",
                  static_cast<double>(chunks));
        stats.set("delta.attrib.spatial.bufPeakWords",
                  static_cast<double>(
                      dispatcher_->spatialBufPeakWords()));
        stats.set("delta.attrib.spatial.plannedMakespan",
                  static_cast<double>(plan.predictedMakespan));
        stats.set("delta.attrib.spatial.plannedCritPath",
                  static_cast<double>(plan.predictedCritPath));
        stats.set("delta.attrib.spatial.balanceWeight",
                  plan.balanceWeight);
        stats.set("delta.attrib.spatial.forwardableEdges",
                  static_cast<double>(plan.forwardableEdges));
    }

    // -- Critical-path bound from the measured task spans --
    const CritPathResult cp =
        graph.criticalPath(dispatcher_->taskSpans());
    const Tick bound = cp.boundCycles(cfg_.lanes);
    stats.set("delta.critpath.cycles",
              static_cast<double>(cp.criticalPathCycles));
    stats.set("delta.critpath.serialCycles",
              static_cast<double>(cp.serialCycles));
    stats.set("delta.critpath.boundCycles",
              static_cast<double>(bound));
    stats.set("delta.critpath.pathTasks",
              static_cast<double>(cp.path.size()));
    stats.set("delta.critpath.utilization",
              cycles > 0 ? static_cast<double>(bound) /
                               static_cast<double>(cycles)
                         : 0.0);

    if (tracer_->enabled()) {
        // Leave the per-lane summary in the trace, then seal it.
        for (std::uint32_t i = 0; i < cfg_.lanes; ++i) {
            const CycleBuckets& b =
                lanes_[i]->taskUnit().cycleBuckets();
            const std::string series = "lane" + std::to_string(i);
            for (std::size_t c = 0; c < kNumCycleClasses; ++c) {
                tracer_->counter(
                    (std::string("accounting.") +
                     cycleClassName(static_cast<CycleClass>(c)))
                        .c_str(),
                    series.c_str(), static_cast<double>(b.counts[c]));
            }
        }
        stats.set("trace.events",
                  static_cast<double>(tracer_->events()));
        tracer_->finish();
    }

    // Machine-readable dump for tools/delta-report: every run (the
    // quickstart included) can emit its full StatSet as flat JSON.
    if (!cfg_.statsJsonPath.empty()) {
        std::ofstream out(cfg_.statsJsonPath);
        if (!out) {
            warn("stats JSON: cannot open '", cfg_.statsJsonPath,
                 "' for writing");
        } else {
            stats.dumpJson(out);
            inform("stats JSON written to ", cfg_.statsJsonPath);
        }
    }
    return stats;
}

} // namespace ts
