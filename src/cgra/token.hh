/**
 * @file
 * Tokens flowing through the dataflow fabric.
 *
 * A token is a 64-bit word plus control flags.  Streams are
 * segmented: kSegEnd marks the final element of a segment (e.g. the
 * last nonzero of a sparse-matrix row), and kStreamEnd marks the
 * final element of the whole stream (it implies the end of the final
 * segment).  Stateful fabric ops (accumulators, mergers) key off
 * these flags.
 */

#ifndef TS_CGRA_TOKEN_HH
#define TS_CGRA_TOKEN_HH

#include <cstdint>
#include <deque>

#include "sim/types.hh"

namespace ts
{

/** Control flags carried alongside each value. */
enum TokenFlags : std::uint8_t
{
    kSegEnd = 1u << 0,    ///< last element of a level-1 segment
    kStreamEnd = 1u << 1, ///< last element of the stream
    kSeg2End = 1u << 2,   ///< last element of a level-2 segment
};

/**
 * One value in flight through the fabric.
 *
 * Streams may be segmented at two nesting levels (e.g. dimensions
 * within a point, points within a block).  Accumulators consume
 * level-1 boundaries and demote level-2 boundaries to level-1 on
 * their outputs, so reductions compose hierarchically.
 */
struct Token
{
    Word value = 0;
    std::uint8_t flags = 0;

    bool segEnd() const { return flags & (kSegEnd | kStreamEnd); }
    bool seg2End() const { return flags & (kSeg2End | kStreamEnd); }
    bool streamEnd() const { return flags & kStreamEnd; }

    /** Accumulator output flags: demote level-2 to level-1. */
    static std::uint8_t
    demote(std::uint8_t flags)
    {
        std::uint8_t out = flags & kStreamEnd;
        if (flags & (kSeg2End | kStreamEnd))
            out |= kSegEnd;
        return out;
    }

    bool
    operator==(const Token& o) const
    {
        return value == o.value && flags == o.flags;
    }
};

/** A bounded FIFO of tokens (external fabric port buffers). */
class TokenFifo
{
  public:
    explicit TokenFifo(std::size_t capacity) : capacity_(capacity) {}

    bool full() const { return capacity_ != 0 && q_.size() >= capacity_; }
    bool empty() const { return q_.empty(); }
    std::size_t size() const { return q_.size(); }

    bool
    push(Token t)
    {
        if (full())
            return false;
        q_.push_back(t);
        return true;
    }

    const Token& front() const { return q_.front(); }

    Token
    pop()
    {
        Token t = q_.front();
        q_.pop_front();
        return t;
    }

    void clear() { q_.clear(); }

  private:
    std::size_t capacity_;
    std::deque<Token> q_;
};

} // namespace ts

#endif // TS_CGRA_TOKEN_HH
