/**
 * @file
 * Workload-suite integration tests: every workload must produce
 * golden-correct results on TaskStream/Delta, on the static-parallel
 * baseline, and on the intermediate policies, at several lane counts.
 */

#include <gtest/gtest.h>

#include "workloads/workload.hh"

namespace ts
{
namespace
{

struct Case
{
    Wk wk;
    bool delta; ///< TaskStream config vs static baseline
};

class WorkloadCorrectness
    : public ::testing::TestWithParam<Case>
{};

TEST_P(WorkloadCorrectness, GoldenMatch)
{
    const Case c = GetParam();
    SuiteParams sp;
    sp.scale = 0.5;
    auto wl = makeWorkload(c.wk, sp);

    DeltaConfig cfg = c.delta ? DeltaConfig::delta(8)
                              : DeltaConfig::staticBaseline(8);
    Delta delta(cfg);
    TaskGraph graph;
    wl->build(delta, graph);
    const StatSet stats = delta.run(graph);

    EXPECT_TRUE(wl->check(delta.image())) << wl->name();
    EXPECT_GT(stats.get("delta.cycles"), 0);
    // Dynamic-spawn workloads grow the task set beyond what the host
    // submitted; completed must equal submitted plus spawned.
    EXPECT_EQ(stats.get("dispatcher.tasksCompleted"),
              static_cast<double>(graph.numTasks()) +
                  stats.get("delta.tasksSpawned"));
}

std::string
caseName(const ::testing::TestParamInfo<Case>& info)
{
    return wkIdent(info.param.wk) +
           (info.param.delta ? "_delta" : "_static");
}

std::vector<Case>
allCases()
{
    std::vector<Case> cases;
    for (const Wk w : allWorkloads()) {
        cases.push_back({w, true});
        cases.push_back({w, false});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(Suite, WorkloadCorrectness,
                         ::testing::ValuesIn(allCases()), caseName);

/** Lane-count sweep: correctness must hold at any width. */
class WorkloadLanes : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(WorkloadLanes, SpmvAndMsortCorrectAtAnyWidth)
{
    const std::uint32_t lanes = GetParam();
    for (const Wk w : {Wk::Spmv, Wk::Msort, Wk::Tricount}) {
        SuiteParams sp;
        sp.scale = 0.25;
        auto wl = makeWorkload(w, sp);
        Delta delta(DeltaConfig::delta(lanes));
        TaskGraph graph;
        wl->build(delta, graph);
        delta.run(graph);
        EXPECT_TRUE(wl->check(delta.image()))
            << wl->name() << " lanes=" << lanes;
    }
}

INSTANTIATE_TEST_SUITE_P(Lanes, WorkloadLanes,
                         ::testing::Values(1, 2, 3, 4, 8, 12, 16));

} // namespace
} // namespace ts
