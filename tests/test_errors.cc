/**
 * @file
 * Failure-injection tests: the simulator must fail loudly and
 * diagnosably on misconfiguration — undersized hardware, malformed
 * streams, misused APIs — rather than silently producing wrong
 * timing or data.
 */

#include <gtest/gtest.h>

#include "accel/delta.hh"
#include "workloads/workload.hh"

namespace ts
{
namespace
{

TaskTypeId
addPassType(TaskTypeRegistry& reg)
{
    auto dfg = std::make_unique<Dfg>("pass");
    const auto x = dfg->addInput();
    dfg->addOutput(dfg->add(Op::Add, Operand::ref(x),
                            Operand::immI(0)));
    return reg.addDfgType("pass", std::move(dfg));
}

TEST(Errors, SharedLandingExhaustionIsDiagnosed)
{
    DeltaConfig cfg = DeltaConfig::delta(2);
    cfg.lane.spm.sizeWords = 64; // tiny scratchpad
    Delta delta(cfg);
    MemImage& img = delta.image();
    const auto ty = addPassType(delta.registry());

    const std::uint64_t n = 1024; // does not fit the landing space
    const Addr shared = img.allocWords(n);
    TaskGraph g;
    const auto grp = g.addSharedGroup(shared, n);
    WriteDesc out;
    out.base = img.allocWords(n);
    const TaskId id = g.addTask(
        ty, {StreamDesc::linear(Space::Dram, shared, n)}, {out});
    g.setSharedInput(id, 0, grp);

    try {
        delta.run(g);
        FAIL() << "expected fatal";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("landing"),
                  std::string::npos);
    }
}

TEST(Errors, TooManyInputsForTheLaneEngines)
{
    DeltaConfig cfg = DeltaConfig::delta(2);
    cfg.lane.numReadEngines = 1;
    Delta delta(cfg);
    MemImage& img = delta.image();

    auto dfg = std::make_unique<Dfg>("two");
    const auto a = dfg->addInput();
    const auto b = dfg->addInput();
    dfg->addOutput(dfg->add(Op::Add, Operand::ref(a),
                            Operand::ref(b)));
    const auto ty = delta.registry().addDfgType("two", std::move(dfg));

    TaskGraph g;
    WriteDesc out;
    out.base = img.allocWords(8);
    g.addTask(ty,
              {StreamDesc::linear(Space::Dram, img.allocWords(8), 8),
               StreamDesc::linear(Space::Dram, img.allocWords(8), 8)},
              {out});
    EXPECT_THROW(delta.run(g), PanicError);
}

TEST(Errors, FabricTooSmallForTheDfg)
{
    DeltaConfig cfg = DeltaConfig::delta(2);
    cfg.lane.fabric.geom = FabricGeometry{2, 2, 2};
    Delta delta(cfg);
    auto dfg = std::make_unique<Dfg>("big");
    auto cur = dfg->addInput();
    for (int i = 0; i < 8; ++i)
        cur = dfg->add(Op::Add, Operand::ref(cur), Operand::immI(1));
    dfg->addOutput(cur);
    EXPECT_THROW(delta.registry().addDfgType("big", std::move(dfg)),
                 FatalError);
}

TEST(Errors, PipeInCannotBeExpandedFunctionally)
{
    MemImage img;
    EXPECT_THROW(expandStream(StreamDesc::pipeIn(1), img, nullptr),
                 FatalError);
}

TEST(Errors, MalformedStreamDescriptorsAreRejected)
{
    DeltaConfig cfg = DeltaConfig::delta(2);
    Delta delta(cfg);
    MemImage& img = delta.image();
    const auto ty = addPassType(delta.registry());

    // Zero-length stream.
    TaskGraph g;
    WriteDesc out;
    out.base = img.allocWords(8);
    g.addTask(ty, {StreamDesc::linear(Space::Dram, 64, 0)}, {out});
    EXPECT_THROW(delta.run(g), FatalError);
}

TEST(Errors, CsrWithEmptySegmentFailsInTheEngine)
{
    DeltaConfig cfg = DeltaConfig::delta(2);
    Delta delta(cfg);
    MemImage& img = delta.image();

    auto dfg = std::make_unique<Dfg>("sum");
    const auto x = dfg->addInput();
    dfg->addOutput(dfg->add(Op::AccAdd, Operand::ref(x)));
    const auto ty = delta.registry().addDfgType("sum", std::move(dfg));

    const Addr ptr = img.allocWords(3);
    img.writeInt(ptr, 0);
    img.writeInt(ptr + wordBytes, 0); // empty segment
    img.writeInt(ptr + 2 * wordBytes, 4);
    const Addr data = img.allocWords(4);

    TaskGraph g;
    WriteDesc out;
    out.base = img.allocWords(2);
    g.addTask(ty, {StreamDesc::csr(Space::Dram, ptr, 2, data)}, {out});
    EXPECT_THROW(delta.run(g), FatalError);
}

TEST(Errors, MeshOverflowRejectedAtConstruction)
{
    // 62 lanes + dispatcher + memory = 64 nodes fits; 63 does not.
    EXPECT_NO_THROW(Delta(DeltaConfig::delta(62)));
    EXPECT_THROW(Delta(DeltaConfig::delta(63)), FatalError);
}

TEST(Errors, GraphValidationRunsAtLoad)
{
    Delta delta(DeltaConfig::delta(2));
    TaskGraph g;
    g.addSharedGroup(64, 8); // no members
    EXPECT_THROW(delta.run(g), PanicError);
}

} // namespace
} // namespace ts
