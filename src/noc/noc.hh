/**
 * @file
 * A 2D-mesh packet network with XY dimension-order routing,
 * credit-style back-pressure (bounded inter-router channels), link
 * serialization, and tree multicast.
 *
 * Topology: `width x height` routers, node id = y * width + x.  Each
 * router has one local injection port and one local ejection port.
 * Ejection channels are unbounded (ideal sinks) so that protocol
 * deadlock cannot originate in the network itself; occupancy is
 * tracked and reported.
 */

#ifndef TS_NOC_NOC_HH
#define TS_NOC_NOC_HH

#include <array>
#include <memory>
#include <vector>

#include "noc/packet.hh"
#include "sim/channel.hh"
#include "sim/simulator.hh"

namespace ts
{

/** Mesh parameters. */
struct NocConfig
{
    std::uint32_t width = 4;
    std::uint32_t height = 4;
    std::size_t channelCapacity = 4; ///< packets per inter-router link
    std::uint32_t linkWords = 2;     ///< words a link moves per cycle
};

/** The mesh network: owns its routers and channels. */
class Noc
{
  public:
    Noc(Simulator& sim, const NocConfig& cfg);
    ~Noc();

    Noc(const Noc&) = delete;
    Noc& operator=(const Noc&) = delete;

    /** Number of nodes in the mesh. */
    std::uint32_t numNodes() const { return cfg_.width * cfg_.height; }

    /**
     * Inject a packet at its source node.
     * @return false when the injection buffer is full (retry later).
     */
    bool inject(Packet pkt);

    /** The ejection channel of a node; consumers pop from it. */
    Channel<Packet>& eject(std::uint32_t node);

    /** Total word-hops traversed (traffic metric for Fig-5). */
    std::uint64_t wordHops() const { return wordHops_; }

    /** Total packets delivered to local ports. */
    std::uint64_t delivered() const { return delivered_; }

    /** Word-hops traversed by multicast (fanout > 1) packets. */
    std::uint64_t mcastWordHops() const { return mcastWordHops_; }

    /** Word-hops the same multicast traffic would have cost as one
     *  unicast packet per destination (sum of Manhattan distances
     *  times payload size, accumulated at injection). */
    std::uint64_t
    mcastUnicastEquivWordHops() const
    {
        return mcastUnicastEquivWordHops_;
    }

    /** Multicast packets injected / local deliveries they produced. */
    std::uint64_t mcastPackets() const { return mcastPackets_; }
    std::uint64_t mcastDeliveries() const { return mcastDeliveries_; }

    /** Report traffic statistics. */
    void reportStats(StatSet& stats) const;

    /** Manhattan distance between two nodes (for tests). */
    std::uint32_t hopDistance(std::uint32_t a, std::uint32_t b) const;

    /**
     * The mesh's accumulated traffic counters (snapshot/fork
     * support).  Routers and channels are Simulator-registered and
     * snapshot through it; the Noc itself only owns these counters.
     */
    struct Counters
    {
        std::uint64_t wordHops = 0;
        std::uint64_t delivered = 0;
        std::uint64_t injected = 0;
        std::uint64_t mcastWordHops = 0;
        std::uint64_t mcastUnicastEquivWordHops = 0;
        std::uint64_t mcastPackets = 0;
        std::uint64_t mcastDeliveries = 0;
    };

    /** Copy out / restore the traffic counters. */
    Counters counters() const;
    void restoreCounters(const Counters& c);

    /**
     * Packets currently buffered in the network: visible occupancy
     * of every injection and inter-router link channel (timeline
     * probe).  Ejection channels are excluded — a packet parked
     * there has been delivered.  Counting occupancy directly stays
     * correct under multicast, where one injected packet produces
     * several deliveries.
     */
    std::size_t packetsInFlight() const;

  private:
    friend class NocRouter;

    Simulator& sim_;
    NocConfig cfg_;
    std::vector<std::unique_ptr<class NocRouter>> routers_;
    std::vector<Channel<Packet>*> injectCh_;
    std::vector<Channel<Packet>*> ejectCh_;
    std::vector<Channel<Packet>*> linkCh_;

    std::uint64_t wordHops_ = 0;
    std::uint64_t delivered_ = 0;
    std::uint64_t injected_ = 0;
    std::uint64_t mcastWordHops_ = 0;
    std::uint64_t mcastUnicastEquivWordHops_ = 0;
    std::uint64_t mcastPackets_ = 0;
    std::uint64_t mcastDeliveries_ = 0;
};

} // namespace ts

#endif // TS_NOC_NOC_HH
