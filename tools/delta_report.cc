/**
 * @file
 * delta-report: human-readable diagnosis of a Delta run.
 *
 * Ingests the flat stats JSON a run writes (TS_STATS_JSON, or a
 * TS_BENCH_JSON per-bench file) and prints the cycle-accounting
 * waterfall, per-mechanism speedup attribution, the critical-path
 * bound, and the slowest task types with latency percentiles.
 *
 * Usage:
 *   delta-report RUN.json [options]
 *     --baseline FILE.json     compare against another run (speedup)
 *     --trace TRACE.json       summarize a Perfetto trace alongside
 *     --topk N                 task-type rows to print (default 5)
 *     --assert-speedup-min X   exit 1 unless speedup >= X (CI gates;
 *                              requires --baseline)
 */

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "analysis/report.hh"
#include "sim/logging.hh"

namespace
{

[[noreturn]] void
usage(const char* argv0)
{
    std::cerr
        << "usage: " << argv0 << " RUN.json [options]\n"
        << "  --baseline FILE.json     compare against another run\n"
        << "  --trace TRACE.json       summarize a Perfetto trace\n"
        << "  --timeline               render the delta.timeline.*\n"
        << "                           series (lane waterfall and\n"
        << "                           queue-depth sparklines)\n"
        << "  --topk N                 task-type rows (default 5)\n"
        << "  --assert-speedup-min X   exit 1 unless speedup >= X\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace ts;
    using namespace ts::analysis;

    std::string runPath;
    std::string baselinePath;
    std::string tracePath;
    std::size_t topk = 5;
    double speedupMin = -1.0;
    bool timeline = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(argv[0]);
            return argv[++i];
        };
        if (arg == "--baseline") {
            baselinePath = next();
        } else if (arg == "--trace") {
            tracePath = next();
        } else if (arg == "--timeline") {
            timeline = true;
        } else if (arg == "--topk") {
            topk = static_cast<std::size_t>(
                std::strtoul(next().c_str(), nullptr, 10));
        } else if (arg == "--assert-speedup-min") {
            speedupMin = std::strtod(next().c_str(), nullptr);
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "unknown option '" << arg << "'\n";
            usage(argv[0]);
        } else if (runPath.empty()) {
            runPath = arg;
        } else {
            usage(argv[0]);
        }
    }
    if (runPath.empty())
        usage(argv[0]);
    if (speedupMin >= 0 && baselinePath.empty()) {
        std::cerr << "--assert-speedup-min requires --baseline\n";
        return 2;
    }

    try {
        const RunStats run = loadStats(runPath);

        RunStats baseline;
        Json trace;
        ReportOptions opt;
        opt.topk = topk;
        opt.timeline = timeline;
        if (!baselinePath.empty()) {
            baseline = loadStats(baselinePath);
            opt.baseline = &baseline;
        }
        if (!tracePath.empty()) {
            std::ifstream in(tracePath);
            if (!in)
                fatal("cannot open trace file '", tracePath, "'");
            std::ostringstream buf;
            buf << in.rdbuf();
            if (!parseJson(buf.str(), trace))
                fatal("malformed JSON in trace '", tracePath, "'");
            opt.trace = &trace;
        }

        printReport(std::cout, run, opt);

        if (speedupMin >= 0) {
            const double x = speedupVs(run, baseline);
            if (x < speedupMin) {
                std::cerr << "FAIL: speedup " << x
                          << "x below required minimum " << speedupMin
                          << "x\n";
                return 1;
            }
            std::cout << "speedup gate passed: " << x
                      << "x >= " << speedupMin << "x\n";
        }
    } catch (const FatalError& e) {
        std::cerr << "delta-report: " << e.what() << "\n";
        return 2;
    }
    return 0;
}
