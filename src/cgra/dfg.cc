#include "cgra/dfg.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ts
{

std::uint32_t
Dfg::addInput()
{
    Node n;
    n.op = Op::Input;
    n.portIdx = static_cast<std::uint32_t>(inputNodes_.size());
    nodes_.push_back(n);
    inputNodes_.push_back(numNodes() - 1);
    return numNodes() - 1;
}

std::uint32_t
Dfg::add(Op op, Operand a, Operand b, Operand c)
{
    TS_ASSERT(op != Op::Input && op != Op::Output,
              "use addInput/addOutput for port nodes");
    Node n;
    n.op = op;
    n.opnd = {a, b, c};
    for (const Operand& o : n.opnd) {
        if (o.kind == Operand::Kind::Node) {
            TS_ASSERT(o.node < numNodes(),
                      name_, ": operand references future node (cycle?)");
        }
    }
    nodes_.push_back(n);
    return numNodes() - 1;
}

std::uint32_t
Dfg::addOutput(std::uint32_t src)
{
    TS_ASSERT(src < numNodes());
    Node n;
    n.op = Op::Output;
    n.opnd[0] = Operand::ref(src);
    n.portIdx = static_cast<std::uint32_t>(outputNodes_.size());
    nodes_.push_back(n);
    outputNodes_.push_back(numNodes() - 1);
    return numNodes() - 1;
}

void
Dfg::validate() const
{
    if (numInputs() == 0)
        fatal(name_, ": DFG has no input ports");
    if (numOutputs() == 0)
        fatal(name_, ": DFG has no output ports");
    for (std::uint32_t id = 0; id < numNodes(); ++id) {
        const Node& n = nodes_[id];
        const OpInfo& info = opInfo(n.op);
        unsigned have = 0;
        for (const Operand& o : n.opnd) {
            if (o.kind != Operand::Kind::None)
                ++have;
        }
        if (have != info.arity) {
            fatal(name_, ": node ", id, " (", info.name, ") has ", have,
                  " operands, needs ", unsigned(info.arity));
        }
        if (isStreamOp(n.op)) {
            // Stream ops need both operands to be token streams.
            for (unsigned s = 0; s < 2; ++s) {
                if (n.opnd[s].kind != Operand::Kind::Node) {
                    fatal(name_, ": stream op node ", id,
                          " needs node operands");
                }
            }
        }
    }
}

std::vector<DfgEdge>
Dfg::edges() const
{
    std::vector<DfgEdge> out;
    for (std::uint32_t id = 0; id < numNodes(); ++id) {
        const Node& n = nodes_[id];
        for (std::uint8_t s = 0; s < 3; ++s) {
            if (n.opnd[s].kind == Operand::Kind::Node)
                out.push_back(DfgEdge{n.opnd[s].node, id, s});
        }
    }
    return out;
}

namespace
{

using Stream = std::vector<Token>;

Stream
evalElementwiseStream(const Dfg::Node& n,
                      const std::vector<const Stream*>& opnd)
{
    // Length = length of the node-referencing operands (must agree).
    std::size_t len = 0;
    bool haveLen = false;
    for (unsigned s = 0; s < 3; ++s) {
        if (n.opnd[s].kind == Operand::Kind::Node) {
            if (!haveLen) {
                len = opnd[s]->size();
                haveLen = true;
            } else if (opnd[s]->size() != len) {
                fatal("elementwise op ", opName(n.op),
                      ": operand stream lengths differ (", len, " vs ",
                      opnd[s]->size(), ")");
            }
        }
    }
    TS_ASSERT(haveLen, "elementwise op with no stream operand");

    Stream out;
    out.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
        Word w[3] = {0, 0, 0};
        std::uint8_t flags = 0;
        for (unsigned s = 0; s < 3; ++s) {
            if (n.opnd[s].kind == Operand::Kind::Node) {
                w[s] = (*opnd[s])[i].value;
                flags |= (*opnd[s])[i].flags;
            } else if (n.opnd[s].kind == Operand::Kind::Imm) {
                w[s] = n.opnd[s].imm;
            }
        }
        out.push_back(Token{evalElementwise(n.op, w[0], w[1], w[2]),
                            flags});
    }
    return out;
}

Stream
evalAccStream(Op op, const Stream& in)
{
    Stream out;
    Word acc = accIdentity(op);
    for (const Token& t : in) {
        acc = evalAccStep(op, acc, t.value);
        if (t.segEnd()) {
            out.push_back(Token{acc, Token::demote(t.flags)});
            acc = accIdentity(op);
        }
    }
    return out;
}

Stream
evalMerge2(const Stream& a, const Stream& b)
{
    Stream out;
    std::size_t i = 0, j = 0;
    while (i < a.size() || j < b.size()) {
        Word v;
        if (i >= a.size()) {
            v = b[j++].value;
        } else if (j >= b.size()) {
            v = a[i++].value;
        } else if (asInt(a[i].value) <= asInt(b[j].value)) {
            v = a[i++].value;
        } else {
            v = b[j++].value;
        }
        out.push_back(Token{v, 0});
    }
    if (!out.empty())
        out.back().flags = kSegEnd | kStreamEnd;
    return out;
}

std::vector<Stream>
splitSegments(const Stream& s)
{
    std::vector<Stream> segs;
    Stream cur;
    for (const Token& t : s) {
        cur.push_back(t);
        if (t.segEnd()) {
            segs.push_back(std::move(cur));
            cur.clear();
        }
    }
    TS_ASSERT(cur.empty(), "stream does not end on a segment boundary");
    return segs;
}

Stream
evalIsectCount(const Stream& a, const Stream& b)
{
    const auto segA = splitSegments(a);
    const auto segB = splitSegments(b);
    if (segA.size() != segB.size()) {
        fatal("isectcount: operand segment counts differ (", segA.size(),
              " vs ", segB.size(), ")");
    }
    Stream out;
    for (std::size_t k = 0; k < segA.size(); ++k) {
        std::int64_t count = 0;
        std::size_t i = 0, j = 0;
        const Stream& sa = segA[k];
        const Stream& sb = segB[k];
        while (i < sa.size() && j < sb.size()) {
            const std::int64_t va = asInt(sa[i].value);
            const std::int64_t vb = asInt(sb[j].value);
            if (va == vb) {
                ++count;
                ++i;
                ++j;
            } else if (va < vb) {
                ++i;
            } else {
                ++j;
            }
        }
        // Segments are never empty: each carries its boundary token.
        std::uint8_t flags = kSegEnd;
        if (sa.back().streamEnd() && sb.back().streamEnd())
            flags |= kStreamEnd;
        out.push_back(Token{fromInt(count), flags});
    }
    return out;
}

} // namespace

std::vector<std::vector<Token>>
evalDfg(const Dfg& dfg, const std::vector<std::vector<Token>>& inputs)
{
    if (inputs.size() != dfg.numInputs()) {
        fatal(dfg.name(), ": expected ", dfg.numInputs(),
              " input streams, got ", inputs.size());
    }

    std::vector<Stream> value(dfg.numNodes());
    std::vector<Stream> outputs(dfg.numOutputs());

    for (std::uint32_t id = 0; id < dfg.numNodes(); ++id) {
        const Dfg::Node& n = dfg.node(id);
        std::vector<const Stream*> opnd(3, nullptr);
        for (unsigned s = 0; s < 3; ++s) {
            if (n.opnd[s].kind == Operand::Kind::Node)
                opnd[s] = &value[n.opnd[s].node];
        }
        if (n.op == Op::Input) {
            value[id] = inputs[n.portIdx];
        } else if (n.op == Op::Output) {
            value[id] = *opnd[0];
            outputs[n.portIdx] = value[id];
        } else if (isElementwise(n.op)) {
            value[id] = evalElementwiseStream(n, opnd);
        } else if (isAccumulator(n.op)) {
            value[id] = evalAccStream(n.op, *opnd[0]);
        } else if (n.op == Op::Merge2) {
            value[id] = evalMerge2(*opnd[0], *opnd[1]);
        } else if (n.op == Op::IsectCount) {
            value[id] = evalIsectCount(*opnd[0], *opnd[1]);
        } else {
            panic("evalDfg: unhandled op ", opName(n.op));
        }
    }
    return outputs;
}

std::vector<Token>
makeStream(const std::vector<Word>& words)
{
    std::vector<Token> out;
    out.reserve(words.size());
    for (std::size_t i = 0; i < words.size(); ++i) {
        std::uint8_t flags = 0;
        if (i + 1 == words.size())
            flags = kSegEnd | kStreamEnd;
        out.push_back(Token{words[i], flags});
    }
    return out;
}

std::vector<Word>
streamValues(const std::vector<Token>& toks)
{
    std::vector<Word> out;
    out.reserve(toks.size());
    for (const Token& t : toks)
        out.push_back(t.value);
    return out;
}

} // namespace ts
