file(REMOVE_RECURSE
  "CMakeFiles/ts_mem.dir/main_memory.cc.o"
  "CMakeFiles/ts_mem.dir/main_memory.cc.o.d"
  "CMakeFiles/ts_mem.dir/mem_image.cc.o"
  "CMakeFiles/ts_mem.dir/mem_image.cc.o.d"
  "CMakeFiles/ts_mem.dir/scratchpad.cc.o"
  "CMakeFiles/ts_mem.dir/scratchpad.cc.o.d"
  "libts_mem.a"
  "libts_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
