/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * fatal()  -- the simulated configuration or input is invalid; the
 *             user can fix it.  Throws FatalError.
 * panic()  -- an internal invariant of the simulator was violated; a
 *             simulator bug.  Throws PanicError.
 * warn()   -- something is suspicious but simulation can continue.
 *
 * Both error forms throw (rather than abort) so that library users
 * and unit tests can observe and recover from them.
 *
 * warn()/inform() are gated by a runtime verbosity level read once
 * from the TS_LOG environment variable:
 *   TS_LOG=0  silent (suppress warnings and info)
 *   TS_LOG=1  warnings only (the default)
 *   TS_LOG=2  warnings + informational messages
 */

#ifndef TS_SIM_LOGGING_HH
#define TS_SIM_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ts
{

/** Raised by fatal(): user-correctable configuration/input error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what)
        : std::runtime_error(what)
    {}
};

/** Raised by panic(): internal simulator invariant violation. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& what)
        : std::logic_error(what)
    {}
};

namespace detail
{

inline void
formatInto(std::ostringstream& os)
{
    (void)os;
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream& os, const T& v, const Rest&... rest)
{
    os << v;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
formatAll(const Args&... args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

/** Stderr verbosity: 0 silent, 1 warnings (default), 2 info. */
inline int
logVerbosity()
{
    static const int level = [] {
        const char* env = std::getenv("TS_LOG");
        if (env == nullptr || *env == '\0')
            return 1;
        return std::atoi(env);
    }();
    return level;
}

/** Abort simulation with a user-facing error. */
template <typename... Args>
[[noreturn]] void
fatal(const Args&... args)
{
    throw FatalError(detail::formatAll("fatal: ", args...));
}

/** Abort simulation due to an internal simulator bug. */
template <typename... Args>
[[noreturn]] void
panic(const Args&... args)
{
    throw PanicError(detail::formatAll("panic: ", args...));
}

/** Print a non-fatal warning to stderr (TS_LOG >= 1). */
template <typename... Args>
void
warn(const Args&... args)
{
    if (logVerbosity() < 1)
        return;
    std::cerr << "warn: " << detail::formatAll(args...) << std::endl;
}

/** Print an informational message to stderr (TS_LOG >= 2). */
template <typename... Args>
void
inform(const Args&... args)
{
    if (logVerbosity() < 2)
        return;
    std::cerr << "info: " << detail::formatAll(args...) << std::endl;
}

/** panic() unless the given invariant holds. */
#define TS_ASSERT(cond, ...)                                               \
    do {                                                                   \
        if (!(cond))                                                       \
            ::ts::panic("assertion failed: ", #cond, " ", ##__VA_ARGS__);  \
    } while (0)

} // namespace ts

#endif // TS_SIM_LOGGING_HH
