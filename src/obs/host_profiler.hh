/**
 * @file
 * Host-side wall-time profiler for the simulation core.
 *
 * Attributes wall-nanoseconds to what the *host* spends them on:
 * event dispatch, ticking each component class (lanes vs NoC vs DRAM
 * vs dispatcher), channel commits, idle fast-forward bookkeeping, and
 * quiescence checks.  The breakdown is reported as
 * `sim.host.profile.*` (excluded from byte-compared dumps like every
 * `sim.host.*` counter) and rendered by `delta-report` as the "Host
 * hotspots" section — the measurement that tells us which component
 * class a sharded simulation core should shard first.
 *
 * Profiling is opt-in (DeltaConfig::hostProfile, default off): the
 * instrumented sections take two steady_clock reads per section per
 * executed cycle, which is far too expensive to leave on.  When no
 * profiler is attached the hooks are single null-pointer branches.
 *
 * Header-only so ts_sim can use it without a link-time dependency on
 * the obs library.
 */

#ifndef TS_OBS_HOST_PROFILER_HH
#define TS_OBS_HOST_PROFILER_HH

#include <chrono>
#include <cstdint>
#include <string>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace ts::obs
{

class HostProfiler
{
  public:
    using Clock = std::chrono::steady_clock;

    /** Wall-time buckets; Tick* buckets split by component class. */
    enum Bucket : unsigned
    {
        Events,         ///< EventQueue::fireUpTo
        TickLane,       ///< lanes and their sub-components
        TickNoc,        ///< routers
        TickDram,       ///< main memory + memory node
        TickDispatcher, ///< the task dispatcher
        TickOther,      ///< anything unclassified
        Commit,         ///< channel commit + observer wakes
        FastForward,    ///< idle-skip target math + timed wakes
        Quiescence,     ///< incremental/naive quiescence checks
        kBuckets
    };

    static Clock::time_point now() { return Clock::now(); }

    void
    add(unsigned bucket, Clock::time_point from, Clock::time_point to)
    {
        ns_[bucket] += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(to -
                                                                 from)
                .count());
    }

    std::uint64_t ns(unsigned bucket) const { return ns_[bucket]; }

    /** Accumulate another profiler's buckets (per-shard merge). */
    void
    mergeFrom(const HostProfiler& o)
    {
        for (unsigned b = 0; b < kBuckets; ++b)
            ns_[b] += o.ns_[b];
    }

    std::uint64_t
    totalNs() const
    {
        std::uint64_t t = 0;
        for (unsigned b = 0; b < kBuckets; ++b)
            t += ns_[b];
        return t;
    }

    /** Tick bucket for a component, by its diagnostic name. */
    static Bucket
    tickBucketForName(const std::string& name)
    {
        if (name.rfind("lane", 0) == 0)
            return TickLane;
        if (name.rfind("noc.", 0) == 0)
            return TickNoc;
        if (name == "main_memory" || name == "memnode")
            return TickDram;
        if (name == "dispatcher")
            return TickDispatcher;
        return TickOther;
    }

    /** Stat-key suffix of a bucket (sim.host.profile.<suffix>Ns). */
    static const char*
    bucketKey(unsigned bucket)
    {
        switch (bucket) {
        case Events:
            return "events";
        case TickLane:
            return "tickLane";
        case TickNoc:
            return "tickNoc";
        case TickDram:
            return "tickDram";
        case TickDispatcher:
            return "tickDispatcher";
        case TickOther:
            return "tickOther";
        case Commit:
            return "commit";
        case FastForward:
            return "fastForward";
        case Quiescence:
            return "quiescence";
        }
        return "?";
    }

    /** Emit every bucket as sim.host.profile.<bucket>Ns. */
    void
    reportStats(StatSet& stats) const
    {
        for (unsigned b = 0; b < kBuckets; ++b)
            stats.set(std::string("sim.host.profile.") +
                          bucketKey(b) + "Ns",
                      static_cast<double>(ns_[b]));
    }

  private:
    std::uint64_t ns_[kBuckets] = {};
};

} // namespace ts::obs

#endif // TS_OBS_HOST_PROFILER_HH
