file(REMOVE_RECURSE
  "CMakeFiles/fig_noc_traffic.dir/fig_noc_traffic.cc.o"
  "CMakeFiles/fig_noc_traffic.dir/fig_noc_traffic.cc.o.d"
  "fig_noc_traffic"
  "fig_noc_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_noc_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
