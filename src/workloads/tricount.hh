/**
 * @file
 * Triangle counting over a skewed (hub-heavy) graph with oriented
 * adjacency: for u < v, count |N+(u) intersect N+(v)| using the
 * fabric's sorted-intersection unit.
 *
 * Structure exercised: severe load imbalance (hub vertices own most
 * of the work), shared reads (every block task of a hub streams the
 * hub's adjacency list, which Delta multicasts), and indirect
 * multi-level streams (CsrIndirectSeg).
 */

#ifndef TS_WORKLOADS_TRICOUNT_HH
#define TS_WORKLOADS_TRICOUNT_HH

#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace ts
{

/** Triangle-counting workload parameters. */
struct TricountParams
{
    std::uint64_t vertices = 256;
    std::uint64_t avgDegree = 8;
    double hubBias = 0.75;      ///< probability an edge endpoint is a hub
    std::uint64_t hubCount = 8; ///< vertices favored as endpoints
    std::uint64_t blockSize = 16; ///< neighbors processed per task
    std::uint64_t seed = 7;
};

/** Count triangles. */
class TricountWorkload : public Workload
{
  public:
    explicit TricountWorkload(const TricountParams& p) : p_(p) {}

    std::string name() const override { return "tricount"; }
    void build(Delta& delta, TaskGraph& graph) override;
    bool check(const MemImage& img) const override;

    std::int64_t expectedTriangles() const { return expected_; }

  private:
    TricountParams p_;
    Addr totalAddr_ = 0;
    std::int64_t expected_ = 0;
};

} // namespace ts

#endif // TS_WORKLOADS_TRICOUNT_HH
