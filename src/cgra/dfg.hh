/**
 * @file
 * The dataflow-graph IR describing a task type's compute body, plus a
 * functional interpreter used both as the golden reference in tests
 * and as the semantic definition the cycle-level fabric must match.
 *
 * A Dfg is a DAG built in topological order: operands may only
 * reference already-created nodes, so no cycles can be expressed
 * (recurrences are expressed through accumulator ops instead).
 */

#ifndef TS_CGRA_DFG_HH
#define TS_CGRA_DFG_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "cgra/op.hh"
#include "cgra/token.hh"

namespace ts
{

/** A node operand: absent, a reference to another node, or an
 *  immediate constant baked into the configuration. */
struct Operand
{
    enum class Kind : std::uint8_t { None, Node, Imm };

    Kind kind = Kind::None;
    std::uint32_t node = 0;
    Word imm = 0;

    static Operand none() { return {}; }

    static Operand
    ref(std::uint32_t nodeId)
    {
        Operand o;
        o.kind = Kind::Node;
        o.node = nodeId;
        return o;
    }

    static Operand
    immW(Word w)
    {
        Operand o;
        o.kind = Kind::Imm;
        o.imm = w;
        return o;
    }

    static Operand immI(std::int64_t v) { return immW(fromInt(v)); }
    static Operand immF(double v) { return immW(fromDouble(v)); }
};

/** A producer-to-consumer edge (for mapping and routing). */
struct DfgEdge
{
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint8_t slot = 0;
};

/** A dataflow graph. */
class Dfg
{
  public:
    /** One operation node. */
    struct Node
    {
        Op op = Op::Add;
        std::array<Operand, 3> opnd{};
        std::uint32_t portIdx = 0; ///< for Input/Output nodes
    };

    explicit Dfg(std::string name = "dfg") : name_(std::move(name)) {}

    /** Append an input-port node; ports number in creation order. */
    std::uint32_t addInput();

    /** Append a compute node. */
    std::uint32_t add(Op op, Operand a, Operand b = Operand::none(),
                      Operand c = Operand::none());

    /** Append an output-port node fed by @p src. */
    std::uint32_t addOutput(std::uint32_t src);

    /** Check structural invariants; fatal on violation. */
    void validate() const;

    const Node& node(std::uint32_t id) const { return nodes_.at(id); }
    std::uint32_t numNodes() const
    {
        return static_cast<std::uint32_t>(nodes_.size());
    }
    std::uint32_t numInputs() const
    {
        return static_cast<std::uint32_t>(inputNodes_.size());
    }
    std::uint32_t numOutputs() const
    {
        return static_cast<std::uint32_t>(outputNodes_.size());
    }
    std::uint32_t inputNode(std::uint32_t port) const
    {
        return inputNodes_.at(port);
    }
    std::uint32_t outputNode(std::uint32_t port) const
    {
        return outputNodes_.at(port);
    }

    /** All node-to-node edges, in deterministic order. */
    std::vector<DfgEdge> edges() const;

    const std::string& name() const { return name_; }

  private:
    std::string name_;
    std::vector<Node> nodes_;
    std::vector<std::uint32_t> inputNodes_;
    std::vector<std::uint32_t> outputNodes_;
};

/**
 * Functional reference semantics: evaluate a DFG over complete input
 * token streams, producing complete output streams.
 *
 * @param dfg the graph (validated).
 * @param inputs one token sequence per input port.
 * @return one token sequence per output port.
 */
std::vector<std::vector<Token>>
evalDfg(const Dfg& dfg, const std::vector<std::vector<Token>>& inputs);

/** Wrap a vector of words as a single-segment token stream. */
std::vector<Token> makeStream(const std::vector<Word>& words);

/** Extract the values of a token stream. */
std::vector<Word> streamValues(const std::vector<Token>& toks);

} // namespace ts

#endif // TS_CGRA_DFG_HH
