/**
 * @file
 * Lightweight statistics collection.
 *
 * Components own plain counters and report them into a StatSet, a
 * hierarchical name -> value map that experiments query and dump.
 *
 * Beyond scalar counters, a StatSet collects *distributions*: call
 * sample(name, v) repeatedly and the set maintains a log-bucketed
 * Histogram per name, surfacing derived statistics (count, mean, min,
 * max, p50, p95, p99) as ordinary dotted-path values so dumps, JSON
 * output, and prefix queries see them transparently.
 *
 * During a simulation run one StatSet may be made *active* (see
 * StatSet::setActive), mirroring the tracer's activation model; probe
 * sites then call statSample() without plumbing a StatSet reference
 * through every component.
 */

#ifndef TS_SIM_STATS_HH
#define TS_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace ts
{

class StatSet;

/**
 * A bucketed histogram for distribution-style statistics (e.g.
 * per-task latencies, packet latencies).  Default-constructed
 * histograms use logarithmic (power-of-two) buckets, which cover the
 * full dynamic range of cycle-valued samples with bounded error;
 * explicit bucket boundaries remain available for fixed-range uses.
 */
class Histogram
{
  public:
    /** Log-bucketed histogram: boundaries 0, 1, 2, 4, ... 2^46. */
    Histogram();

    /** Create with the given bucket boundaries (ascending). */
    explicit Histogram(std::vector<double> bounds);

    /** Record one sample. */
    void sample(double v);

    /** Number of samples recorded so far. */
    std::uint64_t count() const { return count_; }

    /** Mean of all samples. */
    double mean() const;

    /** Smallest sample seen (0 when empty). */
    double min() const { return count_ == 0 ? 0.0 : min_; }

    /** Largest sample seen (0 when empty). */
    double max() const { return max_; }

    /**
     * Approximate quantile @p q in [0, 1], interpolated linearly
     * within the containing bucket and clamped to [min, max].  With
     * log buckets the relative error is bounded by the bucket ratio.
     */
    double percentile(double q) const;

    /** Count in bucket i (the final bucket is overflow). */
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }

    /** Number of buckets, including the overflow bucket. */
    std::size_t numBuckets() const { return buckets_.size(); }

    /** Report buckets and moments into a StatSet under a prefix. */
    void report(StatSet& stats, const std::string& prefix) const;

    /** Report only derived statistics (count/mean/min/max/p50/p95/
     *  p99), not raw buckets, under a prefix. */
    void reportSummary(StatSet& stats, const std::string& prefix) const;

    /**
     * Accumulate another histogram with identical bucket boundaries.
     * Bucket counts, count, and sum add; min/max combine.  For
     * integral samples below 2^53 (every cycle-valued probe) the
     * merged moments equal those of sampling the union directly.
     */
    void mergeFrom(const Histogram& o);

  private:
    std::vector<double> bounds_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** A flat, ordered collection of named statistic values. */
class StatSet
{
  public:
    /** Record (or overwrite) a statistic under a dotted path. */
    void set(const std::string& name, double value);

    /** Add to a statistic, creating it at zero if absent. */
    void add(const std::string& name, double value);

    /**
     * Record one sample of the distribution @p name (log-bucketed).
     * Derived statistics appear as `<name>.count`, `.mean`, `.min`,
     * `.max`, `.p50`, `.p95`, `.p99` in every read/dump.
     */
    void sample(const std::string& name, double value);

    /** The histogram behind a sampled distribution, or nullptr. */
    const Histogram* histogram(const std::string& name) const;

    /** All sampled distribution names, sorted. */
    std::vector<std::string> histogramNames() const;

    /** Whether a statistic with this exact name exists. */
    bool has(const std::string& name) const;

    /** Value of a statistic; fatal if absent. */
    double get(const std::string& name) const;

    /** Value of a statistic, or fallback if absent. */
    double getOr(const std::string& name, double fallback) const;

    /** Sum of every statistic whose name starts with the prefix. */
    double sumPrefix(const std::string& prefix) const;

    /** All (name, value) pairs whose name starts with the prefix. */
    std::vector<std::pair<std::string, double>>
    matchPrefix(const std::string& prefix) const;

    /** Pretty-print every statistic, one per line. */
    void dump(std::ostream& os) const;

    /** Write every statistic as one flat JSON object (dotted-path
     *  keys, escaped), full double precision, sorted by name.
     *  Non-finite values serialize as null.  Keys starting with
     *  @p excludePrefix are omitted (used to drop non-deterministic
     *  host-side `sim.host.*` counters from byte-compared dumps). */
    void dumpJson(std::ostream& os,
                  const std::string& excludePrefix = "") const;

    /**
     * Fold another StatSet into this one: histograms merge
     * bucket-wise (Histogram::mergeFrom), scalar values add.  Used to
     * combine per-shard sampling sinks into the run StatSet; derived
     * histogram keys (`.mean` etc.) are re-materialized from the
     * merged histograms, so they never double-count.
     */
    void mergeFrom(const StatSet& o);

    /** Remove all statistics. */
    void
    clear()
    {
        values_.clear();
        hists_.clear();
        histsDirty_ = false;
    }

    /** Number of statistics recorded (including derived ones). */
    std::size_t size() const;

    /**
     * The StatSet receiving this thread's statSample() probes, or
     * nullptr.  The active pointer is thread_local: each thread runs
     * at most one simulation at a time, and concurrent Delta
     * instances on different threads collect samples independently.
     * Delta::run activates its result set for the duration of the
     * simulation.
     */
    static StatSet* active();

    /** Make @p s the calling thread's sampling sink (nullptr
     *  deactivates). */
    static void setActive(StatSet* s);

  private:
    /** Materialize derived histogram statistics into values_. */
    void sync() const;

    mutable std::map<std::string, double> values_;
    std::map<std::string, Histogram> hists_;
    mutable bool histsDirty_ = false;
};

/** Escape a string for use inside a JSON string literal. */
std::string jsonEscape(const std::string& s);

/**
 * Canonical JSON rendering of a double: the shortest decimal string
 * that round-trips to exactly the same value (std::to_chars), so a
 * dump -> parse -> dump cycle is byte-idempotent and byte-compares /
 * cache keys are reproducible across invocations.  Non-finite values
 * render as "null" (JSON has no NaN/inf).
 */
std::string jsonNumber(double value);

/** Sample into the active run StatSet, if any (probe-site helper). */
inline void
statSample(const std::string& name, double value)
{
    if (StatSet* s = StatSet::active())
        s->sample(name, value);
}

/** Whether a run StatSet is collecting samples (guard for probe
 *  sites whose key construction is not free). */
inline bool
statsOn()
{
    return StatSet::active() != nullptr;
}

} // namespace ts

#endif // TS_SIM_STATS_HH
