/**
 * @file
 * Memory request/response records exchanged between stream engines,
 * the NoC, and the main-memory model.  Requests are line-granular.
 */

#ifndef TS_MEM_REQUEST_HH
#define TS_MEM_REQUEST_HH

#include <cstdint>

#include "sim/types.hh"

namespace ts
{

/** A line-granular memory request. */
struct MemReq
{
    /** Line-aligned byte address. */
    Addr lineAddr = 0;

    /** True for a write (data already functionally applied). */
    bool write = false;

    /** NoC node that issued the request (response destination). */
    std::uint32_t srcNode = 0;

    /**
     * For shared-read multicast fills: bitmask of NoC nodes the
     * response line must be delivered to.  Zero means unicast back
     * to srcNode.
     */
    std::uint64_t multicastMask = 0;

    /** Requester-chosen tag, echoed in the response. */
    std::uint64_t tag = 0;
};

/** A serviced line, heading back toward its requester(s). */
struct MemResp
{
    Addr lineAddr = 0;
    std::uint32_t srcNode = 0;
    std::uint64_t multicastMask = 0;
    std::uint64_t tag = 0;
};

} // namespace ts

#endif // TS_MEM_REQUEST_HH
