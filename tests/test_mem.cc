/**
 * @file
 * Unit tests for the memory substrate: functional image, banked DRAM
 * timing (latency, bank conflicts, bandwidth, back-pressure), and the
 * scratchpad port model.
 */

#include <gtest/gtest.h>

#include "mem/main_memory.hh"
#include "mem/mem_image.hh"
#include "mem/scratchpad.hh"
#include "sim/simulator.hh"

namespace ts
{
namespace
{

TEST(MemImage, ReadWriteRoundTrip)
{
    MemImage img;
    img.writeInt(64, -7);
    img.writeDouble(72, 2.5);
    EXPECT_EQ(img.readInt(64), -7);
    EXPECT_DOUBLE_EQ(img.readDouble(72), 2.5);
    EXPECT_EQ(img.readWord(128), 0u) << "untouched memory reads 0";
}

TEST(MemImage, UnalignedAccessPanics)
{
    MemImage img;
    EXPECT_THROW(img.readWord(3), PanicError);
    EXPECT_THROW(img.writeWord(9, 1), PanicError);
}

TEST(MemImage, AllocationsAreLineAlignedAndDisjoint)
{
    MemImage img;
    const Addr a = img.allocWords(5);
    const Addr b = img.allocWords(100);
    EXPECT_EQ(a % lineBytes, 0u);
    EXPECT_EQ(b % lineBytes, 0u);
    EXPECT_GE(b, a + 5 * wordBytes);
    img.writeInt(a, 1);
    img.writeInt(b, 2);
    EXPECT_EQ(img.readInt(a), 1);
}

TEST(MemImage, SpansPageBoundaries)
{
    MemImage img;
    const Addr nearBoundary = 4096 * wordBytes - 2 * wordBytes;
    std::vector<Word> vals;
    for (int i = 0; i < 8; ++i)
        vals.push_back(fromInt(i + 1));
    img.writeWords(nearBoundary, vals);
    const auto got = img.readWords(nearBoundary, 8);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(asInt(got[i]), i + 1);
}

/** Rig with request/response channels around a MainMemory. */
struct MemRig
{
    Simulator sim;
    Channel<MemReq>& req;
    Channel<MemResp>& resp;
    MainMemory mem;

    explicit MemRig(MainMemoryConfig cfg = MainMemoryConfig())
        : req(sim.makeChannel<MemReq>("req", 64)),
          resp(sim.makeChannel<MemResp>("resp", 64)),
          mem(sim, cfg, req, resp)
    {
        sim.add(&mem);
    }

    MemReq
    read(Addr line, std::uint64_t tag)
    {
        MemReq r;
        r.lineAddr = line;
        r.tag = tag;
        return r;
    }
};

TEST(MainMemory, ReadLatencyIsServiceLatency)
{
    MainMemoryConfig cfg;
    cfg.serviceLatency = 40;
    MemRig rig(cfg);
    ASSERT_TRUE(rig.req.push(rig.read(0, 1)));
    Tick arrival = 0;
    for (Tick t = 0; t < 200; ++t) {
        rig.sim.step(1);
        if (!rig.resp.empty()) {
            arrival = t;
            break;
        }
    }
    // 1 commit + issue + 40 latency (+1 response commit).
    EXPECT_GE(arrival, 40u);
    EXPECT_LE(arrival, 45u);
    EXPECT_EQ(rig.resp.pop().tag, 1u);
}

TEST(MainMemory, SameBankRequestsSerialize)
{
    MainMemoryConfig cfg;
    cfg.bankOccupancy = 4;
    MemRig rig(cfg);
    // Two lines in the same bank (same address modulo stride).
    const Addr stride = lineBytes * cfg.numBanks;
    rig.req.push(rig.read(0, 1));
    rig.req.push(rig.read(stride, 2));
    std::vector<Tick> at;
    for (Tick t = 0; t < 200 && at.size() < 2; ++t) {
        rig.sim.step(1);
        while (!rig.resp.empty()) {
            rig.resp.pop();
            at.push_back(t);
        }
    }
    ASSERT_EQ(at.size(), 2u);
    EXPECT_GE(at[1] - at[0], cfg.bankOccupancy - 1);
}

TEST(MainMemory, DifferentBanksOverlap)
{
    MainMemoryConfig cfg;
    cfg.bankOccupancy = 8;
    cfg.issueWidth = 2;
    MemRig rig(cfg);
    rig.req.push(rig.read(0, 1));
    rig.req.push(rig.read(lineBytes, 2)); // adjacent line: other bank
    std::vector<Tick> at;
    for (Tick t = 0; t < 200 && at.size() < 2; ++t) {
        rig.sim.step(1);
        while (!rig.resp.empty()) {
            rig.resp.pop();
            at.push_back(t);
        }
    }
    ASSERT_EQ(at.size(), 2u);
    EXPECT_LE(at[1] - at[0], 1u) << "distinct banks issue together";
}

TEST(MainMemory, BandwidthBoundedByIssueWidth)
{
    MainMemoryConfig cfg;
    cfg.issueWidth = 2;
    cfg.bankOccupancy = 1;
    cfg.numBanks = 64;
    MemRig rig(cfg);
    // 32 reads over distinct banks: at most 2 issues per cycle means
    // the last response is >= 16 cycles after the first.
    int sent = 0;
    std::vector<Tick> at;
    for (Tick t = 0; t < 500 && at.size() < 32; ++t) {
        while (sent < 32 &&
               rig.req.push(rig.read(sent * lineBytes, sent))) {
            ++sent;
        }
        rig.sim.step(1);
        while (!rig.resp.empty()) {
            rig.resp.pop();
            at.push_back(t);
        }
    }
    ASSERT_EQ(at.size(), 32u);
    EXPECT_GE(at.back() - at.front(), 14u);
}

TEST(MainMemory, WritesConsumeBankTimeButNoResponse)
{
    MemRig rig;
    MemReq w;
    w.lineAddr = 0;
    w.write = true;
    rig.req.push(w);
    rig.sim.run(500);
    EXPECT_TRUE(rig.resp.empty());
    EXPECT_EQ(rig.mem.linesWritten(), 1u);
    EXPECT_EQ(rig.mem.linesRead(), 0u);
}

TEST(MainMemory, StatsTrackTraffic)
{
    MemRig rig;
    for (int i = 0; i < 5; ++i)
        rig.req.push(rig.read(i * lineBytes, i));
    rig.sim.step(300);
    while (!rig.resp.empty())
        rig.resp.pop();
    StatSet stats;
    rig.mem.reportStats(stats);
    EXPECT_EQ(stats.get("mem.linesRead"), 5);
}

TEST(Scratchpad, PortBudgetPerCycle)
{
    Scratchpad spm("spm", ScratchpadConfig{256, 2});
    EXPECT_TRUE(spm.tryAccess(10));
    EXPECT_TRUE(spm.tryAccess(10));
    EXPECT_FALSE(spm.tryAccess(10)) << "two ports per cycle";
    EXPECT_TRUE(spm.tryAccess(11)) << "budget refreshes";
}

TEST(Scratchpad, ReadWriteAndBounds)
{
    Scratchpad spm("spm", ScratchpadConfig{64, 4});
    spm.write(5, fromInt(99));
    EXPECT_EQ(asInt(spm.read(5)), 99);
    EXPECT_THROW(spm.read(64), PanicError);
    EXPECT_THROW(spm.write(70, 0), PanicError);
}

TEST(Scratchpad, BumpAllocatorExhausts)
{
    Scratchpad spm("spm", ScratchpadConfig{64, 4});
    EXPECT_EQ(spm.alloc(32), 0u);
    EXPECT_EQ(spm.alloc(32), 32u);
    EXPECT_THROW(spm.alloc(1), FatalError);
    spm.resetAlloc();
    EXPECT_EQ(spm.alloc(10), 0u);
}

} // namespace
} // namespace ts
