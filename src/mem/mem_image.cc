#include "mem/mem_image.hh"

#include "sim/logging.hh"

namespace ts
{

const std::vector<Word>*
MemImage::findPage(Addr addr) const
{
    auto it = pages_.find(addr / (pageWords_ * wordBytes));
    return it == pages_.end() ? nullptr : &it->second;
}

std::vector<Word>&
MemImage::touchPage(Addr addr)
{
    auto& page = pages_[addr / (pageWords_ * wordBytes)];
    if (page.empty())
        page.assign(pageWords_, 0);
    return page;
}

Word
MemImage::readWord(Addr addr) const
{
    TS_ASSERT(addr % wordBytes == 0, "unaligned word read @", addr);
    const auto* page = findPage(addr);
    if (page == nullptr)
        return 0;
    return (*page)[(addr / wordBytes) % pageWords_];
}

void
MemImage::writeWord(Addr addr, Word value)
{
    TS_ASSERT(addr % wordBytes == 0, "unaligned word write @", addr);
    touchPage(addr)[(addr / wordBytes) % pageWords_] = value;
}

std::vector<Word>
MemImage::readWords(Addr addr, std::size_t n) const
{
    std::vector<Word> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        out.push_back(readWord(addr + i * wordBytes));
    return out;
}

void
MemImage::writeWords(Addr addr, const std::vector<Word>& values)
{
    for (std::size_t i = 0; i < values.size(); ++i)
        writeWord(addr + i * wordBytes, values[i]);
}

Addr
MemImage::allocWords(std::size_t words)
{
    const Addr base = brk_;
    const std::size_t bytes = words * wordBytes;
    brk_ += divCeil<std::size_t>(bytes, lineBytes) * lineBytes;
    return base;
}

} // namespace ts
