/**
 * @file
 * Run-cache tests: the in-tree SHA-256 against FIPS 180-4 known
 * answers, key stability, publish/lookup byte-exactness, corrupt and
 * truncated entries reading as misses, mtime-LRU eviction under a
 * size cap, concurrent publishers sharing one directory, and the
 * sweep-level contract — a warm pass is all hits and aggregates
 * byte-identically to the cold pass that filled the cache.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cache/run_cache.hh"
#include "cache/sha256.hh"
#include "driver/sweep.hh"
#include "sim/logging.hh"

using namespace ts;
using namespace ts::cache;

namespace fs = std::filesystem;

namespace
{

/** Fresh per-test scratch directory, removed on destruction. */
struct TempDir
{
    fs::path path;

    explicit TempDir(const std::string& tag)
    {
        path = fs::temp_directory_path() /
               ("ts_cache_test_" + tag + "_" +
                std::to_string(::getpid()));
        fs::remove_all(path);
        fs::create_directories(path);
    }

    ~TempDir() { fs::remove_all(path); }

    std::string str() const { return path.string(); }
};

RunCache
makeCache(const TempDir& dir, std::uint64_t cap = 0)
{
    return RunCache(RunCacheConfig{dir.str(), cap});
}

} // namespace

// ---------------------------------------------------------------------
// SHA-256: FIPS 180-4 known-answer vectors.
// ---------------------------------------------------------------------

TEST(Sha256Test, KnownAnswers)
{
    EXPECT_EQ(sha256Hex(""),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(sha256Hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
    EXPECT_EQ(sha256Hex("abcdbcdecdefdefgefghfghighijhijk"
                        "ijkljklmklmnlmnomnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs)
{
    const std::string chunk(1000, 'a');
    Sha256 h;
    for (int i = 0; i < 1000; ++i)
        h.update(chunk.data(), chunk.size());
    EXPECT_EQ(h.hexDigest(),
              "cdc76e5c9914fb9281a1c7e284d73e67"
              "f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot)
{
    const std::string msg =
        "the quick brown fox jumps over the lazy dog, repeatedly, "
        "across buffer boundaries of every alignment";
    for (std::size_t split = 0; split <= msg.size(); ++split) {
        Sha256 h;
        h.update(msg.data(), split);
        h.update(msg.data() + split, msg.size() - split);
        EXPECT_EQ(h.hexDigest(), sha256Hex(msg)) << "split=" << split;
    }
}

// ---------------------------------------------------------------------
// RunCache: keys, round trips, and malformed entries.
// ---------------------------------------------------------------------

TEST(RunCacheTest, KeyIsStableAndSensitiveToBothInputs)
{
    const std::string k = RunCache::keyFor("fp", "cell");
    EXPECT_EQ(k.size(), 64u);
    EXPECT_EQ(k, RunCache::keyFor("fp", "cell"));
    EXPECT_NE(k, RunCache::keyFor("fp2", "cell"));
    EXPECT_NE(k, RunCache::keyFor("fp", "cell2"));
    // The fingerprint/cell boundary must be unambiguous.
    EXPECT_NE(RunCache::keyFor("ab", "c"), RunCache::keyFor("a", "bc"));
}

TEST(RunCacheTest, PublishThenLookupIsByteExact)
{
    TempDir dir("roundtrip");
    const RunCache cache = makeCache(dir);

    const std::string payload =
        "{\n  \"cycles\": 123,\n  \"binary\": \"\x01\x7f\"\n}\n";
    const std::string key = RunCache::keyFor("fp", "cell v1");
    EXPECT_FALSE(cache.contains(key));

    cache.publish(key, "cell v1", payload);
    EXPECT_TRUE(cache.contains(key));

    std::string got;
    ASSERT_TRUE(cache.lookup(key, got));
    EXPECT_EQ(got, payload);

    // A second publish of the same entry is harmless.
    cache.publish(key, "cell v1", payload);
    ASSERT_TRUE(cache.lookup(key, got));
    EXPECT_EQ(got, payload);
}

TEST(RunCacheTest, MissOnAbsentKey)
{
    TempDir dir("absent");
    const RunCache cache = makeCache(dir);
    std::string got;
    EXPECT_FALSE(cache.lookup(RunCache::keyFor("fp", "nope"), got));
}

TEST(RunCacheTest, TruncatedEntryIsAMiss)
{
    TempDir dir("truncated");
    const RunCache cache = makeCache(dir);
    const std::string key = RunCache::keyFor("fp", "cell");
    cache.publish(key, "cell", std::string(4096, 'x'));

    const fs::path entry = dir.path / key;
    ASSERT_TRUE(fs::exists(entry));
    fs::resize_file(entry, fs::file_size(entry) / 2);

    std::string got;
    EXPECT_FALSE(cache.lookup(key, got));
    EXPECT_FALSE(cache.contains(key));
}

TEST(RunCacheTest, GarbageEntryIsAMiss)
{
    TempDir dir("garbage");
    const RunCache cache = makeCache(dir);
    const std::string key = RunCache::keyFor("fp", "cell");

    {
        std::ofstream os(dir.path / key, std::ios::binary);
        os << "not a cache entry at all";
    }
    std::string got;
    EXPECT_FALSE(cache.lookup(key, got));

    {
        std::ofstream os(dir.path / key,
                         std::ios::binary | std::ios::trunc);
    }
    EXPECT_FALSE(cache.lookup(key, got));
}

TEST(RunCacheTest, EntryStoredUnderWrongKeyIsAMiss)
{
    TempDir dir("wrongkey");
    const RunCache cache = makeCache(dir);
    const std::string key = RunCache::keyFor("fp", "cell");
    const std::string other = RunCache::keyFor("fp", "other");
    cache.publish(key, "cell", "payload");

    // Simulate a mis-filed entry: valid format, wrong filename.
    fs::copy_file(dir.path / key, dir.path / other);
    std::string got;
    EXPECT_FALSE(cache.lookup(other, got));
}

TEST(RunCacheTest, EvictionKeepsFreshEntriesUnderTheCap)
{
    TempDir dir("evict");
    const std::string payload(1024, 'p');
    // Cap fits two payloads comfortably but never four.
    const RunCache cache = makeCache(dir, 2560);

    std::vector<std::string> keys;
    for (int i = 0; i < 4; ++i) {
        keys.push_back(
            RunCache::keyFor("fp", "cell " + std::to_string(i)));
        cache.publish(keys.back(), "cell", payload);
        // Distinct mtimes so LRU order is unambiguous.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }

    // The newest entry always survives its own publish.
    EXPECT_TRUE(cache.contains(keys.back()));
    // The oldest must have been evicted.
    EXPECT_FALSE(cache.contains(keys.front()));

    std::uintmax_t total = 0;
    for (const auto& e : fs::directory_iterator(dir.path))
        if (e.path().filename().string().size() == 64)
            total += fs::file_size(e.path());
    EXPECT_LE(total, 2.5 * 1024 + 256)
        << "entry bytes should be near or under the cap after "
           "eviction";
}

TEST(RunCacheTest, ConcurrentSweepsShareOneDirectory)
{
    TempDir dir("concurrent");
    constexpr int kKeys = 64;

    auto worker = [&](int salt) {
        const RunCache cache = makeCache(dir);
        for (int i = 0; i < kKeys; ++i) {
            const std::string cell = "cell " + std::to_string(i);
            const std::string key = RunCache::keyFor("fp", cell);
            const std::string payload =
                "payload " + std::to_string(i);
            if ((i + salt) % 2 == 0)
                cache.publish(key, cell, payload);
            std::string got;
            if (cache.lookup(key, got))
                EXPECT_EQ(got, payload);
        }
    };
    std::thread a(worker, 0);
    std::thread b(worker, 1);
    a.join();
    b.join();

    // Between them the threads published every key; all must hit now.
    const RunCache cache = makeCache(dir);
    for (int i = 0; i < kKeys; ++i) {
        const std::string key =
            RunCache::keyFor("fp", "cell " + std::to_string(i));
        std::string got;
        EXPECT_TRUE(cache.lookup(key, got)) << "key " << i;
        EXPECT_EQ(got, "payload " + std::to_string(i));
    }
}

// ---------------------------------------------------------------------
// Sweep integration: cold fills, warm hits, reports byte-identical.
// ---------------------------------------------------------------------

namespace
{

driver::SweepSpec
cachedSpec(const std::string& cacheDir)
{
    driver::SweepSpec spec;
    spec.workloads = {Wk::Spmv};
    spec.configs = driver::sweepConfigsFromList("static,delta");
    spec.seeds = {3, 5};
    spec.scales = {0.25};
    spec.baseline = "static";
    spec.cacheDir = cacheDir;
    return spec;
}

std::string
reportJson(const driver::SweepReport& report)
{
    std::ostringstream os;
    report.writeJson(os);
    return os.str();
}

} // namespace

TEST(SweepCacheTest, ColdMissesWarmHitsByteIdenticalReport)
{
    TempDir dir("sweep");

    driver::Sweep cold(cachedSpec(dir.str()));
    const driver::SweepReport coldReport = cold.run();
    ASSERT_TRUE(coldReport.allOk());
    EXPECT_EQ(coldReport.cacheHits, 0u);
    EXPECT_EQ(coldReport.cacheMisses, 4u);

    driver::Sweep warm(cachedSpec(dir.str()));
    const driver::SweepReport warmReport = warm.run();
    ASSERT_TRUE(warmReport.allOk());
    EXPECT_EQ(warmReport.cacheHits, 4u);
    EXPECT_EQ(warmReport.cacheMisses, 0u);

    EXPECT_EQ(reportJson(coldReport), reportJson(warmReport))
        << "a cache replay must aggregate byte-identically to the "
           "run it stands in for";
}

TEST(SweepCacheTest, CachedOutcomesMatchUncachedRuns)
{
    TempDir dir("parity");

    driver::SweepSpec plain = cachedSpec("");
    driver::Sweep reference(plain);
    const driver::SweepReport ref = reference.run();

    driver::Sweep cold(cachedSpec(dir.str()));
    (void)cold.run();
    driver::Sweep warm(cachedSpec(dir.str()));
    const driver::SweepReport replay = warm.run();

    EXPECT_EQ(reportJson(ref), reportJson(replay))
        << "cache replays must be indistinguishable from uncached "
           "runs in the aggregate report";
}
