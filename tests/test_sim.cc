/**
 * @file
 * Unit tests for the simulation kernel: channels (two-phase
 * visibility, capacity), event queue ordering, simulator quiescence,
 * RNG determinism and distributions, statistics.
 */

#include <gtest/gtest.h>

#include "sim/rng.hh"
#include "sim/simulator.hh"

namespace ts
{
namespace
{

TEST(Channel, ValuesBecomeVisibleAfterCommitOnly)
{
    Channel<int> ch("c", 4);
    EXPECT_TRUE(ch.push(1));
    EXPECT_TRUE(ch.empty()) << "pushed value visible before commit";
    ch.commit();
    ASSERT_FALSE(ch.empty());
    EXPECT_EQ(ch.front(), 1);
    EXPECT_EQ(ch.pop(), 1);
    EXPECT_TRUE(ch.empty());
}

TEST(Channel, CapacityCountsStagedAndVisible)
{
    Channel<int> ch("c", 2);
    EXPECT_TRUE(ch.push(1));
    EXPECT_TRUE(ch.push(2));
    EXPECT_FALSE(ch.push(3)) << "staged values must count";
    ch.commit();
    EXPECT_FALSE(ch.push(3)) << "visible values must count";
    ch.pop();
    EXPECT_TRUE(ch.push(3));
}

TEST(Channel, UnboundedWhenCapacityZero)
{
    Channel<int> ch("c", 0);
    for (int i = 0; i < 1000; ++i)
        ASSERT_TRUE(ch.push(i));
    ch.commit();
    EXPECT_EQ(ch.size(), 1000u);
    EXPECT_EQ(ch.maxOccupancy(), 1000u);
}

TEST(Channel, FifoOrderPreserved)
{
    Channel<int> ch("c", 0);
    for (int i = 0; i < 10; ++i)
        ch.push(i);
    ch.commit();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(ch.pop(), i);
}

TEST(Channel, QuiescentTracksBothPhases)
{
    Channel<int> ch("c", 4);
    EXPECT_TRUE(ch.quiescent());
    ch.push(1);
    EXPECT_FALSE(ch.quiescent());
    ch.commit();
    EXPECT_FALSE(ch.quiescent());
    ch.pop();
    EXPECT_TRUE(ch.quiescent());
}

TEST(EventQueue, FiresInTimeThenInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(2); });
    eq.schedule(3, [&] { order.push_back(1); });
    eq.schedule(5, [&] { order.push_back(3); });
    eq.fireUpTo(2);
    EXPECT_TRUE(order.empty());
    eq.fireUpTo(5);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, CallbackMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule(2, [&] { ++fired; });
    });
    eq.fireUpTo(1);
    EXPECT_EQ(fired, 1);
    eq.fireUpTo(2);
    EXPECT_EQ(fired, 2);
}

/** A component that counts down for N cycles then goes idle. */
class Countdown : public Ticked
{
  public:
    explicit Countdown(int n) : Ticked("countdown"), left_(n) {}

    void
    tick(Tick) override
    {
        if (left_ > 0)
            --left_;
    }

    bool busy() const override { return left_ > 0; }

    int left_;
};

TEST(Simulator, RunsUntilQuiescent)
{
    Simulator sim;
    Countdown c(17);
    sim.add(&c);
    const Tick end = sim.run(1000);
    EXPECT_EQ(end, 17u);
    EXPECT_EQ(c.left_, 0);
}

TEST(Simulator, FatalOnDeadlockWithDiagnosis)
{
    Simulator sim;
    Countdown c(1 << 30);
    sim.add(&c);
    try {
        sim.run(100);
        FAIL() << "expected fatal";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("countdown"),
                  std::string::npos)
            << "diagnosis must name the busy component";
    }
}

TEST(Simulator, EventsKeepSimulationLive)
{
    Simulator sim;
    bool fired = false;
    sim.schedule(50, [&] { fired = true; });
    const Tick end = sim.run(1000);
    EXPECT_TRUE(fired);
    EXPECT_GE(end, 50u);
}

TEST(Simulator, PendingChannelValueBlocksQuiescence)
{
    Simulator sim;
    auto& ch = sim.makeChannel<int>("c", 4);
    EXPECT_TRUE(sim.quiescent());
    ch.push(7);
    EXPECT_FALSE(sim.quiescent());
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Rng, UniformIntRespectsBounds)
{
    Rng r(9);
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.uniformInt(-5, 17);
        ASSERT_GE(v, -5);
        ASSERT_LE(v, 17);
    }
}

TEST(Rng, Uniform01MeanIsHalf)
{
    Rng r(11);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.uniform01();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ZipfIsSkewedTowardLowRanks)
{
    Rng r(13);
    std::uint64_t low = 0, high = 0;
    for (int i = 0; i < 5000; ++i) {
        const auto v = r.zipf(100, 1.2);
        ASSERT_LT(v, 100u);
        if (v < 10)
            ++low;
        if (v >= 90)
            ++high;
    }
    EXPECT_GT(low, high * 5);
}

TEST(Rng, PermutationIsAPermutation)
{
    Rng r(15);
    const auto p = r.permutation(100);
    std::vector<bool> seen(100, false);
    for (const auto v : p) {
        ASSERT_LT(v, 100u);
        ASSERT_FALSE(seen[v]);
        seen[v] = true;
    }
}

TEST(Stats, SetAddGetAndPrefixes)
{
    StatSet s;
    s.set("a.x", 1);
    s.add("a.y", 2);
    s.add("a.y", 3);
    s.set("b.z", 7);
    EXPECT_EQ(s.get("a.y"), 5);
    EXPECT_EQ(s.sumPrefix("a."), 6);
    EXPECT_EQ(s.matchPrefix("a.").size(), 2u);
    EXPECT_TRUE(s.has("b.z"));
    EXPECT_FALSE(s.has("b.w"));
    EXPECT_EQ(s.getOr("b.w", -1), -1);
    EXPECT_THROW(s.get("missing"), FatalError);
}

TEST(Stats, HistogramBucketsAndMoments)
{
    Histogram h({1.0, 10.0, 100.0});
    h.sample(0.5);
    h.sample(5);
    h.sample(50);
    h.sample(500);
    EXPECT_EQ(h.count(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(h.bucket(i), 1u);
    EXPECT_EQ(h.max(), 500);
    EXPECT_NEAR(h.mean(), (0.5 + 5 + 50 + 500) / 4, 1e-9);

    StatSet s;
    h.report(s, "h");
    EXPECT_EQ(s.get("h.count"), 4);
}

TEST(Types, WordReinterpretationRoundTrips)
{
    EXPECT_EQ(asInt(fromInt(-123456789)), -123456789);
    EXPECT_EQ(asDouble(fromDouble(3.14159)), 3.14159);
    EXPECT_EQ(lineAlign(0x12345), 0x12340u);
    EXPECT_EQ(divCeil(10, 3), 4);
    EXPECT_EQ(divCeil(9, 3), 3);
}

} // namespace
} // namespace ts
