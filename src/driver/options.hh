/**
 * @file
 * RunOptions: the one typed description of "how to run a simulation"
 * shared by every binary in the tree (benches, tools, examples).
 *
 * Design rule: **this layer is the only place that reads the
 * environment.**  Binaries parse the shared command-line flags below;
 * each flag falls back to its legacy TS_* environment variable when
 * the flag is absent, so existing scripts keep working, but no
 * std::getenv() call exists anywhere below src/driver/.
 *
 *   flag                    env fallback     meaning
 *   --workloads LIST        TS_WORKLOADS     comma-separated subset
 *                                            ("all"/empty = suite)
 *   --scale X               TS_SCALE         problem-size multiplier
 *   --seed N                TS_SEED          base RNG seed
 *   --trace PATH            TS_TRACE         Perfetto trace output
 *   --stats-json PATH       TS_STATS_JSON    flat StatSet dump
 *   --bench-json DIR        TS_BENCH_JSON    per-run wrapper dumps
 *   --log N                 TS_LOG           stderr verbosity 0|1|2
 *   --no-fast-forward       TS_NO_FAST_FORWARD
 *                                            naive per-cycle ticking
 *   --steal P               TS_STEAL         lane work stealing
 *                                            (none|steal-one|steal-half)
 *   --sched P               TS_SCHED         scheduling policy
 *                                            (static|dyncount|
 *                                            workaware|spatial)
 *   -j N / --jobs N         (none)           host worker threads
 *
 * parseCommandLine() erases the flags it consumed from argv, so
 * google-benchmark binaries can hand the remainder to
 * benchmark::Initialize().  In strict mode any leftover option is
 * fatal, listing the valid flags — tools use that.
 */

#ifndef TS_DRIVER_OPTIONS_HH
#define TS_DRIVER_OPTIONS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "accel/delta.hh"
#include "workloads/workload.hh"

namespace ts
{
namespace driver
{

/** Everything a single simulated run needs from the outside world. */
struct RunOptions
{
    /** Workloads this process operates on (the whole suite unless
     *  narrowed by --workloads/TS_WORKLOADS). */
    std::vector<Wk> workloads;

    double scale = 1.0;      ///< problem-size multiplier (> 0)
    std::uint64_t seed = 7;  ///< base RNG seed
    int logLevel = 1;        ///< stderr verbosity (0|1|2)

    std::string tracePath;     ///< Perfetto trace out ("" = off)
    std::string statsJsonPath; ///< flat StatSet dump ("" = off)
    std::string benchJsonDir;  ///< per-run wrapper dumps ("" = off)

    /** Disable the activity-driven simulation core and tick every
     *  component every cycle (the naive reference mode).  Results are
     *  bit-identical either way; this exists for differential testing
     *  and host-performance comparison. */
    bool noFastForward = false;

    /** Executor shards for the conservative-PDES core (host threads
     *  per run).  Results are bit-identical for every value; forced
     *  to 1 with tracing or --no-fast-forward.  --shards N /
     *  TS_SHARDS. */
    std::uint32_t shards = 1;

    /** NoC work stealing between lane task units
     *  (none|steal-one|steal-half).  Behaviour-relevant: participates
     *  in canonicalConfig / cache keys.  --steal P / TS_STEAL. */
    StealPolicy steal = StealPolicy::None;

    /** Scheduling policy override
     *  (static|dyncount|workaware|spatial); only applied when
     *  schedSet (presets keep their own policy otherwise).
     *  Behaviour-relevant: participates in canonicalConfig / cache
     *  keys.  --sched P / TS_SCHED. */
    SchedPolicy sched = SchedPolicy::WorkAware;
    bool schedSet = false; ///< --sched/TS_SCHED was given

    /** Host worker threads for sweep-style drivers (0 = pick
     *  hardware concurrency at use site). */
    unsigned jobs = 0;

    /**
     * Progress/ETA lines on stderr for sweep-style drivers:
     * "auto" (default) emits them only when stderr is a TTY,
     * "always" forces them (CI logs), "never" suppresses them.
     * --progress[=]VALUE / TS_PROGRESS.
     */
    std::string progress = "auto";

    /** Timeline sampling interval in simulated cycles (0 = off).
     *  --timeline N / TS_TIMELINE. */
    Tick timelineInterval = 0;

    /** Timeline probe-group subset ("lanes,ready,noc,dram"; empty =
     *  all).  --timeline-series LIST / TS_TIMELINE_SERIES. */
    std::string timelineSeries;

    /** Attribute host wall-ns per component class and simulator
     *  phase (sim.host.profile.*).  --host-profile /
     *  TS_HOST_PROFILE. */
    bool hostProfile = false;

    /** Flight-recorder ring capacity in records (0 = off).
     *  --flight-recorder N / TS_FLIGHT_RECORDER. */
    std::size_t flightRecorder = 0;

    /**
     * Resolve the progress setting against a TTY check of stderr:
     * "always" is true, "never" is false, "auto" is isatty(stderr).
     */
    bool progressEnabled() const;

    /** Suite knobs in the shape the workload factories expect. */
    SuiteParams suiteParams() const;

    /**
     * Inject this run's output options into an accelerator config:
     * sets cfg.statsJsonPath, and when tracing is requested installs
     * a per-instance trace path (the second and later accelerator
     * instances in one process get a ".N" suffix before the
     * extension, so traces never overwrite each other).
     */
    DeltaConfig applyTo(DeltaConfig cfg) const;

    /** Apply logLevel to the process-wide logger (setLogVerbosity). */
    void applyLogLevel() const;

    /**
     * Options from the environment alone: every TS_* fallback above,
     * validated exactly like the flags (fatal on bad values, unknown
     * workload names listed).  This is the only function in the tree
     * that reads the environment.
     */
    static RunOptions fromEnv();
};

/**
 * Parse the shared flags out of argv (argv[0] is preserved).
 * Consumed arguments are erased and argc updated; anything
 * unrecognized is left in place for the caller (google-benchmark
 * flags, positional arguments).  With @p strict set, any remaining
 * argument starting with '-' is fatal() listing the valid flags.
 * Starts from fromEnv(), so flags override the environment.
 * `--help` prints optionsHelp() to stdout and exits 0 in strict
 * mode; in lenient mode it is left for the caller's own help path.
 */
RunOptions parseCommandLine(int& argc, char** argv,
                            bool strict = false);

/** One-screen reference for the shared flags (ends with '\n'). */
const char* optionsHelp();

/** parseCommandLine(strict), but option errors print to stderr and
 *  exit(2) instead of throwing — for examples and small CLIs whose
 *  main() has no try/catch. */
RunOptions parseCommandLineOrExit(int& argc, char** argv,
                                  bool strict = true);

/**
 * Trace config for one accelerator instance: disabled when @p base
 * is empty; otherwise instance 0 gets @p base verbatim and instance
 * i > 0 gets ".i" inserted before the extension.  Instance numbers
 * come from a process-wide atomic counter, so serial benches that
 * construct many Deltas keep distinct trace files.  Sweep drivers
 * that need deterministic names bypass this and set
 * DeltaConfig::trace explicitly via traceConfigTagged().
 */
trace::TracerConfig nextTraceConfig(const std::string& base);

/** Deterministically named trace config: ".<tag>" before the
 *  extension of @p base; disabled when @p base is empty. */
trace::TracerConfig traceConfigTagged(const std::string& base,
                                      const std::string& tag);

} // namespace driver
} // namespace ts

#endif // TS_DRIVER_OPTIONS_HH
