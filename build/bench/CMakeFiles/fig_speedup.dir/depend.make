# Empty dependencies file for fig_speedup.
# This may be replaced when dependencies are built.
