file(REMOVE_RECURSE
  "libts_cgra.a"
)
