/**
 * @file
 * Differential tests for the activity-driven simulation core: every
 * workload, under both the TaskStream config and the static-parallel
 * baseline, must produce byte-identical statistics with and without
 * fast-forwarding (the `sim.host.*` wall-clock counters excluded).
 *
 * This is the enforcement arm of the bit-identity contract in
 * src/sim/simulator.hh: sleeping is only legal when the skipped ticks
 * are provably no-ops, so the naive reference mode (tick every
 * component every cycle) and the activity-driven mode must agree on
 * every architectural statistic, cycle count, and functional result.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "accel/delta.hh"
#include "workloads/workload.hh"

using namespace ts;

namespace
{

struct RunResult
{
    std::string statsJson; ///< full dump minus sim.host.*
    double cycles = 0.0;
    std::uint64_t ticks = 0;
    bool correct = false;
};

RunResult
runOnce(Wk wk, bool staticConfig, bool noFastForward,
        Tick timelineInterval = 0)
{
    DeltaConfig cfg = staticConfig ? DeltaConfig::staticBaseline()
                                   : DeltaConfig::delta();
    cfg.noFastForward = noFastForward;
    cfg.timelineInterval = timelineInterval;

    SuiteParams sp;
    sp.scale = 0.25;
    sp.seed = 7;
    auto wl = makeWorkload(wk, sp);

    Delta delta(cfg);
    TaskGraph graph;
    wl->build(delta, graph);
    const StatSet stats = delta.run(graph);

    RunResult r;
    std::ostringstream os;
    stats.dumpJson(os, "sim.host.");
    r.statsJson = os.str();
    r.cycles = stats.get("sim.cycles");
    r.ticks =
        static_cast<std::uint64_t>(stats.get("sim.host.ticksExecuted"));
    r.correct = wl->check(delta.image());
    return r;
}

class FastForwardDifferential
    : public ::testing::TestWithParam<std::tuple<Wk, bool>>
{
};

TEST_P(FastForwardDifferential, BitIdenticalToNaiveTicking)
{
    const Wk wk = std::get<0>(GetParam());
    const bool staticConfig = std::get<1>(GetParam());

    const RunResult fast = runOnce(wk, staticConfig, false);
    const RunResult naive = runOnce(wk, staticConfig, true);

    EXPECT_TRUE(fast.correct);
    EXPECT_TRUE(naive.correct);
    EXPECT_EQ(fast.cycles, naive.cycles);
    EXPECT_EQ(fast.statsJson, naive.statsJson)
        << "activity-driven and naive runs diverged for "
        << wkName(wk) << " (" << (staticConfig ? "static" : "delta")
        << "): a component slept through a cycle that was not a "
           "no-op, or a wake source is missing";
    EXPECT_LT(fast.ticks, naive.ticks)
        << "the activity-driven core should actually skip ticks";
}

std::string
diffName(const ::testing::TestParamInfo<std::tuple<Wk, bool>>& info)
{
    return wkIdent(std::get<0>(info.param)) +
           (std::get<1>(info.param) ? "_static" : "_delta");
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, FastForwardDifferential,
    ::testing::Combine(::testing::ValuesIn(allWorkloads()),
                       ::testing::Bool()),
    diffName);

/**
 * The same contract with timeline sampling enabled: the sampler's
 * weak events must neither perturb the simulation (the skipped-ticks
 * proof still holds around catchUpAll) nor themselves observe
 * different values in the two execution modes.  The timeline columns
 * are part of the byte-compared dump, so any divergence shows up as
 * a stats mismatch.
 */
class TimelineDifferential
    : public ::testing::TestWithParam<std::tuple<Wk, bool>>
{
};

TEST_P(TimelineDifferential, SampledRunsBitIdenticalToNaiveTicking)
{
    const Wk wk = std::get<0>(GetParam());
    const bool staticConfig = std::get<1>(GetParam());

    const RunResult fast = runOnce(wk, staticConfig, false, 300);
    const RunResult naive = runOnce(wk, staticConfig, true, 300);

    EXPECT_TRUE(fast.correct);
    EXPECT_TRUE(naive.correct);
    EXPECT_NE(fast.statsJson.find("delta.timeline.samples"),
              std::string::npos)
        << "the sampled run must emit timeline columns";
    EXPECT_EQ(fast.statsJson, naive.statsJson)
        << "timeline columns diverged between activity-driven and "
           "naive runs for "
        << wkName(wk) << " (" << (staticConfig ? "static" : "delta")
        << "): a sampler fired at a different simulated time or "
           "observed un-caught-up counters";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, TimelineDifferential,
    ::testing::Combine(::testing::ValuesIn(allWorkloads()),
                       ::testing::Bool()),
    diffName);

} // namespace
