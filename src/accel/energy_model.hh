/**
 * @file
 * Analytical energy model: event counts from a run's statistics times
 * per-event energy constants (generic 28nm-class numbers; documented
 * substitution, DESIGN.md §4).  Complements the Tab-3 area model: the
 * interesting quantity is the *relative* energy of Delta vs the
 * static baseline — multicast removes DRAM fetches (the dominant
 * per-event cost), and pipelining removes memory round trips.
 */

#ifndef TS_ACCEL_ENERGY_MODEL_HH
#define TS_ACCEL_ENERGY_MODEL_HH

#include <string>
#include <vector>

#include "sim/stats.hh"

namespace ts
{

/** One row of the energy breakdown. */
struct EnergyEntry
{
    std::string name;
    double events = 0;
    double nanojoules = 0;
};

/** Energy breakdown of one run. */
struct EnergyReport
{
    std::vector<EnergyEntry> entries;

    double totalNanojoules() const;
};

/**
 * Compute the energy breakdown from a run's statistics dump
 * (the StatSet returned by Delta::run()).
 *
 * @param stats run statistics.
 * @param lanes lane count of the configuration that produced them.
 */
EnergyReport computeEnergy(const StatSet& stats, std::uint32_t lanes);

} // namespace ts

#endif // TS_ACCEL_ENERGY_MODEL_HH
