/**
 * @file
 * Snapshot/fork tests: the enforcement arm of the copy contract in
 * DESIGN.md §7.  A Delta snapshotted at its pristine
 * post-construction point and restored before each run must produce
 * byte-identical statistics and functional results to a Delta built
 * from scratch — for every workload, under both the static baseline
 * and the full TaskStream config, and across repeated restores of
 * one snapshot.
 *
 * Also covers the registry watermark (mark/rollback) that lets the
 * append-only TaskTypeRegistry rewind across forks, and the
 * shortest-round-trip JSON number formatting the cache's byte-replay
 * guarantee leans on.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <tuple>

#include "accel/delta.hh"
#include "sim/stats.hh"
#include "task/task_types.hh"
#include "workloads/workload.hh"

using namespace ts;

namespace
{

struct RunResult
{
    std::string statsJson; ///< full dump minus sim.host.*
    double cycles = 0.0;
    bool correct = false;
};

RunResult
resultOf(Delta& delta, Wk wk)
{
    SuiteParams sp;
    sp.scale = 0.25;
    sp.seed = 7;
    auto wl = makeWorkload(wk, sp);

    TaskGraph graph;
    wl->build(delta, graph);
    const StatSet stats = delta.run(graph);

    RunResult r;
    std::ostringstream os;
    stats.dumpJson(os, "sim.host.");
    r.statsJson = os.str();
    r.cycles = stats.get("sim.cycles");
    r.correct = wl->check(delta.image());
    return r;
}

DeltaConfig
configFor(bool staticConfig)
{
    return staticConfig ? DeltaConfig::staticBaseline()
                        : DeltaConfig::delta();
}

class SnapshotForkDifferential
    : public ::testing::TestWithParam<std::tuple<Wk, bool>>
{
};

} // namespace

TEST_P(SnapshotForkDifferential, ForkedRunsBitIdenticalToFresh)
{
    const Wk wk = std::get<0>(GetParam());
    const bool staticConfig = std::get<1>(GetParam());

    RunResult fresh;
    {
        Delta delta(configFor(staticConfig));
        fresh = resultOf(delta, wk);
    }
    ASSERT_TRUE(fresh.correct);

    Delta forked(configFor(staticConfig));
    const auto snap = forked.snapshot();
    for (int rep = 0; rep < 2; ++rep) {
        forked.restore(*snap);
        const RunResult r = resultOf(forked, wk);
        EXPECT_TRUE(r.correct);
        EXPECT_EQ(r.cycles, fresh.cycles) << "rep " << rep;
        EXPECT_EQ(r.statsJson, fresh.statsJson)
            << "forked run " << rep << " diverged for " << wkName(wk)
            << " (" << (staticConfig ? "static" : "delta")
            << "): some component state escaped the snapshot";
    }
}

namespace
{

std::string
snapName(const ::testing::TestParamInfo<std::tuple<Wk, bool>>& info)
{
    return wkIdent(std::get<0>(info.param)) +
           (std::get<1>(info.param) ? "_static" : "_delta");
}

} // namespace

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, SnapshotForkDifferential,
    ::testing::Combine(::testing::ValuesIn(allWorkloads()),
                       ::testing::Bool()),
    snapName);

// ---------------------------------------------------------------------
// Registry watermark.
// ---------------------------------------------------------------------

TEST(RegistryRollbackTest, RollbackForgetsTypesRegisteredSinceMark)
{
    Delta delta(DeltaConfig::delta());
    const TaskTypeRegistry::Mark m = delta.registry().mark();

    SuiteParams sp;
    sp.scale = 0.25;
    sp.seed = 7;
    auto wl = makeWorkload(Wk::Spmv, sp);
    TaskGraph graph;
    wl->build(delta, graph);

    const TaskTypeRegistry::Mark after = delta.registry().mark();
    EXPECT_GT(after.types, m.types)
        << "building a workload should register task types";

    delta.registry().rollback(m);
    const TaskTypeRegistry::Mark back = delta.registry().mark();
    EXPECT_EQ(back.types, m.types);
    EXPECT_EQ(back.dfgs, m.dfgs);
}

TEST(RegistryRollbackTest, RollbackToFutureMarkPanics)
{
    Delta delta(DeltaConfig::delta());
    TaskTypeRegistry::Mark m = delta.registry().mark();
    m.types += 1;
    EXPECT_THROW(delta.registry().rollback(m), PanicError);
}

// ---------------------------------------------------------------------
// JSON number canonicalization (cache byte-replay groundwork).
// ---------------------------------------------------------------------

TEST(JsonNumberTest, ShortestRoundTrip)
{
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(42.0), "42");
    EXPECT_EQ(jsonNumber(0.1), "0.1");
    EXPECT_EQ(jsonNumber(-3.5), "-3.5");
    // NaN/inf are not JSON numbers; the canonical form is null.
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
}

TEST(JsonNumberTest, DumpParseDumpIsIdempotent)
{
    const double values[] = {0.0,     1.0 / 3.0, 1e-9, 6.02214076e23,
                             12345.0, 0.30000000000000004};
    for (const double v : values) {
        const std::string once = jsonNumber(v);
        char* end = nullptr;
        const double parsed = std::strtod(once.c_str(), &end);
        ASSERT_EQ(*end, '\0') << once;
        EXPECT_EQ(jsonNumber(parsed), once)
            << "formatting must round-trip through parse exactly";
    }
}
