#include "cgra/op.hh"

#include <cmath>
#include <limits>

#include "sim/logging.hh"

namespace ts
{

const OpInfo&
opInfo(Op op)
{
    static const OpInfo table[] = {
        {"input", 0, 1},   {"output", 1, 1},
        {"add", 2, 1},     {"sub", 2, 1},     {"mul", 2, 3},
        {"div", 2, 8},     {"min", 2, 1},     {"max", 2, 1},
        {"and", 2, 1},     {"or", 2, 1},      {"xor", 2, 1},
        {"shl", 2, 1},     {"shr", 2, 1},
        {"cmplt", 2, 1},   {"cmpeq", 2, 1},   {"select", 3, 1},
        {"abs", 1, 1},
        {"fadd", 2, 3},    {"fsub", 2, 3},    {"fmul", 2, 4},
        {"fdiv", 2, 12},   {"fmin", 2, 1},    {"fmax", 2, 1},
        {"fcmplt", 2, 1},  {"fabs", 1, 1},
        {"itof", 1, 2},    {"ftoi", 1, 2},
        {"accadd", 1, 1},  {"faccadd", 1, 2}, {"accmax", 1, 1},
        {"accmin", 1, 1}, {"acccount", 1, 1},
        {"merge2", 2, 1},  {"isectcount", 2, 1},
    };
    return table[static_cast<std::size_t>(op)];
}

bool
isElementwise(Op op)
{
    return op >= Op::Add && op <= Op::FToI;
}

bool
isAccumulator(Op op)
{
    return op >= Op::AccAdd && op <= Op::AccCount;
}

bool
isStreamOp(Op op)
{
    return op == Op::Merge2 || op == Op::IsectCount;
}

Word
evalElementwise(Op op, Word a, Word b, Word c)
{
    switch (op) {
      case Op::Add: return fromInt(asInt(a) + asInt(b));
      case Op::Sub: return fromInt(asInt(a) - asInt(b));
      case Op::Mul: return fromInt(asInt(a) * asInt(b));
      case Op::Div:
        return fromInt(asInt(b) == 0 ? 0 : asInt(a) / asInt(b));
      case Op::Min: return fromInt(std::min(asInt(a), asInt(b)));
      case Op::Max: return fromInt(std::max(asInt(a), asInt(b)));
      case Op::And: return a & b;
      case Op::Or: return a | b;
      case Op::Xor: return a ^ b;
      case Op::Shl: return a << (b & 63);
      case Op::Shr: return a >> (b & 63);
      case Op::CmpLt: return fromInt(asInt(a) < asInt(b) ? 1 : 0);
      case Op::CmpEq: return fromInt(a == b ? 1 : 0);
      case Op::Select: return asInt(a) != 0 ? b : c;
      case Op::Abs: return fromInt(std::abs(asInt(a)));
      case Op::FAdd: return fromDouble(asDouble(a) + asDouble(b));
      case Op::FSub: return fromDouble(asDouble(a) - asDouble(b));
      case Op::FMul: return fromDouble(asDouble(a) * asDouble(b));
      case Op::FDiv: return fromDouble(asDouble(a) / asDouble(b));
      case Op::FMin:
        return fromDouble(std::min(asDouble(a), asDouble(b)));
      case Op::FMax:
        return fromDouble(std::max(asDouble(a), asDouble(b)));
      case Op::FCmpLt:
        return fromInt(asDouble(a) < asDouble(b) ? 1 : 0);
      case Op::FAbs: return fromDouble(std::fabs(asDouble(a)));
      case Op::IToF:
        return fromDouble(static_cast<double>(asInt(a)));
      case Op::FToI:
        return fromInt(static_cast<std::int64_t>(asDouble(a)));
      default:
        panic("evalElementwise on non-elementwise op ", opName(op));
    }
}

Word
evalAccStep(Op op, Word acc, Word v)
{
    switch (op) {
      case Op::AccAdd: return fromInt(asInt(acc) + asInt(v));
      case Op::FAccAdd: return fromDouble(asDouble(acc) + asDouble(v));
      case Op::AccMax: return fromInt(std::max(asInt(acc), asInt(v)));
      case Op::AccMin: return fromInt(std::min(asInt(acc), asInt(v)));
      case Op::AccCount: return fromInt(asInt(acc) + 1);
      default:
        panic("evalAccStep on non-accumulator op ", opName(op));
    }
}

Word
accIdentity(Op op)
{
    switch (op) {
      case Op::AccAdd:
      case Op::AccCount: return fromInt(0);
      case Op::FAccAdd: return fromDouble(0.0);
      case Op::AccMax:
        return fromInt(std::numeric_limits<std::int64_t>::min());
      case Op::AccMin:
        return fromInt(std::numeric_limits<std::int64_t>::max());
      default:
        panic("accIdentity on non-accumulator op ", opName(op));
    }
}

} // namespace ts
