#include "cache/run_cache.hh"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <vector>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include "cache/sha256.hh"
#include "sim/logging.hh"

namespace fs = std::filesystem;

namespace ts::cache
{

namespace
{

constexpr const char* kMagic = "TSCACHE1";

/** Entry files are 64 hex chars; everything else in the directory
 *  (index.txt, .lock, temporaries) is ignored by lookups/eviction. */
bool
isEntryName(const std::string& name)
{
    if (name.size() != 64)
        return false;
    return std::all_of(name.begin(), name.end(), [](char c) {
        return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    });
}

} // namespace

RunCache::RunCache(RunCacheConfig cfg) : cfg_(std::move(cfg))
{
    TS_ASSERT(!cfg_.dir.empty(), "run cache needs a directory");
    std::error_code ec;
    fs::create_directories(cfg_.dir, ec);
    if (ec) {
        fatal("run cache: cannot create directory '", cfg_.dir,
              "': ", ec.message());
    }
}

std::string
RunCache::keyFor(const std::string& fingerprint,
                 const std::string& cell)
{
    Sha256 ctx;
    ctx.update(fingerprint);
    ctx.update("\n", 1);
    ctx.update(cell);
    return ctx.hexDigest();
}

std::string
RunCache::entryPath(const std::string& key) const
{
    return cfg_.dir + "/" + key;
}

bool
RunCache::readEntry(const std::string& key, std::string& payload,
                    bool touch) const
{
    std::ifstream in(entryPath(key), std::ios::binary);
    if (!in)
        return false;

    std::string header;
    if (!std::getline(in, header))
        return false;
    std::istringstream hs(header);
    std::string magic, storedKey;
    std::uint64_t payloadBytes = 0;
    if (!(hs >> magic >> storedKey >> payloadBytes))
        return false;
    if (magic != kMagic || storedKey != key)
        return false;

    std::string cell;
    if (!std::getline(in, cell))
        return false;

    std::string body(payloadBytes, '\0');
    in.read(body.data(), static_cast<std::streamsize>(payloadBytes));
    if (static_cast<std::uint64_t>(in.gcount()) != payloadBytes)
        return false; // truncated
    if (in.get() != std::char_traits<char>::eof())
        return false; // trailing garbage

    payload = std::move(body);
    if (touch) {
        // LRU recency signal; best-effort (a racing eviction may have
        // unlinked the entry, which is fine — we already read it).
        ::utimensat(AT_FDCWD, entryPath(key).c_str(), nullptr, 0);
    }
    return true;
}

bool
RunCache::lookup(const std::string& key, std::string& payload) const
{
    return readEntry(key, payload, /*touch=*/true);
}

bool
RunCache::contains(const std::string& key) const
{
    std::string ignored;
    return readEntry(key, ignored, /*touch=*/false);
}

void
RunCache::publish(const std::string& key, const std::string& cell,
                  const std::string& payload) const
{
    TS_ASSERT(cell.find('\n') == std::string::npos,
              "canonical cells are single-line");

    // Unique temp name: concurrent publishers (threads or processes)
    // never collide, and a crash leaves only an ignorable temp file.
    static std::atomic<std::uint64_t> serial{0};
    const std::string tmp = cfg_.dir + "/.tmp." +
                            std::to_string(::getpid()) + "." +
                            std::to_string(serial.fetch_add(1)) + "." +
                            key.substr(0, 16);
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) {
            warn("run cache: cannot write '", tmp, "'; skipping publish");
            return;
        }
        out << kMagic << " " << key << " " << payload.size() << "\n"
            << cell << "\n"
            << payload;
        out.flush();
        if (!out) {
            warn("run cache: short write to '", tmp,
                 "'; skipping publish");
            std::error_code ec;
            fs::remove(tmp, ec);
            return;
        }
    }
    std::error_code ec;
    fs::rename(tmp, entryPath(key), ec);
    if (ec) {
        warn("run cache: publish rename failed: ", ec.message());
        fs::remove(tmp, ec);
        return;
    }

    // Advisory, append-only index for humans; O_APPEND keeps
    // concurrent writers line-atomic for short lines.
    const std::string line =
        key + " " + std::to_string(payload.size()) + " " + cell + "\n";
    const int fd = ::open((cfg_.dir + "/index.txt").c_str(),
                          O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
        [[maybe_unused]] const ssize_t n =
            ::write(fd, line.data(), line.size());
        ::close(fd);
    }

    if (cfg_.capBytes > 0)
        evictOverCap();
}

void
RunCache::evictOverCap() const
{
    // Exclusive advisory lock so concurrent sweeps do not race the
    // scan-and-unlink (unlinking a file another process is reading is
    // still safe — POSIX keeps the open inode alive).
    const int lockFd = ::open((cfg_.dir + "/.lock").c_str(),
                              O_WRONLY | O_CREAT, 0644);
    if (lockFd < 0)
        return;
    if (::flock(lockFd, LOCK_EX) != 0) {
        ::close(lockFd);
        return;
    }

    struct Entry
    {
        fs::path path;
        std::uint64_t bytes;
        fs::file_time_type mtime;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;
    std::error_code ec;
    for (const auto& de : fs::directory_iterator(cfg_.dir, ec)) {
        if (!isEntryName(de.path().filename().string()))
            continue;
        std::error_code fec;
        const std::uint64_t sz = de.file_size(fec);
        const auto mt = de.last_write_time(fec);
        if (fec)
            continue;
        entries.push_back(Entry{de.path(), sz, mt});
        total += sz;
    }

    if (total > cfg_.capBytes) {
        std::sort(entries.begin(), entries.end(),
                  [](const Entry& a, const Entry& b) {
                      return a.mtime < b.mtime;
                  });
        for (const Entry& e : entries) {
            if (total <= cfg_.capBytes)
                break;
            std::error_code rec;
            if (fs::remove(e.path, rec))
                total -= e.bytes;
        }
    }

    ::flock(lockFd, LOCK_UN);
    ::close(lockFd);
}

const std::string&
RunCache::codeFingerprint()
{
    static std::string fp;
    static std::once_flag once;
    std::call_once(once, [] {
        std::ifstream exe("/proc/self/exe", std::ios::binary);
        if (!exe) {
            warn("run cache: cannot read /proc/self/exe; cache keys "
                 "will not invalidate across rebuilds");
            fp = "no-fingerprint";
            return;
        }
        Sha256 ctx;
        char buf[1 << 16];
        while (exe.read(buf, sizeof(buf)) || exe.gcount() > 0)
            ctx.update(buf, static_cast<std::size_t>(exe.gcount()));
        fp = ctx.hexDigest();
    });
    return fp;
}

} // namespace ts::cache
