#include "task/task_types.hh"

#include "sim/logging.hh"

namespace ts
{

TaskTypeId
TaskTypeRegistry::addDfgType(std::string name, std::unique_ptr<Dfg> dfg)
{
    TS_ASSERT(dfg != nullptr);
    auto t = std::make_unique<TaskType>();
    t->id = static_cast<TaskTypeId>(types_.size());
    t->name = std::move(name);
    t->dfg = dfg.get();
    t->mapped = mapper_.map(*dfg);
    dfgs_.push_back(std::move(dfg));
    types_.push_back(std::move(t));
    return types_.back()->id;
}

TaskTypeId
TaskTypeRegistry::addBuiltinType(std::string name, BuiltinBody body)
{
    TS_ASSERT(body.apply && body.cycles && body.outputWords,
              "builtin body must define apply/cycles/outputWords");
    auto t = std::make_unique<TaskType>();
    t->id = static_cast<TaskTypeId>(types_.size());
    t->name = std::move(name);
    t->builtin = std::move(body);
    types_.push_back(std::move(t));
    return types_.back()->id;
}

void
TaskTypeRegistry::setWorkFn(
    TaskTypeId id,
    std::function<double(const MemImage&, const TaskInstance&)> fn)
{
    types_.at(id)->workFn = std::move(fn);
}

double
TaskTypeRegistry::estimateWork(const MemImage& img,
                               const TaskInstance& inst) const
{
    const TaskType& t = type(inst.type);
    if (t.workFn)
        return t.workFn(img, inst);
    // Default: total input stream elements (the stream annotation
    // makes this a one-adder hardware estimate).
    double w = 0;
    for (const StreamDesc& d : inst.inputs)
        w += static_cast<double>(d.elementCount(img));
    return std::max(w, 1.0);
}

void
TaskTypeRegistry::rollback(const Mark& m)
{
    TS_ASSERT(m.types <= types_.size() && m.dfgs <= dfgs_.size(),
              "registry rollback to a future mark");
    types_.resize(m.types);
    dfgs_.resize(m.dfgs);
}

} // namespace ts
