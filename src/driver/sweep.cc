#include "driver/sweep.hh"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <mutex>
#include <thread>

#include "sim/logging.hh"
#include "task/task_graph.hh"

namespace ts
{
namespace driver
{

namespace
{

std::string
formatScale(double scale)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", scale);
    return buf;
}

/** Full-precision deterministic double for report JSON (matches the
 *  StatSet::dumpJson convention, null for non-finite). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.*g",
                  std::numeric_limits<double>::max_digits10, v);
    return buf;
}

unsigned
resolveJobs(unsigned jobs)
{
    if (jobs > 0)
        return jobs;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

/** Sample mean/stddev over @p xs (stddev 0 when n < 2). */
void
meanStddev(const std::vector<double>& xs, double& mean,
           double& stddev)
{
    mean = 0.0;
    stddev = 0.0;
    if (xs.empty())
        return;
    double sum = 0.0;
    for (const double x : xs)
        sum += x;
    mean = sum / static_cast<double>(xs.size());
    if (xs.size() < 2)
        return;
    double ss = 0.0;
    for (const double x : xs)
        ss += (x - mean) * (x - mean);
    stddev = std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

} // namespace

const std::vector<std::string>&
sweepConfigNames()
{
    static const std::vector<std::string> names = {
        "static", "dyn", "work", "pipe", "delta"};
    return names;
}

ConfigVariant
sweepConfig(const std::string& name, std::uint32_t lanes)
{
    ConfigVariant v;
    v.name = name;
    if (name == "static") {
        v.cfg = DeltaConfig::staticBaseline(lanes);
    } else if (name == "dyn") {
        v.cfg = DeltaConfig::delta(lanes);
        v.cfg.policy = SchedPolicy::DynCount;
        v.cfg.enablePipeline = false;
        v.cfg.enableMulticast = false;
    } else if (name == "work") {
        v.cfg = DeltaConfig::delta(lanes);
        v.cfg.enablePipeline = false;
        v.cfg.enableMulticast = false;
    } else if (name == "pipe") {
        v.cfg = DeltaConfig::delta(lanes);
        v.cfg.enableMulticast = false;
    } else if (name == "delta") {
        v.cfg = DeltaConfig::delta(lanes);
    } else {
        std::string valid;
        for (const std::string& n : sweepConfigNames())
            valid += (valid.empty() ? "" : ", ") + n;
        fatal("unknown sweep config '", name, "'; valid configs: ",
              valid);
    }
    return v;
}

std::vector<ConfigVariant>
sweepConfigsFromList(const std::string& list, std::uint32_t lanes)
{
    std::vector<ConfigVariant> out;
    std::string cur;
    const auto flush = [&] {
        // Trim surrounding whitespace.
        const auto b = cur.find_first_not_of(" \t");
        const auto e = cur.find_last_not_of(" \t");
        const std::string name =
            b == std::string::npos ? "" : cur.substr(b, e - b + 1);
        if (!name.empty())
            out.push_back(sweepConfig(name, lanes));
        cur.clear();
    };
    for (const char c : list) {
        if (c == ',')
            flush();
        else
            cur += c;
    }
    flush();
    if (out.empty()) {
        out.push_back(sweepConfig("static", lanes));
        out.push_back(sweepConfig("delta", lanes));
    }
    return out;
}

std::string
SweepSpec::baselineName() const
{
    if (!baseline.empty())
        return baseline;
    return configs.size() > 1 ? configs.front().name : std::string();
}

std::string
RunPoint::tag() const
{
    return std::string(wkName(workload)) + "_" + config + "_l" +
           std::to_string(lanes) + "_s" + std::to_string(seed) +
           "_x" + formatScale(scale);
}

Sweep::Sweep(SweepSpec spec) : spec_(std::move(spec))
{
    if (spec_.workloads.empty())
        fatal("sweep: no workloads selected");
    if (spec_.configs.empty())
        fatal("sweep: no configs selected");
    if (spec_.seeds.empty())
        fatal("sweep: no seeds selected");
    if (spec_.scales.empty())
        fatal("sweep: no scales selected");
    for (const double s : spec_.scales) {
        if (!(s > 0))
            fatal("sweep: scales must be positive, got ", s);
    }
    if (!spec_.baseline.empty()) {
        bool found = false;
        for (const ConfigVariant& c : spec_.configs)
            found = found || c.name == spec_.baseline;
        if (!found) {
            std::string valid;
            for (const ConfigVariant& c : spec_.configs)
                valid += (valid.empty() ? "" : ", ") + c.name;
            fatal("sweep: baseline '", spec_.baseline,
                  "' is not in the config list (", valid, ")");
        }
    }

    // Deterministic grid order: workload-major, then scale, seed,
    // config — the paired baseline/config runs of one point land
    // adjacently, and every aggregate walks this same order.
    for (const Wk w : spec_.workloads) {
        for (const double scale : spec_.scales) {
            for (const std::uint64_t seed : spec_.seeds) {
                for (const ConfigVariant& c : spec_.configs) {
                    RunPoint p;
                    p.workload = w;
                    p.config = c.name;
                    p.seed = seed;
                    p.scale = scale;
                    p.lanes = c.cfg.lanes;
                    points_.push_back(p);
                }
            }
        }
    }
}

namespace
{

/** Execute one grid point in full isolation on the calling thread. */
RunOutcome
executePoint(const SweepSpec& spec, const RunPoint& point)
{
    RunOutcome out;
    out.point = point;
    try {
        DeltaConfig cfg;
        for (const ConfigVariant& c : spec.configs) {
            if (c.name == point.config)
                cfg = c.cfg;
        }
        if (!spec.tracePath.empty())
            cfg.trace = traceConfigTagged(spec.tracePath, point.tag());
        if (spec.noFastForward)
            cfg.noFastForward = true;

        SuiteParams sp;
        sp.seed = point.seed;
        sp.scale = point.scale;
        auto wl = makeWorkload(point.workload, sp);

        Delta delta(cfg);
        TaskGraph graph;
        wl->build(delta, graph);
        out.stats = delta.run(graph);
        out.cycles = out.stats.get("delta.cycles");
        out.correct = wl->check(delta.image());
    } catch (const std::exception& e) {
        out.failed = true;
        out.error = e.what();
    }

    if (!spec.benchJsonDir.empty() && !out.failed) {
        const std::string path =
            spec.benchJsonDir + "/" + point.tag() + ".json";
        std::ofstream os(path);
        if (!os) {
            warn("sweep: cannot write '", path, "'");
        } else {
            os << "{\n  \"workload\": \"" << wkName(point.workload)
               << "\",\n  \"config\": \"" << point.config
               << "\",\n  \"lanes\": " << point.lanes
               << ",\n  \"seed\": " << point.seed
               << ",\n  \"scale\": " << formatScale(point.scale)
               << ",\n  \"correct\": "
               << (out.correct ? "true" : "false")
               << ",\n  \"stats\": ";
            out.stats.dumpJson(os);
            os << "}\n";
        }
    }
    return out;
}

} // namespace

void
parallelFor(std::size_t n, unsigned jobs,
            const std::function<void(std::size_t)>& fn)
{
    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(resolveJobs(jobs), n));
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) {
        pool.emplace_back([&] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                fn(i);
            }
        });
    }
    for (std::thread& t : pool)
        t.join();
}

SweepReport
Sweep::run()
{
    SweepReport report;
    report.spec = spec_;
    report.runs.resize(points_.size());

    const auto start = std::chrono::steady_clock::now();
    std::mutex progressMutex;
    std::size_t done = 0;

    parallelFor(points_.size(), spec_.jobs, [&](std::size_t i) {
        RunOutcome out = executePoint(spec_, points_[i]);
        if (spec_.progress) {
            std::lock_guard<std::mutex> lock(progressMutex);
            ++done;
            const double elapsed =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            const double eta =
                elapsed / static_cast<double>(done) *
                static_cast<double>(points_.size() - done);
            std::fprintf(
                stderr, "[%3zu/%zu] %-32s %s  (%.1fs elapsed",
                done, points_.size(), out.point.tag().c_str(),
                out.failed ? "FAILED"
                           : (out.correct ? "ok" : "INCORRECT"),
                elapsed);
            if (done < points_.size())
                std::fprintf(stderr, ", ETA %.0fs", eta);
            std::fprintf(stderr, ")\n");
            if (out.failed)
                std::fprintf(stderr, "        %s\n",
                             out.error.c_str());
        }
        report.runs[i] = std::move(out);
    });

    return report;
}

const RunOutcome*
SweepReport::find(Wk w, const std::string& config,
                  std::uint64_t seed, double scale) const
{
    for (const RunOutcome& r : runs) {
        if (r.point.workload == w && r.point.config == config &&
            r.point.seed == seed && r.point.scale == scale)
            return &r;
    }
    return nullptr;
}

bool
SweepReport::allOk() const
{
    return failures() == 0;
}

std::size_t
SweepReport::failures() const
{
    std::size_t n = 0;
    for (const RunOutcome& r : runs)
        n += r.ok() ? 0 : 1;
    return n;
}

std::vector<CellAggregate>
SweepReport::aggregates() const
{
    std::vector<CellAggregate> out;
    for (const Wk w : spec.workloads) {
        for (const double scale : spec.scales) {
            for (const ConfigVariant& c : spec.configs) {
                CellAggregate cell;
                cell.workload = w;
                cell.config = c.name;
                cell.scale = scale;
                std::vector<double> cycles;
                for (const std::uint64_t seed : spec.seeds) {
                    const RunOutcome* r =
                        find(w, c.name, seed, scale);
                    if (r != nullptr && r->ok())
                        cycles.push_back(r->cycles);
                }
                cell.n = cycles.size();
                meanStddev(cycles, cell.meanCycles,
                           cell.stddevCycles);
                out.push_back(cell);
            }
        }
    }
    return out;
}

std::vector<PairedSpeedup>
SweepReport::pairedSpeedups() const
{
    std::vector<PairedSpeedup> out;
    const std::string base = spec.baselineName();
    if (base.empty())
        return out;
    for (const Wk w : spec.workloads) {
        for (const double scale : spec.scales) {
            for (const ConfigVariant& c : spec.configs) {
                if (c.name == base)
                    continue;
                PairedSpeedup ps;
                ps.workload = w;
                ps.config = c.name;
                ps.scale = scale;
                std::vector<double> ratios;
                for (const std::uint64_t seed : spec.seeds) {
                    const RunOutcome* b = find(w, base, seed, scale);
                    const RunOutcome* r =
                        find(w, c.name, seed, scale);
                    if (b != nullptr && r != nullptr && b->ok() &&
                        r->ok() && r->cycles > 0)
                        ratios.push_back(b->cycles / r->cycles);
                }
                ps.n = ratios.size();
                meanStddev(ratios, ps.mean, ps.stddev);
                out.push_back(ps);
            }
        }
    }
    return out;
}

void
SweepReport::writeJson(std::ostream& os) const
{
    os << "{\n  \"grid\": {\n    \"workloads\": [";
    for (std::size_t i = 0; i < spec.workloads.size(); ++i)
        os << (i > 0 ? ", " : "") << '"' << wkName(spec.workloads[i])
           << '"';
    os << "],\n    \"configs\": [";
    for (std::size_t i = 0; i < spec.configs.size(); ++i)
        os << (i > 0 ? ", " : "") << '"'
           << jsonEscape(spec.configs[i].name) << '"';
    os << "],\n    \"seeds\": [";
    for (std::size_t i = 0; i < spec.seeds.size(); ++i)
        os << (i > 0 ? ", " : "") << spec.seeds[i];
    os << "],\n    \"scales\": [";
    for (std::size_t i = 0; i < spec.scales.size(); ++i)
        os << (i > 0 ? ", " : "") << formatScale(spec.scales[i]);
    os << "],\n    \"baseline\": \""
       << jsonEscape(spec.baselineName()) << "\"\n  },\n";

    os << "  \"runs\": [";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const RunOutcome& r = runs[i];
        os << (i > 0 ? ",\n" : "\n") << "    {\"tag\": \""
           << jsonEscape(r.point.tag()) << "\", \"workload\": \""
           << wkName(r.point.workload) << "\", \"config\": \""
           << jsonEscape(r.point.config)
           << "\", \"seed\": " << r.point.seed
           << ", \"scale\": " << formatScale(r.point.scale)
           << ", \"lanes\": " << r.point.lanes << ", \"correct\": "
           << (r.correct ? "true" : "false") << ", \"failed\": "
           << (r.failed ? "true" : "false");
        if (r.failed)
            os << ", \"error\": \"" << jsonEscape(r.error) << '"';
        os << ", \"cycles\": " << jsonNumber(r.cycles)
           << ",\n     \"stats\": ";
        if (r.failed)
            os << "{}";
        else
            // Host-side wall-clock counters are non-deterministic;
            // the aggregate report must stay byte-reproducible.
            r.stats.dumpJson(os, "sim.host.");
        os << "}";
    }
    os << "\n  ],\n";

    os << "  \"aggregates\": [";
    const auto aggs = aggregates();
    for (std::size_t i = 0; i < aggs.size(); ++i) {
        const CellAggregate& a = aggs[i];
        os << (i > 0 ? ",\n" : "\n") << "    {\"workload\": \""
           << wkName(a.workload) << "\", \"config\": \""
           << jsonEscape(a.config)
           << "\", \"scale\": " << formatScale(a.scale)
           << ", \"n\": " << a.n
           << ", \"meanCycles\": " << jsonNumber(a.meanCycles)
           << ", \"stddevCycles\": " << jsonNumber(a.stddevCycles)
           << "}";
    }
    os << "\n  ],\n";

    os << "  \"speedups\": [";
    const auto sps = pairedSpeedups();
    for (std::size_t i = 0; i < sps.size(); ++i) {
        const PairedSpeedup& s = sps[i];
        os << (i > 0 ? ",\n" : "\n") << "    {\"workload\": \""
           << wkName(s.workload) << "\", \"config\": \""
           << jsonEscape(s.config)
           << "\", \"scale\": " << formatScale(s.scale)
           << ", \"n\": " << s.n
           << ", \"mean\": " << jsonNumber(s.mean)
           << ", \"stddev\": " << jsonNumber(s.stddev) << "}";
    }
    os << "\n  ]\n}\n";
}

} // namespace driver
} // namespace ts
