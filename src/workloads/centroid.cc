#include "workloads/centroid.hh"

#include <limits>

namespace ts
{

void
CentroidWorkload::build(Delta& delta, TaskGraph& graph)
{
    MemImage& img = delta.image();
    Rng rng(p_.seed);

    const Addr pts = img.allocWords(p_.points * p_.dims);
    const Addr cent = img.allocWords(p_.k * p_.dims);
    outAddr_ = img.allocWords(p_.points);

    for (std::uint64_t i = 0; i < p_.points * p_.dims; ++i)
        img.writeInt(pts + i * wordBytes, rng.uniformInt(0, 1000));
    for (std::uint64_t i = 0; i < p_.k * p_.dims; ++i)
        img.writeInt(cent + i * wordBytes, rng.uniformInt(0, 1000));

    // --- golden -----------------------------------------------------
    expected_.assign(p_.points, 0);
    for (std::uint64_t pIdx = 0; pIdx < p_.points; ++pIdx) {
        std::int64_t best = std::numeric_limits<std::int64_t>::max();
        for (std::uint64_t c = 0; c < p_.k; ++c) {
            std::int64_t d2 = 0;
            for (std::uint64_t d = 0; d < p_.dims; ++d) {
                const std::int64_t diff =
                    img.readInt(pts + (pIdx * p_.dims + d) * wordBytes) -
                    img.readInt(cent + (c * p_.dims + d) * wordBytes);
                d2 += diff * diff;
            }
            best = std::min(best, d2);
        }
        expected_[pIdx] = best;
    }

    // --- task type ----------------------------------------------------
    auto dfg = std::make_unique<Dfg>("centroid");
    const auto pIn = dfg->addInput();
    const auto cIn = dfg->addInput();
    const auto diff =
        dfg->add(Op::Sub, Operand::ref(pIn), Operand::ref(cIn));
    const auto sq =
        dfg->add(Op::Mul, Operand::ref(diff), Operand::ref(diff));
    const auto d2 = dfg->add(Op::AccAdd, Operand::ref(sq));
    const auto mn = dfg->add(Op::AccMin, Operand::ref(d2));
    dfg->addOutput(mn);
    const TaskTypeId ty =
        delta.registry().addDfgType("centroid", std::move(dfg));

    // --- task graph -----------------------------------------------------
    const std::uint32_t group =
        graph.addSharedGroup(cent, p_.k * p_.dims);
    for (std::uint64_t p0 = 0; p0 < p_.points;
         p0 += p_.pointsPerTask) {
        const std::uint64_t np =
            std::min(p_.pointsPerTask, p_.points - p0);

        // Point rows, each replayed once per centroid.
        StreamDesc a = StreamDesc::strided2d(
            Space::Dram, pts + p0 * p_.dims * wordBytes, np,
            static_cast<std::int64_t>(p_.dims), p_.dims);
        a.rowRepeat = static_cast<std::uint32_t>(p_.k);

        // The centroid table, replayed once per point.
        StreamDesc b =
            StreamDesc::linear(Space::Dram, cent, p_.k * p_.dims);
        b.loops = np;
        b.fixedSegLen = p_.dims;

        WriteDesc out;
        out.base = outAddr_ + p0 * wordBytes;
        const TaskId id = graph.addTask(ty, {a, b}, {out});
        graph.setSharedInput(id, 1, group);
    }
}

bool
CentroidWorkload::check(const MemImage& img) const
{
    for (std::uint64_t pIdx = 0; pIdx < p_.points; ++pIdx) {
        const std::int64_t got =
            img.readInt(outAddr_ + pIdx * wordBytes);
        if (got != expected_[pIdx]) {
            warn("centroid mismatch at point ", pIdx, ": got ", got,
                 " want ", expected_[pIdx]);
            return false;
        }
    }
    return true;
}

} // namespace ts
