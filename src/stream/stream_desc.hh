/**
 * @file
 * Stream descriptors: the task-argument annotation at the heart of
 * TaskStream.  A descriptor names a memory access pattern precisely
 * enough for the hardware to (a) estimate the work a task represents,
 * (b) forward a producer's output stream directly to a consumer
 * (pipelined inter-task dependences), and (c) recognize that many
 * tasks read the same range (shared-read multicast).
 */

#ifndef TS_STREAM_STREAM_DESC_HH
#define TS_STREAM_STREAM_DESC_HH

#include <cstdint>
#include <vector>

#include "cgra/token.hh"
#include "sim/types.hh"

namespace ts
{

class MemImage;
class Scratchpad;

/** Which storage a stream touches. */
enum class Space : std::uint8_t
{
    Dram, ///< global memory via the NoC and memory controller
    Spm,  ///< lane-local scratchpad (word offsets, 1-cycle access)
    Pipe, ///< inter-task forwarded chunks (no memory at all)
};

/** An input stream access pattern. */
struct StreamDesc
{
    enum class Kind : std::uint8_t
    {
        Linear,    ///< base + i*stride, i < count
        Strided2D, ///< outer x inner rows; segEnd per row
        Indirect,  ///< data[idx[i]] gathers
        Csr,       ///< ptr[]-delimited segments of data, direct
        CsrGather, ///< ptr[]-delimited segments of data[col[j]]
        CsrIndirectSeg, ///< segments selected by an id list:
                        ///< for v in list: data[ptr[v] .. ptr[v+1])
        PipeIn,    ///< tokens forwarded from a producer task
    };

    Kind kind = Kind::Linear;

    Space dataSpace = Space::Dram;
    Addr dataBase = 0;        ///< byte addr (Dram) / word offset (Spm)
    std::int64_t strideWords = 1; ///< element stride; gather scale

    Space idxSpace = Space::Dram;
    Addr idxBase = 0;         ///< index / column array

    Addr ptrBase = 0;         ///< CSR segment-pointer array

    std::uint64_t count = 0;  ///< elements (Linear/Indirect) or
                              ///< segments (Csr*)
    std::uint64_t innerLen = 0;       ///< Strided2D row length
    std::int64_t innerStrideWords = 1;
    std::int64_t outerStrideWords = 0;

    std::uint32_t repeat = 1;     ///< emit each element this many times
    std::uint64_t fixedSegLen = 0; ///< if set, segEnd every N elements
    std::uint64_t loops = 1;      ///< Linear: replay the whole
                                  ///< sequence; seg2End per replay
    std::uint32_t rowRepeat = 1;  ///< Strided2D: replay each row;
                                  ///< seg2End per row group

    std::uint64_t pipeId = 0;     ///< PipeIn channel identity

    /**
     * Spatial mapping: this input's range was forwarded lane-to-lane
     * into the consumer's scratchpad landing zone, so reads are
     * served at SPM speed without DRAM line requests.  Functional
     * data still comes from the global image (forwarding is
     * timing-only); set by the dispatcher under SchedPolicy::Spatial
     * for Linear stride-1 DRAM inputs only.
     */
    bool spatialLanding = false;

    // --- constructors -------------------------------------------------

    static StreamDesc linear(Space sp, Addr base, std::uint64_t n,
                             std::int64_t strideWords = 1);
    static StreamDesc strided2d(Space sp, Addr base,
                                std::uint64_t outerLen,
                                std::int64_t outerStrideWords,
                                std::uint64_t innerLen,
                                std::int64_t innerStrideWords = 1);
    static StreamDesc indirect(Space idxSp, Addr idxBase,
                               std::uint64_t n, Space dataSp,
                               Addr dataBase,
                               std::int64_t scaleWords = 1);
    static StreamDesc csr(Space sp, Addr ptrBase, std::uint64_t segs,
                          Addr dataBase);
    static StreamDesc csrGather(Space idxSp, Addr ptrBase, Addr colBase,
                                std::uint64_t segs, Space dataSp,
                                Addr dataBase,
                                std::int64_t scaleWords = 1);
    static StreamDesc csrIndirectSeg(Space idxSp, Addr listBase,
                                     std::uint64_t listLen,
                                     Addr ptrBase, Space dataSp,
                                     Addr dataBase);
    static StreamDesc pipeIn(std::uint64_t pipeId);

    // --- queries ------------------------------------------------------

    /**
     * Number of logical elements (before repeat), resolving CSR
     * lengths against the image.  Used for work estimation.
     */
    std::uint64_t elementCount(const MemImage& img) const;

    /**
     * The contiguous DRAM word range [begin, end) this stream reads,
     * if it is recognizable as one (Linear stride 1 in DRAM).  Used
     * for shared-read detection.  Returns false otherwise.
     */
    bool dramRange(Addr& beginByte, std::uint64_t& words) const;
};

/** An output stream destination. */
struct WriteDesc
{
    Space space = Space::Dram;
    Addr base = 0;               ///< byte addr (Dram) / word offset (Spm)
    std::int64_t strideWords = 1;
    bool toMemory = true;        ///< functional+traffic memory write

    /** Non-zero: forward a copy of the stream to these NoC nodes. */
    std::uint64_t pipeDstMask = 0;
    std::uint64_t pipeId = 0;
    std::uint32_t chunkWords = 16; ///< forwarding granularity

    /** One spatially mapped consumer of this output stream. */
    struct SpatialDst
    {
        std::uint32_t node = 0;  ///< consumer lane's NoC node
        std::uint64_t group = 0; ///< (consumer uid << 3) | port
    };

    /** Spatial mapping: forward the stream lane-to-lane into these
     *  consumers' landing zones (chunkWords granularity, final chunk
     *  carries the done marker). */
    std::vector<SpatialDst> spatialDsts;

    /**
     * Spatial mapping: every consumer of this range receives the
     * stream by forwarding, so the DRAM write-back line traffic is
     * suppressed (the functional image is still updated — see
     * DESIGN.md §10 for the fidelity contract).
     */
    bool spatialSuppress = false;
};

/**
 * Golden expansion of an input stream into its full token sequence
 * (reference semantics; PipeIn not supported here).
 *
 * @param d the descriptor.
 * @param img the DRAM functional image.
 * @param spm lane scratchpad for Spm-space accesses (may be null if
 *            unused by the descriptor).
 */
std::vector<Token> expandStream(const StreamDesc& d, const MemImage& img,
                                const Scratchpad* spm);

} // namespace ts

#endif // TS_STREAM_STREAM_DESC_HH
