/**
 * @file
 * Unit tests for the CGRA: opcode semantics, DFG construction and
 * validation, the functional interpreter, the mapper (placement and
 * routing invariants), and the cycle-level fabric — including the
 * key property test that the fabric matches the interpreter on
 * randomized DFGs and inputs.
 */

#include <gtest/gtest.h>

#include "cgra/fabric.hh"
#include "sim/rng.hh"

namespace ts
{
namespace
{

// --- opcode semantics ---------------------------------------------------

TEST(Ops, IntegerElementwise)
{
    auto ev = [](Op op, std::int64_t a, std::int64_t b) {
        return asInt(evalElementwise(op, fromInt(a), fromInt(b), 0));
    };
    EXPECT_EQ(ev(Op::Add, 7, -3), 4);
    EXPECT_EQ(ev(Op::Sub, 7, -3), 10);
    EXPECT_EQ(ev(Op::Mul, -4, 6), -24);
    EXPECT_EQ(ev(Op::Div, 42, 5), 8);
    EXPECT_EQ(ev(Op::Div, 42, 0), 0) << "divide by zero yields 0";
    EXPECT_EQ(ev(Op::Min, 3, -9), -9);
    EXPECT_EQ(ev(Op::Max, 3, -9), 3);
    EXPECT_EQ(ev(Op::CmpLt, 2, 3), 1);
    EXPECT_EQ(ev(Op::CmpLt, 3, 2), 0);
    EXPECT_EQ(ev(Op::CmpEq, 5, 5), 1);
    EXPECT_EQ(asInt(evalElementwise(Op::Abs, fromInt(-5), 0, 0)), 5);
}

TEST(Ops, BitwiseAndShifts)
{
    auto ev = [](Op op, Word a, Word b) {
        return evalElementwise(op, a, b, 0);
    };
    EXPECT_EQ(ev(Op::And, 0xff00, 0x0ff0), 0x0f00u);
    EXPECT_EQ(ev(Op::Or, 0xf0, 0x0f), 0xffu);
    EXPECT_EQ(ev(Op::Xor, 0xff, 0x0f), 0xf0u);
    EXPECT_EQ(ev(Op::Shl, 1, 12), 1u << 12);
    EXPECT_EQ(ev(Op::Shr, 1u << 12, 12), 1u);
}

TEST(Ops, FloatingPointElementwise)
{
    auto ev = [](Op op, double a, double b) {
        return asDouble(
            evalElementwise(op, fromDouble(a), fromDouble(b), 0));
    };
    EXPECT_DOUBLE_EQ(ev(Op::FAdd, 1.5, 2.25), 3.75);
    EXPECT_DOUBLE_EQ(ev(Op::FSub, 1.5, 2.25), -0.75);
    EXPECT_DOUBLE_EQ(ev(Op::FMul, 1.5, 2.0), 3.0);
    EXPECT_DOUBLE_EQ(ev(Op::FDiv, 3.0, 2.0), 1.5);
    EXPECT_DOUBLE_EQ(ev(Op::FMin, 3.0, 2.0), 2.0);
    EXPECT_DOUBLE_EQ(ev(Op::FMax, 3.0, 2.0), 3.0);
    EXPECT_EQ(asInt(evalElementwise(Op::FCmpLt, fromDouble(1.0),
                                    fromDouble(2.0), 0)),
              1);
}

TEST(Ops, SelectAndConversions)
{
    EXPECT_EQ(evalElementwise(Op::Select, fromInt(1), 11, 22), 11u);
    EXPECT_EQ(evalElementwise(Op::Select, fromInt(0), 11, 22), 22u);
    EXPECT_DOUBLE_EQ(
        asDouble(evalElementwise(Op::IToF, fromInt(-3), 0, 0)), -3.0);
    EXPECT_EQ(asInt(evalElementwise(Op::FToI, fromDouble(2.9), 0, 0)),
              2);
}

TEST(Ops, AccumulatorStepsAndIdentities)
{
    EXPECT_EQ(asInt(evalAccStep(Op::AccAdd, fromInt(10), fromInt(5))),
              15);
    EXPECT_EQ(asInt(evalAccStep(Op::AccMax, fromInt(10), fromInt(5))),
              10);
    EXPECT_EQ(asInt(evalAccStep(Op::AccMin, fromInt(10), fromInt(5))),
              5);
    EXPECT_EQ(asInt(evalAccStep(Op::AccCount, fromInt(3), fromInt(99))),
              4);
    EXPECT_EQ(asInt(accIdentity(Op::AccAdd)), 0);
    EXPECT_DOUBLE_EQ(asDouble(accIdentity(Op::FAccAdd)), 0.0);
}

TEST(Ops, Classification)
{
    EXPECT_TRUE(isElementwise(Op::Add));
    EXPECT_TRUE(isElementwise(Op::FToI));
    EXPECT_FALSE(isElementwise(Op::AccAdd));
    EXPECT_TRUE(isAccumulator(Op::AccMin));
    EXPECT_FALSE(isAccumulator(Op::Merge2));
    EXPECT_TRUE(isStreamOp(Op::Merge2));
    EXPECT_TRUE(isStreamOp(Op::IsectCount));
    EXPECT_FALSE(isStreamOp(Op::Select));
}

// --- token helpers ------------------------------------------------------

TEST(Token, FlagHelpersAndDemotion)
{
    Token t{0, kSegEnd};
    EXPECT_TRUE(t.segEnd());
    EXPECT_FALSE(t.seg2End());
    EXPECT_FALSE(t.streamEnd());
    Token u{0, kStreamEnd};
    EXPECT_TRUE(u.segEnd());
    EXPECT_TRUE(u.seg2End());
    EXPECT_TRUE(u.streamEnd());
    EXPECT_EQ(Token::demote(kSegEnd), 0);
    EXPECT_EQ(Token::demote(kSeg2End | kSegEnd), kSegEnd);
    EXPECT_EQ(Token::demote(kStreamEnd),
              kSegEnd | kStreamEnd);
}

// --- DFG construction & interpreter -------------------------------------

TEST(Dfg, ValidationCatchesArityErrors)
{
    Dfg dfg("bad");
    auto a = dfg.addInput();
    dfg.add(Op::Add, Operand::ref(a)); // missing second operand
    dfg.addOutput(0);
    EXPECT_THROW(dfg.validate(), FatalError);
}

TEST(Dfg, ValidationRequiresPorts)
{
    Dfg noOut("noout");
    noOut.addInput();
    EXPECT_THROW(noOut.validate(), FatalError);
}

TEST(Dfg, EdgesEnumerateOperandReferences)
{
    Dfg dfg("e");
    auto a = dfg.addInput();
    auto b = dfg.addInput();
    auto c = dfg.add(Op::Add, Operand::ref(a), Operand::ref(b));
    dfg.addOutput(c);
    const auto edges = dfg.edges();
    ASSERT_EQ(edges.size(), 3u); // a->c, b->c, c->out
}

TEST(Interpreter, ElementwiseWithImmediate)
{
    Dfg dfg("scale");
    auto x = dfg.addInput();
    auto m = dfg.add(Op::Mul, Operand::ref(x), Operand::immI(3));
    dfg.addOutput(m);
    dfg.validate();

    auto out = evalDfg(
        dfg, {makeStream({fromInt(1), fromInt(2), fromInt(5)})});
    ASSERT_EQ(out[0].size(), 3u);
    EXPECT_EQ(asInt(out[0][0].value), 3);
    EXPECT_EQ(asInt(out[0][2].value), 15);
    EXPECT_TRUE(out[0][2].streamEnd());
}

TEST(Interpreter, SegmentedAccumulation)
{
    Dfg dfg("acc");
    auto x = dfg.addInput();
    auto s = dfg.add(Op::AccAdd, Operand::ref(x));
    dfg.addOutput(s);

    std::vector<Token> in = {
        {fromInt(1), 0},       {fromInt(2), kSegEnd},
        {fromInt(10), 0},      {fromInt(20), 0},
        {fromInt(30), kSegEnd | kStreamEnd},
    };
    auto out = evalDfg(dfg, {in});
    ASSERT_EQ(out[0].size(), 2u);
    EXPECT_EQ(asInt(out[0][0].value), 3);
    EXPECT_EQ(asInt(out[0][1].value), 60);
    EXPECT_TRUE(out[0][1].streamEnd());
}

TEST(Interpreter, TwoLevelReductionDemotesBoundaries)
{
    // Sum pairs (level 1), then min over pairs-of-sums (level 2).
    Dfg dfg("two");
    auto x = dfg.addInput();
    auto s = dfg.add(Op::AccAdd, Operand::ref(x));
    auto m = dfg.add(Op::AccMin, Operand::ref(s));
    dfg.addOutput(m);

    std::vector<Token> in = {
        {fromInt(5), 0}, {fromInt(1), kSegEnd},           // 6
        {fromInt(2), 0}, {fromInt(1), kSegEnd | kSeg2End}, // 3 -> min 3
        {fromInt(9), 0}, {fromInt(9), kSegEnd},           // 18
        {fromInt(1), 0},
        {fromInt(1), std::uint8_t(kSegEnd | kStreamEnd)}, // 2 -> min 2
    };
    auto out = evalDfg(dfg, {in});
    ASSERT_EQ(out[0].size(), 2u);
    EXPECT_EQ(asInt(out[0][0].value), 3);
    EXPECT_EQ(asInt(out[0][1].value), 2);
}

TEST(Interpreter, MergeTwoSortedStreams)
{
    Dfg dfg("m");
    auto a = dfg.addInput();
    auto b = dfg.addInput();
    auto m = dfg.add(Op::Merge2, Operand::ref(a), Operand::ref(b));
    dfg.addOutput(m);

    auto out = evalDfg(
        dfg, {makeStream({fromInt(1), fromInt(4), fromInt(9)}),
              makeStream({fromInt(2), fromInt(3), fromInt(10)})});
    const auto vals = streamValues(out[0]);
    std::vector<std::int64_t> got;
    for (const Word w : vals)
        got.push_back(asInt(w));
    EXPECT_EQ(got, (std::vector<std::int64_t>{1, 2, 3, 4, 9, 10}));
    EXPECT_TRUE(out[0].back().streamEnd());
}

TEST(Interpreter, IsectCountPerSegment)
{
    Dfg dfg("i");
    auto a = dfg.addInput();
    auto b = dfg.addInput();
    auto c = dfg.add(Op::IsectCount, Operand::ref(a), Operand::ref(b));
    dfg.addOutput(c);

    std::vector<Token> sa = {
        {fromInt(1), 0}, {fromInt(3), kSegEnd},
        {fromInt(2), 0}, {fromInt(4), kSegEnd | kStreamEnd}};
    std::vector<Token> sb = {
        {fromInt(3), 0}, {fromInt(5), kSegEnd},
        {fromInt(2), 0}, {fromInt(4), kSegEnd | kStreamEnd}};
    auto out = evalDfg(dfg, {sa, sb});
    ASSERT_EQ(out[0].size(), 2u);
    EXPECT_EQ(asInt(out[0][0].value), 1);
    EXPECT_EQ(asInt(out[0][1].value), 2);
    EXPECT_TRUE(out[0][1].streamEnd());
}

// --- mapper ----------------------------------------------------------------

Dfg
makeChainDfg(unsigned computeNodes)
{
    Dfg dfg("chain");
    auto cur = dfg.addInput();
    for (unsigned i = 0; i < computeNodes; ++i)
        cur = dfg.add(Op::Add, Operand::ref(cur), Operand::immI(1));
    dfg.addOutput(cur);
    return dfg;
}

TEST(Mapper, PlacesEveryNodeOnDistinctTiles)
{
    Dfg dfg = makeChainDfg(10);
    Mapper mapper(FabricGeometry{6, 6, 2});
    const MappedDfg m = mapper.map(dfg);
    std::set<std::uint32_t> tiles(m.nodeTile.begin(), m.nodeTile.end());
    EXPECT_EQ(tiles.size(), dfg.numNodes());
    for (const auto t : m.nodeTile)
        EXPECT_LT(t, 36u);
}

TEST(Mapper, RoutesConnectProducerToConsumer)
{
    Dfg dfg = makeChainDfg(6);
    Mapper mapper(FabricGeometry{6, 6, 2});
    const MappedDfg m = mapper.map(dfg);
    for (const auto& r : m.routes) {
        ASSERT_GE(r.path.size(), 2u);
        EXPECT_EQ(r.path.front(), m.nodeTile[r.edge.src]);
        EXPECT_EQ(r.path.back(), m.nodeTile[r.edge.dst]);
        // Path steps are mesh-adjacent.
        for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
            const auto a = r.path[i], b = r.path[i + 1];
            const auto ax = a % 6, ay = a / 6;
            const auto bx = b % 6, by = b / 6;
            EXPECT_EQ(std::abs(int(ax) - int(bx)) +
                          std::abs(int(ay) - int(by)),
                      1);
        }
    }
}

TEST(Mapper, RespectsLinkCapacity)
{
    // High-fanout DFG on multiplicity-2 links: every directed link
    // carries at most 2 routes.
    Dfg dfg("fan");
    auto x = dfg.addInput();
    std::vector<std::uint32_t> adds;
    for (int i = 0; i < 6; ++i)
        adds.push_back(
            dfg.add(Op::Add, Operand::ref(x), Operand::immI(i)));
    auto acc = adds[0];
    for (int i = 1; i < 6; ++i)
        acc = dfg.add(Op::Add, Operand::ref(acc),
                      Operand::ref(adds[i]));
    dfg.addOutput(acc);

    Mapper mapper(FabricGeometry{6, 6, 2});
    const MappedDfg m = mapper.map(dfg);
    std::map<std::pair<std::uint32_t, std::uint32_t>, int> use;
    for (const auto& r : m.routes) {
        for (std::size_t i = 0; i + 1 < r.path.size(); ++i)
            ++use[{r.path[i], r.path[i + 1]}];
    }
    for (const auto& [link, n] : use)
        EXPECT_LE(n, 2) << link.first << "->" << link.second;
}

TEST(Mapper, FatalWhenDfgTooLarge)
{
    Dfg dfg = makeChainDfg(40);
    Mapper mapper(FabricGeometry{3, 3, 2});
    EXPECT_THROW(mapper.map(dfg), FatalError);
}

// --- fabric vs interpreter (property test) -------------------------------

/** Drive a mapped DFG on the fabric with the given inputs. */
std::vector<std::vector<Token>>
runOnFabric(const Dfg& dfg, const MappedDfg& m,
            const std::vector<std::vector<Token>>& inputs,
            Tick maxCycles = 100000)
{
    FabricConfig fc;
    Fabric fab("fab", fc);
    fab.configure(&m, 0);

    std::vector<std::size_t> pos(inputs.size(), 0);
    std::vector<std::vector<Token>> outputs(dfg.numOutputs());
    for (Tick now = 0; now < maxCycles; ++now) {
        for (std::size_t i = 0; i < inputs.size(); ++i) {
            while (pos[i] < inputs[i].size() &&
                   fab.inPort(static_cast<std::uint32_t>(i)).push(
                       inputs[i][pos[i]])) {
                ++pos[i];
            }
        }
        fab.tick(now);
        for (std::uint32_t o = 0; o < dfg.numOutputs(); ++o) {
            while (!fab.outPort(o).empty())
                outputs[o].push_back(fab.outPort(o).pop());
        }
        bool fed = true;
        for (std::size_t i = 0; i < inputs.size(); ++i)
            fed = fed && pos[i] == inputs[i].size();
        if (fed && fab.drained() && !fab.busy())
            break;
    }
    return outputs;
}

void
expectStreamsEqual(const std::vector<Token>& a,
                   const std::vector<Token>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].value, b[i].value) << "value @" << i;
        EXPECT_EQ(a[i].flags, b[i].flags) << "flags @" << i;
    }
}

TEST(Fabric, MatchesInterpreterOnScaleChain)
{
    Dfg dfg = makeChainDfg(5);
    Mapper mapper(FabricGeometry{6, 6, 2});
    const MappedDfg m = mapper.map(dfg);
    std::vector<Word> words;
    for (int i = 0; i < 50; ++i)
        words.push_back(fromInt(i * 7 - 20));
    const auto in = makeStream(words);
    expectStreamsEqual(runOnFabric(dfg, m, {in})[0],
                       evalDfg(dfg, {in})[0]);
}

/** Random-DFG property sweep: fabric == interpreter. */
class FabricRandomDfg : public ::testing::TestWithParam<int>
{};

TEST_P(FabricRandomDfg, MatchesInterpreter)
{
    Rng rng(1000 + GetParam());

    // Build a random elementwise DAG with 2 inputs, then a random
    // accumulator, mirroring realistic task bodies.
    Dfg dfg("rand");
    std::vector<std::uint32_t> pool;
    pool.push_back(dfg.addInput());
    pool.push_back(dfg.addInput());
    const Op elemOps[] = {Op::Add, Op::Sub, Op::Mul, Op::Min,
                          Op::Max, Op::And, Op::Or,  Op::Xor,
                          Op::CmpLt, Op::CmpEq};
    const int nOps = static_cast<int>(rng.uniformInt(2, 6));
    for (int i = 0; i < nOps; ++i) {
        const Op op = elemOps[rng.uniformInt(0, 9)];
        const auto a =
            pool[rng.uniformInt(0, static_cast<int>(pool.size()) - 1)];
        Operand bOp;
        if (rng.uniform01() < 0.3) {
            bOp = Operand::immI(rng.uniformInt(-5, 5));
        } else {
            bOp = Operand::ref(pool[rng.uniformInt(
                0, static_cast<int>(pool.size()) - 1)]);
        }
        pool.push_back(dfg.add(op, Operand::ref(a), bOp));
    }
    const Op accOps[] = {Op::AccAdd, Op::AccMax, Op::AccMin,
                         Op::AccCount};
    const auto acc = dfg.add(accOps[rng.uniformInt(0, 3)],
                             Operand::ref(pool.back()));
    dfg.addOutput(acc);
    dfg.addOutput(pool.back());
    dfg.validate();

    // Random graphs can have pathological fanout; give the sweep a
    // link-rich fabric (unroutable-at-capacity is itself tested in
    // Mapper.FatalWhenDfgTooLarge).
    Mapper mapper(FabricGeometry{6, 6, 3});
    const MappedDfg m = mapper.map(dfg);

    // Random segmented input streams (equal length, aligned flags).
    const int n = static_cast<int>(rng.uniformInt(8, 64));
    std::vector<Token> inA, inB;
    int segLeft = static_cast<int>(rng.uniformInt(1, 5));
    for (int i = 0; i < n; ++i) {
        std::uint8_t f = 0;
        if (--segLeft == 0) {
            f |= kSegEnd;
            segLeft = static_cast<int>(rng.uniformInt(1, 5));
        }
        if (i + 1 == n)
            f |= kSegEnd | kStreamEnd;
        inA.push_back(Token{fromInt(rng.uniformInt(-100, 100)), f});
        inB.push_back(Token{fromInt(rng.uniformInt(-100, 100)), f});
    }

    const auto want = evalDfg(dfg, {inA, inB});
    const auto got = runOnFabric(dfg, m, {inA, inB});
    for (std::uint32_t o = 0; o < dfg.numOutputs(); ++o)
        expectStreamsEqual(got[o], want[o]);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FabricRandomDfg,
                         ::testing::Range(0, 40));

/** Random sorted streams through Merge2 and IsectCount. */
class FabricStreamOps : public ::testing::TestWithParam<int>
{};

TEST_P(FabricStreamOps, MergeMatchesInterpreter)
{
    Rng rng(5000 + GetParam());
    auto sortedStream = [&](int n) {
        std::vector<Word> w;
        std::int64_t v = 0;
        for (int i = 0; i < n; ++i) {
            v += rng.uniformInt(0, 7);
            w.push_back(fromInt(v));
        }
        return makeStream(w);
    };

    Dfg dfg("m");
    auto a = dfg.addInput();
    auto b = dfg.addInput();
    dfg.addOutput(
        dfg.add(Op::Merge2, Operand::ref(a), Operand::ref(b)));

    Mapper mapper(FabricGeometry{6, 6, 2});
    const MappedDfg m = mapper.map(dfg);
    const auto inA = sortedStream(
        static_cast<int>(rng.uniformInt(1, 40)));
    const auto inB = sortedStream(
        static_cast<int>(rng.uniformInt(1, 40)));
    expectStreamsEqual(runOnFabric(dfg, m, {inA, inB})[0],
                       evalDfg(dfg, {inA, inB})[0]);
}

TEST_P(FabricStreamOps, IsectMatchesInterpreter)
{
    Rng rng(9000 + GetParam());
    const int segs = static_cast<int>(rng.uniformInt(1, 6));
    auto segmented = [&](int numSegs) {
        std::vector<Token> out;
        for (int s = 0; s < numSegs; ++s) {
            const int len = static_cast<int>(rng.uniformInt(1, 10));
            std::int64_t v = 0;
            for (int i = 0; i < len; ++i) {
                v += rng.uniformInt(1, 4);
                std::uint8_t f = 0;
                if (i + 1 == len)
                    f |= kSegEnd;
                if (i + 1 == len && s + 1 == numSegs)
                    f |= kStreamEnd;
                out.push_back(Token{fromInt(v), f});
            }
        }
        return out;
    };

    Dfg dfg("i");
    auto a = dfg.addInput();
    auto b = dfg.addInput();
    dfg.addOutput(
        dfg.add(Op::IsectCount, Operand::ref(a), Operand::ref(b)));

    Mapper mapper(FabricGeometry{6, 6, 2});
    const MappedDfg m = mapper.map(dfg);
    const auto inA = segmented(segs);
    const auto inB = segmented(segs);
    expectStreamsEqual(runOnFabric(dfg, m, {inA, inB})[0],
                       evalDfg(dfg, {inA, inB})[0]);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FabricStreamOps,
                         ::testing::Range(0, 30));

// --- fabric behaviours -----------------------------------------------------

TEST(Fabric, ReconfigurationCostsCycles)
{
    Dfg dfg = makeChainDfg(4);
    Mapper mapper(FabricGeometry{6, 6, 2});
    const MappedDfg m = mapper.map(dfg);

    FabricConfig fc;
    Fabric fab("fab", fc);
    fab.configure(&m, 100);
    EXPECT_FALSE(fab.ready(100));
    const Tick cost = fc.configBaseCycles +
                      fc.configPerNodeCycles * dfg.numNodes();
    EXPECT_FALSE(fab.ready(100 + cost - 1));
    EXPECT_TRUE(fab.ready(100 + cost));
    EXPECT_EQ(fab.reconfigs(), 1u);

    // Re-loading the same config is free.
    fab.configure(&m, 5000);
    EXPECT_TRUE(fab.ready(5000));
    EXPECT_EQ(fab.reconfigs(), 1u);
}

TEST(Fabric, BackpressureWhenOutputPortNotDrained)
{
    Dfg dfg = makeChainDfg(1);
    Mapper mapper(FabricGeometry{6, 6, 2});
    const MappedDfg m = mapper.map(dfg);
    FabricConfig fc;
    fc.portFifoDepth = 4;
    Fabric fab("fab", fc);
    fab.configure(&m, 0);

    // Never drain the output: input acceptance must stall.
    std::size_t accepted = 0;
    for (Tick now = 0; now < 300; ++now) {
        if (fab.inPort(0).push(Token{fromInt(1), 0}))
            ++accepted;
        fab.tick(now);
    }
    EXPECT_LT(accepted, 40u)
        << "tokens must not vanish into an undrained fabric";
    EXPECT_FALSE(fab.drained());
}

TEST(Fabric, ThroughputApproachesOneTokenPerCycle)
{
    // A clean elementwise pipeline should sustain II ~= 1.
    Dfg dfg = makeChainDfg(3);
    Mapper mapper(FabricGeometry{6, 6, 2});
    const MappedDfg m = mapper.map(dfg);
    FabricConfig fc;
    Fabric fab("fab", fc);
    fab.configure(&m, 0);

    const int n = 400;
    int fed = 0, got = 0;
    Tick lastOut = 0;
    for (Tick now = 0; now < 2000; ++now) {
        if (fed < n && fab.inPort(0).push(Token{
                           fromInt(fed),
                           fed + 1 == n ? std::uint8_t(kSegEnd |
                                                       kStreamEnd)
                                        : std::uint8_t(0)})) {
            ++fed;
        }
        fab.tick(now);
        while (!fab.outPort(0).empty()) {
            fab.outPort(0).pop();
            ++got;
            lastOut = now;
        }
        if (got == n)
            break;
    }
    ASSERT_EQ(got, n);
    EXPECT_LT(lastOut, static_cast<Tick>(n + 100))
        << "pipeline should sustain roughly one token per cycle";
}

} // namespace
} // namespace ts
