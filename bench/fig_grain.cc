/**
 * @file
 * Fig-4: sensitivity to task granularity.
 *
 * SpMV row-block size and msort leaf size are swept.  Expected shape:
 * very fine grains pay dispatch/reconfiguration overheads; very
 * coarse grains starve the balancer (fewer tasks than needed to even
 * out skew).  Delta's sweet spot is wider than the baseline's.
 */

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.hh"
#include "workloads/msort.hh"
#include "workloads/spmv.hh"

namespace
{

using namespace ts;
using namespace ts::bench;

const std::vector<std::uint64_t> kRowsPerTask = {4, 8, 16, 32, 64};
const std::vector<std::uint64_t> kLeafSizes = {256, 512, 1024, 2048};

std::map<std::uint64_t, std::pair<double, double>> gSpmv;
std::map<std::uint64_t, std::pair<double, double>> gMsort;

template <typename WL, typename P>
std::pair<double, double>
pairFor(const P& params)
{
    double cycles[2];
    for (const bool delta : {false, true}) {
        WL wl(params);
        Delta d(delta ? DeltaConfig::delta(8)
                      : DeltaConfig::staticBaseline(8));
        TaskGraph g;
        wl.build(d, g);
        const StatSet stats = d.run(g);
        if (!wl.check(d.image()))
            fatal("incorrect result in fig_grain");
        cycles[delta ? 1 : 0] = stats.get("delta.cycles");
    }
    return {cycles[0], cycles[1]};
}

void
runSpmv(benchmark::State& state, std::uint64_t rowsPerTask)
{
    SpmvParams p;
    p.rows = 512;
    p.cols = 1024;
    p.rowsPerTask = rowsPerTask;
    for (auto _ : state) {
        gSpmv[rowsPerTask] = pairFor<SpmvWorkload>(p);
        state.counters["speedup"] =
            gSpmv[rowsPerTask].first / gSpmv[rowsPerTask].second;
    }
}

void
runMsort(benchmark::State& state, std::uint64_t leaf)
{
    MsortParams p;
    p.n = 8192;
    p.leafSize = leaf;
    for (auto _ : state) {
        gMsort[leaf] = pairFor<MsortWorkload>(p);
        state.counters["speedup"] =
            gMsort[leaf].first / gMsort[leaf].second;
    }
}

void
printTable()
{
    std::puts("");
    std::puts("Fig-4  Task-granularity sensitivity (8 lanes)");
    rule();
    std::puts("spmv (512 rows): rows per task");
    std::printf("  %10s %14s %14s %9s\n", "rows/task", "static(cyc)",
                "delta(cyc)", "speedup");
    for (const auto g : kRowsPerTask) {
        const auto [st, dy] = gSpmv.at(g);
        std::printf("  %10llu %14.0f %14.0f %8.2fx\n",
                    static_cast<unsigned long long>(g), st, dy,
                    st / dy);
    }
    rule();
    std::puts("msort (8192 keys): leaf chunk size");
    std::printf("  %10s %14s %14s %9s\n", "leaf", "static(cyc)",
                "delta(cyc)", "speedup");
    for (const auto g : kLeafSizes) {
        const auto [st, dy] = gMsort.at(g);
        std::printf("  %10llu %14.0f %14.0f %8.2fx\n",
                    static_cast<unsigned long long>(g), st, dy,
                    st / dy);
    }
    rule();
    std::puts("expected shape: Delta tolerates a wider range of "
              "grain sizes than the static design");
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(&argc, argv);
    for (const auto g : kRowsPerTask) {
        benchmark::RegisterBenchmark(
            ("fig4/spmv/rpt:" + std::to_string(g)).c_str(),
            [g](benchmark::State& s) { runSpmv(s, g); })
            ->Iterations(1);
    }
    for (const auto g : kLeafSizes) {
        benchmark::RegisterBenchmark(
            ("fig4/msort/leaf:" + std::to_string(g)).c_str(),
            [g](benchmark::State& s) { runMsort(s, g); })
            ->Iterations(1);
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable();
    return 0;
}
