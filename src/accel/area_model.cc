#include "accel/area_model.hh"

namespace ts
{

namespace
{

// Generic 28nm-class area constants (documented substitution for RTL
// synthesis; only the ratios matter for the reproduction).
constexpr double kSramMm2PerKB = 0.0007;  ///< dense SRAM macro
constexpr double kRegMm2PerKB = 0.004;    ///< flop-based storage
constexpr double kFuMm2 = 0.0012;         ///< one 64-bit FU tile
constexpr double kSwitchMm2 = 0.0004;     ///< CGRA routing per tile
constexpr double kRouterMm2 = 0.008;      ///< mesh router
constexpr double kComparatorMm2 = 0.00005;

double
kb(double bits)
{
    return bits / 8.0 / 1024.0;
}

} // namespace

double
AreaReport::total() const
{
    double t = 0;
    for (const auto& e : entries)
        t += e.mm2;
    return t;
}

double
AreaReport::additions() const
{
    double t = 0;
    for (const auto& e : entries) {
        if (e.taskStreamAddition)
            t += e.mm2;
    }
    return t;
}

double
AreaReport::overheadPercent() const
{
    const double base = total() - additions();
    return base > 0 ? 100.0 * additions() / base : 0.0;
}

AreaReport
computeArea(const DeltaConfig& cfg)
{
    AreaReport r;
    const double lanes = cfg.lanes;
    const auto& geom = cfg.lane.fabric.geom;
    const double tiles = geom.numTiles();

    // --- the static-parallel baseline hardware -------------------------
    r.entries.push_back(
        {"fabric FUs (per-lane tiles)", lanes * tiles * kFuMm2, false});
    r.entries.push_back(
        {"fabric routing/switches",
         lanes * tiles * kSwitchMm2 * geom.linkMultiplicity, false});
    r.entries.push_back(
        {"scratchpads",
         lanes * kSramMm2PerKB *
             (cfg.lane.spm.sizeWords * wordBytes / 1024.0),
         false});
    r.entries.push_back(
        {"stream engines",
         lanes *
             (cfg.lane.numReadEngines + cfg.lane.numWriteEngines) *
             (kRegMm2PerKB * kb(3 * 24 * 80) + 4 * kComparatorMm2),
         false});
    r.entries.push_back(
        {"mesh routers", (lanes + 2) * kRouterMm2, false});

    // --- TaskStream additions ------------------------------------------
    // Lane task queues: laneQueueCap entries x ~64B descriptor refs.
    r.entries.push_back(
        {"lane task queues",
         lanes * kRegMm2PerKB * kb(cfg.laneQueueCap * 64 * 8), true});
    // Dispatcher: ready queue + per-lane work counters + group table.
    r.entries.push_back(
        {"dispatcher ready queue (64 x 64B)",
         kSramMm2PerKB * kb(64 * 64 * 8), true});
    r.entries.push_back(
        {"dispatcher work counters",
         kRegMm2PerKB * kb(lanes * 32) + lanes * kComparatorMm2, true});
    r.entries.push_back(
        {"shared-group table (16 x 32B)",
         kRegMm2PerKB * kb(16 * 32 * 8), true});
    // Pipe receive buffers: 4KB per lane (covers the worst measured
    // high-water mark in EXPERIMENTS.md with margin).
    r.entries.push_back(
        {"pipe receive buffers (4KB/lane)",
         lanes * kSramMm2PerKB * 4.0, true});
    // Work estimator: one multiply-accumulate per dispatcher.
    r.entries.push_back({"work estimator datapath", 2 * kFuMm2, true});

    return r;
}

} // namespace ts
