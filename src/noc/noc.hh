/**
 * @file
 * A 2D-mesh packet network with XY dimension-order routing,
 * credit-style back-pressure (bounded inter-router channels), link
 * serialization, and tree multicast.
 *
 * Topology: `width x height` routers, node id = y * width + x.  Each
 * router has one local injection port and one local ejection port.
 * Ejection channels are unbounded (ideal sinks) so that protocol
 * deadlock cannot originate in the network itself; occupancy is
 * tracked and reported.
 */

#ifndef TS_NOC_NOC_HH
#define TS_NOC_NOC_HH

#include <array>
#include <memory>
#include <vector>

#include "noc/packet.hh"
#include "sim/channel.hh"
#include "sim/simulator.hh"

namespace ts
{

/** Mesh parameters. */
struct NocConfig
{
    std::uint32_t width = 4;
    std::uint32_t height = 4;
    std::size_t channelCapacity = 4; ///< packets per inter-router link
    std::uint32_t linkWords = 2;     ///< words a link moves per cycle
};

/** The mesh network: owns its routers and channels. */
class Noc
{
  public:
    /**
     * @param nodeParts optional per-node partition ids (size
     *        numNodes()): router @c i and its inject/eject channels
     *        are declared in partition nodeParts[i], making every
     *        inter-router link of differently-partitioned nodes a
     *        boundary channel (credit back-pressure, shardable).
     *        Empty (default) keeps the whole mesh in the simulator's
     *        current registration partition — single-partition, as
     *        before.
     */
    Noc(Simulator& sim, const NocConfig& cfg,
        const std::vector<std::uint32_t>& nodeParts = {});
    ~Noc();

    Noc(const Noc&) = delete;
    Noc& operator=(const Noc&) = delete;

    /** Number of nodes in the mesh. */
    std::uint32_t numNodes() const { return cfg_.width * cfg_.height; }

    /**
     * Inject a packet at its source node.
     * @return false when the injection buffer is full (retry later).
     */
    bool inject(Packet pkt);

    /** The ejection channel of a node; consumers pop from it. */
    Channel<Packet>& eject(std::uint32_t node);

    /**
     * Traffic totals.  Forwarding-side counts (word-hops,
     * deliveries) accumulate per router and injection-side counts
     * per source node — each mutated only by its owning partition,
     * so shards never contend — and these accessors sum them.
     */
    /** Total word-hops traversed (traffic metric for Fig-5). */
    std::uint64_t wordHops() const;

    /** Total packets delivered to local ports. */
    std::uint64_t delivered() const;

    /** Total packets accepted by inject(). */
    std::uint64_t injected() const;

    /** Word-hops traversed by multicast (fanout > 1) packets. */
    std::uint64_t mcastWordHops() const;

    /** Word-hops the same multicast traffic would have cost as one
     *  unicast packet per destination (sum of Manhattan distances
     *  times payload size, accumulated at injection). */
    std::uint64_t mcastUnicastEquivWordHops() const;

    /** Multicast packets injected / local deliveries they produced. */
    std::uint64_t mcastPackets() const;
    std::uint64_t mcastDeliveries() const;

    /** Report traffic statistics. */
    void reportStats(StatSet& stats) const;

    /** Manhattan distance between two nodes (for tests). */
    std::uint32_t hopDistance(std::uint32_t a, std::uint32_t b) const;

    /**
     * The mesh's accumulated injection-side traffic counters
     * (snapshot/fork support), per source node.  Routers and
     * channels are Simulator-registered and snapshot through it —
     * including the per-router forwarding counters — so the Noc
     * itself only owns these.
     */
    struct Counters
    {
        std::vector<std::uint64_t> injected;
        std::vector<std::uint64_t> mcastPackets;
        std::vector<std::uint64_t> mcastUnicastEquivWordHops;
    };

    /** Copy out / restore the traffic counters. */
    Counters counters() const;
    void restoreCounters(const Counters& c);

    /**
     * Packets currently buffered in the network: visible occupancy
     * of every injection and inter-router link channel (timeline
     * probe).  Ejection channels are excluded — a packet parked
     * there has been delivered.  Counting occupancy directly stays
     * correct under multicast, where one injected packet produces
     * several deliveries.
     */
    std::size_t packetsInFlight() const;

  private:
    friend class NocRouter;

    Simulator& sim_;
    NocConfig cfg_;
    std::vector<std::unique_ptr<class NocRouter>> routers_;
    std::vector<Channel<Packet>*> injectCh_;
    std::vector<Channel<Packet>*> ejectCh_;
    std::vector<Channel<Packet>*> linkCh_;

    /** Injection-side counters, indexed by source node: inject() is
     *  called from the source node's partition, so each slot has a
     *  single writing shard. */
    std::vector<std::uint64_t> injected_;
    std::vector<std::uint64_t> mcastPackets_;
    std::vector<std::uint64_t> mcastUnicastEquivWordHops_;
};

} // namespace ts

#endif // TS_NOC_NOC_HH
