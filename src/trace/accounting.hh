/**
 * @file
 * Top-down cycle accounting: every lane cycle is attributed to
 * exactly one bucket, so per-lane buckets always sum to total cycles
 * and "where did the time go" has a first-order answer.
 *
 * The classification is hierarchical (top-down): a cycle with a task
 * in flight is *busy* only if execution is not blocked; blocked
 * cycles are attributed to the dominant blocker — outstanding memory
 * (DRAM fills, multicast landing waits, write-line back-pressure)
 * before network (pipe-chunk back-pressure, upstream pipe starvation,
 * outgoing control messages) — and lanes with no task at all are
 * *idle*.
 */

#ifndef TS_TRACE_ACCOUNTING_HH
#define TS_TRACE_ACCOUNTING_HH

#include <array>
#include <cstdint>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace ts
{

/** Exclusive per-cycle lane states, in attribution priority order. */
enum class CycleClass : std::uint8_t
{
    Busy,    ///< executing: fabric/engines making forward progress
    MemWait, ///< blocked on memory (fills, fetches, write drains)
    NocWait, ///< blocked on the network (pipes, message injection)
    Idle,    ///< no task queued or in flight
};

constexpr std::size_t kNumCycleClasses = 4;

/** Short stat-key name of a cycle class. */
inline const char*
cycleClassName(CycleClass c)
{
    switch (c) {
      case CycleClass::Busy: return "busy";
      case CycleClass::MemWait: return "memWait";
      case CycleClass::NocWait: return "nocWait";
      case CycleClass::Idle: return "idle";
    }
    return "?";
}

/** Per-lane cycle buckets; one counter per CycleClass. */
struct CycleBuckets
{
    std::array<std::uint64_t, kNumCycleClasses> counts{};

    void
    account(CycleClass c)
    {
        ++counts[static_cast<std::size_t>(c)];
    }

    /** Attribute @p n cycles at once (slept-gap catch-up). */
    void
    account(CycleClass c, std::uint64_t n)
    {
        counts[static_cast<std::size_t>(c)] += n;
    }

    std::uint64_t
    of(CycleClass c) const
    {
        return counts[static_cast<std::size_t>(c)];
    }

    std::uint64_t
    total() const
    {
        std::uint64_t t = 0;
        for (const std::uint64_t c : counts)
            t += c;
        return t;
    }

    /** Report one stat per bucket under `<prefix>.cycles.<class>`. */
    void
    report(StatSet& stats, const std::string& prefix) const
    {
        for (std::size_t i = 0; i < kNumCycleClasses; ++i) {
            stats.set(prefix + ".cycles." +
                          cycleClassName(static_cast<CycleClass>(i)),
                      static_cast<double>(counts[i]));
        }
    }
};

} // namespace ts

#endif // TS_TRACE_ACCOUNTING_HH
