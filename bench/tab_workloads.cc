/**
 * @file
 * Tab-2: workload characterization — task counts, dependence-edge
 * kinds, shared groups, and the distribution of per-task work
 * (mean and coefficient of variation), computed from the built task
 * graphs without simulating.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <map>

#include "bench_util.hh"

namespace
{

using namespace ts;
using namespace ts::bench;

struct Row
{
    std::size_t tasks = 0;
    std::size_t barriers = 0;
    std::size_t pipelines = 0;
    std::size_t groups = 0;
    double meanWork = 0;
    double cvWork = 0;
};

std::map<Wk, Row> gRows;

Row
characterize(Wk w)
{
    const SuiteParams sp = suiteParams();
    auto wl = makeWorkload(w, sp);
    Delta delta(DeltaConfig::delta(8));
    TaskGraph g;
    wl->build(delta, g);

    Row r;
    r.tasks = g.numTasks();
    for (const DepEdge& e : g.edges()) {
        if (e.kind == DepKind::Barrier)
            ++r.barriers;
        else
            ++r.pipelines;
    }
    r.groups = g.groups().size();

    double sum = 0, sum2 = 0;
    for (const TaskInstance& t : g.tasks()) {
        const double wk =
            delta.registry().estimateWork(delta.image(), t);
        sum += wk;
        sum2 += wk * wk;
    }
    r.meanWork = sum / static_cast<double>(r.tasks);
    const double var =
        sum2 / static_cast<double>(r.tasks) - r.meanWork * r.meanWork;
    r.cvWork = r.meanWork > 0
                   ? std::sqrt(std::max(0.0, var)) / r.meanWork
                   : 0;
    return r;
}

void
runAll(benchmark::State& state)
{
    for (auto _ : state) {
        for (const Wk w : suiteWorkloads())
            gRows[w] = characterize(w);
        state.counters["workloads"] =
            static_cast<double>(gRows.size());
    }
}

void
printTable()
{
    std::puts("");
    std::puts("Tab-2  Workload characterization (default scale)");
    rule(78);
    std::printf("%-10s %7s %9s %9s %7s %11s %7s\n", "workload",
                "tasks", "barriers", "pipelines", "groups",
                "mean work", "CV");
    rule(78);
    for (const Wk w : suiteWorkloads()) {
        if (gRows.count(w) == 0)
            continue;
        const Row& r = gRows.at(w);
        std::printf("%-10s %7zu %9zu %9zu %7zu %11.0f %7.2f\n",
                    wkName(w), r.tasks, r.barriers, r.pipelines,
                    r.groups, r.meanWork, r.cvWork);
    }
    rule(78);
    std::puts("CV = per-task work variation; the workloads with high "
              "CV are the ones where work-aware balancing pays off");
}

} // namespace

int
main(int argc, char** argv)
{
    benchmark::RegisterBenchmark("tab2/characterize", runAll)
        ->Iterations(1);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable();
    return 0;
}
