/**
 * @file
 * Receive-side buffers for pipelined inter-task dependences.
 *
 * Each recovered Pipeline dependence gets a pipe id; chunks forwarded
 * by the producer lane land here and the consumer's read engine pops
 * them in order.  Buffers are functionally unbounded; the high-water
 * mark is tracked and reported so experiments can confirm a small
 * hardware buffer would have sufficed (see DESIGN.md substitutions).
 */

#ifndef TS_STREAM_PIPE_SET_HH
#define TS_STREAM_PIPE_SET_HH

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "cgra/token.hh"
#include "sim/stats.hh"

namespace ts
{

/** Per-lane collection of pipe receive buffers. */
class PipeSet
{
  public:
    /** Land a forwarded chunk (called by the lane NoC adapter). */
    void deliver(std::uint64_t pipeId, const std::vector<Token>& toks);

    /** Whether a token is available on the pipe. */
    bool hasData(std::uint64_t pipeId) const;

    /** Pop the next token (panics if none). */
    Token pop(std::uint64_t pipeId);

    /** Drop a pipe's buffer after its consumer task completes. */
    void release(std::uint64_t pipeId);

    /** Tokens currently buffered across all pipes. */
    std::size_t totalBuffered() const;

    /** Report occupancy statistics under @p prefix. */
    void reportStats(StatSet& stats, const std::string& prefix) const;

  private:
    struct Pipe
    {
        std::deque<Token> q;
        std::size_t maxOcc = 0;
        std::uint64_t received = 0;
    };

    std::map<std::uint64_t, Pipe> pipes_;
    std::size_t globalMaxOcc_ = 0;
    std::uint64_t totalReceived_ = 0;
};

} // namespace ts

#endif // TS_STREAM_PIPE_SET_HH
