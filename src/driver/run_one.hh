/**
 * @file
 * runOne: the one way to assemble and execute a single simulated run.
 *
 * Every binary that is not a sweep — the figure benches, the
 * examples, one-shot tools — used to repeat the same glue: make a
 * workload, build a Delta with the options applied, emit the graph,
 * run, check, and hand-write a bench-JSON wrapper.  That glue lives
 * here once.  The sweep engine (sweep.hh) remains separate: it adds
 * caching, snapshot forking, and deterministic grid aggregation on
 * top of the same underlying steps.
 *
 * Three entry points, most-derived first:
 *   runOne(opt, spec)       custom build/check callbacks (examples
 *                           with hand-rolled graphs)
 *   runOne(opt, wl, cfg)    a constructed Workload instance
 *   runOne(opt, w, cfg)     a suite workload by id, scaled by
 *                           opt.suiteParams()
 *
 * All of them inject the options' outputs (trace, stats-json,
 * bench-json, shards, ...) via RunOptions::applyTo, and write the
 * bench-JSON wrapper to opt.benchJsonDir when set — callers never
 * touch StatSet serialization themselves.
 */

#ifndef TS_DRIVER_RUN_ONE_HH
#define TS_DRIVER_RUN_ONE_HH

#include <functional>
#include <string>

#include "driver/options.hh"

namespace ts
{
namespace driver
{

/** Outcome of one simulated run. */
struct RunResult
{
    double cycles = 0;   ///< delta.cycles
    bool correct = false; ///< check passed (true when there is none)
    StatSet stats;        ///< the run's full statistics dump
};

/** A fully custom run: the accelerator config plus callbacks. */
struct RunSpec
{
    DeltaConfig cfg;

    /** Lay out data, register task types, emit the graph. */
    std::function<void(Delta&, TaskGraph&)> build;

    /** Verify results after the run (empty = always correct). */
    std::function<bool(Delta&)> check;

    /** Stem of the bench-JSON wrapper file (defaults to "run"). */
    std::string tag;

    /** The wrapper's "workload" field (defaults to tag). */
    std::string name;
};

/** Assemble and execute one run described by @p spec. */
RunResult runOne(const RunOptions& opt, const RunSpec& spec);

/** Run a constructed workload instance under @p cfg. */
RunResult runOne(const RunOptions& opt, Workload& wl, DeltaConfig cfg);

/** Run suite workload @p w under @p cfg, scaled and seeded by
 *  opt.suiteParams(). */
RunResult runOne(const RunOptions& opt, Wk w, DeltaConfig cfg);

} // namespace driver
} // namespace ts

#endif // TS_DRIVER_RUN_ONE_HH
