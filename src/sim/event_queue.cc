#include "sim/event_queue.hh"

#include "obs/flight_recorder.hh"
#include "sim/logging.hh"
#include "sim/simulator.hh"

namespace ts
{

void
EventQueue::schedule(Tick when, Callback cb, Ticked* owner)
{
    heap_.push(Entry{when, nextSeq_++, std::move(cb), owner});
}

void
EventQueue::scheduleWeak(Tick when, Callback cb)
{
    weakHeap_.push(Entry{when, nextSeq_++, std::move(cb), nullptr});
}

void
EventQueue::fireUpTo(Tick now)
{
    while (!heap_.empty() && heap_.top().when <= now) {
        // Move out before pop so the callback may schedule new events.
        Callback cb = std::move(const_cast<Entry&>(heap_.top()).cb);
        Ticked* owner = heap_.top().owner;
        heap_.pop();
        if (recorder_ != nullptr)
            recorder_->record(now, obs::FlightRecorder::Kind::Event,
                              owner != nullptr ? &owner->name()
                                               : nullptr);
        cb();
        if (owner != nullptr)
            owner->requestWake();
    }
    // Weak observers fire after all strong events of the tick, so
    // they sample post-event state deterministically.
    while (!weakHeap_.empty() && weakHeap_.top().when <= now) {
        Callback cb =
            std::move(const_cast<Entry&>(weakHeap_.top()).cb);
        weakHeap_.pop();
        cb();
    }
}

Tick
EventQueue::nextTick() const
{
    TS_ASSERT(!heap_.empty(), "nextTick on empty event queue");
    return heap_.top().when;
}

Tick
EventQueue::nextWeakTick() const
{
    TS_ASSERT(!weakHeap_.empty(),
              "nextWeakTick on empty weak event queue");
    return weakHeap_.top().when;
}

void
EventQueue::clearWeak()
{
    while (!weakHeap_.empty())
        weakHeap_.pop();
}

} // namespace ts
