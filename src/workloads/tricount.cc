#include "workloads/tricount.hh"

#include <algorithm>
#include <map>
#include <set>

namespace ts
{

void
TricountWorkload::build(Delta& delta, TaskGraph& graph)
{
    MemImage& img = delta.image();
    Rng rng(p_.seed);
    const std::uint64_t n = p_.vertices;

    // --- skewed undirected graph ----------------------------------------
    std::set<std::pair<std::uint64_t, std::uint64_t>> edges;
    const std::uint64_t target = n * p_.avgDegree / 2;
    while (edges.size() < target) {
        std::uint64_t a, bV;
        if (rng.uniform01() < p_.hubBias)
            a = static_cast<std::uint64_t>(
                rng.uniformInt(0,
                               static_cast<std::int64_t>(p_.hubCount) -
                                   1));
        else
            a = static_cast<std::uint64_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(n) - 1));
        bV = static_cast<std::uint64_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(n) - 1));
        if (a == bV)
            continue;
        edges.insert({std::min(a, bV), std::max(a, bV)});
    }

    // Oriented adjacency N+(u) = {v > u : (u,v) in E}, sorted.
    std::vector<std::vector<std::uint64_t>> adjP(n);
    for (const auto& [u, v] : edges)
        adjP[u].push_back(v);
    for (auto& lst : adjP)
        std::sort(lst.begin(), lst.end());

    // --- golden -----------------------------------------------------------
    expected_ = 0;
    for (std::uint64_t u = 0; u < n; ++u) {
        for (const std::uint64_t v : adjP[u]) {
            std::size_t i = 0, j = 0;
            while (i < adjP[u].size() && j < adjP[v].size()) {
                if (adjP[u][i] == adjP[v][j]) {
                    ++expected_;
                    ++i;
                    ++j;
                } else if (adjP[u][i] < adjP[v][j]) {
                    ++i;
                } else {
                    ++j;
                }
            }
        }
    }

    // --- CSR layout --------------------------------------------------------
    std::uint64_t m = 0;
    for (const auto& lst : adjP)
        m += lst.size();
    const Addr ptr = img.allocWords(n + 1);
    const Addr adj = img.allocWords(m);
    std::uint64_t off = 0;
    for (std::uint64_t u = 0; u < n; ++u) {
        img.writeInt(ptr + u * wordBytes,
                     static_cast<std::int64_t>(off));
        for (const std::uint64_t v : adjP[u]) {
            img.writeInt(adj + off * wordBytes,
                         static_cast<std::int64_t>(v));
            ++off;
        }
    }
    img.writeInt(ptr + n * wordBytes, static_cast<std::int64_t>(off));

    // --- task type ----------------------------------------------------------
    auto dfg = std::make_unique<Dfg>("tricount");
    const auto aIn = dfg->addInput();
    const auto bIn = dfg->addInput();
    const auto cnt =
        dfg->add(Op::IsectCount, Operand::ref(aIn), Operand::ref(bIn));
    dfg->addOutput(cnt);
    const TaskTypeId isectTy =
        delta.registry().addDfgType("tricount", std::move(dfg));

    auto red = std::make_unique<Dfg>("tri_reduce");
    const auto cIn = red->addInput();
    const auto sum = red->add(Op::AccAdd, Operand::ref(cIn));
    red->addOutput(sum);
    const TaskTypeId reduceTy =
        delta.registry().addDfgType("tri_reduce", std::move(red));

    // --- tasks -----------------------------------------------------------
    // Per-u blocks over *filtered* neighbor lists (only v with
    // non-empty N+(v) can be intersected; empty ones contribute 0).
    std::vector<TaskId> tasks;
    std::uint64_t countsTotal = 0;
    struct PendingTask
    {
        std::uint64_t u;
        std::vector<std::uint64_t> vs;
    };
    std::vector<PendingTask> pending;
    for (std::uint64_t u = 0; u < n; ++u) {
        if (adjP[u].empty())
            continue;
        std::vector<std::uint64_t> filtered;
        for (const std::uint64_t v : adjP[u]) {
            if (!adjP[v].empty())
                filtered.push_back(v);
        }
        for (std::uint64_t b0 = 0; b0 < filtered.size();
             b0 += p_.blockSize) {
            PendingTask t;
            t.u = u;
            t.vs.assign(filtered.begin() + b0,
                        filtered.begin() +
                            std::min<std::size_t>(b0 + p_.blockSize,
                                                  filtered.size()));
            countsTotal += t.vs.size();
            pending.push_back(std::move(t));
        }
    }
    TS_ASSERT(countsTotal > 0, "degenerate tricount instance");

    // Materialize per-task id lists and the counts array.
    const Addr counts = img.allocWords(countsTotal);
    totalAddr_ = img.allocWords(1);

    // Shared groups for hub adjacency lists read by several tasks.
    std::map<std::uint64_t, std::uint32_t> groupOf;
    std::map<std::uint64_t, std::uint64_t> tasksOf;
    for (const auto& t : pending)
        ++tasksOf[t.u];
    for (const auto& [u, cntTasks] : tasksOf) {
        if (cntTasks >= 2) {
            const auto lo = static_cast<std::uint64_t>(
                img.readInt(ptr + u * wordBytes));
            groupOf[u] = graph.addSharedGroup(adj + lo * wordBytes,
                                              adjP[u].size());
        }
    }

    std::uint64_t countCursor = 0;
    for (const auto& t : pending) {
        const Addr list = img.allocWords(t.vs.size());
        for (std::size_t i = 0; i < t.vs.size(); ++i) {
            img.writeInt(list + i * wordBytes,
                         static_cast<std::int64_t>(t.vs[i]));
        }
        const auto lo = static_cast<std::uint64_t>(
            img.readInt(ptr + t.u * wordBytes));

        StreamDesc a = StreamDesc::linear(
            Space::Dram, adj + lo * wordBytes, adjP[t.u].size());
        a.loops = t.vs.size();
        StreamDesc bStream = StreamDesc::csrIndirectSeg(
            Space::Dram, list, t.vs.size(), ptr, Space::Dram, adj);

        WriteDesc out;
        out.base = counts + countCursor * wordBytes;
        const TaskId id = graph.addTask(isectTy, {a, bStream}, {out});
        if (groupOf.count(t.u))
            graph.setSharedInput(id, 0, groupOf[t.u]);
        tasks.push_back(id);
        countCursor += t.vs.size();
    }

    WriteDesc totalOut;
    totalOut.base = totalAddr_;
    const TaskId red2 = graph.addTask(
        reduceTy, {StreamDesc::linear(Space::Dram, counts, countsTotal)},
        {totalOut});
    for (const TaskId id : tasks)
        graph.addBarrier(id, red2);
}

bool
TricountWorkload::check(const MemImage& img) const
{
    const std::int64_t got = img.readInt(totalAddr_);
    if (got != expected_) {
        warn("tricount mismatch: got ", got, " want ", expected_);
        return false;
    }
    return true;
}

} // namespace ts
