#include "accel/mem_node.hh"

#include "sim/logging.hh"

namespace ts
{

MemNode::MemNode(Simulator& sim, Noc& noc, std::uint32_t selfNode,
                 const MainMemoryConfig& cfg)
    : Ticked("memnode"), noc_(noc), selfNode_(selfNode)
{
    reqCh_ = &sim.makeChannel<MemReq>("memnode.req", cfg.queueCapacity);
    respCh_ = &sim.makeChannel<MemResp>("memnode.resp", 16);
    mem_ = std::make_unique<MainMemory>(sim, cfg, *reqCh_, *respCh_);
    sim.add(this);
    sim.add(mem_.get());

    // Sleep between bursts; woken by NoC arrivals and DRAM responses.
    noc_.eject(selfNode_).addObserver(this);
    respCh_->addObserver(this);
}

void
MemNode::tick(Tick)
{
    // Arrivals -> DRAM request channel.
    auto& inbox = noc_.eject(selfNode_);
    while (!inbox.empty() && reqCh_->canPush()) {
        Packet pkt = inbox.pop();
        TS_ASSERT(pkt.kind == PktKind::MemReq,
                  "memnode received non-memory packet");
        const bool ok =
            reqCh_->push(std::any_cast<MemReq>(pkt.payload));
        TS_ASSERT(ok);
    }

    // Serviced lines -> response packets.
    while (!respCh_->empty()) {
        const MemResp& resp = respCh_->front();
        Packet pkt;
        pkt.src = selfNode_;
        pkt.dstMask = resp.multicastMask != 0
                          ? resp.multicastMask
                          : Packet::unicast(resp.srcNode);
        pkt.kind = PktKind::MemResp;
        pkt.sizeWords = lineWords;
        pkt.payload = resp;
        if (!noc_.inject(std::move(pkt)))
            break;
        respCh_->pop();
    }

    // A backlog on either side (full request channel, failed inject)
    // keeps us ticking; otherwise wait for the next channel commit.
    if (inbox.empty() && respCh_->empty())
        sleepOnWake();
}

bool
MemNode::busy() const
{
    return false; // channels and MainMemory carry all pending state
}

void
MemNode::reportStats(StatSet& stats) const
{
    mem_->reportStats(stats);
}

} // namespace ts
