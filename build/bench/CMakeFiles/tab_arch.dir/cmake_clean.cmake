file(REMOVE_RECURSE
  "CMakeFiles/tab_arch.dir/tab_arch.cc.o"
  "CMakeFiles/tab_arch.dir/tab_arch.cc.o.d"
  "tab_arch"
  "tab_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
