/**
 * @file
 * Sweep-service tests: an in-process daemon on a std::thread serving
 * a temp-path Unix socket, exercised through the public client
 * calls — ping, a small sweep request with streamed cell events, a
 * daemon-written report that matches a direct Sweep byte-for-byte,
 * error events for malformed requests (which must not kill the
 * daemon), and shutdown.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/json.hh"
#include "driver/grid.hh"
#include "service/sweep_service.hh"

using namespace ts;

namespace fs = std::filesystem;

namespace
{

/** A daemon on a unique socket path, joined (via shutdown) on
 *  destruction. */
struct TestDaemon
{
    std::string sock;
    std::thread thread;

    explicit TestDaemon(const std::string& tag)
        : sock((fs::temp_directory_path() /
                ("ts_svc_" + tag + "_" + std::to_string(::getpid())))
                   .string())
    {
        fs::remove(sock);
        thread = std::thread([this] {
            service::ServeConfig cfg;
            cfg.socketPath = sock;
            service::serve(cfg);
        });
    }

    ~TestDaemon()
    {
        if (thread.joinable()) {
            service::shutdown(sock);
            thread.join();
        }
        fs::remove(sock);
    }
};

/** Parse every reply line the client echoed. */
std::vector<analysis::Json>
parseEvents(const std::string& replies)
{
    std::vector<analysis::Json> events;
    std::istringstream is(replies);
    std::string line;
    while (std::getline(is, line)) {
        analysis::Json ev;
        EXPECT_TRUE(analysis::parseJson(line, ev))
            << "every reply line must be valid JSON: " << line;
        events.push_back(std::move(ev));
    }
    return events;
}

const analysis::Json*
findEvent(const std::vector<analysis::Json>& events,
          const std::string& kind)
{
    for (const analysis::Json& ev : events)
        if (ev.isObj() && ev.has("event") &&
            ev.at("event").str == kind)
            return &ev;
    return nullptr;
}

} // namespace

TEST(SweepServiceTest, PingAnswersOk)
{
    TestDaemon daemon("ping");
    EXPECT_TRUE(service::ping(daemon.sock));
    // A second connection works: the daemon outlives its clients.
    EXPECT_TRUE(service::ping(daemon.sock));
}

TEST(SweepServiceTest, SweepRequestStreamsCellsAndDone)
{
    TestDaemon daemon("sweep");
    std::ostringstream replies;
    const int rc = service::requestSweep(
        daemon.sock,
        "{\"op\": \"sweep\", \"grid\": {\"workloads\": \"spmv\", "
        "\"configs\": \"static,delta\", \"seeds\": \"3\", "
        "\"scales\": \"0.25\"}}",
        replies);
    EXPECT_EQ(rc, 0);

    const auto events = parseEvents(replies.str());
    const analysis::Json* start = findEvent(events, "start");
    ASSERT_NE(start, nullptr);
    EXPECT_EQ(start->at("runs").num, 2.0);

    std::size_t cells = 0;
    for (const analysis::Json& ev : events)
        if (ev.has("event") && ev.at("event").str == "cell") {
            ++cells;
            EXPECT_TRUE(ev.at("ok").b);
            EXPECT_EQ(ev.at("source").str, "run");
            EXPECT_GT(ev.at("cycles").num, 0.0);
        }
    EXPECT_EQ(cells, 2u);

    const analysis::Json* done = findEvent(events, "done");
    ASSERT_NE(done, nullptr);
    EXPECT_TRUE(done->at("ok").b);
    EXPECT_EQ(done->at("failures").num, 0.0);
}

TEST(SweepServiceTest, DaemonReportMatchesDirectSweep)
{
    const fs::path out =
        fs::temp_directory_path() /
        ("ts_svc_report_" + std::to_string(::getpid()) + ".json");
    fs::remove(out);

    {
        TestDaemon daemon("report");
        std::ostringstream replies;
        const int rc = service::requestSweep(
            daemon.sock,
            "{\"op\": \"sweep\", \"grid\": {\"workloads\": \"spmv\", "
            "\"configs\": \"static,delta\", \"seeds\": \"3,5\", "
            "\"scales\": \"0.25\", \"baseline\": \"static\", "
            "\"out\": \"" + out.string() + "\"}}",
            replies);
        ASSERT_EQ(rc, 0);
    }

    std::ifstream in(out, std::ios::binary);
    ASSERT_TRUE(in.good()) << "daemon should have written the report";
    std::ostringstream daemonReport;
    daemonReport << in.rdbuf();
    fs::remove(out);

    // The same grid through the same vocabulary, run directly.
    driver::RunOptions opt;
    driver::GridSettings grid;
    driver::applyGridKey("workloads", "spmv", opt, grid);
    driver::applyGridKey("configs", "static,delta", opt, grid);
    driver::applyGridKey("seeds", "3,5", opt, grid);
    driver::applyGridKey("scales", "0.25", opt, grid);
    driver::applyGridKey("baseline", "static", opt, grid);
    driver::Sweep sweep(driver::buildSweepSpec(opt, grid));
    std::ostringstream direct;
    sweep.run().writeJson(direct);

    EXPECT_EQ(daemonReport.str(), direct.str())
        << "a daemon-served sweep must aggregate byte-identically "
           "to a direct one";
}

TEST(SweepServiceTest, MalformedRequestsYieldErrorEventsNotDeath)
{
    TestDaemon daemon("errors");

    std::ostringstream r1;
    EXPECT_EQ(service::requestSweep(daemon.sock, "not json", r1), 2);
    const auto ev1 = parseEvents(r1.str());
    EXPECT_NE(findEvent(ev1, "error"), nullptr);

    std::ostringstream r2;
    EXPECT_EQ(service::requestSweep(
                  daemon.sock,
                  "{\"op\": \"sweep\", \"grid\": "
                  "{\"no-such-key\": \"1\"}}",
                  r2),
              2);
    const auto ev2 = parseEvents(r2.str());
    const analysis::Json* err = findEvent(ev2, "error");
    ASSERT_NE(err, nullptr);
    EXPECT_NE(err->at("message").str.find("no-such-key"),
              std::string::npos)
        << "the error should name the offending key";

    std::ostringstream r3;
    EXPECT_EQ(service::requestSweep(daemon.sock,
                                    "{\"op\": \"frobnicate\"}", r3),
              2);

    // The daemon survived all of the above.
    EXPECT_TRUE(service::ping(daemon.sock));
}

TEST(SweepServiceTest, StatusReportsIdleDaemonShape)
{
    TestDaemon daemon("status");

    const std::string line = service::status(daemon.sock);
    analysis::Json reply;
    ASSERT_TRUE(analysis::parseJson(line, reply)) << line;
    ASSERT_TRUE(reply.at("ok").b);

    const analysis::Json& st = reply.at("status");
    EXPECT_GE(st.at("uptimeSec").num, 0.0);
    EXPECT_FALSE(st.at("sweeping").b);
    EXPECT_GE(st.at("served").num, 1.0)
        << "the status request itself counts as served";
    EXPECT_EQ(st.at("runs").num, 0.0);
    EXPECT_EQ(st.at("done").num, 0.0);
    EXPECT_EQ(st.at("inflight").num, 0.0);
    ASSERT_TRUE(st.at("workers").isArr());
    EXPECT_TRUE(st.at("workers").arr.empty())
        << "no worker is on a cell while idle";
}

TEST(SweepServiceTest, StatusReconcilesAfterASweep)
{
    TestDaemon daemon("status_sweep");

    std::ostringstream replies;
    ASSERT_EQ(service::requestSweep(
                  daemon.sock,
                  "{\"op\": \"sweep\", \"grid\": "
                  "{\"workloads\": \"spmv\", "
                  "\"configs\": \"static,delta\", \"seeds\": \"3\", "
                  "\"scales\": \"0.25\"}}",
                  replies),
              0);

    analysis::Json reply;
    ASSERT_TRUE(
        analysis::parseJson(service::status(daemon.sock), reply));
    const analysis::Json& st = reply.at("status");
    EXPECT_FALSE(st.at("sweeping").b);
    EXPECT_EQ(st.at("runs").num, 2.0)
        << "the last sweep's grid size must be visible after it ends";
    EXPECT_EQ(st.at("done").num, st.at("runs").num)
        << "a finished sweep must show every cell retired";
    EXPECT_EQ(st.at("inflight").num, 0.0);
    EXPECT_TRUE(st.at("workers").arr.empty());
}

TEST(SweepServiceTest, MetricsSpeakPrometheusExposition)
{
    TestDaemon daemon("metrics");

    const std::string text = service::metrics(daemon.sock);

    // Every ts_sweep_* family appears with HELP and TYPE comments
    // followed by a sample line.
    for (const char* family :
         {"ts_sweep_uptime_seconds", "ts_sweep_requests_total",
          "ts_sweep_active", "ts_sweep_runs_total",
          "ts_sweep_runs_done", "ts_sweep_runs_inflight",
          "ts_sweep_cache_hits_total", "ts_sweep_cache_misses_total",
          "ts_sweep_eta_seconds"}) {
        EXPECT_NE(text.find(std::string("# HELP ") + family),
                  std::string::npos)
            << family << " missing HELP in:\n"
            << text;
        EXPECT_NE(text.find(std::string("# TYPE ") + family),
                  std::string::npos)
            << family << " missing TYPE in:\n"
            << text;
        EXPECT_NE(text.find(std::string("\n") + family + " "),
                  std::string::npos)
            << family << " missing sample line in:\n"
            << text;
    }
    EXPECT_NE(text.find("ts_sweep_active 0"), std::string::npos)
        << "an idle daemon exports ts_sweep_active 0:\n"
        << text;
}

TEST(SweepServiceTest, ShutdownStopsTheDaemon)
{
    auto daemon = std::make_unique<TestDaemon>("shutdown");
    const std::string sock = daemon->sock;
    EXPECT_TRUE(service::ping(sock));
    daemon.reset(); // shuts down and joins
    EXPECT_FALSE(fs::exists(sock))
        << "serve() should unlink its socket on exit";
}
