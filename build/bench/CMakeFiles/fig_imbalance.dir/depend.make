# Empty dependencies file for fig_imbalance.
# This may be replaced when dependencies are built.
