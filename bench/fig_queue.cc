/**
 * @file
 * Fig-7: sensitivity to per-lane task-queue depth.
 *
 * Queue entries are the hardware cost of decoupling dispatch from
 * execution.  Expected shape: one entry serializes dispatch with
 * execution; a few entries recover nearly all performance (knee
 * around 2-4), justifying the small queue in the area model.
 */

#include <benchmark/benchmark.h>

#include <map>

#include "bench_util.hh"

namespace
{

using namespace ts;
using namespace ts::bench;

const std::vector<std::uint32_t> kCaps = {1, 2, 4, 8, 16};
const std::vector<Wk> kWorkloads = {Wk::Spmv, Wk::Cholesky, Wk::Msort};

std::map<std::pair<Wk, std::uint32_t>, double> gCycles;
std::map<std::pair<SchedPolicy, std::uint32_t>, double> gPolicy;

void
runPoint(benchmark::State& state, Wk w, std::uint32_t cap)
{
    SuiteParams sp;
    for (auto _ : state) {
        DeltaConfig cfg = DeltaConfig::delta(8);
        cfg.laneQueueCap = cap;
        const RunResult r = runOnce(w, cfg, sp);
        if (!r.correct)
            state.SkipWithError("incorrect result");
        gCycles[{w, cap}] = r.cycles;
        state.counters["cycles"] = r.cycles;
    }
}

void
runPolicyPoint(benchmark::State& state, SchedPolicy p,
               std::uint32_t cap)
{
    SuiteParams sp;
    for (auto _ : state) {
        DeltaConfig cfg = DeltaConfig::delta(8);
        cfg.policy = p;
        cfg.laneQueueCap = cap;
        const RunResult r = runOnce(Wk::Join, cfg, sp);
        if (!r.correct)
            state.SkipWithError("incorrect result");
        gPolicy[{p, cap}] = r.cycles;
        state.counters["cycles"] = r.cycles;
    }
}

void
printTable()
{
    std::puts("");
    std::puts("Fig-7  Task-queue depth sensitivity (Delta, 8 lanes; "
              "cycles normalized to depth 16)");
    rule();
    std::printf("%-10s", "workload");
    for (const auto c : kCaps)
        std::printf(" %9u", c);
    std::puts("");
    rule();
    for (const Wk w : kWorkloads) {
        std::printf("%-10s", wkName(w));
        const double best = gCycles.at({w, 16});
        for (const auto c : kCaps)
            std::printf(" %8.2fx", gCycles.at({w, c}) / best);
        std::puts("");
    }
    rule();
    std::puts("expected shape: knee at small depth; deep queues add "
              "nothing (supports the small area budget in Tab-3)");

    std::puts("");
    std::puts("Fig-7b  Policy x depth interaction on the Zipf-skewed "
              "join (cycles)");
    rule();
    std::printf("%-10s", "policy");
    for (const auto c : kCaps)
        std::printf(" %9u", c);
    std::puts("");
    rule();
    for (const auto p : {SchedPolicy::DynCount, SchedPolicy::WorkAware}) {
        std::printf("%-10s", schedPolicyName(p));
        for (const auto c : kCaps)
            std::printf(" %9.0f", gPolicy.at({p, c}));
        std::puts("");
    }
    rule();
    std::puts("expected shape: with shallow queues the policies tie "
              "(late commitment adapts); with deep queues placement "
              "commits early and the work-aware hint wins");
}

} // namespace

int
main(int argc, char** argv)
{
    bench::init(&argc, argv);
    for (const Wk w : kWorkloads) {
        for (const auto c : kCaps) {
            benchmark::RegisterBenchmark(
                (std::string("fig7/") + wkName(w) + "/cap:" +
                 std::to_string(c))
                    .c_str(),
                [w, c](benchmark::State& s) { runPoint(s, w, c); })
                ->Iterations(1);
        }
    }
    for (const auto p : {SchedPolicy::DynCount, SchedPolicy::WorkAware}) {
        for (const auto c : kCaps) {
            benchmark::RegisterBenchmark(
                (std::string("fig7b/join/") + schedPolicyName(p) +
                 "/cap:" + std::to_string(c))
                    .c_str(),
                [p, c](benchmark::State& s) {
                    runPolicyPoint(s, p, c);
                })
                ->Iterations(1);
        }
    }
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printTable();
    return 0;
}
