# Empty dependencies file for pipelined_sort.
# This may be replaced when dependencies are built.
