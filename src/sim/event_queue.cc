#include "sim/event_queue.hh"

#include "sim/logging.hh"
#include "sim/simulator.hh"

namespace ts
{

void
EventQueue::schedule(Tick when, Callback cb, Ticked* owner)
{
    heap_.push(Entry{when, nextSeq_++, std::move(cb), owner});
}

void
EventQueue::fireUpTo(Tick now)
{
    while (!heap_.empty() && heap_.top().when <= now) {
        // Move out before pop so the callback may schedule new events.
        Callback cb = std::move(const_cast<Entry&>(heap_.top()).cb);
        Ticked* owner = heap_.top().owner;
        heap_.pop();
        cb();
        if (owner != nullptr)
            owner->requestWake();
    }
}

Tick
EventQueue::nextTick() const
{
    TS_ASSERT(!heap_.empty(), "nextTick on empty event queue");
    return heap_.top().when;
}

} // namespace ts
