/**
 * @file
 * End-to-end smoke tests: small task graphs through the full stack
 * (dispatcher, NoC, DRAM, stream engines, fabric).
 */

#include <gtest/gtest.h>

#include "accel/delta.hh"

namespace ts
{
namespace
{

/** y[i] = 3*x[i] + 7, elementwise over a task's chunk. */
TaskTypeId
registerScaleType(TaskTypeRegistry& reg)
{
    auto dfg = std::make_unique<Dfg>("scale");
    const auto x = dfg->addInput();
    const auto m = dfg->add(Op::Mul, Operand::ref(x), Operand::immI(3));
    const auto a = dfg->add(Op::Add, Operand::ref(m), Operand::immI(7));
    dfg->addOutput(a);
    return reg.addDfgType("scale", std::move(dfg));
}

TEST(Smoke, SingleTaskComputesElementwise)
{
    Delta delta(DeltaConfig::delta(2));
    MemImage& img = delta.image();
    const TaskTypeId scale = registerScaleType(delta.registry());

    const std::size_t n = 64;
    const Addr x = img.allocWords(n);
    const Addr y = img.allocWords(n);
    for (std::size_t i = 0; i < n; ++i)
        img.writeInt(x + i * wordBytes, static_cast<std::int64_t>(i));

    TaskGraph g;
    WriteDesc out;
    out.base = y;
    g.addTask(scale, {StreamDesc::linear(Space::Dram, x, n)}, {out});

    const StatSet stats = delta.run(g);
    EXPECT_GT(stats.get("delta.cycles"), 0);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(img.readInt(y + i * wordBytes),
                  3 * static_cast<std::int64_t>(i) + 7)
            << "at index " << i;
    }
}

TEST(Smoke, ManyIndependentTasksAllPolicies)
{
    for (const auto policy : {SchedPolicy::Static, SchedPolicy::DynCount,
                              SchedPolicy::WorkAware}) {
        DeltaConfig cfg = DeltaConfig::delta(4);
        cfg.policy = policy;
        Delta delta(cfg);
        MemImage& img = delta.image();
        const TaskTypeId scale = registerScaleType(delta.registry());

        const std::size_t tasks = 16, chunk = 32;
        const Addr x = img.allocWords(tasks * chunk);
        const Addr y = img.allocWords(tasks * chunk);
        for (std::size_t i = 0; i < tasks * chunk; ++i)
            img.writeInt(x + i * wordBytes,
                         static_cast<std::int64_t>(i * 5 % 97));

        TaskGraph g;
        for (std::size_t t = 0; t < tasks; ++t) {
            WriteDesc out;
            out.base = y + t * chunk * wordBytes;
            g.addTask(scale,
                      {StreamDesc::linear(
                          Space::Dram, x + t * chunk * wordBytes,
                          chunk)},
                      {out});
        }
        const StatSet stats = delta.run(g);
        EXPECT_EQ(stats.get("dispatcher.tasksCompleted"),
                  static_cast<double>(tasks));
        for (std::size_t i = 0; i < tasks * chunk; ++i) {
            ASSERT_EQ(img.readInt(y + i * wordBytes),
                      3 * static_cast<std::int64_t>(i * 5 % 97) + 7)
                << "policy " << schedPolicyName(policy)
                << " index " << i;
        }
    }
}

TEST(Smoke, PipelineDependenceProducesSameResult)
{
    for (const bool pipeline : {false, true}) {
        DeltaConfig cfg = DeltaConfig::delta(4);
        cfg.enablePipeline = pipeline;
        Delta delta(cfg);
        MemImage& img = delta.image();
        const TaskTypeId scale = registerScaleType(delta.registry());

        const std::size_t n = 128;
        const Addr x = img.allocWords(n);
        const Addr mid = img.allocWords(n);
        const Addr y = img.allocWords(n);
        for (std::size_t i = 0; i < n; ++i)
            img.writeInt(x + i * wordBytes,
                         static_cast<std::int64_t>(i % 31));

        TaskGraph g;
        WriteDesc outMid;
        outMid.base = mid;
        const TaskId producer = g.addTask(
            scale, {StreamDesc::linear(Space::Dram, x, n)}, {outMid});
        WriteDesc outY;
        outY.base = y;
        const TaskId consumer = g.addTask(
            scale, {StreamDesc::linear(Space::Dram, mid, n)}, {outY});
        g.addPipeline(producer, 0, consumer, 0);

        const StatSet stats = delta.run(g);
        if (pipeline)
            EXPECT_EQ(delta.dispatcher().pipesActivated(), 1u);
        else
            EXPECT_EQ(delta.dispatcher().pipesActivated(), 0u);
        for (std::size_t i = 0; i < n; ++i) {
            const std::int64_t v = static_cast<std::int64_t>(i % 31);
            ASSERT_EQ(img.readInt(y + i * wordBytes),
                      3 * (3 * v + 7) + 7)
                << "pipeline=" << pipeline << " index " << i;
        }
        EXPECT_GT(stats.get("delta.cycles"), 0);
    }
}

TEST(Smoke, SharedReadMulticastProducesSameResult)
{
    // Tasks sum chunk[i] + shared[i] over a shared vector.
    for (const bool multicast : {false, true}) {
        DeltaConfig cfg = DeltaConfig::delta(4);
        cfg.enableMulticast = multicast;
        Delta delta(cfg);
        MemImage& img = delta.image();

        auto dfg = std::make_unique<Dfg>("addpair");
        const auto a = dfg->addInput();
        const auto b = dfg->addInput();
        const auto s =
            dfg->add(Op::Add, Operand::ref(a), Operand::ref(b));
        dfg->addOutput(s);
        const TaskTypeId addpair =
            delta.registry().addDfgType("addpair", std::move(dfg));

        const std::size_t tasks = 8, n = 64;
        const Addr shared = delta.image().allocWords(n);
        const Addr x = img.allocWords(tasks * n);
        const Addr y = img.allocWords(tasks * n);
        for (std::size_t i = 0; i < n; ++i)
            img.writeInt(shared + i * wordBytes,
                         static_cast<std::int64_t>(1000 + i));
        for (std::size_t i = 0; i < tasks * n; ++i)
            img.writeInt(x + i * wordBytes,
                         static_cast<std::int64_t>(i));

        TaskGraph g;
        const std::uint32_t group = g.addSharedGroup(shared, n);
        for (std::size_t t = 0; t < tasks; ++t) {
            WriteDesc out;
            out.base = y + t * n * wordBytes;
            const TaskId id = g.addTask(
                addpair,
                {StreamDesc::linear(Space::Dram,
                                    x + t * n * wordBytes, n),
                 StreamDesc::linear(Space::Dram, shared, n)},
                {out});
            g.setSharedInput(id, 1, group);
        }

        const StatSet stats = delta.run(g);
        if (multicast)
            EXPECT_EQ(delta.dispatcher().groupsFired(), 1u);
        for (std::size_t t = 0; t < tasks; ++t) {
            for (std::size_t i = 0; i < n; ++i) {
                ASSERT_EQ(img.readInt(y + (t * n + i) * wordBytes),
                          static_cast<std::int64_t>(t * n + i) +
                              static_cast<std::int64_t>(1000 + i))
                    << "multicast=" << multicast << " task " << t
                    << " index " << i;
            }
        }
        EXPECT_GT(stats.get("delta.cycles"), 0);
    }
}

} // namespace
} // namespace ts
