/**
 * @file
 * Driver-layer tests: the RunOptions API (shared flag parser + env
 * fallbacks, the only environment-reading layer in the tree) and the
 * parallel sweep engine (grid expansion, -j N determinism, failure
 * surfacing, deterministic aggregation).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "driver/options.hh"
#include "driver/sweep.hh"
#include "sim/logging.hh"

using namespace ts;
using namespace ts::driver;

namespace
{

/** Owning argv builder for parser tests. */
struct Argv
{
    explicit Argv(std::vector<std::string> args) : strings(std::move(args))
    {
        for (std::string& s : strings)
            ptrs.push_back(s.data());
        ptrs.push_back(nullptr);
        argc = static_cast<int>(strings.size());
    }

    std::vector<std::string> strings;
    std::vector<char*> ptrs;
    int argc = 0;

    char** argv() { return ptrs.data(); }
};

void
clearSharedEnv()
{
    for (const char* v :
         {"TS_WORKLOADS", "TS_SCALE", "TS_SEED", "TS_LOG", "TS_TRACE",
          "TS_STATS_JSON", "TS_BENCH_JSON", "TS_NO_FAST_FORWARD"})
        ::unsetenv(v);
}

/** A small, fast grid used by the determinism tests. */
SweepSpec
smallSpec()
{
    SweepSpec spec;
    spec.workloads = {Wk::Spmv, Wk::Msort};
    spec.configs = sweepConfigsFromList("static,delta");
    spec.seeds = {7, 11};
    spec.scales = {0.25};
    spec.baseline = "static";
    return spec;
}

} // namespace

// ---------------------------------------------------------------------
// RunOptions: env fallbacks and the shared flag parser.
// ---------------------------------------------------------------------

TEST(RunOptionsTest, DefaultsSelectWholeSuite)
{
    clearSharedEnv();
    const RunOptions opt = RunOptions::fromEnv();
    EXPECT_EQ(opt.workloads, allWorkloads());
    EXPECT_DOUBLE_EQ(opt.scale, 1.0);
    EXPECT_EQ(opt.seed, 7u);
    EXPECT_EQ(opt.logLevel, 1);
    EXPECT_TRUE(opt.tracePath.empty());
    EXPECT_TRUE(opt.statsJsonPath.empty());
    EXPECT_TRUE(opt.benchJsonDir.empty());
    EXPECT_EQ(opt.jobs, 0u);
}

TEST(RunOptionsTest, EnvFallbacksAreHonored)
{
    clearSharedEnv();
    ASSERT_EQ(::setenv("TS_WORKLOADS", "spmv,msort", 1), 0);
    ASSERT_EQ(::setenv("TS_SCALE", "0.5", 1), 0);
    ASSERT_EQ(::setenv("TS_SEED", "123", 1), 0);
    ASSERT_EQ(::setenv("TS_LOG", "2", 1), 0);
    ASSERT_EQ(::setenv("TS_STATS_JSON", "/tmp/ts_stats.json", 1), 0);
    ASSERT_EQ(::setenv("TS_BENCH_JSON", "/tmp/ts_bench", 1), 0);
    const RunOptions opt = RunOptions::fromEnv();
    clearSharedEnv();

    EXPECT_EQ(opt.workloads,
              (std::vector<Wk>{Wk::Spmv, Wk::Msort}));
    EXPECT_DOUBLE_EQ(opt.scale, 0.5);
    EXPECT_EQ(opt.seed, 123u);
    EXPECT_EQ(opt.logLevel, 2);
    EXPECT_EQ(opt.statsJsonPath, "/tmp/ts_stats.json");
    EXPECT_EQ(opt.benchJsonDir, "/tmp/ts_bench");
}

TEST(RunOptionsTest, BadEnvValueFailsFast)
{
    clearSharedEnv();
    ASSERT_EQ(::setenv("TS_SCALE", "-1", 1), 0);
    EXPECT_THROW(RunOptions::fromEnv(), FatalError);
    ASSERT_EQ(::setenv("TS_SCALE", "abc", 1), 0);
    EXPECT_THROW(RunOptions::fromEnv(), FatalError);
    clearSharedEnv();
}

TEST(RunOptionsTest, FlagsOverrideEnv)
{
    clearSharedEnv();
    ASSERT_EQ(::setenv("TS_SCALE", "0.5", 1), 0);
    ASSERT_EQ(::setenv("TS_SEED", "123", 1), 0);
    Argv a({"prog", "--scale", "2.0", "--seed", "9", "--workloads",
            "lu", "-j", "4"});
    const RunOptions opt = parseCommandLine(a.argc, a.argv());
    clearSharedEnv();

    EXPECT_DOUBLE_EQ(opt.scale, 2.0);
    EXPECT_EQ(opt.seed, 9u);
    EXPECT_EQ(opt.workloads, (std::vector<Wk>{Wk::Lu}));
    EXPECT_EQ(opt.jobs, 4u);
    EXPECT_EQ(a.argc, 1) << "shared flags must be consumed";
}

TEST(RunOptionsTest, NoFastForwardFlagAndEnvFallback)
{
    clearSharedEnv();
    EXPECT_FALSE(RunOptions::fromEnv().noFastForward);

    ASSERT_EQ(::setenv("TS_NO_FAST_FORWARD", "1", 1), 0);
    EXPECT_TRUE(RunOptions::fromEnv().noFastForward);
    ASSERT_EQ(::setenv("TS_NO_FAST_FORWARD", "0", 1), 0);
    EXPECT_FALSE(RunOptions::fromEnv().noFastForward);
    clearSharedEnv();

    Argv a({"prog", "--no-fast-forward"});
    const RunOptions opt = parseCommandLine(a.argc, a.argv());
    EXPECT_TRUE(opt.noFastForward);
    EXPECT_EQ(a.argc, 1) << "the flag must be consumed";

    DeltaConfig cfg;
    EXPECT_FALSE(cfg.noFastForward);
    EXPECT_TRUE(opt.applyTo(cfg).noFastForward);
}

TEST(RunOptionsTest, LenientParserLeavesUnknownArgs)
{
    clearSharedEnv();
    Argv a({"prog", "--benchmark_filter=fig1", "--seed", "3",
            "positional"});
    const RunOptions opt = parseCommandLine(a.argc, a.argv());
    EXPECT_EQ(opt.seed, 3u);
    ASSERT_EQ(a.argc, 3);
    EXPECT_STREQ(a.argv()[1], "--benchmark_filter=fig1");
    EXPECT_STREQ(a.argv()[2], "positional");
}

TEST(RunOptionsTest, StrictParserRejectsUnknownFlagListingValid)
{
    clearSharedEnv();
    Argv a({"prog", "--no-such-flag"});
    try {
        parseCommandLine(a.argc, a.argv(), /*strict=*/true);
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("--no-such-flag"), std::string::npos);
        EXPECT_NE(what.find("--workloads"), std::string::npos)
            << "the error must list the valid flags";
    }
}

TEST(RunOptionsTest, UnknownWorkloadFailsListingValid)
{
    clearSharedEnv();
    Argv a({"prog", "--workloads", "bogus"});
    try {
        parseCommandLine(a.argc, a.argv());
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("bogus"), std::string::npos);
        EXPECT_NE(what.find("spmv"), std::string::npos)
            << "the error must list the valid workloads";
    }
}

TEST(RunOptionsTest, MissingValueFailsFast)
{
    clearSharedEnv();
    Argv a({"prog", "--scale"});
    EXPECT_THROW(parseCommandLine(a.argc, a.argv()), FatalError);
}

TEST(RunOptionsTest, ApplyToInjectsTraceAndStats)
{
    clearSharedEnv();
    RunOptions opt = RunOptions::fromEnv();
    opt.tracePath = "/tmp/ts_applyto_trace.json";
    opt.statsJsonPath = "/tmp/ts_applyto_stats.json";

    const DeltaConfig cfg = opt.applyTo(DeltaConfig::delta(4));
    EXPECT_TRUE(cfg.trace.enabled);
    EXPECT_NE(cfg.trace.path.find("ts_applyto_trace"),
              std::string::npos);
    EXPECT_EQ(cfg.statsJsonPath, "/tmp/ts_applyto_stats.json");

    // An explicitly configured tracer wins over the option path.
    DeltaConfig pre = DeltaConfig::delta(4);
    pre.trace.enabled = true;
    pre.trace.path = "explicit.json";
    EXPECT_EQ(opt.applyTo(pre).trace.path, "explicit.json");
}

TEST(RunOptionsTest, TaggedTraceConfigIsDeterministic)
{
    const trace::TracerConfig a =
        traceConfigTagged("sweep.json", "spmv_delta_l8_s7_x1");
    EXPECT_TRUE(a.enabled);
    EXPECT_EQ(a.path, "sweep.spmv_delta_l8_s7_x1.json");
    EXPECT_FALSE(traceConfigTagged("", "t").enabled);
}

// ---------------------------------------------------------------------
// Sweep: config presets and grid expansion.
// ---------------------------------------------------------------------

TEST(SweepConfigTest, UnknownNameFailsListingValid)
{
    try {
        sweepConfig("bogus");
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("bogus"), std::string::npos);
        for (const std::string& name : sweepConfigNames())
            EXPECT_NE(what.find(name), std::string::npos)
                << "the error must list '" << name << "'";
    }
}

TEST(SweepConfigTest, PresetsFormTheAblationLadder)
{
    const ConfigVariant st = sweepConfig("static", 8);
    EXPECT_EQ(st.cfg.policy, SchedPolicy::Static);
    EXPECT_TRUE(st.cfg.bulkSynchronous);

    const ConfigVariant dyn = sweepConfig("dyn", 8);
    EXPECT_EQ(dyn.cfg.policy, SchedPolicy::DynCount);
    EXPECT_FALSE(dyn.cfg.enablePipeline);
    EXPECT_FALSE(dyn.cfg.enableMulticast);

    const ConfigVariant full = sweepConfig("delta", 16);
    EXPECT_EQ(full.cfg.policy, SchedPolicy::WorkAware);
    EXPECT_TRUE(full.cfg.enablePipeline);
    EXPECT_TRUE(full.cfg.enableMulticast);
    EXPECT_EQ(full.cfg.lanes, 16u);

    const ConfigVariant spat = sweepConfig("spatial", 8);
    EXPECT_EQ(spat.cfg.policy, SchedPolicy::Spatial);
    EXPECT_FALSE(spat.cfg.enablePipeline);
    EXPECT_TRUE(spat.cfg.enableMulticast);
    EXPECT_FALSE(spat.cfg.bulkSynchronous);

    const auto defaults = sweepConfigsFromList("");
    ASSERT_EQ(defaults.size(), 2u);
    EXPECT_EQ(defaults[0].name, "static");
    EXPECT_EQ(defaults[1].name, "delta");
}

TEST(SweepTest, GridExpandsInDeterministicOrder)
{
    SweepSpec spec = smallSpec();
    const Sweep sweep(spec);
    const auto& pts = sweep.points();
    // 2 workloads x 1 scale x 2 seeds x 2 configs.
    ASSERT_EQ(pts.size(), 8u);
    EXPECT_EQ(pts[0].tag(), "spmv_static_l8_s7_x0.25");
    EXPECT_EQ(pts[1].tag(), "spmv_delta_l8_s7_x0.25");
    EXPECT_EQ(pts[2].tag(), "spmv_static_l8_s11_x0.25");
    EXPECT_EQ(pts[3].tag(), "spmv_delta_l8_s11_x0.25");
    EXPECT_EQ(pts[4].tag(), "msort_static_l8_s7_x0.25");
}

TEST(SweepTest, EmptyAxisFailsFast)
{
    SweepSpec spec = smallSpec();
    spec.workloads.clear();
    EXPECT_THROW(Sweep{spec}, FatalError);

    spec = smallSpec();
    spec.seeds.clear();
    EXPECT_THROW(Sweep{spec}, FatalError);

    spec = smallSpec();
    spec.baseline = "nonexistent";
    EXPECT_THROW(Sweep{spec}, FatalError);
}

// ---------------------------------------------------------------------
// Sweep: parallel execution determinism (the core contract).
// ---------------------------------------------------------------------

TEST(SweepTest, ParallelSweepIsBitIdenticalToSerial)
{
    SweepSpec serialSpec = smallSpec();
    serialSpec.jobs = 1;
    SweepReport serial = Sweep(serialSpec).run();

    SweepSpec parallelSpec = smallSpec();
    parallelSpec.jobs = 4;
    SweepReport parallel = Sweep(parallelSpec).run();

    ASSERT_EQ(serial.runs.size(), parallel.runs.size());
    for (std::size_t i = 0; i < serial.runs.size(); ++i) {
        const RunOutcome& a = serial.runs[i];
        const RunOutcome& b = parallel.runs[i];
        EXPECT_EQ(a.point.tag(), b.point.tag());
        EXPECT_TRUE(a.ok()) << a.point.tag() << ": " << a.error;
        EXPECT_TRUE(b.ok()) << b.point.tag() << ": " << b.error;
        EXPECT_EQ(a.cycles, b.cycles) << a.point.tag();

        std::ostringstream ja, jb;
        a.stats.dumpJson(ja, "sim.host.");
        b.stats.dumpJson(jb, "sim.host.");
        EXPECT_EQ(ja.str(), jb.str())
            << a.point.tag()
            << ": per-run StatSets must be bit-identical";
    }

    std::ostringstream ra, rb;
    serial.writeJson(ra);
    parallel.writeJson(rb);
    EXPECT_EQ(ra.str(), rb.str())
        << "aggregate report JSON must be bit-identical";

    // Sanity on the aggregation itself: every cell saw both seeds,
    // and delta beats static on spmv at this scale.
    const auto aggs = serial.aggregates();
    ASSERT_EQ(aggs.size(), 4u);
    for (const CellAggregate& a : aggs) {
        EXPECT_EQ(a.n, 2u);
        EXPECT_GT(a.meanCycles, 0.0);
        EXPECT_GE(a.stddevCycles, 0.0);
    }
    const auto sps = serial.pairedSpeedups();
    ASSERT_EQ(sps.size(), 2u);
    EXPECT_EQ(sps[0].config, "delta");
    EXPECT_EQ(sps[0].n, 2u);
    EXPECT_GT(sps[0].mean, 1.0)
        << "delta must beat static on spmv";
}

TEST(SweepTest, FailedRunSurfacesInReport)
{
    SweepSpec spec;
    spec.workloads = {Wk::Spmv};
    spec.configs = sweepConfigsFromList("static,delta");
    // Starve the delta config so the simulation cannot finish: the
    // failure must surface per-run without sinking the whole sweep.
    for (ConfigVariant& c : spec.configs) {
        if (c.name == "delta")
            c.cfg.maxCycles = 10;
    }
    spec.seeds = {7};
    spec.scales = {0.25};
    spec.jobs = 2;

    SweepReport report = Sweep(spec).run();
    ASSERT_EQ(report.runs.size(), 2u);
    EXPECT_FALSE(report.allOk());
    EXPECT_EQ(report.failures(), 1u);

    const RunOutcome* bad = report.find(Wk::Spmv, "delta", 7, 0.25);
    ASSERT_NE(bad, nullptr);
    EXPECT_TRUE(bad->failed);
    EXPECT_FALSE(bad->error.empty());

    const RunOutcome* good = report.find(Wk::Spmv, "static", 7, 0.25);
    ASSERT_NE(good, nullptr);
    EXPECT_TRUE(good->ok())
        << "an isolated failure must not poison other runs";

    std::ostringstream os;
    report.writeJson(os);
    EXPECT_NE(os.str().find("\"failed\": true"), std::string::npos);
    EXPECT_NE(os.str().find("\"error\": "), std::string::npos);

    // Failed cells drop out of aggregation instead of skewing it.
    for (const CellAggregate& a : report.aggregates()) {
        if (a.config == "delta")
            EXPECT_EQ(a.n, 0u);
        else
            EXPECT_EQ(a.n, 1u);
    }
    EXPECT_TRUE(report.pairedSpeedups().front().n == 0);
}

TEST(SweepTest, AggregationMathIsExact)
{
    // Synthetic outcomes: verify the cross-seed mean/stddev and the
    // paired speedups without simulating.
    SweepSpec spec;
    spec.workloads = {Wk::Spmv};
    spec.configs = sweepConfigsFromList("static,delta");
    spec.seeds = {1, 2};
    spec.scales = {1.0};
    spec.baseline = "static";

    SweepReport report;
    report.spec = spec;
    const auto add = [&](const char* config, std::uint64_t seed,
                         double cycles) {
        RunOutcome r;
        r.point.workload = Wk::Spmv;
        r.point.config = config;
        r.point.seed = seed;
        r.point.scale = 1.0;
        r.correct = true;
        r.cycles = cycles;
        report.runs.push_back(r);
    };
    add("static", 1, 1000.0);
    add("delta", 1, 500.0);
    add("static", 2, 1200.0);
    add("delta", 2, 400.0);

    const auto aggs = report.aggregates();
    ASSERT_EQ(aggs.size(), 2u);
    EXPECT_DOUBLE_EQ(aggs[0].meanCycles, 1100.0);
    // Sample stddev of {1000, 1200}.
    EXPECT_NEAR(aggs[0].stddevCycles, 141.4213562, 1e-6);
    EXPECT_DOUBLE_EQ(aggs[1].meanCycles, 450.0);

    const auto sps = report.pairedSpeedups();
    ASSERT_EQ(sps.size(), 1u);
    EXPECT_EQ(sps[0].config, "delta");
    EXPECT_EQ(sps[0].n, 2u);
    // Paired per-seed: 1000/500 = 2 and 1200/400 = 3.
    EXPECT_DOUBLE_EQ(sps[0].mean, 2.5);
    EXPECT_NEAR(sps[0].stddev, 0.7071067812, 1e-6);
}

TEST(SweepTest, ParallelForCoversEveryIndexOnce)
{
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits)
        h = 0;
    parallelFor(hits.size(), 8, [&](std::size_t i) {
        hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

// ---------------------------------------------------------------------
// Canonical-config completeness: the run cache is only sound if every
// behaviour-relevant DeltaConfig field lands in canonicalConfig().
// Perturb each field one at a time and insist the canonical string
// moves; anyone adding a field without extending canonicalConfig()
// (and this list) trips the check the moment the field matters.
// ---------------------------------------------------------------------

namespace
{

template <typename Fn>
::testing::AssertionResult
canonicalChangesWhen(const char* field, Fn mutate)
{
    const std::string base = canonicalConfig(DeltaConfig{});
    DeltaConfig cfg;
    mutate(cfg);
    if (canonicalConfig(cfg) != base)
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << "perturbing DeltaConfig::" << field
           << " left canonicalConfig() unchanged — stale cache hits "
              "would alias distinct runs";
}

} // namespace

#define TS_EXPECT_CANONICAL(field, expr)                                \
    EXPECT_TRUE(canonicalChangesWhen(                                   \
        #field, [](DeltaConfig& c) { expr; }))

TEST(CanonicalConfigTest, EveryBehaviourFieldParticipates)
{
    TS_EXPECT_CANONICAL(lanes, c.lanes = 3);
    TS_EXPECT_CANONICAL(policy, c.policy = SchedPolicy::Static);
    TS_EXPECT_CANONICAL(steal, c.steal = StealPolicy::StealHalf);
    TS_EXPECT_CANONICAL(enablePipeline, c.enablePipeline = false);
    TS_EXPECT_CANONICAL(enableMulticast, c.enableMulticast = false);
    TS_EXPECT_CANONICAL(bulkSynchronous, c.bulkSynchronous = true);
    TS_EXPECT_CANONICAL(laneQueueCap, c.laneQueueCap = 9);
    TS_EXPECT_CANONICAL(lane.numReadEngines,
                        c.lane.numReadEngines = 7);
    TS_EXPECT_CANONICAL(lane.numWriteEngines,
                        c.lane.numWriteEngines = 7);
    TS_EXPECT_CANONICAL(lane.maxOutstandingLines,
                        c.lane.maxOutstandingLines = 99);
    TS_EXPECT_CANONICAL(lane.fabric.geom.rows,
                        c.lane.fabric.geom.rows = 9);
    TS_EXPECT_CANONICAL(lane.fabric.geom.cols,
                        c.lane.fabric.geom.cols = 9);
    TS_EXPECT_CANONICAL(lane.fabric.geom.linkMultiplicity,
                        c.lane.fabric.geom.linkMultiplicity = 9);
    TS_EXPECT_CANONICAL(lane.fabric.portFifoDepth,
                        c.lane.fabric.portFifoDepth = 99);
    TS_EXPECT_CANONICAL(lane.fabric.operandFifoDepth,
                        c.lane.fabric.operandFifoDepth = 99);
    TS_EXPECT_CANONICAL(lane.fabric.configBaseCycles,
                        c.lane.fabric.configBaseCycles = 999);
    TS_EXPECT_CANONICAL(lane.fabric.configPerNodeCycles,
                        c.lane.fabric.configPerNodeCycles = 999);
    TS_EXPECT_CANONICAL(lane.spm.sizeWords,
                        c.lane.spm.sizeWords = 12345);
    TS_EXPECT_CANONICAL(lane.spm.portsPerCycle,
                        c.lane.spm.portsPerCycle = 9);
    TS_EXPECT_CANONICAL(lane.read.deliverWidth,
                        c.lane.read.deliverWidth = 9);
    TS_EXPECT_CANONICAL(lane.read.genPerCycle,
                        c.lane.read.genPerCycle = 9);
    TS_EXPECT_CANONICAL(lane.read.fetcher.maxOutstanding,
                        c.lane.read.fetcher.maxOutstanding = 99);
    TS_EXPECT_CANONICAL(lane.read.fetcher.maxWindow,
                        c.lane.read.fetcher.maxWindow = 99);
    TS_EXPECT_CANONICAL(lane.read.fetcher.issuesPerCycle,
                        c.lane.read.fetcher.issuesPerCycle = 9);
    TS_EXPECT_CANONICAL(lane.write.width, c.lane.write.width = 9);
    TS_EXPECT_CANONICAL(lane.write.writeQueueDepth,
                        c.lane.write.writeQueueDepth = 99);
    TS_EXPECT_CANONICAL(mem.numBanks, c.mem.numBanks = 3);
    TS_EXPECT_CANONICAL(mem.serviceLatency, c.mem.serviceLatency = 99);
    TS_EXPECT_CANONICAL(mem.bankOccupancy, c.mem.bankOccupancy = 99);
    TS_EXPECT_CANONICAL(mem.issueWidth, c.mem.issueWidth = 9);
    TS_EXPECT_CANONICAL(mem.queueCapacity, c.mem.queueCapacity = 99);
    TS_EXPECT_CANONICAL(nocLinks.channelCapacity,
                        c.nocLinks.channelCapacity = 99);
    TS_EXPECT_CANONICAL(nocLinks.linkWords, c.nocLinks.linkWords = 9);
    TS_EXPECT_CANONICAL(spatialBufferWords,
                        c.spatialBufferWords = 4096);
    TS_EXPECT_CANONICAL(spatialRemapFactor,
                        c.spatialRemapFactor = 2.25);
    TS_EXPECT_CANONICAL(maxCycles, c.maxCycles = 1234);
    TS_EXPECT_CANONICAL(noFastForward, c.noFastForward = true);
    TS_EXPECT_CANONICAL(timelineInterval, c.timelineInterval = 100);
    TS_EXPECT_CANONICAL(timelineMaxSamples,
                        c.timelineMaxSamples = 9);
    TS_EXPECT_CANONICAL(timelineSeries, c.timelineSeries = "lanes");
}

TEST(CanonicalConfigTest, ResultsNeutralFieldsAreExcluded)
{
    const std::string base = canonicalConfig(DeltaConfig{});

    // Bit-identity across these is CI-gated, which is exactly what
    // lets a cached result answer for any value of them.
    DeltaConfig shards;
    shards.shards = 4;
    EXPECT_EQ(canonicalConfig(shards), base);

    DeltaConfig prof;
    prof.hostProfile = true;
    EXPECT_EQ(canonicalConfig(prof), base);

    DeltaConfig rec;
    rec.flightRecorder = 1024;
    EXPECT_EQ(canonicalConfig(rec), base);
}
