file(REMOVE_RECURSE
  "CMakeFiles/ts_stream.dir/fetcher.cc.o"
  "CMakeFiles/ts_stream.dir/fetcher.cc.o.d"
  "CMakeFiles/ts_stream.dir/pipe_set.cc.o"
  "CMakeFiles/ts_stream.dir/pipe_set.cc.o.d"
  "CMakeFiles/ts_stream.dir/read_engine.cc.o"
  "CMakeFiles/ts_stream.dir/read_engine.cc.o.d"
  "CMakeFiles/ts_stream.dir/stream_desc.cc.o"
  "CMakeFiles/ts_stream.dir/stream_desc.cc.o.d"
  "CMakeFiles/ts_stream.dir/write_engine.cc.o"
  "CMakeFiles/ts_stream.dir/write_engine.cc.o.d"
  "libts_stream.a"
  "libts_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
