# Empty compiler generated dependencies file for fig_queue.
# This may be replaced when dependencies are built.
