/**
 * @file
 * Shared infrastructure for the experiment benchmarks: run one
 * workload under one configuration, verify correctness, and collect
 * the statistics the paper-style tables report.
 */

#ifndef TS_BENCH_BENCH_UTIL_HH
#define TS_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <string>

#include "workloads/workload.hh"

namespace ts::bench
{

/** Outcome of one simulated run. */
struct RunResult
{
    double cycles = 0;
    bool correct = false;
    StatSet stats;
};

/** Build and simulate one workload under one configuration. */
inline RunResult
runOnce(Wk w, const DeltaConfig& cfg, const SuiteParams& sp)
{
    auto wl = makeWorkload(w, sp);
    Delta delta(cfg);
    TaskGraph graph;
    wl->build(delta, graph);
    RunResult r;
    r.stats = delta.run(graph);
    r.cycles = r.stats.get("delta.cycles");
    r.correct = wl->check(delta.image());
    return r;
}

/** Print a horizontal rule sized for our tables. */
inline void
rule(int width = 72)
{
    std::puts(std::string(static_cast<std::size_t>(width), '-').c_str());
}

/** Geometric mean of a vector of ratios. */
inline double
geomean(const std::vector<double>& v)
{
    if (v.empty())
        return 0.0;
    double logSum = 0.0;
    for (const double x : v)
        logSum += std::log(x);
    return std::exp(logSum / static_cast<double>(v.size()));
}

} // namespace ts::bench

#endif // TS_BENCH_BENCH_UTIL_HH
