/**
 * @file
 * The memory-controller NoC node: unwraps MemReq packets into the
 * banked DRAM model and wraps serviced lines back into (possibly
 * multicast) MemResp packets.
 */

#ifndef TS_ACCEL_MEM_NODE_HH
#define TS_ACCEL_MEM_NODE_HH

#include <memory>

#include "mem/main_memory.hh"
#include "noc/noc.hh"

namespace ts
{

/** Adapter gluing MainMemory to the mesh. */
class MemNode : public Ticked
{
  public:
    MemNode(Simulator& sim, Noc& noc, std::uint32_t selfNode,
            const MainMemoryConfig& cfg);

    void tick(Tick now) override;
    bool busy() const override;
    void reportStats(StatSet& stats) const override;

    /** The adapter is stateless: its channels are simulator-owned and
     *  the DRAM model snapshots itself. */
    std::unique_ptr<ComponentSnap>
    saveState() const override
    {
        return std::make_unique<EmptySnap>();
    }

    void restoreState(const ComponentSnap&) override {}

    const MainMemory& memory() const { return *mem_; }

  private:
    Noc& noc_;
    std::uint32_t selfNode_;
    Channel<MemReq>* reqCh_;
    Channel<MemResp>* respCh_;
    std::unique_ptr<MainMemory> mem_;
};

} // namespace ts

#endif // TS_ACCEL_MEM_NODE_HH
