#include "mem/scratchpad.hh"

#include "sim/logging.hh"

namespace ts
{

Scratchpad::Scratchpad(std::string name, const ScratchpadConfig& cfg)
    : Ticked(std::move(name)), cfg_(cfg), data_(cfg.sizeWords, 0)
{
    if (cfg_.sizeWords == 0 || cfg_.portsPerCycle == 0)
        fatal("scratchpad needs nonzero size and ports");
}

bool
Scratchpad::tryAccess(Tick now)
{
    if (budgetCycle_ != now) {
        budgetCycle_ = now;
        budgetLeft_ = cfg_.portsPerCycle;
    }
    if (budgetLeft_ == 0) {
        ++portStalls_;
        return false;
    }
    --budgetLeft_;
    ++accesses_;
    return true;
}

Word
Scratchpad::read(std::size_t wordOffset) const
{
    TS_ASSERT(wordOffset < data_.size(),
              name(), " read out of bounds @", wordOffset);
    return data_[wordOffset];
}

void
Scratchpad::write(std::size_t wordOffset, Word value)
{
    TS_ASSERT(wordOffset < data_.size(),
              name(), " write out of bounds @", wordOffset);
    data_[wordOffset] = value;
}

std::size_t
Scratchpad::alloc(std::size_t words)
{
    if (brk_ + words > data_.size()) {
        fatal(name(), ": scratchpad exhausted (", brk_, " + ", words,
              " > ", data_.size(), " words)");
    }
    const std::size_t base = brk_;
    brk_ += words;
    return base;
}

void
Scratchpad::reportStats(StatSet& stats) const
{
    stats.set(name() + ".accesses", static_cast<double>(accesses_));
    stats.set(name() + ".portStalls", static_cast<double>(portStalls_));
}

std::unique_ptr<ComponentSnap>
Scratchpad::saveState() const
{
    auto s = std::make_unique<Snap>();
    s->data = data_;
    s->brk = brk_;
    s->budgetCycle = budgetCycle_;
    s->budgetLeft = budgetLeft_;
    s->accesses = accesses_;
    s->portStalls = portStalls_;
    return s;
}

void
Scratchpad::restoreState(const ComponentSnap& snap)
{
    const Snap& s = snapCast<Snap>(snap);
    data_ = s.data;
    brk_ = s.brk;
    budgetCycle_ = s.budgetCycle;
    budgetLeft_ = s.budgetLeft;
    accesses_ = s.accesses;
    portStalls_ = s.portStalls;
}

} // namespace ts
