#include "workloads/msort.hh"

#include <algorithm>
#include <cmath>

namespace ts
{

void
MsortWorkload::build(Delta& delta, TaskGraph& graph)
{
    MemImage& img = delta.image();
    Rng rng(p_.seed);

    TS_ASSERT((p_.n & (p_.n - 1)) == 0, "msort n must be a power of 2");
    TS_ASSERT(p_.n % p_.leafSize == 0);
    const std::uint64_t leaves = p_.n / p_.leafSize;
    TS_ASSERT((leaves & (leaves - 1)) == 0);
    const auto levels = static_cast<std::uint64_t>(
        std::log2(static_cast<double>(leaves)));

    const Addr src = img.allocWords(p_.n);
    for (std::uint64_t i = 0; i < p_.n; ++i) {
        img.writeInt(src + i * wordBytes,
                     rng.uniformInt(0, 1 << 30));
    }

    expected_.resize(p_.n);
    for (std::uint64_t i = 0; i < p_.n; ++i)
        expected_[i] = img.readInt(src + i * wordBytes);
    std::sort(expected_.begin(), expected_.end());

    // One buffer per tree level (level 0 holds sorted leaves).
    std::vector<Addr> level(levels + 1);
    for (auto& a : level)
        a = img.allocWords(p_.n);
    finalAddr_ = level[levels];

    // --- leaf sorter (builtin coarse-grained kernel) -------------------
    BuiltinBody sorter;
    sorter.apply = [](MemImage& m, const TaskInstance& inst) {
        const StreamDesc& in = inst.inputs.at(0);
        const std::uint64_t n = in.count;
        std::vector<std::int64_t> v(n);
        for (std::uint64_t i = 0; i < n; ++i)
            v[i] = m.readInt(in.dataBase + i * wordBytes);
        std::sort(v.begin(), v.end());
        for (std::uint64_t i = 0; i < n; ++i)
            m.writeInt(inst.outputs.at(0).base + i * wordBytes, v[i]);
    };
    sorter.cycles = [](const MemImage&, const TaskInstance& inst) {
        const double n =
            static_cast<double>(inst.inputs.at(0).count);
        return static_cast<std::uint64_t>(n * std::log2(n));
    };
    sorter.outputWords = [](const MemImage&, const TaskInstance& inst) {
        return inst.inputs.at(0).count;
    };
    const TaskTypeId leafTy =
        delta.registry().addBuiltinType("msort_leaf", std::move(sorter));
    delta.registry().setWorkFn(
        leafTy, [](const MemImage&, const TaskInstance& inst) {
            const double n =
                static_cast<double>(inst.inputs.at(0).count);
            return n * std::log2(n);
        });

    // --- merge task type -------------------------------------------------
    auto dfg = std::make_unique<Dfg>("merge2");
    const auto aIn = dfg->addInput();
    const auto bIn = dfg->addInput();
    const auto m =
        dfg->add(Op::Merge2, Operand::ref(aIn), Operand::ref(bIn));
    dfg->addOutput(m);
    const TaskTypeId mergeTy =
        delta.registry().addDfgType("merge2", std::move(dfg));

    // --- leaves -----------------------------------------------------------
    std::vector<TaskId> prev;
    for (std::uint64_t c = 0; c < leaves; ++c) {
        WriteDesc out;
        out.base = level[0] + c * p_.leafSize * wordBytes;
        prev.push_back(graph.addTask(
            leafTy,
            {StreamDesc::linear(Space::Dram,
                                src + c * p_.leafSize * wordBytes,
                                p_.leafSize)},
            {out}));
    }

    // --- merge tree, annotated with Pipeline dependences ------------------
    for (std::uint64_t l = 0; l < levels; ++l) {
        const std::uint64_t runLen = p_.leafSize << l;
        const std::uint64_t outRuns = leaves >> (l + 1);
        std::vector<TaskId> cur;
        for (std::uint64_t j = 0; j < outRuns; ++j) {
            const Addr inA = level[l] + (2 * j) * runLen * wordBytes;
            const Addr inB =
                level[l] + (2 * j + 1) * runLen * wordBytes;
            WriteDesc out;
            out.base = level[l + 1] + j * 2 * runLen * wordBytes;
            const TaskId id = graph.addTask(
                mergeTy,
                {StreamDesc::linear(Space::Dram, inA, runLen),
                 StreamDesc::linear(Space::Dram, inB, runLen)},
                {out});
            graph.addPipeline(prev[2 * j], 0, id, 0);
            graph.addPipeline(prev[2 * j + 1], 0, id, 1);
            cur.push_back(id);
        }
        prev = std::move(cur);
    }
}

bool
MsortWorkload::check(const MemImage& img) const
{
    for (std::uint64_t i = 0; i < p_.n; ++i) {
        const std::int64_t got =
            img.readInt(finalAddr_ + i * wordBytes);
        if (got != expected_[i]) {
            warn("msort mismatch at ", i, ": got ", got, " want ",
                 expected_[i]);
            return false;
        }
    }
    return true;
}

} // namespace ts
