/**
 * @file
 * The delta-sweep daemon: a Unix-domain-socket service that executes
 * sweep requests through the shared engine (src/driver/sweep.hh) and
 * streams per-cell results back as line-delimited JSON.
 *
 * Protocol (one JSON object per line, both directions).  Every
 * daemon reply to ping/status/metrics — and the "start" event of a
 * sweep — carries `"proto": kProtoVersion`.  A reply without the
 * field is protocol v1 (the original unversioned daemon).  Clients
 * compare the observed version against kProtoVersion and fail loudly
 * on any mismatch, naming both versions — a silent fallback would
 * mis-parse fields that changed shape.  Compat rule (also in
 * README.md): the version bumps on ANY change to reply shapes or
 * event vocabulary, and daemon and client must be built from the
 * same version; there is no cross-version negotiation.
 *
 *   request  {"op":"ping"}
 *   reply    {"ok":true,"proto":N}
 *
 *   request  {"op":"shutdown"}
 *   reply    {"ok":true,"proto":N}  (then the daemon exits)
 *
 *   request  {"op":"status"}
 *   reply    {"ok":true,"proto":N,
 *             "status":{"uptimeSec":...,"sweeping":B,
 *             "served":N,"runs":N,"done":N,"inflight":N,"hits":N,
 *             "misses":N,"etaSec":...,"workers":[{"worker":W,
 *             "cell":"tag"},...]}}
 *     Live telemetry: run counts and cache outcomes of the sweep in
 *     flight (or the last finished one), plus the cell every busy
 *     worker is currently executing.
 *
 *   request  {"op":"metrics"}
 *   reply    {"ok":true,"proto":N,"metrics":"..."}
 *     The same telemetry as a Prometheus text exposition (ts_sweep_*
 *     families), JSON-escaped into one string for the line protocol;
 *     clients unescape and hand it to a scraper verbatim.
 *
 *   request  {"op":"sweep","grid":{"<key>":"<value>", ...}}
 *     where every grid entry is a string applied through the same
 *     applyGridKey() vocabulary as grid files and CLI flags (see
 *     driver/grid.hh), so a request line, a grid file, and the
 *     equivalent flags mean exactly the same sweep.  When the grid
 *     includes "out", the daemon writes the aggregate JSON report to
 *     that path itself.
 *   replies  {"event":"start","proto":N,"runs":N}
 *            {"event":"cell","tag":"...","source":"cache"|"run",
 *             "ok":true,"cycles":N}     (one per point, completion
 *                                        order)
 *            {"event":"done","ok":true,"failures":0,
 *             "hits":H,"misses":M}
 *     or, on a malformed or invalid request,
 *            {"event":"error","message":"..."}
 *
 * A sweep request moves its connection onto a background thread for
 * the duration of the sweep (and is the last request served on that
 * connection), so the daemon keeps answering status/metrics/ping
 * scrapes from other clients while a sweep is in flight.  One sweep
 * runs at a time — a second request while one is active gets an
 * error event.  The daemon keeps serving after request errors; only
 * "shutdown" or a fatal socket error ends serve(), which joins any
 * sweep still running before returning.
 */

#ifndef TS_SERVICE_SWEEP_SERVICE_HH
#define TS_SERVICE_SWEEP_SERVICE_HH

#include <cstdint>
#include <ostream>
#include <string>

namespace ts
{
namespace service
{

/**
 * Line-JSON protocol version spoken by this build's daemon and
 * clients (see the compat rule in the file comment).  History:
 *   1  the original unversioned protocol (no "proto" field)
 *   2  "proto" added to ping/shutdown/status/metrics replies and the
 *      sweep "start" event; clients reject mismatches
 */
inline constexpr int kProtoVersion = 2;

/** Daemon-side configuration. */
struct ServeConfig
{
    /** Filesystem path of the AF_UNIX listening socket.  A stale
     *  socket file at this path is replaced. */
    std::string socketPath;

    /** Cap on served sweep requests (0 = unlimited); tests use 1..N
     *  to bound a serve() call without a shutdown request. */
    std::uint64_t maxRequests = 0;
};

/**
 * Bind @p cfg.socketPath and serve requests until a shutdown request
 * (or the request cap) is reached.  Blocking; fatal() on socket
 * setup errors.
 */
void serve(const ServeConfig& cfg);

/**
 * Client: connect to @p socketPath, send @p requestJson as one line,
 * and echo every reply line to @p replies.  Returns the sweep exit
 * status: 0 when a done event reported ok, 1 when it reported
 * failures, 2 on an error event or a broken connection.
 */
int requestSweep(const std::string& socketPath,
                 const std::string& requestJson, std::ostream& replies);

/** Client: send {"op":"ping"}; true iff the daemon answered ok. */
bool ping(const std::string& socketPath);

/** Client: send {"op":"status"}; the raw single-line JSON reply, or
 *  "" when the daemon is unreachable or answered malformed. */
std::string status(const std::string& socketPath);

/** Client: send {"op":"metrics"}; the unescaped Prometheus text
 *  exposition, or "" on failure. */
std::string metrics(const std::string& socketPath);

/** Client: send {"op":"shutdown"}; true iff the daemon acknowledged
 *  before exiting. */
bool shutdown(const std::string& socketPath);

} // namespace service
} // namespace ts

#endif // TS_SERVICE_SWEEP_SERVICE_HH
