#!/usr/bin/env python3
"""Gate simulator host throughput against the host-* perf floors,
NoC work stealing against the steal-* floors, and the spatial mapper
against the spatial-* floors.

Usage: check_host_floors.py <bench_host.json> <perf-floors.txt>
       check_host_floors.py --steal <baseline.json> <steal.json> \\
                            <perf-floors.txt>
       check_host_floors.py --spatial <perf-floors.txt> \\
                            <static.json> <spatial.json> [...pairs]

In --steal mode the two JSON files are per-run bench dumps written by
delta-sweep --bench-json (same workload/seed/scale, configs `work`
and `work-steal`).  The score is the simulated-cycle speedup
baseline/steal — stealing on top of work-aware placement must beat
work-aware placement alone — gated against the `steal-imbalance`
floor.  Simulated cycles are deterministic, so unlike the host
throughput floors this one carries no machine-noise slack.

In --spatial mode the remaining arguments are (static, spatial)
pairs of per-run bench dumps for pipeline-shaped workloads.  Each
spatial run must be correct and must report
delta.attrib.spatial.dramLinesSaved > 0 (an inert forwarder scores
no speedup); the geomean static/spatial simulated-cycle speedup over
all pairs is gated against the `spatial-stream-geomean` floor.
Deterministic like --steal: no machine-noise slack.

In the default mode:

Reads google-benchmark JSON output from bench_host, computes the
ff:1 / ff:0 speedup of every fast-forward benchmark and the
sh:4 / sh:1 speedup of every sharded benchmark from their
sim_cycles_per_sec counters, and checks:

  host-idle-speedup         floor on BM_SyntheticIdle's speedup
  host-real-geomean         floor on the geomean speedup of the real
                            workload benches (everything except the
                            BM_Synthetic* pair)
  host-shards-busy          floor on BM_ShardedBusy's sh:4 / sh:1
                            speedup
  host-shards-real-geomean  floor on the geomean sh:4 / sh:1 speedup
                            of the real sharded benches (every
                            BM_Sharded* family except BM_ShardedBusy)

The host-shards-* floors are skipped (reported, not failed) when the
benchmark context reports fewer than 4 CPUs: four shards cannot beat
one executor without cores to run on.

Prints a Markdown table (suitable for $GITHUB_STEP_SUMMARY) to
stdout and exits non-zero when a floor is violated.  Failures also
emit GitHub `::error` workflow commands on stderr (stdout is
redirected into the step summary, where they would be swallowed), so
violations surface as annotations on the PR itself.
"""

import json
import math
import sys


def annotate(title, message):
    """Emit a GitHub Actions error annotation (plus a plain line for
    non-Actions runs).  Both go to stderr: stdout is the step summary.
    """
    print(f"check_host_floors: {title}: {message}", file=sys.stderr)
    print(f"::error title={title}::{message}", file=sys.stderr)


def load_floors(path):
    floors = {}
    with open(path) as f:
        for line in f:
            parts = line.split()
            if len(parts) != 2 or parts[0].startswith("#"):
                continue
            if parts[0].startswith(("host-", "steal-", "spatial-")):
                floors[parts[0]] = float(parts[1])
    return floors


def check_steal(baseline_path, steal_path, floors_path):
    """Gate the work-steal-vs-work speedup against steal-imbalance."""
    with open(baseline_path) as f:
        base = json.load(f)
    with open(steal_path) as f:
        steal = json.load(f)

    for tag, run in (("baseline", base), ("steal", steal)):
        if not run.get("correct", False):
            annotate(
                "STEAL RUN INCORRECT",
                f"{tag} run reports correct=false",
            )
            sys.exit(1)

    floor = load_floors(floors_path).get("steal-imbalance")
    if floor is None:
        print(
            f"- `steal-imbalance`: no floor configured in "
            f"{floors_path}, skipped",
            file=sys.stderr,
        )
        sys.exit(0)

    stats = steal.get("stats", {})
    stolen = stats.get("delta.attrib.steal.tasksStolen", 0)
    requests = stats.get("delta.attrib.steal.requests", 0)
    grants = stats.get("delta.attrib.steal.grants", 0)
    speedup = (
        base["cycles"] / steal["cycles"] if steal["cycles"] > 0 else 0.0
    )

    print(
        f"### Work stealing ({base.get('workload', '?')}, "
        f"work-steal vs work)"
    )
    print()
    print("| config | cycles | tasks stolen | probes granted |")
    print("| --- | --- | --- | --- |")
    print(f"| work | {base['cycles']:,.0f} | | |")
    print(
        f"| work-steal | {steal['cycles']:,.0f} | {stolen:.0f} "
        f"| {grants:.0f}/{requests:.0f} |"
    )
    print()

    checks = [
        (speedup >= floor, f"speedup {speedup:.3f}x vs floor "
                           f"{floor:.2f}x"),
        (stolen > 0, f"{stolen:.0f} tasks stolen (must be > 0: an "
                     f"inert steal machine scores no speedup)"),
    ]
    failed = False
    for ok, desc in checks:
        verdict = "ok" if ok else "**FLOOR VIOLATED**"
        print(f"- `steal-imbalance`: {desc} — {verdict}")
        if not ok:
            failed = True
            annotate("FLOOR VIOLATED", f"steal-imbalance: {desc}")
    sys.exit(1 if failed else 0)


def check_spatial(floors_path, paths):
    """Gate the spatial-vs-static geomean speedup and per-workload
    DRAM-traffic savings against spatial-stream-geomean."""
    if not paths or len(paths) % 2 != 0:
        sys.exit("--spatial needs (static, spatial) file pairs")

    floor = load_floors(floors_path).get("spatial-stream-geomean")
    if floor is None:
        print(
            f"- `spatial-stream-geomean`: no floor configured in "
            f"{floors_path}, skipped",
            file=sys.stderr,
        )
        sys.exit(0)

    print("### Spatial mapping (spatial vs static, simulated cycles)")
    print()
    print(
        "| workload | static | spatial | speedup | DRAM lines saved "
        "| spills |"
    )
    print("| --- | --- | --- | --- | --- | --- |")

    failed = False
    ratios = []
    for static_path, spatial_path in zip(paths[::2], paths[1::2]):
        with open(static_path) as f:
            base = json.load(f)
        with open(spatial_path) as f:
            spat = json.load(f)
        wk = spat.get("workload", "?")
        for tag, run in (("static", base), ("spatial", spat)):
            if not run.get("correct", False):
                annotate(
                    "SPATIAL RUN INCORRECT",
                    f"{wk} {tag} run reports correct=false",
                )
                failed = True
        stats = spat.get("stats", {})
        saved = stats.get("delta.attrib.spatial.dramLinesSaved", 0)
        spills = stats.get("delta.spatial.spills", 0)
        ratio = (
            base["cycles"] / spat["cycles"]
            if spat["cycles"] > 0
            else 0.0
        )
        ratios.append(ratio)
        print(
            f"| {wk} | {base['cycles']:,.0f} | {spat['cycles']:,.0f} "
            f"| {ratio:.3f}x | {saved:,.0f} | {spills:.0f} |"
        )
        if saved <= 0:
            failed = True
            annotate(
                "FLOOR VIOLATED",
                f"spatial-stream-geomean: {wk} saved no DRAM lines "
                f"(an inert forwarder scores no speedup)",
            )
    print()

    geomean = (
        math.exp(sum(math.log(r) for r in ratios) / len(ratios))
        if all(r > 0 for r in ratios)
        else 0.0
    )
    ok = geomean >= floor
    verdict = "ok" if ok else "**FLOOR VIOLATED**"
    print(
        f"- `spatial-stream-geomean`: {geomean:.3f}x vs floor "
        f"{floor:.2f}x — {verdict}"
    )
    if not ok:
        failed = True
        annotate(
            "FLOOR VIOLATED",
            f"spatial-stream-geomean observed {geomean:.3f}x < floor "
            f"{floor:.2f}x",
        )
    sys.exit(1 if failed else 0)


def main():
    if len(sys.argv) == 5 and sys.argv[1] == "--steal":
        check_steal(sys.argv[2], sys.argv[3], sys.argv[4])
    if len(sys.argv) >= 3 and sys.argv[1] == "--spatial":
        check_spatial(sys.argv[2], sys.argv[3:])
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    with open(sys.argv[1]) as f:
        report = json.load(f)

    rate = {}  # benchmark family -> {ff: sim_cycles_per_sec}
    srate = {}  # sharded family -> {shard count: sim_cycles_per_sec}
    for b in report["benchmarks"]:
        name, _, arg = b["name"].partition("/")
        if arg.startswith("sh:"):
            srate.setdefault(name, {})[int(arg[3:])] = b["sim_cycles_per_sec"]
            continue
        ff = arg == "ff:1"
        rate.setdefault(name, {})[ff] = b["sim_cycles_per_sec"]

    speedup = {}
    incomplete = []  # families that cannot be scored, with the reason
    for name, r in sorted(rate.items()):
        if True not in r:
            incomplete.append(f"{name}: no ff:1 run in {sys.argv[1]}")
        elif False not in r:
            incomplete.append(f"{name}: no ff:0 run in {sys.argv[1]}")
        elif r[False] <= 0:
            incomplete.append(f"{name}: ff:0 rate is {r[False]}")
        else:
            speedup[name] = r[True] / r[False]

    shard_speedup = {}
    for name, r in sorted(srate.items()):
        if 1 not in r:
            incomplete.append(f"{name}: no sh:1 run in {sys.argv[1]}")
        elif 4 not in r:
            incomplete.append(f"{name}: no sh:4 run in {sys.argv[1]}")
        elif r[1] <= 0:
            incomplete.append(f"{name}: sh:1 rate is {r[1]}")
        else:
            shard_speedup[name] = r[4] / r[1]

    real = [s for n, s in speedup.items() if not n.startswith("BM_Synthetic")]
    geomean = math.exp(sum(math.log(s) for s in real) / len(real)) if real else 0.0

    shard_real = [
        s for n, s in shard_speedup.items() if n != "BM_ShardedBusy"
    ]
    shard_geomean = (
        math.exp(sum(math.log(s) for s in shard_real) / len(shard_real))
        if shard_real
        else 0.0
    )

    floors = load_floors(sys.argv[2])
    checks = [
        (
            "host-idle-speedup",
            speedup.get("BM_SyntheticIdle"),
            "BM_SyntheticIdle speedup",
        ),
        (
            "host-real-geomean",
            geomean if real else None,
            f"geomean over {len(real)} real-workload benches",
        ),
    ]

    num_cpus = report.get("context", {}).get("num_cpus", 0)
    shard_checks = [
        (
            "host-shards-busy",
            shard_speedup.get("BM_ShardedBusy"),
            "BM_ShardedBusy sh:4 / sh:1 speedup",
        ),
        (
            "host-shards-real-geomean",
            shard_geomean if shard_real else None,
            f"sh:4 / sh:1 geomean over {len(shard_real)} real sharded benches",
        ),
    ]
    if num_cpus >= 4:
        checks += shard_checks

    print("### Host throughput (bench_host, ff:1 vs ff:0)")
    print()
    print("| benchmark | ff:1 cycles/s | ff:0 cycles/s | speedup |")
    print("| --- | --- | --- | --- |")
    for name, r in sorted(rate.items()):
        print(
            f"| {name} | {r.get(True, 0):,.0f} | {r.get(False, 0):,.0f} "
            f"| {speedup.get(name, 0):.2f}x |"
        )
    print(f"| real-workload geomean | | | {geomean:.2f}x |")
    print()

    if srate:
        print("### Shard scaling (bench_host, sh:4 vs sh:1)")
        print()
        print("| benchmark | sh:1 cycles/s | sh:4 cycles/s | speedup |")
        print("| --- | --- | --- | --- |")
        for name, r in sorted(srate.items()):
            print(
                f"| {name} | {r.get(1, 0):,.0f} | {r.get(4, 0):,.0f} "
                f"| {shard_speedup.get(name, 0):.2f}x |"
            )
        print(f"| real-workload geomean | | | {shard_geomean:.2f}x |")
        print()

    if num_cpus < 4:
        print(
            f"- host-shards-* floors skipped: benchmark context reports "
            f"{num_cpus} CPUs (< 4); shard scaling needs cores to run on"
        )

    for reason in incomplete:
        print(f"- unscored benchmark — {reason}")

    failed = False
    for key, value, source in checks:
        floor = floors.get(key)
        if floor is None:
            print(
                f"- `{key}`: no floor configured in {sys.argv[2]}, skipped",
                file=sys.stderr,
            )
            continue
        if value is None:
            failed = True
            print(f"- `{key}`: **NO DATA** ({source}) vs floor {floor:.2f}x")
            annotate(
                "FLOOR UNSCORABLE",
                f"{key} has no observed value ({source}); "
                f"floor {floor:.2f}x",
            )
            continue
        ok = value >= floor
        failed |= not ok
        verdict = "ok" if ok else "**FLOOR VIOLATED**"
        print(f"- `{key}`: {value:.2f}x vs floor {floor:.2f}x — {verdict}")
        if not ok:
            annotate(
                "FLOOR VIOLATED",
                f"{key} observed {value:.2f}x < floor {floor:.2f}x "
                f"({source})",
            )
    sys.exit(1 if failed else 0)


if __name__ == "__main__":
    main()
