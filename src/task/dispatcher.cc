#include "task/dispatcher.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "mem/request.hh"

#include "sim/logging.hh"
#include "sim/stats.hh"
#include "spatial/spatial.hh"
#include "trace/trace.hh"

namespace ts
{

namespace
{

/** Unique pipe identity for a producer output port. */
std::uint64_t
pipeIdOf(TaskId uid, std::uint8_t port)
{
    return (static_cast<std::uint64_t>(uid) << 3) | port;
}

} // namespace

const char*
schedPolicyName(SchedPolicy p)
{
    switch (p) {
      case SchedPolicy::Static: return "static";
      case SchedPolicy::DynCount: return "dyncount";
      case SchedPolicy::WorkAware: return "workaware";
      case SchedPolicy::Spatial: return "spatial";
    }
    return "?";
}

bool
schedPolicyFromName(const std::string& s, SchedPolicy& out)
{
    if (s == "static") { out = SchedPolicy::Static; return true; }
    if (s == "dyncount") { out = SchedPolicy::DynCount; return true; }
    if (s == "workaware") { out = SchedPolicy::WorkAware; return true; }
    if (s == "spatial") { out = SchedPolicy::Spatial; return true; }
    return false;
}

Dispatcher::Dispatcher(Noc& noc, const MemImage& img,
                       const TaskTypeRegistry& registry,
                       const DispatcherConfig& cfg)
    : Ticked("dispatcher"), noc_(noc), img_(img), registry_(registry),
      cfg_(cfg)
{
    if (cfg_.laneNodes.empty())
        fatal("dispatcher needs at least one lane");
    laneQueued_.assign(cfg_.laneNodes.size(), 0);
    laneWork_.assign(cfg_.laneNodes.size(), 0.0);
    laneDispatched_.assign(cfg_.laneNodes.size(), 0);
    actualService_.assign(cfg_.laneNodes.size(), 0.0);
    shadowService_.assign(cfg_.laneNodes.size(), 0.0);
    stealShadowService_.assign(cfg_.laneNodes.size(), 0.0);
    spatialLaneBufUsed_.assign(cfg_.laneNodes.size(), 0);
    noc_.eject(cfg_.selfNode).addObserver(this);
}

void
Dispatcher::loadGraph(const TaskGraph& graph)
{
    graph.validate();
    TS_ASSERT(states_.empty(), "dispatcher already has a graph loaded");

    states_.resize(graph.numTasks());
    for (std::size_t i = 0; i < graph.numTasks(); ++i) {
        states_[i].inst = graph.task(static_cast<TaskId>(i));
        states_[i].workEst =
            registry_.estimateWork(img_, states_[i].inst);
    }
    edges_.reserve(graph.edges().size());
    for (const DepEdge& e : graph.edges()) {
        const std::size_t idx = edges_.size();
        edges_.push_back(EdgeState{e, false, false});
        states_[e.consumer].inEdges.push_back(idx);
        states_[e.consumer].remDeps++;
        states_[e.producer].outEdges.push_back(idx);
    }
    for (const SharedGroup& g : graph.groups())
        groups_.push_back(GroupState{g, false, 0});

    // Dependence levels (longest path from the roots), used by the
    // bulk-synchronous static-parallel mode.  Edges may point in
    // either uid direction now, so walk a topological order.
    std::uint32_t maxLevel = 0;
    for (const TaskId i : graph.topoOrder()) {
        std::uint32_t lvl = 0;
        for (std::size_t ei : states_[i].inEdges) {
            lvl = std::max(lvl,
                           states_[edges_[ei].e.producer].level + 1);
        }
        states_[i].level = lvl;
        maxLevel = std::max(maxLevel, lvl);
    }
    levelRemaining_.assign(maxLevel + 1, 0);
    for (const TaskState& ts : states_)
        ++levelRemaining_[ts.level];

    for (std::size_t i = 0; i < states_.size(); ++i) {
        if (states_[i].remDeps == 0)
            readyQ_.push_back(static_cast<TaskId>(i));
    }
}

void
Dispatcher::processInbox(Tick now)
{
    auto& inbox = noc_.eject(cfg_.selfNode);
    while (!inbox.empty()) {
        Packet pkt = inbox.pop();
        switch (pkt.kind) {
          case PktKind::TaskStart: {
            const auto msg = std::any_cast<StartMsg>(pkt.payload);
            TaskState& ts = states_.at(msg.uid);
            ts.started = true;
            ts.startAt = now;
            if (trace::on()) {
                auto* t = trace::active();
                t->instant(t->track(name()), "taskStart",
                           trace::args("uid", msg.uid, "lane",
                                       msg.lane));
            }
            break;
          }
          case PktKind::TaskComplete:
            onComplete(std::any_cast<CompleteMsg>(pkt.payload), now);
            break;
          case PktKind::TaskSpawn:
            onSpawn(std::any_cast<SpawnMsg>(pkt.payload), now);
            break;
          case PktKind::StealNotify:
            onStealNotify(std::any_cast<StealNotifyMsg>(pkt.payload),
                          now);
            break;
          default:
            panic("dispatcher received unexpected packet kind");
        }
    }
}

void
Dispatcher::onComplete(const CompleteMsg& msg, Tick now)
{
    TaskState& ts = states_.at(msg.uid);
    TS_ASSERT(ts.dispatched && !ts.completed);
    // A stolen task can complete on its thief lane before the
    // victim's StealNotify reaches us (different NoC paths); apply
    // the ownership move implicitly so queue bookkeeping balances.
    if (ts.lane != static_cast<std::int32_t>(msg.lane))
        applyStealMove(msg.uid, msg.lane);
    ts.completed = true;
    ts.endAt = now;
    ++completed_;

    // Attribution: charge this task's measured service time to its
    // actual lane, to the lane the static owner-compute baseline
    // would have used, and to the dispatch-time lane (the pre-steal
    // shadow); the differences in per-lane maxima are the imbalance
    // the dispatch policy avoided and the steal protocol recovered.
    const auto service =
        static_cast<double>(now - (ts.started ? ts.startAt : now));
    actualService_[msg.lane] += service;
    shadowService_[msg.uid % cfg_.laneNodes.size()] += service;
    TS_ASSERT(ts.origLane >= 0);
    stealShadowService_[ts.origLane] += service;

    // Overlap recovered by pipelining: consumers of this producer's
    // activated pipes that already started executed concurrently
    // with the producer — cycles a barrier dependence would have
    // serialized.
    for (std::size_t ei : ts.outEdges) {
        const EdgeState& es = edges_[ei];
        if (es.e.kind != DepKind::Pipeline || !es.activated)
            continue;
        const TaskState& cs = states_[es.e.consumer];
        if (!cs.started)
            continue;
        const Tick overlapEnd =
            cs.completed ? std::min(now, cs.endAt) : now;
        if (overlapEnd > cs.startAt) {
            pipeOverlapCycles_ +=
                static_cast<double>(overlapEnd - cs.startAt);
        }
    }
    if (trace::on()) {
        auto* t = trace::active();
        t->instant(t->track(name()), "taskComplete",
                   trace::args("uid", msg.uid, "lane", msg.lane));
        t->counter("dispatcher.tasks", "completed",
                   static_cast<double>(completed_));
    }
    TS_ASSERT(levelRemaining_[ts.level] > 0);
    --levelRemaining_[ts.level];
    while (curLevel_ < levelRemaining_.size() &&
           levelRemaining_[curLevel_] == 0) {
        ++curLevel_;
    }
    TS_ASSERT(ts.lane >= 0);
    TS_ASSERT(laneQueued_[ts.lane] > 0);
    --laneQueued_[ts.lane];
    laneWork_[ts.lane] -= ts.workEst;
    spatialRelease(msg.uid);

    for (std::size_t ei : ts.outEdges) {
        EdgeState& es = edges_[ei];
        TaskState& cs = states_[es.e.consumer];
        if (cs.dispatched)
            continue; // co-dispatched via an activated pipeline
        TS_ASSERT(cs.remDeps > 0);
        if (--cs.remDeps == 0) {
            cs.readyAt = now;
            readyQ_.push_back(es.e.consumer);
        }
    }
}

void
Dispatcher::onSpawn(const SpawnMsg& msg, Tick now)
{
    // Per-path NoC FIFO ordering guarantees the spawn precedes the
    // spawner's own CompleteMsg.
    // NOTE: states_ grows below; never hold a TaskState reference
    // across the push_backs (vector reallocation).
    TS_ASSERT(states_.at(msg.spawner).dispatched &&
                  !states_[msg.spawner].completed,
              "spawn from task ", msg.spawner,
              " arrived outside its execution window");
    const SpawnSet& set = msg.set;
    const std::size_t base = states_.size();

    const auto resolve = [&](std::int64_t ref) -> TaskId {
        if (ref >= 0) {
            TS_ASSERT(static_cast<std::size_t>(ref) < base,
                      "spawn set references unknown task ", ref);
            return static_cast<TaskId>(ref);
        }
        const std::size_t k = static_cast<std::size_t>(-ref) - 1;
        TS_ASSERT(k < set.tasks.size(),
                  "spawn set references unknown local task ", ref);
        return static_cast<TaskId>(base + k);
    };

    // Capture the spawner's pending successors *before* new edges are
    // wired: transfer covers the edges that predate this spawn.
    std::vector<std::size_t> transferable;
    if (set.transferTo != SpawnSet::kNoTransfer) {
        for (std::size_t ei : states_[msg.spawner].outEdges) {
            const EdgeState& es = edges_[ei];
            if (es.activated || states_[es.e.consumer].dispatched)
                continue;
            transferable.push_back(ei);
        }
    }

    for (const SpawnSet::Task& t : set.tasks) {
        TaskState ns;
        ns.inst.uid = static_cast<TaskId>(states_.size());
        ns.inst.type = t.type;
        ns.inst.inputs = t.inputs;
        ns.inst.outputs = t.outputs;
        ns.inst.inputGroup.assign(t.inputs.size(), kNoGroup);
        ns.workEst = registry_.estimateWork(img_, ns.inst);
        ns.readyAt = now;
        states_.push_back(std::move(ns));
    }
    tasksSpawned_ += set.tasks.size();
    spatialPlanSpawned(msg.spawner, base, set.tasks.size(),
                       set.transferTo != SpawnSet::kNoTransfer
                           ? static_cast<std::int64_t>(
                                 resolve(set.transferTo))
                           : -1);

    for (const SpawnSet::Edge& e : set.edges) {
        const TaskId p = resolve(e.producer);
        const TaskId c = resolve(e.consumer);
        TS_ASSERT(p != c, "spawned self-dependence on task ", p);
        TaskState& cs = states_[c];
        // The oneTBB dynamic-dependence contract: predecessors may
        // only be added to tasks that have not started executing.
        // Producers may be running or even complete.
        TS_ASSERT(!cs.dispatched,
                  "dynamic edge targets already-dispatched task ", c);
        const std::size_t idx = edges_.size();
        edges_.push_back(
            EdgeState{DepEdge{p, c, e.kind, e.producerPort,
                              e.consumerPort},
                      false, false});
        cs.inEdges.push_back(idx);
        states_[p].outEdges.push_back(idx);
        if (!states_[p].completed) {
            ++cs.remDeps;
        } else if (e.kind == DepKind::Pipeline) {
            // Nothing left to forward; the consumer reads the memory
            // fallback its descriptor names.
            edges_[idx].resolved = true;
            ++pipesDegraded_;
        }
    }

    if (set.transferTo != SpawnSet::kNoTransfer) {
        const TaskId heir = resolve(set.transferTo);
        TS_ASSERT(heir != msg.spawner,
                  "cannot transfer successors to the spawner itself");
        TS_ASSERT(!states_[heir].completed);
        for (const std::size_t ei : transferable) {
            EdgeState& es = edges_[ei];
            TS_ASSERT(es.e.consumer != heir,
                      "successor transfer would make task ", heir,
                      " depend on itself");
            es.e.producer = heir;
            // Forwarded stream identity does not survive a producer
            // change; the consumer falls back to memory.
            if (es.e.kind == DepKind::Pipeline) {
                es.e.kind = DepKind::Barrier;
                es.e.producerPort = 0;
                es.e.consumerPort = 0;
            }
            states_[heir].outEdges.push_back(ei);
        }
        if (!transferable.empty()) {
            auto& out = states_[msg.spawner].outEdges;
            out.erase(std::remove_if(
                          out.begin(), out.end(),
                          [&](std::size_t ei) {
                              return std::find(transferable.begin(),
                                               transferable.end(),
                                               ei) !=
                                     transferable.end();
                          }),
                      out.end());
        }
    }

    checkLiveAcyclic();

    // Dependence levels of the new tasks (bulk-sync bookkeeping).
    // Local producers may appear in any order, so iterate to a
    // fixpoint (bounded by the set size; spawn sets are small).
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t k = 0; k < set.tasks.size(); ++k) {
            TaskState& ns = states_[base + k];
            std::uint32_t lvl = 0;
            for (std::size_t ei : ns.inEdges) {
                lvl = std::max(
                    lvl, states_[edges_[ei].e.producer].level + 1);
            }
            if (lvl > ns.level) {
                ns.level = lvl;
                changed = true;
            }
        }
    }
    for (std::size_t k = 0; k < set.tasks.size(); ++k) {
        TaskState& ns = states_[base + k];
        if (ns.level >= levelRemaining_.size())
            levelRemaining_.resize(ns.level + 1, 0);
        ++levelRemaining_[ns.level];
        if (ns.remDeps == 0)
            readyQ_.push_back(static_cast<TaskId>(base + k));
    }

    if (trace::on()) {
        auto* t = trace::active();
        t->instant(t->track(name()), "taskSpawn",
                   trace::args("spawner", msg.spawner, "tasks",
                               set.tasks.size(), "edges",
                               set.edges.size()));
    }
}

void
Dispatcher::applyStealMove(TaskId uid, std::uint32_t toLane)
{
    TaskState& ts = states_.at(uid);
    TS_ASSERT(ts.dispatched && !ts.completed && ts.lane >= 0);
    const auto from = static_cast<std::uint32_t>(ts.lane);
    if (from == toLane)
        return;
    TS_ASSERT(laneQueued_[from] > 0);
    --laneQueued_[from];
    ++laneQueued_[toLane];
    laneWork_[from] -= ts.workEst;
    laneWork_[toLane] += ts.workEst;
    ts.lane = static_cast<std::int32_t>(toLane);
    ++tasksStolen_;
    stealHops_ += noc_.hopDistance(cfg_.laneNodes[from],
                                   cfg_.laneNodes[toLane]);
    if (trace::on()) {
        auto* t = trace::active();
        t->instant(t->track(name()), "taskStolen",
                   trace::args("uid", uid, "from", from, "to",
                               toLane));
    }
}

void
Dispatcher::onStealNotify(const StealNotifyMsg& msg, Tick now)
{
    (void)now;
    for (const TaskId uid : msg.uids) {
        const TaskState& ts = states_.at(uid);
        // The thief's CompleteMsg may have beaten this notify here
        // (onComplete already applied the move), or the task may
        // even be done; both are benign.
        if (ts.completed ||
            ts.lane == static_cast<std::int32_t>(msg.toLane)) {
            continue;
        }
        applyStealMove(uid, msg.toLane);
    }
}

void
Dispatcher::checkLiveAcyclic() const
{
    // Kahn over the whole dependence state; completed tasks cannot
    // sit on a cycle (their ancestors completed first), so one global
    // count suffices and panics exactly when the live subgraph has a
    // cycle.
    std::vector<std::uint32_t> indeg(states_.size(), 0);
    for (const EdgeState& es : edges_)
        ++indeg[es.e.consumer];
    std::deque<TaskId> frontier;
    for (std::size_t i = 0; i < states_.size(); ++i) {
        if (indeg[i] == 0)
            frontier.push_back(static_cast<TaskId>(i));
    }
    std::size_t seen = 0;
    while (!frontier.empty()) {
        const TaskId at = frontier.front();
        frontier.pop_front();
        ++seen;
        for (const std::size_t ei : states_[at].outEdges) {
            const TaskId next = edges_[ei].e.consumer;
            if (--indeg[next] == 0)
                frontier.push_back(next);
        }
    }
    TS_ASSERT(seen == states_.size(),
              "dynamic spawn closed a dependence cycle (",
              states_.size() - seen, " tasks on cycles)");
}

std::optional<std::vector<TaskId>>
Dispatcher::tryJoinClosure(TaskId c, std::vector<TaskId> set,
                           unsigned depth) const
{
    if (depth > 64)
        return std::nullopt;
    if (std::binary_search(set.begin(), set.end(), c))
        return set;
    const TaskState& cs = states_[c];
    if (cs.dispatched || cs.completed)
        return std::nullopt;

    set.insert(std::lower_bound(set.begin(), set.end(), c), c);
    for (std::size_t ei : cs.inEdges) {
        const EdgeState& es = edges_[ei];
        const TaskState& ps = states_[es.e.producer];
        if (ps.completed)
            continue;
        // A not-yet-complete producer is tolerable only when the data
        // will flow through an activated pipe, which requires the
        // producer itself to join this batch (recursively) and to be
        // able to forward (builtin bodies cannot).
        if (es.e.kind == DepKind::Pipeline &&
            !registry_.type(ps.inst.type).isBuiltin()) {
            if (auto joined = tryJoinClosure(es.e.producer,
                                             std::move(set),
                                             depth + 1)) {
                set = std::move(*joined);
                continue;
            }
            return std::nullopt;
        }
        return std::nullopt;
    }
    return set;
}

bool
Dispatcher::soonJoinable(TaskId c, unsigned depth) const
{
    // Will c become joinable without any new dispatch decisions?
    // True when every unsatisfied dependence is on a task that is
    // already executing (dispatched) or will be covered by a pipe
    // from a task in the same situation.
    if (depth > 64)
        return false;
    const TaskState& cs = states_[c];
    if (cs.dispatched || cs.completed)
        return false;
    for (std::size_t ei : cs.inEdges) {
        const EdgeState& es = edges_[ei];
        const TaskState& ps = states_[es.e.producer];
        if (ps.completed || ps.dispatched)
            continue;
        if (es.e.kind == DepKind::Pipeline &&
            !registry_.type(ps.inst.type).isBuiltin() &&
            soonJoinable(es.e.producer, depth + 1)) {
            continue;
        }
        return false;
    }
    return true;
}

std::vector<TaskId>
Dispatcher::pipelineClosure(TaskId root) const
{
    // Grow the co-dispatch set along pipeline edges.  Consumers join
    // when every unsatisfied dependence is itself a pipeline edge
    // whose producer joins the same batch (ready sibling subtrees are
    // pulled in transitively), so recovered pipelines span whole
    // ready regions of the task graph, not just linear chains.
    std::vector<TaskId> set{root};
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = 0; i < set.size(); ++i) {
            const TaskState& xs = states_[set[i]];
            for (std::size_t ei : xs.outEdges) {
                const EdgeState& es = edges_[ei];
                if (es.e.kind != DepKind::Pipeline)
                    continue;
                if (std::binary_search(set.begin(), set.end(),
                                       es.e.consumer)) {
                    continue;
                }
                if (auto joined =
                        tryJoinClosure(es.e.consumer, set, 0)) {
                    set = std::move(*joined);
                    changed = true;
                }
            }
        }
    }
    return set;
}

std::int32_t
Dispatcher::pickLane(TaskId id,
                     const std::vector<std::uint32_t>& extraLoad,
                     const std::vector<double>& extraWork) const
{
    const std::size_t n = cfg_.laneNodes.size();
    auto available = [&](std::size_t l) {
        return laneQueued_[l] + extraLoad[l] < cfg_.laneQueueCap;
    };

    switch (cfg_.policy) {
      case SchedPolicy::Static: {
        const std::size_t l = id % n;
        return available(l) ? static_cast<std::int32_t>(l) : -1;
      }
      case SchedPolicy::DynCount: {
        std::int32_t best = -1;
        std::uint32_t bestLoad = 0;
        for (std::size_t l = 0; l < n; ++l) {
            if (!available(l))
                continue;
            const std::uint32_t load = laneQueued_[l] + extraLoad[l];
            if (best < 0 || load < bestLoad) {
                best = static_cast<std::int32_t>(l);
                bestLoad = load;
            }
        }
        return best;
      }
      case SchedPolicy::WorkAware: {
        std::int32_t best = -1;
        double bestWork = 0;
        for (std::size_t l = 0; l < n; ++l) {
            if (!available(l))
                continue;
            const double w = laneWork_[l] + extraWork[l];
            if (best < 0 || w < bestWork) {
                best = static_cast<std::int32_t>(l);
                bestWork = w;
            }
        }
        return best;
      }
      case SchedPolicy::Spatial: {
        // Hard pinning: forwarding decisions already named this lane
        // as the consumer's landing site, so the task waits for a
        // queue slot rather than migrate.
        const std::size_t l = spatialPlannedLane(id);
        return available(l) ? static_cast<std::int32_t>(l) : -1;
      }
    }
    return -1;
}

std::uint32_t
Dispatcher::spatialPlannedLane(TaskId id) const
{
    if (id < plannedLane_.size() && plannedLane_[id] >= 0)
        return static_cast<std::uint32_t>(plannedLane_[id]);
    return id % static_cast<std::uint32_t>(cfg_.laneNodes.size());
}

void
Dispatcher::spatialPlanSpawned(TaskId spawner, std::size_t base,
                               std::size_t count, std::int64_t heir)
{
    if (cfg_.policy != SchedPolicy::Spatial || count == 0)
        return;
    if (plannedLane_.size() < base)
        plannedLane_.resize(base, -1);
    plannedLane_.resize(base + count, -1);

    // The transfer heir inherits the spawner's planned lane: the AOT
    // plan put the spawner where its (now transferred) successors
    // want their producer, and sibling outputs forward into the heir
    // over the NoC regardless of where the siblings land.  Escape
    // hatch: when the inherited lane is overloaded relative to the
    // mean, the heir moves to the least-loaded lane (lowest index
    // wins, keeping the decision deterministic).
    std::uint32_t inherit = spatialPlannedLane(spawner);
    double mean = 0.0;
    for (const double w : laneWork_)
        mean += w;
    mean /= static_cast<double>(laneWork_.size());
    if (laneWork_[inherit] > cfg_.spatialRemapFactor * mean) {
        std::uint32_t best = 0;
        for (std::uint32_t l = 1; l < laneWork_.size(); ++l) {
            if (laneWork_[l] < laneWork_[best])
                best = l;
        }
        if (best != inherit) {
            inherit = best;
            ++spatialRemaps_;
        }
    }

    // Non-heir siblings are fresh parallel work; serializing them on
    // the spawner's lane would forfeit the recursion's parallelism.
    // Spread them over the least-loaded lanes, tracking this call's
    // own placements by estimated work (deterministic: laneWork_ and
    // workEst are simulated state).
    std::vector<double> load = laneWork_;
    const bool heirLocal =
        heir >= 0 && static_cast<std::size_t>(heir) >= base &&
        static_cast<std::size_t>(heir) < base + count;
    if (heirLocal) {
        plannedLane_[static_cast<std::size_t>(heir)] =
            static_cast<std::int32_t>(inherit);
        load[inherit] +=
            states_[static_cast<std::size_t>(heir)].workEst;
    }
    for (std::size_t k = 0; k < count; ++k) {
        const std::size_t id = base + k;
        if (heirLocal && static_cast<std::size_t>(heir) == id)
            continue;
        std::uint32_t best = 0;
        for (std::uint32_t l = 1; l < load.size(); ++l) {
            if (load[l] < load[best])
                best = l;
        }
        plannedLane_[id] = static_cast<std::int32_t>(best);
        load[best] += states_[id].workEst;
    }
}

void
Dispatcher::spatialResolveProducer(TaskId id, DispatchMsg& pm)
{
    const TaskState& ps = states_[id];
    const bool builtin =
        registry_.type(ps.inst.type).isBuiltin();
    for (std::size_t oi = 0; oi < pm.outputs.size(); ++oi) {
        WriteDesc& out = pm.outputs[oi];
        if (!spatial::forwardableOutput(out))
            continue;
        // Builtin bodies only stream outputs[0] through the timed
        // write path (see TaskUnit::BuiltinWrite).
        if (builtin && oi != 0)
            continue;

        // Forward to every successor whose eligible input covers this
        // output; suppress the DRAM write-back only when *all*
        // successors that touch the range were forwarded (an
        // un-analyzable reader keeps the round-trip).
        bool touched = false;
        bool forwardedAll = true;
        std::vector<std::uint64_t> fwdGroups; // dedupe multi-edges
        for (std::size_t ei : ps.outEdges) {
            const TaskId c = edges_[ei].e.consumer;
            const TaskState& cs = states_[c];
            if (cs.dispatched || cs.completed)
                continue;
            for (std::size_t p = 0; p < cs.inst.inputs.size(); ++p) {
                const StreamDesc& in = cs.inst.inputs[p];
                if (in.dataSpace != Space::Dram)
                    continue;
                const bool eligible =
                    spatial::landingEligibleInput(in) &&
                    cs.inst.inputGroup[p] == kNoGroup;
                if (!eligible) {
                    // Gather/CSR reads have no statically known
                    // range: assume they may touch this output.
                    if (in.kind != StreamDesc::Kind::Linear ||
                        spatial::outputFeedsInput(out, in)) {
                        touched = true;
                        forwardedAll = false;
                    }
                    continue;
                }
                if (!spatial::outputFeedsInput(out, in))
                    continue;
                touched = true;
                const std::uint64_t g = spatial::landingGroup(
                    c, static_cast<std::uint8_t>(p));
                if (std::find(fwdGroups.begin(), fwdGroups.end(),
                              g) != fwdGroups.end()) {
                    continue;
                }
                auto it = spatialGroups_.find(g);
                if (it == spatialGroups_.end()) {
                    SpatialGroup sg;
                    sg.consumer = c;
                    sg.port = static_cast<std::uint8_t>(p);
                    sg.lane = static_cast<std::int32_t>(
                        spatialPlannedLane(c));
                    sg.bufWords = spatial::landingBufWords(in);
                    if (spatialLaneBufUsed_[sg.lane] + sg.bufWords >
                        cfg_.spatialBufferWords) {
                        sg.spilled = true;
                        ++spatialSpills_;
                    } else {
                        spatialLaneBufUsed_[sg.lane] += sg.bufWords;
                        sg.allocated = true;
                        ++spatialGroupsAllocated_;
                        spatialBufPeak_ =
                            std::max(spatialBufPeak_,
                                     spatialLaneBufUsed_[sg.lane]);
                    }
                    it = spatialGroups_.emplace(g, sg).first;
                }
                if (it->second.spilled) {
                    forwardedAll = false;
                    continue;
                }
                out.spatialDsts.push_back(WriteDesc::SpatialDst{
                    cfg_.laneNodes[it->second.lane], g});
                ++it->second.expectedDones;
                ++spatialForwards_;
                fwdGroups.push_back(g);
                if (trace::on()) {
                    auto* t = trace::active();
                    t->instant(t->track(name()), "spatialForward",
                               trace::args("producer", id, "consumer",
                                           c));
                }
            }
        }
        if (touched && forwardedAll && !out.spatialDsts.empty())
            out.spatialSuppress = true;
    }
}

void
Dispatcher::spatialRewriteConsumer(TaskId id, DispatchMsg& m)
{
    for (std::size_t p = 0; p < m.inputs.size(); ++p) {
        const std::uint64_t g = spatial::landingGroup(
            id, static_cast<std::uint8_t>(p));
        const auto it = spatialGroups_.find(g);
        if (it == spatialGroups_.end() || it->second.spilled ||
            it->second.expectedDones == 0) {
            continue;
        }
        m.inputs[p].spatialLanding = true;
        m.waitSpatial.push_back(
            SpatialWait{g, it->second.expectedDones});
    }
}

void
Dispatcher::spatialRelease(TaskId uid)
{
    const std::uint64_t lo = static_cast<std::uint64_t>(uid) << 3;
    auto it = spatialGroups_.lower_bound(lo);
    while (it != spatialGroups_.end() && it->first <= (lo | 7)) {
        if (it->second.allocated) {
            TS_ASSERT(spatialLaneBufUsed_[it->second.lane] >=
                      it->second.bufWords);
            spatialLaneBufUsed_[it->second.lane] -=
                it->second.bufWords;
        }
        it = spatialGroups_.erase(it);
    }
}

void
Dispatcher::enqueueDispatch(TaskId id, DispatchMsg msg)
{
    TaskState& ts = states_[id];
    TS_ASSERT(ts.lane >= 0);
    ts.dispatched = true;
    ts.origLane = ts.lane;
    ++laneQueued_[ts.lane];
    laneWork_[ts.lane] += ts.workEst;
    ++laneDispatched_[ts.lane];
    if (trace::on()) {
        auto* t = trace::active();
        t->instant(t->track(name()), "dispatch",
                   trace::args("uid", id, "lane", ts.lane, "workEst",
                               ts.workEst));
    }

    Packet pkt;
    pkt.src = cfg_.selfNode;
    pkt.dstMask = Packet::unicast(cfg_.laneNodes[ts.lane]);
    pkt.kind = PktKind::TaskDispatch;
    pkt.sizeWords = 4 + 2 * static_cast<std::uint32_t>(
                            msg.inputs.size() + msg.outputs.size());
    pkt.payload = std::move(msg);
    sendQ_.push_back(std::move(pkt));
}

void
Dispatcher::fireGroup(std::uint32_t groupId)
{
    GroupState& gs = groups_.at(groupId);
    TS_ASSERT(!gs.fired);
    gs.fired = true;
    ++groupsFired_;
    if (trace::on()) {
        auto* t = trace::active();
        t->instant(t->track(name()), "groupFire",
                   trace::args("group", groupId, "words", gs.g.words));
    }

    gs.landingOffset = landingBrk_;
    landingBrk_ += divCeil<std::uint64_t>(gs.g.words, lineWords) *
                   lineWords;
    if (landingBrk_ > cfg_.spmLandingWords) {
        fatal("scratchpad shared-landing space exhausted (",
              landingBrk_, " > ", cfg_.spmLandingWords,
              " words); enlarge the scratchpad or shrink groups");
    }

    // The range is multicast into every lane's scratchpad, so any
    // member — whenever it is dispatched, to whichever lane — can
    // read the landed copy.
    std::uint64_t laneMask = 0;
    for (const std::uint32_t node : cfg_.laneNodes)
        laneMask |= Packet::unicast(node);

    GroupSetupMsg setup{groupId, gs.g.rangeBase, gs.g.words,
                        gs.landingOffset};
    Packet sp;
    sp.src = cfg_.selfNode;
    sp.dstMask = laneMask;
    sp.kind = PktKind::SharedFill;
    sp.sizeWords = 4;
    sp.payload = setup;
    sendQ_.push_back(std::move(sp));

    const Addr firstLine = lineAlign(gs.g.rangeBase);
    const Addr lastByte = gs.g.rangeBase + gs.g.words * wordBytes - 1;
    const std::uint64_t lines =
        (lineAlign(lastByte) - firstLine) / lineBytes + 1;
    for (std::uint64_t l = 0; l < lines; ++l) {
        MemReq req;
        req.lineAddr = firstLine + l * lineBytes;
        req.write = false;
        req.srcNode = cfg_.selfNode;
        req.multicastMask = laneMask;
        req.tag = sharedFillTag(groupId);
        Packet fp;
        fp.src = cfg_.selfNode;
        fp.dstMask = Packet::unicast(cfg_.memNode);
        fp.kind = PktKind::MemReq;
        fp.sizeWords = 1;
        fp.payload = req;
        sendQ_.push_back(std::move(fp));
        ++fillLinesRequested_;
    }
}

bool
Dispatcher::tryDispatchHead(Tick now)
{
    (void)now;
    const TaskId root = readyQ_.front();
    TaskState& rs = states_[root];
    if (rs.dispatched || rs.completed) {
        readyQ_.pop_front();
        return true;
    }
    // A dynamic edge may have targeted this task after it became
    // ready; drop the stale entry — it re-enters the queue when the
    // new dependence resolves.
    if (rs.remDeps > 0) {
        readyQ_.pop_front();
        return true;
    }

    // Bulk-synchronous mode: wait for the level barrier.
    if (cfg_.bulkSynchronous && rs.level > curLevel_) {
        readyQ_.pop_front();
        readyQ_.push_back(root);
        return false;
    }

    // 1. Pipeline closure (TaskStream) or the single task (baseline).
    // Spatial dispatch is always solo: forwarding happens through
    // landing zones, not co-dispatched pipe batches.
    std::vector<TaskId> closure =
        (cfg_.enablePipeline && cfg_.policy != SchedPolicy::Spatial)
            ? pipelineClosure(root)
            : std::vector<TaskId>{root};

    // Cap the batch at the total free queue slots (members may share
    // lanes; intra-batch uid order keeps per-lane queues topological,
    // which makes sharing deadlock-free).
    std::uint32_t freeSlots = 0;
    for (std::size_t l = 0; l < cfg_.laneNodes.size(); ++l) {
        freeSlots += cfg_.laneQueueCap > laneQueued_[l]
                         ? cfg_.laneQueueCap - laneQueued_[l]
                         : 0;
    }
    if (freeSlots == 0)
        return false;
    if (closure.size() > freeSlots)
        closure.resize(freeSlots);

    // Coalescing hold: if the root still has pipeline consumers that
    // could not join this closure but will become joinable without
    // further dispatch decisions (their blockers are all running),
    // hold the root.  The lanes are busy with exactly those blockers,
    // so holding costs nothing and lets whole pipeline regions
    // co-dispatch.
    // Holding is only free while every lane has work; if any lane
    // is idle, dispatch immediately.
    bool allLanesBusy = true;
    for (std::size_t l = 0; l < cfg_.laneNodes.size(); ++l) {
        if (laneQueued_[l] == 0) {
            allLanesBusy = false;
            break;
        }
    }
    const Tick waited = now - rs.readyAt;
    const bool withinHold =
        (allLanesBusy && waited < cfg_.pipelineHoldCycles) ||
        waited < cfg_.pipelineGraceCycles;
    if (cfg_.enablePipeline && cfg_.policy != SchedPolicy::Spatial &&
        withinHold) {
        for (const TaskId member : closure) {
            for (std::size_t ei : states_[member].outEdges) {
                const EdgeState& es = edges_[ei];
                if (es.e.kind != DepKind::Pipeline || es.resolved)
                    continue;
                if (std::binary_search(closure.begin(), closure.end(),
                                       es.e.consumer)) {
                    continue;
                }
                if (soonJoinable(es.e.consumer, 0)) {
                    readyQ_.pop_front();
                    readyQ_.push_back(root);
                    return true;
                }
            }
        }
    }

    // 2. Assign lanes to closure members in uid (topological) order;
    // members may share lanes.  If capacity runs out, the
    // consumer-side suffix is dropped — safe, because a dropped task
    // can never be the producer of a kept one.
    std::vector<std::uint32_t> extraLoad(cfg_.laneNodes.size(), 0);
    std::vector<double> extraWork(cfg_.laneNodes.size(), 0.0);
    std::vector<TaskId> placed;
    for (std::size_t i = 0; i < closure.size(); ++i) {
        const TaskId id = closure[i];
        const std::int32_t lane = pickLane(id, extraLoad, extraWork);
        if (lane < 0) {
            if (i == 0)
                return false; // not even the root fits: retry later
            closure.resize(i);
            break;
        }
        states_[id].lane = lane;
        ++extraLoad[lane];
        extraWork[lane] += states_[id].workEst;
        placed.push_back(id);
    }

    // (Shared-read groups no longer require co-dispatch: fills go to
    // every lane, so members are rewritten whenever they dispatch —
    // see step 4.)

    // 4. Build messages with pipeline/shared rewrites.
    std::map<TaskId, DispatchMsg> msgs;
    for (TaskId id : placed) {
        DispatchMsg m;
        m.uid = id;
        m.type = states_[id].inst.type;
        m.inputs = states_[id].inst.inputs;
        m.outputs = states_[id].inst.outputs;
        m.workEst = states_[id].workEst;
        m.dispatchedAt = now;
        // Solo dispatches are migratable between lanes: no pipeline
        // co-dispatch batch whose intra-lane uid order must survive.
        // Spatial tasks never migrate — the plan pinned their lane.
        m.stealable = cfg_.steal != StealPolicy::None &&
                      placed.size() == 1 &&
                      cfg_.policy != SchedPolicy::Spatial;
        msgs.emplace(id, std::move(m));
    }

    auto inBatch = [&](TaskId id) {
        return msgs.count(id) != 0;
    };

    // Pipeline edge resolution (only closure members carry them).
    // Two consumers of the same producer port share one forwarded
    // stream, so they must sit on different lanes; a duplicate-lane
    // consumer degrades to the memory fallback.
    std::map<std::uint64_t, std::uint64_t> pipeLanesUsed;
    for (TaskId id : closure) {
        if (!inBatch(id))
            continue;
        for (std::size_t ei : states_[id].outEdges) {
            EdgeState& es = edges_[ei];
            if (es.e.kind != DepKind::Pipeline || es.resolved)
                continue;
            es.resolved = true;
            const TaskId c = es.e.consumer;
            bool canForward =
                !registry_.type(states_[id].inst.type).isBuiltin();
            if (canForward && inBatch(c)) {
                const std::uint64_t key =
                    pipeIdOf(id, es.e.producerPort);
                const std::uint64_t laneBit =
                    std::uint64_t{1} << states_[c].lane;
                if (pipeLanesUsed[key] & laneBit)
                    canForward = false; // same-lane stream collision
                else
                    pipeLanesUsed[key] |= laneBit;
            }
            if (cfg_.enablePipeline && inBatch(c) && canForward) {
                es.activated = true;
                ++pipesActivated_;
                if (trace::on()) {
                    auto* t = trace::active();
                    t->instant(t->track(name()), "pipeActivated",
                               trace::args("producer", id, "consumer",
                                           c));
                }
                const std::uint64_t pid = pipeIdOf(id, es.e.producerPort);
                DispatchMsg& pm = msgs.at(id);
                WriteDesc& out = pm.outputs.at(es.e.producerPort);
                out.pipeDstMask |= Packet::unicast(
                    cfg_.laneNodes[states_[c].lane]);
                out.pipeId = pid;
                DispatchMsg& cm = msgs.at(c);
                cm.inputs.at(es.e.consumerPort) =
                    StreamDesc::pipeIn(pid);
                cm.releasePipes.push_back(pid);
            } else {
                ++pipesDegraded_;
                if (trace::on()) {
                    auto* t = trace::active();
                    t->instant(t->track(name()), "pipeDegraded",
                               trace::args("producer", id, "consumer",
                                           c));
                }
            }
        }
    }

    // Shared-read rewrites: fire each referenced group once, then
    // point the member's input at the scratchpad landing.
    if (cfg_.enableMulticast) {
        for (TaskId id : placed) {
            const TaskInstance& inst = states_[id].inst;
            DispatchMsg& mm = msgs.at(id);
            for (std::size_t port = 0; port < inst.inputs.size();
                 ++port) {
                const std::uint32_t gId = inst.inputGroup[port];
                if (gId == kNoGroup)
                    continue;
                GroupState& gs = groups_.at(gId);
                if (!gs.fired)
                    fireGroup(gId);
                StreamDesc& d = mm.inputs[port];
                // Unicast-replay cost of this member's read, had the
                // range not been multicast into every scratchpad.
                mcastUnicastLinesEquiv_ += divCeil<std::uint64_t>(
                    d.elementCount(img_), lineWords);
                d.dataSpace = Space::Spm;
                d.dataBase = gs.landingOffset +
                             (d.dataBase - gs.g.rangeBase) / wordBytes;
                TS_ASSERT(mm.waitGroup == kNoGroup ||
                              mm.waitGroup == gId,
                          "a task may subscribe to one group");
                mm.waitGroup = gId;
            }
        }
    }

    // 4.5 Spatial rewrites: gate the consumer side on forwarded
    // streams already decided by its producers' dispatches, then
    // make this batch's own producer-side forwarding decisions.
    if (cfg_.policy == SchedPolicy::Spatial) {
        for (TaskId id : placed) {
            spatialRewriteConsumer(id, msgs.at(id));
            spatialResolveProducer(id, msgs.at(id));
        }
    }

    // 5. Commit: mark dispatched and queue the dispatch packets in
    // uid order (producers before consumers).
    statSample("dispatcher.readyWait",
               static_cast<double>(now - rs.readyAt));
    readyQ_.pop_front();
    for (TaskId id : placed) {
        auto node = msgs.extract(id);
        enqueueDispatch(id, std::move(node.mapped()));
    }
    return true;
}

void
Dispatcher::tick(Tick now)
{
    processInbox(now);

    // Drain the send queue.
    std::uint32_t sends = cfg_.sendPerCycle;
    while (sends > 0 && !sendQ_.empty()) {
        if (!noc_.inject(sendQ_.front()))
            break;
        sendQ_.pop_front();
        --sends;
    }

    // Dispatch ready tasks (bounded per cycle; keep the send queue
    // from growing without bound).
    std::uint32_t dispatches = 4;
    while (dispatches > 0 && !readyQ_.empty() &&
           sendQ_.size() < 4096) {
        if (!tryDispatchHead(now))
            break;
        --dispatches;
    }

    if (trace::on() && readyQ_.size() != tracedReadyDepth_) {
        tracedReadyDepth_ = readyQ_.size();
        trace::active()->counter(
            "dispatcher.readyQ", "depth",
            static_cast<double>(tracedReadyDepth_));
    }

    // With no inbound packets, nothing to send, and an empty ready
    // queue, every future tick is a no-op until the NoC delivers a
    // TaskStart/TaskComplete (the eject channel wakes us).  A
    // non-empty ready queue must keep ticking: held-back tasks
    // (pipeline grace, bulk-sync barriers) re-evaluate per cycle.
    if (readyQ_.empty() && sendQ_.empty() &&
        noc_.eject(cfg_.selfNode).empty()) {
        sleepOnWake();
    }
}

double
Dispatcher::actualMaxServiceCycles() const
{
    double m = 0;
    for (const double v : actualService_)
        m = std::max(m, v);
    return m;
}

double
Dispatcher::shadowStaticMaxServiceCycles() const
{
    double m = 0;
    for (const double v : shadowService_)
        m = std::max(m, v);
    return m;
}

double
Dispatcher::imbalanceCyclesAvoided() const
{
    return std::max(0.0, shadowStaticMaxServiceCycles() -
                             actualMaxServiceCycles());
}

double
Dispatcher::stealShadowMaxServiceCycles() const
{
    double m = 0;
    for (const double v : stealShadowService_)
        m = std::max(m, v);
    return m;
}

double
Dispatcher::stealImbalanceCyclesRecovered() const
{
    return std::max(0.0, stealShadowMaxServiceCycles() -
                             actualMaxServiceCycles());
}

std::vector<TaskSpan>
Dispatcher::taskSpans() const
{
    std::vector<TaskSpan> out;
    out.reserve(completed_);
    for (std::size_t i = 0; i < states_.size(); ++i) {
        const TaskState& ts = states_[i];
        if (!ts.completed)
            continue;
        TaskSpan s;
        s.uid = static_cast<TaskId>(i);
        s.start = ts.started ? ts.startAt : ts.endAt;
        s.end = ts.endAt;
        s.lane = ts.lane;
        out.push_back(s);
    }
    return out;
}

bool
Dispatcher::busy() const
{
    return !sendQ_.empty() || (!states_.empty() && !allComplete());
}

void
Dispatcher::reportStats(StatSet& stats) const
{
    stats.set("dispatcher.pipesActivated",
              static_cast<double>(pipesActivated_));
    stats.set("dispatcher.pipesDegraded",
              static_cast<double>(pipesDegraded_));
    stats.set("dispatcher.groupsFired",
              static_cast<double>(groupsFired_));
    stats.set("dispatcher.groupMembersDegraded",
              static_cast<double>(groupMembersDegraded_));
    stats.set("dispatcher.fillLines",
              static_cast<double>(fillLinesRequested_));
    stats.set("dispatcher.tasksCompleted",
              static_cast<double>(completed_));
    stats.set("dispatcher.attrib.actualMaxService",
              actualMaxServiceCycles());
    stats.set("dispatcher.attrib.shadowStaticMaxService",
              shadowStaticMaxServiceCycles());
    stats.set("dispatcher.attrib.imbalanceCyclesAvoided",
              imbalanceCyclesAvoided());
    stats.set("dispatcher.attrib.pipeOverlapCycles",
              pipeOverlapCycles_);
    stats.set("dispatcher.attrib.mcastUnicastLinesEquiv",
              static_cast<double>(mcastUnicastLinesEquiv_));
    stats.set("dispatcher.tasksSpawned",
              static_cast<double>(tasksSpawned_));
    stats.set("dispatcher.attrib.steal.tasksStolen",
              static_cast<double>(tasksStolen_));
    stats.set("dispatcher.attrib.steal.hopsTraveled",
              static_cast<double>(stealHops_));
    stats.set("dispatcher.attrib.steal.shadowMaxService",
              stealShadowMaxServiceCycles());
    stats.set("dispatcher.attrib.steal.imbalanceCyclesRecovered",
              stealImbalanceCyclesRecovered());
    if (cfg_.policy == SchedPolicy::Spatial) {
        stats.set("dispatcher.spatial.forwards",
                  static_cast<double>(spatialForwards_));
        stats.set("dispatcher.spatial.spills",
                  static_cast<double>(spatialSpills_));
        stats.set("dispatcher.spatial.remaps",
                  static_cast<double>(spatialRemaps_));
        stats.set("dispatcher.spatial.groups",
                  static_cast<double>(spatialGroupsAllocated_));
        stats.set("dispatcher.spatial.bufPeakWords",
                  static_cast<double>(spatialBufPeak_));
    }
    for (std::size_t l = 0; l < laneDispatched_.size(); ++l) {
        stats.set("dispatcher.lane" + std::to_string(l) + ".dispatched",
                  static_cast<double>(laneDispatched_[l]));
    }
}

/** TaskState owns its TaskInstance by value (spawned tasks have no
 *  host TaskGraph backing), so the snapshot deep-copies the full
 *  dynamic dependence state. */
struct Dispatcher::Snap final : ComponentSnap
{
    std::vector<TaskState> states;
    std::vector<EdgeState> edges;
    std::vector<GroupState> groups;
    std::deque<TaskId> readyQ;
    std::deque<Packet> sendQ;
    std::vector<std::uint32_t> laneQueued;
    std::vector<double> laneWork;
    std::vector<std::uint64_t> laneDispatched;
    std::uint64_t landingBrk = 0;
    std::size_t completed = 0;
    std::uint32_t curLevel = 0;
    std::vector<std::uint32_t> levelRemaining;
    std::size_t tracedReadyDepth = static_cast<std::size_t>(-1);
    std::uint64_t pipesActivated = 0;
    std::uint64_t pipesDegraded = 0;
    std::uint64_t groupsFired = 0;
    std::uint64_t groupMembersDegraded = 0;
    std::uint64_t fillLinesRequested = 0;
    std::vector<double> actualService;
    std::vector<double> shadowService;
    std::vector<double> stealShadowService;
    double pipeOverlapCycles = 0;
    std::uint64_t mcastUnicastLinesEquiv = 0;
    std::uint64_t tasksSpawned = 0;
    std::uint64_t tasksStolen = 0;
    std::uint64_t stealHops = 0;
    std::vector<std::int32_t> plannedLane;
    std::map<std::uint64_t, SpatialGroup> spatialGroups;
    std::vector<std::uint64_t> spatialLaneBufUsed;
    std::uint64_t spatialBufPeak = 0;
    std::uint64_t spatialForwards = 0;
    std::uint64_t spatialSpills = 0;
    std::uint64_t spatialRemaps = 0;
    std::uint64_t spatialGroupsAllocated = 0;
};

std::unique_ptr<ComponentSnap>
Dispatcher::saveState() const
{
    auto s = std::make_unique<Snap>();
    s->states = states_;
    s->edges = edges_;
    s->groups = groups_;
    s->readyQ = readyQ_;
    s->sendQ = sendQ_;
    s->laneQueued = laneQueued_;
    s->laneWork = laneWork_;
    s->laneDispatched = laneDispatched_;
    s->landingBrk = landingBrk_;
    s->completed = completed_;
    s->curLevel = curLevel_;
    s->levelRemaining = levelRemaining_;
    s->tracedReadyDepth = tracedReadyDepth_;
    s->pipesActivated = pipesActivated_;
    s->pipesDegraded = pipesDegraded_;
    s->groupsFired = groupsFired_;
    s->groupMembersDegraded = groupMembersDegraded_;
    s->fillLinesRequested = fillLinesRequested_;
    s->actualService = actualService_;
    s->shadowService = shadowService_;
    s->stealShadowService = stealShadowService_;
    s->pipeOverlapCycles = pipeOverlapCycles_;
    s->mcastUnicastLinesEquiv = mcastUnicastLinesEquiv_;
    s->tasksSpawned = tasksSpawned_;
    s->tasksStolen = tasksStolen_;
    s->stealHops = stealHops_;
    s->plannedLane = plannedLane_;
    s->spatialGroups = spatialGroups_;
    s->spatialLaneBufUsed = spatialLaneBufUsed_;
    s->spatialBufPeak = spatialBufPeak_;
    s->spatialForwards = spatialForwards_;
    s->spatialSpills = spatialSpills_;
    s->spatialRemaps = spatialRemaps_;
    s->spatialGroupsAllocated = spatialGroupsAllocated_;
    return s;
}

void
Dispatcher::restoreState(const ComponentSnap& snap)
{
    const Snap& s = snapCast<Snap>(snap);
    states_ = s.states;
    edges_ = s.edges;
    groups_ = s.groups;
    readyQ_ = s.readyQ;
    sendQ_ = s.sendQ;
    laneQueued_ = s.laneQueued;
    laneWork_ = s.laneWork;
    laneDispatched_ = s.laneDispatched;
    landingBrk_ = s.landingBrk;
    completed_ = s.completed;
    curLevel_ = s.curLevel;
    levelRemaining_ = s.levelRemaining;
    tracedReadyDepth_ = s.tracedReadyDepth;
    pipesActivated_ = s.pipesActivated;
    pipesDegraded_ = s.pipesDegraded;
    groupsFired_ = s.groupsFired;
    groupMembersDegraded_ = s.groupMembersDegraded;
    fillLinesRequested_ = s.fillLinesRequested;
    actualService_ = s.actualService;
    shadowService_ = s.shadowService;
    stealShadowService_ = s.stealShadowService;
    pipeOverlapCycles_ = s.pipeOverlapCycles;
    mcastUnicastLinesEquiv_ = s.mcastUnicastLinesEquiv;
    tasksSpawned_ = s.tasksSpawned;
    tasksStolen_ = s.tasksStolen;
    stealHops_ = s.stealHops;
    plannedLane_ = s.plannedLane;
    spatialGroups_ = s.spatialGroups;
    spatialLaneBufUsed_ = s.spatialLaneBufUsed;
    spatialBufPeak_ = s.spatialBufPeak;
    spatialForwards_ = s.spatialForwards;
    spatialSpills_ = s.spatialSpills;
    spatialRemaps_ = s.spatialRemaps;
    spatialGroupsAllocated_ = s.spatialGroupsAllocated;
}

} // namespace ts
