/**
 * @file
 * NoC work-stealing tests (DESIGN.md §9): the steal protocol must be
 * a pure re-placement mechanism — it changes which lane runs a task,
 * never what the run computes — and it must be bit-identical across
 * every execution mode the simulator supports.
 *
 * For each steal policy on skewed workloads this byte-compares the
 * full stats dump (minus sim.host.*) between the reference run and:
 *   - sharded execution (--shards 2 and 4),
 *   - naive per-cycle ticking (--no-fast-forward),
 *   - snapshot/fork warm-started runs (twice from one snapshot).
 * Any divergence means steal protocol state escaped a Snap, a probe
 * slept through a cycle it needed, or a cross-shard message leaked.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "accel/delta.hh"
#include "driver/sweep.hh"
#include "workloads/workload.hh"

using namespace ts;

namespace
{

struct RunResult
{
    std::string statsJson; ///< full dump minus sim.host.*
    double cycles = 0.0;
    bool correct = false;
    double stealRequests = 0.0;
    double tasksStolen = 0.0;
};

DeltaConfig
stealConfig(StealPolicy steal)
{
    DeltaConfig cfg = DeltaConfig::delta();
    cfg.steal = steal;
    return cfg;
}

RunResult
resultOf(Delta& delta, Wk wk)
{
    SuiteParams sp;
    sp.scale = 0.25;
    sp.seed = 7;
    auto wl = makeWorkload(wk, sp);

    TaskGraph graph;
    wl->build(delta, graph);
    const StatSet stats = delta.run(graph);

    RunResult r;
    std::ostringstream os;
    stats.dumpJson(os, "sim.host.");
    r.statsJson = os.str();
    r.cycles = stats.get("sim.cycles");
    r.correct = wl->check(delta.image());
    r.stealRequests = stats.getOr("delta.attrib.steal.requests", 0.0);
    r.tasksStolen =
        stats.getOr("delta.attrib.steal.tasksStolen", 0.0);
    return r;
}

RunResult
runOnce(Wk wk, StealPolicy steal, std::uint32_t shards,
        bool noFastForward)
{
    DeltaConfig cfg = stealConfig(steal);
    cfg.shards = shards;
    cfg.noFastForward = noFastForward;
    Delta delta(cfg);
    return resultOf(delta, wk);
}

class StealDifferential
    : public ::testing::TestWithParam<std::tuple<Wk, StealPolicy>>
{
};

std::string
stealName(
    const ::testing::TestParamInfo<std::tuple<Wk, StealPolicy>>& info)
{
    std::string name = wkIdent(std::get<0>(info.param));
    switch (std::get<1>(info.param)) {
      case StealPolicy::None: name += "_none"; break;
      case StealPolicy::StealOne: name += "_one"; break;
      case StealPolicy::StealHalf: name += "_half"; break;
    }
    return name;
}

} // namespace

TEST_P(StealDifferential, BitIdenticalAcrossExecutionModes)
{
    const Wk wk = std::get<0>(GetParam());
    const StealPolicy steal = std::get<1>(GetParam());

    const RunResult one = runOnce(wk, steal, 1, false);
    ASSERT_TRUE(one.correct);
    if (steal != StealPolicy::None) {
        EXPECT_GT(one.stealRequests, 0.0)
            << "idle lanes never probed: the steal machine is inert";
    }

    for (const std::uint32_t k : {2u, 4u}) {
        const RunResult sharded = runOnce(wk, steal, k, false);
        EXPECT_TRUE(sharded.correct) << k << " shards";
        EXPECT_EQ(sharded.statsJson, one.statsJson)
            << k << "-shard and single-shard steal runs diverged "
            << "for " << wkName(wk)
            << ": a steal message escaped the conservative "
               "synchronization";
    }

    const RunResult naive = runOnce(wk, steal, 1, true);
    EXPECT_TRUE(naive.correct);
    EXPECT_EQ(naive.statsJson, one.statsJson)
        << "activity-driven and naive steal runs diverged for "
        << wkName(wk)
        << ": a probe or grant slept through a non-no-op cycle";
}

TEST_P(StealDifferential, ForkedRunsBitIdenticalToFresh)
{
    const Wk wk = std::get<0>(GetParam());
    const StealPolicy steal = std::get<1>(GetParam());

    RunResult fresh;
    {
        Delta delta(stealConfig(steal));
        fresh = resultOf(delta, wk);
    }
    ASSERT_TRUE(fresh.correct);

    Delta forked(stealConfig(steal));
    const auto snap = forked.snapshot();
    for (int rep = 0; rep < 2; ++rep) {
        forked.restore(*snap);
        const RunResult r = resultOf(forked, wk);
        EXPECT_TRUE(r.correct);
        EXPECT_EQ(r.statsJson, fresh.statsJson)
            << "forked steal run " << rep << " diverged for "
            << wkName(wk)
            << ": steal protocol state escaped the snapshot";
    }
}

INSTANTIATE_TEST_SUITE_P(
    Skewed, StealDifferential,
    ::testing::Combine(::testing::Values(Wk::Tricount, Wk::Join,
                                         Wk::MsortDyn),
                       ::testing::Values(StealPolicy::None,
                                         StealPolicy::StealOne,
                                         StealPolicy::StealHalf)),
    stealName);

// ---------------------------------------------------------------------
// Policy accounting and cache-key coverage.
// ---------------------------------------------------------------------

TEST(Steal, StealingActuallyMovesTasksOnSkewedWork)
{
    const RunResult r =
        runOnce(Wk::Tricount, StealPolicy::StealHalf, 1, false);
    ASSERT_TRUE(r.correct);
    EXPECT_GT(r.tasksStolen, 0.0)
        << "steal-half on tricount should relocate at least one task";
}

TEST(Steal, PolicyChangesTheCanonicalConfig)
{
    const std::string none =
        driver::canonicalConfig(stealConfig(StealPolicy::None));
    const std::string one =
        driver::canonicalConfig(stealConfig(StealPolicy::StealOne));
    const std::string half =
        driver::canonicalConfig(stealConfig(StealPolicy::StealHalf));
    EXPECT_NE(none, one);
    EXPECT_NE(none, half);
    EXPECT_NE(one, half);
}

TEST(Steal, PolicyNamesRoundTrip)
{
    for (const StealPolicy p :
         {StealPolicy::None, StealPolicy::StealOne,
          StealPolicy::StealHalf}) {
        StealPolicy back = StealPolicy::None;
        ASSERT_TRUE(stealPolicyFromName(stealPolicyName(p), back));
        EXPECT_EQ(back, p);
    }
    StealPolicy out = StealPolicy::None;
    EXPECT_FALSE(stealPolicyFromName("bogus", out));
}
