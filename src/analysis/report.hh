/**
 * @file
 * Turning a run's statistics dump into a human-readable diagnosis.
 *
 * Ingests the flat JSON a run writes (TS_STATS_JSON, or the
 * TS_BENCH_JSON wrapper objects the benchmarks emit) and renders the
 * top-down story: where the lane-cycles went (accounting waterfall),
 * what each recovered mechanism bought (attribution), how close the
 * run came to its dependence-structure bound (critical path), and
 * which task types dominate the tail (histogram percentiles).
 * tools/delta-report is a thin CLI over these functions; tests call
 * them directly.
 */

#ifndef TS_ANALYSIS_REPORT_HH
#define TS_ANALYSIS_REPORT_HH

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "analysis/json.hh"

namespace ts
{
namespace analysis
{

/** A loaded statistics dump: flat dotted-path name -> value, plus
 *  the bench-wrapper metadata when present. */
struct RunStats
{
    std::map<std::string, double> values;

    // From the TS_BENCH_JSON wrapper, empty for raw dumps.
    std::string workload;
    std::string policy;

    bool has(const std::string& name) const
    {
        return values.count(name) != 0;
    }

    double
    getOr(const std::string& name, double fallback = 0.0) const
    {
        auto it = values.find(name);
        return it == values.end() ? fallback : it->second;
    }

    /** All (name, value) pairs whose name starts with the prefix. */
    std::vector<std::pair<std::string, double>>
    matchPrefix(const std::string& prefix) const;
};

/**
 * Interpret a parsed JSON document as a statistics dump.  Accepts
 * both shapes the simulator writes: a flat object of numbers (the
 * StatSet dump) and the bench wrapper
 * `{"workload":..., "policy":..., "lanes":..., "stats": {...}}`.
 * Non-numeric entries (nulls from non-finite statistics) are
 * dropped.
 */
RunStats statsFromJson(const Json& doc);

/** Read and parse a stats file; fatal() on unreadable/malformed. */
RunStats loadStats(const std::string& path);

/** One task type's latency summary (from histogram statistics). */
struct TaskTypeRow
{
    std::string type;
    double count = 0;
    double mean = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
    double max = 0;
};

/** Task types sorted slowest-first by p95 service cycles. */
std::vector<TaskTypeRow> slowestTaskTypes(const RunStats& s,
                                          std::size_t topk);

/** baseline cycles / run cycles (0 when either is missing). */
double speedupVs(const RunStats& run, const RunStats& baseline);

/**
 * baseline/run ratio for one named series.  When the series is
 * absent (or zero) on either side the ratio is undefined; instead of
 * propagating an inf/nan speedup, warn on @p warn naming the series
 * and the missing side, and return 0.
 */
double seriesSpeedup(const RunStats& run, const RunStats& baseline,
                     const std::string& name, std::ostream& warn);

/**
 * Side-by-side comparison of two or more runs (index 0 is the
 * baseline): the headline series as rows, one column per run, plus a
 * speedup-vs-baseline row under delta.cycles.  A series absent from
 * every run is dropped; a cell absent from one run renders as "-";
 * speedups go through seriesSpeedup, so an absent baseline series is
 * warned about by name and skipped rather than rendered as inf/nan.
 */
void printComparison(std::ostream& os,
                     const std::vector<const RunStats*>& runs,
                     const std::vector<std::string>& labels,
                     std::ostream& warn);

/** Rendering options for printReport. */
struct ReportOptions
{
    std::size_t topk = 5;          ///< task-type rows to print
    const RunStats* baseline = nullptr; ///< optional comparison run
    const Json* trace = nullptr;   ///< optional parsed Perfetto trace
    bool timeline = false;         ///< render delta.timeline.* series
};

// Individual sections (each is a no-op when its stats are absent).
void printHeader(std::ostream& os, const RunStats& s);
void printWaterfall(std::ostream& os, const RunStats& s);
void printAttribution(std::ostream& os, const RunStats& s);
void printCritPath(std::ostream& os, const RunStats& s);
void printTaskTypes(std::ostream& os, const RunStats& s,
                    std::size_t topk);
void printTraceSummary(std::ostream& os, const Json& trace);

/**
 * Render the run's delta.timeline.* columns (see obs/timeline.hh):
 * a per-lane waterfall showing each sample interval's dominant cycle
 * class, then one ASCII sparkline per gauge series (ready-queue
 * depth, NoC packets in flight, DRAM queue depth), each scaled to
 * its own peak.  No-op when the run was sampled without a timeline.
 */
void printTimeline(std::ostream& os, const RunStats& s);

/** "Host hotspots": wall-ns attribution per component class and
 *  simulator phase (sim.host.profile.*), largest first.  No-op
 *  unless the run was profiled with --host-profile. */
void printHostProfile(std::ostream& os, const RunStats& s);

/** The full report: header, waterfall, attribution, critical path,
 *  slowest task types, optional baseline speedup and trace summary. */
void printReport(std::ostream& os, const RunStats& s,
                 const ReportOptions& opt = {});

} // namespace analysis
} // namespace ts

#endif // TS_ANALYSIS_REPORT_HH
