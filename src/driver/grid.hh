/**
 * @file
 * Declarative grid settings shared by the delta-sweep CLI and the
 * sweep service: the `key = value` vocabulary of grid files, command
 * lines, and daemon requests, plus the assembly of a SweepSpec from
 * parsed settings.
 *
 * One parser serves all three entry points, so a grid file, the
 * equivalent flags, and a daemon request line mean exactly the same
 * sweep.
 */

#ifndef TS_DRIVER_GRID_HH
#define TS_DRIVER_GRID_HH

#include <cstdint>
#include <string>
#include <vector>

#include "driver/options.hh"
#include "driver/sweep.hh"

namespace ts
{
namespace driver
{

/** Everything a grid can configure besides the shared options. */
struct GridSettings
{
    std::string configs;   ///< preset list ("" = static,delta)
    std::vector<std::uint64_t> seeds;
    std::vector<double> scales;
    std::uint32_t lanes = 8;
    std::string baseline;
    std::string out;
    bool quiet = false;

    std::string cacheDir;            ///< run cache ("" = off)
    std::uint64_t cacheCapBytes = 0; ///< cache budget (0 = unbounded)
    bool noSnapshotFork = false;     ///< fresh Delta per point
    bool dryRun = false;             ///< expand + predict, no runs
};

/** Split a comma-separated list, trimming surrounding whitespace and
 *  dropping empty entries. */
std::vector<std::string> splitList(const std::string& list);

/** Parse comma-separated non-negative integer seeds (fatal on bad
 *  or empty input). */
std::vector<std::uint64_t> parseSeedList(const std::string& list);

/** Parse comma-separated positive scales (fatal on bad or empty
 *  input). */
std::vector<double> parseScaleList(const std::string& list);

/** Parse a lane count in 1..62 (fatal otherwise). */
std::uint32_t parseLanes(const std::string& s);

/** Parse a byte count with optional K/M/G suffix (fatal on bad
 *  input). */
std::uint64_t parseCapBytes(const std::string& s);

/**
 * Apply one `key = value` grid setting.  Shared keys write into
 * @p opt, grid keys into @p grid; an unknown key is fatal listing
 * every valid one.  The same vocabulary backs grid files, the
 * delta-sweep flags, and sweep-service requests.
 */
void applyGridKey(const std::string& key, const std::string& value,
                  RunOptions& opt, GridSettings& grid);

/**
 * Print the whole grid-key vocabulary — every key, the values it
 * accepts, and what it does — generated from the same table
 * applyGridKey dispatches on (so the listing can never go stale).
 * Backs `delta-sweep --list-grid-keys`.
 */
void printGridKeys(std::ostream& os);

/** Read a `key = value` grid file ('#' comments, blank lines ok). */
void loadGridFile(const std::string& path, RunOptions& opt,
                  GridSettings& grid);

/**
 * Assemble the SweepSpec that @p opt and @p grid describe (empty
 * workload selection = the whole suite; progress is left off for the
 * caller to decide).  Fatal on invalid combinations, mirroring the
 * Sweep constructor's validation.
 */
SweepSpec buildSweepSpec(const RunOptions& opt,
                         const GridSettings& grid);

} // namespace driver
} // namespace ts

#endif // TS_DRIVER_GRID_HH
