/**
 * @file
 * Unit and invariant tests for the TaskStream core: graph
 * construction rules, work estimation, scheduling-policy behaviour,
 * dependence ordering (property: no task observes a stale producer
 * value), pipeline activation accounting, and multicast accounting.
 */

#include <gtest/gtest.h>

#include "accel/delta.hh"
#include "sim/rng.hh"

namespace ts
{
namespace
{

TaskTypeId
addScaleType(TaskTypeRegistry& reg, const std::string& name = "scale")
{
    auto dfg = std::make_unique<Dfg>(name);
    const auto x = dfg->addInput();
    const auto a = dfg->add(Op::Add, Operand::ref(x), Operand::immI(1));
    dfg->addOutput(a);
    return reg.addDfgType(name, std::move(dfg));
}

// --- task graph construction rules ---------------------------------------

TEST(TaskGraph, DependencesMustFollowCreationOrder)
{
    TaskTypeRegistry reg(FabricGeometry{});
    const auto ty = addScaleType(reg);
    TaskGraph g;
    WriteDesc out;
    out.base = 1024;
    const auto t0 = g.addTask(
        ty, {StreamDesc::linear(Space::Dram, 64, 8)}, {out});
    const auto t1 = g.addTask(
        ty, {StreamDesc::linear(Space::Dram, 64, 8)}, {out});
    g.addBarrier(t0, t1);
    EXPECT_THROW(g.addBarrier(t1, t0), PanicError);
}

TEST(TaskGraph, SharedInputMustLieInGroupRange)
{
    TaskTypeRegistry reg(FabricGeometry{});
    const auto ty = addScaleType(reg);
    TaskGraph g;
    WriteDesc out;
    out.base = 4096;
    const auto t = g.addTask(
        ty, {StreamDesc::linear(Space::Dram, 2048, 8)}, {out});
    const auto grp = g.addSharedGroup(64, 16);
    EXPECT_THROW(g.setSharedInput(t, 0, grp), PanicError);
}

TEST(TaskGraph, ValidateRejectsEmptyGroups)
{
    TaskGraph g;
    g.addSharedGroup(64, 16);
    EXPECT_THROW(g.validate(), PanicError);
}

// --- critical path on dynamic graph shapes --------------------------------
//
// The spatial mapper uses criticalPath() as its cost model, so it
// must stay correct on the shapes the dynamic-dependence machinery
// produces: transferred successors, spawned subgraphs whose edges
// point against uid order, and edges from already-completed
// producers (unmeasured tasks weigh zero).

namespace
{

TaskHandle
addPlainTask(TaskGraph& g, TaskTypeId ty, Addr outBase = 1024)
{
    WriteDesc out;
    out.base = outBase;
    return g.addTask(ty, {StreamDesc::linear(Space::Dram, 64, 8)},
                     {out});
}

TaskSpan
span(TaskId uid, Tick start, Tick end)
{
    TaskSpan s;
    s.uid = uid;
    s.start = start;
    s.end = end;
    return s;
}

} // namespace

TEST(TaskGraphCritPath, TransferredSuccessorsRehangThePath)
{
    TaskTypeRegistry reg(FabricGeometry{});
    const auto ty = addScaleType(reg);
    TaskGraph g;
    const auto a = addPlainTask(g, ty);
    const auto b = addPlainTask(g, ty);
    const auto c = addPlainTask(g, ty);
    g.addPipeline(a, 0, b, 0);
    // a finishes early and hands its pending successors to c; the
    // pipeline edge degrades to a barrier across the transfer.
    g.transferSuccessors(a, c);
    ASSERT_EQ(g.edges().size(), 1u);
    EXPECT_EQ(g.edges()[0].producer, c.id());
    EXPECT_EQ(g.edges()[0].consumer, b.id());
    EXPECT_EQ(g.edges()[0].kind, DepKind::Barrier);

    const std::vector<TaskSpan> spans = {
        span(a, 0, 10), span(b, 0, 100), span(c, 0, 5)};
    const CritPathResult r = g.criticalPath(spans);
    EXPECT_EQ(r.serialCycles, 115u);
    EXPECT_EQ(r.criticalPathCycles, 105u);
    ASSERT_EQ(r.path.size(), 2u);
    EXPECT_EQ(r.path[0], c.id());
    EXPECT_EQ(r.path[1], b.id());
}

TEST(TaskGraphCritPath, SpawnedSubgraphEdgesAgainstUidOrder)
{
    // The post-spawn shape: the join task exists before the spawned
    // children, so the children's edges into it run against uid
    // order.  criticalPath must still finalize in topological order.
    TaskTypeRegistry reg(FabricGeometry{});
    const auto ty = addScaleType(reg);
    TaskGraph g;
    const auto root = addPlainTask(g, ty);
    const auto join = addPlainTask(g, ty);
    const auto s1 = addPlainTask(g, ty);
    const auto s2 = addPlainTask(g, ty);
    g.addBarrier(root, s1);
    g.addBarrier(root, s2);
    g.addBarrier(s1, join); // producer uid > consumer uid
    g.addBarrier(s2, join);

    const std::vector<TaskSpan> spans = {
        span(root, 0, 10), span(join, 0, 7), span(s1, 0, 30),
        span(s2, 0, 50)};
    const CritPathResult r = g.criticalPath(spans);
    EXPECT_EQ(r.serialCycles, 97u);
    // root -> s2 -> join dominates: 10 + 50 + 7.
    EXPECT_EQ(r.criticalPathCycles, 67u);
    ASSERT_EQ(r.path.size(), 3u);
    EXPECT_EQ(r.path[0], root.id());
    EXPECT_EQ(r.path[1], s2.id());
    EXPECT_EQ(r.path[2], join.id());
    // The 2-lane bound is the path (67 > ceil(97/2)).
    EXPECT_EQ(r.boundCycles(2), 67u);
}

TEST(TaskGraphCritPath, EdgesFromCompletedProducersWeighZero)
{
    // Edges from producers that completed before measurement began
    // (no span recorded) are legal and contribute zero weight; the
    // path and the serial sum must only count measured tasks.
    TaskTypeRegistry reg(FabricGeometry{});
    const auto ty = addScaleType(reg);
    TaskGraph g;
    const auto done = addPlainTask(g, ty);
    const auto mid = addPlainTask(g, ty);
    const auto tail = addPlainTask(g, ty);
    g.addBarrier(done, mid);
    g.addBarrier(mid, tail);

    const std::vector<TaskSpan> spans = {span(mid, 100, 140),
                                         span(tail, 140, 200)};
    const CritPathResult r = g.criticalPath(spans);
    EXPECT_EQ(r.serialCycles, 100u);
    EXPECT_EQ(r.criticalPathCycles, 100u);
    // The unmeasured producer may or may not appear at the head of
    // the path; the measured suffix must be mid -> tail.
    ASSERT_GE(r.path.size(), 2u);
    EXPECT_EQ(r.path[r.path.size() - 2], mid.id());
    EXPECT_EQ(r.path.back(), tail.id());
}

// --- work estimation -------------------------------------------------------

TEST(TaskTypes, DefaultWorkEstimateSumsStreamElements)
{
    MemImage img;
    TaskTypeRegistry reg(FabricGeometry{});
    const auto ty = addScaleType(reg);
    TaskInstance inst;
    inst.type = ty;
    inst.inputs = {StreamDesc::linear(Space::Dram, 0, 40)};
    EXPECT_DOUBLE_EQ(reg.estimateWork(img, inst), 40.0);
}

TEST(TaskTypes, WorkFnOverride)
{
    MemImage img;
    TaskTypeRegistry reg(FabricGeometry{});
    const auto ty = addScaleType(reg);
    reg.setWorkFn(ty, [](const MemImage&, const TaskInstance&) {
        return 123.0;
    });
    TaskInstance inst;
    inst.type = ty;
    EXPECT_DOUBLE_EQ(reg.estimateWork(img, inst), 123.0);
}

// --- scheduling policies ----------------------------------------------------

/** Run N equal tasks and return per-lane dispatch counts. */
std::vector<double>
laneDispatchCounts(SchedPolicy policy, unsigned lanes, unsigned tasks)
{
    DeltaConfig cfg = DeltaConfig::delta(lanes);
    cfg.policy = policy;
    Delta delta(cfg);
    const auto ty = addScaleType(delta.registry());
    MemImage& img = delta.image();
    const Addr x = img.allocWords(tasks * 8);
    TaskGraph g;
    for (unsigned t = 0; t < tasks; ++t) {
        WriteDesc out;
        out.base = img.allocWords(8);
        g.addTask(ty,
                  {StreamDesc::linear(Space::Dram,
                                      x + t * 8 * wordBytes, 8)},
                  {out});
    }
    const StatSet stats = delta.run(g);
    std::vector<double> counts;
    for (unsigned l = 0; l < lanes; ++l) {
        counts.push_back(stats.get("dispatcher.lane" +
                                   std::to_string(l) + ".dispatched"));
    }
    return counts;
}

TEST(Policies, StaticIsOwnerCompute)
{
    const auto counts = laneDispatchCounts(SchedPolicy::Static, 4, 16);
    for (const double c : counts)
        EXPECT_DOUBLE_EQ(c, 4.0) << "uid % lanes spreads evenly";
}

TEST(Policies, DynamicPoliciesAlsoBalanceEqualTasks)
{
    for (const auto p : {SchedPolicy::DynCount, SchedPolicy::WorkAware}) {
        const auto counts = laneDispatchCounts(p, 4, 16);
        double total = 0;
        for (const double c : counts)
            total += c;
        EXPECT_DOUBLE_EQ(total, 16.0);
        for (const double c : counts)
            EXPECT_GE(c, 2.0) << schedPolicyName(p);
    }
}

TEST(Policies, WorkAwareBalancesSkewedWorkBetterThanStatic)
{
    // Tasks with wildly different stream lengths, adversarially
    // ordered so owner-compute piles heavy tasks on one lane.
    auto run = [&](SchedPolicy policy) {
        DeltaConfig cfg = DeltaConfig::delta(4);
        cfg.policy = policy;
        Delta delta(cfg);
        const auto ty = addScaleType(delta.registry());
        MemImage& img = delta.image();
        TaskGraph g;
        for (unsigned t = 0; t < 16; ++t) {
            const std::uint64_t n = t % 4 == 0 ? 2048 : 16;
            WriteDesc out;
            out.base = img.allocWords(n);
            g.addTask(ty,
                      {StreamDesc::linear(Space::Dram,
                                          img.allocWords(n), n)},
                      {out});
        }
        const StatSet stats = delta.run(g);
        return stats.get("delta.cycles");
    };
    const double staticCycles = run(SchedPolicy::Static);
    const double workCycles = run(SchedPolicy::WorkAware);
    EXPECT_LT(workCycles * 1.5, staticCycles)
        << "work-aware must clearly beat owner-compute on skew";
}

// --- dependence ordering property test ---------------------------------------

/**
 * Random DAGs of increment tasks over one shared cell chain: task i
 * reads its producer's output region and adds 1.  If any task ran
 * before its producers completed, the final values would be wrong.
 */
class RandomDagOrdering : public ::testing::TestWithParam<int>
{};

TEST_P(RandomDagOrdering, AllDependencesRespected)
{
    Rng rng(400 + GetParam());
    DeltaConfig cfg = DeltaConfig::delta(4);
    cfg.laneQueueCap = 3;
    Delta delta(cfg);
    const auto ty = addScaleType(delta.registry());
    MemImage& img = delta.image();

    const int n = 24;
    const std::uint64_t words = 8;
    std::vector<Addr> buf(n + 1);
    for (int i = 0; i <= n; ++i)
        buf[i] = img.allocWords(words);
    for (std::uint64_t w = 0; w < words; ++w)
        img.writeInt(buf[0] + w * wordBytes, 0);

    // Chain with random extra barriers; task i maps buf[p] -> buf[i+1]
    // where p is a random already-created producer buffer.
    TaskGraph g;
    std::vector<int> srcOf(n);
    std::vector<int> depth(n + 1, 0);
    for (int i = 0; i < n; ++i) {
        const int p = static_cast<int>(rng.uniformInt(0, i));
        srcOf[i] = p;
        WriteDesc out;
        out.base = buf[i + 1];
        const TaskId id = g.addTask(
            ty,
            {StreamDesc::linear(Space::Dram, buf[p], words)},
            {out});
        if (p > 0)
            g.addBarrier(static_cast<TaskId>(p - 1), id);
        // A few random extra barriers for DAG variety.
        if (i > 2 && rng.uniform01() < 0.3) {
            g.addBarrier(
                static_cast<TaskId>(rng.uniformInt(0, i - 1)), id);
        }
        depth[i + 1] = depth[p] + 1;
    }

    delta.run(g);
    for (int i = 0; i < n; ++i) {
        for (std::uint64_t w = 0; w < words; ++w) {
            EXPECT_EQ(img.readInt(buf[i + 1] + w * wordBytes),
                      depth[i + 1])
                << "task " << i << " ran before its producer";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, RandomDagOrdering,
                         ::testing::Range(0, 20));

// --- pipeline accounting ------------------------------------------------------

TEST(Pipelines, ChainActivatesAndOverlaps)
{
    // producer -> consumer -> consumer chain, all pipelined.
    auto run = [&](bool enable) {
        DeltaConfig cfg = DeltaConfig::delta(4);
        cfg.enablePipeline = enable;
        Delta delta(cfg);
        const auto ty = addScaleType(delta.registry());
        MemImage& img = delta.image();
        const std::uint64_t n = 4096;
        std::vector<Addr> buf(4);
        for (auto& b : buf)
            b = img.allocWords(n);
        TaskGraph g;
        TaskId prev = 0;
        for (int s = 0; s < 3; ++s) {
            WriteDesc out;
            out.base = buf[s + 1];
            const TaskId id = g.addTask(
                ty,
                {StreamDesc::linear(Space::Dram, buf[s], n)},
                {out});
            if (s > 0)
                g.addPipeline(prev, 0, id, 0);
            prev = id;
        }
        const StatSet stats = delta.run(g);
        return std::pair<double, std::uint64_t>(
            stats.get("delta.cycles"),
            delta.dispatcher().pipesActivated());
    };
    const auto [offCycles, offActs] = run(false);
    const auto [onCycles, onActs] = run(true);
    EXPECT_EQ(offActs, 0u);
    EXPECT_EQ(onActs, 2u);
    EXPECT_LT(onCycles * 1.8, offCycles)
        << "a 3-stage pipelined chain must overlap substantially";
}

TEST(Pipelines, DegradedEdgesStillProduceCorrectData)
{
    // A pipeline consumer with an extra barrier dep that cannot be
    // satisfied at producer-dispatch time degrades to memory and must
    // still read fresh data.
    DeltaConfig cfg = DeltaConfig::delta(2);
    Delta delta(cfg);
    const auto ty = addScaleType(delta.registry());
    MemImage& img = delta.image();
    const std::uint64_t n = 512;
    const Addr a = img.allocWords(n), b = img.allocWords(n),
               c = img.allocWords(n), d = img.allocWords(n);

    TaskGraph g;
    WriteDesc outB;
    outB.base = b;
    const TaskId t0 =
        g.addTask(ty, {StreamDesc::linear(Space::Dram, a, n)}, {outB});
    WriteDesc outC;
    outC.base = c;
    const TaskId t1 =
        g.addTask(ty, {StreamDesc::linear(Space::Dram, a, n)}, {outC});
    WriteDesc outD;
    outD.base = d;
    const TaskId t2 =
        g.addTask(ty, {StreamDesc::linear(Space::Dram, b, n)}, {outD});
    g.addPipeline(t0, 0, t2, 0);
    g.addBarrier(t1, t2);

    delta.run(g);
    for (std::uint64_t w = 0; w < n; ++w)
        EXPECT_EQ(img.readInt(d + w * wordBytes), 2);
}

// --- multicast accounting ------------------------------------------------------

TEST(Multicast, SingleFetchServesAllSubscribers)
{
    DeltaConfig cfg = DeltaConfig::delta(8);
    Delta delta(cfg);
    MemImage& img = delta.image();

    auto dfg = std::make_unique<Dfg>("addp");
    const auto aIn = dfg->addInput();
    const auto bIn = dfg->addInput();
    dfg->addOutput(
        dfg->add(Op::Add, Operand::ref(aIn), Operand::ref(bIn)));
    const auto ty =
        delta.registry().addDfgType("addp", std::move(dfg));

    const std::uint64_t n = 512;
    const Addr shared = img.allocWords(n);
    TaskGraph g;
    const auto grp = g.addSharedGroup(shared, n);
    for (int t = 0; t < 8; ++t) {
        WriteDesc out;
        out.base = img.allocWords(n);
        const TaskId id = g.addTask(
            ty,
            {StreamDesc::linear(Space::Dram, img.allocWords(n), n),
             StreamDesc::linear(Space::Dram, shared, n)},
            {out});
        g.setSharedInput(id, 1, grp);
    }
    const StatSet stats = delta.run(g);
    EXPECT_EQ(delta.dispatcher().groupsFired(), 1u);
    EXPECT_EQ(stats.get("dispatcher.fillLines"),
              static_cast<double>(n / lineWords));
    // Every subscriber lane landed the fill once.
    EXPECT_EQ(stats.sumPrefix("lane0.fillLinesLanded") +
                  stats.sumPrefix("lane1.fillLinesLanded") +
                  stats.sumPrefix("lane2.fillLinesLanded") +
                  stats.sumPrefix("lane3.fillLinesLanded") +
                  stats.sumPrefix("lane4.fillLinesLanded") +
                  stats.sumPrefix("lane5.fillLinesLanded") +
                  stats.sumPrefix("lane6.fillLinesLanded") +
                  stats.sumPrefix("lane7.fillLinesLanded"),
              static_cast<double>(8 * n / lineWords));
}

TEST(Multicast, ReducesDramReadsVersusBaseline)
{
    auto linesRead = [&](bool multicast) {
        DeltaConfig cfg = DeltaConfig::delta(8);
        cfg.enableMulticast = multicast;
        Delta delta(cfg);
        MemImage& img = delta.image();
        auto dfg = std::make_unique<Dfg>("pass");
        const auto aIn = dfg->addInput();
        dfg->addOutput(
            dfg->add(Op::Add, Operand::ref(aIn), Operand::immI(0)));
        const auto ty =
            delta.registry().addDfgType("pass", std::move(dfg));
        const std::uint64_t n = 2048;
        const Addr shared = img.allocWords(n);
        TaskGraph g;
        const auto grp = g.addSharedGroup(shared, n);
        for (int t = 0; t < 8; ++t) {
            WriteDesc out;
            out.base = img.allocWords(n);
            const TaskId id = g.addTask(
                ty, {StreamDesc::linear(Space::Dram, shared, n)},
                {out});
            g.setSharedInput(id, 0, grp);
        }
        const StatSet stats = delta.run(g);
        return stats.get("mem.linesRead");
    };
    const double with = linesRead(true);
    const double without = linesRead(false);
    EXPECT_LT(with * 4, without)
        << "multicast must collapse 8 reads of the range into 1";
}

// --- shared landing ----------------------------------------------------------

TEST(SharedLanding, StashesFillsThatBeatTheSetup)
{
    MemImage img;
    Scratchpad spm("spm", ScratchpadConfig{1024, 4});
    SharedLanding landing(img, spm);

    const Addr base = 256; // line-aligned
    for (unsigned w = 0; w < 16; ++w)
        img.writeInt(base + w * wordBytes, 100 + w);

    // Fill arrives before setup: must be stashed and applied later.
    landing.fill(3, base);
    EXPECT_FALSE(landing.known(3));
    landing.setup(GroupSetupMsg{3, base, 16, 32});
    landing.fill(3, base + lineBytes);
    EXPECT_TRUE(landing.complete(3));
    for (unsigned w = 0; w < 16; ++w)
        EXPECT_EQ(asInt(spm.read(32 + w)), 100 + static_cast<int>(w));
}

TEST(SharedLanding, UnalignedRangeLandsAtCorrectOffsets)
{
    MemImage img;
    Scratchpad spm("spm", ScratchpadConfig{1024, 4});
    SharedLanding landing(img, spm);

    const Addr base = 256 + 3 * wordBytes; // mid-line start
    for (unsigned w = 0; w < 8; ++w)
        img.writeInt(base + w * wordBytes, 7 + w);
    landing.setup(GroupSetupMsg{1, base, 8, 0});
    landing.fill(1, 256);
    landing.fill(1, 256 + lineBytes);
    EXPECT_TRUE(landing.complete(1));
    for (unsigned w = 0; w < 8; ++w)
        EXPECT_EQ(asInt(spm.read(w)), 7 + static_cast<int>(w));
}

// --- queue capacity ------------------------------------------------------------

TEST(Dispatcher, RespectsLaneQueueCapacity)
{
    DeltaConfig cfg = DeltaConfig::delta(2);
    cfg.laneQueueCap = 2;
    Delta delta(cfg);
    const auto ty = addScaleType(delta.registry());
    MemImage& img = delta.image();
    TaskGraph g;
    for (int t = 0; t < 40; ++t) {
        WriteDesc out;
        out.base = img.allocWords(64);
        g.addTask(ty,
                  {StreamDesc::linear(Space::Dram, img.allocWords(64),
                                      64)},
                  {out});
    }
    const StatSet stats = delta.run(g);
    EXPECT_EQ(stats.get("dispatcher.tasksCompleted"), 40.0);
}

} // namespace
} // namespace ts
