#include <cmath>
#include <map>

#include "workloads/centroid.hh"
#include "workloads/cholesky.hh"
#include "workloads/join.hh"
#include "workloads/lu.hh"
#include "workloads/msort.hh"
#include "workloads/msort_dyn.hh"
#include "workloads/spmv.hh"
#include "workloads/tricount.hh"

namespace ts
{

const std::vector<Wk>&
allWorkloads()
{
    static const std::vector<Wk> all = {
        Wk::Spmv,     Wk::Join, Wk::Msort,    Wk::MsortDyn,
        Wk::Cholesky, Wk::Lu,   Wk::Tricount, Wk::Centroid,
    };
    return all;
}

const char*
wkName(Wk w)
{
    switch (w) {
      case Wk::Spmv: return "spmv";
      case Wk::Join: return "join";
      case Wk::Msort: return "msort";
      case Wk::MsortDyn: return "msort-dyn";
      case Wk::Cholesky: return "cholesky";
      case Wk::Lu: return "lu";
      case Wk::Tricount: return "tricount";
      case Wk::Centroid: return "centroid";
    }
    return "?";
}

std::string
wkIdent(Wk w)
{
    std::string s = wkName(w);
    for (char& c : s) {
        if (c == '-')
            c = '_';
    }
    return s;
}

namespace
{

/** The valid workload names, comma-separated (error messages). */
std::string
validWorkloadNames()
{
    std::string out;
    for (const Wk w : allWorkloads()) {
        if (!out.empty())
            out += ", ";
        out += wkName(w);
    }
    return out;
}

/** Round up to a power of two. */
std::uint64_t
pow2Ceil(double v)
{
    std::uint64_t p = 1;
    while (static_cast<double>(p) < v)
        p <<= 1;
    return p;
}

} // namespace

Wk
wkFromName(const std::string& name)
{
    for (const Wk w : allWorkloads()) {
        if (name == wkName(w))
            return w;
    }
    fatal("unknown workload '", name,
          "'; valid workloads: ", validWorkloadNames());
}

std::vector<Wk>
workloadsFromList(const std::string& list)
{
    if (list.empty() || list == "all")
        return allWorkloads();

    std::vector<Wk> out;
    std::size_t pos = 0;
    while (pos <= list.size()) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        std::string tok = list.substr(pos, comma - pos);
        const auto b = tok.find_first_not_of(" \t");
        const auto e = tok.find_last_not_of(" \t");
        tok = b == std::string::npos
                  ? std::string{}
                  : tok.substr(b, e - b + 1);
        if (!tok.empty())
            out.push_back(wkFromName(tok));
        pos = comma + 1;
    }
    if (out.empty()) {
        fatal("workload list '", list,
              "' selects nothing; valid workloads: ",
              validWorkloadNames());
    }
    return out;
}

std::unique_ptr<Workload>
makeWorkload(Wk w, const SuiteParams& sp)
{
    const double s = sp.scale;
    switch (w) {
      case Wk::Spmv: {
        SpmvParams p;
        p.seed = sp.seed;
        p.rows = static_cast<std::uint64_t>(256 * s);
        p.cols = static_cast<std::uint64_t>(512 * s);
        return std::make_unique<SpmvWorkload>(p);
      }
      case Wk::Join: {
        JoinParams p;
        p.seed = sp.seed;
        p.rTotal = static_cast<std::uint64_t>(6144 * s);
        p.sSize = static_cast<std::uint64_t>(512 * s);
        return std::make_unique<JoinWorkload>(p);
      }
      case Wk::Msort: {
        MsortParams p;
        p.seed = sp.seed;
        p.n = pow2Ceil(8192 * s);
        return std::make_unique<MsortWorkload>(p);
      }
      case Wk::MsortDyn: {
        MsortDynParams p;
        p.seed = sp.seed;
        p.n = pow2Ceil(8192 * s);
        return std::make_unique<MsortDynWorkload>(p);
      }
      case Wk::Cholesky: {
        CholeskyParams p;
        p.seed = sp.seed;
        p.tiles = std::max<std::uint64_t>(
            2, static_cast<std::uint64_t>(8 * std::cbrt(s)));
        return std::make_unique<CholeskyWorkload>(p);
      }
      case Wk::Lu: {
        LuParams p;
        p.seed = sp.seed;
        p.tiles = std::max<std::uint64_t>(
            2, static_cast<std::uint64_t>(8 * std::cbrt(s)));
        return std::make_unique<LuWorkload>(p);
      }
      case Wk::Tricount: {
        TricountParams p;
        p.seed = sp.seed;
        p.vertices = static_cast<std::uint64_t>(256 * s);
        return std::make_unique<TricountWorkload>(p);
      }
      case Wk::Centroid: {
        CentroidParams p;
        p.seed = sp.seed;
        p.points = static_cast<std::uint64_t>(1024 * s);
        return std::make_unique<CentroidWorkload>(p);
      }
    }
    fatal("unknown workload");
}

} // namespace ts
