/**
 * @file
 * A content-addressed on-disk cache of finished run results.
 *
 * Each entry maps a key — the SHA-256 of (code fingerprint, canonical
 * run-cell description) — to the run's verbatim result payload (the
 * per-run JSON the sweep driver writes).  Because simulated runs are
 * deterministic functions of the binary and the cell, a hit can stand
 * in for a run byte-for-byte.
 *
 * Entry file format (one file per key, named `<key>` in the cache
 * directory):
 *
 *     TSCACHE1 <key> <payloadBytes>\n
 *     <canonical cell, one line>\n
 *     <payload: exactly payloadBytes bytes>
 *
 * The leading magic plus the exact payload length make truncated or
 * corrupt entries detectable without parsing the payload; any
 * malformed entry reads as a miss.  Publishes are atomic
 * (temp + rename), so concurrent sweeps can share one directory: the
 * worst race is two processes writing the same (identical) entry.
 *
 * An advisory `index.txt` (O_APPEND, one `<key> <bytes> <cell>` line
 * per publish) aids human inspection; it is never read back.
 *
 * Eviction is LRU-ish by file mtime: lookups touch the entry, and a
 * publish that pushes the directory over `capBytes` removes the
 * stalest entries under an exclusive flock.
 */

#ifndef TS_CACHE_RUN_CACHE_HH
#define TS_CACHE_RUN_CACHE_HH

#include <cstdint>
#include <string>

namespace ts::cache
{

/** Run-cache tuning. */
struct RunCacheConfig
{
    std::string dir;            ///< cache directory (created)
    std::uint64_t capBytes = 0; ///< entry-payload budget; 0 = unbounded
};

/** A content-addressed run cache rooted at one directory. */
class RunCache
{
  public:
    explicit RunCache(RunCacheConfig cfg);

    /** Cache key for @p cell under @p fingerprint. */
    static std::string keyFor(const std::string& fingerprint,
                              const std::string& cell);

    /**
     * Fetch the payload stored under @p key.  Touches the entry's
     * mtime (LRU).  Truncated, corrupt, or mismatched entries are
     * misses.
     * @return true and fill @p payload on a hit.
     */
    bool lookup(const std::string& key, std::string& payload) const;

    /** Whether a valid entry exists (no LRU touch — used by
     *  dry runs to predict hits without perturbing eviction). */
    bool contains(const std::string& key) const;

    /**
     * Store @p payload under @p key, atomically.  @p cell is recorded
     * in the entry header and the advisory index.  May evict stale
     * entries when the directory exceeds the configured cap.
     */
    void publish(const std::string& key, const std::string& cell,
                 const std::string& payload) const;

    const RunCacheConfig& config() const { return cfg_; }

    /**
     * Hex SHA-256 of this process's own executable
     * (/proc/self/exe), computed once and memoized.  Ties cache
     * keys to the exact simulator build, so a rebuild naturally
     * invalidates every entry.  Falls back to a warning and a fixed
     * sentinel where /proc is unavailable.
     */
    static const std::string& codeFingerprint();

  private:
    std::string entryPath(const std::string& key) const;
    bool readEntry(const std::string& key, std::string& payload,
                   bool touch) const;
    void evictOverCap() const;

    RunCacheConfig cfg_;
};

} // namespace ts::cache

#endif // TS_CACHE_RUN_CACHE_HH
