/**
 * @file
 * Two-phase communication channels between ticked components.
 *
 * All inter-component traffic flows through Channel<T>.  A value
 * pushed during cycle C becomes visible to the consumer at cycle C+1
 * (after the simulator's commit phase), which makes the result of a
 * cycle independent of the order in which components are ticked.
 *
 * Channels are capacity-limited; a failed push() models back-pressure
 * and the producer is expected to retry on a later cycle.
 *
 * For the activity-driven simulator core a channel additionally
 *  - self-registers into a per-cycle dirty list on the first push of
 *    a cycle, so the commit phase walks only touched channels,
 *  - maintains an external live-channel counter, so quiescence is a
 *    counter check instead of a scan, and
 *  - carries a list of observer components the simulator wakes when a
 *    commit makes new values visible.
 * All three hooks are installed by Simulator::addChannel; a channel
 * used standalone (unit tests) behaves exactly as before.
 *
 * Partition boundaries
 * --------------------
 * Every channel has a producer and a consumer partition (declared at
 * Simulator::addChannel / makeChannel; both default to the
 * simulator's current partition).  A channel whose endpoints differ
 * is a *boundary* channel and uses producer-side credit occupancy
 * for back-pressure: canPush() reads a credit counter that pushes
 * raise immediately but pops lower only at the next commit.  Freed
 * capacity therefore becomes visible one cycle after the pop — the
 * same next-cycle rule values already follow — which makes the
 * producer's view independent of within-cycle tick order across
 * partitions.  That is the lookahead property the sharded
 * (conservative-PDES) core synchronizes on, and it is declared per
 * *partition*, never per shard count, so simulated results are
 * bit-identical for every --shards value including 1.
 */

#ifndef TS_SIM_CHANNEL_HH
#define TS_SIM_CHANNEL_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace ts
{

class Ticked;

/** Type-erased channel interface used by the simulator core. */
class ChannelBase
{
  public:
    explicit ChannelBase(std::string name) : name_(std::move(name)) {}
    virtual ~ChannelBase() = default;

    ChannelBase(const ChannelBase&) = delete;
    ChannelBase& operator=(const ChannelBase&) = delete;

    /** Move staged values into the visible queue (end of cycle). */
    virtual void commit() = 0;

    /** True when no value is visible or staged. */
    virtual bool quiescent() const = 0;

    /** True when any value is visible to the consumer. */
    virtual bool anyVisible() const = 0;

    /**
     * Register a component to be woken whenever a commit of this
     * channel leaves values visible (i.e. the consumer has something
     * to look at next cycle).
     */
    void addObserver(Ticked* t) { observers_.push_back(t); }

    /** Components woken on visible commits (simulator core). */
    const std::vector<Ticked*>& observers() const { return observers_; }

    /**
     * Install the simulator-side activity hooks (called by
     * Simulator::addChannel).  If the channel already holds values,
     * the counters are synchronized so late registration is safe.
     */
    void
    installHooks(std::int64_t* liveCounter,
                 std::vector<ChannelBase*>* dirtyList)
    {
        liveCounter_ = liveCounter;
        dirtyList_ = dirtyList;
        if (live_ && liveCounter_ != nullptr)
            ++*liveCounter_;
        if (dirty_ && dirtyList_ != nullptr)
            dirtyList_->push_back(this);
    }

    /** Whether a push this cycle has not yet been committed. */
    bool dirty() const { return dirty_; }

    /**
     * Declare the producer/consumer partitions (called by
     * Simulator::addChannel before any traffic).  A cross-partition
     * channel switches to credit-based back-pressure; see the header
     * comment.
     */
    void
    setEndpoints(std::uint32_t producerPartition,
                 std::uint32_t consumerPartition)
    {
        producerPartition_ = producerPartition;
        consumerPartition_ = consumerPartition;
        boundary_ = producerPartition != consumerPartition;
    }

    std::uint32_t producerPartition() const { return producerPartition_; }
    std::uint32_t consumerPartition() const { return consumerPartition_; }

    /** Whether the endpoints live in different partitions. */
    bool boundary() const { return boundary_; }

    /**
     * Bind the sharded core's per-cycle work flags (consumer-shard
     * inbox).  @p stagedFlag is raised by every push (any producer
     * shard; atomic), @p popFlag by every pop (consumer shard only).
     * Null detaches (single-shard execution).
     */
    void
    setShardFlags(std::atomic<std::uint8_t>* stagedFlag,
                  std::uint8_t* popFlag)
    {
        stagedFlag_ = stagedFlag;
        popFlag_ = popFlag;
        shardDetached_ = popFlag != nullptr;
    }

    /** Whether the sharded integrate phase has work here: staged
     *  pushes to commit or pops whose credits are unapplied. */
    bool integratePending() const { return dirty_ || pendingPops_ != 0; }

    /**
     * Re-bind the live-counter/dirty-list hooks (sharded core:
     * intra-shard channels move onto their shard's structures,
     * boundary channels detach — their liveness is scanned at the
     * coordinator's serialized decision point instead).  Must be
     * called between cycles (never while dirty).
     */
    void
    rebindHooks(std::int64_t* liveCounter,
                std::vector<ChannelBase*>* dirtyList)
    {
        if (live_) {
            if (liveCounter_ != nullptr)
                --*liveCounter_;
            if (liveCounter != nullptr)
                ++*liveCounter;
        }
        liveCounter_ = liveCounter;
        dirtyList_ = dirtyList;
    }

    /** Diagnostic name. */
    const std::string& name() const { return name_; }

    /**
     * Copy all queued/staged values and counters (snapshot/fork
     * support).  Must be called between cycles: a dirty channel
     * cannot be snapshotted.
     */
    virtual std::unique_ptr<ComponentSnap> saveState() const = 0;

    /**
     * Restore a prior saveState() in place.  The external live
     * counter (installHooks) is re-synchronized incrementally via
     * setLive, so the owning simulator's quiescence accounting stays
     * exact.
     */
    virtual void restoreState(const ComponentSnap& s) = 0;

  protected:
    /** First push of the cycle enqueues us for the commit phase. */
    void
    markDirty()
    {
        if (!dirty_) {
            dirty_ = true;
            if (dirtyList_ != nullptr)
                dirtyList_->push_back(this);
        }
    }

    /** Producer-side push accounting on a boundary channel. */
    void
    notePush()
    {
        if (!boundary_)
            return;
        ++credit_;
        if (stagedFlag_ != nullptr)
            stagedFlag_->store(1, std::memory_order_relaxed);
    }

    /**
     * Consumer-side pop accounting on a boundary channel: the freed
     * slot is credited back at the next commit.  Outside the sharded
     * core the channel marks itself dirty so the commit phase visits
     * it even on pop-only cycles; inside it the consumer shard's
     * integrate phase walks its boundary list instead.
     */
    void
    notePop()
    {
        if (!boundary_)
            return;
        ++pendingPops_;
        if (popFlag_ != nullptr)
            *popFlag_ = 1;
        else
            markDirty();
    }

    /** Commit-time credit application (boundary channels). */
    void
    applyCredits()
    {
        credit_ -= pendingPops_;
        pendingPops_ = 0;
    }

    /** Producer-visible occupancy of a boundary channel. */
    std::size_t credit() const { return credit_; }

    /** Reset credit accounting from restored queue contents. */
    void
    resetCredits(std::size_t occupancy)
    {
        credit_ = occupancy;
        pendingPops_ = 0;
    }

    /** Commit served this channel; re-arm for the next cycle. */
    void clearDirty() { dirty_ = false; }

    /**
     * Whether the sharded core owns this boundary channel's commit
     * (setShardFlags).  Producer and consumer shards then touch it
     * concurrently within a cycle, so liveness tracking is frozen —
     * quiescence scans the boundary list at a serialized point
     * instead — and pop() must not read producer-side staging.
     */
    bool shardDetached() const { return shardDetached_; }

    /** Track the visible-or-staged liveness transition. */
    void
    setLive(bool v)
    {
        if (shardDetached_)
            return;
        if (v != live_) {
            live_ = v;
            if (liveCounter_ != nullptr)
                *liveCounter_ += v ? 1 : -1;
        }
    }

  private:
    std::string name_;
    std::vector<Ticked*> observers_;
    std::int64_t* liveCounter_ = nullptr;
    std::vector<ChannelBase*>* dirtyList_ = nullptr;
    /** Consumer-shard inbox flag raised on every push (sharded). */
    std::atomic<std::uint8_t>* stagedFlag_ = nullptr;
    /** Consumer-shard flag raised on every pop (sharded). */
    std::uint8_t* popFlag_ = nullptr;
    /** Commit ownership moved to the sharded integrate phase. */
    bool shardDetached_ = false;
    /** Producer-view occupancy (boundary channels only). */
    std::size_t credit_ = 0;
    /** Pops since the last commit (boundary channels only). */
    std::size_t pendingPops_ = 0;
    std::uint32_t producerPartition_ = 0;
    std::uint32_t consumerPartition_ = 0;
    bool boundary_ = false;
    bool live_ = false;
    bool dirty_ = false;
};

/**
 * A bounded FIFO with next-cycle visibility.
 *
 * @tparam T element type (moved in and out).
 */
template <typename T>
class Channel : public ChannelBase
{
  public:
    /**
     * @param name diagnostic name.
     * @param capacity maximum elements (visible + staged); 0 means
     *        unbounded (used only where the design doc justifies it).
     */
    Channel(std::string name, std::size_t capacity)
        : ChannelBase(std::move(name)), capacity_(capacity)
    {}

    /** Whether a push would be accepted this cycle.  On a boundary
     *  channel the producer sees credit occupancy: capacity freed by
     *  a pop becomes pushable one cycle later (see header). */
    bool
    canPush() const
    {
        if (capacity_ == 0)
            return true;
        if (boundary())
            return credit() < capacity_;
        return queue_.size() + staging_.size() < capacity_;
    }

    /** Stage a value for next-cycle visibility; false if full. */
    bool
    push(T v)
    {
        if (!canPush())
            return false;
        staging_.push_back(std::move(v));
        ++pushed_;
        notePush();
        markDirty();
        setLive(true);
        return true;
    }

    /** True when no value is currently visible. */
    bool empty() const { return queue_.empty(); }

    /** Number of currently visible values. */
    std::size_t size() const { return queue_.size(); }

    /** The oldest visible value; panics when empty. */
    const T&
    front() const
    {
        TS_ASSERT(!queue_.empty(), "pop/front on empty channel ", name());
        return queue_.front();
    }

    /** Remove and return the oldest visible value. */
    T
    pop()
    {
        TS_ASSERT(!queue_.empty(), "pop on empty channel ", name());
        T v = std::move(queue_.front());
        queue_.pop_front();
        notePop();
        // A shard-detached boundary channel must not read staging_
        // here: the producer's shard may be appending concurrently.
        if (!shardDetached() && queue_.empty() && staging_.empty())
            setLive(false);
        return v;
    }

    void
    commit() override
    {
        for (auto& v : staging_)
            queue_.push_back(std::move(v));
        staging_.clear();
        applyCredits();
        clearDirty();
        if (queue_.size() > maxOccupancy_)
            maxOccupancy_ = queue_.size();
    }

    bool
    quiescent() const override
    {
        return queue_.empty() && staging_.empty();
    }

    bool anyVisible() const override { return !queue_.empty(); }

    /** Total values ever pushed (for traffic statistics). */
    std::uint64_t pushed() const { return pushed_; }

    /** High-water mark of visible occupancy. */
    std::size_t maxOccupancy() const { return maxOccupancy_; }

    /** Configured capacity (0 = unbounded). */
    std::size_t capacity() const { return capacity_; }

    std::unique_ptr<ComponentSnap>
    saveState() const override
    {
        TS_ASSERT(!dirty(), "snapshot of dirty channel ", name());
        auto s = std::make_unique<Snap>();
        s->queue = queue_;
        s->staging = staging_;
        s->pushed = pushed_;
        s->maxOccupancy = maxOccupancy_;
        return s;
    }

    void
    restoreState(const ComponentSnap& snap) override
    {
        TS_ASSERT(!dirty(), "restore into dirty channel ", name());
        const Snap& s = snapCast<Snap>(snap);
        queue_ = s.queue;
        staging_ = s.staging;
        pushed_ = s.pushed;
        maxOccupancy_ = s.maxOccupancy;
        // Snapshots are taken between cycles, where credit occupancy
        // equals the stored contents and no pop is pending.
        resetCredits(queue_.size() + staging_.size());
        setLive(!queue_.empty() || !staging_.empty());
    }

  private:
    struct Snap final : ComponentSnap
    {
        std::deque<T> queue;
        std::vector<T> staging;
        std::uint64_t pushed = 0;
        std::size_t maxOccupancy = 0;
    };

    std::size_t capacity_;
    std::deque<T> queue_;
    std::vector<T> staging_;
    std::uint64_t pushed_ = 0;
    std::size_t maxOccupancy_ = 0;
};

} // namespace ts

#endif // TS_SIM_CHANNEL_HH
