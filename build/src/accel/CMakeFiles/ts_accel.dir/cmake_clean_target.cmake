file(REMOVE_RECURSE
  "libts_accel.a"
)
