/**
 * @file
 * Unit tests for the mesh NoC: delivery, ordering, routing distance,
 * serialization, back-pressure, and multicast (exactly-once delivery
 * to every destination, tree traffic savings).
 */

#include <gtest/gtest.h>

#include "noc/noc.hh"

namespace ts
{
namespace
{

Packet
mkPkt(std::uint32_t src, std::uint64_t dstMask,
      std::uint32_t sizeWords = 1, int tag = 0)
{
    Packet p;
    p.src = src;
    p.dstMask = dstMask;
    p.kind = PktKind::Generic;
    p.sizeWords = sizeWords;
    p.payload = tag;
    return p;
}

struct MeshFixture
{
    Simulator sim;
    Noc noc;

    explicit MeshFixture(std::uint32_t w = 4, std::uint32_t h = 4)
        : noc(sim, NocConfig{w, h, 4, 2})
    {}

    /** Step long enough for all in-flight packets to arrive
     *  (delivered packets sit in eject channels, so quiescence-based
     *  run() is not applicable here). */
    void drain() { sim.step(500); }
};

TEST(Noc, UnicastDelivery)
{
    MeshFixture m;
    ASSERT_TRUE(m.noc.inject(mkPkt(0, Packet::unicast(15), 1, 42)));
    m.drain();
    auto& ej = m.noc.eject(15);
    ASSERT_FALSE(ej.empty());
    const Packet p = ej.pop();
    EXPECT_EQ(p.src, 0u);
    EXPECT_EQ(std::any_cast<int>(p.payload), 42);
    EXPECT_EQ(m.noc.delivered(), 1u);
}

TEST(Noc, SelfDelivery)
{
    MeshFixture m;
    ASSERT_TRUE(m.noc.inject(mkPkt(5, Packet::unicast(5))));
    m.drain();
    EXPECT_EQ(m.noc.eject(5).size(), 1u);
}

TEST(Noc, LatencyScalesWithHopDistance)
{
    // One-hop and six-hop packets injected together: the farther one
    // must arrive strictly later.
    MeshFixture m;
    m.noc.inject(mkPkt(0, Packet::unicast(1)));
    m.noc.inject(mkPkt(0, Packet::unicast(15)));
    Tick nearAt = 0, farAt = 0;
    for (Tick t = 0; t < 200 && (nearAt == 0 || farAt == 0); ++t) {
        m.sim.step(1);
        if (nearAt == 0 && !m.noc.eject(1).empty())
            nearAt = t;
        if (farAt == 0 && !m.noc.eject(15).empty())
            farAt = t;
    }
    ASSERT_GT(nearAt, 0u);
    ASSERT_GT(farAt, 0u);
    EXPECT_GT(farAt, nearAt);
    EXPECT_GE(farAt - nearAt,
              m.noc.hopDistance(0, 15) - m.noc.hopDistance(0, 1) - 1);
}

TEST(Noc, HopDistanceIsManhattan)
{
    MeshFixture m;
    EXPECT_EQ(m.noc.hopDistance(0, 15), 6u); // (0,0) -> (3,3)
    EXPECT_EQ(m.noc.hopDistance(5, 5), 0u);
    EXPECT_EQ(m.noc.hopDistance(0, 3), 3u);
}

TEST(Noc, InOrderDeliveryPerPath)
{
    MeshFixture m;
    for (int i = 0; i < 8; ++i) {
        // Injection channel has finite capacity: step to drain it.
        while (!m.noc.inject(mkPkt(0, Packet::unicast(15), 1, i)))
            m.sim.step(1);
    }
    m.drain();
    auto& ej = m.noc.eject(15);
    ASSERT_EQ(ej.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(std::any_cast<int>(ej.pop().payload), i);
}

TEST(Noc, MulticastReachesEveryDestinationExactlyOnce)
{
    MeshFixture m;
    std::uint64_t mask = 0;
    for (const std::uint32_t d : {1u, 3u, 7u, 12u, 15u})
        mask |= Packet::unicast(d);
    ASSERT_TRUE(m.noc.inject(mkPkt(0, mask, 8, 99)));
    m.drain();
    for (const std::uint32_t d : {1u, 3u, 7u, 12u, 15u}) {
        ASSERT_EQ(m.noc.eject(d).size(), 1u) << "node " << d;
        EXPECT_EQ(std::any_cast<int>(m.noc.eject(d).pop().payload),
                  99);
    }
    for (const std::uint32_t d : {0u, 2u, 4u, 5u, 6u, 8u, 9u, 10u,
                                  11u, 13u, 14u}) {
        EXPECT_TRUE(m.noc.eject(d).empty()) << "node " << d;
    }
    EXPECT_EQ(m.noc.delivered(), 5u);
}

TEST(Noc, MulticastTreeSavesTrafficVersusUnicasts)
{
    const std::uint64_t all15 = (1u << 16) - 2; // nodes 1..15
    std::uint64_t mcHops = 0, ucHops = 0;
    {
        MeshFixture m;
        m.noc.inject(mkPkt(0, all15, 8));
        m.drain();
        mcHops = m.noc.wordHops();
    }
    {
        MeshFixture m;
        for (std::uint32_t d = 1; d < 16; ++d) {
            while (!m.noc.inject(mkPkt(0, Packet::unicast(d), 8)))
                m.sim.step(1);
        }
        m.drain();
        ucHops = m.noc.wordHops();
    }
    EXPECT_LT(mcHops, ucHops / 2)
        << "tree multicast should cut word-hops by well over half";
}

TEST(Noc, BackpressureNeverDropsPackets)
{
    MeshFixture m;
    int accepted = 0;
    // Flood one destination from three sources.
    for (int round = 0; round < 50; ++round) {
        for (const std::uint32_t s : {0u, 3u, 12u}) {
            if (m.noc.inject(mkPkt(s, Packet::unicast(15), 4)))
                ++accepted;
        }
        m.sim.step(1);
    }
    m.drain();
    EXPECT_EQ(m.noc.eject(15).size(),
              static_cast<std::size_t>(accepted));
}

TEST(Noc, SerializationDelaysLargePackets)
{
    // Two same-size routes; one packet is 16 words vs 1 word.  With
    // linkWords=2, the large packet needs 8 cycles per hop.
    Tick smallAt = 0, bigAt = 0;
    {
        MeshFixture m;
        m.noc.inject(mkPkt(0, Packet::unicast(3), 1));
        for (Tick t = 0; t < 200 && smallAt == 0; ++t) {
            m.sim.step(1);
            if (!m.noc.eject(3).empty())
                smallAt = t;
        }
    }
    {
        MeshFixture m;
        m.noc.inject(mkPkt(0, Packet::unicast(3), 16));
        for (Tick t = 0; t < 200 && bigAt == 0; ++t) {
            m.sim.step(1);
            if (!m.noc.eject(3).empty())
                bigAt = t;
        }
    }
    ASSERT_GT(smallAt, 0u);
    ASSERT_GT(bigAt, 0u);
    EXPECT_GT(bigAt, smallAt);
}

TEST(Noc, RejectsBadMeshes)
{
    Simulator sim;
    EXPECT_THROW(Noc(sim, NocConfig{0, 4, 4, 2}), FatalError);
    EXPECT_THROW(Noc(sim, NocConfig{9, 8, 4, 2}), FatalError);
}

TEST(Noc, WideMeshRoutesAcrossBothDimensions)
{
    MeshFixture m(8, 2);
    ASSERT_TRUE(m.noc.inject(mkPkt(0, Packet::unicast(15), 2, 5)));
    m.drain();
    ASSERT_EQ(m.noc.eject(15).size(), 1u);
}

} // namespace
} // namespace ts
