/**
 * @file
 * Unit tests for the stream substrate: descriptor expansion (golden
 * semantics), the in-order word fetcher, the read engine (the key
 * property: timed delivery equals golden expansion, for every
 * descriptor kind and both address spaces), and the write engine.
 */

#include <gtest/gtest.h>

#include "mem/main_memory.hh"
#include "sim/rng.hh"
#include "stream/read_engine.hh"
#include "stream/write_engine.hh"

namespace ts
{
namespace
{

/** Direct bridge from the engine port interface to a MainMemory,
 *  bypassing the NoC (latency/order behaviour preserved). */
class DirectMemPort : public MemPortIf, public Ticked
{
  public:
    DirectMemPort(Simulator& sim, const MainMemoryConfig& cfg)
        : Ticked("directport"),
          reqCh_(sim.makeChannel<MemReq>("dp.req", 16)),
          respCh_(sim.makeChannel<MemResp>("dp.resp", 16)),
          mem_(sim, cfg, reqCh_, respCh_)
    {
        sim.add(this);
        sim.add(&mem_);
    }

    bool
    requestLine(Addr lineAddr, std::function<void()> onData) override
    {
        MemReq req;
        req.lineAddr = lineAddr;
        req.tag = nextTag_;
        if (!reqCh_.push(req))
            return false;
        cbs_.emplace(nextTag_++, std::move(onData));
        return true;
    }

    bool
    writeLine(Addr lineAddr) override
    {
        MemReq req;
        req.lineAddr = lineAddr;
        req.write = true;
        return reqCh_.push(req);
    }

    void
    tick(Tick) override
    {
        while (!respCh_.empty()) {
            const MemResp resp = respCh_.pop();
            auto it = cbs_.find(resp.tag);
            ASSERT_TRUE(it != cbs_.end());
            auto cb = std::move(it->second);
            cbs_.erase(it);
            cb();
        }
    }

    bool busy() const override { return false; }

    const MainMemory& memory() const { return mem_; }

  private:
    Channel<MemReq>& reqCh_;
    Channel<MemResp>& respCh_;
    MainMemory mem_;
    std::uint64_t nextTag_ = 1;
    std::map<std::uint64_t, std::function<void()>> cbs_;
};

/** Common engine-test rig. */
struct Rig
{
    Simulator sim;
    MemImage img;
    Scratchpad spm{"spm", ScratchpadConfig{1 << 14, 4}};
    DirectMemPort port{sim, MainMemoryConfig{}};
    PipeSet pipes;

    Rig() { sim.add(&spm); }

    /** Run a programmed read engine to completion; collect tokens. */
    std::vector<Token>
    drain(ReadEngine& re, TokenFifo& dest, Tick maxCycles = 100000)
    {
        std::vector<Token> out;
        const Tick start = sim.now();
        while (re.active() && sim.now() - start < maxCycles) {
            sim.step(1);
            while (!dest.empty())
                out.push_back(dest.pop());
        }
        while (!dest.empty())
            out.push_back(dest.pop());
        EXPECT_FALSE(re.active()) << "engine failed to finish";
        return out;
    }
};

void
expectTokensEqual(const std::vector<Token>& got,
                  const std::vector<Token>& want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].value, want[i].value) << "value @" << i;
        EXPECT_EQ(got[i].flags, want[i].flags) << "flags @" << i;
    }
}

// --- descriptor expansion golden cases -----------------------------------

TEST(StreamDesc, LinearBasicFlags)
{
    MemImage img;
    const Addr a = img.allocWords(4);
    for (int i = 0; i < 4; ++i)
        img.writeInt(a + i * wordBytes, 10 + i);
    const auto toks =
        expandStream(StreamDesc::linear(Space::Dram, a, 4), img,
                     nullptr);
    ASSERT_EQ(toks.size(), 4u);
    EXPECT_EQ(asInt(toks[0].value), 10);
    EXPECT_EQ(toks[0].flags, 0);
    EXPECT_EQ(toks[3].flags, kSegEnd | kSeg2End | kStreamEnd);
}

TEST(StreamDesc, LinearStrideAndFixedSeg)
{
    MemImage img;
    const Addr a = img.allocWords(16);
    for (int i = 0; i < 16; ++i)
        img.writeInt(a + i * wordBytes, i);
    StreamDesc d = StreamDesc::linear(Space::Dram, a, 4, 2);
    d.fixedSegLen = 2;
    const auto toks = expandStream(d, img, nullptr);
    ASSERT_EQ(toks.size(), 4u);
    EXPECT_EQ(asInt(toks[1].value), 2);
    EXPECT_EQ(asInt(toks[3].value), 6);
    EXPECT_EQ(toks[1].flags, kSegEnd);
    EXPECT_EQ(toks[0].flags, 0);
}

TEST(StreamDesc, LinearLoopsEmitSeg2Boundaries)
{
    MemImage img;
    const Addr a = img.allocWords(3);
    for (int i = 0; i < 3; ++i)
        img.writeInt(a + i * wordBytes, i);
    StreamDesc d = StreamDesc::linear(Space::Dram, a, 3);
    d.loops = 2;
    const auto toks = expandStream(d, img, nullptr);
    ASSERT_EQ(toks.size(), 6u);
    EXPECT_EQ(toks[2].flags, kSegEnd | kSeg2End);
    EXPECT_EQ(toks[5].flags, kSegEnd | kSeg2End | kStreamEnd);
    EXPECT_EQ(asInt(toks[3].value), 0) << "second loop restarts";
}

TEST(StreamDesc, RepeatDuplicatesElements)
{
    MemImage img;
    const Addr a = img.allocWords(2);
    img.writeInt(a, 5);
    img.writeInt(a + wordBytes, 6);
    StreamDesc d = StreamDesc::linear(Space::Dram, a, 2);
    d.repeat = 3;
    const auto toks = expandStream(d, img, nullptr);
    ASSERT_EQ(toks.size(), 6u);
    EXPECT_EQ(asInt(toks[0].value), 5);
    EXPECT_EQ(asInt(toks[2].value), 5);
    EXPECT_EQ(toks[1].flags, 0) << "flags only on the final copy";
    EXPECT_TRUE(toks[5].streamEnd());
}

TEST(StreamDesc, Strided2dRowsAndRowRepeat)
{
    MemImage img;
    const Addr a = img.allocWords(8);
    for (int i = 0; i < 8; ++i)
        img.writeInt(a + i * wordBytes, i);
    StreamDesc d = StreamDesc::strided2d(Space::Dram, a, 2, 4, 2);
    d.rowRepeat = 2;
    const auto toks = expandStream(d, img, nullptr);
    // rows {0,1} x2, {4,5} x2
    ASSERT_EQ(toks.size(), 8u);
    EXPECT_EQ(asInt(toks[2].value), 0);
    EXPECT_EQ(asInt(toks[4].value), 4);
    EXPECT_EQ(toks[1].flags, kSegEnd);
    EXPECT_EQ(toks[3].flags, kSegEnd | kSeg2End);
    EXPECT_EQ(toks[7].flags,
              kSegEnd | kSeg2End | kStreamEnd);
}

TEST(StreamDesc, IndirectGather)
{
    MemImage img;
    const Addr idx = img.allocWords(3);
    const Addr data = img.allocWords(10);
    const std::int64_t ids[] = {7, 2, 5};
    for (int i = 0; i < 3; ++i)
        img.writeInt(idx + i * wordBytes, ids[i]);
    for (int i = 0; i < 10; ++i)
        img.writeInt(data + i * wordBytes, 100 + i);
    const auto toks = expandStream(
        StreamDesc::indirect(Space::Dram, idx, 3, Space::Dram, data),
        img, nullptr);
    ASSERT_EQ(toks.size(), 3u);
    EXPECT_EQ(asInt(toks[0].value), 107);
    EXPECT_EQ(asInt(toks[1].value), 102);
    EXPECT_EQ(asInt(toks[2].value), 105);
}

TEST(StreamDesc, CsrSegmentsCarryBoundaries)
{
    MemImage img;
    const Addr ptr = img.allocWords(4);
    const Addr data = img.allocWords(6);
    const std::int64_t ptrs[] = {0, 2, 3, 6};
    for (int i = 0; i < 4; ++i)
        img.writeInt(ptr + i * wordBytes, ptrs[i]);
    for (int i = 0; i < 6; ++i)
        img.writeInt(data + i * wordBytes, i * 10);
    const auto toks = expandStream(
        StreamDesc::csr(Space::Dram, ptr, 3, data), img, nullptr);
    ASSERT_EQ(toks.size(), 6u);
    EXPECT_EQ(toks[1].flags, kSegEnd);
    EXPECT_EQ(toks[2].flags, kSegEnd);
    EXPECT_EQ(toks[5].flags, kSegEnd | kStreamEnd);
}

TEST(StreamDesc, CsrRejectsEmptySegments)
{
    MemImage img;
    const Addr ptr = img.allocWords(3);
    img.writeInt(ptr, 0);
    img.writeInt(ptr + wordBytes, 0); // empty segment
    img.writeInt(ptr + 2 * wordBytes, 2);
    EXPECT_THROW(expandStream(StreamDesc::csr(Space::Dram, ptr, 2, 0),
                              img, nullptr),
                 FatalError);
}

TEST(StreamDesc, CsrIndirectSegSelectsSegmentsByIdList)
{
    MemImage img;
    const Addr ptr = img.allocWords(5);
    const Addr data = img.allocWords(8);
    const Addr list = img.allocWords(2);
    const std::int64_t ptrs[] = {0, 2, 4, 6, 8};
    for (int i = 0; i < 5; ++i)
        img.writeInt(ptr + i * wordBytes, ptrs[i]);
    for (int i = 0; i < 8; ++i)
        img.writeInt(data + i * wordBytes, i);
    img.writeInt(list, 3);
    img.writeInt(list + wordBytes, 1);
    const auto toks = expandStream(
        StreamDesc::csrIndirectSeg(Space::Dram, list, 2, ptr,
                                   Space::Dram, data),
        img, nullptr);
    ASSERT_EQ(toks.size(), 4u);
    EXPECT_EQ(asInt(toks[0].value), 6); // segment 3 = {6,7}
    EXPECT_EQ(asInt(toks[2].value), 2); // segment 1 = {2,3}
    EXPECT_EQ(toks[1].flags, kSegEnd);
    EXPECT_EQ(toks[3].flags, kSegEnd | kStreamEnd);
}

TEST(StreamDesc, DramRangeRecognition)
{
    Addr base;
    std::uint64_t words;
    EXPECT_TRUE(StreamDesc::linear(Space::Dram, 256, 10)
                    .dramRange(base, words));
    EXPECT_EQ(base, 256u);
    EXPECT_EQ(words, 10u);
    EXPECT_FALSE(StreamDesc::linear(Space::Dram, 256, 10, 2)
                     .dramRange(base, words));
    EXPECT_FALSE(StreamDesc::linear(Space::Spm, 0, 10)
                     .dramRange(base, words));
}

TEST(StreamDesc, ElementCountsResolveAgainstImage)
{
    MemImage img;
    const Addr ptr = img.allocWords(3);
    img.writeInt(ptr, 4);
    img.writeInt(ptr + wordBytes, 9);
    img.writeInt(ptr + 2 * wordBytes, 11);
    EXPECT_EQ(StreamDesc::csr(Space::Dram, ptr, 2, 0)
                  .elementCount(img),
              7u);
    StreamDesc lin = StreamDesc::linear(Space::Dram, 0, 5);
    lin.loops = 3;
    EXPECT_EQ(lin.elementCount(img), 15u);
    StreamDesc s2 = StreamDesc::strided2d(Space::Dram, 0, 4, 8, 2);
    s2.rowRepeat = 3;
    EXPECT_EQ(s2.elementCount(img), 24u);
}

// --- read engine: timed delivery equals golden expansion -----------------

enum class DescCase
{
    LinearDram,
    LinearStride,
    LinearLoops,
    LinearSpm,
    Strided2D,
    RowRepeat,
    Indirect,
    IndirectSpmData,
    Csr,
    CsrGather,
    CsrIndirectSeg,
    Repeat,
};

class ReadEngineMatchesGolden
    : public ::testing::TestWithParam<DescCase>
{};

TEST_P(ReadEngineMatchesGolden, DeliversGoldenTokenSequence)
{
    Rig rig;
    Rng rng(77);

    // Shared backing data.
    const std::uint64_t n = 64;
    const Addr data = rig.img.allocWords(256);
    for (std::uint64_t i = 0; i < 256; ++i)
        rig.img.writeInt(data + i * wordBytes,
                         rng.uniformInt(-1000, 1000));
    for (std::size_t i = 0; i < 256; ++i)
        rig.spm.write(i, fromInt(rng.uniformInt(-50, 50)));

    StreamDesc d;
    switch (GetParam()) {
      case DescCase::LinearDram:
        d = StreamDesc::linear(Space::Dram, data, n);
        d.fixedSegLen = 8;
        break;
      case DescCase::LinearStride:
        d = StreamDesc::linear(Space::Dram, data, 32, 3);
        break;
      case DescCase::LinearLoops:
        d = StreamDesc::linear(Space::Dram, data, 16);
        d.loops = 4;
        break;
      case DescCase::LinearSpm:
        d = StreamDesc::linear(Space::Spm, 8, 48);
        d.fixedSegLen = 6;
        break;
      case DescCase::Strided2D:
        d = StreamDesc::strided2d(Space::Dram, data, 6, 16, 5);
        break;
      case DescCase::RowRepeat:
        d = StreamDesc::strided2d(Space::Dram, data, 4, 8, 4);
        d.rowRepeat = 3;
        break;
      case DescCase::Indirect: {
        const Addr idx = rig.img.allocWords(24);
        for (int i = 0; i < 24; ++i)
            rig.img.writeInt(idx + i * wordBytes,
                             rng.uniformInt(0, 255));
        d = StreamDesc::indirect(Space::Dram, idx, 24, Space::Dram,
                                 data);
        break;
      }
      case DescCase::IndirectSpmData: {
        const Addr idx = rig.img.allocWords(24);
        for (int i = 0; i < 24; ++i)
            rig.img.writeInt(idx + i * wordBytes,
                             rng.uniformInt(0, 200));
        d = StreamDesc::indirect(Space::Dram, idx, 24, Space::Spm, 0);
        break;
      }
      case DescCase::Csr:
      case DescCase::CsrGather: {
        const std::uint64_t segs = 7;
        const Addr ptr = rig.img.allocWords(segs + 1);
        std::int64_t off = 0;
        for (std::uint64_t s = 0; s <= segs; ++s) {
            rig.img.writeInt(ptr + s * wordBytes, off);
            off += rng.uniformInt(1, 9);
        }
        const Addr col = rig.img.allocWords(
            static_cast<std::uint64_t>(off));
        for (std::int64_t i = 0; i < off; ++i)
            rig.img.writeInt(col + i * wordBytes,
                             rng.uniformInt(0, 255));
        if (GetParam() == DescCase::Csr) {
            d = StreamDesc::csr(Space::Dram, ptr, segs, col);
        } else {
            d = StreamDesc::csrGather(Space::Dram, ptr, col, segs,
                                      Space::Dram, data);
        }
        break;
      }
      case DescCase::CsrIndirectSeg: {
        const std::uint64_t numSegs = 10;
        const Addr ptr = rig.img.allocWords(numSegs + 1);
        std::int64_t off = 0;
        for (std::uint64_t s = 0; s <= numSegs; ++s) {
            rig.img.writeInt(ptr + s * wordBytes, off);
            off += rng.uniformInt(1, 6);
        }
        const Addr segData =
            rig.img.allocWords(static_cast<std::uint64_t>(off));
        for (std::int64_t i = 0; i < off; ++i)
            rig.img.writeInt(segData + i * wordBytes,
                             rng.uniformInt(0, 99));
        const Addr list = rig.img.allocWords(5);
        const std::int64_t ids[] = {9, 0, 4, 4, 2};
        for (int i = 0; i < 5; ++i)
            rig.img.writeInt(list + i * wordBytes, ids[i]);
        d = StreamDesc::csrIndirectSeg(Space::Dram, list, 5, ptr,
                                       Space::Dram, segData);
        break;
      }
      case DescCase::Repeat:
        d = StreamDesc::linear(Space::Dram, data, 20);
        d.repeat = 4;
        d.fixedSegLen = 5;
        break;
    }

    const auto want = expandStream(d, rig.img, &rig.spm);

    ReadEngine re("re", rig.img, &rig.spm, &rig.port, &rig.pipes);
    rig.sim.add(&re);
    TokenFifo dest(8);
    re.program(d, &dest);
    const auto got = rig.drain(re, dest);
    expectTokensEqual(got, want);
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ReadEngineMatchesGolden,
    ::testing::Values(DescCase::LinearDram, DescCase::LinearStride,
                      DescCase::LinearLoops, DescCase::LinearSpm,
                      DescCase::Strided2D, DescCase::RowRepeat,
                      DescCase::Indirect, DescCase::IndirectSpmData,
                      DescCase::Csr, DescCase::CsrGather,
                      DescCase::CsrIndirectSeg, DescCase::Repeat));

TEST(ReadEngine, PipeInDeliversForwardedTokens)
{
    Rig rig;
    ReadEngine re("re", rig.img, &rig.spm, &rig.port, &rig.pipes);
    rig.sim.add(&re);
    TokenFifo dest(8);
    re.program(StreamDesc::pipeIn(42), &dest);

    std::vector<Token> sent;
    for (int i = 0; i < 20; ++i) {
        sent.push_back(Token{fromInt(i),
                             i == 19 ? std::uint8_t(kSegEnd |
                                                    kStreamEnd)
                                     : std::uint8_t(0)});
    }
    rig.pipes.deliver(42, {sent.begin(), sent.begin() + 7});
    rig.sim.step(3);
    rig.pipes.deliver(42, {sent.begin() + 7, sent.end()});
    const auto got = rig.drain(re, dest);
    expectTokensEqual(got, sent);
}

TEST(ReadEngine, RejectsZeroLengthStreams)
{
    Rig rig;
    ReadEngine re("re", rig.img, &rig.spm, &rig.port, &rig.pipes);
    TokenFifo dest(8);
    EXPECT_THROW(
        re.program(StreamDesc::linear(Space::Dram, 64, 0), &dest),
        FatalError);
}

TEST(ReadEngine, BackpressureFromSlowConsumer)
{
    Rig rig;
    const Addr a = rig.img.allocWords(64);
    for (int i = 0; i < 64; ++i)
        rig.img.writeInt(a + i * wordBytes, i);

    ReadEngine re("re", rig.img, &rig.spm, &rig.port, &rig.pipes);
    rig.sim.add(&re);
    TokenFifo dest(2);
    re.program(StreamDesc::linear(Space::Dram, a, 64), &dest);

    // Pop only one token every 8 cycles; nothing may be lost.
    std::vector<Token> got;
    for (int step = 0; step < 4000 && re.active(); ++step) {
        rig.sim.step(1);
        if (step % 8 == 0 && !dest.empty())
            got.push_back(dest.pop());
    }
    while (!dest.empty())
        got.push_back(dest.pop());
    ASSERT_EQ(got.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(asInt(got[i].value), i);
}

TEST(ReadEngine, SinkModeModelsTrafficWithoutDelivery)
{
    Rig rig;
    const Addr a = rig.img.allocWords(64);
    ReadEngine re("re", rig.img, &rig.spm, &rig.port, &rig.pipes);
    rig.sim.add(&re);
    re.program(StreamDesc::linear(Space::Dram, a, 64), nullptr);
    rig.sim.run(100000);
    EXPECT_FALSE(re.active());
    EXPECT_EQ(re.tokensDelivered(), 64u);
    EXPECT_EQ(rig.port.memory().linesRead(), 8u);
}

// --- write engine ----------------------------------------------------------

struct CapturePipeTx : public PipeTxIf
{
    std::vector<std::vector<Token>> chunks;
    bool accept = true;

    bool
    sendChunk(std::uint64_t, std::uint64_t,
              const std::vector<Token>& toks) override
    {
        if (!accept)
            return false;
        chunks.push_back(toks);
        return true;
    }
};

TEST(WriteEngine, WritesTokensToMemoryInOrder)
{
    Rig rig;
    CapturePipeTx tx;
    WriteEngine we("we", rig.img, &rig.spm, &rig.port, &tx);
    rig.sim.add(&we);

    const Addr out = rig.img.allocWords(32);
    TokenFifo src(64);
    for (int i = 0; i < 32; ++i) {
        src.push(Token{fromInt(i * 3),
                       i == 31 ? std::uint8_t(kSegEnd | kStreamEnd)
                               : std::uint8_t(0)});
    }
    WriteDesc d;
    d.base = out;
    we.program(d, &src);
    rig.sim.run(10000);
    EXPECT_FALSE(we.active());
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(rig.img.readInt(out + i * wordBytes), i * 3);
    EXPECT_EQ(rig.port.memory().linesWritten(), 4u)
        << "32 sequential words = 4 coalesced lines";
}

TEST(WriteEngine, StridedWrites)
{
    Rig rig;
    CapturePipeTx tx;
    WriteEngine we("we", rig.img, &rig.spm, &rig.port, &tx);
    rig.sim.add(&we);

    const Addr out = rig.img.allocWords(32);
    TokenFifo src(16);
    for (int i = 0; i < 8; ++i) {
        src.push(Token{fromInt(i),
                       i == 7 ? std::uint8_t(kStreamEnd)
                              : std::uint8_t(0)});
    }
    WriteDesc d;
    d.base = out;
    d.strideWords = 4;
    we.program(d, &src);
    rig.sim.run(10000);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(rig.img.readInt(out + i * 4 * wordBytes), i);
}

TEST(WriteEngine, ForwardsPipeChunksAndFinishesOnStreamEnd)
{
    Rig rig;
    CapturePipeTx tx;
    WriteEngine we("we", rig.img, &rig.spm, &rig.port, &tx);
    rig.sim.add(&we);

    const Addr out = rig.img.allocWords(64);
    TokenFifo src(64);
    const int n = 20;
    for (int i = 0; i < n; ++i) {
        src.push(Token{fromInt(i),
                       i == n - 1 ? std::uint8_t(kSegEnd | kStreamEnd)
                                  : std::uint8_t(0)});
    }
    WriteDesc d;
    d.base = out;
    d.pipeDstMask = 1u << 3;
    d.pipeId = 9;
    d.chunkWords = 8;
    we.program(d, &src);
    rig.sim.run(10000);
    EXPECT_FALSE(we.active());

    std::vector<Token> flat;
    for (const auto& c : tx.chunks)
        flat.insert(flat.end(), c.begin(), c.end());
    ASSERT_EQ(flat.size(), static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(asInt(flat[i].value), i);
    EXPECT_TRUE(flat.back().streamEnd());
    EXPECT_EQ(tx.chunks.size(), 3u) << "8 + 8 + 4 tokens";
}

TEST(WriteEngine, RetriesWhenPipeTxBackpressured)
{
    Rig rig;
    CapturePipeTx tx;
    tx.accept = false;
    WriteEngine we("we", rig.img, &rig.spm, &rig.port, &tx);
    rig.sim.add(&we);

    TokenFifo src(64);
    for (int i = 0; i < 16; ++i) {
        src.push(Token{fromInt(i),
                       i == 15 ? std::uint8_t(kStreamEnd)
                               : std::uint8_t(0)});
    }
    WriteDesc d;
    d.base = rig.img.allocWords(16);
    d.pipeDstMask = 1;
    d.pipeId = 1;
    we.program(d, &src);
    rig.sim.step(200);
    EXPECT_TRUE(we.active()) << "cannot finish while chunk unsent";
    tx.accept = true;
    rig.sim.run(10000);
    EXPECT_FALSE(we.active());
}

// --- pipe set ---------------------------------------------------------------

TEST(PipeSet, FifoPerPipeAndOccupancyStats)
{
    PipeSet ps;
    ps.deliver(1, {Token{fromInt(1), 0}, Token{fromInt(2), 0}});
    ps.deliver(2, {Token{fromInt(9), 0}});
    EXPECT_TRUE(ps.hasData(1));
    EXPECT_EQ(asInt(ps.pop(1).value), 1);
    EXPECT_EQ(asInt(ps.pop(2).value), 9);
    EXPECT_EQ(asInt(ps.pop(1).value), 2);
    EXPECT_FALSE(ps.hasData(1));
    EXPECT_EQ(ps.totalBuffered(), 0u);

    StatSet stats;
    ps.reportStats(stats, "lane");
    EXPECT_EQ(stats.get("lane.pipeTokens"), 3);
    EXPECT_GE(stats.get("lane.pipeMaxOccupancy"), 2);
}

TEST(PipeSet, ReleaseRequiresDrainedPipe)
{
    PipeSet ps;
    ps.deliver(5, {Token{fromInt(1), 0}});
    EXPECT_THROW(ps.release(5), PanicError);
    ps.pop(5);
    ps.release(5);
    EXPECT_FALSE(ps.hasData(5));
}

// --- word fetcher -------------------------------------------------------------

TEST(WordFetcher, CoalescesSameLineRequests)
{
    Rig rig;
    const Addr a = rig.img.allocWords(8); // one line
    for (int i = 0; i < 8; ++i)
        rig.img.writeInt(a + i * wordBytes, i);

    WordFetcher f(rig.img, nullptr, &rig.port);
    f.reset(Space::Dram);
    for (int i = 0; i < 8; ++i)
        f.push(a + i * wordBytes, 0);
    for (int step = 0; step < 200 && !f.settled(); ++step) {
        f.pump(rig.sim.now());
        rig.sim.step(1);
        while (f.headReady())
            f.popHead();
    }
    EXPECT_TRUE(f.settled());
    EXPECT_EQ(f.linesRequested(), 1u)
        << "eight same-line words need one request";
}

TEST(WordFetcher, InOrderDeliveryAcrossBanks)
{
    Rig rig;
    Rng rng(3);
    const Addr a = rig.img.allocWords(512);
    for (int i = 0; i < 512; ++i)
        rig.img.writeInt(a + i * wordBytes, i);

    WordFetcher f(rig.img, nullptr, &rig.port);
    f.reset(Space::Dram);
    std::vector<std::int64_t> want, got;
    int pushed = 0;
    for (int step = 0; step < 5000 && got.size() < 40; ++step) {
        if (pushed < 40 && !f.windowFull()) {
            const auto w = rng.uniformInt(0, 511);
            want.push_back(w);
            f.push(a + static_cast<Addr>(w) * wordBytes, 0);
            ++pushed;
        }
        f.pump(rig.sim.now());
        rig.sim.step(1);
        while (f.headReady())
            got.push_back(asInt(f.popHead().value));
    }
    EXPECT_EQ(got, want) << "values must pop in push order";
}

} // namespace
} // namespace ts
