#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"

namespace ts
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto& s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    TS_ASSERT(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = ~0ull - (~0ull % span);
    std::uint64_t v;
    do {
        v = next();
    } while (v >= limit && limit != 0);
    return lo + static_cast<std::int64_t>(v % span);
}

double
Rng::uniform01()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniformReal(double lo, double hi)
{
    return lo + (hi - lo) * uniform01();
}

std::uint64_t
Rng::zipf(std::uint64_t n, double s)
{
    TS_ASSERT(n > 0);
    if (zipfN_ != n || zipfS_ != s) {
        zipfN_ = n;
        zipfS_ = s;
        zipfNorm_ = 0.0;
        for (std::uint64_t k = 1; k <= n; ++k)
            zipfNorm_ += 1.0 / std::pow(static_cast<double>(k), s);
    }
    // Inverse-CDF walk; adequate for the modest n used in workloads.
    double u = uniform01() * zipfNorm_;
    double acc = 0.0;
    for (std::uint64_t k = 1; k <= n; ++k) {
        acc += 1.0 / std::pow(static_cast<double>(k), s);
        if (acc >= u)
            return k - 1;
    }
    return n - 1;
}

double
Rng::exponential(double mean)
{
    double u = uniform01();
    if (u >= 1.0)
        u = 0.9999999999;
    return -mean * std::log(1.0 - u);
}

std::vector<std::uint32_t>
Rng::permutation(std::uint32_t n)
{
    std::vector<std::uint32_t> v(n);
    for (std::uint32_t i = 0; i < n; ++i)
        v[i] = i;
    shuffle(v);
    return v;
}

} // namespace ts
