file(REMOVE_RECURSE
  "CMakeFiles/ts_noc.dir/noc.cc.o"
  "CMakeFiles/ts_noc.dir/noc.cc.o.d"
  "libts_noc.a"
  "libts_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ts_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
