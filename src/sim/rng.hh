/**
 * @file
 * Deterministic random number generation for workload synthesis.
 *
 * All randomness in the repository flows through Rng so that every
 * experiment is reproducible from a single seed.  The core generator
 * is xoshiro256** seeded via SplitMix64.
 */

#ifndef TS_SIM_RNG_HH
#define TS_SIM_RNG_HH

#include <cstdint>
#include <vector>

namespace ts
{

/** Deterministic pseudo-random generator with distribution helpers. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x5eed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniform01();

    /** Uniform double in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** Zipf-distributed integer in [0, n), skew parameter s. */
    std::uint64_t zipf(std::uint64_t n, double s);

    /** Exponentially distributed double with the given mean. */
    double exponential(double mean);

    /** Random permutation of 0..n-1. */
    std::vector<std::uint32_t> permutation(std::uint32_t n);

    /** Fisher-Yates shuffle of a vector in place. */
    template <typename T>
    void
    shuffle(std::vector<T>& v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(
                uniformInt(0, static_cast<std::int64_t>(i) - 1));
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t s_[4];

    // Zipf sampling cache: normalization constant for (n, s).
    std::uint64_t zipfN_ = 0;
    double zipfS_ = -1.0;
    double zipfNorm_ = 0.0;
};

} // namespace ts

#endif // TS_SIM_RNG_HH
