/**
 * @file
 * Shared infrastructure for the experiment benchmarks: run one
 * workload under one configuration, verify correctness, and collect
 * the statistics the paper-style tables report.
 *
 * All knobs come from the shared options layer (ts::driver
 * RunOptions): call bench::init(&argc, argv) first thing in main()
 * to consume the shared flags (--workloads, --scale, --seed,
 * --trace, --bench-json, --log, -j; each with its TS_* environment
 * fallback) and hand the untouched remainder to
 * benchmark::Initialize().  No bench reads the environment itself.
 */

#ifndef TS_BENCH_BENCH_UTIL_HH
#define TS_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <string>

#include "driver/options.hh"
#include "driver/run_one.hh"
#include "workloads/workload.hh"

namespace ts::bench
{

/** This process's run options.  Defaults to the environment
 *  fallbacks until init() overwrites them with parsed flags. */
inline driver::RunOptions&
options()
{
    static driver::RunOptions opt = [] {
        driver::RunOptions o = driver::RunOptions::fromEnv();
        o.applyLogLevel();
        return o;
    }();
    return opt;
}

/** Parse the shared flags out of argv (call before
 *  benchmark::Initialize, which consumes the rest). */
inline void
init(int* argc, char** argv)
{
    options() = driver::parseCommandLine(*argc, argv);
}

/**
 * Workloads this bench process runs (--workloads/TS_WORKLOADS,
 * "all" or unset = whole suite; unknown names fail fast with the
 * valid names listed).  Both the registration and table-printing
 * loops must use this same list.
 */
inline const std::vector<Wk>&
suiteWorkloads()
{
    return options().workloads;
}

/** Suite scaling knobs (--scale/TS_SCALE problem-size multiplier,
 *  --seed/TS_SEED) — small CI runs use --scale 0.25 without
 *  rebuilding. */
inline SuiteParams
suiteParams()
{
    return options().suiteParams();
}

/** Outcome of one simulated run (driver::runOne's result type;
 *  bench-JSON emission now lives there too). */
using RunResult = driver::RunResult;

/** Build and simulate one workload under one configuration (trace,
 *  stats, shards, and bench-JSON outputs injected from the shared
 *  options via driver::runOne). */
inline RunResult
runOnce(Wk w, const DeltaConfig& cfg, const SuiteParams& sp)
{
    auto wl = makeWorkload(w, sp);
    return driver::runOne(options(), *wl, cfg);
}

/** Print a horizontal rule sized for our tables. */
inline void
rule(int width = 72)
{
    std::puts(std::string(static_cast<std::size_t>(width), '-').c_str());
}

/** Geometric mean of a vector of ratios. */
inline double
geomean(const std::vector<double>& v)
{
    if (v.empty())
        return 0.0;
    double logSum = 0.0;
    for (const double x : v)
        logSum += std::log(x);
    return std::exp(logSum / static_cast<double>(v.size()));
}

} // namespace ts::bench

#endif // TS_BENCH_BENCH_UTIL_HH
