#include "obs/timeline.hh"

#include <cstdio>

#include "sim/logging.hh"
#include "sim/simulator.hh"

namespace ts::obs
{

namespace
{

std::vector<std::string>
splitGroups(const std::string& csv)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        const std::size_t comma = csv.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? csv.size() : comma;
        if (end > pos)
            out.push_back(csv.substr(pos, end - pos));
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return out;
}

/** Zero-padded 5-digit sample index, so lexicographic JSON key order
 *  equals sample order. */
std::string
sampleKey(std::size_t k)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%05zu", k);
    return buf;
}

} // namespace

Timeline::Timeline(Simulator& sim, TimelineConfig cfg)
    : sim_(sim), cfg_(std::move(cfg)),
      groups_(splitGroups(cfg_.series))
{
    TS_ASSERT(cfg_.interval > 0,
              "Timeline requires a positive sampling interval");
    TS_ASSERT(cfg_.maxSamples > 0,
              "Timeline requires a positive sample cap");
}

bool
Timeline::wants(const std::string& group) const
{
    if (groups_.empty())
        return true;
    for (const std::string& g : groups_)
        if (g == group)
            return true;
    return false;
}

void
Timeline::addProbe(const std::string& group, std::string series,
                   std::function<double()> read, bool counter)
{
    if (!wants(group))
        return;
    TS_ASSERT(at_.empty(), "probes must be added before start()");
    probes_.push_back(
        Probe{std::move(series), std::move(read), counter});
    values_.emplace_back();
}

void
Timeline::addCounter(const std::string& group, std::string series,
                     std::function<double()> read)
{
    addProbe(group, std::move(series), std::move(read), true);
}

void
Timeline::addGauge(const std::string& group, std::string series,
                   std::function<double()> read)
{
    addProbe(group, std::move(series), std::move(read), false);
}

void
Timeline::sample()
{
    // Deferred per-cycle accounting must be flushed so counter probes
    // see the same cumulative value a never-sleeping run would show.
    sim_.catchUpAll();
    at_.push_back(sim_.now());
    for (std::size_t i = 0; i < probes_.size(); ++i)
        values_[i].push_back(probes_[i].read());
    if (at_.size() < cfg_.maxSamples)
        arm();
}

void
Timeline::arm()
{
    sim_.scheduleWeak(cfg_.interval, [this] { sample(); });
}

void
Timeline::start()
{
    sample(); // the t = now baseline sample; also arms the cadence
}

void
Timeline::finalSample()
{
    if (!at_.empty() && at_.back() == sim_.now())
        return;
    // One-shot: record without re-arming the cadence.
    sim_.catchUpAll();
    at_.push_back(sim_.now());
    for (std::size_t i = 0; i < probes_.size(); ++i)
        values_[i].push_back(probes_[i].read());
}

void
Timeline::report(StatSet& stats) const
{
    stats.set("delta.timeline.interval",
              static_cast<double>(cfg_.interval));
    stats.set("delta.timeline.samples",
              static_cast<double>(at_.size()));
    for (std::size_t k = 0; k < at_.size(); ++k)
        stats.set("delta.timeline.t." + sampleKey(k),
                  static_cast<double>(at_[k]));
    for (std::size_t i = 0; i < probes_.size(); ++i) {
        const Probe& p = probes_[i];
        const std::string prefix =
            "delta.timeline." + p.series + ".";
        double prev = 0.0;
        for (std::size_t k = 0; k < values_[i].size(); ++k) {
            const double v = values_[i][k];
            stats.set(prefix + sampleKey(k),
                      p.counter ? v - prev : v);
            prev = v;
        }
    }
}

} // namespace ts::obs
