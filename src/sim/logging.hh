/**
 * @file
 * Error-reporting helpers in the spirit of gem5's logging.hh.
 *
 * fatal()  -- the simulated configuration or input is invalid; the
 *             user can fix it.  Throws FatalError.
 * panic()  -- an internal invariant of the simulator was violated; a
 *             simulator bug.  Throws PanicError.
 * warn()   -- something is suspicious but simulation can continue.
 *
 * Both error forms throw (rather than abort) so that library users
 * and unit tests can observe and recover from them.
 *
 * warn()/inform() are gated by a runtime verbosity level:
 *   0  silent (suppress warnings and info)
 *   1  warnings only (the default)
 *   2  warnings + informational messages
 * The level is process-wide and set via setLogVerbosity(); the TS_LOG
 * environment variable is honored as a fallback by the options layer
 * (src/driver/options.hh), never read here.  warn()/inform() compose
 * their full line before a single stream insertion, so messages from
 * concurrent simulation threads do not interleave mid-line.
 */

#ifndef TS_SIM_LOGGING_HH
#define TS_SIM_LOGGING_HH

#include <atomic>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ts
{

/** Raised by fatal(): user-correctable configuration/input error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string& what)
        : std::runtime_error(what)
    {}
};

/** Raised by panic(): internal simulator invariant violation. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string& what)
        : std::logic_error(what)
    {}
};

namespace detail
{

inline void
formatInto(std::ostringstream& os)
{
    (void)os;
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream& os, const T& v, const Rest&... rest)
{
    os << v;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
formatAll(const Args&... args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

namespace detail
{

inline std::atomic<int>&
logLevelState()
{
    static std::atomic<int> level{1};
    return level;
}

} // namespace detail

/** Stderr verbosity: 0 silent, 1 warnings (default), 2 info. */
inline int
logVerbosity()
{
    return detail::logLevelState().load(std::memory_order_relaxed);
}

/** Set the process-wide stderr verbosity (see logVerbosity()). */
inline void
setLogVerbosity(int level)
{
    detail::logLevelState().store(level, std::memory_order_relaxed);
}

/** Abort simulation with a user-facing error. */
template <typename... Args>
[[noreturn]] void
fatal(const Args&... args)
{
    throw FatalError(detail::formatAll("fatal: ", args...));
}

/** Abort simulation due to an internal simulator bug. */
template <typename... Args>
[[noreturn]] void
panic(const Args&... args)
{
    throw PanicError(detail::formatAll("panic: ", args...));
}

/** Print a non-fatal warning to stderr (verbosity >= 1). */
template <typename... Args>
void
warn(const Args&... args)
{
    if (logVerbosity() < 1)
        return;
    std::cerr << detail::formatAll("warn: ", args..., "\n")
              << std::flush;
}

/** Print an informational message to stderr (verbosity >= 2). */
template <typename... Args>
void
inform(const Args&... args)
{
    if (logVerbosity() < 2)
        return;
    std::cerr << detail::formatAll("info: ", args..., "\n")
              << std::flush;
}

/** panic() unless the given invariant holds. */
#define TS_ASSERT(cond, ...)                                               \
    do {                                                                   \
        if (!(cond))                                                       \
            ::ts::panic("assertion failed: ", #cond, " ", ##__VA_ARGS__);  \
    } while (0)

} // namespace ts

#endif // TS_SIM_LOGGING_HH
