/**
 * @file
 * The per-lane hardware task unit: a small task queue plus the state
 * machine that executes one task at a time — reconfigure the fabric,
 * program the stream engines, monitor completion, report back to the
 * dispatcher.
 */

#ifndef TS_TASK_TASK_UNIT_HH
#define TS_TASK_TASK_UNIT_HH

#include <deque>
#include <functional>
#include <optional>

#include "cgra/fabric.hh"
#include "noc/packet.hh"
#include "spatial/spatial.hh"
#include "stream/pipe_set.hh"
#include "stream/read_engine.hh"
#include "stream/write_engine.hh"
#include "task/messages.hh"
#include "task/shared_landing.hh"
#include "trace/accounting.hh"

namespace ts
{

/** Wiring a TaskUnit needs from its lane. */
struct TaskUnitPorts
{
    Fabric* fabric = nullptr;
    std::vector<ReadEngine*> readEngines;
    std::vector<WriteEngine*> writeEngines;
    PipeSet* pipes = nullptr;
    SharedLanding* landing = nullptr;
    /** Spatial landing tracker (only dereferenced when a dispatch
     *  carries waitSpatial gates; may be null in bare-unit tests). */
    spatial::LandingTracker* spatialLanding = nullptr;
    MemPortIf* memPort = nullptr; ///< builtin output traffic
    MemImage* image = nullptr;    ///< builtin functional effects

    /** Inject a packet at this lane's NoC node (false = retry). */
    std::function<bool(Packet)> send;

    std::uint32_t selfNode = 0;
    std::uint32_t dispatcherNode = 0;
    std::uint32_t laneIndex = 0;

    /** Work-stealing policy (None: the probe machinery is inert). */
    StealPolicy steal = StealPolicy::None;

    /** Peer lanes as (laneIndex, node), nearest first by NoC hop
     *  distance (ties by lane index) — the probe order. */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> victims;
};

/** One lane's task queue and execution controller. */
class TaskUnit : public Ticked
{
  public:
    TaskUnit(std::string name, const TaskTypeRegistry& registry,
             TaskUnitPorts ports);

    /** Enqueue a dispatched task (called by the lane NoC adapter). */
    void deliver(DispatchMsg msg);

    // Steal protocol (called by the lane NoC adapter on arrival).

    /** A peer probes this unit for queued stealable work. */
    void onStealRequest(const StealRequestMsg& req);

    /** A victim granted tasks to this (thief) unit. */
    void onStealGrant(StealGrantMsg msg);

    /** A probed victim had nothing stealable. */
    void onStealDeny(const StealDenyMsg& msg);

    void tick(Tick now) override;
    void catchUp(Tick now) override;
    bool busy() const override;
    void reportStats(StatSet& stats) const override;

    /** Tasks executed to completion. */
    std::uint64_t tasksRun() const { return tasksRun_; }

    // Steal counters (thief and victim roles of this unit).
    std::uint64_t stealRequestsSent() const { return stealReqSent_; }
    std::uint64_t stealRequestsReceived() const { return stealReqRecv_; }
    std::uint64_t stealGrantsReceived() const { return stealGrants_; }
    std::uint64_t stealDeniesReceived() const { return stealDenies_; }
    std::uint64_t tasksStolenIn() const { return tasksStolenIn_; }
    std::uint64_t tasksGivenOut() const { return tasksGivenOut_; }

    /** Cycles this lane spent with a task in flight. */
    std::uint64_t busyCycles() const { return busyCycles_; }

    /** Builtin-output DRAM lines suppressed by spatial forwarding. */
    std::uint64_t spatialLinesSuppressed() const
    {
        return spatialLinesSuppressed_;
    }

    /** Spatial chunks this unit's builtin outputs sent. */
    std::uint64_t spatialChunksSent() const
    {
        return spatialChunksSent_;
    }

    /** Top-down cycle accounting (buckets sum to cycles ticked). */
    const CycleBuckets& cycleBuckets() const { return buckets_; }

    /** Current queue depth (including the running task). */
    std::size_t queueDepth() const
    {
        return inbox_.size() + (phase_ == Phase::Idle ? 0 : 1);
    }

    std::unique_ptr<ComponentSnap> saveState() const override;
    void restoreState(const ComponentSnap& snap) override;

  private:
    enum class Phase : std::uint8_t
    {
        Idle,
        WaitFill,
        Config,
        Running,
        BuiltinRead,
        BuiltinCompute,
        BuiltinWrite,
        Finish,
    };

    struct Snap;

    void beginTask(Tick now);
    void step(Tick now);
    void sendPending();
    void queueMsg(PktKind kind, std::any payload,
                  std::uint32_t sizeWords);
    void queueMsgTo(std::uint32_t dstNode, PktKind kind,
                    std::any payload, std::uint32_t sizeWords);
    /** Idle with an empty inbox: probe the next victim, if any. */
    void maybeProbeSteal();
    /** Re-arm the probe round (on deliver/grant/task finish). */
    void rearmSteal();
    bool dfgExecutionDone() const;
    CycleClass classify(bool fabricProgressed) const;
    void accountCycle();

    const TaskTypeRegistry& registry_;
    TaskUnitPorts ports_;

    std::deque<DispatchMsg> inbox_;
    std::deque<Packet> sendQ_;

    Phase phase_ = Phase::Idle;
    DispatchMsg cur_;
    Tick startedAt_ = 0; ///< cycle cur_ was popped from the inbox
    Tick computeUntil_ = 0;
    std::uint64_t builtinLinesLeft_ = 0;
    Addr builtinWriteCursor_ = 0;
    /** Builtin spatial forwarding: words accumulated toward the next
     *  chunk, and whether the done marker went out (zero-output
     *  producers still owe one). */
    std::uint32_t builtinFwdAccum_ = 0;
    bool builtinFwdDoneSent_ = false;

    std::uint64_t tasksRun_ = 0;
    std::uint64_t busyCycles_ = 0;
    std::uint64_t waitFillCycles_ = 0;
    std::uint64_t configWaitCycles_ = 0;
    std::uint64_t spatialLinesSuppressed_ = 0;
    std::uint64_t spatialChunksSent_ = 0;

    /** Steal probe state machine: which victim to ask next, whether a
     *  reply is outstanding, and whether a whole round came back
     *  empty (probing pauses until re-armed by new local activity). */
    std::uint32_t stealProbeIdx_ = 0;
    bool stealWaiting_ = false;
    bool stealExhausted_ = false;

    std::uint64_t stealReqSent_ = 0;
    std::uint64_t stealReqRecv_ = 0;
    std::uint64_t stealGrants_ = 0;
    std::uint64_t stealDenies_ = 0;
    std::uint64_t tasksStolenIn_ = 0;
    std::uint64_t tasksGivenOut_ = 0;

    CycleBuckets buckets_;
    std::uint64_t lastFirings_ = 0;
    CycleClass lastClass_ = CycleClass::Idle;
    bool stateSpanOpen_ = false;
    bool builtinWriteBlocked_ = false;

    // Slept-cycle accounting watermark: cycles in [expectedNext_, now)
    // were skipped while sleeping and are accounted in bulk as
    // gapClass_ on the next tick (or by catchUp at run end).  Every
    // sleep site must prove the skipped cycles would all have
    // classified as gapClass_ under per-cycle ticking.
    Tick expectedNext_ = 0;
    CycleClass gapClass_ = CycleClass::Idle;
    bool gapBusy_ = false; ///< skipped cycles also count as busyCycles_
};

} // namespace ts

#endif // TS_TASK_TASK_UNIT_HH
