/**
 * @file
 * Tiled Cholesky factorization (right-looking): potrf / trsm / syrk /
 * gemm tile kernels as coarse-grained tasks with a classic dependence
 * DAG.
 *
 * Structure exercised: a rich barrier dependence graph whose width
 * shrinks every iteration — task counts and per-task costs differ
 * wildly (potrf vs gemm), so work-aware balancing matters; the
 * static-parallel baseline strands lanes as the trailing submatrix
 * shrinks.
 */

#ifndef TS_WORKLOADS_CHOLESKY_HH
#define TS_WORKLOADS_CHOLESKY_HH

#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace ts
{

/** Cholesky workload parameters. */
struct CholeskyParams
{
    std::uint64_t tiles = 8;    ///< T: matrix is (T*b) x (T*b)
    std::uint64_t tileSize = 16; ///< b
    std::uint64_t seed = 7;
};

/** A = L * L^T factorization of an SPD matrix. */
class CholeskyWorkload : public Workload
{
  public:
    explicit CholeskyWorkload(const CholeskyParams& p) : p_(p) {}

    std::string name() const override { return "cholesky"; }
    void build(Delta& delta, TaskGraph& graph) override;
    bool check(const MemImage& img) const override;

  private:
    CholeskyParams p_;
    Addr mat_ = 0;
    std::vector<double> expected_; ///< golden L (lower triangle)
};

} // namespace ts

#endif // TS_WORKLOADS_CHOLESKY_HH
