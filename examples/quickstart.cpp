/**
 * @file
 * Quickstart: the smallest complete Delta program.
 *
 * Defines one dataflow task type (y[i] = 3*x[i] + 7), carves an input
 * array into independent tasks, runs them on an 8-lane Delta, and
 * checks the result.
 *
 *   $ ./build/examples/quickstart
 *   $ ./build/examples/quickstart --trace trace.json --stats-json stats.json
 */

#include <cstdio>

#include "accel/delta.hh"
#include "driver/options.hh"

using namespace ts;

int
main(int argc, char** argv)
{
    // Shared flags (--trace, --stats-json, --log, ...), each with a
    // TS_* environment fallback.  This is the only layer that reads
    // the environment; Delta itself never does.
    const driver::RunOptions opt =
        driver::parseCommandLineOrExit(argc, argv);

    // 1. Build the accelerator (TaskStream configuration: work-aware
    //    balancing + pipeline recovery + shared-read multicast).
    Delta delta(opt.applyTo(DeltaConfig::delta(8)));
    MemImage& img = delta.image();

    // 2. Describe the task body as a dataflow graph.  Every input
    //    port streams tokens into the fabric; immediates are baked
    //    into the configuration.
    auto dfg = std::make_unique<Dfg>("scale");
    const auto x = dfg->addInput();
    const auto m = dfg->add(Op::Mul, Operand::ref(x), Operand::immI(3));
    const auto a = dfg->add(Op::Add, Operand::ref(m), Operand::immI(7));
    dfg->addOutput(a);
    const TaskTypeId scale =
        delta.registry().addDfgType("scale", std::move(dfg));

    // 3. Lay out data in the functional memory image.
    const std::size_t n = 1 << 14, chunk = 512;
    const Addr in = img.allocWords(n);
    const Addr out = img.allocWords(n);
    for (std::size_t i = 0; i < n; ++i)
        img.writeInt(in + i * wordBytes, static_cast<std::int64_t>(i));

    // 4. Emit one task per chunk.  The stream descriptor *is* the
    //    argument: the hardware reads work estimates straight from it.
    TaskGraph graph;
    for (std::size_t c = 0; c < n; c += chunk) {
        WriteDesc dst;
        dst.base = out + c * wordBytes;
        graph.addTask(scale,
                      {StreamDesc::linear(Space::Dram,
                                          in + c * wordBytes, chunk)},
                      {dst});
    }

    // 5. Run to completion and inspect results + statistics.
    const StatSet stats = delta.run(graph);

    std::size_t errors = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (img.readInt(out + i * wordBytes) !=
            3 * static_cast<std::int64_t>(i) + 7) {
            ++errors;
        }
    }

    std::printf("quickstart: %zu tasks, %zu words, %s\n",
                n / chunk, n, errors == 0 ? "PASS" : "FAIL");
    std::printf("  cycles         : %.0f\n", stats.get("delta.cycles"));
    std::printf("  DRAM lines read: %.0f\n", stats.get("mem.linesRead"));
    std::printf("  NoC word-hops  : %.0f\n", stats.get("noc.wordHops"));
    std::printf("  lane imbalance : %.3f (max/mean busy)\n",
                stats.get("delta.imbalance"));
    std::printf("  cycle breakdown: %.0f%% busy, %.0f%% memWait, "
                "%.0f%% nocWait, %.0f%% idle\n",
                100 * stats.get("delta.accounting.frac.busy"),
                100 * stats.get("delta.accounting.frac.memWait"),
                100 * stats.get("delta.accounting.frac.nocWait"),
                100 * stats.get("delta.accounting.frac.idle"));
    if (delta.tracer().enabled()) {
        std::printf("  trace          : %s (%.0f events; load in "
                    "https://ui.perfetto.dev)\n",
                    delta.tracer().path().c_str(),
                    stats.get("trace.events"));
    }
    return errors == 0 ? 0 : 1;
}
