/**
 * @file
 * Sparse matrix-vector multiply (CSR), blocked into row-block tasks.
 *
 * Structure exercised:
 *  - load imbalance: row populations are bimodal (a few very heavy
 *    rows), so row blocks carry very different work;
 *  - shared reads: every task gathers from the same dense vector x,
 *    which Delta multicasts into lane scratchpads once.
 */

#ifndef TS_WORKLOADS_SPMV_HH
#define TS_WORKLOADS_SPMV_HH

#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace ts
{

/** SpMV workload parameters. */
struct SpmvParams
{
    std::uint64_t rows = 256;
    std::uint64_t cols = 512;
    std::uint64_t rowsPerTask = 16;
    double heavyRowFraction = 0.06; ///< fraction of very heavy rows
    std::uint64_t seed = 7;
};

/** y = A*x over a skewed CSR matrix. */
class SpmvWorkload : public Workload
{
  public:
    explicit SpmvWorkload(const SpmvParams& p) : p_(p) {}

    std::string name() const override { return "spmv"; }
    void build(Delta& delta, TaskGraph& graph) override;
    bool check(const MemImage& img) const override;

    /** Total nonzeros generated (workload characterization). */
    std::uint64_t nnz() const { return nnz_; }

    /** Number of row-block tasks. */
    std::uint64_t numTasks() const
    {
        return divCeil(p_.rows, p_.rowsPerTask);
    }

  private:
    SpmvParams p_;
    Addr yAddr_ = 0;
    std::uint64_t nnz_ = 0;
    std::vector<double> expected_;
};

} // namespace ts

#endif // TS_WORKLOADS_SPMV_HH
