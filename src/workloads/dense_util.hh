/**
 * @file
 * Helpers shared by the dense tiled linear-algebra workloads
 * (Cholesky, LU): tile stream descriptors and image-backed matrix
 * element access.
 */

#ifndef TS_WORKLOADS_DENSE_UTIL_HH
#define TS_WORKLOADS_DENSE_UTIL_HH

#include "mem/mem_image.hh"
#include "stream/stream_desc.hh"

namespace ts
{

/** Address of element (r, c) of a row-major n x n matrix. */
inline Addr
matAddr(Addr base, std::uint64_t n, std::uint64_t r, std::uint64_t c)
{
    return base + (r * n + c) * wordBytes;
}

/** Read/write matrix elements as doubles. */
inline double
matGet(const MemImage& img, Addr base, std::uint64_t n, std::uint64_t r,
       std::uint64_t c)
{
    return img.readDouble(matAddr(base, n, r, c));
}

inline void
matSet(MemImage& img, Addr base, std::uint64_t n, std::uint64_t r,
       std::uint64_t c, double v)
{
    img.writeDouble(matAddr(base, n, r, c), v);
}

/** 2D stream over tile (ti, tj) of a row-major n x n matrix with
 *  b x b tiles. */
inline StreamDesc
tileStream(Addr base, std::uint64_t n, std::uint64_t b,
           std::uint64_t ti, std::uint64_t tj)
{
    return StreamDesc::strided2d(
        Space::Dram, matAddr(base, n, ti * b, tj * b), b,
        static_cast<std::int64_t>(n), b);
}

} // namespace ts

#endif // TS_WORKLOADS_DENSE_UTIL_HH
