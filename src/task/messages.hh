/**
 * @file
 * NoC message payloads exchanged between the dispatcher, lane task
 * units, and the memory controller.
 */

#ifndef TS_TASK_MESSAGES_HH
#define TS_TASK_MESSAGES_HH

#include <optional>
#include <vector>

#include "cgra/token.hh"
#include "task/task_types.hh"

namespace ts
{

/** Registration of a shared-read group at a member lane. */
struct GroupSetupMsg
{
    std::uint32_t group = 0;
    Addr rangeBase = 0;           ///< DRAM byte base of the range
    std::uint64_t words = 0;      ///< range length in words
    std::uint64_t landingOffset = 0; ///< SPM word offset of the copy
};

/** Dispatcher -> lane: run this task. */
struct DispatchMsg
{
    TaskId uid = 0;
    TaskTypeId type = 0;
    std::vector<StreamDesc> inputs;   ///< resolved descriptors
    std::vector<WriteDesc> outputs;   ///< resolved destinations
    double workEst = 1.0;

    /** Cycle the dispatcher committed this dispatch (end-to-end task
     *  latency statistics at the executing lane). */
    Tick dispatchedAt = 0;

    /** Gate start on this group's fill completion (kNoGroup: none). */
    std::uint32_t waitGroup = kNoGroup;

    /** Pipe buffers to release when the task completes. */
    std::vector<std::uint64_t> releasePipes;
};

/** Lane -> dispatcher: task began execution. */
struct StartMsg
{
    TaskId uid = 0;
    std::uint32_t lane = 0;
};

/** Lane -> dispatcher: task finished. */
struct CompleteMsg
{
    TaskId uid = 0;
    std::uint32_t lane = 0;
};

/** Producer lane -> consumer lane: forwarded stream chunk. */
struct PipeChunkMsg
{
    std::uint64_t pipeId = 0;
    std::vector<Token> toks;
};

/** Tag bit marking a memory request as a shared-group fill. */
constexpr std::uint64_t kSharedFillTagBit = std::uint64_t{1} << 63;

/** Encode/decode shared-fill tags (group id in the low bits). */
inline std::uint64_t
sharedFillTag(std::uint32_t group)
{
    return kSharedFillTagBit | group;
}

inline bool
isSharedFillTag(std::uint64_t tag)
{
    return (tag & kSharedFillTagBit) != 0;
}

inline std::uint32_t
sharedFillGroup(std::uint64_t tag)
{
    return static_cast<std::uint32_t>(tag & 0xffffffffu);
}

} // namespace ts

#endif // TS_TASK_MESSAGES_HH
